package cpr

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/smt/maxsat"
)

// OptionFlags is the string-level repair option surface shared by the
// cpr CLI flags and cprd's JSON request bodies, so both front ends
// accept identical spellings. Zero values mean "use the default".
type OptionFlags struct {
	// Granularity is "per-dst" (default) or "all-tcs".
	Granularity string `json:"granularity,omitempty"`
	// Algorithm is "oll" (default), "linear", or "fu-malik".
	Algorithm string `json:"algorithm,omitempty"`
	// Objective is "min-lines" (default) or "min-devices".
	Objective string `json:"objective,omitempty"`
	// Parallelism bounds concurrent per-destination solves. Zero (the
	// default) means one worker per core (runtime.GOMAXPROCS); negative
	// values are rejected. Results are identical at every setting.
	Parallelism int `json:"parallelism,omitempty"`
	// ConflictBudget bounds each SAT call (0 = unlimited).
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
	// Isolation is "on" (default) or "off": per-destination fault
	// isolation with retries and greedy degradation (per-dst granularity
	// only).
	Isolation string `json:"isolation,omitempty"`
	// RetryAttempts bounds solve attempts per destination under isolation
	// (0 = default 3).
	RetryAttempts int `json:"retry_attempts,omitempty"`
	// DstTimeoutMS overrides the derived per-destination watchdog
	// deadline, in milliseconds (0 = derive from the request deadline).
	DstTimeoutMS int64 `json:"dst_timeout_ms,omitempty"`
	// NoFallback disables greedy degradation: exhausted destinations are
	// marked failed instead.
	NoFallback bool `json:"no_fallback,omitempty"`
	// Compress is "auto" (default: compress eligible sub-problems on
	// networks with at least 24 devices), "on", or "off" — Bonsai-style
	// symmetry compression with concrete re-verification.
	Compress string `json:"compress,omitempty"`
	// CompressRedundancy overrides the representative members kept per
	// role-equivalence class (0 = derive from the problem's policies).
	CompressRedundancy int `json:"compress_redundancy,omitempty"`
	// SolveCache is "on" (default) or "off": per-sub-problem result
	// replay from the session's solve cache on repeat repairs (only
	// effective through a Session; plain System repairs have no cache).
	SolveCache string `json:"solve_cache,omitempty"`
	// WarmStart seeds each fresh solve's phase polarities from the
	// previous repair's model for the same sub-problem. Off by default:
	// it can steer the solver to a different (equally optimal) repair
	// than a cold solve would find, trading the cross-call byte-identity
	// guarantee for speed on near-miss churn.
	WarmStart bool `json:"warm_start,omitempty"`
}

// Resolve converts the string-level flags into engine Options, rejecting
// unknown spellings.
func (f OptionFlags) Resolve() (Options, error) {
	opts := DefaultOptions()
	switch f.Granularity {
	case "", "per-dst":
		opts.Granularity = core.PerDst
	case "all-tcs":
		opts.Granularity = core.AllTCs
	default:
		return opts, fmt.Errorf("unknown granularity %q (want per-dst or all-tcs)", f.Granularity)
	}
	algo, err := maxsat.ParseAlgorithm(f.Algorithm)
	if err != nil {
		return opts, err
	}
	opts.Algorithm = algo
	switch f.Objective {
	case "", "min-lines":
		opts.Objective = core.MinLines
	case "min-devices":
		opts.Objective = core.MinDevices
	default:
		return opts, fmt.Errorf("unknown objective %q (want min-lines or min-devices)", f.Objective)
	}
	if f.Parallelism < 0 {
		return opts, fmt.Errorf("negative parallelism %d", f.Parallelism)
	}
	opts.Parallelism = f.Parallelism
	if f.ConflictBudget < 0 {
		return opts, fmt.Errorf("negative conflict budget %d", f.ConflictBudget)
	}
	opts.ConflictBudget = f.ConflictBudget
	switch f.Isolation {
	case "", "on":
		opts.Isolation = core.IsolationOn
	case "off":
		opts.Isolation = core.IsolationOff
	default:
		return opts, fmt.Errorf("unknown isolation %q (want on or off)", f.Isolation)
	}
	if f.RetryAttempts < 0 {
		return opts, fmt.Errorf("negative retry attempts %d", f.RetryAttempts)
	}
	if f.RetryAttempts > 0 {
		opts.RetryAttempts = f.RetryAttempts
	}
	if f.DstTimeoutMS < 0 {
		return opts, fmt.Errorf("negative destination timeout %dms", f.DstTimeoutMS)
	}
	opts.DstTimeout = time.Duration(f.DstTimeoutMS) * time.Millisecond
	opts.DisableFallback = f.NoFallback
	switch f.Compress {
	case "", "auto":
		opts.Compress = core.CompressAuto
	case "on":
		opts.Compress = core.CompressOn
	case "off":
		opts.Compress = core.CompressOff
	default:
		return opts, fmt.Errorf("unknown compress %q (want auto, on, or off)", f.Compress)
	}
	if f.CompressRedundancy < 0 {
		return opts, fmt.Errorf("negative compress redundancy %d", f.CompressRedundancy)
	}
	opts.CompressRedundancy = f.CompressRedundancy
	switch f.SolveCache {
	case "", "on":
		opts.DisableSolveCache = false
	case "off":
		opts.DisableSolveCache = true
	default:
		return opts, fmt.Errorf("unknown solve_cache %q (want on or off)", f.SolveCache)
	}
	opts.WarmStart = f.WarmStart
	return opts, nil
}
