package cpr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/smt/maxsat"
)

// OptionFlags is the string-level repair option surface shared by the
// cpr CLI flags and cprd's JSON request bodies, so both front ends
// accept identical spellings. Zero values mean "use the default".
type OptionFlags struct {
	// Granularity is "per-dst" (default) or "all-tcs".
	Granularity string `json:"granularity,omitempty"`
	// Algorithm is "linear" (default) or "fu-malik".
	Algorithm string `json:"algorithm,omitempty"`
	// Objective is "min-lines" (default) or "min-devices".
	Objective string `json:"objective,omitempty"`
	// Parallelism bounds concurrent per-destination solves (≤0 = 1).
	Parallelism int `json:"parallelism,omitempty"`
	// ConflictBudget bounds each SAT call (0 = unlimited).
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
}

// Resolve converts the string-level flags into engine Options, rejecting
// unknown spellings.
func (f OptionFlags) Resolve() (Options, error) {
	opts := DefaultOptions()
	switch f.Granularity {
	case "", "per-dst":
		opts.Granularity = core.PerDst
	case "all-tcs":
		opts.Granularity = core.AllTCs
	default:
		return opts, fmt.Errorf("unknown granularity %q (want per-dst or all-tcs)", f.Granularity)
	}
	switch f.Algorithm {
	case "", "linear":
		opts.Algorithm = maxsat.LinearDescent
	case "fu-malik":
		opts.Algorithm = maxsat.FuMalik
	default:
		return opts, fmt.Errorf("unknown algorithm %q (want linear or fu-malik)", f.Algorithm)
	}
	switch f.Objective {
	case "", "min-lines":
		opts.Objective = core.MinLines
	case "min-devices":
		opts.Objective = core.MinDevices
	default:
		return opts, fmt.Errorf("unknown objective %q (want min-lines or min-devices)", f.Objective)
	}
	if f.Parallelism > 0 {
		opts.Parallelism = f.Parallelism
	}
	if f.ConflictBudget < 0 {
		return opts, fmt.Errorf("negative conflict budget %d", f.ConflictBudget)
	}
	opts.ConflictBudget = f.ConflictBudget
	return opts, nil
}
