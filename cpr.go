// Package cpr is the public API of this CPR reproduction: automatic,
// minimal repair of distributed network control-plane configurations
// against reachability policies, after "Automatically Repairing Network
// Control Planes Using an Abstract Representation" (SOSP 2017).
//
// Typical use:
//
//	sys, err := cpr.Load(map[string]string{"A": cfgA, "B": cfgB, "C": cfgC})
//	policies, err := sys.ParsePolicies("reachable S T 2\nalways-blocked S U\n")
//	violated := sys.Verify(policies)
//	rep, err := sys.Repair(policies, cpr.DefaultOptions())
//	fmt.Print(rep.Plan)                  // diff-style config changes
//	text := rep.PatchedConfigs["A"]      // repaired configuration text
//
// The heavy lifting lives in internal packages: internal/arc and
// internal/harc implement the (hierarchical) abstract representation,
// internal/core the MaxSMT repair engine over a from-scratch CDCL
// SAT/MaxSAT stack (internal/smt/...), and internal/translate the
// mapping from repaired models back to configuration lines.
package cpr

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/translate"
)

// Re-exported types, so most callers need only this package.
type (
	// Policy is one reachability requirement (PC1-PC4 of the paper).
	Policy = policy.Policy
	// Options configures the repair engine (granularity, MaxSAT
	// algorithm, parallelism, cost widths, budgets).
	Options = core.Options
	// Result carries solver-level statistics of a repair.
	Result = core.Result
	// Plan is the translated set of configuration line changes.
	Plan = translate.Plan
	// Network is the semantic network model.
	Network = topology.Network
	// TrafficClass is an ordered (source, destination) subnet pair.
	TrafficClass = topology.TrafficClass
)

// Policy class constants (Table 1).
const (
	AlwaysBlocked  = policy.AlwaysBlocked
	AlwaysWaypoint = policy.AlwaysWaypoint
	KReachable     = policy.KReachable
	PrimaryPath    = policy.PrimaryPath
)

// Granularities of the MaxSMT decomposition (§5.3).
const (
	AllTCs = core.AllTCs
	PerDst = core.PerDst
)

// Minimality objectives (§5.2).
const (
	MinLines   = core.MinLines
	MinDevices = core.MinDevices
)

// DefaultOptions returns the paper's default configuration
// (maxsmt-per-dst, exact linear MaxSAT).
func DefaultOptions() Options { return core.DefaultOptions() }

// System is a loaded network: parsed configurations, the extracted
// semantic model, and its HARC.
type System struct {
	Configs map[string]*config.Config
	Network *Network
	HARC    *harc.HARC
}

// Load parses the given configurations (keyed by any label; hostnames
// come from the text) and builds the network model and HARC.
func Load(configs map[string]string) (*System, error) {
	parsed, err := parseLabeled(configs)
	if err != nil {
		return nil, err
	}
	return systemFromParsed(parsed)
}

// parseLabeled parses every configuration text, keyed by its label.
func parseLabeled(configs map[string]string) (map[string]*config.Config, error) {
	out := make(map[string]*config.Config, len(configs))
	for _, k := range sortedLabels(configs) {
		c, err := config.Parse(k, configs[k])
		if err != nil {
			return nil, err
		}
		out[k] = c
	}
	return out, nil
}

// systemFromParsed builds the network model and HARC from parsed
// configurations keyed by label. Parsed configs may be shared between
// systems (Session.Delta reuses unchanged ones): Extract and the repair
// pipeline treat them as read-only, and translate clones before
// patching.
func systemFromParsed(parsed map[string]*config.Config) (*System, error) {
	byHost := make(map[string]*config.Config, len(parsed))
	labelOf := make(map[string]string, len(parsed))
	ordered := make([]*config.Config, 0, len(parsed))
	for _, k := range sortedLabels(parsed) {
		c := parsed[k]
		ordered = append(ordered, c)
		if prev, ok := labelOf[c.Hostname]; ok {
			return nil, fmt.Errorf("cpr: duplicate hostname %q (configs %q and %q)", c.Hostname, prev, k)
		}
		labelOf[c.Hostname] = k
		byHost[c.Hostname] = c
	}
	n, err := config.Extract(ordered)
	if err != nil {
		return nil, err
	}
	return &System{Configs: byHost, Network: n, HARC: harc.Build(n)}, nil
}

// sortedLabels returns the map's keys in ascending order.
func sortedLabels[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParsePolicies parses a policy specification (one policy per line; see
// the README for the grammar) against the system's subnets and devices.
func (s *System) ParsePolicies(text string) ([]Policy, error) {
	return policy.Parse(s.Network, text)
}

// InferPolicies derives the PC1/PC3 policies the network currently
// satisfies, the procedure used for networks without a written
// specification (§8).
func (s *System) InferPolicies() []Policy {
	return policy.Infer(s.Network)
}

// Verify returns the policies the network currently violates.
func (s *System) Verify(policies []Policy) []Policy {
	return policy.Violations(s.HARC, policies)
}

// VerifyCtx is Verify under a context: the policy sweep stops at the
// first cancelled check and returns ctx's error. Verification of one
// policy is graph work (no solver), so cancellation granularity is one
// policy.
func (s *System) VerifyCtx(ctx context.Context, policies []Policy) ([]Policy, error) {
	var violated []Policy
	for _, p := range policies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !policy.Check(s.HARC, p) {
			violated = append(violated, p)
		}
	}
	return violated, nil
}

// Explain returns one human-readable counterexample line per violated
// policy: the offending path, the disconnecting failure scenario, or the
// shortcut taken instead of the primary path.
func (s *System) Explain(policies []Policy) []string {
	return policy.ExplainAll(s.HARC, policies)
}

// Repair computes a minimal repair satisfying every policy and
// translates it to configuration patches. The receiver is not modified;
// patched configuration texts are returned in RepairOutput.
func (s *System) Repair(policies []Policy, opts Options) (*RepairOutput, error) {
	return s.RepairCtx(context.Background(), policies, opts)
}

// RepairCtx is Repair under a context. Cancellation propagates into the
// CDCL solver's search loop, so a timed-out or abandoned repair stops
// consuming CPU promptly and RepairCtx returns ctx's error.
func (s *System) RepairCtx(ctx context.Context, policies []Policy, opts Options) (*RepairOutput, error) {
	res, err := core.RepairCtx(ctx, s.HARC, policies, opts)
	if err != nil {
		return nil, err
	}
	out := &RepairOutput{Result: res}
	// Under fault isolation a partial result is still worth translating:
	// every solved or degraded destination's repair is verified and
	// patched, while failed destinations are reported in Result.Stats.
	// res.Repaired lists exactly the policies the repaired state must
	// satisfy (all of them when res.Solved).
	if !res.Usable() {
		return out, nil
	}
	// Only policies on classes the repair touched need re-checking; the
	// rest were verified satisfied before the repair on identical state
	// (see core.Result.Touched).
	if bad := core.VerifyRepairIncremental(s.HARC, res.State, res.Repaired, res.Touched, opts.Workers()); len(bad) != 0 {
		return nil, fmt.Errorf("cpr: internal error: repair violates %d policies (first: %s)", len(bad), bad[0])
	}
	cfgs, err := translate.CloneConfigs(s.Configs)
	if err != nil {
		return nil, err
	}
	orig := res.Orig
	if orig == nil {
		orig = harc.StateOf(s.HARC)
	}
	plan, err := translate.Translate(s.HARC, orig, res.State, cfgs)
	if err != nil {
		return nil, err
	}
	out.Plan = plan
	out.PatchedConfigs = make(map[string]string, len(cfgs))
	for host, c := range cfgs {
		out.PatchedConfigs[host] = c.Print()
	}
	// Symmetry-compressed repairs already re-verified per sub-problem on
	// the uncompressed HARC; the belt-and-braces final check replays the
	// patched configuration text through the parser and verifies the
	// repaired policies on the network it actually describes. If that
	// ever disagrees, the whole repair is redone uncompressed.
	if res.Compressed > 0 && !verifyPatchedConfigs(ctx, out.PatchedConfigs, res.Repaired, res.State) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o := opts
		o.Compress = core.CompressOff
		return s.RepairCtx(ctx, policies, o)
	}
	return out, nil
}

// verifyPatchedConfigs re-parses patched configuration text and checks
// the given policies against the HARC of the network it describes,
// restricted to the policies' traffic classes (building the full
// all-pairs HARC would dwarf the repair itself on large networks).
// Policies are rebound to the re-parsed network's subnets by name.
//
// Fast path: when the re-parsed network's extracted state is identical
// (on every map a policy check reads) to the already-verified repaired
// state `want`, every verdict must agree with the verified one, so the
// per-policy graph checks — and the per-class ETG builds they imply —
// are skipped entirely. Any difference falls back to the full checks.
func verifyPatchedConfigs(ctx context.Context, patched map[string]string, policies []Policy, want *harc.State) bool {
	keys := make([]string, 0, len(patched))
	for k := range patched {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parsed []*config.Config
	for _, k := range keys {
		c, err := config.Parse(k, patched[k])
		if err != nil {
			return false
		}
		parsed = append(parsed, c)
	}
	n, err := config.Extract(parsed)
	if err != nil {
		return false
	}
	remap := func(tc TrafficClass) (TrafficClass, bool) {
		if tc.Src == nil || tc.Dst == nil {
			return tc, false
		}
		src, dst := n.Subnet(tc.Src.Name), n.Subnet(tc.Dst.Name)
		if src == nil || dst == nil {
			return tc, false
		}
		return TrafficClass{Src: src, Dst: dst}, true
	}
	var rebound []Policy
	seen := map[string]bool{}
	var tcs []TrafficClass
	addTC := func(tc TrafficClass) {
		if !seen[tc.Key()] {
			seen[tc.Key()] = true
			tcs = append(tcs, tc)
		}
	}
	for _, p := range policies {
		rp := p
		tc, ok := remap(p.TC)
		if !ok {
			return false
		}
		rp.TC = tc
		addTC(tc)
		if p.Kind == policy.Isolated {
			tc2, ok := remap(p.TC2)
			if !ok {
				return false
			}
			rp.TC2 = tc2
			addTC(tc2)
		}
		rebound = append(rebound, rp)
	}
	if want != nil {
		lh := harc.BuildLite(n, tcs)
		if patchedStateMatches(harc.StateOf(lh), want, tcs) {
			return true
		}
	}
	h := harc.BuildForTCs(n, tcs)
	for _, p := range rebound {
		if ctx.Err() != nil {
			return false
		}
		if !policy.Check(h, p) {
			return false
		}
	}
	return true
}

// patchedStateMatches compares the state extracted from re-parsed
// patched configs with the verified repaired state, over every map the
// policy verifiers read: per-class and per-destination presence for the
// given classes, edge costs, and waypoints. Equality means the patched
// network's graphs are the repaired state's graphs, so every verified
// verdict transfers; the construct maps (route filters, statics) only
// feed presence and need no separate comparison.
func patchedStateMatches(got, want *harc.State, tcs []TrafficClass) bool {
	boolEq := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if bv, ok := b[k]; !ok || bv != v {
				return false
			}
		}
		return true
	}
	if len(got.Cost) != len(want.Cost) {
		return false
	}
	for k, v := range got.Cost {
		if wv, ok := want.Cost[k]; !ok || wv != v {
			return false
		}
	}
	if !boolEq(got.Waypoint, want.Waypoint) {
		return false
	}
	seenDst := map[string]bool{}
	for _, tc := range tcs {
		if !boolEq(got.TC[tc.Key()], want.TC[tc.Key()]) {
			return false
		}
		if !seenDst[tc.Dst.Name] {
			seenDst[tc.Dst.Name] = true
			if !boolEq(got.Dst[tc.Dst.Name], want.Dst[tc.Dst.Name]) {
				return false
			}
		}
	}
	return true
}

// RepairOutput bundles a repair's solver result, its configuration
// patch plan, and the patched configuration texts.
type RepairOutput struct {
	Result         *Result
	Plan           *Plan
	PatchedConfigs map[string]string
}

// Solved reports whether every sub-problem found an optimal repair.
func (r *RepairOutput) Solved() bool { return r.Result != nil && r.Result.Solved }

// Usable reports whether at least one sub-problem produced a verified
// repair, i.e. the output carries a patch worth applying even though
// some destinations may have degraded or failed.
func (r *RepairOutput) Usable() bool { return r.Result != nil && r.Result.Usable() }
