package cpr

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/config"
)

func loadFigure2a(t *testing.T) *System {
	t.Helper()
	sys, err := Load(config.Figure2aConfigs())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

const figure2aSpec = `# §2.2 example policies
always-blocked S U
always-waypoint S T
reachable S T 2
primary-path R T A,B,C
`

// TestLoadRejectsDuplicateHostname pins the fix for the silent
// last-writer-wins overwrite when two configs declare the same hostname:
// Load must fail loudly, naming the hostname and both config labels.
func TestLoadRejectsDuplicateHostname(t *testing.T) {
	texts := config.Figure2aConfigs()
	var first string
	for name := range texts {
		first = name
		break
	}
	texts["zz-copy"] = texts[first]
	_, err := Load(texts)
	if err == nil {
		t.Fatal("Load accepted two configs with the same hostname")
	}
	if !strings.Contains(err.Error(), "duplicate hostname") || !strings.Contains(err.Error(), "zz-copy") {
		t.Errorf("err = %v, want a duplicate-hostname error naming the configs", err)
	}
}

func TestVerifyCtxAndRepairCtxCancelled(t *testing.T) {
	sys := loadFigure2a(t)
	policies, err := sys.ParsePolicies(figure2aSpec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.VerifyCtx(ctx, policies); !errors.Is(err, context.Canceled) {
		t.Errorf("VerifyCtx err = %v, want context.Canceled", err)
	}
	if _, err := sys.RepairCtx(ctx, policies, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("RepairCtx err = %v, want context.Canceled", err)
	}
	// An un-cancelled context behaves like the plain methods.
	violated, err := sys.VerifyCtx(context.Background(), policies)
	if err != nil || len(violated) != 1 {
		t.Errorf("VerifyCtx = %v, %v; want 1 violated", violated, err)
	}
}

func TestOptionFlagsResolve(t *testing.T) {
	opts, err := OptionFlags{}.Resolve()
	if err != nil || opts != DefaultOptions() {
		t.Errorf("zero flags = %+v, %v; want defaults", opts, err)
	}
	opts, err = OptionFlags{Granularity: "all-tcs", Algorithm: "fu-malik", Objective: "min-devices", Parallelism: 4, ConflictBudget: 100}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Granularity != AllTCs || opts.Objective != MinDevices || opts.Parallelism != 4 || opts.ConflictBudget != 100 {
		t.Errorf("resolved = %+v", opts)
	}
	for _, bad := range []OptionFlags{
		{Granularity: "x"}, {Algorithm: "x"}, {Objective: "x"}, {ConflictBudget: -1},
	} {
		if _, err := bad.Resolve(); err == nil {
			t.Errorf("flags %+v resolved without error", bad)
		}
	}
}

func TestLoadAndVerify(t *testing.T) {
	sys := loadFigure2a(t)
	if sys.Network.NumDevices() != 3 {
		t.Fatalf("devices = %d", sys.Network.NumDevices())
	}
	policies, err := sys.ParsePolicies(figure2aSpec)
	if err != nil {
		t.Fatal(err)
	}
	violated := sys.Verify(policies)
	if len(violated) != 1 || violated[0].Kind != KReachable {
		t.Fatalf("violated = %v, want just EP3", violated)
	}
}

func TestPublicRepairEndToEnd(t *testing.T) {
	sys := loadFigure2a(t)
	policies, err := sys.ParsePolicies(figure2aSpec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Repair(policies, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved() {
		t.Fatalf("unsolved: %+v", rep.Result.Stats)
	}
	if rep.Plan.NumLines() == 0 {
		t.Fatal("expected configuration changes")
	}
	// Patched configs re-load and satisfy the spec.
	sys2, err := Load(rep.PatchedConfigs)
	if err != nil {
		t.Fatalf("patched configs do not load: %v", err)
	}
	policies2, err := sys2.ParsePolicies(figure2aSpec)
	if err != nil {
		t.Fatal(err)
	}
	if v := sys2.Verify(policies2); len(v) != 0 {
		t.Fatalf("patched network violates: %v\nplan:\n%s", v, rep.Plan)
	}
	// The original system is untouched.
	if v := sys.Verify(policies); len(v) != 1 {
		t.Error("Repair must not mutate the receiver")
	}
}

func TestExplainPublicAPI(t *testing.T) {
	sys := loadFigure2a(t)
	policies, err := sys.ParsePolicies(figure2aSpec)
	if err != nil {
		t.Fatal(err)
	}
	lines := sys.Explain(policies)
	if len(lines) != 1 {
		t.Fatalf("expected one witness (EP3), got %v", lines)
	}
	if !strings.Contains(lines[0], "link") {
		t.Errorf("EP3 witness should name a failing link: %q", lines[0])
	}
}

func TestInferPolicies(t *testing.T) {
	sys := loadFigure2a(t)
	inferred := sys.InferPolicies()
	if len(inferred) != 12 {
		t.Fatalf("inferred = %d, want one per traffic class", len(inferred))
	}
	if v := sys.Verify(inferred); len(v) != 0 {
		t.Errorf("inferred policies must hold: %v", v)
	}
}

func TestRepairUnsatisfiableSpecReported(t *testing.T) {
	sys := loadFigure2a(t)
	policies, err := sys.ParsePolicies("always-blocked S T\nreachable S T 1\n")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Repair(policies, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solved() {
		t.Error("contradictory spec should be unsolvable")
	}
	if rep.Plan != nil {
		t.Error("no plan should be produced for unsolvable specs")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(map[string]string{"x": "bogus config\n"}); err == nil {
		t.Error("bad config should fail to load")
	}
	if _, err := Load(map[string]string{
		"a": "hostname dup\n",
		"b": "hostname dup\n",
	}); err == nil {
		t.Error("duplicate hostnames should fail")
	}
}

func TestPlanRendering(t *testing.T) {
	sys := loadFigure2a(t)
	policies, err := sys.ParsePolicies("reachable S T 2\n")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Repair(policies, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved() {
		t.Fatal("unsolved")
	}
	text := rep.Plan.String()
	if !strings.Contains(text, "ip route") {
		t.Errorf("expected a static route in the plan:\n%s", text)
	}
}
