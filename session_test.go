package cpr

import (
	"reflect"
	"testing"

	"repro/internal/config"
)

func loadFigure2aSession(t *testing.T) *Session {
	t.Helper()
	sess, err := NewSession(config.Figure2aConfigs())
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func mustPolicies(t *testing.T, sess *Session, spec string) []Policy {
	t.Helper()
	ps, err := sess.System().ParsePolicies(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// sameRepair asserts two repair outputs are byte-identical apart from
// timing and replay markers.
func sameRepair(t *testing.T, want, got *RepairOutput) {
	t.Helper()
	if want.Solved() != got.Solved() {
		t.Fatalf("solved: %v vs %v", want.Solved(), got.Solved())
	}
	if want.Plan.String() != got.Plan.String() {
		t.Fatalf("plans differ:\n--- fresh ---\n%s\n--- reused ---\n%s", want.Plan, got.Plan)
	}
	if !reflect.DeepEqual(want.PatchedConfigs, got.PatchedConfigs) {
		t.Fatal("patched configs differ")
	}
	if want.Result.Changes != got.Result.Changes {
		t.Fatalf("changes: %d vs %d", want.Result.Changes, got.Result.Changes)
	}
}

// TestSessionRepairReplay: a repeat repair on the same session must
// replay every sub-problem from the solve cache and produce
// byte-identical output.
func TestSessionRepairReplay(t *testing.T) {
	sess := loadFigure2aSession(t)
	ps := mustPolicies(t, sess, figure2aSpec)
	opts := DefaultOptions()

	first, err := sess.Repair(ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Solved() {
		t.Fatal("first repair not solved")
	}
	if first.Result.Reused != 0 {
		t.Fatalf("first repair reused %d problems, want 0", first.Result.Reused)
	}

	second, err := sess.Repair(ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameRepair(t, first, second)
	if second.Result.Reused != len(second.Result.Stats) {
		t.Fatalf("second repair reused %d of %d problems, want all",
			second.Result.Reused, len(second.Result.Stats))
	}
	for _, st := range second.Result.Stats {
		if !st.Reused {
			t.Errorf("problem %s not marked reused", st.Label)
		}
	}

	// An identical repeat request is answered by the whole-output memo,
	// above the sub-problem solve cache (whose hits the delta tests
	// exercise); the solve cache still retains the solvers.
	cs := sess.CacheStats()
	if cs.Entries == 0 || cs.Solvers == 0 {
		t.Fatalf("cache stats after replay: %+v, want retained entries and solvers", cs)
	}
	if cs.RetainedBytes <= 0 {
		t.Fatalf("retained bytes = %d, want > 0", cs.RetainedBytes)
	}
}

// TestSessionDeltaReplay: a delta that cannot reach any sub-problem of
// the policy set must still replay everything, and a revert must land
// back on the original content key.
func TestSessionDeltaReplay(t *testing.T) {
	sess := loadFigure2aSession(t)
	ps := mustPolicies(t, sess, figure2aSpec)
	opts := DefaultOptions()

	first, err := sess.Repair(ps, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Append an ACL on C denying U→R traffic: no policy traffic class
	// (S→U, S→T, R→T) is affected, so every sub-problem fingerprint is
	// unchanged and the forked cache replays both.
	texts := sess.Configs()
	cfgC := texts["C"] + "ip access-list extended CHURN\n deny ip 10.40.0.0 0.0.255.255 10.10.0.0 0.0.255.255\n permit ip any any\n!\n"
	next, err := sess.Delta(map[string]string{"C": cfgC})
	if err != nil {
		t.Fatal(err)
	}
	if next.Key() == sess.Key() {
		t.Fatal("delta did not change the content key")
	}
	nps := mustPolicies(t, next, figure2aSpec)
	out, err := next.Repair(nps, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The repair plan is unchanged (the churn ACL is outside every
	// policy's traffic class); the patched configs differ only by the
	// churn line itself and are checked against a cold solve below.
	if first.Plan.String() != out.Plan.String() {
		t.Fatalf("plan changed under unrelated delta:\n%s\nvs\n%s", first.Plan, out.Plan)
	}
	if out.Result.Reused != len(out.Result.Stats) {
		t.Fatalf("delta repair reused %d of %d problems, want all",
			out.Result.Reused, len(out.Result.Stats))
	}

	// The replayed result must equal a cold solve of the delta'd configs.
	cold, err := NewSession(next.Configs())
	if err != nil {
		t.Fatal(err)
	}
	coldOut, err := cold.Repair(mustPolicies(t, cold, figure2aSpec), opts)
	if err != nil {
		t.Fatal(err)
	}
	sameRepair(t, coldOut, out)

	// Reverting the change reproduces the original content key.
	back, err := next.Delta(map[string]string{"C": texts["C"]})
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != sess.Key() {
		t.Fatal("revert did not restore the original content key")
	}

	// DeltaKey predicts Delta's key without building.
	if got := sess.DeltaKey(map[string]string{"C": cfgC}); got != next.Key() {
		t.Fatalf("DeltaKey = %s, want %s", got, next.Key())
	}
}

// TestSessionDeltaInvalidation: a delta that changes a sub-problem's
// inputs must re-solve it (no stale replay), and the result must match a
// cold session byte for byte.
func TestSessionDeltaInvalidation(t *testing.T) {
	sess := loadFigure2aSession(t)
	ps := mustPolicies(t, sess, figure2aSpec)
	opts := DefaultOptions()
	if _, err := sess.Repair(ps, opts); err != nil {
		t.Fatal(err)
	}

	// Raise a link cost on B: path costs feed every destination's
	// encoding, so the affected sub-problems must re-solve.
	texts := sess.Configs()
	cfgB := texts["B"]
	next, err := sess.Delta(map[string]string{"B": cfgB + "interface Ethernet0/9\n ip address 10.99.99.1 255.255.255.0\n ip ospf cost 7\n!\n"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := next.Repair(mustPolicies(t, next, figure2aSpec), opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSession(next.Configs())
	if err != nil {
		t.Fatal(err)
	}
	coldOut, err := cold.Repair(mustPolicies(t, cold, figure2aSpec), opts)
	if err != nil {
		t.Fatal(err)
	}
	sameRepair(t, coldOut, out)

	// DisableSolveCache bypasses replay entirely.
	o := opts
	o.DisableSolveCache = true
	bypass, err := next.Repair(mustPolicies(t, next, figure2aSpec), o)
	if err != nil {
		t.Fatal(err)
	}
	if bypass.Result.Reused != 0 {
		t.Fatalf("DisableSolveCache reused %d problems, want 0", bypass.Result.Reused)
	}
	sameRepair(t, coldOut, bypass)
}

// TestSessionRelease: releasing a session drops retained memory but the
// session stays usable and still solves correctly.
func TestSessionRelease(t *testing.T) {
	sess := loadFigure2aSession(t)
	ps := mustPolicies(t, sess, figure2aSpec)
	first, err := sess.Repair(ps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cs := sess.CacheStats(); cs.Entries == 0 {
		t.Fatalf("no entries retained: %+v", cs)
	}
	sess.Release()
	if cs := sess.CacheStats(); cs.Entries != 0 || cs.RetainedBytes != 0 || cs.Solvers != 0 {
		t.Fatalf("release left retained state: %+v", cs)
	}
	again, err := sess.Repair(ps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if again.Result.Reused != 0 {
		t.Fatalf("post-release repair reused %d problems, want 0", again.Result.Reused)
	}
	sameRepair(t, first, again)
}
