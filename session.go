package cpr

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
)

// ContentKey returns the canonical content address of a configuration
// set: a sha256 over length-framed (label, text) pairs in label order.
// Two sets have equal keys iff they are byte-identical, so the key
// doubles as the session cache address and the solve-cache epoch.
func ContentKey(configs map[string]string) string {
	h := sha256.New()
	for _, k := range sortedLabels(configs) {
		fmt.Fprintf(h, "%d:%s\x00%d:%s\x00", len(k), k, len(configs[k]), configs[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Session is a loaded network plus the incremental-repair state that
// persists across calls: the per-label parsed configurations and a
// solve cache retaining each solved sub-problem's interned encoding,
// SAT solver, and extracted model, keyed by an exact fingerprint of the
// sub-problem's inputs. Repeat repairs whose sub-problems a config
// change cannot reach replay from the cache instead of re-solving.
//
// Sessions are immutable: Delta derives a new session for a changed
// config set, sharing unchanged parsed configs and (via a fork) the
// solve cache. A Session is safe for concurrent use.
type Session struct {
	key    string
	texts  map[string]string
	parsed map[string]*config.Config
	sys    *System
	cache  *core.SolveCache

	// outputs memoizes whole verified repair outputs per (policies,
	// options) key. RepairCtx is deterministic for a fixed System, so an
	// identical repeat request replays the stored output — including the
	// translated plan and patched configs — byte-identically, skipping
	// verification and translation as well as the solves. Never shared
	// across Delta (a new Session has a new HARC); cleared by Release.
	mu      sync.Mutex
	outputs map[string]*RepairOutput
}

// maxOutputMemo bounds distinct (policies, options) outputs retained per
// session; beyond it the memo drops an arbitrary entry (sessions almost
// always see one policy set, so this is a safety valve, not an LRU).
const maxOutputMemo = 8

// NewSession loads a config set (as Load) and attaches a fresh solve
// cache whose epoch is the set's ContentKey.
func NewSession(configs map[string]string) (*Session, error) {
	parsed, err := parseLabeled(configs)
	if err != nil {
		return nil, err
	}
	sys, err := systemFromParsed(parsed)
	if err != nil {
		return nil, err
	}
	texts := make(map[string]string, len(configs))
	for k, v := range configs {
		texts[k] = v
	}
	key := ContentKey(texts)
	return &Session{key: key, texts: texts, parsed: parsed, sys: sys, cache: core.NewSolveCache(key)}, nil
}

// System returns the loaded network. The returned System is shared with
// the session; treat it as read-only.
func (s *Session) System() *System { return s.sys }

// Key returns the session's content address (see ContentKey).
func (s *Session) Key() string { return s.key }

// Configs returns a copy of the session's configuration texts by label.
func (s *Session) Configs() map[string]string {
	out := make(map[string]string, len(s.texts))
	for k, v := range s.texts {
		out[k] = v
	}
	return out
}

// Delta derives a new session by overlaying changed configuration texts
// onto this session's set: a present key replaces (or adds) that
// label's text, and an empty-string value removes the label. Only
// changed labels are re-parsed; the rest share their parsed config with
// the receiver. The solve cache is forked under the new content key, so
// sub-problems whose exact input closure the change cannot reach replay
// their retained solutions instead of re-solving (see
// core.SolveCache for the soundness argument).
func (s *Session) Delta(changed map[string]string) (*Session, error) {
	texts := overlayConfigs(s.texts, changed)
	if len(texts) == 0 {
		return nil, fmt.Errorf("cpr: delta removes every configuration")
	}
	parsed := make(map[string]*config.Config, len(texts))
	changedHosts := map[string]bool{}
	for _, k := range sortedLabels(texts) {
		if old, ok := s.parsed[k]; ok && s.texts[k] == texts[k] {
			parsed[k] = old
			continue
		}
		c, err := config.Parse(k, texts[k])
		if err != nil {
			return nil, err
		}
		parsed[k] = c
		// A replaced label changes both the device it used to describe
		// and the one it now describes (usually the same).
		if old, ok := s.parsed[k]; ok {
			changedHosts[old.Hostname] = true
		}
		changedHosts[c.Hostname] = true
	}
	for k, c := range s.parsed {
		if _, kept := texts[k]; !kept {
			changedHosts[c.Hostname] = true
		}
	}
	sys, err := systemFromParsed(parsed)
	if err != nil {
		return nil, err
	}
	// The changed-device set lets the forked solve cache derive the new
	// epoch's pre-repair state as a delta from this session's — unless a
	// subnet kept its name but changed its prefix, which invalidates slot
	// presence network-wide (ACLs on unchanged devices match prefixes) and
	// forces a from-scratch state.
	for _, sub := range sys.Network.Subnets {
		if old := s.sys.Network.Subnet(sub.Name); old != nil && old.Prefix != sub.Prefix {
			changedHosts = nil
			break
		}
	}
	key := ContentKey(texts)
	return &Session{key: key, texts: texts, parsed: parsed, sys: sys, cache: s.cache.ForkDelta(key, changedHosts)}, nil
}

// DeltaKey returns the content key Delta(changed) would produce, without
// parsing or building anything. Callers (the server's /v1/delta) use it
// to answer a delta from an already-cached session for the resulting
// config set — the common case under oscillating churn.
func (s *Session) DeltaKey(changed map[string]string) string {
	return ContentKey(overlayConfigs(s.texts, changed))
}

// overlayConfigs applies a delta to a config set: present keys replace
// or add that label's text, empty-string values remove the label.
func overlayConfigs(base, changed map[string]string) map[string]string {
	out := make(map[string]string, len(base)+len(changed))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range changed {
		if v == "" {
			delete(out, k)
		} else {
			out[k] = v
		}
	}
	return out
}

// Repair is System.Repair through the session's solve cache: solved
// sub-problems are retained and replayed on later calls when their
// inputs are unchanged. Results are byte-identical to a fresh solve.
// Set opts.DisableSolveCache to bypass the cache for one call.
func (s *Session) Repair(policies []Policy, opts Options) (*RepairOutput, error) {
	return s.RepairCtx(context.Background(), policies, opts)
}

// RepairCtx is Repair under a context.
func (s *Session) RepairCtx(ctx context.Context, policies []Policy, opts Options) (*RepairOutput, error) {
	key, memo := repairMemoKey(policies, opts)
	if memo {
		if out := s.lookupOutput(key); out != nil {
			return out, nil
		}
	}
	if !opts.DisableSolveCache {
		opts.Cache = s.cache
	}
	out, err := s.sys.RepairCtx(ctx, policies, opts)
	// Memoize only clean, fully solved outputs: anything degraded,
	// failed, or fallback-tainted re-runs fresh (matching the
	// sub-problem cache's cacheability rule).
	if memo && err == nil && out != nil && out.Solved() && out.Result.CompressFallbacks == 0 {
		s.storeOutput(key, out)
	}
	return out, err
}

// repairMemoKey hashes the repair request's full input surface beyond
// the session itself: the policy set (by canonical string) and every
// option. WarmStart requests are never memoized (they deliberately
// relax cross-call byte-identity), nor are cache-bypassing ones.
func repairMemoKey(policies []Policy, opts Options) (string, bool) {
	if opts.DisableSolveCache || opts.WarmStart {
		return "", false
	}
	o := opts
	o.Cache = nil
	h := sha256.New()
	for _, p := range policies {
		str := p.String()
		fmt.Fprintf(h, "%d:%s\x00", len(str), str)
	}
	fmt.Fprintf(h, "%+v", o)
	return hex.EncodeToString(h.Sum(nil)), true
}

// lookupOutput returns a replay of a memoized output: a copy whose
// Result marks every sub-problem as reused. The underlying plan and
// patched texts are shared (callers treat outputs as read-only).
func (s *Session) lookupOutput(key string) *RepairOutput {
	s.mu.Lock()
	stored, ok := s.outputs[key]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	out := *stored
	res := *stored.Result
	res.Stats = make([]core.ProblemStat, len(stored.Result.Stats))
	copy(res.Stats, stored.Result.Stats)
	for i := range res.Stats {
		res.Stats[i].Reused = true
	}
	res.Reused = len(res.Stats)
	out.Result = &res
	return &out
}

func (s *Session) storeOutput(key string, out *RepairOutput) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.outputs == nil {
		s.outputs = make(map[string]*RepairOutput)
	}
	if _, ok := s.outputs[key]; !ok && len(s.outputs) >= maxOutputMemo {
		for k := range s.outputs {
			delete(s.outputs, k)
			break
		}
	}
	s.outputs[key] = out
}

// CacheStats reports the solve cache's entry count, retained solvers,
// hit/miss/store counters, and approximate retained bytes. Exposed in
// the server's /statsz for memory accounting of long-lived sessions.
func (s *Session) CacheStats() core.SolveCacheStats { return s.cache.Stats() }

// Release drops every retained encoding and solver, plus any memoized
// repair outputs. The session remains usable (repairs simply stop
// replaying), so LRU eviction can reclaim solver memory even while a
// request still holds the session.
func (s *Session) Release() {
	s.cache.Release()
	s.mu.Lock()
	s.outputs = nil
	s.mu.Unlock()
}
