package cpr

import (
	"context"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/policy"
)

// reparse re-binds policies to another system's network model (policy
// values hold subnet pointers, so verifying a reloaded network needs a
// re-parse, not the original objects).
func reparse(t *testing.T, sys *System, ps []Policy) []Policy {
	t.Helper()
	out, err := sys.ParsePolicies(policy.Format(ps))
	if err != nil {
		t.Fatalf("repaired policies do not re-parse on the patched network: %v", err)
	}
	return out
}

// TestChaosDegradedRepairPatchesNetwork is the end-to-end acceptance
// check for graceful degradation: with the SAT solver permanently
// starved, the repair must fall back to the greedy baseline, translate
// the realized constructs into configuration patches, and the PATCHED
// network — reloaded from text, not the in-memory state — must satisfy
// every policy the result claims repaired.
func TestChaosDegradedRepairPatchesNetwork(t *testing.T) {
	sys := loadFigure2a(t)
	policies, err := sys.ParsePolicies("reachable S T 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Set(faultinject.SATBudgetStarve, "error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	rep, err := sys.Repair(policies, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solved() {
		t.Fatal("repair claims solved under a permanently starved solver")
	}
	if !rep.Usable() || rep.Result.Degraded != 1 {
		t.Fatalf("usable=%v degraded=%d, want a usable degraded repair", rep.Usable(), rep.Result.Degraded)
	}
	if rep.Plan == nil || len(rep.PatchedConfigs) == 0 {
		t.Fatal("degraded repair produced no patch")
	}

	// Disarm before reloading: the patched network must verify on its own
	// merits, not under injection.
	faultinject.Reset()
	patched, err := Load(rep.PatchedConfigs)
	if err != nil {
		t.Fatalf("patched configs do not parse: %v", err)
	}
	violated, err := patched.VerifyCtx(context.Background(), reparse(t, patched, rep.Result.Repaired))
	if err != nil {
		t.Fatal(err)
	}
	if len(violated) != 0 {
		t.Fatalf("patched network still violates %d repaired policies (first: %s)", len(violated), violated[0])
	}
}

// TestChaosTransientFaultStillSolves checks that a single injected
// solver panic is absorbed by the retry layer and the final patched
// network satisfies the full specification.
func TestChaosTransientFaultStillSolves(t *testing.T) {
	sys := loadFigure2a(t)
	policies, err := sys.ParsePolicies(figure2aSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Set(faultinject.SATSolvePanic, "1*panic"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	rep, err := sys.Repair(policies, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved() {
		t.Fatalf("one transient panic was not absorbed: degraded=%d failed=%d",
			rep.Result.Degraded, rep.Result.Failed)
	}
	if faultinject.FiredCount(faultinject.SATSolvePanic) == 0 {
		t.Fatal("the panic failpoint never fired — the test proved nothing")
	}

	faultinject.Reset()
	patched, err := Load(rep.PatchedConfigs)
	if err != nil {
		t.Fatal(err)
	}
	violated, err := patched.VerifyCtx(context.Background(), reparse(t, patched, policies))
	if err != nil {
		t.Fatal(err)
	}
	if len(violated) != 0 {
		t.Fatalf("patched network violates %v", violated)
	}
}
