// Command cprd is the control-plane-repair daemon: a long-running HTTP
// service that parses configuration sets once into a content-addressed
// session cache and answers verify/explain/repair queries against the
// cached model, under per-request deadlines and bounded concurrency.
//
// Usage:
//
//	cprd [-listen :8080] [-sessions 64] [-workers N] [-queue N] [-timeout 5m]
//
// Endpoints (see the README section "Running cprd" for JSON shapes):
//
//	POST /v1/load     parse configs → cached session (content hash)
//	POST /v1/delta    derive a session from a cached one + changed configs
//	POST /v1/verify   violated policies of a cached session
//	POST /v1/explain  counterexamples for violated policies
//	POST /v1/repair   minimal repair (worker pool; 429 when saturated)
//	GET  /healthz     liveness
//	GET  /readyz      drain-aware readiness (503 once shutdown begins)
//	GET  /statsz      cache/solver/latency/retained-memory statistics
//
// Sessions are incremental: each cached session retains its solved
// sub-problems (encoding + SAT solver + model), and /v1/delta derives a
// new session that re-parses only the changed configs and replays any
// retained sub-problem a change cannot reach — byte-identical to a cold
// solve, at a fraction of the latency. LRU eviction releases retained
// solver memory (visible under "retained" in /statsz).
//
// With -pprof ADDR, net/http/pprof is served on a second listener so live
// CPU/heap profiles can be pulled from a running daemon without exposing
// the profiler on the service port.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight requests for up to the -drain period before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (served only via -pprof)
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		sessions = flag.Int("sessions", 64, "session cache capacity (LRU)")
		workers  = flag.Int("workers", 0, "concurrent repair solves (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "queued repairs beyond running ones before 429 (0 = 2×workers)")
		timeout  = flag.Duration("timeout", 5*time.Minute, "default per-request deadline")
		maxTO    = flag.Duration("max-timeout", 30*time.Minute, "cap on client-requested deadlines")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown drain period")
		notice   = flag.Duration("drain-notice", 0, "after flipping /readyz to 503, keep accepting this long so balancers observe the drain (set to ≥2× the balancer probe interval)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	)
	flag.Parse()
	if *pprofA != "" {
		// The main server uses its own handler, so DefaultServeMux holds
		// only the pprof routes registered by the blank import above.
		go func() {
			log.Printf("cprd pprof listening on %s", *pprofA)
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				log.Printf("cprd: pprof server: %v", err)
			}
		}()
	}
	if err := run(*listen, *sessions, *workers, *queue, *timeout, *maxTO, *drain, *notice); err != nil {
		fmt.Fprintln(os.Stderr, "cprd:", err)
		os.Exit(1)
	}
}

func run(listen string, sessions, workers, queue int, timeout, maxTO, drain, notice time.Duration) error {
	// Chaos testing: CPR_FAILPOINTS arms failpoints in the solver,
	// encoder, and session cache (see internal/faultinject). Unset in
	// production, this is a no-op.
	if err := faultinject.FromEnv(); err != nil {
		return err
	}
	if faultinject.Enabled() {
		log.Printf("cprd: fault injection armed from CPR_FAILPOINTS")
	}
	srv := server.New(server.Config{
		MaxSessions:    sessions,
		Workers:        workers,
		QueueDepth:     queue,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTO,
	})
	httpSrv := &http.Server{
		Addr:              listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cprd listening on %s", listen)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip /readyz to 503 first, then (optionally) keep the listener open
	// for a notice period: a balancer probing readiness re-routes new work
	// before the port actually stops accepting.
	srv.BeginDrain()
	if notice > 0 {
		log.Printf("cprd drain notice: /readyz now 503, accepting for another %v", notice)
		time.Sleep(notice)
	}
	log.Printf("cprd draining (up to %v)", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("cprd stopped")
	return nil
}
