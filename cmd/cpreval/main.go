// Command cpreval regenerates the paper's evaluation figures (§8).
//
// Usage:
//
//	cpreval [-experiment all|fig6|fig7|fig8a|fig8b|fig8c|fig9|fig11] [-scale quick|full]
//
// quick (default) preserves every trend at laptop scale; full mirrors
// the paper's dimensions (96 networks, 1K-policy medians, 1500-policy
// sweeps) and takes hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/prof"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which figure to regenerate")
		scale      = flag.String("scale", "quick", "quick or full")
		networks   = flag.Int("networks", 0, "override corpus size")
		subnets    = flag.Float64("subnet-scale", 0, "override subnet scale factor")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpreval:", err)
		os.Exit(1)
	}
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "cpreval:", err)
		}
		os.Exit(code)
	}

	var cfg eval.Config
	switch *scale {
	case "quick":
		cfg = eval.Quick()
	case "full":
		cfg = eval.Full()
	default:
		fmt.Fprintf(os.Stderr, "cpreval: unknown scale %q\n", *scale)
		exit(2)
	}
	if *networks > 0 {
		cfg.CorpusNetworks = *networks
	}
	if *subnets > 0 {
		cfg.SubnetScale = *subnets
	}
	ctx := eval.NewContext(cfg)

	experiments := map[string]func(*eval.Context) (*eval.Report, error){
		"fig6":     eval.Fig6,
		"fig7":     eval.Fig7,
		"fig8a":    eval.Fig8a,
		"fig8b":    eval.Fig8b,
		"fig8c":    eval.Fig8c,
		"fig9":     eval.Fig9,
		"fig11":    eval.Fig11,
		"ablation": eval.Ablation,
	}
	start := time.Now()
	if *experiment == "all" {
		reports, err := eval.All(ctx)
		for _, r := range reports {
			r.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpreval:", err)
			exit(1)
		}
	} else {
		run, ok := experiments[*experiment]
		if !ok {
			fmt.Fprintf(os.Stderr, "cpreval: unknown experiment %q\n", *experiment)
			exit(2)
		}
		r, err := run(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpreval:", err)
			exit(1)
		}
		r.Render(os.Stdout)
	}
	fmt.Fprintf(os.Stderr, "cpreval: done in %v\n", time.Since(start).Round(time.Millisecond))
	exit(0)
}
