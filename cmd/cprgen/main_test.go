package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/generate"
)

func TestWriteInstance(t *testing.T) {
	inst, err := generate.FatTree(generate.FatTreeOptions{K: 4, PC1: 2, PC3: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := write(inst, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.cfg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 {
		t.Errorf("wrote %d configs, want 20", len(entries))
	}
	spec, err := os.ReadFile(filepath.Join(dir, "policies.spec"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(spec), "always-blocked") || !strings.Contains(string(spec), "reachable") {
		t.Errorf("spec content unexpected:\n%s", spec)
	}
}

func TestWriteDataCenterInstance(t *testing.T) {
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "t", Routers: 6, Subnets: 8, BlockedFrac: 0.25, Violations: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := write(inst, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "spine0.cfg")); err != nil {
		t.Error("spine config missing")
	}
}
