// Command cprgen generates the paper's evaluation workloads: vanilla
// fat-tree configurations with PC1-PC4 policies (optionally broken, §8)
// and synthetic data-center networks calibrated to the paper's corpus.
//
// Usage:
//
//	cprgen -type fattree -k 4 -pc1 3 -pc2 3 -pc3 3 -pc4 3 -break 4 -out DIR
//	cprgen -type dc -routers 8 -subnets 32 -violations 4 -out DIR
//
// DIR receives one <device>.cfg per router plus policies.spec.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/generate"
	"repro/internal/policy"
)

func main() {
	var (
		kind       = flag.String("type", "fattree", "workload type: fattree or dc")
		preset     = flag.String("preset", "", "named symmetric workload (overrides -type): "+strings.Join(generate.PresetNames(), ", "))
		outDir     = flag.String("out", "", "output directory (required)")
		seed       = flag.Int64("seed", 1, "generation seed")
		k          = flag.Int("k", 4, "fattree: port count (even)")
		spe        = flag.Int("subnets-per-edge", 1, "fattree: host subnets per edge switch")
		pc1        = flag.Int("pc1", 3, "fattree: always-blocked policies")
		pc2        = flag.Int("pc2", 3, "fattree: always-waypoint policies")
		pc3        = flag.Int("pc3", 3, "fattree: reachability policies")
		pc4        = flag.Int("pc4", 3, "fattree: primary-path policies")
		breakN     = flag.Int("break", 0, "fattree: number of policies to violate (0 = leave intact)")
		routers    = flag.Int("routers", 8, "dc: router count")
		subnets    = flag.Int("subnets", 32, "dc: subnet count")
		blocked    = flag.Float64("blocked-frac", 0.3, "dc: fraction of PC1 traffic classes")
		violations = flag.Int("violations", 4, "dc: violated policies")
	)
	flag.Parse()
	if *outDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	var (
		inst *generate.Instance
		err  error
	)
	switch {
	case *preset != "":
		inst, err = generate.Preset(*preset, *seed)
		// Fat-tree presets are generated intact; -break violates policies
		// the same way it does for -type fattree.
		if err == nil && *breakN > 0 && strings.HasPrefix(*preset, "fattree") {
			err = generate.BreakFatTree(inst, *seed+1, *breakN)
		}
	case *kind == "fattree":
		inst, err = generate.FatTree(generate.FatTreeOptions{
			K: *k, SubnetsPerEdge: *spe, PC1: *pc1, PC2: *pc2, PC3: *pc3, PC4: *pc4, Seed: *seed,
		})
		if err == nil && *breakN > 0 {
			err = generate.BreakFatTree(inst, *seed+1, *breakN)
		}
	case *kind == "dc":
		inst, err = generate.DataCenter(generate.DCOptions{
			Name: "dc", Routers: *routers, Subnets: *subnets,
			BlockedFrac: *blocked, FullyBlockedDsts: 1, Violations: *violations, Seed: *seed,
		})
	default:
		err = fmt.Errorf("unknown workload type %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cprgen:", err)
		os.Exit(1)
	}
	if err := write(inst, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "cprgen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d devices, %d subnets, %d policies, %d currently violated → %s\n",
		inst.Name, inst.Network.NumDevices(), len(inst.Network.Subnets),
		len(inst.Policies), len(inst.Violations()), *outDir)
}

func write(inst *generate.Instance, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, cfg := range inst.Configs {
		path := filepath.Join(dir, name+".cfg")
		if err := os.WriteFile(path, []byte(cfg.Print()), 0o644); err != nil {
			return err
		}
	}
	spec := policy.Format(inst.Policies)
	return os.WriteFile(filepath.Join(dir, "policies.spec"), []byte(spec), 0o644)
}
