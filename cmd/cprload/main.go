// Command cprload replays a deterministic request mix against a cprd
// fleet (or a single cprd, for baselines) and reports SLO statistics:
// per-op latency percentiles, error/shed/reroute rates, throughput, and
// per-replica skew.
//
//	cprload -target http://localhost:8090 -mix verify -n 500 -clients 8
//	cprload -target http://localhost:8090 -mix churn -seed 7 -json report.json
//	CPR_FAILPOINTS='server/repair-abort=3*error' cprd ... # chaos on a worker
//	cprload -target http://localhost:8090 -mix repair -chaos
//
// The schedule — which client issues which op against which config
// variant, and every config byte — is a pure function of -seed and the
// shape flags; only timing varies between runs. Mixes:
//
//	verify  verification-heavy (8 verify : 1 repair : 1 delta)
//	repair  repair-heavy       (2 : 7 : 1)
//	churn   delta-heavy        (2 : 3 : 5) — exercises incremental sessions
//	mixed   balanced           (4 : 3 : 3)
//
// Virtual clients own disjoint Figure-2a config variants (distinct
// content addresses, so they spread across the ring) and treat a 404 as
// a reroute — re-load by content address, retry — and a 429/503 as a
// shed: retried, counted, never fatal. The exit status is 1 when any
// request ultimately failed.
//
// With -chaos the report is annotated that failpoints were armed on the
// workers; cprload itself injects nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fleet"
)

func main() {
	var (
		target   = flag.String("target", "http://localhost:8090", "cprfront (or cprd) base URL")
		mix      = flag.String("mix", "mixed", "request mix: "+strings.Join(fleet.MixNames(), ", "))
		n        = flag.Int("n", 200, "total requests across all clients")
		clients  = flag.Int("clients", 4, "concurrent virtual clients")
		sessions = flag.Int("sessions", 2, "config variants per client")
		seed     = flag.Int64("seed", 1, "schedule seed")
		chaos    = flag.Bool("chaos", false, "annotate the report: failpoints are armed on the workers")
		jsonOut  = flag.String("json", "", "also write the report as JSON to this file")
	)
	flag.Parse()
	if err := run(os.Stdout, *target, *mix, *n, *clients, *sessions, *seed, *chaos, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "cprload:", err)
		os.Exit(1)
	}
}

func run(out *os.File, target, mix string, n, clients, sessions int, seed int64, chaos bool, jsonOut string) error {
	report, _, err := fleet.RunLoad(fleet.LoadOptions{
		Target:   strings.TrimRight(target, "/"),
		Mix:      mix,
		Requests: n,
		Clients:  clients,
		Sessions: sessions,
		Seed:     seed,
		Chaos:    chaos,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, report)
	if jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if report.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", report.Errors, report.Requests)
	}
	return nil
}
