package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/server"
)

func TestRunAgainstSingleNode(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "report.json")
	if err := run(os.Stdout, ts.URL, "verify", 20, 2, 1, 3, false, jsonPath); err != nil {
		t.Fatalf("run: %v", err)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("reading JSON report: %v", err)
	}
	var report fleet.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("decoding JSON report: %v", err)
	}
	if report.Requests != 20 || report.Errors != 0 {
		t.Errorf("report requests=%d errors=%d, want 20 and 0", report.Requests, report.Errors)
	}
	if report.Mix != "verify" || report.Seed != 3 {
		t.Errorf("report mix=%q seed=%d, want verify/3", report.Mix, report.Seed)
	}
}

func TestRunRejectsUnknownMix(t *testing.T) {
	err := run(os.Stdout, "http://127.0.0.1:0", "bogus", 1, 1, 1, 1, false, "")
	if err == nil || !strings.Contains(err.Error(), "unknown mix") {
		t.Fatalf("err = %v, want unknown mix", err)
	}
}
