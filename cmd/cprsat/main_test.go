package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, content, algo string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "in.cnf")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(path, algo, 0, out); err != nil {
		t.Fatal(err)
	}
	out.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCNFSat(t *testing.T) {
	got := runCapture(t, "p cnf 2 2\n1 2 0\n-1 0\n", "linear")
	if !strings.Contains(got, "s SATISFIABLE") {
		t.Fatalf("output: %s", got)
	}
	if !strings.Contains(got, "v -1 2") {
		t.Errorf("model should set -1 and 2: %s", got)
	}
}

func TestCNFUnsat(t *testing.T) {
	got := runCapture(t, "p cnf 1 2\n1 0\n-1 0\n", "linear")
	if !strings.Contains(got, "s UNSATISFIABLE") {
		t.Fatalf("output: %s", got)
	}
}

func TestWCNFOptimum(t *testing.T) {
	in := "p wcnf 2 3 10\n10 1 2 0\n3 -1 0\n1 -2 0\n"
	for _, algo := range []string{"linear", "fu-malik"} {
		got := runCapture(t, in, algo)
		if !strings.Contains(got, "o 1") || !strings.Contains(got, "s OPTIMUM FOUND") {
			t.Errorf("%s output: %s", algo, got)
		}
	}
}

func TestBadInputs(t *testing.T) {
	dir := t.TempDir()
	if err := run(filepath.Join(dir, "missing.cnf"), "linear", 0, os.Stdout); err == nil {
		t.Error("missing file should error")
	}
	path := filepath.Join(dir, "bad.cnf")
	os.WriteFile(path, []byte("garbage\n"), 0o644)
	if err := run(path, "linear", 0, os.Stdout); err == nil {
		t.Error("garbage input should error")
	}
	good := filepath.Join(dir, "ok.cnf")
	os.WriteFile(good, []byte("p cnf 1 1\n1 0\n"), 0o644)
	if err := run(good, "bogus", 0, os.Stdout); err == nil {
		t.Error("bad algorithm should error")
	}
}
