// Command cprsat runs CPR's SAT/MaxSAT engine on standard DIMACS
// instances — useful for validating the solver substrate against
// external benchmarks independent of the network-repair pipeline.
//
// Usage:
//
//	cprsat [-algorithm linear|fu-malik] [-budget N] file.cnf
//	cprsat file.wcnf
//
// CNF instances are decided (SATISFIABLE/UNSATISFIABLE, with a model);
// WCNF instances are optimized (o <cost> and a model), MaxSAT-competition
// style output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/smt/dimacs"
	"repro/internal/smt/maxsat"
	"repro/internal/smt/sat"
)

func main() {
	var (
		algoFlag = flag.String("algorithm", "linear", "MaxSAT algorithm: linear or fu-malik")
		budget   = flag.Int64("budget", 0, "conflict budget per solve (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *algoFlag, *budget, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cprsat:", err)
		os.Exit(1)
	}
}

func run(path, algoFlag string, budget int64, out *os.File) error {
	var algo maxsat.Algorithm
	switch algoFlag {
	case "linear":
		algo = maxsat.LinearDescent
	case "fu-malik":
		algo = maxsat.FuMalik
	default:
		return fmt.Errorf("unknown algorithm %q", algoFlag)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	p, err := dimacs.Parse(f)
	if err != nil {
		return err
	}
	s, selectors := p.Load()
	s.Budget = budget

	if len(p.Soft) == 0 {
		switch s.Solve() {
		case sat.Sat:
			fmt.Fprintln(out, "s SATISFIABLE")
			fmt.Fprintln(out, model(s, p.NumVars))
		case sat.Unsat:
			fmt.Fprintln(out, "s UNSATISFIABLE")
		default:
			fmt.Fprintln(out, "s UNKNOWN")
		}
		return nil
	}
	res := maxsat.SolveWeighted(s, selectors, p.Weights, algo)
	switch res.Status {
	case sat.Sat:
		fmt.Fprintf(out, "o %d\n", res.Cost)
		fmt.Fprintln(out, "s OPTIMUM FOUND")
		fmt.Fprintln(out, model(s, p.NumVars))
	case sat.Unsat:
		fmt.Fprintln(out, "s UNSATISFIABLE")
	default:
		fmt.Fprintln(out, "s UNKNOWN")
	}
	return nil
}

// model renders a "v ..." line over the instance's original variables.
func model(s *sat.Solver, nvars int) string {
	var b strings.Builder
	b.WriteString("v")
	for v := 0; v < nvars; v++ {
		lit := v + 1
		if !s.Value(sat.Var(v)) {
			lit = -lit
		}
		fmt.Fprintf(&b, " %d", lit)
	}
	return b.String()
}
