package main

import (
	"os"
	"path/filepath"
	"testing"

	cpr "repro"
	"repro/internal/config"
)

func writeFigure2a(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, text := range config.Figure2aConfigs() {
		if err := os.WriteFile(filepath.Join(dir, name+".cfg"), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestReadConfigs(t *testing.T) {
	dir := writeFigure2a(t)
	texts, err := readConfigs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != 3 {
		t.Fatalf("read %d configs, want 3", len(texts))
	}
	if _, err := readConfigs(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}

func TestRunInferMode(t *testing.T) {
	dir := writeFigure2a(t)
	if err := run(dir, "", "", false, true, cpr.OptionFlags{Granularity: "per-dst", Algorithm: "linear", Parallelism: 1}, 0); err != nil {
		t.Fatalf("infer mode: %v", err)
	}
}

func TestRunVerifyOnly(t *testing.T) {
	dir := writeFigure2a(t)
	spec := filepath.Join(dir, "policies.spec")
	if err := os.WriteFile(spec, []byte("always-blocked S U\nreachable S T 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, spec, "", true, true, cpr.OptionFlags{Granularity: "per-dst", Algorithm: "linear", Parallelism: 1}, 0); err != nil {
		t.Fatalf("verify mode: %v", err)
	}
}

func TestRunRepairWritesPatchedConfigs(t *testing.T) {
	dir := writeFigure2a(t)
	spec := filepath.Join(dir, "policies.spec")
	specText := "always-blocked S U\nalways-waypoint S T\nreachable S T 2\nprimary-path R T A,B,C\n"
	if err := os.WriteFile(spec, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if err := run(dir, spec, out, false, true, cpr.OptionFlags{Granularity: "per-dst", Algorithm: "linear", Parallelism: 2}, 0); err != nil {
		t.Fatalf("repair: %v", err)
	}
	// Patched configs exist, re-parse, and satisfy the spec.
	patched, err := readConfigs(out)
	if err != nil {
		t.Fatalf("patched configs missing: %v", err)
	}
	if len(patched) != 3 {
		t.Fatalf("patched %d configs, want 3", len(patched))
	}
	// Re-run in verify mode against the patched directory.
	spec2 := filepath.Join(out, "policies.spec")
	if err := os.WriteFile(spec2, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, spec2, "", true, true, cpr.OptionFlags{Granularity: "per-dst", Algorithm: "linear", Parallelism: 1}, 0); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
}

func TestRunFuMalikAndAllTCs(t *testing.T) {
	dir := writeFigure2a(t)
	spec := filepath.Join(dir, "policies.spec")
	if err := os.WriteFile(spec, []byte("reachable S T 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, spec, "", false, true, cpr.OptionFlags{Granularity: "all-tcs", Algorithm: "fu-malik", Parallelism: 1}, 0); err != nil {
		t.Fatalf("all-tcs/fu-malik: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	dir := writeFigure2a(t)
	spec := filepath.Join(dir, "policies.spec")
	if err := os.WriteFile(spec, []byte("reachable S T 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, spec, "", false, true, cpr.OptionFlags{Granularity: "bogus", Algorithm: "linear", Parallelism: 1}, 0); err == nil {
		t.Error("bad granularity should error")
	}
	if err := run(dir, spec, "", false, true, cpr.OptionFlags{Granularity: "per-dst", Algorithm: "bogus", Parallelism: 1}, 0); err == nil {
		t.Error("bad algorithm should error")
	}
	if err := run(dir, filepath.Join(dir, "missing.spec"), "", false, true, cpr.OptionFlags{}, 0); err == nil {
		t.Error("missing spec should error")
	}
}

func TestRunUnsatisfiableSpec(t *testing.T) {
	dir := writeFigure2a(t)
	spec := filepath.Join(dir, "policies.spec")
	if err := os.WriteFile(spec, []byte("always-blocked S T\nreachable S T 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, spec, "", false, true, cpr.OptionFlags{Granularity: "per-dst", Algorithm: "linear", Parallelism: 1}, 0); err == nil {
		t.Error("unsatisfiable spec should surface an error")
	}
}
