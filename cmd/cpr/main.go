// Command cpr repairs network control-plane configurations against a
// reachability policy specification.
//
// Usage:
//
//	cpr -configs DIR [-policies FILE] [flags]
//
// DIR must contain one *.cfg file per device. Without -policies, cpr
// infers the PC1/PC3 policies the network currently satisfies and prints
// them. With -policies, cpr verifies the specification and, if violated,
// computes a minimal repair, prints the configuration diff, and (with
// -out) writes the patched configurations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	cpr "repro"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/prof"
)

func main() {
	var (
		configDir  = flag.String("configs", "", "directory of device *.cfg files (required)")
		policyFile = flag.String("policies", "", "policy specification file; omit to infer policies")
		outDir     = flag.String("out", "", "directory to write patched configurations")
		verifyOnly = flag.Bool("verify", false, "verify only; do not repair")
		showStats  = flag.Bool("stats", true, "print per-problem and solver statistics after a repair")
		granFlag   = flag.String("granularity", "per-dst", "MaxSMT granularity: per-dst or all-tcs")
		algoFlag   = flag.String("algorithm", "oll", "MaxSAT algorithm: oll, linear, or fu-malik")
		objFlag    = flag.String("objective", "min-lines", "minimality objective: min-lines or min-devices")
		parallel   = flag.Int("parallel", 0, "parallel per-destination solves (0 = one per core)")
		budget     = flag.Int64("budget", 0, "SAT conflict budget per problem (0 = unlimited)")
		timeout    = flag.Duration("timeout", 0, "repair deadline (0 = none); exceeding it cancels the solve")
		isolation  = flag.String("isolation", "on", "per-destination fault isolation: on or off")
		retries    = flag.Int("retries", 0, "solve attempts per destination under isolation (0 = default 3)")
		dstTimeout = flag.Duration("dst-timeout", 0, "per-destination watchdog deadline (0 = derive from -timeout)")
		noFallback = flag.Bool("no-fallback", false, "disable greedy degradation of exhausted destinations")
		compress   = flag.String("compress", "auto", "symmetry compression: auto, on, or off")
		solveCache = flag.String("solve-cache", "on", "session solve cache on repeat repairs: on or off (cprd sessions only; a one-shot cpr run has nothing to reuse)")
		warmStart  = flag.Bool("warm-start", false, "seed solver phases from the previous repair's model (relaxes cross-call byte-identity)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *configDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpr:", err)
		os.Exit(1)
	}
	// The same option surface as one cprd repair request (OptionFlags is
	// shared with the daemon's JSON body).
	optFlags := cpr.OptionFlags{
		Granularity:    *granFlag,
		Algorithm:      *algoFlag,
		Objective:      *objFlag,
		Parallelism:    *parallel,
		ConflictBudget: *budget,
		Isolation:      *isolation,
		RetryAttempts:  *retries,
		DstTimeoutMS:   dstTimeout.Milliseconds(),
		NoFallback:     *noFallback,
		Compress:       *compress,
		SolveCache:     *solveCache,
		WarmStart:      *warmStart,
	}
	runErr := run(*configDir, *policyFile, *outDir, *verifyOnly, *showStats, optFlags, *timeout)
	if perr := stopProf(); perr != nil && runErr == nil {
		runErr = perr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "cpr:", runErr)
		os.Exit(1)
	}
}

func run(configDir, policyFile, outDir string, verifyOnly, showStats bool, optFlags cpr.OptionFlags, timeout time.Duration) error {
	texts, err := readConfigs(configDir)
	if err != nil {
		return err
	}
	sys, err := cpr.Load(texts)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d devices, %d subnets, %d links, %d traffic classes\n",
		sys.Network.NumDevices(), len(sys.Network.Subnets), len(sys.Network.Links),
		len(sys.Network.TrafficClasses()))

	if policyFile == "" {
		inferred := sys.InferPolicies()
		fmt.Printf("# inferred policies (%d)\n%s", len(inferred), policy.Format(inferred))
		return nil
	}
	specText, err := os.ReadFile(policyFile)
	if err != nil {
		return err
	}
	policies, err := sys.ParsePolicies(string(specText))
	if err != nil {
		return err
	}
	violated := sys.Verify(policies)
	fmt.Printf("policies: %d total, %d violated\n", len(policies), len(violated))
	for _, line := range sys.Explain(policies) {
		fmt.Println("  ✗", line)
	}
	if verifyOnly || len(violated) == 0 {
		return nil
	}

	opts, err := optFlags.Resolve()
	if err != nil {
		return err
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	rep, err := sys.RepairCtx(ctx, policies, opts)
	if err != nil {
		return err
	}
	if showStats {
		printStats(rep.Result)
	}
	if !rep.Usable() {
		return fmt.Errorf("no repair found (specification unsatisfiable or budget exhausted)")
	}
	if !rep.Solved() {
		fmt.Printf("partial repair: %d destination(s) degraded to the greedy baseline, %d failed (see statuses above)\n",
			rep.Result.Degraded, rep.Result.Failed)
	}
	fmt.Printf("repair: %d configuration lines, %d waypoint changes\n",
		rep.Plan.NumLines(), len(rep.Plan.Waypoints))
	fmt.Print(rep.Plan)

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		for host, text := range rep.PatchedConfigs {
			path := filepath.Join(outDir, host+".cfg")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("patched configurations written to %s\n", outDir)
	}
	return nil
}

func printStats(res *core.Result) {
	fmt.Printf("solved %d MaxSMT problem(s) in %v (sequential %v)\n",
		len(res.Stats), res.Duration.Round(1e6), res.Sequential.Round(1e6))
	if res.Compressed > 0 || res.CompressFallbacks > 0 {
		fmt.Printf("compression: %d problem(s) solved on quotients, %d fell back uncompressed\n",
			res.Compressed, res.CompressFallbacks)
	}
	for _, st := range res.Stats {
		extra := ""
		if st.Outcome != core.OutcomeSolved {
			extra = " outcome=" + st.Outcome.String()
			if st.Fallback != "" {
				extra += " fallback=" + st.Fallback
			}
			if st.Err != "" {
				extra += " err=" + st.Err
			}
		}
		if st.Attempts > 1 {
			extra += fmt.Sprintf(" attempts=%d", st.Attempts)
		}
		if st.Compressed {
			extra += fmt.Sprintf(" compressed=%d/%d(%.1fx)",
				st.QuotientDevices, st.DeviceClasses, st.CompressRatio)
		} else if st.CompressFallback != "" {
			extra += " compress-fallback=" + st.CompressFallback
		}
		extra += stageBreakdown(st)
		fmt.Printf("  %-12s tcs=%-4d policies=%-4d vars=%-7d softs=%-5d violated=%-3d %v %s%s\n",
			st.Label, st.TCs, st.Policies, st.Vars, st.Softs, st.Violations,
			st.Duration.Round(1e5), st.Status, extra)
	}
	sv := res.Solver
	fmt.Printf("solver: conflicts=%d decisions=%d propagations=%d (binary %d) restarts=%d learned-lits=%d db-reductions=%d arena-gcs=%d\n",
		sv.Conflicts, sv.Decisions, sv.Propagations, sv.BinaryProps,
		sv.Restarts, sv.LearnedLits, sv.DBReductions, sv.ArenaGCs)
	fmt.Printf("maxsat: assumption-solves=%d cores=%d totalizer-vars=%d hardened-softs=%d\n",
		sv.AssumpSolves, sv.CoresExtracted, sv.TotalizerVars, sv.HardenedSofts)
}

// stageBreakdown renders a sub-problem's per-stage wall-clock split
// (" stages[...]"), or "" when no stage was timed.
func stageBreakdown(st core.ProblemStat) string {
	stages := []struct {
		name string
		ns   int64
	}{
		{"harc", st.HarcBuildNs},
		{"encode", st.EncodeNs},
		{"solve", st.SolveNs},
		{"concretize", st.ConcretizeNs},
		{"reverify", st.ReverifyNs},
	}
	out := ""
	for _, s := range stages {
		if s.ns == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%v", s.name, time.Duration(s.ns).Round(1e5))
	}
	if out == "" {
		return ""
	}
	return " stages[" + out + "]"
}

func readConfigs(dir string) (map[string]string, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "*.cfg"))
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no *.cfg files in %s", dir)
	}
	out := make(map[string]string, len(entries))
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), ".cfg")
		out[name] = string(data)
	}
	return out, nil
}
