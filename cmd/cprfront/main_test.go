package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/server"
)

func TestRunRequiresReplicas(t *testing.T) {
	if err := run(":0", " , ", 0, time.Second, 0, 1, time.Millisecond, time.Second, 2, time.Second); err == nil {
		t.Fatal("run with no replicas should error")
	}
}

// TestRunServesAndDrainsOnSignal boots the real front binary path — one
// worker behind it — confirms it proxies a load, then delivers SIGTERM
// and expects a clean drain.
func TestRunServesAndDrainsOnSignal(t *testing.T) {
	worker := httptest.NewServer(server.New(server.Config{}).Handler())
	defer worker.Close()

	// Reserve a port, free it, and hand it to run. The tiny reuse window
	// is acceptable in tests.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- run(addr, worker.URL, 0, 50*time.Millisecond, time.Minute, 1, time.Millisecond, time.Second, 2, 5*time.Second)
	}()

	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("front never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	body, _ := json.Marshal(server.LoadRequest{Configs: config.Figure2aConfigs()})
	resp, err := http.Post(base+"/v1/load", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("load via front: %v", err)
	}
	var lr server.LoadResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatalf("decode load: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lr.Session == "" {
		t.Fatalf("load via front: status %d, session %q", resp.StatusCode, lr.Session)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal(fmt.Errorf("front did not drain within 10s of SIGTERM"))
	}
}
