// Command cprfront is the fleet's stateless routing tier: it
// consistent-hash-routes cprd API requests by session content address
// across N worker replicas, with per-replica readiness probes,
// time-boxed ownership leases, bounded retry with key-jittered backoff,
// hedged failover to the ring successor, and graceful rebalance on
// scale-up/down.
//
// Usage:
//
//	cprfront -listen :8090 -replicas http://w1:8080,http://w2:8080,http://w3:8080
//
// Endpoints:
//
//	POST /v1/load      routed by the config set's content key
//	POST /v1/delta     routed by the base session; places a new session
//	POST /v1/verify    routed by session; draining replicas still serve
//	POST /v1/explain   routed by session
//	POST /v1/repair    routed by session
//	GET  /healthz      front liveness
//	GET  /readyz       503 while draining or no replica is eligible
//	GET  /fleetz       ring membership, per-replica state, routing counters
//	POST /admin/replicas  {"add":[...],"drain":[...],"remove":[...]}
//
// Routing is a pure function of the request's content address and the
// probed ring state: any front instance (or a restarted one) routes
// identically, so fronts scale horizontally behind a dumb TCP balancer.
// Because worker answers are deterministic in the session contents, a
// request answered by any healthy replica is byte-identical to the
// single-node answer.
//
// On SIGINT/SIGTERM the front flips /readyz to 503 and drains in-flight
// forwards for up to the -drain period before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		listen   = flag.String("listen", ":8090", "HTTP listen address")
		replicas = flag.String("replicas", "", "comma-separated cprd base URLs (required)")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = 64)")
		probe    = flag.Duration("probe", time.Second, "readiness-probe interval")
		lease    = flag.Duration("lease", 0, "ownership lease granted per passing probe (0 = 3×probe)")
		retries  = flag.Int("retries", 1, "same-replica retries on transport failure before failover")
		backoff  = flag.Duration("backoff", 25*time.Millisecond, "base retry backoff (doubled per attempt, ±20% key jitter)")
		hedge    = flag.Duration("hedge", time.Second, "hedged failover delay; negative disables hedging")
		sessRepl = flag.Int("session-replicas", 2, "ring candidates that receive each session-creating request")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown drain period")
	)
	flag.Parse()
	if err := run(*listen, *replicas, *vnodes, *probe, *lease, *retries, *backoff, *hedge, *sessRepl, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "cprfront:", err)
		os.Exit(1)
	}
}

func run(listen, replicas string, vnodes int, probe, lease time.Duration, retries int, backoff, hedge time.Duration, sessRepl int, drain time.Duration) error {
	var names []string
	for _, r := range strings.Split(replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			names = append(names, strings.TrimRight(r, "/"))
		}
	}
	if len(names) == 0 {
		return errors.New("no replicas given (use -replicas http://host:port,...)")
	}
	if retries == 0 {
		// The Config treats 0 as "use the default": -retries 0 means none.
		retries = -1
	}
	front := fleet.New(fleet.Config{
		Replicas:          names,
		VNodes:            vnodes,
		ProbeInterval:     probe,
		LeaseTTL:          lease,
		RetriesPerReplica: retries,
		RetryBackoff:      backoff,
		HedgeAfter:        hedge,
		SessionReplicas:   sessRepl,
	})
	front.Start()
	defer front.Close()

	httpSrv := &http.Server{
		Addr:              listen,
		Handler:           front.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cprfront listening on %s, routing to %d replicas", listen, len(names))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	front.BeginDrain()
	log.Printf("cprfront draining (up to %v)", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("cprfront stopped")
	return nil
}
