// Command cprbench runs the headline repair benchmarks and emits a JSON
// snapshot in the BENCH_baseline.json shape, so benchmark trajectories
// can be compared across PRs with benchstat.
//
// Usage:
//
//	cprbench [-bench REGEX] [-count 5] [-benchtime 1x] [-o FILE]
//
// The snapshot embeds the raw `go test -bench` lines (the format
// benchstat consumes) plus a parsed per-benchmark summary. To compare a
// snapshot against the committed baseline:
//
//	go run ./cmd/cprbench -o current.json
//	jq -r '.lines[]' BENCH_baseline.json > baseline.txt
//	jq -r '.lines[]' current.json > current.txt
//	benchstat baseline.txt current.txt
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// HeadlineBenchmarks are the benchmarks tracked across PRs: the Figure
// 2a repair encoding, the per-destination decomposition on a mid-size
// data center, the cprd warm and churn (incremental delta) repair
// paths, the symmetry-compression speedup pair on the broken
// fattree-k8 preset plus the quotient-build micro-benchmark, the
// quotient-side vs concrete patch-verification pair with the
// incremental-state micro-benchmarks behind it, the SAT-core
// microbenchmarks (conflict-heavy search, incremental assumptions, and
// learned-clause reduction with arena GC), the MaxSAT engine pair
// (core-guided OLL vs linear descent), and the solve-stage-dominated
// dc-256 repair pair whose solve-ns/op metric is the OLL speedup
// evidence.
const HeadlineBenchmarks = "BenchmarkTable2RepairEncodingFig2a$|BenchmarkAblationGranularityPerDst$|BenchmarkServerRepairWarm$|BenchmarkServerRepairChurn$|BenchmarkCompressRepairFatTreeOn$|BenchmarkCompressRepairFatTreeOff$|BenchmarkCompressQuotientBuild$|BenchmarkCompressVerifyQuotientOn$|BenchmarkCompressVerifyQuotientOff$|BenchmarkHarcStateOfDelta$|BenchmarkHarcStateOfFull$|BenchmarkSATPigeonhole$|BenchmarkSATIncrementalAssumptions$|BenchmarkSATReduceAndGC$|BenchmarkMaxSATOLL$|BenchmarkMaxSATLinear$|BenchmarkMaxSATWeightedOLL$|BenchmarkMaxSATWeightedLinear$|BenchmarkRepairDC256SolveStageOLL$|BenchmarkRepairDC256SolveStageLinear$"

// HeadlinePackages are the packages holding the headline benchmarks.
const HeadlinePackages = "repro,repro/internal/compress,repro/internal/smt/sat,repro/internal/smt/maxsat"

// Snapshot is the JSON shape of BENCH_baseline.json.
type Snapshot struct {
	Captured   string `json:"captured"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Benchtime  string `json:"benchtime"`
	Count      int    `json:"count"`
	// Lines are the raw benchmark result lines, directly consumable by
	// benchstat after extraction with jq -r '.lines[]'.
	Lines []string `json:"lines"`
	// Benchmarks summarizes each benchmark's runs (parsed from Lines).
	Benchmarks map[string]*Series `json:"benchmarks"`
}

// Series collects one benchmark's per-run measurements. SolveNsPerOp
// is the repair benchmarks' custom solve-stage metric (time spent in
// MaxSAT search, excluding encode/concretize/verify).
type Series struct {
	NsPerOp      []float64 `json:"ns_per_op"`
	BytesPerOp   []float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp  []float64 `json:"allocs_per_op,omitempty"`
	SolveNsPerOp []float64 `json:"solve_ns_per_op,omitempty"`
}

var resultLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

func main() {
	var (
		bench     = flag.String("bench", HeadlineBenchmarks, "benchmark regex to run")
		count     = flag.Int("count", 5, "runs per benchmark")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		pkg       = flag.String("pkg", HeadlinePackages, "comma-separated packages holding the benchmarks")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*bench, *benchtime, *pkg, *out, *count); err != nil {
		fmt.Fprintln(os.Stderr, "cprbench:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, pkg, out string, count int) error {
	args := []string{"test", "-run", "^$",
		"-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count)}
	args = append(args, strings.Split(pkg, ",")...)
	cmd := exec.Command("go", args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	snap := &Snapshot{
		Captured:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime,
		Count:      count,
		Benchmarks: map[string]*Series{},
	}
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := resultLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		snap.Lines = append(snap.Lines, line)
		name := strings.SplitN(m[1], "-", 2)[0] // strip -GOMAXPROCS suffix
		s := snap.Benchmarks[name]
		if s == nil {
			s = &Series{}
			snap.Benchmarks[name] = s
		}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = append(s.NsPerOp, v)
			case "B/op":
				s.BytesPerOp = append(s.BytesPerOp, v)
			case "allocs/op":
				s.AllocsPerOp = append(s.AllocsPerOp, v)
			case "solve-ns/op":
				s.SolveNsPerOp = append(s.SolveNsPerOp, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(snap.Lines) == 0 {
		return fmt.Errorf("no benchmark results matched %q", bench)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}
