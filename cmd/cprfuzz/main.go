// Command cprfuzz drives randomized differential-testing campaigns over
// the crosscheck oracles: the CDCL SAT engine versus brute force, the
// MaxSAT optimizers versus exhaustive optima, end-to-end repair versus
// hop-by-hop simulation, and the sharded cprd fleet (with an injected
// mid-repair replica crash) versus a single node.
//
//	cprfuzz -seed 1 -n 200              # 200 iterations of every oracle
//	cprfuzz -oracle sat -duration 30s   # time-boxed SAT-only campaign
//	cprfuzz -oracle repair -seed 7 -n 1 # reproduce one repair failure
//
// Every failure is reproducible from its printed seed; reproducer
// artifacts (minimized DIMACS instances, broken configurations and the
// policy specification) are written below -out. The exit status is 1
// when any divergence was found.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/crosscheck"
)

type oracle struct {
	name  string
	check func(int64) error
}

var oracles = []oracle{
	{"sat", crosscheck.CheckSAT},
	{"maxsat", crosscheck.CheckMaxSAT},
	{"arenagc", crosscheck.CheckArenaGC},
	{"repair", crosscheck.CheckRepair},
	{"compress", crosscheck.CheckCompress},
	{"incremental", crosscheck.CheckIncremental},
	{"fleet", crosscheck.CheckFleet},
}

func main() {
	var (
		seed     = flag.Int64("seed", 1, "base seed; iteration i uses seed+i")
		n        = flag.Int("n", 100, "iterations per oracle")
		duration = flag.Duration("duration", 0, "time budget (overrides -n when set)")
		which    = flag.String("oracle", "all", "oracle to run: all, sat, maxsat, arenagc, repair, compress, incremental, or fleet")
		outDir   = flag.String("out", "", "directory for reproducer artifacts (default: a fresh temp dir)")
	)
	flag.Parse()

	var selected []oracle
	for _, o := range oracles {
		if *which == "all" || *which == o.name {
			selected = append(selected, o)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "cprfuzz: unknown oracle %q (want all, sat, maxsat, arenagc, repair, compress, incremental, or fleet)\n", *which)
		os.Exit(2)
	}

	start := time.Now()
	deadline := time.Time{}
	if *duration > 0 {
		deadline = start.Add(*duration)
	}
	counts := map[string]int{}
	divergences := 0
	for i := 0; ; i++ {
		if deadline.IsZero() {
			if i >= *n {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		s := *seed + int64(i)
		for _, o := range selected {
			counts[o.name]++
			err := o.check(s)
			if err == nil {
				continue
			}
			divergences++
			fmt.Printf("DIVERGENCE %v\n", err)
			var d *crosscheck.Divergence
			if errors.As(err, &d) && len(d.Files) > 0 {
				dir, derr := reproDir(*outDir, d)
				if derr != nil {
					fmt.Fprintf(os.Stderr, "cprfuzz: cannot write reproducer: %v\n", derr)
					continue
				}
				for name, content := range d.Files {
					if werr := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); werr != nil {
						fmt.Fprintf(os.Stderr, "cprfuzz: cannot write reproducer: %v\n", werr)
					}
				}
				fmt.Printf("  reproducer written to %s\n", dir)
				fmt.Printf("  re-run with: go run ./cmd/cprfuzz -oracle %s -seed %d -n 1\n", d.Oracle, d.Seed)
			}
		}
	}
	for _, o := range selected {
		fmt.Printf("%-7s %6d iterations\n", o.name, counts[o.name])
	}
	fmt.Printf("%d divergences in %v\n", divergences, time.Since(start).Round(time.Millisecond))
	if divergences > 0 {
		os.Exit(1)
	}
}

// reproDir creates the directory holding one divergence's artifacts.
func reproDir(base string, d *crosscheck.Divergence) (string, error) {
	if base == "" {
		return os.MkdirTemp("", fmt.Sprintf("cprfuzz-%s-seed%d-", d.Oracle, d.Seed))
	}
	dir := filepath.Join(base, fmt.Sprintf("%s-seed%d", d.Oracle, d.Seed))
	return dir, os.MkdirAll(dir, 0o755)
}
