// Data-center repair vs a hand-written repair: the Figure 11 comparison.
//
// Generates one synthetic data-center network in the style of the
// paper's 96-network corpus (leaf-spine, ~1 policy per traffic class,
// a few violated policies), repairs it with CPR, simulates an operator
// fixing the same violations by hand, and compares the two repairs by
// lines of configuration changed and traffic classes impacted.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/generate"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/translate"
)

func main() {
	inst, err := generate.DataCenter(generate.DCOptions{
		Name:    "dc-example",
		Routers: 8, Subnets: 24,
		BlockedFrac:      0.3,
		FullyBlockedDsts: 1,
		Violations:       5,
		Seed:             42,
	})
	if err != nil {
		log.Fatal(err)
	}
	counts := policy.CountByKind(inst.Policies)
	fmt.Printf("%s: %d routers, %d subnets, %d policies (%d PC1 / %d PC3)\n",
		inst.Name, inst.Network.NumDevices(), len(inst.Network.Subnets),
		len(inst.Policies), counts[policy.AlwaysBlocked], counts[policy.KReachable])

	violated := inst.Violations()
	fmt.Printf("\nthe snapshot violates %d policies:\n", len(violated))
	for _, p := range violated {
		fmt.Println("  ✗", p)
	}

	// CPR's repair.
	h := inst.Harc()
	orig := harc.StateOf(h)
	res, err := core.Repair(h, inst.Policies, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatal("CPR found no repair")
	}
	cfgs, err := translate.CloneConfigs(inst.Configs)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := translate.Translate(h, orig, res.State, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	cprImpact := len(translate.ImpactedTCs(h, orig, res.State))

	// The simulated operator's repair of the same violations.
	op, err := generate.SimulateOperator(inst, 43)
	if err != nil {
		log.Fatal(err)
	}

	total := len(h.TCs)
	fmt.Printf("\n%-22s %12s %18s\n", "", "lines", "TCs impacted")
	fmt.Printf("%-22s %12d %11d (%.1f%%)\n", "CPR", plan.NumLines(), cprImpact,
		100*float64(cprImpact)/float64(total))
	fmt.Printf("%-22s %12d %11d (%.1f%%)\n", "hand-written", op.Lines, op.ImpactedTCs,
		100*float64(op.ImpactedTCs)/float64(total))

	fmt.Println("\nCPR's patch:")
	fmt.Print(plan)
}
