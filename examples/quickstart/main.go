// Quickstart: the paper's running example (§2.2, Figures 1-4).
//
// Loads the three-router network of Figure 2a, checks the four example
// policies EP1-EP4, lets CPR compute a minimal repair for the violated
// EP3 (S must reach T despite any single link failure), prints the
// configuration patch, and re-verifies the patched network.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cpr "repro"
	"repro/internal/config"
)

const spec = `# The four §2.2 policies:
# EP1: traffic from S to U is always blocked
always-blocked S U
# EP2: traffic from S to T always traverses a firewall
always-waypoint S T
# EP3: S can reach T as long as there is at most one link failure
reachable S T 2
# EP4: with no failures, traffic from R to T uses A -> B -> C
primary-path R T A,B,C
`

func main() {
	sys, err := cpr.Load(config.Figure2aConfigs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d routers, %d subnets, %d links\n\n",
		sys.Network.NumDevices(), len(sys.Network.Subnets), len(sys.Network.Links))

	policies, err := sys.ParsePolicies(spec)
	if err != nil {
		log.Fatal(err)
	}
	violated := sys.Verify(policies)
	fmt.Printf("%d of %d policies violated:\n", len(violated), len(policies))
	for _, p := range violated {
		fmt.Println("  ✗", p)
	}

	fmt.Println("\ncomputing minimal repair (maxsmt-per-dst)...")
	rep, err := sys.Repair(policies, cpr.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Solved() {
		log.Fatal("no repair exists for this specification")
	}
	fmt.Printf("repair: %d configuration lines, %d middlebox placements (cf. Figure 2d: \"two lines plus a firewall\")\n\n",
		rep.Plan.NumLines(), len(rep.Plan.Waypoints))
	fmt.Print(rep.Plan)

	// Reload the patched configurations and confirm every policy holds.
	fixed, err := cpr.Load(rep.PatchedConfigs)
	if err != nil {
		log.Fatal(err)
	}
	fixedPolicies, err := fixed.ParsePolicies(spec)
	if err != nil {
		log.Fatal(err)
	}
	if bad := fixed.Verify(fixedPolicies); len(bad) != 0 {
		log.Fatalf("patched network still violates %v", bad)
	}
	fmt.Println("\npatched network satisfies all four policies ✓")

	fmt.Println("\nrouter A after the repair:")
	fmt.Print(rep.PatchedConfigs["A"])
}
