// Fat-tree repair: the paper's synthetic evaluation scenario (§8).
//
// Generates a vanilla 4-port fat-tree (20 routers) with twelve policies
// across all four classes, breaks it the way the paper does — inverted
// core ACLs and primary-path costs moved to a different core switch —
// and repairs it at both MaxSMT granularities, comparing times and
// repair sizes (Figures 8a and 9 in miniature).
//
// Run with: go run ./examples/fattree
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/generate"
	"repro/internal/harc"
	"repro/internal/translate"
)

func main() {
	inst, err := generate.FatTree(generate.FatTreeOptions{
		K: 4, PC1: 3, PC2: 3, PC3: 3, PC4: 3, Seed: 2017,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %d routers, %d links, %d policies (3 per class)\n",
		inst.Name, inst.Network.NumDevices(), len(inst.Network.Links), len(inst.Policies))

	if err := generate.BreakFatTree(inst, 2018, 0); err != nil {
		log.Fatal(err)
	}
	violated := inst.Violations()
	fmt.Printf("\nafter breaking the configurations, %d policies are violated:\n", len(violated))
	for _, p := range violated {
		fmt.Println("  ✗", p)
	}

	h := inst.Harc()
	orig := harc.StateOf(h)

	for _, gran := range []core.Granularity{core.PerDst, core.AllTCs} {
		opts := core.DefaultOptions()
		opts.Granularity = gran
		opts.Parallelism = 4
		res, err := core.Repair(h, inst.Policies, opts)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Solved {
			fmt.Printf("\n%s: did not finish\n", gran)
			continue
		}
		cfgs, err := translate.CloneConfigs(inst.Configs)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := translate.Translate(h, orig, res.State, cfgs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %v wall (%v sequential), %d problems, %d lines changed, %d middleboxes\n",
			gran, res.Duration.Round(1e6), res.Sequential.Round(1e6),
			len(res.Stats), plan.NumLines(), len(plan.Waypoints))
		for _, st := range res.Stats {
			fmt.Printf("    %-12s %6d vars %5d softs %v %s\n",
				st.Label, st.Vars, st.Softs, st.Duration.Round(1e5), st.Status)
		}
		if gran == core.PerDst {
			fmt.Println("\n  patch:")
			fmt.Print(indent(plan.String()))
		}
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		if line != "" {
			out += "    " + line + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
