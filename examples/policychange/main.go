// Policy change: using CPR to evolve a working network (§1).
//
// The same machinery that repairs buggy configurations also implements
// intent changes: give CPR the current configurations and the *new*
// specification, and the "repair" is the minimal patch that migrates
// the network. Here the Figure 2a network — where traffic from S to U
// is deliberately blocked — is re-specified so that S must reach U even
// under a single link failure, while the other policies keep holding.
//
// Run with: go run ./examples/policychange
package main

import (
	"fmt"
	"log"

	cpr "repro"
	"repro/internal/config"
)

const oldSpec = `always-blocked S U
always-waypoint S T
primary-path R T A,B,C
`

const newSpec = `# Changed intent: S must now reach U, surviving one link failure.
reachable S U 2
always-waypoint S T
primary-path R T A,B,C
`

func main() {
	sys, err := cpr.Load(config.Figure2aConfigs())
	if err != nil {
		log.Fatal(err)
	}

	oldPolicies, err := sys.ParsePolicies(oldSpec)
	if err != nil {
		log.Fatal(err)
	}
	if v := sys.Verify(oldPolicies); len(v) != 0 {
		log.Fatalf("network should satisfy the old intent, violates %v", v)
	}
	fmt.Println("current network satisfies the old intent (S->U blocked) ✓")

	newPolicies, err := sys.ParsePolicies(newSpec)
	if err != nil {
		log.Fatal(err)
	}
	violated := sys.Verify(newPolicies)
	fmt.Printf("\nunder the new intent, %d policies are violated:\n", len(violated))
	for _, p := range violated {
		fmt.Println("  ✗", p)
	}

	rep, err := sys.Repair(newPolicies, cpr.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Solved() {
		log.Fatal("no migration patch exists")
	}
	fmt.Printf("\nmigration patch (%d lines, %d middlebox placements):\n",
		rep.Plan.NumLines(), len(rep.Plan.Waypoints))
	fmt.Print(rep.Plan)

	fixed, err := cpr.Load(rep.PatchedConfigs)
	if err != nil {
		log.Fatal(err)
	}
	fixedPolicies, err := fixed.ParsePolicies(newSpec)
	if err != nil {
		log.Fatal(err)
	}
	if bad := fixed.Verify(fixedPolicies); len(bad) != 0 {
		log.Fatalf("migrated network violates %v", bad)
	}
	fmt.Println("\nmigrated network satisfies the new intent ✓")
}
