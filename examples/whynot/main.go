// Why-not diagnosis: counterexample witnesses for violated policies.
//
// Verification tools that only say "policy violated" leave the operator
// hunting; this example shows the witness generator that accompanies the
// verifier — the offending path for blocked/waypoint policies, the
// disconnecting failure scenario for reachability, the shortcut taken
// instead of the primary path — on progressively broken variants of the
// paper's Figure 2a network.
//
// Run with: go run ./examples/whynot
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/harc"
	"repro/internal/policy"
)

const spec = `always-blocked S U
always-waypoint S T
reachable S T 2
primary-path R T A,B,C
`

func main() {
	scenarios := []struct {
		title string
		mut   func(map[string]string)
	}{
		{"original network (EP3 is violated)", func(map[string]string) {}},
		{"ACL on B removed (EP1 also violated)", func(cfgs map[string]string) {
			cfgs["B"] = removeLine(cfgs["B"], " ip access-group BLOCK-U in")
		}},
		{"A-C adjacency enabled (EP2 and EP4 also violated)", func(cfgs map[string]string) {
			cfgs["C"] = removeLine(cfgs["C"], " passive-interface Ethernet0/1")
		}},
	}
	for _, sc := range scenarios {
		cfgs := config.Figure2aConfigs()
		sc.mut(cfgs)
		fmt.Printf("== %s ==\n", sc.title)
		var parsed []*config.Config
		for name, text := range cfgs {
			c, err := config.Parse(name, text)
			if err != nil {
				log.Fatal(err)
			}
			parsed = append(parsed, c)
		}
		n, err := config.Extract(parsed)
		if err != nil {
			log.Fatal(err)
		}
		policies, err := policy.Parse(n, spec)
		if err != nil {
			log.Fatal(err)
		}
		h := harc.Build(n)
		lines := policy.ExplainAll(h, policies)
		if len(lines) == 0 {
			fmt.Println("  all policies hold")
		}
		for _, l := range lines {
			fmt.Println("  ✗", l)
		}
		fmt.Println()
	}
}

func removeLine(text, line string) string {
	out := ""
	for _, l := range splitKeep(text) {
		if l == line {
			continue
		}
		out += l + "\n"
	}
	return out
}

func splitKeep(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
