// Growing a network: repairing configurations to integrate new gear (§1).
//
// The paper notes the same machinery that fixes bugs also handles growth:
// "to add new routers or end-hosts to the network, an operator must
// manually determine how to repair the network's configurations to ensure
// the new hosts are reachable." Here a new router D — carrying subnet V —
// has been cabled to router C of the Figure 2a network, but its uplink is
// still passive (the factory-default state). CPR computes the integration
// patch from the reachability requirements alone.
//
// Run with: go run ./examples/grow
package main

import (
	"fmt"
	"log"

	cpr "repro"
	"repro/internal/config"
)

func main() {
	cfgs := config.Figure2aConfigs()
	// Cable D to C: a new interface stanza on C...
	cfgs["C"] += `!
interface Ethernet0/4
 description Link-to-D
 ip address 10.0.4.3 255.255.255.0
`
	// ...and the new router D, whose uplink is not yet OSPF-active.
	cfgs["D"] = `hostname D
!
interface Ethernet0/1
 description Link-to-C
 ip address 10.0.4.4 255.255.255.0
!
interface Ethernet0/2
 description Subnet-V
 ip address 10.50.0.1 255.255.0.0
!
router ospf 10
 redistribute connected
 passive-interface Ethernet0/1
 passive-interface Ethernet0/2
 network 10.0.0.0 0.255.255.255 area 0
`
	sys, err := cpr.Load(cfgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network grown to %d routers, %d subnets\n", sys.Network.NumDevices(), len(sys.Network.Subnets))

	spec := `# Existing intent:
always-blocked S U
always-waypoint S T
primary-path R T A,B,C
# New intent: the new subnet V must be reachable.
reachable S V 1
reachable V S 1
reachable R V 1
`
	policies, err := sys.ParsePolicies(spec)
	if err != nil {
		log.Fatal(err)
	}
	violated := sys.Verify(policies)
	fmt.Printf("\n%d policies violated before integration:\n", len(violated))
	for _, p := range violated {
		fmt.Println("  ✗", p)
	}

	// all-tcs lets the repair touch routing adjacencies — the natural
	// integration is activating D's uplink.
	opts := cpr.DefaultOptions()
	opts.Granularity = cpr.AllTCs
	rep, err := sys.Repair(policies, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Solved() {
		log.Fatal("no integration patch found")
	}
	fmt.Printf("\nintegration patch (%d lines):\n", rep.Plan.NumLines())
	fmt.Print(rep.Plan)

	fixed, err := cpr.Load(rep.PatchedConfigs)
	if err != nil {
		log.Fatal(err)
	}
	fixedPolicies, err := fixed.ParsePolicies(spec)
	if err != nil {
		log.Fatal(err)
	}
	if bad := fixed.Verify(fixedPolicies); len(bad) != 0 {
		log.Fatalf("integrated network violates %v", bad)
	}
	fmt.Println("\nall policies hold on the integrated network ✓")
}
