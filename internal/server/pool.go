package server

import (
	"context"
	"errors"
)

// errSaturated is returned by workerPool.do when both the running slots
// and the admission queue are full; the HTTP layer translates it to 429.
var errSaturated = errors.New("server: worker pool saturated")

// workerPool bounds concurrent solves and the number of solves allowed
// to wait for a slot. Admission is a non-blocking ticket acquire — work
// beyond workers+queueDepth is shed immediately rather than accepted and
// left to pile up, which keeps tail latency bounded under overload.
type workerPool struct {
	tickets chan struct{} // capacity workers+queueDepth: admitted work
	slots   chan struct{} // capacity workers: running work
}

func newWorkerPool(workers, queueDepth int) *workerPool {
	return &workerPool{
		tickets: make(chan struct{}, workers+queueDepth),
		slots:   make(chan struct{}, workers),
	}
}

// waiting reports how many admitted solves are queued but not yet
// running (an instantaneous estimate — both channel reads race with
// admissions, which is fine for a Retry-After hint).
func (p *workerPool) waiting() int {
	w := len(p.tickets) - len(p.slots)
	if w < 0 {
		w = 0
	}
	return w
}

// do runs fn on a worker slot. It returns errSaturated if the pool
// cannot admit more work, or ctx's error if the deadline expires while
// queued. fn runs on the caller's goroutine — do only gates entry.
func (p *workerPool) do(ctx context.Context, fn func()) error {
	select {
	case p.tickets <- struct{}{}:
	default:
		return errSaturated
	}
	defer func() { <-p.tickets }()
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.slots }()
	fn()
	return nil
}
