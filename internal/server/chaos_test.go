package server

import (
	"net/http"
	"testing"

	"repro/internal/config"
	"repro/internal/faultinject"
)

// TestChaosDaemonSurvivesInjectedFaults drives a live daemon through
// the server-side failpoints: a cache build failure must surface as a
// clean 400 (not a crash or a poisoned cache entry), a starved solver
// must yield a degraded-but-usable repair response with accurate
// per-destination outcomes and /statsz counters, and /healthz must stay
// up throughout.
func TestChaosDaemonSurvivesInjectedFaults(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	defer faultinject.Reset()

	// One injected load failure: the first load 400s, the retry succeeds
	// (the failed build must not be cached as a session).
	if err := faultinject.Set(faultinject.ServerCacheLoadError, "1*error"); err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if st := postJSON(t, ts, "/v1/load", LoadRequest{Configs: config.Figure2aConfigs()}, &er); st != http.StatusBadRequest {
		t.Fatalf("injected load: status = %d, want 400", st)
	}
	if faultinject.FiredCount(faultinject.ServerCacheLoadError) != 1 {
		t.Fatal("cache failpoint did not fire")
	}
	var hz Healthz
	if st := getJSON(t, ts, "/healthz", &hz); st != http.StatusOK || !hz.OK {
		t.Fatalf("healthz after injected load failure = %d %+v", st, hz)
	}
	lr := loadFigure2a(t, ts)
	if lr.Cached {
		t.Error("recovered load claims cached — the failed build leaked into the cache")
	}

	// Permanently starved solver: the PC3-only repair must degrade to the
	// greedy baseline, and the response must say so per destination.
	if err := faultinject.Set(faultinject.SATBudgetStarve, "error"); err != nil {
		t.Fatal(err)
	}
	var rr RepairResponse
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{
		Session: lr.Session, Policies: "reachable S T 2\n",
	}, &rr); st != http.StatusOK {
		t.Fatalf("degraded repair: status = %d, want 200", st)
	}
	if rr.Solved || rr.Degraded != 1 || rr.Failed != 0 {
		t.Fatalf("degraded repair = solved=%v degraded=%d failed=%d, want one degraded destination",
			rr.Solved, rr.Degraded, rr.Failed)
	}
	if len(rr.PatchedConfigs) == 0 || rr.Plan == "" {
		t.Error("degraded repair produced no patch")
	}
	found := false
	for _, pr := range rr.Problems {
		if pr.Outcome == "degraded" {
			found = true
			if pr.Fallback != "greedy" || pr.Attempts < 2 || pr.Error == "" {
				t.Errorf("degraded problem = %+v, want greedy fallback after retries with an error", pr)
			}
		}
	}
	if !found {
		t.Error("no problem reported outcome=degraded")
	}

	// With injection cleared, the same session must fully solve, and the
	// /statsz outcome counters must reflect both repairs.
	faultinject.Reset()
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{
		Session: lr.Session, Policies: "reachable S T 2\n",
	}, &rr); st != http.StatusOK || !rr.Solved {
		t.Fatalf("post-chaos repair = %d solved=%v, want a clean solve", st, rr.Solved)
	}
	sz := srv.stats.snapshot(srv.cache.len())
	if sz.Destinations.Degraded != 1 || sz.Destinations.Solved != 1 || sz.Destinations.Failed != 0 {
		t.Errorf("statsz destinations = %+v, want solved=1 degraded=1 failed=0", sz.Destinations)
	}
	if st := getJSON(t, ts, "/healthz", &hz); st != http.StatusOK || !hz.OK {
		t.Fatalf("healthz after chaos = %d %+v", st, hz)
	}
}
