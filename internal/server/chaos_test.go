package server

import (
	"net/http"
	"testing"

	"repro/internal/config"
	"repro/internal/faultinject"
)

// TestChaosIncrementalSessionSurvivesDeltaFaults drives the incremental
// layer through its failpoints: an injected /v1/delta failure must
// surface as a clean 400 without poisoning the session cache, the
// retried delta must still replay every sub-problem from the base
// session's forked cache, and a fault-degraded repair on the reused
// session must never be memoized — once injection clears, the same
// request must re-solve cleanly.
func TestChaosIncrementalSessionSurvivesDeltaFaults(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	defer faultinject.Reset()

	lr := loadFigure2a(t, ts)
	var rr RepairResponse
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{Session: lr.Session, Policies: figure2aSpec}, &rr); st != http.StatusOK || !rr.Solved {
		t.Fatalf("warmup repair = %d solved=%v", st, rr.Solved)
	}

	// One injected delta failure: clean 400, healthz up, nothing cached.
	churn := map[string]string{"C": config.Figure2aConfigs()["C"] + "ip access-list extended CHURN\n permit ip any any\n!\n"}
	if err := faultinject.Set(faultinject.ServerDeltaError, "1*error"); err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if st := postJSON(t, ts, "/v1/delta", DeltaRequest{Session: lr.Session, Configs: churn}, &er); st != http.StatusBadRequest {
		t.Fatalf("injected delta: status = %d, want 400", st)
	}
	if faultinject.FiredCount(faultinject.ServerDeltaError) != 1 {
		t.Fatal("delta failpoint did not fire")
	}
	var hz Healthz
	if st := getJSON(t, ts, "/healthz", &hz); st != http.StatusOK || !hz.OK {
		t.Fatalf("healthz after injected delta failure = %d %+v", st, hz)
	}

	// The retry succeeds and the delta'd session replays every
	// sub-problem — the failed build neither poisoned the session cache
	// nor dropped the base session's warm solve cache.
	var dr DeltaResponse
	if st := postJSON(t, ts, "/v1/delta", DeltaRequest{Session: lr.Session, Configs: churn}, &dr); st != http.StatusOK {
		t.Fatalf("retried delta: status = %d, want 200", st)
	}
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{Session: dr.Session, Policies: figure2aSpec}, &rr); st != http.StatusOK || !rr.Solved {
		t.Fatalf("post-delta repair = %d solved=%v", st, rr.Solved)
	}
	if rr.Reused != len(rr.Problems) {
		t.Fatalf("post-delta repair reused %d of %d problems, want all", rr.Reused, len(rr.Problems))
	}

	// A starved solve on the reused session degrades — and the degraded
	// output must not stick: with injection cleared the identical request
	// re-solves cleanly instead of replaying the degraded result.
	if err := faultinject.Set(faultinject.SATBudgetStarve, "error"); err != nil {
		t.Fatal(err)
	}
	const spec = "reachable S T 2\n"
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{Session: dr.Session, Policies: spec}, &rr); st != http.StatusOK {
		t.Fatalf("starved repair: status = %d, want 200", st)
	}
	if rr.Solved || rr.Degraded != 1 {
		t.Fatalf("starved repair = solved=%v degraded=%d, want one degraded destination", rr.Solved, rr.Degraded)
	}
	faultinject.Reset()
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{Session: dr.Session, Policies: spec}, &rr); st != http.StatusOK || !rr.Solved || rr.Degraded != 0 {
		t.Fatalf("post-chaos repair = %d solved=%v degraded=%d, want a clean solve (degraded output must not be memoized)",
			st, rr.Solved, rr.Degraded)
	}

	sz := srv.stats.snapshot(srv.cache.len(), srv.cache.retained())
	if sz.Cache.DeltaBuilds == 0 {
		t.Errorf("statsz delta builds = 0, want at least the retried build: %+v", sz.Cache)
	}
}

// TestChaosDaemonSurvivesInjectedFaults drives a live daemon through
// the server-side failpoints: a cache build failure must surface as a
// clean 400 (not a crash or a poisoned cache entry), a starved solver
// must yield a degraded-but-usable repair response with accurate
// per-destination outcomes and /statsz counters, and /healthz must stay
// up throughout.
func TestChaosDaemonSurvivesInjectedFaults(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	defer faultinject.Reset()

	// One injected load failure: the first load 400s, the retry succeeds
	// (the failed build must not be cached as a session).
	if err := faultinject.Set(faultinject.ServerCacheLoadError, "1*error"); err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if st := postJSON(t, ts, "/v1/load", LoadRequest{Configs: config.Figure2aConfigs()}, &er); st != http.StatusBadRequest {
		t.Fatalf("injected load: status = %d, want 400", st)
	}
	if faultinject.FiredCount(faultinject.ServerCacheLoadError) != 1 {
		t.Fatal("cache failpoint did not fire")
	}
	var hz Healthz
	if st := getJSON(t, ts, "/healthz", &hz); st != http.StatusOK || !hz.OK {
		t.Fatalf("healthz after injected load failure = %d %+v", st, hz)
	}
	lr := loadFigure2a(t, ts)
	if lr.Cached {
		t.Error("recovered load claims cached — the failed build leaked into the cache")
	}

	// Permanently starved solver: the PC3-only repair must degrade to the
	// greedy baseline, and the response must say so per destination.
	if err := faultinject.Set(faultinject.SATBudgetStarve, "error"); err != nil {
		t.Fatal(err)
	}
	var rr RepairResponse
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{
		Session: lr.Session, Policies: "reachable S T 2\n",
	}, &rr); st != http.StatusOK {
		t.Fatalf("degraded repair: status = %d, want 200", st)
	}
	if rr.Solved || rr.Degraded != 1 || rr.Failed != 0 {
		t.Fatalf("degraded repair = solved=%v degraded=%d failed=%d, want one degraded destination",
			rr.Solved, rr.Degraded, rr.Failed)
	}
	if len(rr.PatchedConfigs) == 0 || rr.Plan == "" {
		t.Error("degraded repair produced no patch")
	}
	found := false
	for _, pr := range rr.Problems {
		if pr.Outcome == "degraded" {
			found = true
			if pr.Fallback != "greedy" || pr.Attempts < 2 || pr.Error == "" {
				t.Errorf("degraded problem = %+v, want greedy fallback after retries with an error", pr)
			}
		}
	}
	if !found {
		t.Error("no problem reported outcome=degraded")
	}

	// With injection cleared, the same session must fully solve, and the
	// /statsz outcome counters must reflect both repairs.
	faultinject.Reset()
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{
		Session: lr.Session, Policies: "reachable S T 2\n",
	}, &rr); st != http.StatusOK || !rr.Solved {
		t.Fatalf("post-chaos repair = %d solved=%v, want a clean solve", st, rr.Solved)
	}
	sz := srv.stats.snapshot(srv.cache.len(), srv.cache.retained())
	if sz.Destinations.Degraded != 1 || sz.Destinations.Solved != 1 || sz.Destinations.Failed != 0 {
		t.Errorf("statsz destinations = %+v, want solved=1 degraded=1 failed=0", sz.Destinations)
	}
	if st := getJSON(t, ts, "/healthz", &hz); st != http.StatusOK || !hz.OK {
		t.Fatalf("healthz after chaos = %d %+v", st, hz)
	}
}
