package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	cpr "repro"
	"repro/internal/config"
	"repro/internal/generate"
	"repro/internal/policy"
)

const figure2aSpec = "always-blocked S U\nalways-waypoint S T\nreachable S T 2\nprimary-path R T A,B,C\n"

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postJSON posts body to path and decodes the JSON reply into out,
// returning the HTTP status.
func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s reply: %v", path, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s reply: %v", path, err)
	}
	return resp.StatusCode
}

func loadFigure2a(t *testing.T, ts *httptest.Server) LoadResponse {
	t.Helper()
	var lr LoadResponse
	if st := postJSON(t, ts, "/v1/load", LoadRequest{Configs: config.Figure2aConfigs()}, &lr); st != http.StatusOK {
		t.Fatalf("load status = %d", st)
	}
	return lr
}

func TestLoadVerifyExplainRepairRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	lr := loadFigure2a(t, ts)
	if lr.Cached {
		t.Error("first load reported cached")
	}
	if lr.Devices != 3 {
		t.Errorf("devices = %d, want 3", lr.Devices)
	}

	var vr VerifyResponse
	if st := postJSON(t, ts, "/v1/verify", VerifyRequest{Session: lr.Session, Policies: figure2aSpec}, &vr); st != http.StatusOK {
		t.Fatalf("verify status = %d", st)
	}
	if vr.Total != 4 || len(vr.Violated) != 1 {
		t.Fatalf("verify = %+v, want 4 total / 1 violated", vr)
	}
	if !strings.HasPrefix(vr.Violated[0], "reachable") {
		t.Errorf("violated policy = %q, want the PC3 policy", vr.Violated[0])
	}

	var er ExplainResponse
	if st := postJSON(t, ts, "/v1/explain", VerifyRequest{Session: lr.Session, Policies: figure2aSpec}, &er); st != http.StatusOK {
		t.Fatalf("explain status = %d", st)
	}
	if len(er.Explanations) == 0 {
		t.Error("no explanations for a violated spec")
	}

	var rr RepairResponse
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{Session: lr.Session, Policies: figure2aSpec}, &rr); st != http.StatusOK {
		t.Fatalf("repair status = %d", st)
	}
	if !rr.Solved || rr.Lines == 0 || rr.Plan == "" {
		t.Fatalf("repair = solved=%v lines=%d, want a non-empty repair", rr.Solved, rr.Lines)
	}
	if len(rr.PatchedConfigs) != 3 {
		t.Fatalf("patched %d configs, want 3", len(rr.PatchedConfigs))
	}

	// The patched configs satisfy the spec end-to-end: load them as a new
	// session and verify.
	var lr2 LoadResponse
	if st := postJSON(t, ts, "/v1/load", LoadRequest{Configs: rr.PatchedConfigs}, &lr2); st != http.StatusOK {
		t.Fatalf("load patched status = %d", st)
	}
	if lr2.Session == lr.Session {
		t.Error("patched configs hash to the original session")
	}
	var vr2 VerifyResponse
	if st := postJSON(t, ts, "/v1/verify", VerifyRequest{Session: lr2.Session, Policies: figure2aSpec}, &vr2); st != http.StatusOK {
		t.Fatalf("verify patched status = %d", st)
	}
	if len(vr2.Violated) != 0 {
		t.Errorf("patched network still violates %v", vr2.Violated)
	}
}

func TestLoadCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	lr1 := loadFigure2a(t, ts)
	lr2 := loadFigure2a(t, ts)
	if lr2.Session != lr1.Session {
		t.Fatalf("identical configs gave different sessions %q vs %q", lr1.Session, lr2.Session)
	}
	if !lr2.Cached {
		t.Error("identical re-load was not a cache hit")
	}

	var sz Statsz
	if st := getJSON(t, ts, "/statsz", &sz); st != http.StatusOK {
		t.Fatalf("statsz status = %d", st)
	}
	if sz.Cache.Builds != 1 {
		t.Errorf("builds = %d, want 1 (second load must not re-parse)", sz.Cache.Builds)
	}
	if sz.Cache.Hits != 1 {
		t.Errorf("hits = %d, want 1", sz.Cache.Hits)
	}
	if sz.SessionsCached != 1 {
		t.Errorf("sessions_cached = %d, want 1", sz.SessionsCached)
	}
}

// TestSingleFlight drives the cache directly with a build that blocks
// until both callers have arrived, proving concurrent identical loads
// share one build deterministically.
func TestSingleFlight(t *testing.T) {
	c := newSessionCache(4)
	builds := 0
	arrived := make(chan struct{})
	release := make(chan struct{})
	build := func() (*cpr.Session, error) {
		builds++
		close(arrived)
		<-release
		return cpr.NewSession(config.Figure2aConfigs())
	}

	var wg sync.WaitGroup
	outcomes := make([]loadOutcome, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, how, err := c.getOrLoad("k", build)
		if err != nil {
			t.Error(err)
		}
		outcomes[0] = how
	}()
	<-arrived // builder is inside build()

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, how, err := c.getOrLoad("k", func() (*cpr.Session, error) {
			t.Error("second build ran despite in-flight identical load")
			return nil, nil
		})
		if err != nil {
			t.Error(err)
		}
		outcomes[1] = how
	}()

	// Give the second caller time to block on the in-flight build, then
	// let the build finish. Whether it coalesced or (under an adversarial
	// scheduler) arrived after completion and hit the cache, the invariant
	// is the same: exactly one build ran.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	if outcomes[0] != loadBuilt {
		t.Fatalf("first outcome = %v, want built", outcomes[0])
	}
	if outcomes[1] == loadBuilt {
		t.Fatalf("second outcome = built, want coalesced or hit")
	}
	if _, ok := c.get("k"); !ok {
		t.Fatal("session not cached after single-flight build")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newSessionCache(2)
	sess, err := cpr.NewSession(config.Figure2aConfigs())
	if err != nil {
		t.Fatal(err)
	}
	c.put("a", sess)
	c.put("b", sess)
	c.get("a") // bump a: b is now least recently used
	c.put("c", sess)
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestEvictionReleasesRetainedSolvers: under MaxSessions pressure the
// LRU must not leak the evicted session's retained encodings and
// solvers — eviction calls Release, and the /statsz Retained gauges
// reflect only the sessions still cached.
func TestEvictionReleasesRetainedSolvers(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxSessions: 1})
	lr := loadFigure2a(t, ts)

	var rr RepairResponse
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{Session: lr.Session, Policies: figure2aSpec}, &rr); st != http.StatusOK {
		t.Fatalf("repair status = %d", st)
	}
	sess, ok := srv.cache.get(lr.Session)
	if !ok {
		t.Fatal("session not cached")
	}
	if cs := sess.CacheStats(); cs.Solvers == 0 || cs.RetainedBytes == 0 {
		t.Fatalf("repair retained nothing: %+v", cs)
	}
	before := srv.stats.snapshot(srv.cache.len(), srv.cache.retained())
	if before.Retained.Solvers == 0 || before.Retained.Bytes == 0 {
		t.Fatalf("statsz shows no retained memory before eviction: %+v", before.Retained)
	}

	// Loading a different network with MaxSessions=1 evicts the first
	// session, which must release its solvers even though callers may
	// still hold the session handle.
	other := config.Figure2aConfigs()
	other["C"] += "ip access-list extended CHURN\n permit ip any any\n!\n"
	var lr2 LoadResponse
	if st := postJSON(t, ts, "/v1/load", LoadRequest{Configs: other}, &lr2); st != http.StatusOK {
		t.Fatalf("second load status = %d", st)
	}
	if _, ok := srv.cache.get(lr.Session); ok {
		t.Fatal("first session not evicted")
	}
	if cs := sess.CacheStats(); cs.Entries != 0 || cs.Solvers != 0 || cs.RetainedBytes != 0 {
		t.Fatalf("eviction left retained state on the evicted session: %+v", cs)
	}
	after := srv.stats.snapshot(srv.cache.len(), srv.cache.retained())
	if after.Retained.Solvers != 0 || after.Retained.Bytes != 0 || after.Retained.Entries != 0 {
		t.Fatalf("statsz still counts evicted session's memory: %+v", after.Retained)
	}
	if after.SessionsCached != 1 {
		t.Fatalf("sessions cached = %d, want 1", after.SessionsCached)
	}
}

// slowSession loads a session whose all-tcs repair takes several seconds
// (the dc09-scale corpus network), for cancellation and saturation tests.
func slowSession(t *testing.T, ts *httptest.Server) (session, policies string) {
	t.Helper()
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "slow", Routers: 20, Subnets: 15, BlockedFrac: 0.3,
		FullyBlockedDsts: 1, Violations: 8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	texts := make(map[string]string, len(inst.Configs))
	for name, c := range inst.Configs {
		texts[name] = c.Print()
	}
	var lr LoadResponse
	if st := postJSON(t, ts, "/v1/load", LoadRequest{Configs: texts}, &lr); st != http.StatusOK {
		t.Fatalf("load status = %d", st)
	}
	return lr.Session, policy.Format(inst.Policies)
}

var slowRepairOptions = cpr.OptionFlags{Granularity: "all-tcs"}

func TestRepairDeadlineCancelsSolver(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	session, policies := slowSession(t, ts)

	t0 := time.Now()
	var er errorResponse
	st := postJSON(t, ts, "/v1/repair", RepairRequest{
		Session: session, Policies: policies,
		Options: slowRepairOptions, TimeoutMS: 50,
	}, &er)
	elapsed := time.Since(t0)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", st)
	}
	if !strings.Contains(er.Error, "deadline") {
		t.Errorf("error = %q, want a context-deadline error", er.Error)
	}
	// The solve normally takes seconds; cancellation must reach the CDCL
	// inner loop well under 1s.
	if elapsed >= time.Second {
		t.Fatalf("cancelled repair took %v, want well under 1s", elapsed)
	}

	// The solve is recorded as cancelled, not still running.
	deadline := time.Now().Add(2 * time.Second)
	for {
		sz := srv.stats.snapshot(srv.cache.len(), srv.cache.retained())
		if sz.Solves.InFlight == 0 && sz.Solves.Cancelled == 1 {
			if sz.Solves.Completed != 0 {
				t.Errorf("completed = %d, want 0", sz.Solves.Completed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("statsz never settled: %+v", sz.Solves)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRepairSheds429WhenSaturated(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	lr := loadFigure2a(t, ts)

	// Occupy the single worker slot directly, then hit the endpoint: the
	// admission queue (depth 0) must shed the request immediately.
	block := make(chan struct{})
	running := make(chan struct{})
	go func() {
		_ = srv.pool.do(context.Background(), func() {
			close(running)
			<-block
		})
	}()
	<-running
	defer close(block)

	var er errorResponse
	st := postJSON(t, ts, "/v1/repair", RepairRequest{Session: lr.Session, Policies: figure2aSpec}, &er)
	if st != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", st)
	}
	sz := srv.stats.snapshot(srv.cache.len(), srv.cache.retained())
	if sz.Solves.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", sz.Solves.Rejected)
	}
}

func TestUnknownSessionAndBadInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	lr := loadFigure2a(t, ts)

	var er errorResponse
	if st := postJSON(t, ts, "/v1/verify", VerifyRequest{Session: "deadbeef", Policies: figure2aSpec}, &er); st != http.StatusNotFound {
		t.Errorf("unknown session: status = %d, want 404", st)
	}
	if st := postJSON(t, ts, "/v1/verify", VerifyRequest{Session: lr.Session, Policies: "bogus policy line\n"}, &er); st != http.StatusBadRequest {
		t.Errorf("bad policies: status = %d, want 400", st)
	}
	if st := postJSON(t, ts, "/v1/repair", RepairRequest{
		Session: lr.Session, Policies: figure2aSpec,
		Options: cpr.OptionFlags{Granularity: "bogus"},
	}, &er); st != http.StatusBadRequest {
		t.Errorf("bad options: status = %d, want 400", st)
	}
	if st := postJSON(t, ts, "/v1/load", LoadRequest{}, &er); st != http.StatusBadRequest {
		t.Errorf("empty load: status = %d, want 400", st)
	}
	if st := postJSON(t, ts, "/v1/load", LoadRequest{Configs: map[string]string{"x": "hostname A\n", "y": "hostname A\n"}}, &er); st != http.StatusBadRequest {
		t.Errorf("duplicate hostname: status = %d, want 400", st)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var hz Healthz
	if st := getJSON(t, ts, "/healthz", &hz); st != http.StatusOK || !hz.OK {
		t.Fatalf("healthz = %d %+v", st, hz)
	}
}

func TestStatszLatencyHistogram(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadFigure2a(t, ts)
	var sz Statsz
	if st := getJSON(t, ts, "/statsz", &sz); st != http.StatusOK {
		t.Fatalf("statsz status = %d", st)
	}
	ep, ok := sz.Endpoints["/v1/load"]
	if !ok || ep.Count != 1 {
		t.Fatalf("load endpoint stats = %+v", sz.Endpoints)
	}
	var sum int64
	for _, n := range ep.BucketsMS {
		sum += n
	}
	if sum != ep.Count {
		t.Errorf("bucket sum %d != count %d", sum, ep.Count)
	}
}

// TestSessionKeyIsOrderIndependent pins the content-addressing property
// the cache relies on.
func TestSessionKeyIsOrderIndependent(t *testing.T) {
	a := map[string]string{"x": "hostname A\n", "y": "hostname B\n"}
	b := map[string]string{"y": "hostname B\n", "x": "hostname A\n"}
	if SessionKey(a) != SessionKey(b) {
		t.Error("key depends on map construction order")
	}
	c := map[string]string{"x": "hostname A\n", "y": "hostname C\n"}
	if SessionKey(a) == SessionKey(c) {
		t.Error("different configs share a key")
	}
	// Concatenation ambiguity: ("ab","c") vs ("a","bc") must differ.
	d := map[string]string{"ab": "c"}
	e := map[string]string{"a": "bc"}
	if SessionKey(d) == SessionKey(e) {
		t.Error("length prefixes fail to disambiguate")
	}
}

func TestGracefulConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxSessions != 64 || cfg.Workers < 1 || cfg.QueueDepth != 2*cfg.Workers {
		t.Errorf("defaults = %+v", cfg)
	}
	if fmt.Sprint(cfg.DefaultTimeout) != "5m0s" {
		t.Errorf("default timeout = %v", cfg.DefaultTimeout)
	}
	neg := Config{QueueDepth: -1}.withDefaults()
	if neg.QueueDepth != 0 {
		t.Errorf("negative queue depth → %d, want 0", neg.QueueDepth)
	}
}
