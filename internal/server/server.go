// Package server implements cprd, the control-plane-repair daemon: a
// concurrent HTTP/JSON front end over the cpr package that loads
// configuration sets once into an LRU session cache (content-hash keyed,
// with single-flight deduplication of identical loads) and then answers
// verify/explain/repair queries against the cached model.
//
// Robustness primitives, in service of the "load once, query many times
// under deadlines" workload shape of production repair services:
//
//   - a bounded worker pool with an admission queue that sheds excess
//     repair load with HTTP 429 instead of accepting unbounded work;
//   - per-request deadlines (client-supplied timeout_ms, capped) whose
//     cancellation propagates through core.RepairCtx and the MaxSAT
//     driver into the CDCL solver's search loop, so abandoned requests
//     stop burning CPU;
//   - GET /healthz and GET /statsz for liveness and operational
//     visibility (cache traffic, solves in flight/completed/cancelled,
//     SAT conflict totals, per-endpoint latency histograms).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	cpr "repro"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/smt/sat"
)

// Config tunes the daemon; zero values select the documented defaults.
type Config struct {
	// MaxSessions is the LRU session-cache capacity (default 64).
	MaxSessions int
	// Workers bounds concurrent repair solves (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds repair requests waiting for a worker beyond the
	// running ones; further requests get 429 (default 2×Workers; negative
	// means no queue at all).
	QueueDepth int
	// DefaultTimeout applies to requests without timeout_ms (default 5m).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-supplied timeouts (default 30m).
	MaxTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	return c
}

// Server is the cprd HTTP handler set. Create with New; serve via
// Handler.
type Server struct {
	cfg   Config
	cache *sessionCache
	pool  *workerPool
	stats *stats
	mux   *http.ServeMux

	// draining flips /readyz to 503 as soon as graceful shutdown begins,
	// so load balancers and the fleet front tier stop routing new work
	// here while in-flight requests finish.
	draining atomic.Bool
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newSessionCache(cfg.MaxSessions),
		pool:  newWorkerPool(cfg.Workers, cfg.QueueDepth),
		stats: newStats(),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/load", s.instrument("/v1/load", s.handleLoad))
	s.mux.HandleFunc("POST /v1/delta", s.instrument("/v1/delta", s.handleDelta))
	s.mux.HandleFunc("POST /v1/verify", s.instrument("/v1/verify", s.handleVerify))
	s.mux.HandleFunc("POST /v1/explain", s.instrument("/v1/explain", s.handleExplain))
	s.mux.HandleFunc("POST /v1/repair", s.instrument("/v1/repair", s.handleRepair))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		s.stats.observeLatency(name, time.Since(t0))
	}
}

// --- JSON plumbing ---

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	// One JSON value per request: trailing garbage (a second object, a
	// stray token) means the client composed the body wrong, and the part
	// we did decode may not mean what they think.
	if dec.More() {
		writeError(w, http.StatusBadRequest, "bad request body: unexpected data after JSON value")
		return false
	}
	return true
}

// session resolves a session reference, answering 404 on a miss (the
// entry may also have been evicted — the client re-loads either way).
func (s *Server) session(w http.ResponseWriter, key string) (*cpr.Session, bool) {
	if key == "" {
		writeError(w, http.StatusBadRequest, "missing session")
		return nil, false
	}
	sess, ok := s.cache.get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q (expired or never loaded)", key)
		return nil, false
	}
	return sess, true
}

// deadline derives the request context: client timeout_ms if given
// (capped at MaxTimeout), DefaultTimeout otherwise. The base context is
// the HTTP request's, so a disconnecting client also cancels the work.
func (s *Server) deadline(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// --- /v1/load ---

// LoadRequest is the POST /v1/load body.
type LoadRequest struct {
	// Configs maps device labels to configuration text.
	Configs map[string]string `json:"configs"`
}

// LoadResponse is the POST /v1/load reply.
type LoadResponse struct {
	// Session identifies the cached system in later requests; it is the
	// content hash of the configuration set.
	Session string `json:"session"`
	// Cached reports that the load was answered without building (cache
	// hit or coalesced onto an in-flight identical load).
	Cached         bool `json:"cached"`
	Devices        int  `json:"devices"`
	Subnets        int  `json:"subnets"`
	Links          int  `json:"links"`
	TrafficClasses int  `json:"traffic_classes"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, "no configs given")
		return
	}
	key := SessionKey(req.Configs)
	sess, how, err := s.cache.getOrLoad(key, func() (*cpr.Session, error) {
		if err := faultinject.Eval(faultinject.ServerCacheLoadError); err != nil {
			return nil, err
		}
		return cpr.NewSession(req.Configs)
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "load: %v", err)
		return
	}
	s.stats.recordLoad(how)
	writeJSON(w, http.StatusOK, loadResponseFor(key, how, sess))
}

func loadResponseFor(key string, how loadOutcome, sess *cpr.Session) LoadResponse {
	n := sess.System().Network
	return LoadResponse{
		Session:        key,
		Cached:         how != loadBuilt,
		Devices:        n.NumDevices(),
		Subnets:        len(n.Subnets),
		Links:          len(n.Links),
		TrafficClasses: len(n.TrafficClasses()),
	}
}

// --- /v1/delta ---

// DeltaRequest is the POST /v1/delta body: a config change relative to
// an already-loaded session. Configs maps changed labels to their new
// text; an empty string removes the label. Unchanged labels are not
// re-sent and not re-parsed.
type DeltaRequest struct {
	Session string            `json:"session"`
	Configs map[string]string `json:"configs"`
}

// DeltaResponse is the POST /v1/delta reply. Session identifies the
// resulting config set (use it in subsequent verify/repair requests);
// it equals what /v1/load would return for the full patched set.
type DeltaResponse struct {
	Session string `json:"session"`
	// Cached reports the resulting session was already in the cache (the
	// delta produced a previously seen config set, e.g. a revert).
	Cached         bool `json:"cached"`
	Devices        int  `json:"devices"`
	Subnets        int  `json:"subnets"`
	Links          int  `json:"links"`
	TrafficClasses int  `json:"traffic_classes"`
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	var req DeltaRequest
	if !decodeBody(w, r, &req) {
		return
	}
	base, ok := s.session(w, req.Session)
	if !ok {
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, "no config changes given")
		return
	}
	key := base.DeltaKey(req.Configs)
	sess, how, err := s.cache.getOrLoad(key, func() (*cpr.Session, error) {
		if err := faultinject.Eval(faultinject.ServerDeltaError); err != nil {
			return nil, err
		}
		return base.Delta(req.Configs)
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "delta: %v", err)
		return
	}
	s.stats.recordDelta(how)
	lr := loadResponseFor(key, how, sess)
	writeJSON(w, http.StatusOK, DeltaResponse{
		Session:        lr.Session,
		Cached:         lr.Cached,
		Devices:        lr.Devices,
		Subnets:        lr.Subnets,
		Links:          lr.Links,
		TrafficClasses: lr.TrafficClasses,
	})
}

// --- /v1/verify and /v1/explain ---

// VerifyRequest is the POST /v1/verify (and /v1/explain) body.
type VerifyRequest struct {
	Session string `json:"session"`
	// Policies is a policy specification in the cpr grammar (one policy
	// per line); empty means "infer PC1/PC3 policies first".
	Policies  string `json:"policies"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// VerifyResponse is the POST /v1/verify reply.
type VerifyResponse struct {
	Total    int      `json:"total"`
	Violated []string `json:"violated"`
}

// parsePolicies resolves the request's policy set: the parsed
// specification, or the inferred one when the spec is empty.
func parsePolicies(w http.ResponseWriter, sys *cpr.System, spec string) ([]cpr.Policy, bool) {
	if spec == "" {
		return sys.InferPolicies(), true
	}
	policies, err := sys.ParsePolicies(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "policies: %v", err)
		return nil, false
	}
	return policies, true
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.session(w, req.Session)
	if !ok {
		return
	}
	sys := sess.System()
	policies, ok := parsePolicies(w, sys, req.Policies)
	if !ok {
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMS)
	defer cancel()
	violated, err := sys.VerifyCtx(ctx, policies)
	if err != nil {
		writeError(w, http.StatusGatewayTimeout, "verify: %v", err)
		return
	}
	resp := VerifyResponse{Total: len(policies), Violated: make([]string, 0, len(violated))}
	for _, p := range violated {
		resp.Violated = append(resp.Violated, p.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExplainResponse is the POST /v1/explain reply: one counterexample line
// per violated policy.
type ExplainResponse struct {
	Explanations []string `json:"explanations"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.session(w, req.Session)
	if !ok {
		return
	}
	sys := sess.System()
	policies, ok := parsePolicies(w, sys, req.Policies)
	if !ok {
		return
	}
	lines := sys.Explain(policies)
	if lines == nil {
		lines = []string{}
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Explanations: lines})
}

// --- /v1/repair ---

// RepairRequest is the POST /v1/repair body.
type RepairRequest struct {
	Session  string `json:"session"`
	Policies string `json:"policies"`
	// Options uses the same spellings as the cpr CLI flags.
	Options cpr.OptionFlags `json:"options"`
	// TimeoutMS is the request deadline; exceeding it cancels the solve
	// (HTTP 504).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RepairProblem is one MaxSMT sub-problem's outcome in a RepairResponse.
type RepairProblem struct {
	Label  string `json:"label"`
	Status string `json:"status"`
	// Outcome is the sub-problem's disposition under fault isolation:
	// "solved", "degraded" (greedy fallback), or "failed".
	Outcome string `json:"outcome"`
	// Attempts counts solve attempts (retries included; 0 = cancelled
	// before starting).
	Attempts int `json:"attempts"`
	// Fallback names the degradation provenance ("greedy") when the
	// outcome is degraded.
	Fallback string `json:"fallback,omitempty"`
	// Error describes the terminal solver failure, when there was one.
	Error      string  `json:"error,omitempty"`
	TCs        int     `json:"traffic_classes"`
	Policies   int     `json:"policies"`
	Vars       int     `json:"vars"`
	Softs      int     `json:"softs"`
	Violations int     `json:"violations"`
	Conflicts  int64   `json:"conflicts"`
	DurationMS float64 `json:"duration_ms"`
	// Compressed reports that the sub-problem was solved on a
	// symmetry-compressed quotient network and the concretized patch
	// re-verified on the full network.
	Compressed bool `json:"compressed,omitempty"`
	// Reused reports that the sub-problem's result was replayed from the
	// session's solve cache instead of re-solved; the solver counters are
	// the original solve's, which a fresh solve would reproduce.
	Reused bool `json:"reused,omitempty"`
	// QuotientDevices/DeviceClasses/CompressRatio describe the quotient
	// when Compressed is set; CompressFallback names the stage at which
	// compression was abandoned for this sub-problem, when it was tried
	// and fell back to the uncompressed path.
	QuotientDevices  int     `json:"quotient_devices,omitempty"`
	DeviceClasses    int     `json:"device_classes,omitempty"`
	CompressRatio    float64 `json:"compress_ratio,omitempty"`
	CompressFallback string  `json:"compress_fallback,omitempty"`
	// Per-stage wall-clock breakdown (milliseconds): HARC/quotient
	// construction, MaxSMT encode, SAT solve, patch concretization, and
	// post-patch re-verification. Stages a sub-problem never entered are
	// omitted.
	HarcBuildMS  float64 `json:"harc_build_ms,omitempty"`
	EncodeMS     float64 `json:"encode_ms,omitempty"`
	SolveMS      float64 `json:"solve_ms,omitempty"`
	ConcretizeMS float64 `json:"concretize_ms,omitempty"`
	ReverifyMS   float64 `json:"reverify_ms,omitempty"`
}

// RepairResponse is the POST /v1/repair reply.
type RepairResponse struct {
	Solved bool `json:"solved"`
	// Degraded and Failed count per-destination sub-problems that fell
	// back to the greedy baseline or produced no repair; Solved is false
	// whenever either is nonzero, but the plan still patches every
	// solved and degraded destination.
	Degraded       int               `json:"degraded"`
	Failed         int               `json:"failed"`
	Changes        int               `json:"changes"`
	Lines          int               `json:"lines"`
	Plan           string            `json:"plan"`
	PatchedConfigs map[string]string `json:"patched_configs,omitempty"`
	Conflicts      int64             `json:"conflicts"`
	DurationMS     float64           `json:"duration_ms"`
	// Compressed counts sub-problems solved on symmetry-compressed
	// quotients; CompressFallbacks counts sub-problems where compression
	// was attempted but fell back to the uncompressed path.
	Compressed        int `json:"compressed,omitempty"`
	CompressFallbacks int `json:"compress_fallbacks,omitempty"`
	// Reused counts sub-problems replayed from the session's solve cache.
	Reused   int             `json:"reused,omitempty"`
	Problems []RepairProblem `json:"problems"`
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	// Chaos: model this replica crashing mid-request. Aborting the
	// handler tears down the connection without a response, which is what
	// a killed process looks like to the caller.
	if err := faultinject.Eval(faultinject.ServerRepairAbort); err != nil {
		panic(http.ErrAbortHandler)
	}
	var req RepairRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.session(w, req.Session)
	if !ok {
		return
	}
	policies, ok := parsePolicies(w, sess.System(), req.Policies)
	if !ok {
		return
	}
	opts, err := req.Options.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "options: %v", err)
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMS)
	defer cancel()

	var (
		out  *cpr.RepairOutput
		rerr error
	)
	perr := s.pool.do(ctx, func() {
		s.stats.solveStarted()
		out, rerr = sess.RepairCtx(ctx, policies, opts)
		cancelled := rerr != nil && (errors.Is(rerr, context.DeadlineExceeded) || errors.Is(rerr, context.Canceled))
		var conflicts int64
		var solver sat.Stats
		if rerr == nil {
			conflicts = out.Result.Conflicts
			solver = out.Result.Solver
		}
		s.stats.solveFinished(cancelled, conflicts, solver)
	})
	if perr != nil {
		if errors.Is(perr, errSaturated) {
			s.stats.solveRejected()
			// Hint when a slot should actually free up: queue depth times
			// the median solve latency, spread across the workers, with
			// per-key jitter so shed clients don't retry in lockstep.
			retry := s.stats.retryAfterSeconds(s.pool.waiting(), s.cfg.Workers, req.Session)
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusTooManyRequests, "repair queue full (workers=%d queue=%d)", s.cfg.Workers, s.cfg.QueueDepth)
			return
		}
		// Deadline expired while queued: the solve never started, but the
		// request was cancelled all the same.
		s.stats.solveCancelledQueued()
		writeError(w, http.StatusGatewayTimeout, "repair: %v", perr)
		return
	}
	if rerr != nil {
		if errors.Is(rerr, context.DeadlineExceeded) || errors.Is(rerr, context.Canceled) {
			writeError(w, http.StatusGatewayTimeout, "repair: %v", rerr)
			return
		}
		writeError(w, http.StatusBadRequest, "repair: %v", rerr)
		return
	}

	resp := RepairResponse{
		Solved:            out.Solved(),
		Degraded:          out.Result.Degraded,
		Failed:            out.Result.Failed,
		Changes:           out.Result.Changes,
		Conflicts:         out.Result.Conflicts,
		DurationMS:        float64(out.Result.Duration) / float64(time.Millisecond),
		PatchedConfigs:    out.PatchedConfigs,
		Compressed:        out.Result.Compressed,
		CompressFallbacks: out.Result.CompressFallbacks,
		Reused:            out.Result.Reused,
		Problems:          make([]RepairProblem, 0, len(out.Result.Stats)),
	}
	if out.Plan != nil {
		resp.Plan = out.Plan.String()
		resp.Lines = out.Plan.NumLines()
	}
	solvedProblems := 0
	for _, st := range out.Result.Stats {
		if st.Outcome == core.OutcomeSolved {
			solvedProblems++
		}
		resp.Problems = append(resp.Problems, RepairProblem{
			Label:      st.Label,
			Status:     st.Status.String(),
			Outcome:    st.Outcome.String(),
			Attempts:   st.Attempts,
			Fallback:   st.Fallback,
			Error:      st.Err,
			TCs:        st.TCs,
			Policies:   st.Policies,
			Vars:       st.Vars,
			Softs:      st.Softs,
			Violations: st.Violations,
			Conflicts:  st.Conflicts,
			DurationMS: float64(st.Duration) / float64(time.Millisecond),

			Compressed:       st.Compressed,
			Reused:           st.Reused,
			QuotientDevices:  st.QuotientDevices,
			DeviceClasses:    st.DeviceClasses,
			CompressRatio:    st.CompressRatio,
			CompressFallback: st.CompressFallback,

			HarcBuildMS:  float64(st.HarcBuildNs) / 1e6,
			EncodeMS:     float64(st.EncodeNs) / 1e6,
			SolveMS:      float64(st.SolveNs) / 1e6,
			ConcretizeMS: float64(st.ConcretizeNs) / 1e6,
			ReverifyMS:   float64(st.ReverifyNs) / 1e6,
		})
	}
	s.stats.recordOutcomes(solvedProblems, out.Result.Degraded, out.Result.Failed, out.Result.Reused)
	s.stats.recordCompression(out.Result.Compressed, out.Result.CompressFallbacks)
	s.stats.recordStages(out.Result.Stats)
	writeJSON(w, http.StatusOK, resp)
}

// --- /healthz and /statsz ---

// Healthz is the GET /healthz reply.
type Healthz struct {
	OK            bool    `json:"ok"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Healthz{OK: true, UptimeSeconds: time.Since(s.stats.start).Seconds()})
}

// Readyz is the GET /readyz reply. Unlike /healthz (pure liveness),
// readiness is drain-aware: a draining daemon is alive but must not
// receive new work.
type Readyz struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, Readyz{Ready: false, Draining: true})
		return
	}
	writeJSON(w, http.StatusOK, Readyz{Ready: true})
}

// BeginDrain flips /readyz to 503. Call it when graceful shutdown
// starts, before the listener stops accepting, so balancers observe the
// transition while the daemon still answers probes. In-flight and even
// new requests are still served — drain only steers routing away.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.stats.snapshot(s.cache.len(), s.cache.retained()))
}
