package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// postRaw posts a raw (possibly malformed) body and returns the status
// and decoded error, for tests that exercise the JSON decoding layer
// itself.
func postRaw(t *testing.T, url, path, body string) (int, errorResponse) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&er)
	return resp.StatusCode, er
}

func TestDecodeRejectsUnknownField(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	lr := loadFigure2a(t, ts)

	// Top-level typo.
	st, er := postRaw(t, ts.URL, "/v1/repair",
		`{"session":"`+lr.Session+`","polcies":"always-blocked S U\n"}`)
	if st != http.StatusBadRequest {
		t.Fatalf("top-level unknown field: status = %d, want 400", st)
	}
	if !strings.Contains(er.Error, "polcies") {
		t.Errorf("error = %q, want it to name the unknown field", er.Error)
	}

	// Nested typo inside options — the field the issue report cites.
	st, er = postRaw(t, ts.URL, "/v1/repair",
		`{"session":"`+lr.Session+`","options":{"granularty":"all-tcs"}}`)
	if st != http.StatusBadRequest {
		t.Fatalf("nested unknown field: status = %d, want 400", st)
	}
	if !strings.Contains(er.Error, "granularty") {
		t.Errorf("error = %q, want it to name the nested unknown field", er.Error)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	st, er := postRaw(t, ts.URL, "/v1/verify",
		`{"session":"x"} {"session":"y"}`)
	if st != http.StatusBadRequest {
		t.Fatalf("trailing object: status = %d, want 400", st)
	}
	if !strings.Contains(er.Error, "unexpected data") {
		t.Errorf("error = %q, want a trailing-data message", er.Error)
	}

	st, _ = postRaw(t, ts.URL, "/v1/load", `{"configs":{"A":"hostname A\n"}} garbage`)
	if st != http.StatusBadRequest {
		t.Fatalf("trailing token: status = %d, want 400", st)
	}
}

func TestRetryAfterSecondsDerivation(t *testing.T) {
	st := newStats()

	// No observations yet: the 1s default applies. One queued request on
	// one worker → ~2s before a slot frees; ±20% jitter keeps the hint in
	// ceil([1600ms, 2400ms]) = [2, 3].
	if got := st.retryAfterSeconds(1, 1, "k"); got < 2 || got > 3 {
		t.Errorf("empty histogram, waiting=1 workers=1: retry = %d, want 2..3", got)
	}
	// Fast solves observed: p50 collapses to the lowest bucket and the
	// hint clamps at the 1-second floor regardless of jitter.
	for i := 0; i < 10; i++ {
		st.observeLatency("/v1/repair", 500*time.Microsecond)
	}
	if got := st.retryAfterSeconds(4, 2, "k"); got != 1 {
		t.Errorf("fast p50: retry = %d, want the 1s floor", got)
	}
	// Slow solves dominate: p50 lands in the 5000ms bucket; deep queue on
	// one worker must clamp at the 30s ceiling regardless of jitter.
	for i := 0; i < 30; i++ {
		st.observeLatency("/v1/repair", 4*time.Second)
	}
	if got := st.retryAfterSeconds(20, 1, "k"); got != 30 {
		t.Errorf("slow p50, deep queue: retry = %d, want the 30s ceiling", got)
	}
	// Midrange: p50 5000ms, 1 waiting, 4 workers → 2500ms ±20% → [2, 3].
	if got := st.retryAfterSeconds(1, 4, "k"); got < 2 || got > 3 {
		t.Errorf("midrange: retry = %d, want 2..3", got)
	}
}

func TestRetryAfterJitterDeterministicAndSpread(t *testing.T) {
	// Same key → same factor, always inside the ±20% band.
	for _, key := range []string{"", "a", "session-abc123"} {
		f1, f2 := retryJitter(key), retryJitter(key)
		if f1 != f2 {
			t.Errorf("retryJitter(%q) not deterministic: %v vs %v", key, f1, f2)
		}
		if f1 < 0.8 || f1 > 1.2 {
			t.Errorf("retryJitter(%q) = %v, want within [0.8, 1.2]", key, f1)
		}
	}
	// Distinct keys must actually spread: over many keys the factors
	// cover a good part of the band, so synchronized clients desync.
	lo, hi := 2.0, 0.0
	for i := 0; i < 200; i++ {
		f := retryJitter(fmt.Sprintf("session-%d", i))
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo < 0.2 {
		t.Errorf("jitter spread over 200 keys = [%v, %v], want a spread of at least 0.2", lo, hi)
	}
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	var rz Readyz
	if st := getJSON(t, ts, "/readyz", &rz); st != http.StatusOK || !rz.Ready {
		t.Fatalf("before drain: readyz = %d %+v, want 200 ready", st, rz)
	}

	srv.BeginDrain()
	if st := getJSON(t, ts, "/readyz", &rz); st != http.StatusServiceUnavailable || rz.Ready || !rz.Draining {
		t.Fatalf("after drain: readyz = %d %+v, want 503 draining", st, rz)
	}
	// Liveness is unaffected: the process is healthy, just not accepting
	// new work.
	var hz Healthz
	if st := getJSON(t, ts, "/healthz", &hz); st != http.StatusOK || !hz.OK {
		t.Fatalf("after drain: healthz = %d %+v, want 200 ok", st, hz)
	}
	// Draining is advisory — a request that still arrives is served.
	lr := loadFigure2a(t, ts)
	var vr VerifyResponse
	if st := postJSON(t, ts, "/v1/verify", VerifyRequest{Session: lr.Session, Policies: figure2aSpec}, &vr); st != http.StatusOK {
		t.Fatalf("verify while draining: status = %d, want 200", st)
	}
}

func TestRetryAfterHeaderComputedFromLoad(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	lr := loadFigure2a(t, ts)

	// Seed the /v1/repair histogram with slow observations so the header
	// must exceed the old hardcoded "1".
	for i := 0; i < 10; i++ {
		srv.stats.observeLatency("/v1/repair", 2*time.Second)
	}

	block := make(chan struct{})
	running := make(chan struct{})
	go func() {
		_ = srv.pool.do(context.Background(), func() {
			close(running)
			<-block
		})
	}()
	<-running
	defer close(block)

	body, _ := json.Marshal(RepairRequest{Session: lr.Session, Policies: figure2aSpec})
	resp, err := http.Post(ts.URL+"/v1/repair", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After = %q, want an integer", ra)
	}
	// p50 is the 5000ms bucket bound, 0 waiting, 1 worker → 5s.
	if secs < 2 || secs > 30 {
		t.Errorf("Retry-After = %d, want a load-derived value in [2, 30]", secs)
	}
}
