package server

import (
	"container/list"
	"sync"

	cpr "repro"
	"repro/internal/core"
)

// SessionKey is the content hash of a configuration set: identical
// configurations — regardless of map-label order — map to the same
// session, which is what makes the cache and single-flight deduplication
// sound. It is cpr.ContentKey, so server session IDs double as solve-
// cache epochs.
func SessionKey(configs map[string]string) string {
	return cpr.ContentKey(configs)
}

// loadOutcome classifies how getOrLoad produced its session.
type loadOutcome int

const (
	// loadBuilt means this call parsed the configs and built the HARC.
	loadBuilt loadOutcome = iota
	// loadHit means the session was already cached.
	loadHit
	// loadCoalesced means an identical load was in flight and this call
	// waited for its result (single-flight deduplication).
	loadCoalesced
)

// loadCall is one in-flight build that concurrent identical loads attach
// to.
type loadCall struct {
	done chan struct{}
	sess *cpr.Session
	err  error
}

// sessionCache is an LRU cache of loaded sessions keyed by SessionKey,
// with single-flight deduplication of concurrent identical loads.
// Sessions retain per-sub-problem encodings and SAT solvers across
// repair calls, so eviction releases that memory (Session.Release)
// rather than just dropping the reference.
type sessionCache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List // front = most recently used; values are *entry
	byKey   map[string]*list.Element
	loading map[string]*loadCall
}

type entry struct {
	key  string
	sess *cpr.Session
}

func newSessionCache(max int) *sessionCache {
	return &sessionCache{
		max:     max,
		lru:     list.New(),
		byKey:   make(map[string]*list.Element),
		loading: make(map[string]*loadCall),
	}
}

// get returns the cached session for key, bumping its recency.
func (c *sessionCache) get(key string) (*cpr.Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*entry).sess, true
}

// put inserts (or refreshes) a session, evicting the least recently used
// entry beyond capacity.
func (c *sessionCache) put(key string, sess *cpr.Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, sess)
}

func (c *sessionCache) insertLocked(key string, sess *cpr.Session) {
	if e, ok := c.byKey[key]; ok {
		// Same key means byte-identical configs; keep the cached session —
		// its solve cache is warmer than the incoming one's.
		if old := e.Value.(*entry); old.sess != sess {
			sess.Release()
		}
		c.lru.MoveToFront(e)
		return
	}
	c.byKey[key] = c.lru.PushFront(&entry{key: key, sess: sess})
	for c.lru.Len() > c.max {
		last := c.lru.Back()
		c.lru.Remove(last)
		ev := last.Value.(*entry)
		delete(c.byKey, ev.key)
		// Evicted sessions may still be in use by an in-flight request;
		// Release only drops the retained solvers, the session itself
		// stays usable (it just re-solves).
		ev.sess.Release()
	}
}

// len returns the number of cached sessions.
func (c *sessionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// retained sums solve-cache accounting (retained entries, solvers, and
// approximate bytes, plus hit/miss counters) across cached sessions, for
// /statsz.
func (c *sessionCache) retained() core.SolveCacheStats {
	c.mu.Lock()
	sessions := make([]*cpr.Session, 0, c.lru.Len())
	for e := c.lru.Front(); e != nil; e = e.Next() {
		sessions = append(sessions, e.Value.(*entry).sess)
	}
	c.mu.Unlock()
	var agg core.SolveCacheStats
	for _, s := range sessions {
		cs := s.CacheStats()
		agg.Entries += cs.Entries
		agg.Solvers += cs.Solvers
		agg.RetainedBytes += cs.RetainedBytes
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Stores += cs.Stores
	}
	return agg
}

// getOrLoad returns the session for key, building it with build on a
// miss. Concurrent calls for the same key share one build: exactly one
// caller runs build, the rest block until it finishes and receive its
// result (including its error — a failed build is not cached, so a later
// load retries).
func (c *sessionCache) getOrLoad(key string, build func() (*cpr.Session, error)) (*cpr.Session, loadOutcome, error) {
	c.mu.Lock()
	if e, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(e)
		sess := e.Value.(*entry).sess
		c.mu.Unlock()
		return sess, loadHit, nil
	}
	if call, ok := c.loading[key]; ok {
		c.mu.Unlock()
		<-call.done
		return call.sess, loadCoalesced, call.err
	}
	call := &loadCall{done: make(chan struct{})}
	c.loading[key] = call
	c.mu.Unlock()

	call.sess, call.err = build()

	c.mu.Lock()
	delete(c.loading, key)
	if call.err == nil {
		c.insertLocked(key, call.sess)
	}
	c.mu.Unlock()
	close(call.done)
	return call.sess, loadBuilt, call.err
}
