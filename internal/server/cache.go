package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	cpr "repro"
)

// SessionKey is the content hash of a configuration set: identical
// configurations — regardless of map-label order — map to the same
// session, which is what makes the cache and single-flight deduplication
// sound.
func SessionKey(configs map[string]string) string {
	names := make([]string, 0, len(configs))
	for name := range configs {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		text := configs[name]
		fmt.Fprintf(h, "%d:%s\x00%d:%s\x00", len(name), name, len(text), text)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// loadOutcome classifies how getOrLoad produced its system.
type loadOutcome int

const (
	// loadBuilt means this call parsed the configs and built the HARC.
	loadBuilt loadOutcome = iota
	// loadHit means the session was already cached.
	loadHit
	// loadCoalesced means an identical load was in flight and this call
	// waited for its result (single-flight deduplication).
	loadCoalesced
)

// loadCall is one in-flight build that concurrent identical loads attach
// to.
type loadCall struct {
	done chan struct{}
	sys  *cpr.System
	err  error
}

// sessionCache is an LRU cache of loaded systems keyed by SessionKey,
// with single-flight deduplication of concurrent identical loads.
type sessionCache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List // front = most recently used; values are *entry
	byKey   map[string]*list.Element
	loading map[string]*loadCall
}

type entry struct {
	key string
	sys *cpr.System
}

func newSessionCache(max int) *sessionCache {
	return &sessionCache{
		max:     max,
		lru:     list.New(),
		byKey:   make(map[string]*list.Element),
		loading: make(map[string]*loadCall),
	}
}

// get returns the cached system for key, bumping its recency.
func (c *sessionCache) get(key string) (*cpr.System, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*entry).sys, true
}

// put inserts (or refreshes) a session, evicting the least recently used
// entry beyond capacity.
func (c *sessionCache) put(key string, sys *cpr.System) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, sys)
}

func (c *sessionCache) insertLocked(key string, sys *cpr.System) {
	if e, ok := c.byKey[key]; ok {
		e.Value.(*entry).sys = sys
		c.lru.MoveToFront(e)
		return
	}
	c.byKey[key] = c.lru.PushFront(&entry{key: key, sys: sys})
	for c.lru.Len() > c.max {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.byKey, last.Value.(*entry).key)
	}
}

// len returns the number of cached sessions.
func (c *sessionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// getOrLoad returns the session for key, building it with build on a
// miss. Concurrent calls for the same key share one build: exactly one
// caller runs build, the rest block until it finishes and receive its
// result (including its error — a failed build is not cached, so a later
// load retries).
func (c *sessionCache) getOrLoad(key string, build func() (*cpr.System, error)) (*cpr.System, loadOutcome, error) {
	c.mu.Lock()
	if e, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(e)
		sys := e.Value.(*entry).sys
		c.mu.Unlock()
		return sys, loadHit, nil
	}
	if call, ok := c.loading[key]; ok {
		c.mu.Unlock()
		<-call.done
		return call.sys, loadCoalesced, call.err
	}
	call := &loadCall{done: make(chan struct{})}
	c.loading[key] = call
	c.mu.Unlock()

	call.sys, call.err = build()

	c.mu.Lock()
	delete(c.loading, key)
	if call.err == nil {
		c.insertLocked(key, call.sys)
	}
	c.mu.Unlock()
	close(call.done)
	return call.sys, loadBuilt, call.err
}
