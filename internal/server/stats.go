package server

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/smt/sat"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// per-endpoint latency histogram; observations beyond the last bound land
// in a +Inf overflow bucket.
var latencyBucketsMS = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 30000}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	Count   int64
	SumMS   float64
	Buckets []int64 // len(latencyBucketsMS)+1; last is overflow
}

func newHistogram() *histogram {
	return &histogram{Buckets: make([]int64, len(latencyBucketsMS)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.Count++
	h.SumMS += ms
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[len(h.Buckets)-1]++
}

// stats aggregates the daemon's operational counters, reported by
// GET /statsz.
type stats struct {
	mu    sync.Mutex
	start time.Time

	// Session cache.
	loadsBuilt     int64 // /v1/load calls that parsed configs and built a HARC
	cacheHits      int64 // loads answered from the session cache
	loadsCoalesced int64 // loads deduplicated onto an in-flight build

	// Config deltas (/v1/delta): incremental sessions derived from a
	// cached base, answered from the cache, or coalesced onto an
	// in-flight identical delta.
	deltasBuilt     int64
	deltaHits       int64
	deltasCoalesced int64

	// Solves (repair requests admitted to the worker pool).
	solvesInFlight  int
	solvesCompleted int64
	solvesCancelled int64     // deadline exceeded or client gone
	solvesRejected  int64     // shed with HTTP 429
	conflicts       int64     // total SAT conflicts across completed solves
	solver          sat.Stats // aggregate solver counters across completed solves

	// Per-destination sub-problem outcomes under fault isolation,
	// summed across completed solves. dstReused counts sub-problems
	// replayed from a session's solve cache instead of re-solved.
	dstSolved   int64
	dstDegraded int64
	dstFailed   int64
	dstReused   int64

	// Symmetry compression, summed across completed solves: sub-problems
	// solved on quotient networks and sub-problems that tried compression
	// but fell back uncompressed.
	dstCompressed        int64
	dstCompressFallbacks int64

	// Per-stage wall-clock totals (nanoseconds) summed across every
	// sub-problem of every completed solve: where repair time actually
	// goes (HARC builds vs. encode vs. SAT search vs. concretize vs.
	// re-verify).
	stageHarcBuildNs  int64
	stageEncodeNs     int64
	stageSolveNs      int64
	stageConcretizeNs int64
	stageReverifyNs   int64

	endpoints map[string]*histogram
}

func newStats() *stats {
	return &stats{start: time.Now(), endpoints: make(map[string]*histogram)}
}

func (st *stats) observeLatency(endpoint string, d time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	h, ok := st.endpoints[endpoint]
	if !ok {
		h = newHistogram()
		st.endpoints[endpoint] = h
	}
	h.observe(d)
}

func (st *stats) recordLoad(how loadOutcome) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch how {
	case loadBuilt:
		st.loadsBuilt++
	case loadHit:
		st.cacheHits++
	case loadCoalesced:
		st.loadsCoalesced++
	}
}

func (st *stats) solveStarted() {
	st.mu.Lock()
	st.solvesInFlight++
	st.mu.Unlock()
}

func (st *stats) solveFinished(cancelled bool, conflicts int64, solver sat.Stats) {
	st.mu.Lock()
	st.solvesInFlight--
	if cancelled {
		st.solvesCancelled++
	} else {
		st.solvesCompleted++
	}
	st.conflicts += conflicts
	st.solver.Accumulate(solver)
	st.mu.Unlock()
}

// solveCancelledQueued records a request whose deadline expired while it
// was still waiting for a worker slot (admitted but never started).
func (st *stats) solveCancelledQueued() {
	st.mu.Lock()
	st.solvesCancelled++
	st.mu.Unlock()
}

func (st *stats) solveRejected() {
	st.mu.Lock()
	st.solvesRejected++
	st.mu.Unlock()
}

// recordOutcomes accumulates one repair's per-destination dispositions.
func (st *stats) recordOutcomes(solved, degraded, failed, reused int) {
	st.mu.Lock()
	st.dstSolved += int64(solved)
	st.dstDegraded += int64(degraded)
	st.dstFailed += int64(failed)
	st.dstReused += int64(reused)
	st.mu.Unlock()
}

// recordDelta accumulates one /v1/delta call's cache disposition.
func (st *stats) recordDelta(how loadOutcome) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch how {
	case loadBuilt:
		st.deltasBuilt++
	case loadHit:
		st.deltaHits++
	case loadCoalesced:
		st.deltasCoalesced++
	}
}

// recordCompression accumulates one repair's symmetry-compression
// dispositions (quotient-solved sub-problems and fallbacks).
func (st *stats) recordCompression(compressed, fallbacks int) {
	st.mu.Lock()
	st.dstCompressed += int64(compressed)
	st.dstCompressFallbacks += int64(fallbacks)
	st.mu.Unlock()
}

// recordStages accumulates one repair's per-stage wall-clock split
// across its sub-problems.
func (st *stats) recordStages(problems []core.ProblemStat) {
	st.mu.Lock()
	for _, p := range problems {
		st.stageHarcBuildNs += p.HarcBuildNs
		st.stageEncodeNs += p.EncodeNs
		st.stageSolveNs += p.SolveNs
		st.stageConcretizeNs += p.ConcretizeNs
		st.stageReverifyNs += p.ReverifyNs
	}
	st.mu.Unlock()
}

// repairP50MS estimates the median /v1/repair latency from the endpoint
// histogram: the upper bound of the first bucket at or past half the
// observations. With no observations yet it assumes one second, a
// deliberately conservative guess for a solver-bound endpoint.
func (st *stats) repairP50MS() float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	h, ok := st.endpoints["/v1/repair"]
	if !ok || h.Count == 0 {
		return 1000
	}
	half := (h.Count + 1) / 2
	var cum int64
	for i, ub := range latencyBucketsMS {
		cum += h.Buckets[i]
		if cum >= half {
			return ub
		}
	}
	return latencyBucketsMS[len(latencyBucketsMS)-1]
}

// retryAfterSeconds derives a 429 Retry-After hint from the current
// queue depth and the median solve latency: roughly when a slot should
// free up for one more request, clamped to [1, 30] seconds. The hint
// carries ±20% jitter, deterministic in the request key, so a burst of
// shed clients spreads its retries instead of stampeding a recovering
// replica in lockstep — while any one client's retry schedule stays
// reproducible.
func (st *stats) retryAfterSeconds(waiting, workers int, key string) int {
	if workers < 1 {
		workers = 1
	}
	p50 := st.repairP50MS()
	ms := float64(waiting+1) * p50 / float64(workers) * retryJitter(key)
	secs := int((ms + 999) / 1000)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// retryJitter maps a request key to a factor in [0.8, 1.2]: FNV-1a over
// the key, scaled. The same key always jitters the same way.
func retryJitter(key string) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return 0.8 + 0.4*float64(h%1000)/999
}

// EndpointStats is one endpoint's latency summary in the /statsz payload.
type EndpointStats struct {
	Count     int64            `json:"count"`
	SumMS     float64          `json:"sum_ms"`
	BucketsMS map[string]int64 `json:"buckets_ms"`
}

// Statsz is the GET /statsz response body.
type Statsz struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	SessionsCached int     `json:"sessions_cached"`
	Cache          struct {
		Builds    int64 `json:"builds"`
		Hits      int64 `json:"hits"`
		Coalesced int64 `json:"coalesced"`
		// Delta* are the same dispositions for /v1/delta: incremental
		// sessions built from a cached base vs. answered from the cache.
		DeltaBuilds    int64 `json:"delta_builds"`
		DeltaHits      int64 `json:"delta_hits"`
		DeltaCoalesced int64 `json:"delta_coalesced"`
	} `json:"cache"`
	// Retained is the solve-cache footprint summed across cached
	// sessions: per-sub-problem entries, live SAT solvers, and their
	// approximate retained bytes, plus replay hit/miss counters. This is
	// the memory LRU eviction releases (see sessionCache.insertLocked).
	Retained struct {
		Entries     int    `json:"entries"`
		Solvers     int    `json:"solvers"`
		Bytes       int64  `json:"bytes"`
		SolveHits   uint64 `json:"solve_hits"`
		SolveMisses uint64 `json:"solve_misses"`
		SolveStores uint64 `json:"solve_stores"`
	} `json:"retained"`
	Solves struct {
		InFlight  int   `json:"in_flight"`
		Completed int64 `json:"completed"`
		Cancelled int64 `json:"cancelled"`
		Rejected  int64 `json:"rejected"`
		Conflicts int64 `json:"conflicts"`
	} `json:"solves"`
	// Solver aggregates the SAT solver's internal counters across
	// completed solves.
	Solver struct {
		Decisions    int64 `json:"decisions"`
		Propagations int64 `json:"propagations"`
		BinaryProps  int64 `json:"binary_props"`
		Restarts     int64 `json:"restarts"`
		LearnedLits  int64 `json:"learned_lits"`
		DBReductions int64 `json:"db_reductions"`
		ArenaGCs     int64 `json:"arena_gcs"`
		// Core-guided MaxSAT counters: assumption solves, UNSAT cores
		// extracted, incremental-totalizer variables materialized, and
		// softs hardened by stratified bound reasoning.
		AssumpSolves   int64 `json:"assump_solves"`
		CoresExtracted int64 `json:"cores_extracted"`
		TotalizerVars  int64 `json:"totalizer_vars"`
		HardenedSofts  int64 `json:"hardened_softs"`
	} `json:"solver"`
	// Destinations counts per-destination sub-problem outcomes under
	// fault isolation, summed across completed solves.
	Destinations struct {
		Solved   int64 `json:"solved"`
		Degraded int64 `json:"degraded"`
		Failed   int64 `json:"failed"`
		// Reused counts sub-problems replayed from a session's solve
		// cache instead of re-solved.
		Reused int64 `json:"reused"`
		// Compressed counts sub-problems solved on symmetry-compressed
		// quotient networks; CompressFallbacks counts sub-problems where
		// compression was attempted but abandoned.
		Compressed        int64 `json:"compressed"`
		CompressFallbacks int64 `json:"compress_fallbacks"`
	} `json:"destinations"`
	// Stages breaks repair wall-clock down by pipeline stage
	// (milliseconds summed across every sub-problem of every completed
	// solve).
	Stages struct {
		HarcBuildMS  float64 `json:"harc_build_ms"`
		EncodeMS     float64 `json:"encode_ms"`
		SolveMS      float64 `json:"solve_ms"`
		ConcretizeMS float64 `json:"concretize_ms"`
		ReverifyMS   float64 `json:"reverify_ms"`
	} `json:"stages"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

func (st *stats) snapshot(sessions int, retained core.SolveCacheStats) Statsz {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out Statsz
	out.UptimeSeconds = time.Since(st.start).Seconds()
	out.SessionsCached = sessions
	out.Cache.Builds = st.loadsBuilt
	out.Cache.Hits = st.cacheHits
	out.Cache.Coalesced = st.loadsCoalesced
	out.Cache.DeltaBuilds = st.deltasBuilt
	out.Cache.DeltaHits = st.deltaHits
	out.Cache.DeltaCoalesced = st.deltasCoalesced
	out.Retained.Entries = retained.Entries
	out.Retained.Solvers = retained.Solvers
	out.Retained.Bytes = retained.RetainedBytes
	out.Retained.SolveHits = retained.Hits
	out.Retained.SolveMisses = retained.Misses
	out.Retained.SolveStores = retained.Stores
	out.Solves.InFlight = st.solvesInFlight
	out.Solves.Completed = st.solvesCompleted
	out.Solves.Cancelled = st.solvesCancelled
	out.Solves.Rejected = st.solvesRejected
	out.Solves.Conflicts = st.conflicts
	out.Solver.Decisions = st.solver.Decisions
	out.Solver.Propagations = st.solver.Propagations
	out.Solver.BinaryProps = st.solver.BinaryProps
	out.Solver.Restarts = st.solver.Restarts
	out.Solver.LearnedLits = st.solver.LearnedLits
	out.Solver.DBReductions = st.solver.DBReductions
	out.Solver.ArenaGCs = st.solver.ArenaGCs
	out.Solver.AssumpSolves = st.solver.AssumpSolves
	out.Solver.CoresExtracted = st.solver.CoresExtracted
	out.Solver.TotalizerVars = st.solver.TotalizerVars
	out.Solver.HardenedSofts = st.solver.HardenedSofts
	out.Destinations.Solved = st.dstSolved
	out.Destinations.Degraded = st.dstDegraded
	out.Destinations.Failed = st.dstFailed
	out.Destinations.Reused = st.dstReused
	out.Destinations.Compressed = st.dstCompressed
	out.Destinations.CompressFallbacks = st.dstCompressFallbacks
	out.Stages.HarcBuildMS = float64(st.stageHarcBuildNs) / 1e6
	out.Stages.EncodeMS = float64(st.stageEncodeNs) / 1e6
	out.Stages.SolveMS = float64(st.stageSolveNs) / 1e6
	out.Stages.ConcretizeMS = float64(st.stageConcretizeNs) / 1e6
	out.Stages.ReverifyMS = float64(st.stageReverifyNs) / 1e6
	out.Endpoints = make(map[string]EndpointStats, len(st.endpoints))
	for name, h := range st.endpoints {
		es := EndpointStats{Count: h.Count, SumMS: h.SumMS, BucketsMS: make(map[string]int64, len(h.Buckets))}
		for i, ub := range latencyBucketsMS {
			es.BucketsMS[le(ub)] = h.Buckets[i]
		}
		es.BucketsMS["+Inf"] = h.Buckets[len(h.Buckets)-1]
		out.Endpoints[name] = es
	}
	return out
}

func le(ub float64) string {
	return "le_" + strconv.FormatFloat(ub, 'f', -1, 64)
}
