package server

import (
	"net/http"
	"sync"
	"testing"

	"repro/internal/config"
)

// TestConcurrentRepairsShareOneSession hammers one cached session with
// parallel /v1/repair (and interleaved /v1/verify) calls. Run under
// -race, it proves the cached System/Network/HARC is read-safe to share:
// every solve clones the HARC state and builds its own solver, so no
// per-request work may write the shared model.
// TestConcurrentDeltasShareOneSession fires parallel /v1/delta +
// /v1/repair pairs at one cached base session. Run under -race, it
// proves the incremental layer is concurrency-safe: delta'd sessions
// share parsed configs and a forked solve cache with the base, repairs
// on the same delta'd session race on the cache's store/lookup path,
// and the oscillating deltas race on the session cache's single-flight
// and LRU bookkeeping.
func TestConcurrentDeltasShareOneSession(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	lr := loadFigure2a(t, ts)
	churn := "ip access-list extended CHURN\n permit ip any any\n!\n"
	cfgC := config.Figure2aConfigs()["C"]

	const goroutines = 8
	const perG = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Alternate between two delta targets so goroutines keep
				// hitting both cached content keys.
				text := cfgC + churn
				if (g+i)%2 == 0 {
					text = cfgC
				}
				var dr DeltaResponse
				if st := postJSON(t, ts, "/v1/delta", DeltaRequest{
					Session: lr.Session,
					Configs: map[string]string{"C": text},
				}, &dr); st != http.StatusOK {
					t.Errorf("g%d delta status = %d", g, st)
					return
				}
				var rr RepairResponse
				st := postJSON(t, ts, "/v1/repair", RepairRequest{Session: dr.Session, Policies: figure2aSpec}, &rr)
				switch st {
				case http.StatusOK:
					if !rr.Solved {
						t.Errorf("g%d repair unsolved", g)
					}
				case http.StatusTooManyRequests:
					// Load shedding is a legitimate outcome, not a failure.
				default:
					t.Errorf("g%d repair status = %d", g, st)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentRepairsShareOneSession(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	lr := loadFigure2a(t, ts)

	const goroutines = 8
	const perG = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var vr VerifyResponse
				if st := postJSON(t, ts, "/v1/verify", VerifyRequest{Session: lr.Session, Policies: figure2aSpec}, &vr); st != http.StatusOK {
					t.Errorf("g%d verify status = %d", g, st)
					return
				}
				var rr RepairResponse
				st := postJSON(t, ts, "/v1/repair", RepairRequest{Session: lr.Session, Policies: figure2aSpec}, &rr)
				switch st {
				case http.StatusOK:
					if !rr.Solved {
						t.Errorf("g%d repair unsolved", g)
					}
				case http.StatusTooManyRequests:
					// Load shedding under the default queue depth is a
					// legitimate outcome, not a failure.
				default:
					t.Errorf("g%d repair status = %d", g, st)
				}
			}
		}(g)
	}
	wg.Wait()
}
