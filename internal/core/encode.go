// Package core implements CPR's central contribution: casting control
// plane repair as a MaxSMT problem over HARC edge variables (paper §5).
//
// Hard constraints encode the policy classes of Figure 5 (constraints
// 1-17) and HARC well-formedness (constraints 18-19); soft constraints
// implement Table 2, making the optimal model the minimal-change repair.
// Problems are solved either over all traffic classes at once
// (maxsmt-all-tcs) or decomposed per destination and solved in parallel
// (maxsmt-per-dst, §5.3).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/arc"
	"repro/internal/faultinject"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/smt/bv"
	"repro/internal/smt/formula"
	"repro/internal/smt/maxsat"
	"repro/internal/smt/sat"
	"repro/internal/topology"
)

// encoder builds the MaxSMT problem for one group of traffic classes.
type encoder struct {
	h    *harc.HARC
	st   *harc.State // original state
	opts Options

	tcs      []topology.TrafficClass
	dsts     []*topology.Subnet
	policies []policy.Policy

	// freezeAll pins aETG variables to their original values (per-dst
	// decomposition: repairs are restricted to per-destination constructs
	// so per-problem solutions merge without conflicts, §5.3).
	freezeAll bool

	s       *sat.Solver
	b       *formula.Builder
	softs   []sat.Lit
	weights []int
	// byDevice collects keep-formulas per device for the MinDevices
	// objective (§5.2's "minimal number of devices changed").
	byDevice map[string][]*formula.F

	costVecs  map[string]bv.Vec     // CostKey → cost variable (PC4 problems)
	wedgeVars map[string]*formula.F // link name → waypoint variable
	canonical map[string]string     // inter slot key → canonical direction key
}

// Variable naming.

func vA(key string) *formula.F { return formula.Var("eA|" + key) }

// vRF is the route-filter construct variable: proc blocks routes to dst.
func vRF(dst *topology.Subnet, proc *topology.Process) *formula.F {
	return formula.Var("rf|" + dst.Name + "|" + proc.Name())
}

// vStatic is the static-route construct variable: the tail device has a
// static route for dst across the slot's link.
func vStatic(dst *topology.Subnet, s *arc.Slot) *formula.F {
	return formula.Var("st|" + dst.Name + "|" + s.Key())
}

func vD(dst *topology.Subnet, s *arc.Slot) *formula.F {
	return formula.Var("eD|" + dst.Name + "|" + s.Key())
}

func vT(tc topology.TrafficClass, s *arc.Slot) *formula.F {
	return formula.Var("eT|" + tc.String() + "|" + s.Key())
}

func constBool(v bool) *formula.F {
	if v {
		return formula.True
	}
	return formula.False
}

// aclDevice returns the device whose ACL realizes a tc-level deviation
// on the slot (mirrors the translator's placement).
func aclDevice(s *arc.Slot) string {
	switch s.Kind {
	case arc.SlotInterDevice:
		return s.ToIntf.Device.Name
	case arc.SlotSource, arc.SlotDest:
		return s.Intf.Device.Name
	default:
		return s.FromProc.Device.Name
	}
}

// applicableTC reports whether slot s can appear in tc's ETG.
func applicableTC(s *arc.Slot, tc topology.TrafficClass) bool {
	switch s.Kind {
	case arc.SlotSource:
		return s.Subnet == tc.Src
	case arc.SlotDest:
		return s.Subnet == tc.Dst
	}
	return true
}

// applicableDst reports whether slot s can appear in dst's dETG.
func applicableDst(s *arc.Slot, dst *topology.Subnet) bool {
	switch s.Kind {
	case arc.SlotSource:
		return false
	case arc.SlotDest:
		return s.Subnet == dst
	}
	return true
}

func newEncoder(h *harc.HARC, st *harc.State, tcs []topology.TrafficClass, policies []policy.Policy, freezeAll bool, opts Options) *encoder {
	solver := sat.New()
	solver.Budget = opts.ConflictBudget
	e := &encoder{
		h: h, st: st, opts: opts,
		tcs: tcs, policies: policies, freezeAll: freezeAll,
		s: solver, b: formula.NewBuilder(solver),
		costVecs:  make(map[string]bv.Vec),
		wedgeVars: make(map[string]*formula.F),
		canonical: make(map[string]string),
		byDevice:  make(map[string][]*formula.F),
	}
	// Routing adjacencies are symmetric: both directed slots over a link
	// share one aETG variable, keyed by the lexicographically smaller
	// slot key.
	byEndpoints := make(map[string]string)
	for _, s := range h.Slots {
		if s.Kind != arc.SlotInterDevice {
			continue
		}
		ep := s.FromProc.Name() + "|" + s.ToProc.Name() + "|" + s.FromIntf.Name + "|" + s.ToIntf.Name
		rev := s.ToProc.Name() + "|" + s.FromProc.Name() + "|" + s.ToIntf.Name + "|" + s.FromIntf.Name
		if other, ok := byEndpoints[rev]; ok {
			canon := other
			if s.Key() < canon {
				canon = s.Key()
			}
			e.canonical[s.Key()] = canon
			e.canonical[other] = canon
		} else {
			byEndpoints[ep] = s.Key()
			e.canonical[s.Key()] = s.Key()
		}
	}
	seen := map[string]bool{}
	for _, tc := range tcs {
		if !seen[tc.Dst.Name] {
			seen[tc.Dst.Name] = true
			e.dsts = append(e.dsts, tc.Dst)
		}
	}
	return e
}

// eA returns the aETG presence formula for slot s. Self edges always
// exist in the aETG; inter-device slots share one variable per adjacency
// (both directions); in per-dst mode the aETG is frozen to its original
// value.
func (e *encoder) eA(s *arc.Slot) *formula.F {
	if s.Kind == arc.SlotIntraSelf {
		return formula.True
	}
	if e.freezeAll {
		return constBool(e.st.All[s.Key()])
	}
	if s.Kind == arc.SlotInterDevice {
		return vA(e.canonical[s.Key()])
	}
	return vA(s.Key())
}

// wedge returns the waypoint formula for an inter-device slot's link.
// Existing middleboxes stay in place; repairs may only add waypoints
// (footnote 2 of the paper), which keeps per-destination sub-problems
// mergeable.
func (e *encoder) wedge(s *arc.Slot) *formula.F {
	if s.Kind != arc.SlotInterDevice {
		// Intra-device waypoint (device middlebox) is not repairable.
		return constBool(s.Waypoint())
	}
	name := s.Link.Name()
	if e.st.Waypoint[name] {
		return formula.True
	}
	if !e.opts.AllowWaypointChanges {
		return formula.False
	}
	if f, ok := e.wedgeVars[name]; ok {
		return f
	}
	f := formula.Var("wp|" + name)
	e.wedgeVars[name] = f
	return f
}

// cost returns the bitvector cost of slot s for PC4 arithmetic: a shared
// variable per egress interface for inter-device slots (constraint 13's
// sharing rule), zero otherwise.
func (e *encoder) cost(s *arc.Slot) bv.Vec {
	ck := harc.CostKey(s)
	if ck == "" {
		return bv.Const(0, 1)
	}
	if v, ok := e.costVecs[ck]; ok {
		return v
	}
	v := bv.New("cost|"+ck, e.opts.CostBits)
	e.costVecs[ck] = v
	// Constraint 13: cost > 0.
	e.b.Assert(bv.NonZero(v))
	return v
}

// soft registers a keep-formula attributed to a device. Under the
// MinLines objective each formula is one unit-weight soft (Table 2);
// under MinDevices the per-device conjunctions become the softs.
func (e *encoder) soft(device string, f *formula.F) { e.softWeighted(device, f, 1) }

// softWeighted registers a keep-formula with an explicit weight.
func (e *encoder) softWeighted(device string, f *formula.F, weight int) {
	if e.opts.Objective == MinDevices {
		e.byDevice[device] = append(e.byDevice[device], f)
		return
	}
	e.softs = append(e.softs, e.b.Lit(f))
	e.weights = append(e.weights, weight)
}

// finalizeSofts emits the per-device softs for MinDevices.
func (e *encoder) finalizeSofts() {
	if e.opts.Objective != MinDevices {
		return
	}
	names := make([]string, 0, len(e.byDevice))
	for name := range e.byDevice {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.softs = append(e.softs, e.b.Lit(formula.And(e.byDevice[name]...)))
		e.weights = append(e.weights, 1)
	}
}

// encode builds the full constraint system.
// encode builds the MaxSMT problem. Encoding large problems takes as
// long as solving them, so it polls ctx between policies — the loop
// dominates encoding time — and cancellation surfaces as ctx's error.
func (e *encoder) encode(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if faultinject.Enabled() {
		if err := faultinject.Eval(faultinject.CoreEncodeError); err != nil {
			return err
		}
		// Slow-encode site: sleeps (or runs a test callback), then honors
		// any cancellation that arrived while stalled.
		faultinject.Eval(faultinject.CoreEncodeSlow)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	e.hierarchyConstraints()
	for _, p := range e.policies {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.policyConstraints(p); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	e.softConstraints()
	e.seedPhases()
	return nil
}

// seedPhases biases the solver's initial polarities toward the original
// HARC state, so the first model found violates few soft constraints.
// This keeps the MaxSAT descent's cardinality encoding small (it is
// truncated at the initial violation count) and dramatically shortens
// the optimization.
func (e *encoder) seedPhases() {
	for _, tc := range e.tcs {
		tcState := e.st.TC[tc.Key()]
		for _, s := range e.tcSlots(tc) {
			name := "eT|" + tc.String() + "|" + s.Key()
			if e.b.HasVar(name) {
				e.b.Prefer(name, tcState[s.Key()])
			}
		}
	}
	for _, dst := range e.dsts {
		dstState := e.st.Dst[dst.Name]
		for _, s := range e.h.Slots {
			if !applicableDst(s, dst) {
				continue
			}
			name := "eD|" + dst.Name + "|" + s.Key()
			if e.b.HasVar(name) {
				e.b.Prefer(name, dstState[s.Key()])
			}
			switch s.Kind {
			case arc.SlotIntraSelf:
				rfName := "rf|" + dst.Name + "|" + s.FromProc.Name()
				if e.b.HasVar(rfName) {
					e.b.Prefer(rfName, s.FromProc.BlocksDestination(dst.Prefix))
				}
			case arc.SlotInterDevice:
				stName := "st|" + dst.Name + "|" + s.Key()
				if e.b.HasVar(stName) {
					e.b.Prefer(stName, s.StaticBacked(dst) != nil)
				}
			}
		}
	}
	if !e.freezeAll {
		for _, s := range e.h.Slots {
			var name string
			switch s.Kind {
			case arc.SlotInterDevice:
				name = "eA|" + e.canonical[s.Key()]
			case arc.SlotIntraRedist:
				name = "eA|" + s.Key()
			default:
				continue
			}
			if e.b.HasVar(name) {
				e.b.Prefer(name, e.st.All[s.Key()])
			}
		}
	}
	for ck := range e.costVecs {
		orig := uint64(e.st.Cost[ck])
		max := uint64(1)<<uint(e.opts.CostBits) - 1
		if orig > max {
			orig = max
		}
		for i := 0; i < e.opts.CostBits; i++ {
			e.b.Prefer(fmt.Sprintf("cost|%s.%d", ck, i), orig&(1<<uint(i)) != 0)
		}
	}
}

// hierarchyConstraints emits Figure 5 constraints 18 and 19. Constraint
// 18 (tcETG ⇒ dETG) is kept as an implication (the gap is an ACL, a
// per-traffic-class construct); constraint 19 is strengthened into
// structural definitions of dETG edges in terms of the per-destination
// constructs that realize them — route filters and static routes — so
// every satisfying model is directly implementable in configuration.
func (e *encoder) hierarchyConstraints() {
	for _, tc := range e.tcs {
		for _, s := range e.h.Slots {
			if !applicableTC(s, tc) {
				continue
			}
			if s.Kind == arc.SlotSource {
				// A source edge needs the gateway process to have a route
				// to the destination (no route filter).
				e.b.Assert(formula.Implies(vT(tc, s),
					formula.Not(vRF(tc.Dst, s.ToProc))))
				continue
			}
			switch s.Kind {
			case arc.SlotIntraSelf, arc.SlotIntraRedist:
				// ACLs cannot act inside a device: intra tcETG edges equal
				// their dETG edges (Table 3's "invalid modification").
				e.b.Assert(formula.Iff(vT(tc, s), vD(tc.Dst, s)))
			default:
				// Constraint 18: tcETG edge ⇒ dETG edge (the gap is an
				// interface ACL).
				e.b.Assert(formula.Implies(vT(tc, s), vD(tc.Dst, s)))
			}
		}
	}
	for _, dst := range e.dsts {
		// procStatic(p) is true when a static route for dst leaves
		// through process p's links: a FIB-level static also backs the
		// intra edges into p's outgoing vertex.
		procStaticMap := map[string]*formula.F{}
		for _, s := range e.h.Slots {
			if s.Kind != arc.SlotInterDevice {
				continue
			}
			owner := s.FromProc.Name()
			f := vStatic(dst, s)
			if prev, ok := procStaticMap[owner]; ok {
				procStaticMap[owner] = formula.Or(prev, f)
			} else {
				procStaticMap[owner] = f
			}
		}
		procStatic := func(p *topology.Process) *formula.F {
			if f, ok := procStaticMap[p.Name()]; ok {
				return f
			}
			return formula.False
		}
		for _, s := range e.h.Slots {
			if !applicableDst(s, dst) {
				continue
			}
			switch s.Kind {
			case arc.SlotIntraSelf:
				// A process forwards toward dst unless it filters the
				// route — or a static route makes the FIB authoritative.
				e.b.Assert(formula.Iff(vD(dst, s), formula.Or(
					formula.Not(vRF(dst, s.FromProc)),
					procStatic(s.FromProc),
				)))
			case arc.SlotIntraRedist:
				// Redistribution edge: configured and unfiltered, or
				// static-backed at the device level.
				e.b.Assert(formula.Iff(vD(dst, s), formula.Or(
					formula.And(
						e.eA(s),
						formula.Not(vRF(dst, s.ToProc)),
						formula.Not(vRF(dst, s.FromProc)),
					),
					procStatic(s.FromProc),
				)))
			case arc.SlotInterDevice:
				// Constraint 19: adjacency-backed (and the receiver
				// advertises dst) or static-backed.
				e.b.Assert(formula.Iff(vD(dst, s), formula.Or(
					formula.And(e.eA(s), formula.Not(vRF(dst, s.ToProc))),
					vStatic(dst, s),
				)))
			case arc.SlotDest:
				e.b.Assert(formula.Iff(vD(dst, s),
					formula.Not(vRF(dst, s.FromProc))))
			}
		}
	}
}

// tcSlots returns the slots applicable to tc.
func (e *encoder) tcSlots(tc topology.TrafficClass) []*arc.Slot {
	var out []*arc.Slot
	for _, s := range e.h.Slots {
		if applicableTC(s, tc) {
			out = append(out, s)
		}
	}
	return out
}

// vertexSet collects ETG vertex names for tc with SRC/DST included.
func (e *encoder) vertexSet(tc topology.TrafficClass) []string {
	seen := map[string]bool{"SRC": true, "DST": true}
	out := []string{"SRC", "DST"}
	for _, s := range e.tcSlots(tc) {
		for _, v := range []string{s.FromVertex(), s.ToVertex()} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func (e *encoder) policyConstraints(p policy.Policy) error {
	switch p.Kind {
	case policy.AlwaysBlocked:
		e.encodePC1(p)
	case policy.AlwaysWaypoint:
		e.encodePC2(p)
	case policy.KReachable:
		e.encodePC3(p)
	case policy.PrimaryPath:
		return e.encodePC4(p)
	case policy.Isolated:
		e.encodeIsolation(p)
	default:
		return fmt.Errorf("core: unsupported policy kind %v", p.Kind)
	}
	return nil
}

// encodeIsolation forbids the two traffic classes from sharing any ETG
// edge (§5.1: edge_tc1 ⇒ ¬edge_tc2 and vice versa).
func (e *encoder) encodeIsolation(p policy.Policy) {
	for _, s := range e.h.Slots {
		if applicableTC(s, p.TC) && applicableTC(s, p.TC2) {
			e.b.Assert(formula.Not(formula.And(vT(p.TC, s), vT(p.TC2, s))))
		}
	}
}

// encodePC1 emits Figure 5 constraints 1-3 in their SRC-rooted
// reachability-closure form: reach(SRC) holds, presence propagates
// reachability along edges, and reach(DST) is forbidden.
func (e *encoder) encodePC1(p policy.Policy) {
	tc := p.TC
	reach := func(v string) *formula.F {
		return formula.Var("reach|" + tc.String() + "|" + v)
	}
	e.b.Assert(reach("SRC"))
	for _, s := range e.tcSlots(tc) {
		e.b.Assert(formula.Implies(
			formula.And(vT(tc, s), reach(s.FromVertex())),
			reach(s.ToVertex()),
		))
	}
	e.b.Assert(formula.Not(reach("DST")))
}

// encodePC2 emits Figure 5 constraints 4-6: no waypoint-free path from
// SRC to DST may exist, where wedge variables mark waypoint-carrying
// edges (repairs may add waypoints, footnote 2).
func (e *encoder) encodePC2(p policy.Policy) {
	tc := p.TC
	nw := func(v string) *formula.F {
		return formula.Var("nw|" + tc.String() + "|" + v)
	}
	e.b.Assert(nw("SRC"))
	for _, s := range e.tcSlots(tc) {
		e.b.Assert(formula.Implies(
			formula.And(vT(tc, s), formula.Not(e.wedge(s)), nw(s.FromVertex())),
			nw(s.ToVertex()),
		))
	}
	e.b.Assert(formula.Not(nw("DST")))
}

// encodePC3 emits Figure 5 constraints 7-12: K link-disjoint paths must
// exist in the tcETG.
func (e *encoder) encodePC3(p policy.Policy) {
	tc := p.TC
	slots := e.tcSlots(tc)
	pe := func(j int, s *arc.Slot) *formula.F {
		return formula.Var(fmt.Sprintf("pe|%s|%d|%s", tc.String(), j, s.Key()))
	}

	// Index slots by tail and head vertex.
	bySrc := map[string][]*arc.Slot{}
	byDst := map[string][]*arc.Slot{}
	for _, s := range slots {
		bySrc[s.FromVertex()] = append(bySrc[s.FromVertex()], s)
		byDst[s.ToVertex()] = append(byDst[s.ToVertex()], s)
	}

	for j := 0; j < p.K; j++ {
		// Constraint 7: path edges exist in the tcETG.
		for _, s := range slots {
			e.b.Assert(formula.Implies(pe(j, s), vT(tc, s)))
		}
		// Constraint 8: the path leaves SRC.
		var fromSrc []*formula.F
		for _, s := range bySrc["SRC"] {
			fromSrc = append(fromSrc, pe(j, s))
		}
		e.b.Assert(formula.Or(fromSrc...))
		// Constraint 9: the path enters DST.
		var toDst []*formula.F
		for _, s := range byDst["DST"] {
			toDst = append(toDst, pe(j, s))
		}
		e.b.Assert(formula.Or(toDst...))
		// Constraints 10 and 11: interior continuity.
		for v, outs := range bySrc {
			if v == "SRC" {
				continue
			}
			// Constraint 10: a selected edge out of v needs a selected
			// edge into v.
			var ins []*formula.F
			for _, s := range byDst[v] {
				ins = append(ins, pe(j, s))
			}
			inAny := formula.Or(ins...)
			for _, s := range outs {
				e.b.Assert(formula.Implies(pe(j, s), inAny))
			}
		}
		for v, ins := range byDst {
			if v == "DST" {
				continue
			}
			// Constraint 11: a selected edge into v needs exactly one
			// selected edge out of v.
			outs := bySrc[v]
			var outFs []*formula.F
			for _, s := range outs {
				outFs = append(outFs, pe(j, s))
			}
			outAny := formula.Or(outFs...)
			for _, s := range ins {
				e.b.Assert(formula.Implies(pe(j, s), outAny))
			}
			if len(outFs) > 1 {
				e.b.AtMostOne(outFs...)
			}
		}
	}
	// Constraint 12: link-disjointness across the K paths, enforced per
	// physical link (both directions of a link belong to at most one
	// path).
	byLink := map[string][]*arc.Slot{}
	for _, s := range slots {
		if s.Kind == arc.SlotInterDevice {
			byLink[s.Link.Name()] = append(byLink[s.Link.Name()], s)
		}
	}
	for _, linkSlots := range byLink {
		used := make([]*formula.F, p.K)
		for j := 0; j < p.K; j++ {
			var parts []*formula.F
			for _, s := range linkSlots {
				parts = append(parts, pe(j, s))
			}
			used[j] = formula.Or(parts...)
		}
		for a := 0; a < p.K; a++ {
			for b := a + 1; b < p.K; b++ {
				e.b.Assert(formula.Not(formula.And(used[a], used[b])))
			}
		}
	}
}

// encodePC4 emits Figure 5 constraints 13-17: shared positive edge
// costs, exact shortest-path distance labels, and strict preference of
// the required path P at every hop.
func (e *encoder) encodePC4(p policy.Policy) error {
	tc := p.TC
	slots := e.tcSlots(tc)
	vertices := e.vertexSet(tc)
	distBits := e.opts.DistBits

	// Route selection is ACL-blind: distance labels, tightness, and the
	// strict-preference comparisons all range over ROUTING-level edge
	// presence (the dETG), not the tcETG. Encoding them over vT would let
	// the solver "satisfy" PC4 by ACL-blocking a routing-preferred edge —
	// concretely the traffic still routes into that edge and is dropped
	// by the very ACL that was added. Only the source attachment, which
	// exists solely at the tc level, keeps its tc variable.
	pres := func(s *arc.Slot) *formula.F {
		if s.Kind == arc.SlotSource {
			return vT(tc, s)
		}
		return vD(tc.Dst, s)
	}

	dist := map[string]bv.Vec{}
	unreach := map[string]*formula.F{}
	for _, v := range vertices {
		dist[v] = bv.New("d|"+tc.String()+"|"+v, distBits)
		unreach[v] = formula.Var("un|" + tc.String() + "|" + v)
	}
	// Constraints 14-15: SRC is the root at distance 0.
	bv.AssertEqualConst(e.b, dist["SRC"], 0)
	e.b.Assert(formula.Not(unreach["SRC"]))

	byDst := map[string][]*arc.Slot{}
	for _, s := range slots {
		byDst[s.ToVertex()] = append(byDst[s.ToVertex()], s)
	}

	// Relaxation: a present edge from a reachable tail bounds the head's
	// label, and makes the head reachable.
	for _, s := range slots {
		u, v := s.FromVertex(), s.ToVertex()
		premise := formula.And(pres(s), formula.Not(unreach[u]))
		sum := bv.Add(dist[u], e.cost(s))
		e.b.Assert(formula.Implies(premise, formula.And(
			formula.Not(unreach[v]),
			bv.LessEq(dist[v], sum),
		)))
	}
	// Tightness (constraint 16's support condition): every reachable
	// non-SRC vertex has an incoming tight edge. With strictly positive
	// inter-device costs and the bipartite I/O structure, support graphs
	// are acyclic, so labels are exactly the shortest distances.
	for _, v := range vertices {
		if v == "SRC" {
			continue
		}
		var supports []*formula.F
		for _, s := range byDst[v] {
			u := s.FromVertex()
			supports = append(supports, formula.And(
				pres(s),
				formula.Not(unreach[u]),
				bv.Equal(dist[v], bv.Add(dist[u], e.cost(s))),
			))
		}
		e.b.Assert(formula.Or(unreach[v], formula.Or(supports...)))
	}

	// Constraint 17: the edges of P exist, are tight, and are strictly
	// preferred over every other incoming edge at each hop.
	chain, err := e.chainSlots(p)
	if err != nil {
		return err
	}
	for _, cs := range chain {
		u, v := cs.FromVertex(), cs.ToVertex()
		// The chain edge must be usable at the tc level (no ACL may drop
		// traffic on its own primary path); constraint 18 lifts this to
		// routing presence.
		e.b.Assert(vT(tc, cs))
		e.b.Assert(formula.Not(unreach[u]))
		chainSum := bv.Add(dist[u], e.cost(cs))
		e.b.Assert(bv.Equal(dist[v], chainSum))
		for _, other := range byDst[v] {
			if other == cs {
				continue
			}
			w := other.FromVertex()
			e.b.Assert(formula.Implies(
				formula.And(pres(other), formula.Not(unreach[w])),
				bv.Less(chainSum, bv.Add(dist[w], e.cost(other))),
			))
		}
	}
	return nil
}

// chainSlots maps a PC4 device path onto the unique slot sequence
// SRC → dev1:O → dev2:I → dev2:O → ... → DST. It requires a single
// routing process per device pair (the common case; ambiguous paths are
// rejected).
func (e *encoder) chainSlots(p policy.Policy) ([]*arc.Slot, error) {
	tc := p.TC
	slots := e.tcSlots(tc)
	var chain []*arc.Slot

	find := func(pred func(*arc.Slot) bool, what string) (*arc.Slot, error) {
		var found *arc.Slot
		for _, s := range slots {
			if pred(s) {
				if found != nil {
					return nil, fmt.Errorf("core: PC4 path for %s is ambiguous at %s (multiple processes)", tc, what)
				}
				found = s
			}
		}
		if found == nil {
			return nil, fmt.Errorf("core: PC4 path for %s has no candidate slot at %s", tc, what)
		}
		return found, nil
	}

	if len(p.Path) == 0 {
		return nil, fmt.Errorf("core: PC4 policy for %s has empty path", tc)
	}
	first := p.Path[0]
	s, err := find(func(s *arc.Slot) bool {
		return s.Kind == arc.SlotSource && s.ToProc.Device.Name == first
	}, "SRC->"+first)
	if err != nil {
		return nil, err
	}
	chain = append(chain, s)

	for i := 0; i+1 < len(p.Path); i++ {
		from, to := p.Path[i], p.Path[i+1]
		inter, err := find(func(s *arc.Slot) bool {
			return s.Kind == arc.SlotInterDevice &&
				s.FromProc.Device.Name == from && s.ToProc.Device.Name == to
		}, from+"->"+to)
		if err != nil {
			return nil, err
		}
		chain = append(chain, inter)
		// Intra-device hop on the next device (unless it is the last and
		// traffic exits to DST from its I vertex... the DST edge leaves
		// the I vertex, so no intra hop is needed on the final device).
		if i+2 < len(p.Path) {
			self, err := find(func(s *arc.Slot) bool {
				return s.Kind == arc.SlotIntraSelf && s.FromProc.Device.Name == to
			}, "intra "+to)
			if err != nil {
				return nil, err
			}
			chain = append(chain, self)
		}
	}
	last := p.Path[len(p.Path)-1]
	dstSlot, err := find(func(s *arc.Slot) bool {
		return s.Kind == arc.SlotDest && s.FromProc.Device.Name == last
	}, last+"->DST")
	if err != nil {
		return nil, err
	}
	chain = append(chain, dstSlot)
	return chain, nil
}

// softConstraints emits Table 2 plus the cost and waypoint softs.
func (e *encoder) softConstraints() {
	// tcETG-level softs.
	for _, tc := range e.tcs {
		tcState := e.st.TC[tc.Key()]
		dstState := e.st.Dst[tc.Dst.Name]
		for _, s := range e.tcSlots(tc) {
			key := s.Key()
			origTC := tcState[key]
			if s.Kind == arc.SlotSource {
				// Source edges have no dETG parent; keeping them as-is
				// avoids an ACL change on the host-facing interface.
				e.soft(s.Intf.Device.Name, formula.Iff(vT(tc, s), constBool(origTC)))
				continue
			}
			dev := aclDevice(s)
			origD := dstState[key]
			if origD && !origTC {
				// Deviation (ACL) continues to pay for itself only if the
				// edge stays absent (Table 2 rows 2 and 6).
				e.soft(dev, formula.Not(vT(tc, s)))
			} else {
				e.soft(dev, formula.Iff(vT(tc, s), vD(tc.Dst, s)))
			}
		}
	}
	// dETG-level softs: one per construct, so violated softs count
	// configuration lines exactly (the construct realization of Table 2's
	// per-edge accounting).
	seenRF := map[string]bool{}
	for _, dst := range e.dsts {
		for _, s := range e.h.Slots {
			if !applicableDst(s, dst) {
				continue
			}
			switch s.Kind {
			case arc.SlotIntraSelf:
				// One route-filter soft per (process, destination).
				rf := vRF(dst, s.FromProc)
				key := dst.Name + "|" + s.FromProc.Name()
				if !seenRF[key] {
					seenRF[key] = true
					orig := s.FromProc.BlocksDestination(dst.Prefix)
					e.soft(s.FromProc.Device.Name, formula.Iff(rf, constBool(orig)))
				}
			case arc.SlotInterDevice:
				orig := s.StaticBacked(dst) != nil
				e.soft(s.FromProc.Device.Name, formula.Iff(vStatic(dst, s), constBool(orig)))
			}
		}
	}
	// aETG-level softs (all-tcs mode only; per-dst freezes the aETG):
	// one per adjacency (canonical direction) and one per redistribution
	// edge.
	if !e.freezeAll {
		for _, s := range e.h.Slots {
			key := s.Key()
			switch s.Kind {
			case arc.SlotInterDevice:
				if e.canonical[key] != key {
					continue // the reverse direction carries the soft
				}
			case arc.SlotIntraRedist:
			default:
				continue
			}
			dev := s.FromProc.Device.Name
			if s.Kind == arc.SlotIntraRedist {
				dev = s.ToProc.Device.Name
			}
			if e.st.All[key] {
				e.soft(dev, e.eA(s))
			} else {
				e.soft(dev, formula.Not(e.eA(s)))
			}
		}
	}
	// Cost softs: keep each interface cost unchanged (one line per
	// change). CostKey is "<device>/<interface>".
	for ck, vec := range e.costVecs {
		orig := e.st.Cost[ck]
		max := int64(1)<<uint(e.opts.CostBits) - 1
		if orig > max {
			orig = max
		}
		dev := ck
		if i := strings.IndexByte(ck, '/'); i >= 0 {
			dev = ck[:i]
		}
		e.soft(dev, bv.Equal(vec, bv.Const(uint64(orig), e.opts.CostBits)))
	}
	// Waypoint softs: adding a middlebox is a change (wedge variables are
	// only created for links without one). Middleboxes are not device
	// configuration; attribute them to a pseudo-device per link.
	// Their weight is configurable — placing a firewall typically costs
	// more than editing a configuration line.
	for name, f := range e.wedgeVars {
		e.softWeighted("link:"+name, formula.Not(f), e.opts.WaypointWeight)
	}
	e.finalizeSofts()
}

// solve runs MaxSAT and returns the violated-soft count.
func (e *encoder) solve(ctx context.Context) (int, sat.Status) {
	res := maxsat.SolveWeightedCtx(ctx, e.s, e.softs, e.weights, e.opts.Algorithm)
	return res.Cost, res.Status
}

// extract reads the model into the merged repaired state, writing only
// the levels this problem solved. The orchestrator applies the
// follow-the-parent rule for unsolved levels afterwards.
func (e *encoder) extract(out *harc.State) {
	if !e.freezeAll {
		for _, s := range e.h.Slots {
			var name string
			switch s.Kind {
			case arc.SlotInterDevice:
				name = e.canonical[s.Key()]
			case arc.SlotIntraRedist:
				name = s.Key()
			default:
				continue // self edges are constant; attach slots have no aETG level
			}
			if e.b.HasVar("eA|" + name) {
				out.All[s.Key()] = e.b.Value(vA(name))
			}
		}
	}
	for _, dst := range e.dsts {
		dm := out.Dst[dst.Name]
		for _, s := range e.h.Slots {
			if !applicableDst(s, dst) {
				continue
			}
			name := "eD|" + dst.Name + "|" + s.Key()
			if e.b.HasVar(name) {
				dm[s.Key()] = e.b.Value(formula.Var(name))
			}
			switch s.Kind {
			case arc.SlotIntraSelf:
				rfName := "rf|" + dst.Name + "|" + s.FromProc.Name()
				if e.b.HasVar(rfName) {
					out.RouteFilter[harc.RFKey(dst.Name, s.FromProc.Name())] = e.b.Value(formula.Var(rfName))
				}
			case arc.SlotInterDevice:
				stName := "st|" + dst.Name + "|" + s.Key()
				if e.b.HasVar(stName) {
					out.Static[harc.StaticKey(dst.Name, s.Key())] = e.b.Value(formula.Var(stName))
				}
			}
		}
	}
	for _, tc := range e.tcs {
		m := out.TC[tc.Key()]
		for _, s := range e.tcSlots(tc) {
			name := "eT|" + tc.String() + "|" + s.Key()
			if e.b.HasVar(name) {
				m[s.Key()] = e.b.Value(formula.Var(name))
			}
		}
	}
	for ck, vec := range e.costVecs {
		out.Cost[ck] = int64(bv.Value(e.b, vec))
	}
	for name, f := range e.wedgeVars {
		if e.b.Value(f) {
			out.Waypoint[name] = true
		}
	}
}
