// Package core implements CPR's central contribution: casting control
// plane repair as a MaxSMT problem over HARC edge variables (paper §5).
//
// Hard constraints encode the policy classes of Figure 5 (constraints
// 1-17) and HARC well-formedness (constraints 18-19); soft constraints
// implement Table 2, making the optimal model the minimal-change repair.
// Problems are solved either over all traffic classes at once
// (maxsmt-all-tcs) or decomposed per destination and solved in parallel
// (maxsmt-per-dst, §5.3).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/arc"
	"repro/internal/faultinject"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/smt/bv"
	"repro/internal/smt/formula"
	"repro/internal/smt/maxsat"
	"repro/internal/smt/sat"
	"repro/internal/topology"
)

// encoder builds the MaxSMT problem for one group of traffic classes.
//
// Variables are interned: every encoder owns a formula.Pool and looks
// edge variables up in dense ID tables indexed by (local tc/dst index,
// global slot index) instead of concatenating string names per use. The
// shared read-only tables (slot keys, applicability, vertex spaces) come
// precomputed from the per-repair tables value, so parallel per-dst
// encoders never recompute them.
type encoder struct {
	tb   *tables
	st   *harc.State // original state
	opts Options

	tcs      []topology.TrafficClass
	dsts     []*topology.Subnet
	policies []policy.Policy

	// freezeAll pins aETG variables to their original values (per-dst
	// decomposition: repairs are restricted to per-destination constructs
	// so per-problem solutions merge without conflicts, §5.3).
	freezeAll bool

	s    *sat.Solver
	b    *formula.Builder
	pool *formula.Pool

	// Dense variable tables. Rows are indexed by global slot index; nil
	// entries mark inapplicable slots. tVar/dVar/stVar/rfVar outer
	// dimensions are the local tc/dst indices (tcIdx/dstIdx).
	tcIdx  map[string]int
	dstIdx map[string]int
	aVar   []*formula.F   // canonical slot index → aETG variable
	tVar   [][]*formula.F // tcETG edge variables
	dVar   [][]*formula.F // dETG edge variables
	stVar  [][]*formula.F // static-route construct variables (inter slots)
	rfVar  [][]*formula.F // route-filter construct variables (proc index)

	softs   []sat.Lit
	weights []int
	// byDevice collects keep-formulas per device for the MinDevices
	// objective (§5.2's "minimal number of devices changed").
	byDevice map[string][]*formula.F

	costVecs   map[string]bv.Vec // CostKey → cost variable (PC4 problems)
	costOrder  []string
	wedgeVars  map[string]*formula.F // link name → waypoint variable
	wedgeOrder []string
}

func constBool(v bool) *formula.F {
	if v {
		return formula.True
	}
	return formula.False
}

// aclDevice returns the device whose ACL realizes a tc-level deviation
// on the slot (mirrors the translator's placement).
func aclDevice(s *arc.Slot) string {
	switch s.Kind {
	case arc.SlotInterDevice:
		return s.ToIntf.Device.Name
	case arc.SlotSource, arc.SlotDest:
		return s.Intf.Device.Name
	default:
		return s.FromProc.Device.Name
	}
}

// applicableTC reports whether slot s can appear in tc's ETG.
func applicableTC(s *arc.Slot, tc topology.TrafficClass) bool {
	switch s.Kind {
	case arc.SlotSource:
		return s.Subnet == tc.Src
	case arc.SlotDest:
		return s.Subnet == tc.Dst
	}
	return true
}

// applicableDst reports whether slot s can appear in dst's dETG.
func applicableDst(s *arc.Slot, dst *topology.Subnet) bool {
	switch s.Kind {
	case arc.SlotSource:
		return false
	case arc.SlotDest:
		return s.Subnet == dst
	}
	return true
}

func newEncoder(tb *tables, st *harc.State, tcs []topology.TrafficClass, policies []policy.Policy, freezeAll bool, opts Options) *encoder {
	solver := sat.New()
	solver.Budget = opts.ConflictBudget
	pool := formula.NewPool()
	e := &encoder{
		tb: tb, st: st, opts: opts,
		tcs: tcs, policies: policies, freezeAll: freezeAll,
		s: solver, b: formula.NewPooledBuilder(solver, pool), pool: pool,
		costVecs:  make(map[string]bv.Vec),
		wedgeVars: make(map[string]*formula.F),
		byDevice:  make(map[string][]*formula.F),
	}
	seen := map[string]bool{}
	for _, tc := range tcs {
		if !seen[tc.Dst.Name] {
			seen[tc.Dst.Name] = true
			e.dsts = append(e.dsts, tc.Dst)
		}
	}
	nslots := len(tb.slots)

	// Eagerly create the variable nodes (node creation is one small
	// allocation; solver variables stay lazy until a constraint uses
	// them). Everything downstream is then a slice index away.
	e.tcIdx = make(map[string]int, len(tcs))
	e.tVar = make([][]*formula.F, len(tcs))
	for tl, tc := range tcs {
		e.tcIdx[tc.Key()] = tl
		row := make([]*formula.F, nslots)
		for _, si := range tb.tc[tc.Key()].slots {
			row[si] = pool.Fresh()
		}
		e.tVar[tl] = row
	}
	e.dstIdx = make(map[string]int, len(e.dsts))
	e.dVar = make([][]*formula.F, len(e.dsts))
	e.stVar = make([][]*formula.F, len(e.dsts))
	e.rfVar = make([][]*formula.F, len(e.dsts))
	for dl, dst := range e.dsts {
		e.dstIdx[dst.Name] = dl
		drow := make([]*formula.F, nslots)
		srow := make([]*formula.F, nslots)
		for _, si := range tb.dst[dst.Name].slots {
			drow[si] = pool.Fresh()
			if tb.slots[si].Kind == arc.SlotInterDevice {
				srow[si] = pool.Fresh()
			}
		}
		rrow := make([]*formula.F, len(tb.procs))
		for pi := range rrow {
			rrow[pi] = pool.Fresh()
		}
		e.dVar[dl] = drow
		e.stVar[dl] = srow
		e.rfVar[dl] = rrow
	}
	if !freezeAll {
		e.aVar = make([]*formula.F, nslots)
		for si, s := range tb.slots {
			switch s.Kind {
			case arc.SlotInterDevice:
				if tb.canon[si] == si {
					e.aVar[si] = pool.Fresh()
				}
			case arc.SlotIntraRedist:
				e.aVar[si] = pool.Fresh()
			}
		}
	}
	return e
}

// eA returns the aETG presence formula for the slot at index si. Self
// edges always exist in the aETG; inter-device slots share one variable
// per adjacency (both directions); in per-dst mode the aETG is frozen to
// its original value.
func (e *encoder) eA(si int) *formula.F {
	s := e.tb.slots[si]
	if s.Kind == arc.SlotIntraSelf {
		return formula.True
	}
	if e.freezeAll {
		return constBool(e.st.All[e.tb.key[si]])
	}
	return e.aVar[e.tb.canon[si]]
}

// wedge returns the waypoint formula for an inter-device slot's link.
// Existing middleboxes stay in place; repairs may only add waypoints
// (footnote 2 of the paper), which keeps per-destination sub-problems
// mergeable.
func (e *encoder) wedge(si int) *formula.F {
	s := e.tb.slots[si]
	if s.Kind != arc.SlotInterDevice {
		// Intra-device waypoint (device middlebox) is not repairable.
		return constBool(s.Waypoint())
	}
	name := e.tb.linkName[si]
	if e.st.Waypoint[name] {
		return formula.True
	}
	if !e.opts.AllowWaypointChanges {
		return formula.False
	}
	if f, ok := e.wedgeVars[name]; ok {
		return f
	}
	f := e.pool.Fresh()
	e.wedgeVars[name] = f
	e.wedgeOrder = append(e.wedgeOrder, name)
	return f
}

// cost returns the bitvector cost of the slot at index si for PC4
// arithmetic: a shared variable per egress interface for inter-device
// slots (constraint 13's sharing rule), zero otherwise.
func (e *encoder) cost(si int) bv.Vec {
	ck := e.tb.costKey[si]
	if ck == "" {
		return bv.Const(0, 1)
	}
	if v, ok := e.costVecs[ck]; ok {
		return v
	}
	v := bv.Fresh(e.pool, e.opts.CostBits)
	e.costVecs[ck] = v
	e.costOrder = append(e.costOrder, ck)
	// Constraint 13: cost > 0.
	e.b.Assert(bv.NonZero(v))
	return v
}

// freshVec returns n fresh anonymous variables.
func (e *encoder) freshVec(n int) []*formula.F {
	out := make([]*formula.F, n)
	for i := range out {
		out[i] = e.pool.Fresh()
	}
	return out
}

// soft registers a keep-formula attributed to a device. Under the
// MinLines objective each formula is one unit-weight soft (Table 2);
// under MinDevices the per-device conjunctions become the softs.
func (e *encoder) soft(device string, f *formula.F) { e.softWeighted(device, f, 1) }

// softWeighted registers a keep-formula with an explicit weight.
func (e *encoder) softWeighted(device string, f *formula.F, weight int) {
	if e.opts.Objective == MinDevices {
		e.byDevice[device] = append(e.byDevice[device], f)
		return
	}
	e.softs = append(e.softs, e.b.Lit(f))
	e.weights = append(e.weights, weight)
}

// finalizeSofts emits the per-device softs for MinDevices.
func (e *encoder) finalizeSofts() {
	if e.opts.Objective != MinDevices {
		return
	}
	names := make([]string, 0, len(e.byDevice))
	for name := range e.byDevice {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.softs = append(e.softs, e.b.Lit(formula.And(e.byDevice[name]...)))
		e.weights = append(e.weights, 1)
	}
}

// encode builds the MaxSMT problem. Encoding large problems takes as
// long as solving them, so it polls ctx between policies — the loop
// dominates encoding time — and cancellation surfaces as ctx's error.
func (e *encoder) encode(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if faultinject.Enabled() {
		if err := faultinject.Eval(faultinject.CoreEncodeError); err != nil {
			return err
		}
		// Slow-encode site: sleeps (or runs a test callback), then honors
		// any cancellation that arrived while stalled.
		faultinject.Eval(faultinject.CoreEncodeSlow)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	e.hierarchyConstraints()
	for _, p := range e.policies {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.policyConstraints(p); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	e.softConstraints()
	e.seedPhases()
	return nil
}

// seedPhases biases the solver's initial polarities toward the original
// HARC state, so the first model found violates few soft constraints.
// This keeps the MaxSAT descent's cardinality encoding small (it is
// truncated at the initial violation count) and dramatically shortens
// the optimization.
func (e *encoder) seedPhases() {
	for tl, tc := range e.tcs {
		tcState := e.st.TC[tc.Key()]
		for _, si := range e.tb.tc[tc.Key()].slots {
			if f := e.tVar[tl][si]; e.b.AllocatedVar(f) {
				e.b.PreferF(f, tcState[e.tb.key[si]])
			}
		}
	}
	for dl, dst := range e.dsts {
		dstState := e.st.Dst[dst.Name]
		for _, si := range e.tb.dst[dst.Name].slots {
			s := e.tb.slots[si]
			if f := e.dVar[dl][si]; e.b.AllocatedVar(f) {
				e.b.PreferF(f, dstState[e.tb.key[si]])
			}
			switch s.Kind {
			case arc.SlotIntraSelf:
				if f := e.rfVar[dl][e.tb.fromProc[si]]; e.b.AllocatedVar(f) {
					e.b.PreferF(f, s.FromProc.BlocksDestination(dst.Prefix))
				}
			case arc.SlotInterDevice:
				if f := e.stVar[dl][si]; e.b.AllocatedVar(f) {
					e.b.PreferF(f, s.StaticBacked(dst) != nil)
				}
			}
		}
	}
	if !e.freezeAll {
		for si, s := range e.tb.slots {
			switch s.Kind {
			case arc.SlotInterDevice, arc.SlotIntraRedist:
			default:
				continue
			}
			if f := e.aVar[e.tb.canon[si]]; f != nil && e.b.AllocatedVar(f) {
				e.b.PreferF(f, e.st.All[e.tb.key[si]])
			}
		}
	}
	for _, ck := range e.costOrder {
		orig := uint64(e.st.Cost[ck])
		max := uint64(1)<<uint(e.opts.CostBits) - 1
		if orig > max {
			orig = max
		}
		for i, bit := range e.costVecs[ck] {
			e.b.PreferF(bit, orig&(1<<uint(i)) != 0)
		}
	}
}

// hierarchyConstraints emits Figure 5 constraints 18 and 19. Constraint
// 18 (tcETG ⇒ dETG) is kept as an implication (the gap is an ACL, a
// per-traffic-class construct); constraint 19 is strengthened into
// structural definitions of dETG edges in terms of the per-destination
// constructs that realize them — route filters and static routes — so
// every satisfying model is directly implementable in configuration.
func (e *encoder) hierarchyConstraints() {
	for tl, tc := range e.tcs {
		dl := e.dstIdx[tc.Dst.Name]
		for _, si := range e.tb.tc[tc.Key()].slots {
			switch e.tb.slots[si].Kind {
			case arc.SlotSource:
				// A source edge needs the gateway process to have a route
				// to the destination (no route filter).
				e.b.Assert(formula.Implies(e.tVar[tl][si],
					formula.Not(e.rfVar[dl][e.tb.toProc[si]])))
			case arc.SlotIntraSelf, arc.SlotIntraRedist:
				// ACLs cannot act inside a device: intra tcETG edges equal
				// their dETG edges (Table 3's "invalid modification").
				e.b.Assert(formula.Iff(e.tVar[tl][si], e.dVar[dl][si]))
			default:
				// Constraint 18: tcETG edge ⇒ dETG edge (the gap is an
				// interface ACL).
				e.b.Assert(formula.Implies(e.tVar[tl][si], e.dVar[dl][si]))
			}
		}
	}
	for dl, dst := range e.dsts {
		// procStatic(p) is true when a static route for dst leaves
		// through process p's links: a FIB-level static also backs the
		// intra edges into p's outgoing vertex.
		procParts := make([][]*formula.F, len(e.tb.procs))
		for si, s := range e.tb.slots {
			if s.Kind != arc.SlotInterDevice {
				continue
			}
			pi := e.tb.fromProc[si]
			procParts[pi] = append(procParts[pi], e.stVar[dl][si])
		}
		procStatic := func(pi int) *formula.F {
			if parts := procParts[pi]; len(parts) > 0 {
				return formula.Or(parts...)
			}
			return formula.False
		}
		for _, si := range e.tb.dst[dst.Name].slots {
			switch e.tb.slots[si].Kind {
			case arc.SlotIntraSelf:
				// A process forwards toward dst unless it filters the
				// route — or a static route makes the FIB authoritative.
				from := e.tb.fromProc[si]
				e.b.Assert(formula.Iff(e.dVar[dl][si], formula.Or(
					formula.Not(e.rfVar[dl][from]),
					procStatic(from),
				)))
			case arc.SlotIntraRedist:
				// Redistribution edge: configured and unfiltered, or
				// static-backed at the device level.
				from := e.tb.fromProc[si]
				e.b.Assert(formula.Iff(e.dVar[dl][si], formula.Or(
					formula.And(
						e.eA(si),
						formula.Not(e.rfVar[dl][e.tb.toProc[si]]),
						formula.Not(e.rfVar[dl][from]),
					),
					procStatic(from),
				)))
			case arc.SlotInterDevice:
				// Constraint 19: adjacency-backed (and the receiver
				// advertises dst) or static-backed.
				e.b.Assert(formula.Iff(e.dVar[dl][si], formula.Or(
					formula.And(e.eA(si), formula.Not(e.rfVar[dl][e.tb.toProc[si]])),
					e.stVar[dl][si],
				)))
			case arc.SlotDest:
				e.b.Assert(formula.Iff(e.dVar[dl][si],
					formula.Not(e.rfVar[dl][e.tb.fromProc[si]])))
			}
		}
	}
}

func (e *encoder) policyConstraints(p policy.Policy) error {
	switch p.Kind {
	case policy.AlwaysBlocked:
		e.encodePC1(p)
	case policy.AlwaysWaypoint:
		e.encodePC2(p)
	case policy.KReachable:
		e.encodePC3(p)
	case policy.PrimaryPath:
		return e.encodePC4(p)
	case policy.Isolated:
		e.encodeIsolation(p)
	default:
		return fmt.Errorf("core: unsupported policy kind %v", p.Kind)
	}
	return nil
}

// encodeIsolation forbids the two traffic classes from sharing any ETG
// edge (§5.1: edge_tc1 ⇒ ¬edge_tc2 and vice versa).
func (e *encoder) encodeIsolation(p policy.Policy) {
	t1 := e.tVar[e.tcIdx[p.TC.Key()]]
	t2 := e.tVar[e.tcIdx[p.TC2.Key()]]
	for si := range e.tb.slots {
		if t1[si] != nil && t2[si] != nil {
			e.b.Assert(formula.Not(formula.And(t1[si], t2[si])))
		}
	}
}

// encodePC1 emits Figure 5 constraints 1-3 in their SRC-rooted
// reachability-closure form: reach(SRC) holds, presence propagates
// reachability along edges, and reach(DST) is forbidden.
func (e *encoder) encodePC1(p policy.Policy) {
	tl := e.tcIdx[p.TC.Key()]
	t := e.tb.tc[p.TC.Key()]
	reach := e.freshVec(len(t.vertices))
	e.b.Assert(reach[0]) // SRC
	for k, si := range t.slots {
		e.b.Assert(formula.Implies(
			formula.And(e.tVar[tl][si], reach[t.fromV[k]]),
			reach[t.toV[k]],
		))
	}
	e.b.Assert(formula.Not(reach[1])) // DST
}

// encodePC2 emits Figure 5 constraints 4-6: no waypoint-free path from
// SRC to DST may exist, where wedge variables mark waypoint-carrying
// edges (repairs may add waypoints, footnote 2).
func (e *encoder) encodePC2(p policy.Policy) {
	tl := e.tcIdx[p.TC.Key()]
	t := e.tb.tc[p.TC.Key()]
	nw := e.freshVec(len(t.vertices))
	e.b.Assert(nw[0]) // SRC
	for k, si := range t.slots {
		e.b.Assert(formula.Implies(
			formula.And(e.tVar[tl][si], formula.Not(e.wedge(si)), nw[t.fromV[k]]),
			nw[t.toV[k]],
		))
	}
	e.b.Assert(formula.Not(nw[1])) // DST
}

// peVars gathers path-edge variables for the given slot positions.
func peVars(row []*formula.F, positions []int) []*formula.F {
	out := make([]*formula.F, len(positions))
	for i, k := range positions {
		out[i] = row[k]
	}
	return out
}

// encodePC3 emits Figure 5 constraints 7-12: K link-disjoint paths must
// exist in the tcETG.
func (e *encoder) encodePC3(p policy.Policy) {
	tl := e.tcIdx[p.TC.Key()]
	t := e.tb.tc[p.TC.Key()]

	// pe[j][k] selects the slot at position k into path j.
	pe := make([][]*formula.F, p.K)
	for j := range pe {
		pe[j] = e.freshVec(len(t.slots))
	}

	for j := 0; j < p.K; j++ {
		// Constraint 7: path edges exist in the tcETG.
		for k, si := range t.slots {
			e.b.Assert(formula.Implies(pe[j][k], e.tVar[tl][si]))
		}
		// Constraint 8: the path leaves SRC.
		e.b.Assert(formula.Or(peVars(pe[j], t.byTail[0])...))
		// Constraint 9: the path enters DST.
		e.b.Assert(formula.Or(peVars(pe[j], t.byHead[1])...))
		// Constraints 10 and 11: interior continuity.
		for vi := range t.vertices {
			if vi == 0 { // SRC
				continue
			}
			outs := t.byTail[vi]
			if len(outs) == 0 {
				continue
			}
			// Constraint 10: a selected edge out of v needs a selected
			// edge into v.
			inAny := formula.Or(peVars(pe[j], t.byHead[vi])...)
			for _, k := range outs {
				e.b.Assert(formula.Implies(pe[j][k], inAny))
			}
		}
		for vi := range t.vertices {
			if vi == 1 { // DST
				continue
			}
			ins := t.byHead[vi]
			if len(ins) == 0 {
				continue
			}
			// Constraint 11: a selected edge into v needs exactly one
			// selected edge out of v.
			outFs := peVars(pe[j], t.byTail[vi])
			outAny := formula.Or(outFs...)
			for _, k := range ins {
				e.b.Assert(formula.Implies(pe[j][k], outAny))
			}
			if len(outFs) > 1 {
				e.b.AtMostOne(outFs...)
			}
		}
	}
	// Constraint 12: link-disjointness across the K paths, enforced per
	// physical link (both directions of a link belong to at most one
	// path).
	for _, lg := range t.links {
		used := make([]*formula.F, p.K)
		for j := 0; j < p.K; j++ {
			used[j] = formula.Or(peVars(pe[j], lg.positions)...)
		}
		for a := 0; a < p.K; a++ {
			for b := a + 1; b < p.K; b++ {
				e.b.Assert(formula.Not(formula.And(used[a], used[b])))
			}
		}
	}
}

// encodePC4 emits Figure 5 constraints 13-17: shared positive edge
// costs, exact shortest-path distance labels, and strict preference of
// the required path P at every hop.
func (e *encoder) encodePC4(p policy.Policy) error {
	tc := p.TC
	tl := e.tcIdx[tc.Key()]
	dl := e.dstIdx[tc.Dst.Name]
	t := e.tb.tc[tc.Key()]
	distBits := e.opts.DistBits

	// Route selection is ACL-blind: distance labels, tightness, and the
	// strict-preference comparisons all range over ROUTING-level edge
	// presence (the dETG), not the tcETG. Encoding them over vT would let
	// the solver "satisfy" PC4 by ACL-blocking a routing-preferred edge —
	// concretely the traffic still routes into that edge and is dropped
	// by the very ACL that was added. Only the source attachment, which
	// exists solely at the tc level, keeps its tc variable.
	pres := func(k int) *formula.F {
		si := t.slots[k]
		if e.tb.slots[si].Kind == arc.SlotSource {
			return e.tVar[tl][si]
		}
		return e.dVar[dl][si]
	}

	dist := make([]bv.Vec, len(t.vertices))
	unreach := e.freshVec(len(t.vertices))
	for vi := range t.vertices {
		dist[vi] = bv.Fresh(e.pool, distBits)
	}
	// Constraints 14-15: SRC is the root at distance 0.
	bv.AssertEqualConst(e.b, dist[0], 0)
	e.b.Assert(formula.Not(unreach[0]))

	// Relaxation: a present edge from a reachable tail bounds the head's
	// label, and makes the head reachable.
	for k, si := range t.slots {
		u, v := t.fromV[k], t.toV[k]
		premise := formula.And(pres(k), formula.Not(unreach[u]))
		sum := bv.Add(dist[u], e.cost(si))
		e.b.Assert(formula.Implies(premise, formula.And(
			formula.Not(unreach[v]),
			bv.LessEq(dist[v], sum),
		)))
	}
	// Tightness (constraint 16's support condition): every reachable
	// non-SRC vertex has an incoming tight edge. With strictly positive
	// inter-device costs and the bipartite I/O structure, support graphs
	// are acyclic, so labels are exactly the shortest distances.
	for vi := range t.vertices {
		if vi == 0 { // SRC
			continue
		}
		var supports []*formula.F
		for _, k := range t.byHead[vi] {
			u := t.fromV[k]
			supports = append(supports, formula.And(
				pres(k),
				formula.Not(unreach[u]),
				bv.Equal(dist[vi], bv.Add(dist[u], e.cost(t.slots[k]))),
			))
		}
		e.b.Assert(formula.Or(unreach[vi], formula.Or(supports...)))
	}

	// Constraint 17: the edges of P exist, are tight, and are strictly
	// preferred over every other incoming edge at each hop.
	chain, err := e.chainSlots(p)
	if err != nil {
		return err
	}
	for _, ck := range chain {
		si := t.slots[ck]
		u, v := t.fromV[ck], t.toV[ck]
		// The chain edge must be usable at the tc level (no ACL may drop
		// traffic on its own primary path); constraint 18 lifts this to
		// routing presence.
		e.b.Assert(e.tVar[tl][si])
		e.b.Assert(formula.Not(unreach[u]))
		chainSum := bv.Add(dist[u], e.cost(si))
		e.b.Assert(bv.Equal(dist[v], chainSum))
		for _, ok := range t.byHead[v] {
			if ok == ck {
				continue
			}
			w := t.fromV[ok]
			e.b.Assert(formula.Implies(
				formula.And(pres(ok), formula.Not(unreach[w])),
				bv.Less(chainSum, bv.Add(dist[w], e.cost(t.slots[ok]))),
			))
		}
	}
	return nil
}

// chainSlots maps a PC4 device path onto the unique slot sequence
// SRC → dev1:O → dev2:I → dev2:O → ... → DST, returned as positions
// into the traffic class's slot list. It requires a single routing
// process per device pair (the common case; ambiguous paths are
// rejected).
func (e *encoder) chainSlots(p policy.Policy) ([]int, error) {
	tc := p.TC
	t := e.tb.tc[tc.Key()]
	var chain []int

	find := func(pred func(*arc.Slot) bool, what string) (int, error) {
		found := -1
		for k, si := range t.slots {
			if pred(e.tb.slots[si]) {
				if found >= 0 {
					return -1, fmt.Errorf("core: PC4 path for %s is ambiguous at %s (multiple processes)", tc, what)
				}
				found = k
			}
		}
		if found < 0 {
			return -1, fmt.Errorf("core: PC4 path for %s has no candidate slot at %s", tc, what)
		}
		return found, nil
	}

	if len(p.Path) == 0 {
		return nil, fmt.Errorf("core: PC4 policy for %s has empty path", tc)
	}
	first := p.Path[0]
	k, err := find(func(s *arc.Slot) bool {
		return s.Kind == arc.SlotSource && s.ToProc.Device.Name == first
	}, "SRC->"+first)
	if err != nil {
		return nil, err
	}
	chain = append(chain, k)

	for i := 0; i+1 < len(p.Path); i++ {
		from, to := p.Path[i], p.Path[i+1]
		inter, err := find(func(s *arc.Slot) bool {
			return s.Kind == arc.SlotInterDevice &&
				s.FromProc.Device.Name == from && s.ToProc.Device.Name == to
		}, from+"->"+to)
		if err != nil {
			return nil, err
		}
		chain = append(chain, inter)
		// Intra-device hop on the next device (unless it is the last and
		// traffic exits to DST from its I vertex... the DST edge leaves
		// the I vertex, so no intra hop is needed on the final device).
		if i+2 < len(p.Path) {
			self, err := find(func(s *arc.Slot) bool {
				return s.Kind == arc.SlotIntraSelf && s.FromProc.Device.Name == to
			}, "intra "+to)
			if err != nil {
				return nil, err
			}
			chain = append(chain, self)
		}
	}
	last := p.Path[len(p.Path)-1]
	dstSlot, err := find(func(s *arc.Slot) bool {
		return s.Kind == arc.SlotDest && s.FromProc.Device.Name == last
	}, last+"->DST")
	if err != nil {
		return nil, err
	}
	chain = append(chain, dstSlot)
	return chain, nil
}

// softConstraints emits Table 2 plus the cost and waypoint softs.
func (e *encoder) softConstraints() {
	// tcETG-level softs.
	for tl, tc := range e.tcs {
		tcState := e.st.TC[tc.Key()]
		dstState := e.st.Dst[tc.Dst.Name]
		dl := e.dstIdx[tc.Dst.Name]
		for _, si := range e.tb.tc[tc.Key()].slots {
			key := e.tb.key[si]
			origTC := tcState[key]
			dev := e.tb.aclDev[si]
			if e.tb.slots[si].Kind == arc.SlotSource {
				// Source edges have no dETG parent; keeping them as-is
				// avoids an ACL change on the host-facing interface.
				e.soft(dev, formula.Iff(e.tVar[tl][si], constBool(origTC)))
				continue
			}
			origD := dstState[key]
			if origD && !origTC {
				// Deviation (ACL) continues to pay for itself only if the
				// edge stays absent (Table 2 rows 2 and 6).
				e.soft(dev, formula.Not(e.tVar[tl][si]))
			} else {
				e.soft(dev, formula.Iff(e.tVar[tl][si], e.dVar[dl][si]))
			}
		}
	}
	// dETG-level softs: one per construct, so violated softs count
	// configuration lines exactly (the construct realization of Table 2's
	// per-edge accounting).
	for dl, dst := range e.dsts {
		seenRF := make([]bool, len(e.tb.procs))
		for _, si := range e.tb.dst[dst.Name].slots {
			s := e.tb.slots[si]
			switch s.Kind {
			case arc.SlotIntraSelf:
				// One route-filter soft per (process, destination).
				pi := e.tb.fromProc[si]
				if !seenRF[pi] {
					seenRF[pi] = true
					orig := s.FromProc.BlocksDestination(dst.Prefix)
					e.soft(e.tb.procDev[pi], formula.Iff(e.rfVar[dl][pi], constBool(orig)))
				}
			case arc.SlotInterDevice:
				orig := s.StaticBacked(dst) != nil
				e.soft(e.tb.procDev[e.tb.fromProc[si]], formula.Iff(e.stVar[dl][si], constBool(orig)))
			}
		}
	}
	// aETG-level softs (all-tcs mode only; per-dst freezes the aETG):
	// one per adjacency (canonical direction) and one per redistribution
	// edge.
	if !e.freezeAll {
		for si, s := range e.tb.slots {
			switch s.Kind {
			case arc.SlotInterDevice:
				if e.tb.canon[si] != si {
					continue // the reverse direction carries the soft
				}
			case arc.SlotIntraRedist:
			default:
				continue
			}
			dev := e.tb.procDev[e.tb.fromProc[si]]
			if s.Kind == arc.SlotIntraRedist {
				dev = e.tb.procDev[e.tb.toProc[si]]
			}
			if e.st.All[e.tb.key[si]] {
				e.soft(dev, e.eA(si))
			} else {
				e.soft(dev, formula.Not(e.eA(si)))
			}
		}
	}
	// Cost softs: keep each interface cost unchanged (one line per
	// change). CostKey is "<device>/<interface>".
	for _, ck := range e.costOrder {
		vec := e.costVecs[ck]
		orig := e.st.Cost[ck]
		max := int64(1)<<uint(e.opts.CostBits) - 1
		if orig > max {
			orig = max
		}
		dev := ck
		if i := strings.IndexByte(ck, '/'); i >= 0 {
			dev = ck[:i]
		}
		e.soft(dev, bv.Equal(vec, bv.Const(uint64(orig), e.opts.CostBits)))
	}
	// Waypoint softs: adding a middlebox is a change (wedge variables are
	// only created for links without one). Middleboxes are not device
	// configuration; attribute them to a pseudo-device per link.
	// Their weight is configurable — placing a firewall typically costs
	// more than editing a configuration line.
	for _, name := range e.wedgeOrder {
		e.softWeighted("link:"+name, formula.Not(e.wedgeVars[name]), e.opts.WaypointWeight)
	}
	e.finalizeSofts()
}

// solve runs MaxSAT and returns the violated-soft count.
func (e *encoder) solve(ctx context.Context) (int, sat.Status) {
	res := maxsat.SolveWeightedCtx(ctx, e.s, e.softs, e.weights, e.opts.Algorithm)
	return res.Cost, res.Status
}

// extract reads the model into the merged repaired state, writing only
// the levels this problem solved. The orchestrator applies the
// follow-the-parent rule for unsolved levels afterwards.
func (e *encoder) extract(out *harc.State) {
	if !e.freezeAll {
		for si, s := range e.tb.slots {
			switch s.Kind {
			case arc.SlotInterDevice, arc.SlotIntraRedist:
			default:
				continue // self edges are constant; attach slots have no aETG level
			}
			if f := e.aVar[e.tb.canon[si]]; f != nil && e.b.AllocatedVar(f) {
				out.All[e.tb.key[si]] = e.b.Value(f)
			}
		}
	}
	for dl, dst := range e.dsts {
		dm := out.Dst[dst.Name]
		for _, si := range e.tb.dst[dst.Name].slots {
			key := e.tb.key[si]
			if f := e.dVar[dl][si]; e.b.AllocatedVar(f) {
				dm[key] = e.b.Value(f)
			}
			switch e.tb.slots[si].Kind {
			case arc.SlotIntraSelf:
				pi := e.tb.fromProc[si]
				if f := e.rfVar[dl][pi]; e.b.AllocatedVar(f) {
					out.RouteFilter[harc.RFKey(dst.Name, e.tb.procName[pi])] = e.b.Value(f)
				}
			case arc.SlotInterDevice:
				if f := e.stVar[dl][si]; e.b.AllocatedVar(f) {
					out.Static[harc.StaticKey(dst.Name, key)] = e.b.Value(f)
				}
			}
		}
	}
	for tl, tc := range e.tcs {
		m := out.TC[tc.Key()]
		for _, si := range e.tb.tc[tc.Key()].slots {
			if f := e.tVar[tl][si]; e.b.AllocatedVar(f) {
				m[e.tb.key[si]] = e.b.Value(f)
			}
		}
	}
	for _, ck := range e.costOrder {
		out.Cost[ck] = int64(bv.Value(e.b, e.costVecs[ck]))
	}
	for _, name := range e.wedgeOrder {
		if e.b.Value(e.wedgeVars[name]) {
			out.Waypoint[name] = true
		}
	}
}
