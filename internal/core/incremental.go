package core

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"io"
	"strconv"
	"sync"

	"repro/internal/harc"
	"repro/internal/smt/sat"
)

// SolveCache memoizes per-sub-problem solves across Repair calls on the
// same (or an incrementally updated) network. Each entry is keyed by a
// fingerprint of the sub-problem's complete encoding closure — the
// options, policies, tables rows, and every original-state value the
// encoder bakes into constraints, soft weights, or phase seeds — so a
// hit replays a result byte-identical to what a fresh solve would
// produce: the solver is deterministic, and two sub-problems with equal
// fingerprints build equal formulas.
//
// Entries retain the live encoder (interned formula.Pool plus the
// sat.Solver with its learned clauses and saved phases), which makes the
// session's memory footprint observable (Stats) and reclaimable
// (Release), and supplies the model that WarmStart seeds re-solves from.
//
// A SolveCache is safe for concurrent use by parallel per-destination
// workers and by concurrent Repair calls sharing one session.
type SolveCache struct {
	mu      sync.Mutex
	epoch   string
	entries map[string]*solveEntry
	// lastModel maps a sub-problem label to the most recently stored
	// model's phase vector, the WarmStart seed for re-solves of the same
	// destination after its fingerprint was invalidated.
	lastModel map[string][]bool
	hits      uint64
	misses    uint64
	stores    uint64
	// orig caches the pre-repair HARC state of this cache's epoch, so
	// back-to-back Repair calls on the same session skip the O(network)
	// StateOf recomputation. baseOrig/baseChanged, set by ForkDelta, let
	// the first call of a derived epoch compute its state as a delta from
	// the parent session's instead of from scratch.
	orig        *harc.State
	baseOrig    *harc.State
	baseChanged map[string]bool
}

// solveEntry is one memoized terminal sub-problem outcome. Entries are
// immutable after store; replay only copies out of them.
type solveEntry struct {
	stat ProblemStat // Duration zeroed; Reused set on replay
	// extracted holds the model extraction of an uncompressed Sat solve,
	// captured once into a scratch state at store time (problem-local
	// keys only). nil for Unsat and compressed entries.
	extracted *harc.State
	// realized/realizedChanges hold a compressed solve's concretized
	// repair state for mergeRealized.
	realized        *harc.State
	realizedChanges int
	// enc is the retained live encoder (pool + solver) of an uncompressed
	// solve; nil for compressed entries, whose quotient encoder is
	// discarded inside tryCompressed.
	enc   *encoder
	model []bool
	bytes int64
}

// NewSolveCache returns an empty cache. epoch must identify the exact
// config set of the session (cprd uses the content-addressed session
// key): it is folded into the fingerprint of compression-eligible
// sub-problems, whose quotient construction reads the whole network
// rather than just the sub-problem's closure. An empty epoch disables
// caching for those sub-problems only.
func NewSolveCache(epoch string) *SolveCache {
	return &SolveCache{
		epoch:     epoch,
		entries:   make(map[string]*solveEntry),
		lastModel: make(map[string][]bool),
	}
}

// Epoch returns the config-set identity this cache was built or forked
// for.
func (c *SolveCache) Epoch() string { return c.epoch }

// Fork snapshots the cache for a derived session under a new epoch.
// Entries and models are shared by reference (they are immutable);
// counters start fresh. Entries whose fingerprint embedded the old
// epoch simply never match again and age out when the forked session is
// released.
func (c *SolveCache) Fork(epoch string) *SolveCache {
	return c.ForkDelta(epoch, nil)
}

// ForkDelta is Fork for a derived session whose configs differ from the
// parent's only on the named devices: the forked cache additionally
// inherits the parent's cached pre-repair state as a delta base, so the
// derived epoch's first OrigState recomputes only the changed devices'
// slots (harc.StateOfDelta) instead of the whole network. A nil or
// empty changed set (or a parent with no cached state yet) degrades to
// a plain Fork. Callers must include every device whose parsed config
// differs — and must not use the delta path at all when a subnet
// changed its prefix, since remote ACL matching makes slot presence
// depend on prefixes network-wide (session.Delta enforces this).
func (c *SolveCache) ForkDelta(epoch string, changed map[string]bool) *SolveCache {
	nc := NewSolveCache(epoch)
	if c == nil {
		return nc
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range c.entries {
		nc.entries[k] = v
	}
	for k, v := range c.lastModel {
		nc.lastModel[k] = v
	}
	if len(changed) > 0 {
		base := c.orig
		if base == nil {
			base = c.baseOrig // grandparent base still valid for this parent
		}
		if base != nil {
			if c.orig == nil && c.baseOrig != nil {
				// Parent never materialized its own state; compose the two
				// change sets so the grandchild recomputes both deltas.
				merged := make(map[string]bool, len(changed)+len(c.baseChanged))
				for d := range c.baseChanged {
					merged[d] = true
				}
				for d := range changed {
					merged[d] = true
				}
				changed = merged
			}
			nc.baseOrig = base
			nc.baseChanged = changed
		}
	}
	return nc
}

// OrigState returns the pre-repair state of the cache's epoch, computing
// it on first use — as a delta from the parent session's state when
// ForkDelta provided one, from scratch otherwise — and memoizing it for
// subsequent Repair calls. A nil cache or an empty epoch (no pinned
// config-set identity) returns nil, directing the caller to compute a
// fresh state itself. The returned state is shared: callers must treat
// it as read-only.
func (c *SolveCache) OrigState(h *harc.HARC) *harc.State {
	if c == nil || c.epoch == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.orig != nil {
		return c.orig
	}
	if c.baseOrig != nil {
		c.orig = harc.StateOfDelta(h, c.baseOrig, c.baseChanged)
	}
	if c.orig == nil {
		c.orig = harc.StateOf(h)
	}
	return c.orig
}

// SolveCacheStats is a point-in-time cache summary.
type SolveCacheStats struct {
	Entries int
	// Solvers counts entries retaining a live encoder/solver pair.
	Solvers int
	Hits    uint64
	Misses  uint64
	Stores  uint64
	// RetainedBytes estimates the memory pinned by retained encoders,
	// solvers, and staged replay states.
	RetainedBytes int64
}

// Stats returns current counters and retained-memory accounting.
func (c *SolveCache) Stats() SolveCacheStats {
	if c == nil {
		return SolveCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := SolveCacheStats{
		Entries: len(c.entries),
		Hits:    c.hits,
		Misses:  c.misses,
		Stores:  c.stores,
	}
	for _, e := range c.entries {
		st.RetainedBytes += e.bytes
		if e.enc != nil {
			st.Solvers++
		}
	}
	return st
}

// Release drops every entry, unpinning the retained solvers and pools.
// The session cache calls this on LRU eviction so long-lived solvers
// cannot leak past their session's lifetime.
func (c *SolveCache) Release() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*solveEntry)
	c.lastModel = make(map[string][]bool)
}

func (c *SolveCache) lookup(fp string) *solveEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[fp]
	if e != nil {
		c.hits++
	} else {
		c.misses++
	}
	return e
}

// store inserts an entry; the first store for a fingerprint wins, so
// concurrent Repair calls racing on the same sub-problem keep one
// consistent entry (both computed byte-identical results anyway).
func (c *SolveCache) store(fp string, e *solveEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[fp]; !ok {
		c.entries[fp] = e
		c.stores++
	}
	if e.model != nil {
		c.lastModel[e.stat.Label] = e.model
	}
}

// priorModel returns the last stored model for a sub-problem label, the
// WarmStart phase seed.
func (c *SolveCache) priorModel(label string) []bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastModel[label]
}

// replay copies the memoized outcome onto the problem. The caller's
// deferred Duration measurement still applies, so replayed stats carry
// the (sub-millisecond) lookup time instead of the original solve time.
func (e *solveEntry) replay(pr *problem) {
	pr.stat = e.stat
	pr.stat.Reused = true
	pr.cached = e
	pr.realized = e.realized
	pr.realizedChanges = e.realizedChanges
}

// fpWriter streams length-framed tokens into a hash, avoiding ambiguity
// between adjacent fields without per-token allocations.
type fpWriter struct {
	h   hash.Hash
	buf []byte
}

func (w *fpWriter) str(s string) {
	w.buf = strconv.AppendInt(w.buf[:0], int64(len(s)), 10)
	w.buf = append(w.buf, ':')
	w.h.Write(w.buf)
	io.WriteString(w.h, s)
}

func (w *fpWriter) i64(v int64) {
	w.buf = strconv.AppendInt(w.buf[:0], v, 10)
	w.buf = append(w.buf, ',')
	w.h.Write(w.buf)
}

func (w *fpWriter) boolean(v bool) {
	if v {
		w.h.Write([]byte{'T'})
	} else {
		w.h.Write([]byte{'F'})
	}
}

// fingerprintVersion tags the hash layout; bump it whenever the encoder
// reads a new input, so stale-layout fingerprints cannot collide.
const fingerprintVersion = "cprfp2"

// problemFingerprint hashes the complete input closure of one
// sub-problem's encode+solve: every table row, original-state value,
// and option the encoder reads. Two sub-problems with equal
// fingerprints produce byte-identical formulas, variable numberings,
// and therefore models — the soundness contract the solve cache rests
// on (see DESIGN.md).
//
// The second return is false when the sub-problem cannot be safely
// fingerprinted: it is compression-eligible (the quotient construction
// reads the whole network) and the cache has no config-set epoch to pin
// that global input.
func problemFingerprint(tb *tables, orig *harc.State, pr *problem, opts Options, epoch string) (string, bool) {
	w := &fpWriter{h: sha256.New()}
	w.str(fingerprintVersion)

	// Global inputs: the quotient path reads the entire network, so
	// compression-eligible problems pin the full config-set epoch.
	if compressEligible(tb.h, pr, opts) {
		if epoch == "" {
			return "", false
		}
		w.str(epoch)
	}

	// Options the encoder or solver reads.
	w.i64(int64(opts.Granularity))
	w.i64(int64(opts.Algorithm))
	w.i64(int64(opts.Objective))
	w.i64(int64(opts.CostBits))
	w.i64(int64(opts.DistBits))
	w.boolean(opts.AllowWaypointChanges)
	w.i64(int64(opts.WaypointWeight))
	w.i64(opts.ConflictBudget)
	w.i64(int64(opts.Compress))
	w.i64(int64(opts.CompressRedundancy))
	w.boolean(opts.CompressConcreteVerify)
	w.boolean(pr.freeze)
	w.str(pr.label)

	// Policies fully identify themselves (kind, endpoints, K, path).
	w.i64(int64(len(pr.policies)))
	for _, p := range pr.policies {
		w.str(p.String())
	}

	// The process table: rfVar rows allocate one variable per process in
	// table order, so the full list pins variable numbering; procDev pins
	// soft-constraint device attribution.
	w.i64(int64(len(tb.procs)))
	for i := range tb.procs {
		w.str(tb.procName[i])
		w.str(tb.procDev[i])
	}

	// Per-traffic-class closure: applicability row (with vertex indices,
	// which pin the ETG shape) and original tc-level presence.
	w.i64(int64(len(pr.tcs)))
	for _, tc := range pr.tcs {
		w.str(tc.Key())
		w.str(tc.Src.Prefix.String())
		w.str(tc.Dst.Prefix.String())
		t := tb.tc[tc.Key()]
		tm := orig.TC[tc.Key()]
		w.i64(int64(len(t.slots)))
		for k, si := range t.slots {
			w.str(tb.key[si])
			w.i64(int64(t.fromV[k]))
			w.i64(int64(t.toV[k]))
			w.boolean(tm[tb.key[si]])
		}
	}

	// Per-destination closure: every applicable slot's identity, costs,
	// waypoints, constructs, and original presence at the dst and (for
	// frozen problems, where eA bakes constants) the all level.
	dsts := pr.dsts()
	w.i64(int64(len(dsts)))
	for _, dst := range dsts {
		w.str(dst.Name)
		w.str(dst.Prefix.String())
		dm := orig.Dst[dst.Name]
		row := tb.dst[dst.Name].slots
		w.i64(int64(len(row)))
		for _, si := range row {
			s := tb.slots[si]
			key := tb.key[si]
			w.str(key)
			w.i64(int64(s.Kind))
			w.i64(int64(tb.canon[si]))
			w.str(tb.aclDev[si])
			w.boolean(dm[key])
			w.boolean(orig.All[key])
			w.boolean(s.Waypoint()) // intra-device middlebox constant
			if ck := tb.costKey[si]; ck != "" {
				w.str(ck)
				w.i64(orig.Cost[ck])
			}
			if ln := tb.linkName[si]; ln != "" {
				w.str(ln)
				w.boolean(orig.Waypoint[ln])
			}
			if pi := tb.fromProc[si]; pi >= 0 {
				w.str(tb.procName[pi])
				w.boolean(orig.RouteFilter[harc.RFKey(dst.Name, tb.procName[pi])])
			}
			if pi := tb.toProc[si]; pi >= 0 {
				w.str(tb.procName[pi])
				w.boolean(orig.RouteFilter[harc.RFKey(dst.Name, tb.procName[pi])])
			}
			w.boolean(orig.Static[harc.StaticKey(dst.Name, key)])
		}
	}

	return hex.EncodeToString(w.h.Sum(nil)), true
}

// problemMemo decides whether a sub-problem participates in the solve
// cache and, if so, computes its fingerprint.
func problemMemo(tb *tables, orig *harc.State, pr *problem, opts Options) (string, bool) {
	if opts.Cache == nil || opts.DisableSolveCache {
		return "", false
	}
	return problemFingerprint(tb, orig, pr, opts, opts.Cache.Epoch())
}

// cacheableOutcome reports whether a terminal outcome may be memoized:
// only first-attempt Sat or deterministic Unsat results, with no
// compression fallback recorded (the "encode"/"solve" fallback stages
// depend on timing) and no cancellation in flight. Degraded and Unknown
// outcomes are timing- or fault-dependent and never cached — a later
// identical request retries them fresh.
func cacheableOutcome(pr *problem, ctxErr error) bool {
	if ctxErr != nil || pr.stat.Attempts != 1 || pr.stat.CompressFallback != "" {
		return false
	}
	switch pr.stat.Outcome {
	case OutcomeSolved:
		return true
	case OutcomeFailed:
		return pr.stat.Status == sat.Unsat
	}
	return false
}

// entryFor builds the memo entry for a problem that just reached a
// cacheable terminal outcome. For uncompressed Sat solves the model
// extraction is captured once into a scratch state holding only this
// problem's keys; replay then merges it with plain map copies.
func entryFor(pr *problem) *solveEntry {
	e := &solveEntry{stat: pr.stat}
	e.stat.Duration = 0
	e.stat.Reused = false
	if pr.stat.Compressed {
		e.realized = pr.realized
		e.realizedChanges = pr.realizedChanges
		e.bytes = approxStateBytes(pr.realized)
		return e
	}
	if pr.stat.Outcome == OutcomeSolved {
		e.extracted = captureExtract(pr.enc)
		e.model = pr.enc.s.ModelPhases()
		e.bytes += approxStateBytes(e.extracted) + int64(len(e.model))
	}
	e.enc = pr.enc
	if pr.enc != nil {
		e.bytes += pr.enc.approxBytes()
	}
	return e
}

// captureExtract runs the encoder's model extraction once into a scratch
// state pre-seeded with this problem's destination and traffic-class
// submaps.
func captureExtract(enc *encoder) *harc.State {
	sc := harc.NewState()
	for _, dst := range enc.dsts {
		sc.Dst[dst.Name] = make(map[string]bool)
	}
	for _, tc := range enc.tcs {
		sc.TC[tc.Key()] = make(map[string]bool)
	}
	enc.extract(sc)
	return sc
}

// applyExtracted merges a captured extraction into the shared repaired
// state: the exact writes extract would perform, replayed as map copies.
// Every entry is copied (including explicit false), matching extract's
// assignment semantics; Waypoint only ever records true.
func applyExtracted(out, sc *harc.State) {
	for k, v := range sc.All {
		out.All[k] = v
	}
	for name, m := range sc.Dst {
		dm := out.Dst[name]
		for k, v := range m {
			dm[k] = v
		}
	}
	for key, m := range sc.TC {
		tm := out.TC[key]
		for k, v := range m {
			tm[k] = v
		}
	}
	for k, v := range sc.RouteFilter {
		out.RouteFilter[k] = v
	}
	for k, v := range sc.Static {
		out.Static[k] = v
	}
	for k, v := range sc.Cost {
		out.Cost[k] = v
	}
	for k, v := range sc.Waypoint {
		if v {
			out.Waypoint[k] = true
		}
	}
}

// approxStateBytes estimates a state's heap footprint for the retained-
// memory gauge.
func approxStateBytes(st *harc.State) int64 {
	if st == nil {
		return 0
	}
	var n int64
	perEntry := func(m map[string]bool) int64 {
		var b int64
		for k := range m {
			b += int64(len(k)) + 24
		}
		return b
	}
	n += perEntry(st.All) + perEntry(st.Waypoint) + perEntry(st.RouteFilter) + perEntry(st.Static)
	for k, m := range st.Dst {
		n += int64(len(k)) + perEntry(m)
	}
	for k, m := range st.TC {
		n += int64(len(k)) + perEntry(m)
	}
	for k := range st.Cost {
		n += int64(len(k)) + 24
	}
	return n
}

// approxBytes estimates the heap retained by a live encoder: the SAT
// solver's arenas, the interned formula pool, and the dense variable
// tables.
func (e *encoder) approxBytes() int64 {
	if e == nil {
		return 0
	}
	n := e.s.ApproxBytes() + e.pool.ApproxBytes()
	for _, r := range e.tVar {
		n += int64(len(r)) * 8
	}
	for _, r := range e.dVar {
		n += int64(len(r)) * 8
	}
	for _, r := range e.stVar {
		n += int64(len(r)) * 8
	}
	for _, r := range e.rfVar {
		n += int64(len(r)) * 8
	}
	n += int64(len(e.aVar))*8 + int64(len(e.softs))*4 + int64(len(e.weights))*8
	return n
}
