package core

import (
	"net/netip"
	"testing"

	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/translate"
)

// figure10 builds the example network of Figure 10: sources S1 (at W)
// and S2 (at X), both routing through Y to Z, where destination D
// attaches. "S1 -> D is always blocked" holds (an ACL on Y's interface
// from W); "S2 -> D is always blocked" is violated.
func figure10() *topology.Network {
	n := topology.NewNetwork()
	w := n.AddDevice("W")
	x := n.AddDevice("X")
	y := n.AddDevice("Y")
	z := n.AddDevice("Z")

	mk := func(d *topology.Device, name, addr string) *topology.Interface {
		i := d.AddInterface(name)
		i.Prefix = netip.MustParsePrefix(addr)
		return i
	}
	wy := mk(w, "toY", "10.0.1.1/24")
	yw := mk(y, "toW", "10.0.1.2/24")
	xy := mk(x, "toY", "10.0.2.1/24")
	yx := mk(y, "toX", "10.0.2.2/24")
	yz := mk(y, "toZ", "10.0.3.1/24")
	zy := mk(z, "toY", "10.0.3.2/24")
	n.AddLink(wy, yw)
	n.AddLink(xy, yx)
	n.AddLink(yz, zy)

	s1 := n.AddSubnet("S1", netip.MustParsePrefix("20.0.1.0/24"))
	hs1 := mk(w, "h0", "20.0.1.1/24")
	hs1.Subnet = s1
	s2 := n.AddSubnet("S2", netip.MustParsePrefix("20.0.2.0/24"))
	hs2 := mk(x, "h0", "20.0.2.1/24")
	hs2.Subnet = s2
	d := n.AddSubnet("D", netip.MustParsePrefix("20.0.3.0/24"))
	hd := mk(z, "h0", "20.0.3.1/24")
	hd.Subnet = d

	for _, dev := range []*topology.Device{w, x, y, z} {
		p := dev.AddProcess(topology.OSPF, 1)
		p.Passive = map[string]bool{}
		p.RedistributeConnected = true
		for _, intf := range dev.Interfaces() {
			if intf.Subnet == nil {
				p.Interfaces = append(p.Interfaces, intf)
			}
		}
	}
	// ACL on Y's interface from W blocking S1 -> D.
	acl := y.AddACL("BLOCK-S1")
	acl.Entries = []topology.ACLEntry{
		{Permit: false, Src: s1.Prefix, Dst: d.Prefix},
		{Permit: true},
	}
	yw.InACL = "BLOCK-S1"
	return n
}

// TestFigure10MinimalImpact reproduces §8.3's example: an operator might
// disable the Y-Z adjacency (impacting both classes toward D), whereas
// CPR's repair blocks only S2 -> D — the same number of lines but half
// the traffic classes impacted.
func TestFigure10MinimalImpact(t *testing.T) {
	n := figure10()
	h := harc.Build(n)
	s1d := topology.TrafficClass{Src: n.Subnet("S1"), Dst: n.Subnet("D")}
	s2d := topology.TrafficClass{Src: n.Subnet("S2"), Dst: n.Subnet("D")}
	ps := []policy.Policy{
		{Kind: policy.AlwaysBlocked, TC: s1d},
		{Kind: policy.AlwaysBlocked, TC: s2d},
	}
	if len(policy.Violations(h, ps)) != 1 {
		t.Fatalf("exactly S2->D should be violated, got %v", policy.Violations(h, ps))
	}
	res, err := Repair(h, ps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res.Stats)
	}
	if v := VerifyRepair(h, res.State, ps); len(v) != 0 {
		t.Fatalf("still violates: %v", v)
	}
	if res.Changes != 1 {
		t.Errorf("changes = %d, want 1 (single ACL)", res.Changes)
	}
	orig := harc.StateOf(h)
	impacted := translate.ImpactedTCs(h, orig, res.State)
	if len(impacted) != 1 || impacted[0].Key() != s2d.Key() {
		t.Errorf("impacted = %v, want just S2->D (the operator's adjacency repair would impact both)", impacted)
	}
	// The operator's alternative — disabling Y-Z — is also one line but
	// impacts every class through the link; demonstrate by applying it.
	n2 := figure10()
	p := n2.Device("Y").Process(topology.OSPF, 1)
	p.Passive["toZ"] = true
	h2 := harc.Build(n2)
	if v := policy.Violations(h2, []policy.Policy{
		{Kind: policy.AlwaysBlocked, TC: topology.TrafficClass{Src: n2.Subnet("S1"), Dst: n2.Subnet("D")}},
		{Kind: policy.AlwaysBlocked, TC: topology.TrafficClass{Src: n2.Subnet("S2"), Dst: n2.Subnet("D")}},
	}); len(v) != 0 {
		t.Fatalf("operator repair should also satisfy both policies: %v", v)
	}
	opImpacted := translate.ImpactedTCs(h, orig, harc.StateOf(h2))
	if len(opImpacted) <= len(impacted) {
		t.Errorf("operator impact %d should exceed CPR impact %d (Figure 10)", len(opImpacted), len(impacted))
	}
}
