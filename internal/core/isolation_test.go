package core

import (
	"testing"

	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// isolationPolicy builds "S->T isolated from R->U" on Figure 2a.
func isolationPolicy(n *topology.Network) policy.Policy {
	return policy.Policy{
		Kind: policy.Isolated,
		TC:   topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")},
		TC2:  topology.TrafficClass{Src: n.Subnet("R"), Dst: n.Subnet("U")},
	}
}

func TestIsolationViolatedInitially(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	p := isolationPolicy(n)
	if policy.Check(h, p) {
		t.Fatal("S->T and R->U share edges initially; isolation should be violated")
	}
}

func TestIsolationRepair(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	p := isolationPolicy(n)
	res, err := Repair(h, []policy.Policy{p}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("isolation repair unsolved: %+v", res.Stats)
	}
	if !policy.CheckState(h, res.State, p) {
		t.Fatal("repaired state still violates isolation")
	}
	if res.Changes == 0 {
		t.Error("isolation repair should require changes")
	}
	// Isolation couples destinations T and U: they must be solved in one
	// merged problem.
	if len(res.Stats) != 1 {
		t.Errorf("expected a single merged problem, got %d", len(res.Stats))
	}
}

func TestIsolationWithReachabilityConflict(t *testing.T) {
	// Both classes share the destination T and must stay reachable: every
	// path to T uses C's self edge, which both tcETGs would share, so no
	// repair can exist.
	n := topology.Figure2a()
	h := harc.Build(n)
	s, r, tt := n.Subnet("S"), n.Subnet("R"), n.Subnet("T")
	iso := policy.Policy{
		Kind: policy.Isolated,
		TC:   topology.TrafficClass{Src: s, Dst: tt},
		TC2:  topology.TrafficClass{Src: r, Dst: tt},
	}
	reach1 := policy.Policy{Kind: policy.KReachable, K: 1, TC: iso.TC}
	reach2 := policy.Policy{Kind: policy.KReachable, K: 1, TC: iso.TC2}
	res, err := Repair(h, []policy.Policy{iso, reach1, reach2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Error("same-destination isolation with reachability should be unsatisfiable")
	}
}

func TestIsolationAllTCsGranularity(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	p := isolationPolicy(n)
	opts := DefaultOptions()
	opts.Granularity = AllTCs
	res, err := Repair(h, []policy.Policy{p}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res.Stats)
	}
	if !policy.CheckState(h, res.State, p) {
		t.Fatal("repaired state violates isolation")
	}
}
