package core

import (
	"testing"

	"repro/internal/generate"
)

// TestCompressedRepairFatTree runs the headline compression scenario: a
// broken k=8 fat-tree (80 routers) repaired with symmetry compression
// forced on. The concretized patch must verify on the uncompressed
// HARC, at least one sub-problem must actually have been solved on a
// quotient, and the quotient must be materially smaller than the
// network.
func TestCompressedRepairFatTree(t *testing.T) {
	if testing.Short() {
		t.Skip("k=8 fat-tree repair is slow under -short")
	}
	inst, err := generate.FatTree(generate.FatTreeOptions{K: 8, PC1: 6, PC2: 2, PC3: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := generate.BreakFatTree(inst, 13, 5); err != nil {
		t.Fatal(err)
	}
	h := inst.Harc()
	opts := DefaultOptions()
	opts.Compress = CompressOn
	res, err := Repair(h, inst.Policies, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("repair not solved: degraded=%d failed=%d", res.Degraded, res.Failed)
	}
	if res.Compressed == 0 {
		t.Fatalf("no sub-problem was solved on a quotient (fallbacks=%d)", res.CompressFallbacks)
	}
	if v := VerifyRepair(h, res.State, inst.Policies); len(v) > 0 {
		t.Fatalf("%d policies violated after compressed repair: %v", len(v), v[0])
	}
	for _, st := range res.Stats {
		if st.Compressed && st.QuotientDevices >= h.Network.NumDevices() {
			t.Fatalf("problem %s: quotient (%d devices) not smaller than network (%d)",
				st.Label, st.QuotientDevices, h.Network.NumDevices())
		}
	}
	t.Logf("compressed=%d fallbacks=%d changes=%d", res.Compressed, res.CompressFallbacks, res.Changes)
}

// TestCompressedRepairVerifiesOnDC forces compression on the small
// data-center fixture (below the auto threshold) and checks the
// safety-net contract: whatever mix of quotient solves and fallbacks
// results, the final state satisfies the specification and the result
// is no worse than the uncompressed one in coverage.
func TestCompressedRepairVerifiesOnDC(t *testing.T) {
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "compress-dc", Routers: 12, Subnets: 10,
		BlockedFrac: 0.3, FullyBlockedDsts: 1, Violations: 4, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := inst.Harc()

	opts := DefaultOptions()
	opts.Compress = CompressOn
	res, err := Repair(h, inst.Policies, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Usable() {
		t.Fatal("compressed repair produced no usable result")
	}
	if v := VerifyRepair(h, res.State, res.Repaired); len(v) > 0 {
		t.Fatalf("repaired policies violated: %v", v[0])
	}

	off := DefaultOptions()
	off.Compress = CompressOff
	base, err := Repair(h, inst.Policies, off)
	if err != nil {
		t.Fatal(err)
	}
	if base.Solved && !res.Solved {
		t.Fatal("compression lost solvability relative to the uncompressed path")
	}
}

// TestCompressedLosslessCostExact pins the lossless contract: with the
// per-class redundancy raised above every class size, the quotient is
// the (relevant-subnet restriction of the) concrete network, so the
// compressed repair must match the uncompressed change count exactly.
func TestCompressedLosslessCostExact(t *testing.T) {
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "compress-lossless", Routers: 10, Subnets: 8,
		BlockedFrac: 0.3, Violations: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := inst.Harc()

	on := DefaultOptions()
	on.Compress = CompressOn
	on.CompressRedundancy = 1 << 20
	cres, err := Repair(h, inst.Policies, on)
	if err != nil {
		t.Fatal(err)
	}
	off := DefaultOptions()
	off.Compress = CompressOff
	bres, err := Repair(h, inst.Policies, off)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Solved != bres.Solved {
		t.Fatalf("solved mismatch: compressed=%t uncompressed=%t", cres.Solved, bres.Solved)
	}
	if cres.Changes != bres.Changes {
		t.Fatalf("lossless quotient changed the repair cost: compressed=%d uncompressed=%d",
			cres.Changes, bres.Changes)
	}
	if v := VerifyRepair(h, cres.State, cres.Repaired); len(v) > 0 {
		t.Fatalf("repaired policies violated: %v", v[0])
	}
}
