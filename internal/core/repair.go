package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arc"
	"repro/internal/greedy"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/smt/maxsat"
	"repro/internal/smt/sat"
	"repro/internal/topology"
)

// Granularity selects the MaxSMT decomposition of §5.3.
type Granularity int

// Decomposition granularities.
const (
	// AllTCs formulates a single MaxSMT problem over every traffic class
	// (maxsmt-all-tcs).
	AllTCs Granularity = iota
	// PerDst formulates one MaxSMT problem per destination with at least
	// one violated policy, solvable in parallel (maxsmt-per-dst). PC4
	// policies are merged into a single problem because link costs cannot
	// be customized per destination.
	PerDst
)

func (g Granularity) String() string {
	if g == PerDst {
		return "maxsmt-per-dst"
	}
	return "maxsmt-all-tcs"
}

// Objective selects the minimality dimension (§5.2).
type Objective int

// Minimality objectives.
const (
	// MinLines minimizes the number of configuration lines changed
	// (Table 2, the paper's primary objective).
	MinLines Objective = iota
	// MinDevices minimizes the number of devices whose configuration
	// changes (the alternative objective sketched in §5.2).
	MinDevices
)

func (o Objective) String() string {
	if o == MinDevices {
		return "min-devices"
	}
	return "min-lines"
}

// IsolationMode selects how per-destination sub-problem failures are
// contained.
type IsolationMode int

// Isolation modes.
const (
	// IsolationOff is the legacy fail-fast fan-out: the first sub-problem
	// error aborts every sibling and Repair returns that error.
	IsolationOff IsolationMode = iota
	// IsolationOn gives each per-destination sub-problem its own failure
	// domain (PerDst granularity only): solver panics become typed
	// SolveErrors, each attempt runs under a watchdog deadline derived
	// from the request budget, transient Unknown verdicts retry with an
	// escalating conflict budget, and exhausted sub-problems degrade to
	// the greedy baseline (where the policy classes allow it) or are
	// marked failed — while every other destination still returns a
	// verified repair.
	IsolationOn
)

func (m IsolationMode) String() string {
	if m == IsolationOn {
		return "on"
	}
	return "off"
}

// Outcome classifies one sub-problem's final disposition.
type Outcome int

// Sub-problem outcomes.
const (
	// OutcomeSolved: the MaxSMT solve found an optimal repair.
	OutcomeSolved Outcome = iota
	// OutcomeDegraded: the MaxSMT solve was exhausted, but the greedy
	// baseline produced a repair for this sub-problem's policies that
	// verified after construct realization.
	OutcomeDegraded
	// OutcomeFailed: no usable repair for this sub-problem
	// (unsatisfiable, cancelled, or every attempt and fallback failed).
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeDegraded:
		return "degraded"
	case OutcomeFailed:
		return "failed"
	}
	return "solved"
}

// SolveError is a typed per-sub-problem failure under fault isolation:
// a recovered solver panic, an encoding error, or a transient
// exhaustion, tagged with the sub-problem and attempt it occurred on.
type SolveError struct {
	Label   string // sub-problem label (destination name, "pc4-merged", "all-tcs")
	Phase   string // "encode" or "solve"
	Attempt int    // 1-based attempt number
	Panic   any    // recovered panic value when the failure was a panic
	Err     error  // underlying error otherwise
}

func (e *SolveError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("core: problem %s attempt %d: panic during %s: %v", e.Label, e.Attempt, e.Phase, e.Panic)
	}
	return fmt.Sprintf("core: problem %s attempt %d: %s: %v", e.Label, e.Attempt, e.Phase, e.Err)
}

func (e *SolveError) Unwrap() error { return e.Err }

// Options configures the repair engine.
type Options struct {
	Granularity Granularity
	Algorithm   maxsat.Algorithm
	Objective   Objective
	// Parallelism bounds concurrent per-destination solves. Zero (the
	// default) means runtime.GOMAXPROCS(0) — one worker per available
	// core, matching cprd's -workers convention; negative values are
	// treated as 1 (sequential). Results are byte-identical at every
	// setting: sub-problems are scheduled largest-first for wall-clock,
	// but models are extracted and merged in deterministic problem order.
	Parallelism int
	// CostBits is the bit width of PC4 edge-cost variables (costs range
	// 1..2^CostBits-1).
	CostBits int
	// DistBits is the bit width of PC4 distance labels.
	DistBits int
	// AllowWaypointChanges lets repairs add middleboxes to links
	// (footnote 2); disable to require ¬wedge for all unwaypointed links.
	AllowWaypointChanges bool
	// WaypointWeight is the objective cost of placing one middlebox,
	// relative to a configuration line (default 1, the paper's implicit
	// accounting).
	WaypointWeight int
	// ConflictBudget bounds each SAT call (0 = unlimited); exceeding it
	// yields an Unknown problem status, CPR's analogue of the paper's
	// 8-hour limit. Under isolation, retries escalate the budget.
	ConflictBudget int64
	// Isolation contains per-destination failures instead of aborting the
	// whole batch; it applies to PerDst granularity only.
	Isolation IsolationMode
	// RetryAttempts bounds solve attempts per sub-problem under isolation
	// (0 = default 3; 1 = no retry).
	RetryAttempts int
	// DstTimeout overrides the derived per-attempt watchdog deadline
	// under isolation (0 = derive a fair share of the request deadline).
	DstTimeout time.Duration
	// DisableFallback turns off greedy degradation under isolation:
	// exhausted sub-problems are marked failed instead.
	DisableFallback bool
	// Compress selects Bonsai-style symmetry compression for eligible
	// per-destination sub-problems: repair a quotient of role-equivalent
	// routers, concretize the patch onto every class member, and accept
	// it only after it re-verifies on the uncompressed state (falling
	// back to the uncompressed solve otherwise).
	Compress CompressMode
	// CompressRedundancy overrides the representative members kept per
	// equivalence class (0 = derive from the problem: max(2, largest
	// PC3 K)). Values at or above the largest class size make the
	// quotient lossless.
	CompressRedundancy int
	// CompressConcreteVerify restores the pre-quotient-verify acceptance
	// check for compressed sub-problems: every policy re-verified on the
	// concretized state, instead of the quotient check plus deterministic
	// concrete spot-check (see verifyOnQuotient). It is the differential
	// oracle and A/B benchmark baseline for quotient-side verification.
	CompressConcreteVerify bool
	// Cache, when set, memoizes terminal sub-problem solves across Repair
	// calls keyed by the sub-problem's full encoding fingerprint, and
	// retains the live encoder/solver of each hit source. Hits replay
	// results byte-identical to a fresh solve (see SolveCache). Sessions
	// (cpr.Session, cprd) inject their per-session cache here.
	Cache *SolveCache
	// DisableSolveCache bypasses Cache for this call even when the
	// session carries one (the request-level solve_cache=off escape
	// hatch for A/B measurement).
	DisableSolveCache bool
	// WarmStart seeds each fresh solve's phase polarities from the last
	// model the cache stored for the same sub-problem label, on top of
	// the original-state phase seeding. Off by default: it can steer the
	// solver to a different equally-minimal repair than a cold session
	// would find, trading cross-session byte-identity for faster
	// re-solves of invalidated destinations. Results remain verified-
	// optimal either way.
	WarmStart bool
}

// defaultRetryAttempts is the per-sub-problem attempt bound under
// isolation when Options.RetryAttempts is zero.
const defaultRetryAttempts = 3

// Workers resolves Options.Parallelism to a worker count: zero means
// one worker per available core, negative means sequential. Callers
// running their own verification fan-out use it to match the repair's
// parallelism.
func (o Options) Workers() int { return o.workerCount() }

// workerCount resolves Options.Parallelism: zero means one worker per
// available core, negative means sequential.
func (o Options) workerCount() int {
	if o.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// budgetEscalation multiplies the conflict budget on each isolated
// retry, so a sub-problem that merely needed more search gets it before
// the fallback fires.
const budgetEscalation = 4

// DefaultOptions returns the configuration used throughout the paper's
// evaluation reproduction, with per-destination fault isolation on.
func DefaultOptions() Options {
	return Options{
		Granularity: PerDst,
		Algorithm:   maxsat.OLL,
		Parallelism: 0, // all available cores

		CostBits:             4,
		DistBits:             8,
		AllowWaypointChanges: true,
		WaypointWeight:       1,
		Isolation:            IsolationOn,
		RetryAttempts:        defaultRetryAttempts,
	}
}

// ProblemStat records one MaxSMT sub-problem's outcome.
type ProblemStat struct {
	Label      string // destination name, "pc4-merged", or "all-tcs"
	TCs        int
	Policies   int
	Vars       int
	Softs      int
	Violations int // violated softs = modeled configuration changes
	Status     sat.Status
	// Outcome is the sub-problem's disposition: solved, degraded (greedy
	// fallback), or failed.
	Outcome Outcome
	// Attempts is the number of solve attempts made (0 when the
	// sub-problem was cancelled before starting).
	Attempts int
	// Fallback names the degradation provenance ("greedy") when Outcome
	// is OutcomeDegraded.
	Fallback string
	// Err describes the terminal solver failure, when there was one. A
	// degraded sub-problem keeps the error that forced the fallback.
	Err string
	// Conflicts is the SAT solver's conflict count for this sub-problem
	// (summed across isolated attempts).
	Conflicts int64
	// Solver holds the full solver counter snapshot for this sub-problem
	// (summed across isolated attempts); Solver.Conflicts == Conflicts.
	Solver   sat.Stats
	Duration time.Duration
	// Compressed marks a sub-problem solved on a symmetry-compressed
	// quotient network whose concretized patch re-verified on the
	// uncompressed state. Vars/Softs then describe the quotient problem.
	Compressed bool
	// DeviceClasses and QuotientDevices describe the quotient when
	// compression was attempted: role-equivalence class count and
	// quotient device count; CompressRatio is concrete devices per
	// quotient device.
	DeviceClasses   int
	QuotientDevices int
	CompressRatio   float64
	// CompressFallback names the stage at which an attempted compression
	// was abandoned for the uncompressed path ("quotient", "remap",
	// "incompressible", "encode", "solve", "trivial", "concretize",
	// "qverify", "spot-check", "verify", or "panic"; empty when
	// compression succeeded or was not attempted).
	CompressFallback string
	// Per-stage wall-clock breakdown in nanoseconds, summed across
	// isolated attempts. EncodeNs and SolveNs cover every solve path;
	// HarcBuildNs (quotient HARC construction), ConcretizeNs (patch
	// fan-out) and ReverifyNs (the quotient-verify/spot-check ladder, or
	// the full concrete re-verification under CompressConcreteVerify) are
	// populated only when compression was attempted.
	HarcBuildNs  int64
	EncodeNs     int64
	SolveNs      int64
	ConcretizeNs int64
	ReverifyNs   int64
	// Reused marks a sub-problem replayed from the session solve cache
	// instead of solved fresh; all other counters (Vars, Conflicts,
	// Solver, ...) are the original solve's, which a fresh solve would
	// reproduce exactly. Duration is the replay's own wall-clock.
	Reused bool
}

// Result is the outcome of a Repair call.
type Result struct {
	// State is the repaired HARC state. Under fault isolation it reflects
	// every solved and degraded sub-problem even when some failed.
	State *harc.State
	// Changes is the total number of violated soft constraints across
	// sub-problems: the modeled count of configuration changes. Degraded
	// sub-problems contribute the greedy baseline's change count.
	Changes int
	// Solved reports that every sub-problem found an optimal repair.
	Solved bool
	// Degraded and Failed count sub-problems by outcome; Solved is false
	// whenever either is nonzero.
	Degraded int
	Failed   int
	// Repaired lists the policies covered by solved or degraded
	// sub-problems: the subset of the specification guaranteed to hold on
	// State. Callers verifying partial results check exactly these.
	Repaired []policy.Policy
	// Conflicts is the total SAT conflict count across sub-problems.
	Conflicts int64
	// Solver aggregates the solver counters (restarts, learned literals,
	// DB reductions, arena GCs, binary propagations, ...) across
	// sub-problems.
	Solver sat.Stats
	Stats  []ProblemStat
	// Compressed counts sub-problems solved via symmetry compression;
	// CompressFallbacks counts attempted compressions that fell back to
	// the uncompressed path.
	Compressed        int
	CompressFallbacks int
	// Reused counts sub-problems replayed from the session solve cache.
	Reused int
	// Duration is the wall-clock time of the Repair call; Sequential sums
	// the individual sub-problem durations (the paper's serial baseline).
	Duration   time.Duration
	Sequential time.Duration
	// Orig is the pre-repair state the repair was computed against,
	// exposed (read-only) so callers translating State into configuration
	// patches need not recompute it.
	Orig *harc.State
	// Touched is the set of traffic-class keys whose state the repair may
	// have altered: solved classes, every class of a solved destination,
	// and all classes when the shared aETG changed. Policies on classes
	// outside Touched were verified satisfied before the repair and their
	// state is bit-identical to Orig's (waypoint additions only ever
	// strengthen PC2), so VerifyRepairIncremental may skip them.
	Touched map[string]bool
}

// Usable reports that at least one sub-problem produced a verified
// repair (solved or degraded) — the partial-result analogue of Solved.
func (r *Result) Usable() bool { return len(r.Repaired) > 0 }

// problem is one MaxSMT sub-problem of the decomposition.
type problem struct {
	label    string
	tcs      []topology.TrafficClass
	policies []policy.Policy
	// violated is the subset of policies violated before the repair —
	// the reason the sub-problem exists. The compressed path's concrete
	// spot-check always re-verifies exactly these.
	violated []policy.Policy
	freeze   bool
	enc      *encoder
	// realized is a construct-realized repair state staged for the serial
	// merge instead of a model extraction: the greedy fallback for
	// degraded problems (realizeGreedy) or the concretized quotient
	// repair for compressed ones (concretizePatch).
	realized        *harc.State
	realizedChanges int
	// cached is set when the problem was replayed from the solve cache;
	// the serial merge applies its captured extraction instead of reading
	// a (non-existent) fresh model.
	cached *solveEntry
	stat   ProblemStat
}

// dsts returns the problem's unique destination subnets.
func (pr *problem) dsts() []*topology.Subnet {
	seen := map[string]bool{}
	var out []*topology.Subnet
	for _, tc := range pr.tcs {
		if !seen[tc.Dst.Name] {
			seen[tc.Dst.Name] = true
			out = append(out, tc.Dst)
		}
	}
	return out
}

func uniqueTCs(ps []policy.Policy) []topology.TrafficClass {
	seen := map[string]bool{}
	var out []topology.TrafficClass
	add := func(tc topology.TrafficClass) {
		if tc.Src != nil && tc.Dst != nil && !seen[tc.Key()] {
			seen[tc.Key()] = true
			out = append(out, tc)
		}
	}
	for _, p := range ps {
		add(p.TC)
		if p.Kind == policy.Isolated {
			add(p.TC2)
		}
	}
	return out
}

// Repair computes a minimal repair of the network's HARC so that every
// policy holds. It returns an error for malformed inputs; an
// unsatisfiable specification yields Solved == false with per-problem
// statuses.
func Repair(h *harc.HARC, policies []policy.Policy, opts Options) (*Result, error) {
	return RepairCtx(context.Background(), h, policies, opts)
}

// RepairCtx is Repair under a context. Cancelling ctx interrupts every
// in-flight SAT solve (the CDCL search loop polls an interruption flag).
// Without isolation RepairCtx returns ctx's error instead of a partial
// result; under isolation it returns the partial Result — completed
// destinations keep their solved statuses, pending ones are marked
// failed — alongside ctx's error.
func RepairCtx(ctx context.Context, h *harc.HARC, policies []policy.Policy, opts Options) (*Result, error) {
	start := time.Now()
	if opts.CostBits == 0 {
		opts.CostBits = 4
	}
	if opts.DistBits == 0 {
		opts.DistBits = 8
	}
	if opts.WaypointWeight == 0 {
		opts.WaypointWeight = 1
	}
	var orig *harc.State
	if !opts.DisableSolveCache {
		orig = opts.Cache.OrigState(h)
	}
	if orig == nil {
		orig = harc.StateOf(h)
	}
	out := orig.Clone()
	res := &Result{State: out, Solved: true, Orig: orig}

	problems, err := buildProblems(h, policies, opts)
	if err != nil {
		return nil, err
	}
	// The read-only tables are shared by every sub-problem encoder,
	// including across parallel workers.
	tb := newTables(h, problems)

	// Isolation applies to the per-destination decomposition, whose
	// sub-problems are naturally independent; the single all-tcs problem
	// has no siblings to protect.
	isolated := opts.Isolation == IsolationOn && opts.Granularity == PerDst
	if isolated {
		runIsolated(ctx, h, tb, orig, problems, opts)
	} else {
		if err := runFailFast(ctx, h, tb, orig, problems, opts); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Serial merge: extract each usable sub-problem's model (or realized
	// fallback state) into the shared repaired state.
	solvedDsts := map[string]bool{}
	solvedTCs := map[string]bool{}
	for _, pr := range problems {
		res.Sequential += pr.stat.Duration
		res.Conflicts += pr.stat.Conflicts
		res.Solver.Accumulate(pr.stat.Solver)
		if pr.stat.CompressFallback != "" {
			res.CompressFallbacks++
		}
		if pr.stat.Reused {
			res.Reused++
		}
		switch pr.stat.Outcome {
		case OutcomeSolved:
			res.Changes += pr.stat.Violations
			if pr.stat.Compressed {
				res.Compressed++
				mergeRealized(h, orig, out, pr)
			} else if pr.cached != nil {
				applyExtracted(out, pr.cached.extracted)
			} else {
				pr.enc.extract(out)
			}
		case OutcomeDegraded:
			res.Changes += pr.realizedChanges
			res.Degraded++
			res.Solved = false
			mergeRealized(h, orig, out, pr)
		case OutcomeFailed:
			res.Failed++
			res.Solved = false
			res.Stats = append(res.Stats, pr.stat)
			continue
		}
		res.Stats = append(res.Stats, pr.stat)
		for _, d := range pr.dsts() {
			solvedDsts[d.Name] = true
		}
		for _, tc := range pr.tcs {
			solvedTCs[tc.Key()] = true
		}
		res.Repaired = append(res.Repaired, pr.policies...)
	}
	sort.Slice(res.Stats, func(i, j int) bool { return res.Stats[i].Label < res.Stats[j].Label })

	// Policies outside every sub-problem were already satisfied (their
	// destination group had no violations) and per-destination repairs
	// leave their state untouched, so they remain covered by the result.
	if len(res.Repaired) > 0 || len(problems) == 0 {
		inProblem := map[string]bool{}
		for _, pr := range problems {
			for _, p := range pr.policies {
				inProblem[p.String()] = true
			}
		}
		for _, p := range policies {
			if !inProblem[p.String()] {
				res.Repaired = append(res.Repaired, p)
			}
		}
	}

	allChanged := applyFollowRules(h, orig, out, solvedDsts, solvedTCs)
	res.Touched = make(map[string]bool, len(solvedTCs))
	for _, tc := range h.TCs {
		if allChanged || solvedTCs[tc.Key()] || solvedDsts[tc.Dst.Name] {
			res.Touched[tc.Key()] = true
		}
	}
	res.Duration = time.Since(start)
	if isolated {
		if err := ctx.Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// buildProblems decomposes the specification per Options.Granularity.
func buildProblems(h *harc.HARC, policies []policy.Policy, opts Options) ([]*problem, error) {
	var problems []*problem
	switch opts.Granularity {
	case AllTCs:
		problems = append(problems, &problem{
			label:    "all-tcs",
			tcs:      uniqueTCs(policies),
			policies: policies,
			freeze:   false,
		})
	case PerDst:
		groups := policy.GroupByDst(policies)
		// Destinations coupled by an isolation policy must be solved
		// together; collect the set of coupled destination names.
		coupledDst := map[string]bool{}
		for _, p := range policies {
			if p.Kind == policy.Isolated && p.TC.Dst.Name != p.TC2.Dst.Name {
				coupledDst[p.TC.Dst.Name] = true
				coupledDst[p.TC2.Dst.Name] = true
			}
		}
		var pc4Group []policy.Policy
		for _, name := range policy.SortedGroupNames(groups) {
			g := groups[name]
			merge := coupledDst[name]
			for _, p := range g {
				if p.Kind == policy.PrimaryPath {
					merge = true
				}
			}
			if merge {
				// Link costs are shared across destinations (PC4), and
				// isolation couples classes across destinations, so such
				// groups are merged into one problem.
				pc4Group = append(pc4Group, g...)
				continue
			}
			viol := policy.Violations(h, g)
			if len(viol) == 0 {
				continue // no violated policy for this destination
			}
			problems = append(problems, &problem{
				label:    name,
				tcs:      uniqueTCs(g),
				policies: g,
				violated: viol,
				freeze:   true,
			})
		}
		if len(pc4Group) > 0 {
			if viol := policy.Violations(h, pc4Group); len(viol) > 0 {
				problems = append(problems, &problem{
					label:    "pc4-merged",
					tcs:      uniqueTCs(pc4Group),
					policies: pc4Group,
					violated: viol,
					freeze:   true,
				})
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown granularity %d", opts.Granularity)
	}
	for _, pr := range problems {
		pr.stat.Label = pr.label
		pr.stat.TCs = len(pr.tcs)
		pr.stat.Policies = len(pr.policies)
	}
	return problems, nil
}

// scheduleOrder returns the problems largest-first (stable on the
// original order for ties), so the parallel fan-out never strands the
// biggest sub-problem at the tail of the schedule. Scheduling order is
// invisible in results: RepairCtx merges models in original problem
// order and sorts Stats by label.
func scheduleOrder(problems []*problem) []*problem {
	out := make([]*problem, len(problems))
	copy(out, problems)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].sizeHint() > out[j].sizeHint()
	})
	return out
}

// sizeHint estimates a sub-problem's encoding size for scheduling.
// Traffic classes dominate the variable count; policies break ties.
func (pr *problem) sizeHint() int { return len(pr.tcs)*16 + len(pr.policies) }

// runFailFast is the legacy fan-out: build and solve each problem (in
// parallel for per-dst); the first error aborts the batch.
func runFailFast(ctx context.Context, h *harc.HARC, tb *tables, orig *harc.State, problems []*problem, opts Options) error {
	workers := opts.workerCount()
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
		mu       sync.Mutex
		firstErr error
	)
	for _, pr := range scheduleOrder(problems) {
		wg.Add(1)
		go func(pr *problem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return // cancelled while queued; RepairCtx reports ctx.Err()
			}
			t0 := time.Now()
			fp, memo := problemMemo(tb, orig, pr, opts)
			if memo {
				if ent := opts.Cache.lookup(fp); ent != nil {
					ent.replay(pr)
					pr.stat.Duration = time.Since(t0)
					return
				}
			}
			if tryCompressed(ctx, h, orig, pr, opts) {
				if memo && cacheableOutcome(pr, ctx.Err()) {
					opts.Cache.store(fp, entryFor(pr))
				}
				pr.stat.Duration = time.Since(t0)
				return
			}
			enc := newEncoder(tb, orig, pr.tcs, pr.policies, pr.freeze, opts)
			te := time.Now()
			if err := enc.encode(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			pr.stat.EncodeNs += time.Since(te).Nanoseconds()
			ts := time.Now()
			cost, status := enc.solve(ctx)
			pr.stat.SolveNs += time.Since(ts).Nanoseconds()
			pr.enc = enc
			pr.stat.Vars = enc.s.NumVars()
			pr.stat.Softs = len(enc.softs)
			pr.stat.Violations = cost
			pr.stat.Status = status
			pr.stat.Attempts = 1
			pr.stat.Conflicts = enc.s.Conflicts
			pr.stat.Solver = enc.s.Snapshot()
			pr.stat.Duration = time.Since(t0)
			if status != sat.Sat {
				pr.stat.Outcome = OutcomeFailed
				pr.stat.Err = "status " + status.String()
			}
			if memo && cacheableOutcome(pr, ctx.Err()) {
				opts.Cache.store(fp, entryFor(pr))
			}
		}(pr)
	}
	wg.Wait()
	return firstErr
}

// runIsolated is the fault-isolated fan-out: a fixed worker pool drains
// the problem queue largest-first (deterministic dispatch under
// Parallelism 1), and every problem resolves to solved, degraded, or
// failed — never to an aborted batch.
func runIsolated(ctx context.Context, h *harc.HARC, tb *tables, orig *harc.State, problems []*problem, opts Options) {
	workers := opts.workerCount()
	attempts := opts.RetryAttempts
	if attempts < 1 {
		attempts = defaultRetryAttempts
	}
	var pending atomic.Int64
	pending.Store(int64(len(problems)))
	queue := make(chan *problem, len(problems))
	for _, pr := range scheduleOrder(problems) {
		queue <- pr
	}
	close(queue)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pr := range queue {
				solveIsolated(ctx, h, tb, orig, pr, opts, attempts, workers, &pending)
				pending.Add(-1)
			}
		}()
	}
	wg.Wait()
}

// solveIsolated drives one sub-problem to a terminal outcome.
func solveIsolated(ctx context.Context, h *harc.HARC, tb *tables, orig *harc.State, pr *problem, opts Options, attempts, workers int, pending *atomic.Int64) {
	t0 := time.Now()
	defer func() { pr.stat.Duration = time.Since(t0) }()

	fp, memo := problemMemo(tb, orig, pr, opts)
	if memo {
		if ent := opts.Cache.lookup(fp); ent != nil {
			ent.replay(pr)
			return
		}
	}
	if tryCompressed(ctx, h, orig, pr, opts) {
		if memo && cacheableOutcome(pr, ctx.Err()) {
			opts.Cache.store(fp, entryFor(pr))
		}
		return
	}
	budget := opts.ConflictBudget
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			pr.stat.Outcome = OutcomeFailed
			pr.stat.Err = "cancelled: " + err.Error()
			return
		}
		pr.stat.Attempts = attempt
		wctx, cancel := watchdogCtx(ctx, opts, workers, pending)
		enc, cost, status, err := solveOnce(wctx, tb, orig, pr, budget, opts, attempt)
		cancel()
		if enc != nil {
			pr.enc = enc
			pr.stat.Vars = enc.s.NumVars()
			pr.stat.Softs = len(enc.softs)
			pr.stat.Conflicts += enc.s.Conflicts
			pr.stat.Solver.Accumulate(enc.s.Snapshot())
		}
		pr.stat.Status = status
		if err == nil {
			switch status {
			case sat.Sat:
				pr.stat.Outcome = OutcomeSolved
				pr.stat.Violations = cost
				if memo && cacheableOutcome(pr, ctx.Err()) {
					opts.Cache.store(fp, entryFor(pr))
				}
				return
			case sat.Unsat:
				// Deterministic: no retry, and no fallback either — the
				// greedy baseline cannot satisfy an unsatisfiable group.
				pr.stat.Outcome = OutcomeFailed
				pr.stat.Err = "unsatisfiable"
				if memo && cacheableOutcome(pr, ctx.Err()) {
					opts.Cache.store(fp, entryFor(pr))
				}
				return
			}
			// Unknown: watchdog expiry, a spurious interrupt, or budget
			// exhaustion — transient either way; retry with more budget.
			lastErr = &SolveError{Label: pr.label, Phase: "solve", Attempt: attempt,
				Err: fmt.Errorf("solver returned unknown (budget %d)", budget)}
		} else {
			lastErr = err
		}
		if ctx.Err() != nil {
			pr.stat.Outcome = OutcomeFailed
			pr.stat.Err = "cancelled: " + ctx.Err().Error()
			return
		}
		if budget > 0 {
			budget *= budgetEscalation
		}
	}
	degrade(h, orig, pr, opts, lastErr)
}

// solveOnce builds a fresh encoder and solver and runs one attempt.
// Panics anywhere in encoding or search are recovered into SolveErrors,
// so a pathological destination cannot kill the process or its sibling
// solves.
func solveOnce(ctx context.Context, tb *tables, orig *harc.State, pr *problem, budget int64, opts Options, attempt int) (enc *encoder, cost int, status sat.Status, err error) {
	phase := "encode"
	defer func() {
		if r := recover(); r != nil {
			err = &SolveError{Label: pr.label, Phase: phase, Attempt: attempt, Panic: r}
			status = sat.Unknown
		}
	}()
	o := opts
	o.ConflictBudget = budget
	enc = newEncoder(tb, orig, pr.tcs, pr.policies, pr.freeze, o)
	te := time.Now()
	if eerr := enc.encode(ctx); eerr != nil {
		pr.stat.EncodeNs += time.Since(te).Nanoseconds()
		return enc, 0, sat.Unknown, &SolveError{Label: pr.label, Phase: "encode", Attempt: attempt, Err: eerr}
	}
	pr.stat.EncodeNs += time.Since(te).Nanoseconds()
	// Opt-in warm start: overlay the previous repair's model for this
	// label on top of the original-state phase seeding (see
	// Options.WarmStart for the byte-identity caveat).
	if opts.WarmStart && opts.Cache != nil && !opts.DisableSolveCache {
		if m := opts.Cache.priorModel(pr.label); m != nil {
			enc.s.SeedPhases(m)
		}
	}
	phase = "solve"
	ts := time.Now()
	cost, status = enc.solve(ctx)
	pr.stat.SolveNs += time.Since(ts).Nanoseconds()
	return enc, cost, status, nil
}

// watchdogCtx derives one attempt's deadline: an explicit DstTimeout if
// configured, otherwise a fair share of the request's remaining budget
// (remaining time divided by the number of solve waves left). Without
// any deadline the parent context is used as-is, so the common
// no-deadline path allocates nothing.
func watchdogCtx(ctx context.Context, opts Options, workers int, pending *atomic.Int64) (context.Context, context.CancelFunc) {
	if opts.DstTimeout > 0 {
		return context.WithTimeout(ctx, opts.DstTimeout)
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return ctx, func() {}
	}
	p := pending.Load()
	if p < 1 {
		p = 1
	}
	waves := (p + int64(workers) - 1) / int64(workers)
	return context.WithTimeout(ctx, remaining/time.Duration(waves))
}

// degrade resolves an exhausted sub-problem: greedy fallback when the
// policy classes support it and the realized repair verifies, failed
// otherwise.
func degrade(h *harc.HARC, orig *harc.State, pr *problem, opts Options, lastErr error) {
	pr.stat.Outcome = OutcomeFailed
	if lastErr != nil {
		pr.stat.Err = lastErr.Error()
	}
	if opts.DisableFallback || !greedyEligible(pr.policies) {
		return
	}
	gres, err := greedy.Repair(h, pr.policies)
	if err != nil || !gres.Clean {
		return
	}
	realized, changes, ok := realizeGreedy(h, orig, pr, gres)
	if !ok {
		return
	}
	pr.realized = realized
	pr.realizedChanges = changes
	pr.stat.Outcome = OutcomeDegraded
	pr.stat.Fallback = "greedy"
}

// greedyEligible reports whether every policy in the group belongs to a
// class the greedy baseline can repair (PC1-PC3; PC4 and isolation are
// out of its scope).
func greedyEligible(ps []policy.Policy) bool {
	for _, p := range ps {
		switch p.Kind {
		case policy.AlwaysBlocked, policy.AlwaysWaypoint, policy.KReachable:
		default:
			return false
		}
	}
	return true
}

// realizeGreedy translates a clean greedy repair into per-destination
// constructs (static routes for added inter-device dETG edges, route-
// filter removals for intra and dest edges) and recomputes the presence
// those constructs imply on a private trial state. Construct edits can
// open edges the greedy state never asked for — clearing one route
// filter unblocks every edge it gated — so the fallback is accepted only
// if the realized state still satisfies the sub-problem's policies.
func realizeGreedy(h *harc.HARC, orig *harc.State, pr *problem, gres *greedy.Result) (*harc.State, int, bool) {
	gst := gres.State
	trial := orig.Clone()
	dsts := pr.dsts()
	for _, dst := range dsts {
		gdm, odm := gst.Dst[dst.Name], orig.Dst[dst.Name]
		for _, s := range h.Slots {
			if !applicableDst(s, dst) {
				continue
			}
			key := s.Key()
			if gdm[key] == odm[key] || !gdm[key] {
				continue // greedy repairs only add dETG edges
			}
			switch s.Kind {
			case arc.SlotInterDevice:
				trial.Static[harc.StaticKey(dst.Name, key)] = true
			case arc.SlotIntraSelf, arc.SlotDest:
				trial.RouteFilter[harc.RFKey(dst.Name, s.FromProc.Name())] = false
			case arc.SlotIntraRedist:
				// Per-dst repairs freeze the aETG: an absent
				// redistribution adjacency cannot be recreated by any
				// per-destination construct.
				if !orig.All[key] {
					return nil, 0, false
				}
				trial.RouteFilter[harc.RFKey(dst.Name, s.FromProc.Name())] = false
				trial.RouteFilter[harc.RFKey(dst.Name, s.ToProc.Name())] = false
			}
		}
	}
	for link, v := range gst.Waypoint {
		if v {
			trial.Waypoint[link] = true
		}
	}
	for _, dst := range dsts {
		realizeDstPresence(h, orig, trial, dst)
	}
	for _, tc := range pr.tcs {
		realizeTCPresence(h, orig, trial, gst, tc)
	}
	for _, p := range pr.policies {
		if !policy.CheckState(h, trial, p) {
			return nil, 0, false
		}
	}
	return trial, gres.Changes, true
}

// impliedDst evaluates a destination-level edge's presence from the
// construct maps in st (mirroring the encoder's hierarchy constraints).
func impliedDst(st *harc.State, dst string, s *arc.Slot, staticProcs map[string]bool) bool {
	rf := func(proc string) bool { return st.RouteFilter[harc.RFKey(dst, proc)] }
	switch s.Kind {
	case arc.SlotIntraSelf:
		return !rf(s.FromProc.Name()) || staticProcs[s.FromProc.Name()]
	case arc.SlotIntraRedist:
		return (st.All[s.Key()] && !rf(s.FromProc.Name()) && !rf(s.ToProc.Name())) ||
			staticProcs[s.FromProc.Name()]
	case arc.SlotInterDevice:
		return (st.All[s.Key()] && !rf(s.ToProc.Name())) || st.Static[harc.StaticKey(dst, s.Key())]
	case arc.SlotDest:
		return !rf(s.FromProc.Name())
	}
	return false
}

// realizeDstPresence updates trial's dETG presence for dst wherever the
// construct edits changed an edge's implied value. Only slots whose
// implication flipped relative to the original constructs are touched,
// so untouched edges keep their observed (config-derived) presence.
func realizeDstPresence(h *harc.HARC, orig, trial *harc.State, dst *topology.Subnet) {
	origStatics := staticProcsOf(h, orig, dst.Name)
	trialStatics := staticProcsOf(h, trial, dst.Name)
	dm := trial.Dst[dst.Name]
	for _, s := range h.Slots {
		if !applicableDst(s, dst) {
			continue
		}
		oldv := impliedDst(orig, dst.Name, s, origStatics)
		newv := impliedDst(trial, dst.Name, s, trialStatics)
		if oldv != newv {
			dm[s.Key()] = newv
		}
	}
}

// staticProcsOf collects the processes that own a static route for dst.
func staticProcsOf(h *harc.HARC, st *harc.State, dst string) map[string]bool {
	out := map[string]bool{}
	for _, s := range h.Slots {
		if s.Kind == arc.SlotInterDevice && st.Static[harc.StaticKey(dst, s.Key())] {
			out[s.FromProc.Name()] = true
		}
	}
	return out
}

// realizeTCPresence aligns trial's tc-level presence with the realized
// dETG: intra edges follow the parent exactly (no ACL can act inside a
// device), ACL-capable edges keep the greedy deviation where it deviated
// and follow the parent where it was aligned.
func realizeTCPresence(h *harc.HARC, orig, trial, gst *harc.State, tc topology.TrafficClass) {
	m := trial.TC[tc.Key()]
	gm := gst.TC[tc.Key()]
	gdm := gst.Dst[tc.Dst.Name]
	dm := trial.Dst[tc.Dst.Name]
	for _, s := range h.Slots {
		if !applicableTC(s, tc) {
			continue
		}
		key := s.Key()
		switch s.Kind {
		case arc.SlotSource:
			// No dETG parent; a source edge still needs the gateway to
			// have a route (no route filter on the receiving process).
			v := gm[key]
			if trial.RouteFilter[harc.RFKey(tc.Dst.Name, s.ToProc.Name())] {
				v = false
			}
			m[key] = v
		case arc.SlotIntraSelf, arc.SlotIntraRedist:
			m[key] = dm[key]
		default:
			if gm[key] == gdm[key] {
				m[key] = dm[key] // aligned child follows the realized parent
			} else {
				m[key] = gm[key] && dm[key] // deviation (ACL) is preserved
			}
		}
	}
}

// mergeRealized copies a degraded or compressed problem's realized
// state into the
// shared repaired state: its destinations' dETG maps, its traffic
// classes' maps, the per-destination construct entries (all keyed by
// destination name), and any added waypoints.
func mergeRealized(h *harc.HARC, orig, out *harc.State, pr *problem) {
	trial := pr.realized
	for _, dst := range pr.dsts() {
		dm, tdm := out.Dst[dst.Name], trial.Dst[dst.Name]
		for key, v := range tdm {
			dm[key] = v
		}
		prefix := dst.Name + "|"
		for key, v := range trial.RouteFilter {
			if len(key) > len(prefix) && key[:len(prefix)] == prefix && v != orig.RouteFilter[key] {
				out.RouteFilter[key] = v
			}
		}
		for key, v := range trial.Static {
			if len(key) > len(prefix) && key[:len(prefix)] == prefix && v != orig.Static[key] {
				out.Static[key] = v
			}
		}
	}
	for _, tc := range pr.tcs {
		m, tm := out.TC[tc.Key()], trial.TC[tc.Key()]
		for key, v := range tm {
			m[key] = v
		}
	}
	for link, v := range trial.Waypoint {
		if v {
			out.Waypoint[link] = true
		}
	}
}

// applyFollowRules propagates repaired parent levels to unsolved child
// levels: a child that was aligned with its parent stays aligned (zero
// configuration changes), while an existing deviation (ACL, route
// filter, static route) is preserved. This realizes the paper's
// observation that destination-based routing makes parent changes apply
// to all children by default. It reports whether the shared aETG
// changed (the condition under which unsolved destinations were
// rewritten), so the caller can bound the repair's blast radius.
func applyFollowRules(h *harc.HARC, orig, out *harc.State, solvedDsts, solvedTCs map[string]bool) bool {
	// Per-destination repairs freeze the aETG, so the parent level is
	// usually untouched; skipping the propagation scans then keeps this
	// pass O(solved destinations) instead of O(all traffic classes).
	allChanged := false
	for k, v := range out.All {
		if orig.All[k] != v {
			allChanged = true
			break
		}
	}
	for _, dst := range h.Dsts {
		if solvedDsts[dst.Name] || !allChanged {
			continue
		}
		dm := out.Dst[dst.Name]
		origDm := orig.Dst[dst.Name]
		for _, s := range h.Slots {
			if !applicableDst(s, dst) || s.Kind == arc.SlotDest {
				continue
			}
			key := s.Key()
			if origDm[key] == orig.All[key] {
				dm[key] = out.All[key]
			}
		}
	}
	for _, tc := range h.TCs {
		if solvedTCs[tc.Key()] {
			continue
		}
		if !allChanged && !solvedDsts[tc.Dst.Name] {
			continue // parent levels untouched; the child is already aligned
		}
		m := out.TC[tc.Key()]
		origM := orig.TC[tc.Key()]
		dm := out.Dst[tc.Dst.Name]
		origDm := orig.Dst[tc.Dst.Name]
		for _, s := range h.Slots {
			if !applicableTC(s, tc) || s.Kind == arc.SlotSource {
				continue
			}
			key := s.Key()
			if origM[key] == origDm[key] {
				m[key] = dm[key]
			}
		}
	}
	return allChanged
}

// VerifyRepair checks that every policy holds on the repaired state.
func VerifyRepair(h *harc.HARC, st *harc.State, policies []policy.Policy) []policy.Policy {
	return VerifyRepairIncremental(h, st, policies, nil, 1)
}

// VerifyRepairIncremental is VerifyRepair restricted to the policies a
// repair could have affected: those whose traffic class (either class,
// for isolation policies) is in touched. A nil touched set checks every
// policy. Policies outside the set were verified satisfied before the
// repair and their class state is untouched (see Result.Touched), so
// skipping them loses nothing. Checks fan out over workers goroutines
// in contiguous input-order chunks — same-class policies share a worker
// and its cached per-class graphs — and the returned violations are in
// input order regardless of parallelism.
func VerifyRepairIncremental(h *harc.HARC, st *harc.State, policies []policy.Policy, touched map[string]bool, workers int) []policy.Policy {
	need := make([]int, 0, len(policies))
	for i, p := range policies {
		if touched == nil || touched[p.TC.Key()] || (p.Kind == policy.Isolated && touched[p.TC2.Key()]) {
			need = append(need, i)
		}
	}
	if len(need) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(need) {
		workers = len(need)
	}
	bad := make([]bool, len(need))
	check := func(lo, hi int) {
		checker := policy.NewStateChecker(h, st)
		for j := lo; j < hi; j++ {
			if !checker.Check(policies[need[j]]) {
				bad[j] = true
			}
		}
	}
	if workers == 1 {
		check(0, len(need))
	} else {
		chunk := (len(need) + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < len(need); lo += chunk {
			hi := lo + chunk
			if hi > len(need) {
				hi = len(need)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				check(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	var violated []policy.Policy
	for j, i := range need {
		if bad[j] {
			violated = append(violated, policies[i])
		}
	}
	return violated
}
