package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/arc"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/smt/maxsat"
	"repro/internal/smt/sat"
	"repro/internal/topology"
)

// Granularity selects the MaxSMT decomposition of §5.3.
type Granularity int

// Decomposition granularities.
const (
	// AllTCs formulates a single MaxSMT problem over every traffic class
	// (maxsmt-all-tcs).
	AllTCs Granularity = iota
	// PerDst formulates one MaxSMT problem per destination with at least
	// one violated policy, solvable in parallel (maxsmt-per-dst). PC4
	// policies are merged into a single problem because link costs cannot
	// be customized per destination.
	PerDst
)

func (g Granularity) String() string {
	if g == PerDst {
		return "maxsmt-per-dst"
	}
	return "maxsmt-all-tcs"
}

// Objective selects the minimality dimension (§5.2).
type Objective int

// Minimality objectives.
const (
	// MinLines minimizes the number of configuration lines changed
	// (Table 2, the paper's primary objective).
	MinLines Objective = iota
	// MinDevices minimizes the number of devices whose configuration
	// changes (the alternative objective sketched in §5.2).
	MinDevices
)

func (o Objective) String() string {
	if o == MinDevices {
		return "min-devices"
	}
	return "min-lines"
}

// Options configures the repair engine.
type Options struct {
	Granularity Granularity
	Algorithm   maxsat.Algorithm
	Objective   Objective
	// Parallelism bounds concurrent per-destination solves (≤1 means
	// sequential).
	Parallelism int
	// CostBits is the bit width of PC4 edge-cost variables (costs range
	// 1..2^CostBits-1).
	CostBits int
	// DistBits is the bit width of PC4 distance labels.
	DistBits int
	// AllowWaypointChanges lets repairs add middleboxes to links
	// (footnote 2); disable to require ¬wedge for all unwaypointed links.
	AllowWaypointChanges bool
	// WaypointWeight is the objective cost of placing one middlebox,
	// relative to a configuration line (default 1, the paper's implicit
	// accounting).
	WaypointWeight int
	// ConflictBudget bounds each SAT call (0 = unlimited); exceeding it
	// yields an Unknown problem status, CPR's analogue of the paper's
	// 8-hour limit.
	ConflictBudget int64
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation reproduction.
func DefaultOptions() Options {
	return Options{
		Granularity:          PerDst,
		Algorithm:            maxsat.LinearDescent,
		Parallelism:          1,
		CostBits:             4,
		DistBits:             8,
		AllowWaypointChanges: true,
		WaypointWeight:       1,
	}
}

// ProblemStat records one MaxSMT sub-problem's outcome.
type ProblemStat struct {
	Label      string // destination name, "pc4-merged", or "all-tcs"
	TCs        int
	Policies   int
	Vars       int
	Softs      int
	Violations int // violated softs = modeled configuration changes
	Status     sat.Status
	// Conflicts is the SAT solver's conflict count for this sub-problem.
	Conflicts int64
	Duration  time.Duration
}

// Result is the outcome of a Repair call.
type Result struct {
	// State is the repaired HARC state (defined when Solved).
	State *harc.State
	// Changes is the total number of violated soft constraints across
	// sub-problems: the modeled count of configuration changes.
	Changes int
	// Solved reports that every sub-problem found an optimal repair.
	Solved bool
	// Conflicts is the total SAT conflict count across sub-problems.
	Conflicts int64
	Stats     []ProblemStat
	// Duration is the wall-clock time of the Repair call; Sequential sums
	// the individual sub-problem durations (the paper's serial baseline).
	Duration   time.Duration
	Sequential time.Duration
}

// Repair computes a minimal repair of the network's HARC so that every
// policy holds. It returns an error for malformed inputs; an
// unsatisfiable specification yields Solved == false with per-problem
// statuses.
func Repair(h *harc.HARC, policies []policy.Policy, opts Options) (*Result, error) {
	return RepairCtx(context.Background(), h, policies, opts)
}

// RepairCtx is Repair under a context. Cancelling ctx interrupts every
// in-flight SAT solve (the CDCL search loop polls an interruption flag),
// and RepairCtx returns ctx's error instead of a partial result.
func RepairCtx(ctx context.Context, h *harc.HARC, policies []policy.Policy, opts Options) (*Result, error) {
	start := time.Now()
	if opts.CostBits == 0 {
		opts.CostBits = 4
	}
	if opts.DistBits == 0 {
		opts.DistBits = 8
	}
	if opts.WaypointWeight == 0 {
		opts.WaypointWeight = 1
	}
	orig := harc.StateOf(h)
	out := orig.Clone()
	res := &Result{State: out, Solved: true}

	type problem struct {
		label    string
		tcs      []topology.TrafficClass
		policies []policy.Policy
		freeze   bool
		enc      *encoder
		stat     ProblemStat
	}

	uniqueTCs := func(ps []policy.Policy) []topology.TrafficClass {
		seen := map[string]bool{}
		var out []topology.TrafficClass
		add := func(tc topology.TrafficClass) {
			if tc.Src != nil && tc.Dst != nil && !seen[tc.Key()] {
				seen[tc.Key()] = true
				out = append(out, tc)
			}
		}
		for _, p := range ps {
			add(p.TC)
			if p.Kind == policy.Isolated {
				add(p.TC2)
			}
		}
		return out
	}

	var problems []*problem
	switch opts.Granularity {
	case AllTCs:
		problems = append(problems, &problem{
			label:    "all-tcs",
			tcs:      uniqueTCs(policies),
			policies: policies,
			freeze:   false,
		})
	case PerDst:
		groups := policy.GroupByDst(policies)
		// Destinations coupled by an isolation policy must be solved
		// together; collect the set of coupled destination names.
		coupledDst := map[string]bool{}
		for _, p := range policies {
			if p.Kind == policy.Isolated && p.TC.Dst.Name != p.TC2.Dst.Name {
				coupledDst[p.TC.Dst.Name] = true
				coupledDst[p.TC2.Dst.Name] = true
			}
		}
		var pc4Group []policy.Policy
		for _, name := range policy.SortedGroupNames(groups) {
			g := groups[name]
			merge := coupledDst[name]
			for _, p := range g {
				if p.Kind == policy.PrimaryPath {
					merge = true
				}
			}
			if merge {
				// Link costs are shared across destinations (PC4), and
				// isolation couples classes across destinations, so such
				// groups are merged into one problem.
				pc4Group = append(pc4Group, g...)
				continue
			}
			if len(policy.Violations(h, g)) == 0 {
				continue // no violated policy for this destination
			}
			problems = append(problems, &problem{
				label:    name,
				tcs:      uniqueTCs(g),
				policies: g,
				freeze:   true,
			})
		}
		if len(pc4Group) > 0 && len(policy.Violations(h, pc4Group)) > 0 {
			problems = append(problems, &problem{
				label:    "pc4-merged",
				tcs:      uniqueTCs(pc4Group),
				policies: pc4Group,
				freeze:   true,
			})
		}
	default:
		return nil, fmt.Errorf("core: unknown granularity %d", opts.Granularity)
	}

	// Build and solve each problem (in parallel for per-dst).
	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
		mu       sync.Mutex
		firstErr error
	)
	for _, pr := range problems {
		wg.Add(1)
		go func(pr *problem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return // cancelled while queued; RepairCtx reports ctx.Err()
			}
			t0 := time.Now()
			enc := newEncoder(h, orig, pr.tcs, pr.policies, pr.freeze, opts)
			if err := enc.encode(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			cost, status := enc.solve(ctx)
			pr.enc = enc
			pr.stat = ProblemStat{
				Label:      pr.label,
				TCs:        len(pr.tcs),
				Policies:   len(pr.policies),
				Vars:       enc.s.NumVars(),
				Softs:      len(enc.softs),
				Violations: cost,
				Status:     status,
				Conflicts:  enc.s.Conflicts,
				Duration:   time.Since(t0),
			}
		}(pr)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	solvedDsts := map[string]bool{}
	solvedTCs := map[string]bool{}
	for _, pr := range problems {
		res.Stats = append(res.Stats, pr.stat)
		res.Sequential += pr.stat.Duration
		res.Conflicts += pr.stat.Conflicts
		if pr.stat.Status != sat.Sat {
			res.Solved = false
			continue
		}
		res.Changes += pr.stat.Violations
		pr.enc.extract(out)
		for _, d := range pr.enc.dsts {
			solvedDsts[d.Name] = true
		}
		for _, tc := range pr.tcs {
			solvedTCs[tc.Key()] = true
		}
	}
	sort.Slice(res.Stats, func(i, j int) bool { return res.Stats[i].Label < res.Stats[j].Label })

	applyFollowRules(h, orig, out, solvedDsts, solvedTCs)
	res.Duration = time.Since(start)
	return res, nil
}

// applyFollowRules propagates repaired parent levels to unsolved child
// levels: a child that was aligned with its parent stays aligned (zero
// configuration changes), while an existing deviation (ACL, route
// filter, static route) is preserved. This realizes the paper's
// observation that destination-based routing makes parent changes apply
// to all children by default.
func applyFollowRules(h *harc.HARC, orig, out *harc.State, solvedDsts, solvedTCs map[string]bool) {
	for _, dst := range h.Dsts {
		if solvedDsts[dst.Name] {
			continue
		}
		dm := out.Dst[dst.Name]
		origDm := orig.Dst[dst.Name]
		for _, s := range h.Slots {
			if !applicableDst(s, dst) || s.Kind == arc.SlotDest {
				continue
			}
			key := s.Key()
			if origDm[key] == orig.All[key] {
				dm[key] = out.All[key]
			}
		}
	}
	for _, tc := range h.TCs {
		if solvedTCs[tc.Key()] {
			continue
		}
		m := out.TC[tc.Key()]
		origM := orig.TC[tc.Key()]
		dm := out.Dst[tc.Dst.Name]
		origDm := orig.Dst[tc.Dst.Name]
		for _, s := range h.Slots {
			if !applicableTC(s, tc) || s.Kind == arc.SlotSource {
				continue
			}
			key := s.Key()
			if origM[key] == origDm[key] {
				m[key] = dm[key]
			}
		}
	}
}

// VerifyRepair checks that every policy holds on the repaired state.
func VerifyRepair(h *harc.HARC, st *harc.State, policies []policy.Policy) []policy.Policy {
	var violated []policy.Policy
	for _, p := range policies {
		if !policy.CheckState(h, st, p) {
			violated = append(violated, p)
		}
	}
	return violated
}
