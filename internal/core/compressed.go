package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"repro/internal/arc"
	"repro/internal/compress"
	"repro/internal/faultinject"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/smt/sat"
	"repro/internal/topology"
)

// CompressMode selects the Bonsai-style symmetry-compression front end
// (internal/compress): repair eligible per-destination sub-problems on
// a quotient network of role-equivalence classes, then concretize the
// abstract patch onto every class member and re-verify it on the
// uncompressed state.
type CompressMode int

// Compression modes.
const (
	// CompressAuto (the default) compresses eligible sub-problems when
	// the network is large enough to plausibly pay for the quotient
	// construction (compressAutoMinDevices).
	CompressAuto CompressMode = iota
	// CompressOn compresses every eligible sub-problem regardless of
	// network size.
	CompressOn
	// CompressOff disables compression.
	CompressOff
)

func (m CompressMode) String() string {
	switch m {
	case CompressOn:
		return "on"
	case CompressOff:
		return "off"
	}
	return "auto"
}

// compressAutoMinDevices is the network size at which CompressAuto
// engages: below it the quotient bookkeeping costs more than the
// uncompressed solve (the paper's own scenarios top out at 24 routers).
const compressAutoMinDevices = 24

// compressEligible reports whether a sub-problem may be solved on a
// quotient. PC4 and isolation policies are excluded: link costs are
// global and isolation couples destinations, so neither survives
// per-class collapsing.
func compressEligible(h *harc.HARC, pr *problem, opts Options) bool {
	if !pr.freeze {
		return false
	}
	switch opts.Compress {
	case CompressOff:
		return false
	case CompressAuto:
		if h.Network.NumDevices() < compressAutoMinDevices {
			return false
		}
	}
	for _, p := range pr.policies {
		switch p.Kind {
		case policy.PrimaryPath, policy.Isolated:
			return false
		}
	}
	return true
}

// compressRedundancy derives the representatives kept per class: at
// least the largest PC3 K of the problem (collapsing below K destroys
// the K-link-disjoint structure the policy needs), with a floor of 2 so
// class-internal path diversity survives.
func compressRedundancy(pr *problem, opts Options) int {
	if opts.CompressRedundancy > 0 {
		return opts.CompressRedundancy
	}
	r := 2
	for _, p := range pr.policies {
		if p.Kind == policy.KReachable && p.K > r {
			r = p.K
		}
	}
	return r
}

// tryCompressed attempts the compressed solve for one sub-problem:
// build the quotient, repair it with the unchanged encoder, concretize
// the patch onto every class member, and accept only if the realized
// state satisfies the sub-problem's policies on the uncompressed HARC.
// On success the problem is marked solved with the realized state
// staged for the serial merge; on any failure it records the fallback
// stage in the stats and returns false so the caller proceeds with the
// normal uncompressed path.
func tryCompressed(ctx context.Context, h *harc.HARC, orig *harc.State, pr *problem, opts Options) (ok bool) {
	if !compressEligible(h, pr, opts) {
		return false
	}
	defer func() {
		if r := recover(); r != nil {
			pr.stat.CompressFallback = "panic"
			ok = false
		}
	}()
	q, err := compress.Build(h.Network, compress.Spec{
		TCs:        pr.tcs,
		Redundancy: compressRedundancy(pr, opts),
	})
	if err != nil {
		pr.stat.CompressFallback = "quotient"
		return false
	}
	pr.stat.DeviceClasses = len(q.Classes)
	pr.stat.QuotientDevices = q.Net.NumDevices()
	pr.stat.CompressRatio = q.Ratio()
	// A quotient no smaller than the network cannot pay for itself.
	if opts.Compress != CompressOn && 4*q.Net.NumDevices() > 3*h.Network.NumDevices() {
		pr.stat.CompressFallback = "incompressible"
		return false
	}

	qtcs, qpolicies, rerr := remapToQuotient(q.Net, pr)
	if rerr != nil {
		pr.stat.CompressFallback = "remap"
		return false
	}
	t0 := time.Now()
	qh := harc.BuildForTCs(q.Net, qtcs)
	qorig := harc.StateOf(qh)
	pr.stat.HarcBuildNs += time.Since(t0).Nanoseconds()
	qpr := &problem{label: pr.label, tcs: qtcs, policies: qpolicies, freeze: true}
	qtb := newTables(qh, []*problem{qpr})
	enc := newEncoder(qtb, qorig, qtcs, qpolicies, true, opts)
	t0 = time.Now()
	if err := enc.encode(ctx); err != nil {
		pr.stat.EncodeNs += time.Since(t0).Nanoseconds()
		pr.stat.CompressFallback = "encode"
		return false
	}
	pr.stat.EncodeNs += time.Since(t0).Nanoseconds()
	t0 = time.Now()
	cost, status := enc.solve(ctx)
	pr.stat.SolveNs += time.Since(t0).Nanoseconds()
	pr.stat.Vars = enc.s.NumVars()
	pr.stat.Softs = len(enc.softs)
	pr.stat.Conflicts += enc.s.Conflicts
	pr.stat.Solver.Accumulate(enc.s.Snapshot())
	if status != sat.Sat {
		pr.stat.CompressFallback = "solve"
		return false
	}
	if cost == 0 {
		// The concrete problem has violations the quotient cannot see
		// (symmetry hid the offending path); compression is unsound here.
		pr.stat.CompressFallback = "trivial"
		return false
	}
	qrep := qorig.Clone()
	enc.extract(qrep)

	t0 = time.Now()
	trial, changes, touched, cok := concretizePatch(h, orig, pr, q, qh, qorig, qrep, opts)
	pr.stat.ConcretizeNs += time.Since(t0).Nanoseconds()
	if !cok {
		pr.stat.CompressFallback = "concretize"
		return false
	}
	// The safety net: verify the patch on the quotient plus a
	// deterministic concrete spot-check sample (or, under
	// CompressConcreteVerify, on every policy concretely). Any over-merge
	// the refiner committed surfaces here and sends the destination down
	// the uncompressed path with the failing stage recorded.
	t0 = time.Now()
	vok := verifyOnQuotient(h, qh, qrep, trial, pr, qpolicies, q, touched, opts)
	pr.stat.ReverifyNs += time.Since(t0).Nanoseconds()
	if !vok {
		return false
	}
	pr.realized = trial
	pr.realizedChanges = changes
	pr.stat.Violations = changes
	pr.stat.Status = sat.Sat
	pr.stat.Outcome = OutcomeSolved
	pr.stat.Compressed = true
	if pr.stat.Attempts == 0 {
		pr.stat.Attempts = 1
	}
	return true
}

// verifyOnQuotient decides whether a concretized patch is accepted. The
// pre-quotient-verify behavior (every policy re-checked concretely on
// trial) is kept behind Options.CompressConcreteVerify as the oracle and
// benchmark baseline. The default ladder has two rungs, each naming its
// own fallback stage:
//
//  1. "qverify" — every remapped policy is verified on the quotient HARC
//     against the extracted quotient state. The solver's hard constraints
//     make this pass by construction, so a failure means the extraction
//     or remap is broken; the same stage also absorbs an injected
//     core/qverify-error fault, degrading to the uncompressed solve.
//  2. "spot-check" — a deterministic concrete sample: every policy the
//     sub-problem was created to fix (violated pre-repair), plus one
//     seeded policy per equivalence class the patch touched. Checking a
//     policy on the concrete trial state exercises every member of the
//     touched classes (policy endpoints stay concrete; class members are
//     interior, so any class-crossing path traverses non-representative
//     members), which is where count-based concretization can go wrong.
//
// Either failure returns false with ProblemStat.CompressFallback set, so
// the caller re-solves uncompressed — the same full concrete guarantee
// as before, reached only when the cheap checks disagree. Fallback
// stages are never cached (cacheableOutcome requires an empty stage).
func verifyOnQuotient(h, qh *harc.HARC, qrep, trial *harc.State, pr *problem, qpolicies []policy.Policy, q *compress.Quotient, touched map[string]bool, opts Options) bool {
	if opts.CompressConcreteVerify {
		checker := policy.NewStateChecker(h, trial)
		for _, p := range pr.policies {
			if !checker.Check(p) {
				pr.stat.CompressFallback = "verify"
				return false
			}
		}
		return true
	}
	if faultinject.Eval(faultinject.CoreQVerifyError) != nil {
		pr.stat.CompressFallback = "qverify"
		return false
	}
	qchecker := policy.NewStateChecker(qh, qrep)
	for _, qp := range qpolicies {
		if !qchecker.Check(qp) {
			pr.stat.CompressFallback = "qverify"
			return false
		}
	}
	if faultinject.Eval(faultinject.CoreSpotCheckError) != nil {
		pr.stat.CompressFallback = "spot-check"
		return false
	}
	checker := policy.NewStateChecker(h, trial)
	for _, p := range spotCheckSample(pr, q, touched) {
		if !checker.Check(p) {
			pr.stat.CompressFallback = "spot-check"
			return false
		}
	}
	return true
}

// spotCheckSample selects the concrete policies to verify after a
// quotient-verified patch: every policy violated before the repair (the
// ones the patch must fix), plus one policy per lossy equivalence class
// holding a device the patch touched, chosen by a seed derived from the
// sub-problem label so the sample is identical at every parallelism
// setting and across runs. Classes the patch left alone cannot have
// changed state; lossless classes (every member kept) concretize
// per-slot byte-exactly and need no sampling.
func spotCheckSample(pr *problem, q *compress.Quotient, touched map[string]bool) []policy.Policy {
	if len(pr.policies) == 0 {
		return nil
	}
	picked := make(map[int]bool, len(pr.violated)+4)
	var sample []policy.Policy
	byString := make(map[string]int, len(pr.policies))
	for i, p := range pr.policies {
		byString[p.String()] = i
	}
	for _, p := range pr.violated {
		if i, ok := byString[p.String()]; ok && !picked[i] {
			picked[i] = true
			sample = append(sample, pr.policies[i])
		}
	}
	seed := fnv.New64a()
	seed.Write([]byte(pr.label))
	base := seed.Sum64()
	for ci, c := range q.Classes {
		if len(c.Members) <= len(c.Kept) {
			continue
		}
		hit := false
		for _, m := range c.Members {
			if touched[m] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		idx := int((base ^ (uint64(ci)*0x9e3779b97f4a7c15 + 1)) % uint64(len(pr.policies)))
		for tries := 0; tries < len(pr.policies); tries++ {
			if !picked[idx] {
				picked[idx] = true
				sample = append(sample, pr.policies[idx])
				break
			}
			idx = (idx + 1) % len(pr.policies)
		}
	}
	return sample
}

// remapToQuotient rebinds the sub-problem's traffic classes and
// policies onto the quotient network's subnets.
func remapToQuotient(qn *topology.Network, pr *problem) ([]topology.TrafficClass, []policy.Policy, error) {
	remap := func(tc topology.TrafficClass) (topology.TrafficClass, error) {
		src, dst := qn.Subnet(tc.Src.Name), qn.Subnet(tc.Dst.Name)
		if src == nil || dst == nil {
			return topology.TrafficClass{}, fmt.Errorf("core: subnet missing from quotient")
		}
		return topology.TrafficClass{Src: src, Dst: dst}, nil
	}
	qtcs := make([]topology.TrafficClass, 0, len(pr.tcs))
	for _, tc := range pr.tcs {
		qtc, err := remap(tc)
		if err != nil {
			return nil, nil, err
		}
		qtcs = append(qtcs, qtc)
	}
	qpolicies := make([]policy.Policy, 0, len(pr.policies))
	for _, p := range pr.policies {
		qp := p
		qtc, err := remap(p.TC)
		if err != nil {
			return nil, nil, err
		}
		qp.TC = qtc
		qpolicies = append(qpolicies, qp)
	}
	return qtcs, qpolicies, nil
}

// procSuffix is a device-independent process identifier ("ospf1").
func procSuffix(p *topology.Process) string {
	return p.Proto.String() + strconv.Itoa(p.ID)
}

// interGroups indexes inter-device slots by originating device and
// symmetry group — (from class, to class, from proc, to proc) — the
// granularity at which quotient repairs transfer to class members.
type interGroups struct {
	byDev    map[string]map[string][]*arc.Slot // device → group key → slots (slot order)
	devOrder map[string][]string               // device → group keys in first-seen order
}

func groupInterSlots(h *harc.HARC, classOf map[string]int) *interGroups {
	g := &interGroups{
		byDev:    make(map[string]map[string][]*arc.Slot),
		devOrder: make(map[string][]string),
	}
	for _, s := range h.Slots {
		if s.Kind != arc.SlotInterDevice {
			continue
		}
		from, to := s.FromProc.Device.Name, s.ToProc.Device.Name
		gk := fmt.Sprintf("%d>%d %s>%s", classOf[from], classOf[to], procSuffix(s.FromProc), procSuffix(s.ToProc))
		m := g.byDev[from]
		if m == nil {
			m = make(map[string][]*arc.Slot)
			g.byDev[from] = m
		}
		if _, seen := m[gk]; !seen {
			g.devOrder[from] = append(g.devOrder[from], gk)
		}
		m[gk] = append(m[gk], s)
	}
	return g
}

// concretizePatch fans the quotient repair out onto the concrete
// network and recomputes the presence the edited constructs imply,
// exactly as the greedy fallback's realization does. Per-slot construct
// edits transfer by direct key where the concrete slot survives in the
// quotient verbatim (always the case on a lossless quotient, making the
// concretized cost byte-exact) and by per-group counts otherwise: if
// the solver added one static route from a representative toward a
// class, each member assigned to that representative adds one. Returns
// the trial state, the concrete modeled-change count, the set of
// concrete devices whose constructs the patch edited (driving the
// spot-check sample and the incremental re-check), and whether every
// quotient edit found a concrete home.
// cowTrial clones orig only where concretizePatch can write: the flat
// construct and waypoint maps, this sub-problem's per-destination dETG
// maps, and its per-class tcETG maps. Every other per-dst and per-TC
// inner map — the dominant cost of a full Clone on a large network — is
// shared read-only with orig, which is safe because the verifiers, the
// serial merge, and the solve cache all treat realized states as
// immutable.
func cowTrial(orig *harc.State, pr *problem) *harc.State {
	trial := &harc.State{
		All:         orig.All,
		Cost:        orig.Cost,
		Dst:         make(map[string]map[string]bool, len(orig.Dst)),
		TC:          make(map[string]map[string]bool, len(orig.TC)),
		Waypoint:    make(map[string]bool, len(orig.Waypoint)),
		RouteFilter: make(map[string]bool, len(orig.RouteFilter)),
		Static:      make(map[string]bool, len(orig.Static)),
	}
	for k, v := range orig.Waypoint {
		trial.Waypoint[k] = v
	}
	for k, v := range orig.RouteFilter {
		trial.RouteFilter[k] = v
	}
	for k, v := range orig.Static {
		trial.Static[k] = v
	}
	for d, m := range orig.Dst {
		trial.Dst[d] = m
	}
	for t, m := range orig.TC {
		trial.TC[t] = m
	}
	copyInner := func(m map[string]bool) map[string]bool {
		c := make(map[string]bool, len(m))
		for k, v := range m {
			c[k] = v
		}
		return c
	}
	for _, dst := range pr.dsts() {
		trial.Dst[dst.Name] = copyInner(orig.Dst[dst.Name])
	}
	for _, tc := range pr.tcs {
		trial.TC[tc.Key()] = copyInner(orig.TC[tc.Key()])
	}
	return trial
}

func concretizePatch(h *harc.HARC, orig *harc.State, pr *problem, q *compress.Quotient, qh *harc.HARC, qorig, qrep *harc.State, opts Options) (*harc.State, int, map[string]bool, bool) {
	// Per-destination repairs with no PC4 never touch link costs.
	for ck, v := range qrep.Cost {
		if v != qorig.Cost[ck] {
			return nil, 0, nil, false
		}
	}
	trial := cowTrial(orig, pr)
	changes := 0
	touched := map[string]bool{}
	dsts := pr.dsts()

	// Waypoint additions fan out class-pair-wide: the quotient link's
	// endpoint classes identify every concrete link the middlebox must
	// cover for the PC2 argument to transfer.
	type cpair struct{ a, b int }
	wanted := map[cpair]bool{}
	for _, l := range qh.Network.Links {
		name := l.Name()
		if qrep.Waypoint[name] && !qorig.Waypoint[name] {
			a, b := q.ClassOf[l.A.Device.Name], q.ClassOf[l.B.Device.Name]
			if a > b {
				a, b = b, a
			}
			wanted[cpair{a, b}] = true
		}
	}
	if len(wanted) > 0 {
		for _, l := range h.Network.Links {
			a, b := q.ClassOf[l.A.Device.Name], q.ClassOf[l.B.Device.Name]
			if a > b {
				a, b = b, a
			}
			if wanted[cpair{a, b}] && !trial.Waypoint[l.Name()] {
				trial.Waypoint[l.Name()] = true
				changes += opts.WaypointWeight
				touched[l.A.Device.Name] = true
				touched[l.B.Device.Name] = true
			}
		}
	}

	// Route filters are per (destination, process): a flip on a
	// representative applies to every member assigned to it.
	for _, dst := range dsts {
		for _, d := range h.Network.Devices() {
			rep := q.Rep[d.Name]
			if rep == "" {
				return nil, 0, nil, false
			}
			for _, p := range d.Processes {
				qkey := harc.RFKey(dst.Name, rep+":"+procSuffix(p))
				v, ok := qrep.RouteFilter[qkey]
				if !ok || v == qorig.RouteFilter[qkey] {
					continue
				}
				key := harc.RFKey(dst.Name, p.Name())
				if trial.RouteFilter[key] != v {
					trial.RouteFilter[key] = v
					changes++
					touched[d.Name] = true
				}
			}
		}
	}

	qGroups := groupInterSlots(qh, q.ClassOf)
	cGroups := groupInterSlots(h, q.ClassOf)

	// Static routes: per destination, transfer per-slot where the key
	// survives, then settle per-group count deltas on the remaining
	// member slots.
	for _, dst := range dsts {
		for _, d := range h.Network.Devices() {
			rep := q.Rep[d.Name]
			for _, gk := range cGroups.devOrder[d.Name] {
				qslots := qGroups.byDev[rep][gk]
				type flip struct{ on, off bool }
				direct := make(map[string]flip, len(qslots))
				addN, delN := 0, 0
				for _, qs := range qslots {
					qk := harc.StaticKey(dst.Name, qs.Key())
					was, now := qorig.Static[qk], qrep.Static[qk]
					direct[qs.Key()] = flip{on: now && !was, off: was && !now}
					if now && !was {
						addN++
					}
					if was && !now {
						delN++
					}
				}
				if addN == 0 && delN == 0 {
					continue
				}
				var unmatched []*arc.Slot
				for _, s := range cGroups.byDev[d.Name][gk] {
					f, ok := direct[s.Key()]
					if !ok {
						unmatched = append(unmatched, s)
						continue
					}
					key := harc.StaticKey(dst.Name, s.Key())
					if f.on && !trial.Static[key] {
						trial.Static[key] = true
						changes++
						touched[d.Name] = true
						addN--
					}
					if f.off && trial.Static[key] {
						trial.Static[key] = false
						changes++
						touched[d.Name] = true
						delN--
					}
				}
				for _, s := range unmatched {
					key := harc.StaticKey(dst.Name, s.Key())
					if addN > 0 && !trial.Static[key] {
						trial.Static[key] = true
						changes++
						touched[d.Name] = true
						addN--
					} else if delN > 0 && trial.Static[key] {
						trial.Static[key] = false
						changes++
						touched[d.Name] = true
						delN--
					}
				}
				if addN > 0 || delN > 0 {
					return nil, 0, nil, false // quotient edit with no concrete home
				}
			}
		}
	}

	for _, dst := range dsts {
		realizeDstPresence(h, orig, trial, dst)
	}

	// tcETG level: source and dest attachment slots live on concrete
	// (policy endpoint) devices and transfer by identical key; inter
	// slots transfer their ACL-deviation deltas per slot or per group
	// like statics do.
	for _, tc := range pr.tcs {
		tck := tc.Key()
		m, origM := trial.TC[tck], orig.TC[tck]
		dm, origDm := trial.Dst[tc.Dst.Name], orig.Dst[tc.Dst.Name]
		qm, qom := qrep.TC[tck], qorig.TC[tck]
		qdm, qodm := qrep.Dst[tc.Dst.Name], qorig.Dst[tc.Dst.Name]

		// Plan inter-slot deviation flips for this class.
		plan := map[string]bool{} // slot key → desired deviation
		for _, d := range h.Network.Devices() {
			rep := q.Rep[d.Name]
			for _, gk := range cGroups.devOrder[d.Name] {
				qslots := qGroups.byDev[rep][gk]
				type dflip struct {
					matched  bool
					was, now bool
				}
				direct := make(map[string]dflip, len(qslots))
				addN, delN := 0, 0
				for _, qs := range qslots {
					qk := qs.Key()
					was := qodm[qk] && !qom[qk]
					now := qdm[qk] && !qm[qk]
					direct[qk] = dflip{matched: true, was: was, now: now}
					if now && !was {
						addN++
					}
					if was && !now {
						delN++
					}
				}
				if addN == 0 && delN == 0 {
					continue
				}
				var unmatched []*arc.Slot
				for _, s := range cGroups.byDev[d.Name][gk] {
					key := s.Key()
					f, ok := direct[key]
					was := origDm[key] && !origM[key]
					if !ok {
						unmatched = append(unmatched, s)
						continue
					}
					if f.now != was {
						plan[key] = f.now
						changes++
						touched[d.Name] = true
						if f.now && !f.was {
							addN--
						}
						if f.was && !f.now {
							delN--
						}
					} else if f.now != f.was {
						// The quotient flipped a slot whose concrete twin
						// already had the target deviation; consume the
						// count without a concrete change.
						if f.now {
							addN--
						} else {
							delN--
						}
					}
				}
				for _, s := range unmatched {
					key := s.Key()
					was := origDm[key] && !origM[key]
					if addN > 0 && !was {
						plan[key] = true
						changes++
						touched[d.Name] = true
						addN--
					} else if delN > 0 && was {
						plan[key] = false
						changes++
						touched[d.Name] = true
						delN--
					}
				}
				if addN > 0 || delN > 0 {
					return nil, 0, nil, false
				}
			}
		}

		for _, s := range h.Slots {
			if !applicableTC(s, tc) {
				continue
			}
			key := s.Key()
			switch s.Kind {
			case arc.SlotSource:
				v, ok := qm[key]
				if !ok {
					return nil, 0, nil, false // endpoint slot must exist in the quotient
				}
				if v != origM[key] {
					changes++
					touched[s.ToProc.Device.Name] = true
				}
				if trial.RouteFilter[harc.RFKey(tc.Dst.Name, s.ToProc.Name())] {
					v = false
				}
				m[key] = v
			case arc.SlotIntraSelf, arc.SlotIntraRedist:
				m[key] = dm[key]
			case arc.SlotDest:
				if _, ok := qdm[key]; !ok {
					return nil, 0, nil, false
				}
				was := origDm[key] && !origM[key]
				now := qdm[key] && !qm[key]
				if now != was {
					changes++
					touched[s.FromProc.Device.Name] = true
				}
				m[key] = dm[key] && !now
			case arc.SlotInterDevice:
				dev, planned := plan[key]
				if !planned {
					dev = origDm[key] && !origM[key]
				}
				m[key] = dm[key] && !dev
			}
		}
	}
	return trial, changes, touched, true
}
