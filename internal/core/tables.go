package core

import (
	"repro/internal/arc"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// tables is the read-only, per-repair precomputed structure shared by
// every sub-problem encoder: slot keys, canonical adjacency directions,
// per-destination and per-traffic-class applicability lists, and vertex
// index spaces. Building it once per Repair call removes the string
// concatenation and per-encoder recomputation that used to dominate the
// encode hot path; parallel per-destination solves read it concurrently,
// so nothing here may be mutated after newTables returns.
type tables struct {
	h     *harc.HARC
	slots []*arc.Slot
	// key caches Slot.Key() (a fmt.Sprintf per call on the slot).
	key []string
	// canon maps each slot to the canonical direction of its routing
	// adjacency: both directed slots over a link share one aETG variable,
	// keyed by the lexicographically smaller slot key. Non-inter-device
	// slots map to themselves.
	canon []int
	// aclDev is the device whose ACL realizes a tc-level deviation.
	aclDev []string
	// costKey caches harc.CostKey ("" for slots without a cost).
	costKey []string
	// linkName caches Link.Name() for inter-device slots ("" otherwise).
	linkName []string
	// fromProc/toProc are process-table indices (-1 when the slot end has
	// no process).
	fromProc, toProc []int
	procs            []*topology.Process
	procName         []string
	procDev          []string

	tc  map[string]*tcTables
	dst map[string]*dstTables
}

// tcTables precomputes one traffic class's slot applicability and ETG
// vertex space.
type tcTables struct {
	// slots are the applicable slot indices, ascending.
	slots []int
	// fromV/toV are vertex indices aligned with slots (i.e. indexed by
	// position within slots, not by global slot index).
	fromV, toV []int
	// vertices are the ETG vertex names; vertices[0] is SRC and
	// vertices[1] is DST.
	vertices []string
	// byTail/byHead group slot positions (indices into slots) by tail and
	// head vertex.
	byTail, byHead [][]int
	// links groups applicable inter-device slot positions by physical
	// link, in first-appearance order (PC3's disjointness constraints).
	links []linkGroup
}

type linkGroup struct {
	name      string
	positions []int
}

// dstTables precomputes one destination's applicable slot indices.
type dstTables struct {
	slots []int
}

// newTables builds the shared tables for the traffic classes and
// destinations appearing in the given problems.
func newTables(h *harc.HARC, problems []*problem) *tables {
	n := len(h.Slots)
	tb := &tables{
		h:        h,
		slots:    h.Slots,
		key:      make([]string, n),
		canon:    make([]int, n),
		aclDev:   make([]string, n),
		costKey:  make([]string, n),
		linkName: make([]string, n),
		fromProc: make([]int, n),
		toProc:   make([]int, n),
		tc:       make(map[string]*tcTables),
		dst:      make(map[string]*dstTables),
	}
	procIdx := map[*topology.Process]int{}
	intern := func(p *topology.Process) int {
		if p == nil {
			return -1
		}
		if i, ok := procIdx[p]; ok {
			return i
		}
		i := len(tb.procs)
		procIdx[p] = i
		tb.procs = append(tb.procs, p)
		tb.procName = append(tb.procName, p.Name())
		tb.procDev = append(tb.procDev, p.Device.Name)
		return i
	}
	for i, s := range h.Slots {
		tb.key[i] = s.Key()
		tb.canon[i] = i
		tb.aclDev[i] = aclDevice(s)
		tb.costKey[i] = harc.CostKey(s)
		if s.Kind == arc.SlotInterDevice {
			tb.linkName[i] = s.Link.Name()
		}
		tb.fromProc[i] = intern(s.FromProc)
		tb.toProc[i] = intern(s.ToProc)
	}
	// Canonical adjacency directions (see encoder docs): pair each
	// inter-device slot with its reverse and pick the smaller key.
	byEndpoints := make(map[string]int)
	for i, s := range h.Slots {
		if s.Kind != arc.SlotInterDevice {
			continue
		}
		ep := s.FromProc.Name() + "|" + s.ToProc.Name() + "|" + s.FromIntf.Name + "|" + s.ToIntf.Name
		rev := s.ToProc.Name() + "|" + s.FromProc.Name() + "|" + s.ToIntf.Name + "|" + s.FromIntf.Name
		if other, ok := byEndpoints[rev]; ok {
			canon := other
			if tb.key[i] < tb.key[other] {
				canon = i
			}
			tb.canon[i] = canon
			tb.canon[other] = canon
		} else {
			byEndpoints[ep] = i
		}
	}
	for _, pr := range problems {
		for _, tc := range pr.tcs {
			tb.addTC(tc)
			tb.addDst(tc.Dst)
		}
	}
	return tb
}

// addTC builds (once) the tcTables for tc.
func (tb *tables) addTC(tc topology.TrafficClass) {
	if _, ok := tb.tc[tc.Key()]; ok {
		return
	}
	t := &tcTables{vertices: []string{"SRC", "DST"}}
	vidx := map[string]int{"SRC": 0, "DST": 1}
	vertex := func(name string) int {
		if i, ok := vidx[name]; ok {
			return i
		}
		i := len(t.vertices)
		vidx[name] = i
		t.vertices = append(t.vertices, name)
		return i
	}
	linkIdx := map[string]int{}
	for i, s := range tb.slots {
		if !applicableTC(s, tc) {
			continue
		}
		k := len(t.slots)
		t.slots = append(t.slots, i)
		t.fromV = append(t.fromV, vertex(s.FromVertex()))
		t.toV = append(t.toV, vertex(s.ToVertex()))
		if s.Kind == arc.SlotInterDevice {
			name := tb.linkName[i]
			li, ok := linkIdx[name]
			if !ok {
				li = len(t.links)
				linkIdx[name] = li
				t.links = append(t.links, linkGroup{name: name})
			}
			t.links[li].positions = append(t.links[li].positions, k)
		}
	}
	t.byTail = make([][]int, len(t.vertices))
	t.byHead = make([][]int, len(t.vertices))
	for k := range t.slots {
		t.byTail[t.fromV[k]] = append(t.byTail[t.fromV[k]], k)
		t.byHead[t.toV[k]] = append(t.byHead[t.toV[k]], k)
	}
	tb.tc[tc.Key()] = t
}

// addDst builds (once) the dstTables for dst.
func (tb *tables) addDst(dst *topology.Subnet) {
	if _, ok := tb.dst[dst.Name]; ok {
		return
	}
	d := &dstTables{}
	for i, s := range tb.slots {
		if applicableDst(s, dst) {
			d.slots = append(d.slots, i)
		}
	}
	tb.dst[dst.Name] = d
}

// tablesFor returns tables covering the given policies directly (used by
// callers outside the Repair orchestration, e.g. tests).
func tablesFor(h *harc.HARC, policies []policy.Policy) *tables {
	pr := &problem{tcs: uniqueTCs(policies), policies: policies}
	return newTables(h, []*problem{pr})
}
