package core

import (
	"testing"

	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/smt/maxsat"
	"repro/internal/topology"
)

// figure2aPolicies returns EP1-EP4 from §2.2.
func figure2aPolicies(n *topology.Network) []policy.Policy {
	s, tt, u, r := n.Subnet("S"), n.Subnet("T"), n.Subnet("U"), n.Subnet("R")
	return []policy.Policy{
		{Kind: policy.AlwaysBlocked, TC: topology.TrafficClass{Src: s, Dst: u}},
		{Kind: policy.AlwaysWaypoint, TC: topology.TrafficClass{Src: s, Dst: tt}},
		{Kind: policy.KReachable, K: 2, TC: topology.TrafficClass{Src: s, Dst: tt}},
		{Kind: policy.PrimaryPath, Path: []string{"A", "B", "C"}, TC: topology.TrafficClass{Src: r, Dst: tt}},
	}
}

func repairFigure2a(t *testing.T, opts Options) (*harc.HARC, []policy.Policy, *Result) {
	t.Helper()
	n := topology.Figure2a()
	h := harc.Build(n)
	policies := figure2aPolicies(n)
	res, err := Repair(h, policies, opts)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !res.Solved {
		t.Fatalf("Repair unsolved: %+v", res.Stats)
	}
	return h, policies, res
}

func TestRepairFigure2aPerDst(t *testing.T) {
	h, policies, res := repairFigure2a(t, DefaultOptions())
	if v := VerifyRepair(h, res.State, policies); len(v) != 0 {
		t.Fatalf("repaired state still violates: %v", v)
	}
	// The paper's minimal repair (Figure 2d) needs a static route (one
	// dETG deviation), one cost adjustment, and one waypoint: 3 modeled
	// changes. Anything at or under 4 is acceptable minimality here; more
	// indicates a broken encoding.
	if res.Changes > 4 {
		t.Errorf("changes = %d, want <= 4 (Figure 2d scale)", res.Changes)
	}
	if res.Changes == 0 {
		t.Error("expected a nonzero repair")
	}
}

func TestRepairFigure2aAllTCs(t *testing.T) {
	opts := DefaultOptions()
	opts.Granularity = AllTCs
	h, policies, res := repairFigure2a(t, opts)
	if v := VerifyRepair(h, res.State, policies); len(v) != 0 {
		t.Fatalf("repaired state still violates: %v", v)
	}
	if res.Changes > 4 {
		t.Errorf("changes = %d, want <= 4", res.Changes)
	}
}

func TestRepairMinimalityAcrossGranularities(t *testing.T) {
	// Figure 9's claim: per-dst repairs change the same number of lines
	// as all-tcs repairs.
	_, _, resPer := repairFigure2a(t, DefaultOptions())
	opts := DefaultOptions()
	opts.Granularity = AllTCs
	_, _, resAll := repairFigure2a(t, opts)
	if resPer.Changes != resAll.Changes {
		t.Errorf("per-dst changes %d != all-tcs changes %d", resPer.Changes, resAll.Changes)
	}
}

func TestRepairFuMalikAgrees(t *testing.T) {
	optsL := DefaultOptions()
	_, _, resL := repairFigure2a(t, optsL)
	optsF := DefaultOptions()
	optsF.Algorithm = maxsat.FuMalik
	h, policies, resF := repairFigure2a(t, optsF)
	if resL.Changes != resF.Changes {
		t.Errorf("linear cost %d != fu-malik cost %d", resL.Changes, resF.Changes)
	}
	if v := VerifyRepair(h, resF.State, policies); len(v) != 0 {
		t.Fatalf("fu-malik repaired state violates: %v", v)
	}
}

func TestRepairSkipsSatisfiedDestinations(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	policies := figure2aPolicies(n)
	res, err := Repair(h, policies, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// EP1 (dst U) is satisfied: no problem for U should be formulated.
	for _, st := range res.Stats {
		if st.Label == "U" {
			t.Errorf("destination U should have been skipped: %+v", st)
		}
	}
	// Only the PC4-merged problem (destination T carries PC4) remains.
	if len(res.Stats) != 1 || res.Stats[0].Label != "pc4-merged" {
		t.Errorf("stats = %+v, want single pc4-merged problem", res.Stats)
	}
}

func TestRepairNothingToDo(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	// Only the satisfied policies.
	policies := figure2aPolicies(n)
	satisfied := []policy.Policy{policies[0]} // EP1 holds
	res, err := Repair(h, satisfied, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Changes != 0 || len(res.Stats) != 0 {
		t.Errorf("no-op repair: %+v", res)
	}
	// The state must be unchanged.
	orig := harc.StateOf(h)
	for k, v := range orig.All {
		if res.State.All[k] != v {
			t.Errorf("aETG slot %s changed in no-op repair", k)
		}
	}
}

func TestRepairPC1AddsBlock(t *testing.T) {
	// Require S->T always blocked (currently reachable): the repair must
	// cut every path.
	n := topology.Figure2a()
	h := harc.Build(n)
	p := policy.Policy{Kind: policy.AlwaysBlocked, TC: topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")}}
	res, err := Repair(h, []policy.Policy{p}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res.Stats)
	}
	if v := VerifyRepair(h, res.State, []policy.Policy{p}); len(v) != 0 {
		t.Fatalf("still violates: %v", v)
	}
	// Minimal block: one change (ACL on a single cut edge or the source
	// attachment).
	if res.Changes != 1 {
		t.Errorf("changes = %d, want 1", res.Changes)
	}
}

func TestRepairPC1DoesNotBreakSiblings(t *testing.T) {
	// Block S->T while R->T must stay reachable: the repair cannot just
	// kill the T routes.
	n := topology.Figure2a()
	h := harc.Build(n)
	s, tt, r := n.Subnet("S"), n.Subnet("T"), n.Subnet("R")
	ps := []policy.Policy{
		{Kind: policy.AlwaysBlocked, TC: topology.TrafficClass{Src: s, Dst: tt}},
		{Kind: policy.KReachable, K: 1, TC: topology.TrafficClass{Src: r, Dst: tt}},
	}
	res, err := Repair(h, ps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res.Stats)
	}
	if v := VerifyRepair(h, res.State, ps); len(v) != 0 {
		t.Fatalf("still violates: %v", v)
	}
}

func TestRepairPC3ViaStaticOrAdjacency(t *testing.T) {
	// Only EP3 (no PC4 constraint): per-dst mode must still find a repair
	// with the aETG frozen, via a static-backed dETG edge.
	n := topology.Figure2a()
	h := harc.Build(n)
	s, tt := n.Subnet("S"), n.Subnet("T")
	ps := []policy.Policy{{Kind: policy.KReachable, K: 2, TC: topology.TrafficClass{Src: s, Dst: tt}}}
	res, err := Repair(h, ps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res.Stats)
	}
	if v := VerifyRepair(h, res.State, ps); len(v) != 0 {
		t.Fatalf("still violates: %v", v)
	}
	// The aETG must be untouched in per-dst mode.
	orig := harc.StateOf(h)
	for k, v := range orig.All {
		if res.State.All[k] != v {
			t.Errorf("per-dst repair changed aETG slot %s", k)
		}
	}
	// One dETG deviation (static route) suffices.
	if res.Changes != 1 {
		t.Errorf("changes = %d, want 1 (single static route)", res.Changes)
	}
}

func TestRepairPC4CostOnly(t *testing.T) {
	// Break EP4 by making A-C an adjacency with low cost, then ask only
	// for the primary path: the repair should adjust one cost.
	n := topology.Figure2a()
	delete(n.Device("C").Process(topology.OSPF, 10).Passive, "Ethernet0/1")
	h := harc.Build(n)
	r, tt := n.Subnet("R"), n.Subnet("T")
	ps := []policy.Policy{{Kind: policy.PrimaryPath, Path: []string{"A", "B", "C"}, TC: topology.TrafficClass{Src: r, Dst: tt}}}
	if len(policy.Violations(h, ps)) != 1 {
		t.Fatal("EP4 should be violated after enabling A-C")
	}
	res, err := Repair(h, ps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res.Stats)
	}
	if v := VerifyRepair(h, res.State, ps); len(v) != 0 {
		t.Fatalf("still violates: %v", v)
	}
	// A single change suffices: either a cost adjustment (Figure 2c
	// style) or a route filter removing the A->C edge for destination T.
	if res.Changes != 1 {
		t.Errorf("changes = %d, want 1", res.Changes)
	}
	costChanged := false
	orig := harc.StateOf(h)
	for k, v := range orig.Cost {
		if res.State.Cost[k] != v {
			costChanged = true
		}
	}
	edgeRemoved := false
	for k, v := range orig.Dst["T"] {
		if res.State.Dst["T"][k] != v {
			edgeRemoved = true
		}
	}
	tcKey := topology.TrafficClass{Src: r, Dst: tt}.Key()
	aclChanged := false
	for k, v := range orig.TC[tcKey] {
		if res.State.TC[tcKey][k] != v {
			aclChanged = true
		}
	}
	if !costChanged && !edgeRemoved && !aclChanged {
		t.Error("no cost, dETG edge, or ACL changed, yet EP4 was violated")
	}
}

func TestRepairUnsatisfiableSpec(t *testing.T) {
	// S->T simultaneously always-blocked and always-reachable: no repair
	// exists.
	n := topology.Figure2a()
	h := harc.Build(n)
	s, tt := n.Subnet("S"), n.Subnet("T")
	tc := topology.TrafficClass{Src: s, Dst: tt}
	ps := []policy.Policy{
		{Kind: policy.AlwaysBlocked, TC: tc},
		{Kind: policy.KReachable, K: 1, TC: tc},
	}
	res, err := Repair(h, ps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Error("contradictory spec should be unsolvable")
	}
}

func TestRepairParallelMatchesSequential(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	// Violate policies for two destinations: R->U must become reachable
	// (the ACL currently blocks it) and S->T must become 1-failure
	// tolerant.
	s, tt, u, r := n.Subnet("S"), n.Subnet("T"), n.Subnet("U"), n.Subnet("R")
	ps := []policy.Policy{
		{Kind: policy.KReachable, K: 1, TC: topology.TrafficClass{Src: r, Dst: u}},
		{Kind: policy.KReachable, K: 2, TC: topology.TrafficClass{Src: s, Dst: tt}},
	}
	seq, err := Repair(h, ps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Parallelism = 4
	par, err := Repair(h, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Changes != par.Changes {
		t.Errorf("sequential changes %d != parallel changes %d", seq.Changes, par.Changes)
	}
	if !par.Solved {
		t.Error("parallel repair unsolved")
	}
	if v := VerifyRepair(h, par.State, ps); len(v) != 0 {
		t.Errorf("parallel repaired state violates: %v", v)
	}
	if len(seq.Stats) != 2 || len(par.Stats) != 2 {
		t.Errorf("expected 2 problems, got %d and %d", len(seq.Stats), len(par.Stats))
	}
}

func TestRepairedStateHierarchyValid(t *testing.T) {
	h, _, res := repairFigure2a(t, DefaultOptions())
	if err := h.ValidateState(res.State); err != nil {
		t.Errorf("repaired state violates HARC hierarchy: %v", err)
	}
}

func TestGranularityString(t *testing.T) {
	if AllTCs.String() != "maxsmt-all-tcs" || PerDst.String() != "maxsmt-per-dst" {
		t.Error("Granularity strings wrong")
	}
}
