package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/generate"
)

// dcInstance returns the multi-destination data-center instance used by
// the isolation tests (the same shape as the ablation benchmark).
func dcInstance(t *testing.T) *generate.Instance {
	t.Helper()
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "isolate", Routers: 8, Subnets: 14,
		BlockedFrac: 0.3, FullyBlockedDsts: 2, Violations: 4, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestRepairCtxCancelMidFanoutPartialResult cancels the parent context
// while exactly K of N destination sub-problems have solved and checks
// the partial-result contract: RepairCtx returns ctx's error alongside a
// Result whose first K problems (in deterministic dispatch order) are
// solved and whose remaining problems are failed-as-cancelled, with the
// partial state verifying against exactly the solved policies — and no
// goroutines leaked by the abandoned fan-out.
func TestRepairCtxCancelMidFanoutPartialResult(t *testing.T) {
	inst := dcInstance(t)
	h := inst.Harc()
	opts := DefaultOptions() // per-dst, isolation on
	// The cancellation point below counts encode entries, which requires
	// sequential ordered dispatch.
	opts.Parallelism = 1

	baseline, err := Repair(h, inst.Policies, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := len(baseline.Stats)
	if n < 3 {
		t.Fatalf("instance decomposed into %d problems, need >= 3", n)
	}
	k := n / 2

	g0 := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The encoder enters exactly once per sub-problem attempt
	// (Parallelism 1, ordered dispatch): cancel the parent at the start
	// of problem k+1's encode, after k problems completed.
	var calls atomic.Int64
	faultinject.SetCallback(faultinject.CoreEncodeSlow, func() error {
		if calls.Add(1) == int64(k)+1 {
			cancel()
		}
		return nil
	})
	defer faultinject.Reset()

	res, rerr := RepairCtx(ctx, h, inst.Policies, opts)
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", rerr)
	}
	if res == nil {
		t.Fatal("cancelled isolated repair returned no partial result")
	}

	solved := 0
	for i, st := range res.Stats {
		switch st.Outcome {
		case OutcomeSolved:
			solved++
			// Ordered dispatch: the solved prefix matches the baseline's
			// problem order exactly.
			if st.Label != baseline.Stats[i].Label {
				t.Errorf("solved problem %d = %q, want %q (deterministic order)", i, st.Label, baseline.Stats[i].Label)
			}
		case OutcomeFailed:
			if !strings.Contains(st.Err, "cancelled") {
				t.Errorf("failed problem %q err = %q, want a cancellation error", st.Label, st.Err)
			}
		default:
			t.Errorf("problem %q outcome = %s, want solved or failed", st.Label, st.Outcome)
		}
	}
	if solved != k {
		t.Errorf("solved = %d problems, want exactly %d", solved, k)
	}
	if res.Failed != n-k {
		t.Errorf("failed = %d, want %d", res.Failed, n-k)
	}
	if res.Solved {
		t.Error("partial result claims Solved")
	}
	if !res.Usable() {
		t.Error("partial result with solved problems claims not usable")
	}
	if bad := VerifyRepair(h, res.State, res.Repaired); len(bad) != 0 {
		t.Errorf("partial state violates %d of its repaired policies (first: %s)", len(bad), bad[0])
	}

	// No goroutine leaks: the worker pool and watchdogs must all have
	// wound down (poll briefly — runtime bookkeeping can lag).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= g0+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d after cancelled fan-out, started with %d", runtime.NumGoroutine(), g0)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRepairIsolationMatchesLegacyWhenHealthy checks that with no
// faults injected the isolated driver returns the same repair as the
// legacy fail-fast driver.
func TestRepairIsolationMatchesLegacyWhenHealthy(t *testing.T) {
	inst := dcInstance(t)
	h := inst.Harc()

	iso := DefaultOptions()
	legacy := DefaultOptions()
	legacy.Isolation = IsolationOff

	r1, err := Repair(h, inst.Policies, iso)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Repair(h, inst.Policies, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Solved || !r2.Solved {
		t.Fatalf("solved: isolated=%v legacy=%v, want both", r1.Solved, r2.Solved)
	}
	if r1.Changes != r2.Changes {
		t.Errorf("changes: isolated=%d legacy=%d, want equal", r1.Changes, r2.Changes)
	}
	if len(r1.Stats) != len(r2.Stats) {
		t.Errorf("problems: isolated=%d legacy=%d, want equal", len(r1.Stats), len(r2.Stats))
	}
	if len(r1.Repaired) != len(inst.Policies) {
		t.Errorf("isolated Repaired covers %d policies, want all %d", len(r1.Repaired), len(inst.Policies))
	}
	if bad := VerifyRepair(h, r1.State, inst.Policies); len(bad) != 0 {
		t.Errorf("isolated repair violates %v", bad)
	}
}
