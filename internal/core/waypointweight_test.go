package core

import (
	"testing"

	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// TestWaypointWeightSteersRepair: with cheap waypoints (weight 1) the
// EP2+EP3 repair may place a firewall on A-C; with expensive waypoints
// the solver must find a middlebox-free repair if one exists, or pay up.
func TestWaypointWeightSteersRepair(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	s, tt := n.Subnet("S"), n.Subnet("T")
	ps := []policy.Policy{
		{Kind: policy.AlwaysWaypoint, TC: topology.TrafficClass{Src: s, Dst: tt}},
		{Kind: policy.KReachable, K: 2, TC: topology.TrafficClass{Src: s, Dst: tt}},
	}

	cheap := DefaultOptions()
	resCheap, err := Repair(h, ps, cheap)
	if err != nil {
		t.Fatal(err)
	}
	if !resCheap.Solved {
		t.Fatalf("cheap: unsolved: %+v", resCheap.Stats)
	}

	costly := DefaultOptions()
	costly.WaypointWeight = 10
	resCostly, err := Repair(h, ps, costly)
	if err != nil {
		t.Fatal(err)
	}
	if !resCostly.Solved {
		t.Fatalf("costly: unsolved: %+v", resCostly.Stats)
	}
	for _, res := range []*Result{resCheap, resCostly} {
		if v := VerifyRepair(h, res.State, ps); len(v) != 0 {
			t.Fatalf("repair violates %v", v)
		}
	}
	// Both satisfy the spec; the weighted objective must not be worse
	// under the weighting it optimizes: evaluate both states under the
	// costly weighting.
	weigh := func(res *Result) int {
		orig := harc.StateOf(h)
		cost := 0
		for name, v := range res.State.Waypoint {
			if v && !orig.Waypoint[name] {
				cost += 10
			}
		}
		return cost + nonWaypointChanges(h, orig, res.State)
	}
	if weigh(resCostly) > weigh(resCheap) {
		t.Errorf("costly-weighted repair (%d) should not lose to cheap repair (%d) under its own objective",
			weigh(resCostly), weigh(resCheap))
	}
}

// nonWaypointChanges approximates the line-level change count of a state
// (construct diffs, excluding waypoints).
func nonWaypointChanges(h *harc.HARC, a, b *harc.State) int {
	n := 0
	for k, v := range a.RouteFilter {
		if b.RouteFilter[k] != v {
			n++
		}
	}
	for k, v := range a.Static {
		if b.Static[k] != v {
			n++
		}
	}
	for k, v := range a.All {
		if b.All[k] != v {
			n++
		}
	}
	for tcKey, am := range a.TC {
		bm := b.TC[tcKey]
		for k, v := range am {
			if bm[k] != v {
				n++
			}
		}
	}
	for k, v := range a.Cost {
		if b.Cost[k] != v {
			n++
		}
	}
	return n
}
