package core

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/generate"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
)

// chaosSites are the failpoints the campaign must fire at least once
// (the server cache failpoint is covered by the server package's suite).
var chaosSites = []string{
	faultinject.SATSolvePanic,
	faultinject.SATSpuriousInterrupt,
	faultinject.SATBudgetStarve,
	faultinject.CoreEncodeError,
	faultinject.CoreEncodeSlow,
}

// chaosSeed returns the campaign's RNG seed: CHAOS_SEED if set (so a CI
// failure is replayable), 1 otherwise.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", env, err)
		}
		return seed
	}
	return 1
}

// checkChaosInvariants asserts what must hold after ANY isolated repair,
// faults or not: a result (never an error, never a crash), every
// sub-problem classified, counts consistent, and the partial state
// verified against exactly the policies the result claims repaired.
func checkChaosInvariants(t *testing.T, h *harc.HARC, res *Result, err error, round string) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: isolated repair returned error %v, want fault containment", round, err)
	}
	if res == nil {
		t.Fatalf("%s: nil result", round)
	}
	solved, degraded, failed := 0, 0, 0
	for _, st := range res.Stats {
		switch st.Outcome {
		case OutcomeSolved:
			solved++
		case OutcomeDegraded:
			degraded++
			if st.Fallback != "greedy" {
				t.Errorf("%s: degraded problem %q fallback = %q, want greedy", round, st.Label, st.Fallback)
			}
		case OutcomeFailed:
			failed++
			if st.Err == "" {
				t.Errorf("%s: failed problem %q has no error", round, st.Label)
			}
		default:
			t.Errorf("%s: problem %q has unclassified outcome %d", round, st.Label, st.Outcome)
		}
	}
	if degraded != res.Degraded || failed != res.Failed {
		t.Errorf("%s: counters degraded=%d failed=%d, stats say %d/%d", round, res.Degraded, res.Failed, degraded, failed)
	}
	if res.Solved != (degraded == 0 && failed == 0) {
		t.Errorf("%s: Solved=%v with %d degraded %d failed", round, res.Solved, degraded, failed)
	}
	if (solved > 0 || degraded > 0) != res.Usable() {
		t.Errorf("%s: Usable=%v with %d solved %d degraded", round, res.Usable(), solved, degraded)
	}
	if bad := VerifyRepair(h, res.State, res.Repaired); len(bad) != 0 {
		t.Errorf("%s: state violates %d repaired policies (first: %s)", round, len(bad), bad[0])
	}
}

// TestChaosCampaign drives the isolated repair pipeline through every
// failpoint — first one site at a time (finite then unlimited faults),
// then seeded random combinations — and checks after every round that
// faults were contained, outcomes are accurate, and every destination
// reported repaired actually verifies.
func TestChaosCampaign(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("chaos campaign seed %d (set CHAOS_SEED to replay)", seed)
	rng := rand.New(rand.NewSource(seed))

	inst := dcInstance(t)
	h := inst.Harc()
	opts := DefaultOptions()
	defer faultinject.Reset()

	specFor := func(site string, count int) string {
		prefix := ""
		if count > 0 {
			prefix = fmt.Sprintf("%d*", count)
		}
		switch site {
		case faultinject.SATSolvePanic:
			return prefix + "panic"
		case faultinject.CoreEncodeSlow:
			return prefix + "sleep(1ms)"
		default:
			return prefix + "error"
		}
	}

	// Phase 1: each site alone, finite count — retries must absorb the
	// fault and the repair still fully solves.
	for _, site := range chaosSites {
		faultinject.Reset()
		if err := faultinject.Set(site, specFor(site, 1)); err != nil {
			t.Fatal(err)
		}
		res, err := Repair(h, inst.Policies, opts)
		round := "finite " + site
		checkChaosInvariants(t, h, res, err, round)
		if !res.Solved {
			t.Errorf("%s: one transient fault was not absorbed by retries (degraded=%d failed=%d)",
				round, res.Degraded, res.Failed)
		}
	}

	// Phase 2: each site alone, unlimited — every attempt fails, so each
	// problem must land on the greedy fallback or be marked failed, with
	// the process never crashing.
	for _, site := range chaosSites {
		faultinject.Reset()
		if err := faultinject.Set(site, specFor(site, 0)); err != nil {
			t.Fatal(err)
		}
		res, err := Repair(h, inst.Policies, opts)
		round := "unlimited " + site
		checkChaosInvariants(t, h, res, err, round)
		if site == faultinject.CoreEncodeSlow {
			if !res.Solved {
				t.Errorf("%s: slow encode must not fail problems", round)
			}
		} else if res.Solved {
			t.Errorf("%s: repair claims fully solved under a permanent fault", round)
		}
	}

	// Phase 3: seeded random combinations of sites, counts, and budgets.
	for round := 0; round < 6; round++ {
		faultinject.Reset()
		armed := []string{}
		for _, site := range chaosSites {
			if rng.Intn(2) == 0 {
				continue
			}
			count := rng.Intn(4) // 0 = unlimited
			if err := faultinject.Set(site, specFor(site, count)); err != nil {
				t.Fatal(err)
			}
			armed = append(armed, specFor(site, count)+"@"+site)
		}
		o := opts
		if rng.Intn(2) == 0 {
			o.ConflictBudget = int64(1000 + rng.Intn(10000))
		}
		o.Parallelism = 1 + rng.Intn(4)
		res, err := Repair(h, inst.Policies, o)
		checkChaosInvariants(t, h, res, err, fmt.Sprintf("random round %d %v", round, armed))
	}

	// Coverage: the campaign must have fired every registered failpoint
	// (fired counts survive Reset by design).
	for _, site := range chaosSites {
		if faultinject.FiredCount(site) == 0 {
			t.Errorf("failpoint %s never fired during the campaign", site)
		}
	}
}

// TestDegradedFallbackVerifies pins the degradation path end to end on a
// deterministic instance: with the solver permanently starved, the PC3
// problem must fall back to the greedy baseline, be realized as
// per-destination constructs, and the merged state must satisfy the
// policy.
func TestDegradedFallbackVerifies(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	ps := []policy.Policy{{
		Kind: policy.KReachable, K: 2,
		TC: topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")},
	}}
	if err := faultinject.Set(faultinject.SATBudgetStarve, "error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	res, err := Repair(h, ps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 1 || res.Failed != 0 || res.Solved {
		t.Fatalf("degraded=%d failed=%d solved=%v, want exactly one degraded problem",
			res.Degraded, res.Failed, res.Solved)
	}
	st := res.Stats[0]
	if st.Outcome != OutcomeDegraded || st.Fallback != "greedy" {
		t.Errorf("stat = outcome %s fallback %q, want degraded via greedy", st.Outcome, st.Fallback)
	}
	if st.Attempts != defaultRetryAttempts {
		t.Errorf("attempts = %d, want %d (budget escalation exhausted)", st.Attempts, defaultRetryAttempts)
	}
	if st.Err == "" {
		t.Error("degraded stat lost the error that forced the fallback")
	}
	if !res.Usable() {
		t.Error("degraded result not usable")
	}
	if bad := VerifyRepair(h, res.State, ps); len(bad) != 0 {
		t.Fatalf("degraded state violates %v", bad)
	}
	if res.Changes == 0 {
		t.Error("degraded repair reports zero changes")
	}
}

// compressibleChaosInstance returns a broken k=4 fat-tree: small enough
// for the chaos suite, symmetric enough that the quotient builder finds
// real device classes, so compressed repairs reach the verification
// stage the failpoints below target.
func compressibleChaosInstance(t *testing.T) (*harc.HARC, []policy.Policy) {
	t.Helper()
	inst, err := generate.FatTree(generate.FatTreeOptions{K: 4, PC1: 2, PC2: 1, PC3: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := generate.BreakFatTree(inst, 3, 2); err != nil {
		t.Fatal(err)
	}
	return inst.Harc(), inst.Policies
}

// TestChaosQuotientVerifyFallback arms the quotient-verification
// failpoint (a simulated quotient/concrete disagreement before the
// spot-check) and pins the degraded path: every affected sub-problem
// falls back at stage "qverify", re-solves uncompressed to the same
// state the compress-off run produces, and nothing fallback-tainted is
// ever cached.
func TestChaosQuotientVerifyFallback(t *testing.T) {
	testCompressVerifyFallback(t, faultinject.CoreQVerifyError, "qverify")
}

// TestChaosSpotCheckDisagreement is the seeded spot-check-disagreement
// case: the quotient verification passes but the concrete spot-check
// member disagrees (simulated by the failpoint), so the sub-problem must
// fall back at stage "spot-check" and full concrete re-verification —
// the uncompressed re-solve — must take over.
func TestChaosSpotCheckDisagreement(t *testing.T) {
	testCompressVerifyFallback(t, faultinject.CoreSpotCheckError, "spot-check")
}

func testCompressVerifyFallback(t *testing.T, site, stage string) {
	h, ps := compressibleChaosInstance(t)

	off := DefaultOptions()
	off.Compress = CompressOff
	base, err := Repair(h, ps, off)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Solved {
		t.Fatalf("uncompressed baseline unsolved: %+v", base.Stats)
	}

	if err := faultinject.Set(site, "error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	opts := DefaultOptions()
	opts.Compress = CompressOn
	opts.Cache = NewSolveCache("chaos-qverify")
	res, err := Repair(h, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("verification fallback did not re-solve uncompressed: degraded=%d failed=%d",
			res.Degraded, res.Failed)
	}
	atStage := 0
	for _, st := range res.Stats {
		if st.Compressed {
			t.Errorf("problem %s accepted a quotient solve despite the armed %s failpoint", st.Label, site)
		}
		if st.CompressFallback == stage {
			atStage++
		}
	}
	if atStage == 0 {
		t.Fatalf("failpoint %s armed but no sub-problem fell back at stage %q (stats: %+v)",
			site, stage, res.Stats)
	}
	// The fallback path is full concrete re-solving, so the outcome must
	// be byte-identical to the compress-off optimum.
	if !reflect.DeepEqual(res.State, base.State) {
		t.Error("fallback state differs from the uncompressed repair")
	}
	if res.Changes != base.Changes {
		t.Errorf("fallback cost %d changes, uncompressed %d", res.Changes, base.Changes)
	}
	if bad := VerifyRepair(h, res.State, res.Repaired); len(bad) != 0 {
		t.Fatalf("fallback state violates %d repaired policies (first: %s)", len(bad), bad[0])
	}

	// Fallback-tainted outcomes must never be cached: with the fault
	// cleared, a repeat repair through the same cache must re-solve from
	// scratch (zero replays) and now compress cleanly.
	faultinject.Reset()
	res2, err := Repair(h, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reused != 0 {
		t.Errorf("replayed %d fallback-tainted sub-problems from the cache, want 0", res2.Reused)
	}
	if res2.Compressed == 0 {
		t.Errorf("clean re-run never compressed (fallbacks=%d)", res2.CompressFallbacks)
	}
	for _, st := range res2.Stats {
		if st.CompressFallback == stage {
			t.Errorf("problem %s still falls back at %q with the failpoint cleared", st.Label, stage)
		}
	}
	// The lossy quotient may cost more than the uncompressed optimum, so
	// the clean run is checked for soundness, not byte-identity.
	if bad := VerifyRepair(h, res2.State, res2.Repaired); len(bad) != 0 {
		t.Fatalf("clean compressed re-run violates %d repaired policies (first: %s)", len(bad), bad[0])
	}
}

// TestNoFallbackMarksFailed checks the DisableFallback escape hatch:
// with degradation off, a starved problem is failed, not silently
// greedy-repaired.
func TestNoFallbackMarksFailed(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	ps := []policy.Policy{{
		Kind: policy.KReachable, K: 2,
		TC: topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")},
	}}
	if err := faultinject.Set(faultinject.SATBudgetStarve, "error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	opts := DefaultOptions()
	opts.DisableFallback = true
	res, err := Repair(h, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Degraded != 0 || res.Usable() {
		t.Fatalf("failed=%d degraded=%d usable=%v, want one failed problem and nothing usable",
			res.Failed, res.Degraded, res.Usable())
	}
}
