package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/generate"
	"repro/internal/harc"
	"repro/internal/topology"
)

func TestRepairCtxPreCancelled(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RepairCtx(ctx, h, figure2aPolicies(n), DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRepairCtxDeadlineReachesSolver runs an all-tcs repair that
// normally takes seconds under a 50ms deadline: cancellation must
// propagate through the MaxSAT driver into the CDCL search loop (and the
// encoder's policy loop) so RepairCtx returns well under a second.
func TestRepairCtxDeadlineReachesSolver(t *testing.T) {
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "slow", Routers: 20, Subnets: 15, BlockedFrac: 0.3,
		FullyBlockedDsts: 1, Violations: 8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Granularity = AllTCs

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, rerr := RepairCtx(ctx, inst.Harc(), inst.Policies, opts)
	elapsed := time.Since(t0)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", rerr)
	}
	if elapsed >= time.Second {
		t.Fatalf("cancelled repair took %v, want well under 1s", elapsed)
	}
}
