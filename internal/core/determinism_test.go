package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/generate"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/smt/maxsat"
)

// determinismFixture is a corpus network with several violated
// destinations, so per-dst decomposition yields a real multi-problem
// fan-out (the same instance the ablation benchmarks use).
func determinismFixture(t *testing.T) (*harc.HARC, []policy.Policy) {
	t.Helper()
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "det", Routers: 8, Subnets: 14, BlockedFrac: 0.3,
		FullyBlockedDsts: 1, Violations: 4, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst.Harc(), inst.Policies
}

// comparable projects a Result onto its deterministic fields: everything
// except wall-clock durations. Vars, Softs, Violations, and Conflicts ARE
// included — the interned encoding is byte-identical across parallelism
// settings, so even solver-internal counters must agree.
type comparableResult struct {
	State    *harc.State
	Changes  int
	Solved   bool
	Degraded int
	Failed   int
	Repaired []policy.Policy
	Stats    []ProblemStat
}

func project(res *Result) comparableResult {
	stats := make([]ProblemStat, len(res.Stats))
	copy(stats, res.Stats)
	for i := range stats {
		stats[i].Duration = 0
		stats[i].Reused = false
		stats[i].HarcBuildNs = 0
		stats[i].EncodeNs = 0
		stats[i].SolveNs = 0
		stats[i].ConcretizeNs = 0
		stats[i].ReverifyNs = 0
	}
	return comparableResult{
		State:    res.State,
		Changes:  res.Changes,
		Solved:   res.Solved,
		Degraded: res.Degraded,
		Failed:   res.Failed,
		Repaired: res.Repaired,
		Stats:    stats,
	}
}

// TestRepairDeterministicAcrossParallelism pins the Parallelism contract:
// 1 worker, 4 workers, and the GOMAXPROCS default must produce identical
// results — same repaired state, same change count, same per-problem
// statistics — under fault isolation on and off, and with the
// incremental solve cache both absent and replaying (a cached replay
// must be byte-identical to the fresh solve it memoized, at every
// parallelism). Run with -race, this also exercises the shared
// read-only encoding tables and the solve cache's store/lookup path
// across workers.
func TestRepairDeterministicAcrossParallelism(t *testing.T) {
	h, ps := determinismFixture(t)
	freshRef := map[string]comparableResult{}
	for _, iso := range []IsolationMode{IsolationOn, IsolationOff} {
		// Compression is forced on (the 8-router fixture sits below the
		// auto threshold) so the quotient build, solve, and patch
		// concretization are all under the same byte-identical contract.
		for _, cmp := range []CompressMode{CompressOff, CompressOn} {
			// Compressed repairs accept patches via quotient-side
			// verification plus a concrete spot-check by default; the
			// CompressConcreteVerify leg re-runs the same repairs under the
			// full concrete oracle. Both must be byte-identical at every
			// parallelism (and to each other — checked via freshRef below,
			// since the verify mode never changes the accepted patch).
			cverifies := []bool{false}
			if cmp == CompressOn {
				cverifies = []bool{false, true}
			}
			for _, cverify := range cverifies {
				for _, inc := range []bool{false, true} {
					t.Run(fmt.Sprintf("isolation=%v/compress=%v/cverify=%v/incremental=%v", iso, cmp, cverify, inc), func(t *testing.T) {
						var ref comparableResult
						for i, par := range []int{1, 2, 4, 0} {
							opts := DefaultOptions()
							opts.Isolation = iso
							opts.Compress = cmp
							opts.CompressConcreteVerify = cverify
							opts.Parallelism = par
							if inc {
								// Fresh cache per parallelism setting: prime it with
								// one solve, then measure the replay. The replay must
								// reuse every sub-problem and match the fresh result
								// other runs produce without a cache.
								opts.Cache = NewSolveCache("det-epoch")
								if _, err := Repair(h, ps, opts); err != nil {
									t.Fatalf("prime Repair(parallelism=%d): %v", par, err)
								}
							}
							res, err := Repair(h, ps, opts)
							if err != nil {
								t.Fatalf("Repair(parallelism=%d): %v", par, err)
							}
							if !res.Solved {
								t.Fatalf("Repair(parallelism=%d) unsolved: %+v", par, res.Stats)
							}
							if inc && res.Reused != len(res.Stats) {
								t.Fatalf("Repair(parallelism=%d) replayed %d of %d problems, want all",
									par, res.Reused, len(res.Stats))
							}
							got := project(res)
							if i == 0 {
								ref = got
								continue
							}
							if !reflect.DeepEqual(got.State, ref.State) {
								t.Errorf("parallelism=%d: repaired state differs from parallelism=1", par)
							}
							if got.Changes != ref.Changes {
								t.Errorf("parallelism=%d: changes %d != %d", par, got.Changes, ref.Changes)
							}
							if !reflect.DeepEqual(got.Repaired, ref.Repaired) {
								t.Errorf("parallelism=%d: repaired policy set differs", par)
							}
							if !reflect.DeepEqual(got.Stats, ref.Stats) {
								t.Errorf("parallelism=%d: stats differ\n got %+v\nwant %+v", par, got.Stats, ref.Stats)
							}
							if got.Solved != ref.Solved || got.Degraded != ref.Degraded || got.Failed != ref.Failed {
								t.Errorf("parallelism=%d: outcome counts differ", par)
							}
						}
						// Every leg of an (isolation, compress) pair — cached
						// replays AND the concrete-verify variant — must equal
						// the first fresh solve of that pair.
						mode := fmt.Sprintf("%v/%v", iso, cmp)
						if fresh, ok := freshRef[mode]; !ok {
							freshRef[mode] = ref
						} else if !reflect.DeepEqual(ref, fresh) {
							t.Errorf("cverify=%v/incremental=%v differs from the fresh solve for %s", cverify, inc, mode)
						}
					})
				}
			}
		}
	}
}

// TestRepairDeterministicAcrossAlgorithmsAndParallelism extends the
// parallelism contract across the MaxSAT engine grid: within one
// algorithm the repair must be byte-identical at every Parallelism
// setting, and across algorithms — which may land on different
// equally-minimal models — the total cost (violated softs, i.e. modeled
// configuration changes) must agree and every repaired state must
// verify.
func TestRepairDeterministicAcrossAlgorithmsAndParallelism(t *testing.T) {
	h, ps := determinismFixture(t)
	costs := map[maxsat.Algorithm]int{}
	for _, algo := range []maxsat.Algorithm{maxsat.LinearDescent, maxsat.FuMalik, maxsat.OLL} {
		t.Run(algo.String(), func(t *testing.T) {
			var ref comparableResult
			for i, par := range []int{1, 3, 0} {
				opts := DefaultOptions()
				opts.Algorithm = algo
				opts.Parallelism = par
				res, err := Repair(h, ps, opts)
				if err != nil {
					t.Fatalf("Repair(%v, parallelism=%d): %v", algo, par, err)
				}
				if !res.Solved {
					t.Fatalf("Repair(%v, parallelism=%d) unsolved: %+v", algo, par, res.Stats)
				}
				if bad := VerifyRepair(h, res.State, ps); len(bad) != 0 {
					t.Fatalf("Repair(%v, parallelism=%d) still violates %v", algo, par, bad)
				}
				got := project(res)
				if i == 0 {
					ref = got
					for _, st := range res.Stats {
						costs[algo] += st.Violations
					}
					continue
				}
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%v: parallelism=%d differs from parallelism=1", algo, par)
				}
			}
		})
	}
	for _, algo := range []maxsat.Algorithm{maxsat.FuMalik, maxsat.OLL} {
		if costs[algo] != costs[maxsat.LinearDescent] {
			t.Errorf("%v repair cost %d != linear %d", algo, costs[algo], costs[maxsat.LinearDescent])
		}
	}
}

// TestRepairSharedTablesRace hammers the shared per-repair tables with
// more workers than problems; meaningful under -race, where any write to
// the read-only tables or the cloned base state during the fan-out is a
// reported data race.
func TestRepairSharedTablesRace(t *testing.T) {
	h, ps := determinismFixture(t)
	opts := DefaultOptions()
	opts.Parallelism = 8
	for i := 0; i < 2; i++ {
		res, err := Repair(h, ps, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			t.Fatalf("unsolved: %+v", res.Stats)
		}
		if v := VerifyRepair(h, res.State, ps); len(v) != 0 {
			t.Fatalf("repaired state violates: %v", v)
		}
	}
}
