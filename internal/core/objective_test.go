package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/translate"
)

// planDevices translates the repair against the Figure 2a configurations
// and counts the devices whose configuration the plan touches.
func planDevices(t *testing.T, h *harc.HARC, orig, repaired *harc.State) int {
	t.Helper()
	parsed, err := config.ParseFigure2a()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := map[string]*config.Config{}
	for _, c := range parsed {
		cfgs[c.Hostname] = c
	}
	plan, err := translate.Translate(h, orig, repaired, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	devs := map[string]bool{}
	for _, lc := range plan.Lines {
		devs[lc.Device] = true
	}
	return len(devs)
}

func TestMinDevicesObjective(t *testing.T) {
	// Block both S->T and R->T: per-line minimality is indifferent
	// between two ACLs at different devices and two at one device, but
	// MinDevices must concentrate the changes.
	n := topology.Figure2a()
	h := harc.Build(n)
	s, r, tt := n.Subnet("S"), n.Subnet("R"), n.Subnet("T")
	ps := []policy.Policy{
		{Kind: policy.AlwaysBlocked, TC: topology.TrafficClass{Src: s, Dst: tt}},
		{Kind: policy.AlwaysBlocked, TC: topology.TrafficClass{Src: r, Dst: tt}},
	}
	opts := DefaultOptions()
	opts.Objective = MinDevices
	res, err := Repair(h, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res.Stats)
	}
	if v := VerifyRepair(h, res.State, ps); len(v) != 0 {
		t.Fatalf("still violates: %v", v)
	}
	orig := harc.StateOf(h)
	devs := planDevices(t, h, orig, res.State)
	// Both classes can be blocked by touching a single device (e.g. one
	// route filter on C for T, or ACLs at one router).
	if res.Changes != 1 {
		t.Errorf("MinDevices cost = %d, want 1 (single-device repair exists)", res.Changes)
	}
	if devs != 1 {
		t.Errorf("plan touches %d devices, want 1", devs)
	}
}

func TestMinDevicesStillCorrect(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	ps := figure2aPolicies(n)
	opts := DefaultOptions()
	opts.Objective = MinDevices
	res, err := Repair(h, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %+v", res.Stats)
	}
	if v := VerifyRepair(h, res.State, ps); len(v) != 0 {
		t.Fatalf("still violates: %v", v)
	}
}

func TestObjectiveString(t *testing.T) {
	if MinLines.String() != "min-lines" || MinDevices.String() != "min-devices" {
		t.Error("Objective strings wrong")
	}
}
