package policy

import (
	"fmt"
	"strings"

	"repro/internal/arc"
	"repro/internal/graph"
	"repro/internal/harc"
	"repro/internal/topology"
)

// Explain returns a human-readable counterexample for a violated policy:
// the offending path (PC1/PC2/PC4), the smallest failure scenario found
// that disconnects the class (PC3), or a shared edge (Isolated). It
// returns ok=false when the policy actually holds.
func Explain(h *harc.HARC, p Policy) (witness string, ok bool) {
	etg := tcETGOf(h, p.TC)
	switch p.Kind {
	case AlwaysBlocked:
		path := etg.G.PathAvoiding(etg.Src, etg.Dst, nil)
		if path == nil {
			return "", false
		}
		return fmt.Sprintf("traffic can flow via %s", devicePath(etg, path)), true

	case AlwaysWaypoint:
		path := etg.G.PathAvoiding(etg.Src, etg.Dst, func(e graph.E) bool {
			return etg.WaypointEdge(e)
		})
		if path == nil {
			return "", false
		}
		return fmt.Sprintf("waypoint-free path exists via %s", devicePath(etg, path)), true

	case KReachable:
		links, found := findKFailure(etg, h.Network, p.K)
		if !found {
			return "", false
		}
		if len(links) == 0 {
			return "destination is unreachable even with no failures", true
		}
		names := make([]string, len(links))
		for i, l := range links {
			names[i] = l.Name()
		}
		return fmt.Sprintf("failing link(s) %s disconnects the class", strings.Join(names, ", ")), true

	case PrimaryPath:
		// Route selection ignores ACLs, so the witness comes from the
		// routing graph, not the tcETG.
		routing := arc.BuildRoutingETG(h.Slots, p.TC)
		path, unique := routing.G.ShortestPathUnique(routing.Src, routing.Dst)
		if path == nil {
			return "destination is unreachable", true
		}
		got := routing.DevicePath(path)
		want := strings.Join(p.Path, " -> ")
		if !unique {
			return fmt.Sprintf("multiple equal-cost shortest paths exist (one is %s); forwarding is ambiguous", strings.Join(got, " -> ")), true
		}
		if strings.Join(got, " -> ") != want {
			return fmt.Sprintf("traffic uses %s instead of %s", strings.Join(got, " -> "), want), true
		}
		if !arc.VerifyPrimaryPath(etg, routing, p.Path) {
			return "an ACL drops traffic on the primary path itself", true
		}
		return "", false

	case Isolated:
		other := tcETGOf(h, p.TC2)
		for key := range etg.EdgeOf {
			if _, shared := other.EdgeOf[key]; shared {
				return fmt.Sprintf("classes share edge %s", key), true
			}
		}
		return "", false
	}
	return "", false
}

// findKFailure returns a minimum-cardinality set of fewer than k failed
// links that disconnects SRC from DST (the most informative witness);
// found=false means the policy holds. The witness comes from the min-cut
// side of the same link-disjoint max-flow that decides PC3, so explaining
// a violation costs the same as verifying it.
func findKFailure(e *arc.ETG, n *topology.Network, k int) (links []*topology.Link, found bool) {
	return arc.MinLinkCut(e, k)
}

// devicePath renders an ETG vertex path as "SRC -> A -> B -> DST".
func devicePath(e *arc.ETG, path []graph.V) string {
	devs := e.DevicePath(path)
	return "SRC -> " + strings.Join(devs, " -> ") + " -> DST"
}

// ExplainAll renders one line per violated policy.
func ExplainAll(h *harc.HARC, policies []Policy) []string {
	var out []string
	for _, p := range policies {
		if w, violated := Explain(h, p); violated {
			out = append(out, fmt.Sprintf("%s: %s", p, w))
		}
	}
	return out
}
