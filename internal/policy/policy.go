// Package policy defines the reachability policy classes of Table 1
// (PC1-PC4), a textual specification format, verification against a HARC,
// and the policy-inference procedure the paper uses to derive
// specifications for networks whose operators' intent is unknown (§8).
package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arc"
	"repro/internal/harc"
	"repro/internal/topology"
)

// Kind is the policy class.
type Kind int

// Policy classes (Table 1).
const (
	// AlwaysBlocked (PC1): traffic from SRC to DST is always blocked.
	AlwaysBlocked Kind = iota + 1
	// AlwaysWaypoint (PC2): traffic from SRC to DST always traverses a
	// waypoint.
	AlwaysWaypoint
	// KReachable (PC3): SRC can always reach DST when there are < K link
	// failures.
	KReachable
	// PrimaryPath (PC4): traffic from SRC to DST uses the given device
	// path in the absence of failures.
	PrimaryPath
	// Isolated requires two traffic classes to share no ETG edge (the
	// additional policy sketched at the end of §5.1:
	// edge_tc1 ⇒ ¬edge_tc2 for every edge, and vice versa).
	Isolated
)

func (k Kind) String() string {
	switch k {
	case AlwaysBlocked:
		return "PC1"
	case AlwaysWaypoint:
		return "PC2"
	case KReachable:
		return "PC3"
	case PrimaryPath:
		return "PC4"
	case Isolated:
		return "ISO"
	}
	return fmt.Sprintf("PC?(%d)", int(k))
}

// Policy is one operator requirement on one traffic class (or, for
// Isolated, a pair of traffic classes).
type Policy struct {
	Kind Kind
	TC   topology.TrafficClass
	K    int                   // KReachable: tolerate K-1 link failures
	Path []string              // PrimaryPath: device names in order
	TC2  topology.TrafficClass // Isolated: the second class
}

// String renders the policy in the specification syntax.
func (p Policy) String() string {
	switch p.Kind {
	case AlwaysBlocked:
		return fmt.Sprintf("always-blocked %s %s", p.TC.Src.Name, p.TC.Dst.Name)
	case AlwaysWaypoint:
		return fmt.Sprintf("always-waypoint %s %s", p.TC.Src.Name, p.TC.Dst.Name)
	case KReachable:
		return fmt.Sprintf("reachable %s %s %d", p.TC.Src.Name, p.TC.Dst.Name, p.K)
	case PrimaryPath:
		return fmt.Sprintf("primary-path %s %s %s", p.TC.Src.Name, p.TC.Dst.Name, strings.Join(p.Path, ","))
	case Isolated:
		return fmt.Sprintf("isolated %s %s %s %s", p.TC.Src.Name, p.TC.Dst.Name, p.TC2.Src.Name, p.TC2.Dst.Name)
	}
	return "?"
}

// Check verifies the policy against the HARC's current tcETG.
func Check(h *harc.HARC, p Policy) bool {
	if p.Kind == Isolated {
		return checkIsolated(tcETGOf(h, p.TC), tcETGOf(h, p.TC2))
	}
	if p.Kind == PrimaryPath {
		// PC4 compares against the routing graph: route selection is
		// ACL-blind, so the tcETG alone cannot decide which path traffic
		// takes.
		return arc.VerifyPrimaryPath(tcETGOf(h, p.TC), arc.BuildRoutingETG(h.Slots, p.TC), p.Path)
	}
	return checkETG(tcETGOf(h, p.TC), h.Network, p)
}

func tcETGOf(h *harc.HARC, tc topology.TrafficClass) *arc.ETG {
	if etg := h.TCETG(tc); etg != nil {
		return etg
	}
	return arc.BuildTCETG(h.Slots, tc)
}

// CheckState verifies the policy against the tcETG encoded in an explicit
// HARC state (used to validate repairs before translation).
func CheckState(h *harc.HARC, st *harc.State, p Policy) bool {
	etg := harc.BuildTCETGFromState(h, st, p.TC)
	if p.Kind == Isolated {
		return checkIsolated(etg, harc.BuildTCETGFromState(h, st, p.TC2))
	}
	if p.Kind == PrimaryPath {
		return arc.VerifyPrimaryPath(etg, harc.BuildRoutingETGFromState(h, st, p.TC), p.Path)
	}
	return checkETG(etg, h.Network, p)
}

// checkIsolated reports whether the two tcETGs share no edge slot
// (edge_tc1 ⇒ ¬edge_tc2 for every edge, §5.1).
func checkIsolated(a, b *arc.ETG) bool {
	for key := range a.EdgeOf {
		if _, shared := b.EdgeOf[key]; shared {
			return false
		}
	}
	return true
}

func checkETG(etg *arc.ETG, n *topology.Network, p Policy) bool {
	switch p.Kind {
	case AlwaysBlocked:
		return arc.VerifyAlwaysBlocked(etg)
	case AlwaysWaypoint:
		return arc.VerifyAlwaysWaypoint(etg)
	case KReachable:
		return arc.VerifyKReachable(etg, n, p.K)
	}
	return false
}

// Violations returns the subset of policies the HARC currently violates.
func Violations(h *harc.HARC, policies []Policy) []Policy {
	var out []Policy
	for _, p := range policies {
		if !Check(h, p) {
			out = append(out, p)
		}
	}
	return out
}

// Parse reads a specification: one policy per line, "#" comments, blank
// lines ignored. Subnet names must exist in the network.
func Parse(n *topology.Network, text string) ([]Policy, error) {
	var out []Policy
	for lineno, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		subnet := func(name string) (*topology.Subnet, error) {
			s := n.Subnet(name)
			if s == nil {
				return nil, fmt.Errorf("policy: line %d: unknown subnet %q", lineno+1, name)
			}
			return s, nil
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("policy: line %d: too few fields", lineno+1)
		}
		src, err := subnet(fields[1])
		if err != nil {
			return nil, err
		}
		dst, err := subnet(fields[2])
		if err != nil {
			return nil, err
		}
		p := Policy{TC: topology.TrafficClass{Src: src, Dst: dst}}
		switch fields[0] {
		case "always-blocked":
			p.Kind = AlwaysBlocked
		case "always-waypoint":
			p.Kind = AlwaysWaypoint
		case "reachable":
			p.Kind = KReachable
			if len(fields) != 4 {
				return nil, fmt.Errorf("policy: line %d: reachable wants SRC DST K", lineno+1)
			}
			if _, err := fmt.Sscanf(fields[3], "%d", &p.K); err != nil || p.K < 1 {
				return nil, fmt.Errorf("policy: line %d: bad K %q", lineno+1, fields[3])
			}
		case "primary-path":
			p.Kind = PrimaryPath
			if len(fields) != 4 {
				return nil, fmt.Errorf("policy: line %d: primary-path wants SRC DST DEV,DEV,...", lineno+1)
			}
			p.Path = strings.Split(fields[3], ",")
			for _, dev := range p.Path {
				if n.Device(dev) == nil {
					return nil, fmt.Errorf("policy: line %d: unknown device %q", lineno+1, dev)
				}
			}
		case "isolated":
			p.Kind = Isolated
			if len(fields) != 5 {
				return nil, fmt.Errorf("policy: line %d: isolated wants SRC1 DST1 SRC2 DST2", lineno+1)
			}
			src2, err := subnet(fields[3])
			if err != nil {
				return nil, err
			}
			dst2, err := subnet(fields[4])
			if err != nil {
				return nil, err
			}
			p.TC2 = topology.TrafficClass{Src: src2, Dst: dst2}
		default:
			return nil, fmt.Errorf("policy: line %d: unknown policy kind %q", lineno+1, fields[0])
		}
		out = append(out, p)
	}
	return out, nil
}

// Format renders policies in the specification syntax, one per line.
func Format(policies []Policy) string {
	var b strings.Builder
	for _, p := range policies {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Infer derives the PC1/PC3 policies a network currently satisfies, the
// procedure the paper applies to the real data-center snapshots (§8): a
// traffic class that is always blocked yields PC1; one that remains
// reachable under any single failure yields PC3 with K=2; one reachable
// only without failures yields PC3 with K=1. A traffic class cannot have
// both (PC1 and PC3 are mutually exclusive).
func Infer(n *topology.Network) []Policy {
	slots := arc.Slots(n)
	var out []Policy
	for _, tc := range n.TrafficClasses() {
		etg := arc.BuildTCETG(slots, tc)
		if arc.VerifyAlwaysBlocked(etg) {
			out = append(out, Policy{Kind: AlwaysBlocked, TC: tc})
			continue
		}
		if arc.VerifyKReachable(etg, n, 2) {
			out = append(out, Policy{Kind: KReachable, TC: tc, K: 2})
		} else {
			out = append(out, Policy{Kind: KReachable, TC: tc, K: 1})
		}
	}
	return out
}

// GroupByDst partitions policies by destination subnet, the granularity
// of the maxsmt-per-dst decomposition (§5.3). PC4 policies are all placed
// in the group of their destination, and GroupByDst reports whether more
// than one group would carry PC4 policies (which the decomposition must
// avoid by merging; see core.Repair).
func GroupByDst(policies []Policy) map[string][]Policy {
	groups := make(map[string][]Policy)
	for _, p := range policies {
		groups[p.TC.Dst.Name] = append(groups[p.TC.Dst.Name], p)
	}
	return groups
}

// SortedGroupNames returns group keys in deterministic order.
func SortedGroupNames(groups map[string][]Policy) []string {
	names := make([]string, 0, len(groups))
	for k := range groups {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// CountByKind tallies policies per class (used for Figure 6).
func CountByKind(policies []Policy) map[Kind]int {
	out := make(map[Kind]int)
	for _, p := range policies {
		out[p.Kind]++
	}
	return out
}
