package policy

import (
	"strings"
	"testing"

	"repro/internal/harc"
	"repro/internal/topology"
)

func ep(n *topology.Network) (ep1, ep2, ep3, ep4 Policy) {
	s, tt, u, r := n.Subnet("S"), n.Subnet("T"), n.Subnet("U"), n.Subnet("R")
	ep1 = Policy{Kind: AlwaysBlocked, TC: topology.TrafficClass{Src: s, Dst: u}}
	ep2 = Policy{Kind: AlwaysWaypoint, TC: topology.TrafficClass{Src: s, Dst: tt}}
	ep3 = Policy{Kind: KReachable, K: 2, TC: topology.TrafficClass{Src: s, Dst: tt}}
	ep4 = Policy{Kind: PrimaryPath, Path: []string{"A", "B", "C"}, TC: topology.TrafficClass{Src: r, Dst: tt}}
	return
}

func TestCheckFigure2aPolicies(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	ep1, ep2, ep3, ep4 := ep(n)
	if !Check(h, ep1) {
		t.Error("EP1 should hold")
	}
	if !Check(h, ep2) {
		t.Error("EP2 should hold")
	}
	if Check(h, ep3) {
		t.Error("EP3 should be violated")
	}
	if !Check(h, ep4) {
		t.Error("EP4 should hold")
	}
	v := Violations(h, []Policy{ep1, ep2, ep3, ep4})
	if len(v) != 1 || v[0].Kind != KReachable {
		t.Errorf("violations = %v, want just EP3", v)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	n := topology.Figure2a()
	ep1, ep2, ep3, ep4 := ep(n)
	text := Format([]Policy{ep1, ep2, ep3, ep4})
	parsed, err := Parse(n, text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(parsed) != 4 {
		t.Fatalf("parsed %d policies, want 4", len(parsed))
	}
	if Format(parsed) != text {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", Format(parsed), text)
	}
}

func TestParseIsolated(t *testing.T) {
	n := topology.Figure2a()
	parsed, err := Parse(n, "isolated S T R U\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0].Kind != Isolated {
		t.Fatalf("parsed = %v", parsed)
	}
	p := parsed[0]
	if p.TC.Src.Name != "S" || p.TC.Dst.Name != "T" || p.TC2.Src.Name != "R" || p.TC2.Dst.Name != "U" {
		t.Errorf("classes wrong: %+v", p)
	}
	if Format(parsed) != "isolated S T R U\n" {
		t.Errorf("format round trip: %q", Format(parsed))
	}
	if _, err := Parse(n, "isolated S T R\n"); err == nil {
		t.Error("short isolated should fail")
	}
	if _, err := Parse(n, "isolated S T R NOPE\n"); err == nil {
		t.Error("unknown subnet should fail")
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	n := topology.Figure2a()
	text := "# comment\n\nalways-blocked S U\n  # indented comment\n"
	parsed, err := Parse(n, text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(parsed) != 1 || parsed[0].Kind != AlwaysBlocked {
		t.Fatalf("parsed = %v", parsed)
	}
}

func TestParseErrors(t *testing.T) {
	n := topology.Figure2a()
	cases := []string{
		"always-blocked S NOPE",
		"always-blocked NOPE U",
		"reachable S T",
		"reachable S T zero",
		"reachable S T 0",
		"primary-path R T",
		"primary-path R T A,Z,C",
		"frobnicate S T",
		"short S",
	}
	for _, text := range cases {
		if _, err := Parse(n, text); err == nil {
			t.Errorf("expected error for %q", text)
		}
	}
}

func TestInferFigure2a(t *testing.T) {
	n := topology.Figure2a()
	inferred := Infer(n)
	if len(inferred) != 12 {
		t.Fatalf("inferred %d policies, want 12 (one per traffic class)", len(inferred))
	}
	byKey := map[string]Policy{}
	for _, p := range inferred {
		byKey[p.TC.Key()] = p
	}
	// S->U and R->U are blocked by the ACL (only path A->B blocks dst U).
	su := byKey[topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("U")}.Key()]
	if su.Kind != AlwaysBlocked {
		t.Errorf("S->U inferred %v, want PC1", su.Kind)
	}
	// S->T is reachable but not 1-failure tolerant: PC3 with K=1.
	st := byKey[topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")}.Key()]
	if st.Kind != KReachable || st.K != 1 {
		t.Errorf("S->T inferred %v K=%d, want PC3 K=1", st.Kind, st.K)
	}
	// No traffic class has multiple policies.
	if len(byKey) != len(inferred) {
		t.Error("a traffic class has multiple inferred policies")
	}
}

func TestInferredPoliciesHold(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	for _, p := range Infer(n) {
		if !Check(h, p) {
			t.Errorf("inferred policy %s does not hold", p)
		}
	}
}

func TestCheckStateMatchesCheck(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	st := harc.StateOf(h)
	ep1, ep2, ep3, ep4 := ep(n)
	for _, p := range []Policy{ep1, ep2, ep3, ep4} {
		if Check(h, p) != CheckState(h, st, p) {
			t.Errorf("Check and CheckState disagree on %s", p)
		}
	}
}

func TestGroupByDst(t *testing.T) {
	n := topology.Figure2a()
	ep1, ep2, ep3, ep4 := ep(n)
	groups := GroupByDst([]Policy{ep1, ep2, ep3, ep4})
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (U and T)", len(groups))
	}
	if len(groups["T"]) != 3 || len(groups["U"]) != 1 {
		t.Errorf("group sizes wrong: T=%d U=%d", len(groups["T"]), len(groups["U"]))
	}
	names := SortedGroupNames(groups)
	if len(names) != 2 || names[0] != "T" || names[1] != "U" {
		t.Errorf("sorted names = %v", names)
	}
}

func TestCountByKind(t *testing.T) {
	n := topology.Figure2a()
	ep1, ep2, ep3, ep4 := ep(n)
	counts := CountByKind([]Policy{ep1, ep2, ep3, ep4, ep1})
	if counts[AlwaysBlocked] != 2 || counts[AlwaysWaypoint] != 1 || counts[KReachable] != 1 || counts[PrimaryPath] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{AlwaysBlocked: "PC1", AlwaysWaypoint: "PC2", KReachable: "PC3", PrimaryPath: "PC4"} {
		if k.String() != want {
			t.Errorf("%d.String() = %s, want %s", k, k.String(), want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	n := topology.Figure2a()
	_, _, _, ep4 := ep(n)
	if !strings.Contains(ep4.String(), "A,B,C") {
		t.Errorf("PC4 string missing path: %s", ep4)
	}
}
