package policy

import (
	"strings"
	"testing"

	"repro/internal/harc"
	"repro/internal/topology"
)

func TestExplainSatisfiedPoliciesReturnFalse(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	ep1, ep2, _, ep4 := ep(n)
	for _, p := range []Policy{ep1, ep2, ep4} {
		if w, violated := Explain(h, p); violated {
			t.Errorf("%s holds but Explain returned %q", p, w)
		}
	}
}

func TestExplainPC3Violation(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	_, _, ep3, _ := ep(n)
	w, violated := Explain(h, ep3)
	if !violated {
		t.Fatal("EP3 is violated; Explain should produce a witness")
	}
	// Failing A-B or B-C disconnects S from T.
	if !strings.Contains(w, "A-B") && !strings.Contains(w, "B-C") {
		t.Errorf("witness should name a cut link: %q", w)
	}
}

func TestExplainPC1Violation(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	// S->T must be blocked (it is reachable): witness is the path.
	p := Policy{Kind: AlwaysBlocked, TC: topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")}}
	w, violated := Explain(h, p)
	if !violated {
		t.Fatal("policy is violated")
	}
	if !strings.Contains(w, "A") || !strings.Contains(w, "B") || !strings.Contains(w, "C") {
		t.Errorf("witness should show the A->B->C path: %q", w)
	}
}

func TestExplainPC2Violation(t *testing.T) {
	n := topology.Figure2a()
	// Remove the firewall: every S->T path is now waypoint-free.
	n.Link("B", "C").Waypoint = false
	h := harc.Build(n)
	p := Policy{Kind: AlwaysWaypoint, TC: topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")}}
	w, violated := Explain(h, p)
	if !violated {
		t.Fatal("policy is violated without the firewall")
	}
	if !strings.Contains(w, "waypoint-free") {
		t.Errorf("witness: %q", w)
	}
}

func TestExplainPC4Violation(t *testing.T) {
	n := topology.Figure2a()
	// Enable A-C: R->T now prefers the shorter A->C path.
	delete(n.Device("C").Process(topology.OSPF, 10).Passive, "Ethernet0/1")
	h := harc.Build(n)
	p := Policy{Kind: PrimaryPath, Path: []string{"A", "B", "C"}, TC: topology.TrafficClass{Src: n.Subnet("R"), Dst: n.Subnet("T")}}
	w, violated := Explain(h, p)
	if !violated {
		t.Fatal("EP4 is violated after enabling A-C")
	}
	if !strings.Contains(w, "A -> C") {
		t.Errorf("witness should show the A->C shortcut: %q", w)
	}
}

func TestExplainPC4Ambiguity(t *testing.T) {
	n := topology.Figure2a()
	// Enable A-C with cost exactly 2 so both paths tie.
	delete(n.Device("C").Process(topology.OSPF, 10).Passive, "Ethernet0/1")
	n.Device("A").Interface("Ethernet0/2").Cost = 2
	h := harc.Build(n)
	p := Policy{Kind: PrimaryPath, Path: []string{"A", "B", "C"}, TC: topology.TrafficClass{Src: n.Subnet("R"), Dst: n.Subnet("T")}}
	w, violated := Explain(h, p)
	if !violated {
		t.Fatal("equal-cost paths should violate PC4")
	}
	if !strings.Contains(w, "equal-cost") {
		t.Errorf("witness should mention ambiguity: %q", w)
	}
}

func TestExplainIsolation(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	p := Policy{
		Kind: Isolated,
		TC:   topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")},
		TC2:  topology.TrafficClass{Src: n.Subnet("R"), Dst: n.Subnet("T")},
	}
	w, violated := Explain(h, p)
	if !violated {
		t.Fatal("classes share edges")
	}
	if !strings.Contains(w, "share") {
		t.Errorf("witness: %q", w)
	}
}

func TestExplainAll(t *testing.T) {
	n := topology.Figure2a()
	h := harc.Build(n)
	ep1, ep2, ep3, ep4 := ep(n)
	lines := ExplainAll(h, []Policy{ep1, ep2, ep3, ep4})
	if len(lines) != 1 {
		t.Fatalf("expected 1 explanation (EP3), got %v", lines)
	}
	if !strings.Contains(lines[0], "PC3") && !strings.Contains(lines[0], "reachable") {
		t.Errorf("explanation should reference the policy: %q", lines[0])
	}
}

func TestExplainUnreachableDestination(t *testing.T) {
	n := topology.Figure2a()
	// Make T unreachable: filter T on all processes.
	for _, d := range n.Devices() {
		for _, p := range d.Processes {
			p.RouteFilters = append(p.RouteFilters, n.Subnet("T").Prefix)
		}
	}
	h := harc.Build(n)
	p := Policy{Kind: KReachable, K: 1, TC: topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")}}
	w, violated := Explain(h, p)
	if !violated {
		t.Fatal("T should be unreachable")
	}
	if !strings.Contains(w, "no failures") {
		t.Errorf("witness: %q", w)
	}
}
