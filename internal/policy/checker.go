package policy

import (
	"repro/internal/arc"
	"repro/internal/harc"
	"repro/internal/topology"
)

// StateChecker verifies a batch of policies against one explicit HARC
// state, caching the per-traffic-class ETGs it materializes: checking
// several policies on the same class builds each graph once instead of
// once per policy (CheckState's behavior). PC4 routing graphs are cached
// the same way. A StateChecker is not safe for concurrent use; parallel
// verifiers each keep their own.
type StateChecker struct {
	h       *harc.HARC
	st      *harc.State
	tc      map[string]*arc.ETG
	routing map[string]*arc.ETG
}

// NewStateChecker returns a checker over the given state. The state is
// read, never written, and must not be mutated while the checker lives
// (cached graphs would go stale).
func NewStateChecker(h *harc.HARC, st *harc.State) *StateChecker {
	return &StateChecker{h: h, st: st, tc: make(map[string]*arc.ETG)}
}

func (c *StateChecker) etg(tc topology.TrafficClass) *arc.ETG {
	key := tc.Key()
	if e, ok := c.tc[key]; ok {
		return e
	}
	e := harc.BuildTCETGFromState(c.h, c.st, tc)
	c.tc[key] = e
	return e
}

func (c *StateChecker) routingETG(tc topology.TrafficClass) *arc.ETG {
	key := tc.Key()
	if e, ok := c.routing[key]; ok {
		return e
	}
	if c.routing == nil {
		c.routing = make(map[string]*arc.ETG)
	}
	e := harc.BuildRoutingETGFromState(c.h, c.st, tc)
	c.routing[key] = e
	return e
}

// Check verifies one policy against the checker's state, equivalent to
// CheckState(h, st, p).
func (c *StateChecker) Check(p Policy) bool {
	etg := c.etg(p.TC)
	if p.Kind == Isolated {
		return checkIsolated(etg, c.etg(p.TC2))
	}
	if p.Kind == PrimaryPath {
		return arc.VerifyPrimaryPath(etg, c.routingETG(p.TC), p.Path)
	}
	return checkETG(etg, c.h.Network, p)
}
