package crosscheck

import (
	"fmt"
	"net/http/httptest"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/server"
)

// fleetWorkers is the replica count the fleet oracle routes across.
const fleetWorkers = 3

// CheckFleet runs the fleet-vs-single-node differential oracle for one
// seed: replay the same deterministic load mix (a) through a front tier
// routing across three in-process cprd workers — with one replica
// crash-aborted mid-repair by the server/repair-abort failpoint, so the
// run exercises failover — and (b) against one bare cprd; then require
// the canonical per-client operation traces to be byte-identical.
//
// This is the property the whole fleet design rests on: routing is a
// pure function of content address and ring state, worker answers are
// deterministic in the session contents, and therefore sharding,
// replication, failover, and reroutes must all be invisible in the
// answers. Latency may differ; bytes may not.
//
// A non-nil error is a *Divergence whose Files hold both traces.
func CheckFleet(seed int64) error {
	mixes := fleet.MixNames()
	opts := fleet.LoadOptions{
		Mix:      mixes[int(seed)%len(mixes)],
		Requests: 36,
		Clients:  2,
		Sessions: 2,
		Seed:     seed,
		Trace:    true,
	}

	// Phase A: the fleet, with one replica killed mid-repair. The
	// failpoint aborts exactly one /v1/repair connection — what a crashed
	// worker looks like to the front — and is exhausted before phase B.
	var names []string
	for i := 0; i < fleetWorkers; i++ {
		ts := httptest.NewServer(server.New(server.Config{}).Handler())
		defer ts.Close()
		names = append(names, ts.URL)
	}
	front := fleet.New(fleet.Config{Replicas: names})
	frontTS := httptest.NewServer(front.Handler())
	defer frontTS.Close()
	defer front.Close()

	if err := faultinject.Set(faultinject.ServerRepairAbort, "1*error"); err != nil {
		return divf("fleet", seed, "arming failpoint: %v", err)
	}
	defer faultinject.Clear(faultinject.ServerRepairAbort)

	fleetOpts := opts
	fleetOpts.Target = frontTS.URL
	fleetOpts.Chaos = true
	fleetReport, fleetTraces, err := fleet.RunLoad(fleetOpts)
	if err != nil {
		return divf("fleet", seed, "fleet load run failed: %v", err)
	}
	faultinject.Clear(faultinject.ServerRepairAbort)

	// Phase B: one bare cprd answering the identical schedule.
	single := httptest.NewServer(server.New(server.Config{}).Handler())
	defer single.Close()
	singleOpts := opts
	singleOpts.Target = single.URL
	singleReport, singleTraces, err := fleet.RunLoad(singleOpts)
	if err != nil {
		return divf("fleet", seed, "single-node load run failed: %v", err)
	}

	fail := func(format string, args ...interface{}) *Divergence {
		d := divf("fleet", seed, fmt.Sprintf("mix %s: %s", opts.Mix, fmt.Sprintf(format, args...)))
		d.Files = map[string]string{
			"fleet-trace.txt":  flattenTraces(fleetTraces),
			"single-trace.txt": flattenTraces(singleTraces),
			"fleet-report.txt": fleetReport.String(),
		}
		return d
	}

	if fleetReport.Errors != 0 {
		return fail("fleet run had %d failed requests (failover must mask the injected crash)", fleetReport.Errors)
	}
	if singleReport.Errors != 0 {
		return fail("single-node run had %d failed requests", singleReport.Errors)
	}
	if len(fleetTraces) != len(singleTraces) {
		return fail("trace client counts differ: fleet=%d single=%d", len(fleetTraces), len(singleTraces))
	}
	for c := range fleetTraces {
		if len(fleetTraces[c]) != len(singleTraces[c]) {
			return fail("client %d op counts differ: fleet=%d single=%d", c, len(fleetTraces[c]), len(singleTraces[c]))
		}
		for i := range fleetTraces[c] {
			if fleetTraces[c][i] != singleTraces[c][i] {
				return fail("client %d op %d diverges:\n fleet: %s\nsingle: %s", c, i, fleetTraces[c][i], singleTraces[c][i])
			}
		}
	}
	return nil
}

// flattenTraces renders per-client traces for reproducer artifacts.
func flattenTraces(traces [][]string) string {
	var b strings.Builder
	for c, tr := range traces {
		for i, line := range tr {
			fmt.Fprintf(&b, "client %d op %d: %s\n", c, i, line)
		}
	}
	return b.String()
}
