// Package crosscheck is the differential-testing subsystem: independent
// oracles that re-derive, by brute force or by simulation, results the
// production stack computes symbolically, and compare the two.
//
// Three oracles are provided, each driven by a single int64 seed so that
// every failure is reproducible from one number:
//
//   - CheckSAT: random small CNF instances solved by the CDCL engine
//     (internal/smt/sat) versus exhaustive enumeration, including a DIMACS
//     print/parse round trip and UNSAT-core sanity (the core must itself
//     be unsatisfiable).
//   - CheckMaxSAT: random weighted partial MaxSAT instances where both
//     exact algorithms (linear descent and Fu–Malik) must report the
//     exhaustive-search optimum, through a WCNF round trip.
//   - CheckRepair: an end-to-end repair oracle — generate a fat-tree
//     workload, break it, repair it with cpr.Repair, replay the recorded
//     patch onto an independent copy of the broken configurations, and
//     verify every policy by hop-by-hop simulation under bounded link
//     failures, plus a patch-minimality spot check.
//
// The oracles double as deterministic seeded tests and native go-fuzz
// targets (crosscheck_test.go), and cmd/cprfuzz drives long randomized
// campaigns over them.
package crosscheck

import "fmt"

// Divergence is a failed cross-check: the oracle and the production code
// disagreed (or an internal invariant broke while checking). It carries
// reproduction material for cmd/cprfuzz to write to disk.
type Divergence struct {
	// Oracle names the check that failed: "sat", "maxsat", or "repair".
	Oracle string
	// Seed reproduces the failure deterministically.
	Seed int64
	// Detail describes the disagreement.
	Detail string
	// Files holds reproducer artifacts by file name (DIMACS instances,
	// broken configurations, the policy specification).
	Files map[string]string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("crosscheck(%s, seed %d): %s", d.Oracle, d.Seed, d.Detail)
}

// divf builds a Divergence with a formatted detail message.
func divf(oracle string, seed int64, format string, args ...interface{}) *Divergence {
	return &Divergence{Oracle: oracle, Seed: seed, Detail: fmt.Sprintf(format, args...)}
}
