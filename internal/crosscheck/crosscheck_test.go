package crosscheck

import (
	"math/rand"
	"testing"
)

// Deterministic tier-1 sweeps: a fixed band of seeds per oracle, small
// enough to run in the regular test suite. cmd/cprfuzz runs the same
// checks over long randomized campaigns.

func TestSATOracleSeeds(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		if err := CheckSAT(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaxSATOracleSeeds(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		if err := CheckMaxSAT(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestArenaGCOracleSeeds(t *testing.T) {
	gcs, reductions, err := ArenaGCActivity(40)
	if err != nil {
		t.Fatal(err)
	}
	// The band must actually exercise the paths under test, or the oracle
	// is vacuous: the tiny reduceDB trigger and waste threshold are tuned
	// so dozens of compactions happen across 40 seeds.
	if gcs == 0 {
		t.Fatal("seed band never triggered an arena GC")
	}
	if reductions == 0 {
		t.Fatal("seed band never triggered a DB reduction")
	}
}

func TestRepairOracleSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("repair oracle is slow in -short mode")
	}
	for seed := int64(1); seed <= 6; seed++ {
		if err := CheckRepair(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIncrementalOracleSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("incremental oracle is slow in -short mode")
	}
	for seed := int64(1); seed <= 4; seed++ {
		if err := CheckIncremental(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompressOracleSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("compression oracle is slow in -short mode")
	}
	for seed := int64(1); seed <= 6; seed++ {
		if err := CheckCompress(seed); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBruteSATAgainstRandomModels sanity-checks the oracle's own brute
// force: for satisfiable instances found by enumeration, a concrete
// witness model must exist and satisfy every clause.
func TestBruteSATAgainstRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		inst := genCNF(rng)
		want := bruteSAT(inst.nVars, inst.clauses, nil)
		found := false
		for model := uint32(0); model < 1<<uint(inst.nVars); model++ {
			ok := true
			for _, c := range inst.clauses {
				if !satisfies(c, model) {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if found != want {
			t.Fatalf("bruteSAT disagrees with witness search on instance %d", i)
		}
	}
}

// TestMinimizerPreservesFailure plants a synthetic divergence detector
// shape: minimization must never return an instance that passes.
func TestMinimizerPreservesFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		inst := genCNF(rng)
		if checkCNF(inst) != "" {
			min := minimizeCNF(inst)
			if checkCNF(min) == "" {
				t.Fatalf("minimized instance passes but original failed (iteration %d)", i)
			}
		}
	}
}

// Native fuzz targets. Each consumes a single int64 seed — the corpus
// under testdata/fuzz pins the deterministic band, and `go test -fuzz`
// explores beyond it. Every discovered failure reproduces via
// `go run ./cmd/cprfuzz -oracle <name> -seed <seed> -n 1`.

func FuzzSAT(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckSAT(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzMaxSAT(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckMaxSAT(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzArenaGC(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckArenaGC(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzRepair(f *testing.F) {
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckRepair(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzCompress(f *testing.F) {
	// Seeds 1-4 predate quotient-side verification; 5-8 widen the pinned
	// band now that CheckCompress also cross-checks the quotient-verify
	// accept path against the full concrete re-verify.
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckCompress(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzIncremental(f *testing.F) {
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckIncremental(seed); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFleetOracleSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet oracle is slow in -short mode")
	}
	for seed := int64(1); seed <= 3; seed++ {
		if err := CheckFleet(seed); err != nil {
			t.Fatal(err)
		}
	}
}
