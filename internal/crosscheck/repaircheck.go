package crosscheck

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/config"
	"repro/internal/generate"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/simulate"
	"repro/internal/smt/maxsat"
	"repro/internal/topology"
	"repro/internal/translate"
)

// failBudget bounds the failure sets the simulation oracle enumerates for
// policies without their own k (PC1 and PC2): every subset of at most
// this many failed links is checked. PC3 uses its policy's K-1, making
// the PC3 check exact.
const failBudget = 2

// CheckRepair runs the end-to-end repair oracle for one seed:
//
//	generate fat-tree → break → cpr.Repair → replay patch → simulate.
//
// A non-nil error is a *Divergence whose Files contain the broken
// configurations and the policy specification.
func CheckRepair(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ftOpts := generate.FatTreeOptions{
		K:              4,
		SubnetsPerEdge: 1,
		PC1:            rng.Intn(2),
		PC2:            rng.Intn(2),
		PC3:            1 + rng.Intn(2), // ≥1 policy overall
		PC4:            rng.Intn(2),
		Seed:           seed,
	}
	inst, err := generate.FatTree(ftOpts)
	if err != nil {
		return divf("repair", seed, "fat-tree generation failed: %v", err)
	}
	breakCount := rng.Intn(3) // 0 = one per configured class
	if err := generate.BreakFatTree(inst, seed+1, breakCount); err != nil {
		return divf("repair", seed, "breaking the instance failed: %v", err)
	}
	brokenText := map[string]string{}
	for _, c := range inst.Configs {
		brokenText[c.Hostname] = c.Print()
	}

	opts := cpr.DefaultOptions()
	if rng.Intn(2) == 1 {
		opts.Algorithm = maxsat.FuMalik
	}
	granAll := rng.Intn(2) == 1
	if granAll {
		opts.Granularity = cpr.AllTCs
	}

	fail := func(format string, args ...interface{}) *Divergence {
		d := divf("repair", seed, format, args...)
		d.Files = map[string]string{"policies.txt": policy.Format(inst.Policies)}
		for host, text := range brokenText {
			d.Files[host+".cfg"] = text
		}
		return d
	}

	sys, err := cpr.Load(brokenText)
	if err != nil {
		return fail("broken configs do not re-load: %v", err)
	}
	policies, err := generate.RemapPolicies(inst.Policies, sys.Network)
	if err != nil {
		return fail("policy remap failed: %v", err)
	}
	out, err := sys.Repair(policies, opts)
	if err != nil {
		return fail("repair error (%s, %s): %v", opts.Granularity, opts.Algorithm, err)
	}
	if !out.Solved() {
		return fail("repair did not solve a repairable instance (%s, %s)", opts.Granularity, opts.Algorithm)
	}

	// Patch fidelity: replaying the recorded line changes onto an
	// independent parse of the broken configs must reproduce exactly the
	// patched configurations the translator emitted.
	applied, err := parseConfigs(brokenText)
	if err != nil {
		return fail("broken configs do not re-parse: %v", err)
	}
	if err := translate.ApplyPlan(applied, out.Plan); err != nil {
		return fail("recorded patch does not apply: %v", err)
	}
	for host, c := range applied {
		if got, want := c.Print(), out.PatchedConfigs[host]; got != want {
			return fail("replayed patch diverges from translator output on %s:\n--- replayed ---\n%s--- translated ---\n%s", host, got, want)
		}
	}

	// Ground truth: every patched configuration must re-parse, and every
	// policy must hold under hop-by-hop simulation with bounded failures.
	n2, ps2, err := loadPatched(out.PatchedConfigs, inst.Policies)
	if err != nil {
		return fail("patched configs do not load: %v", err)
	}
	if detail := simVerify(n2, ps2); detail != "" {
		return fail("patched network violates policy by simulation: %s", detail)
	}

	// Minimality spot check, valid only for the single-problem
	// decomposition (per-destination sub-problems are individually but not
	// jointly minimal): no patch group may be droppable while all
	// policies still hold on the abstraction the solver optimized.
	if granAll {
		if detail := checkMinimality(brokenText, inst.Policies, out.Plan); detail != "" {
			return fail("repair is not minimal: %s", detail)
		}
	}
	return nil
}

func parseConfigs(texts map[string]string) (map[string]*config.Config, error) {
	out := make(map[string]*config.Config, len(texts))
	for host, text := range texts {
		c, err := config.Parse(host+".cfg", text)
		if err != nil {
			return nil, err
		}
		out[host] = c
	}
	return out, nil
}

// loadPatched parses and extracts the patched configurations and rebinds
// the policies onto the resulting network.
func loadPatched(texts map[string]string, ps []policy.Policy) (*topology.Network, []policy.Policy, error) {
	cfgs, err := parseConfigs(texts)
	if err != nil {
		return nil, nil, err
	}
	var list []*config.Config
	for _, host := range sortedKeys(cfgs) {
		list = append(list, cfgs[host])
	}
	n, err := config.Extract(list)
	if err != nil {
		return nil, nil, err
	}
	remapped, err := generate.RemapPolicies(ps, n)
	if err != nil {
		return nil, nil, err
	}
	return n, remapped, nil
}

func sortedKeys(m map[string]*config.Config) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; maps are small
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// simVerify checks every policy against the forwarding simulator,
// exhaustively enumerating failure sets up to the policy's tolerance
// (PC3) or failBudget (PC1, PC2). It returns a description of the first
// violation, or "".
func simVerify(n *topology.Network, ps []policy.Policy) string {
	for _, p := range ps {
		switch p.Kind {
		case policy.AlwaysBlocked:
			if !simulate.BlockedUnderFailures(n, p.TC, failBudget) {
				return fmt.Sprintf("%s: delivered under some ≤%d-failure scenario", p, failBudget)
			}
		case policy.AlwaysWaypoint:
			if !simulate.WaypointUnderFailures(n, p.TC, failBudget) {
				return fmt.Sprintf("%s: delivered without a waypoint under some ≤%d-failure scenario", p, failBudget)
			}
		case policy.KReachable:
			// The ETG's k-reachability is pathset semantics: k disjoint
			// abstract paths guarantee that after any < k failures a usable
			// path SURVIVES — not that deterministic shortest-path routing
			// immediately takes it (an ACL on the preferred path drops
			// traffic without triggering any rerouting; routing routes
			// around failures, not around ACLs). The sound concrete reading:
			// from every ≤ K-1 failure scenario, delivery must be achievable
			// by failing a few additional links to steer routing onto the
			// surviving path.
			p := p
			ok := simulate.ForEachFailureSet(n, p.K-1, func(failed map[*topology.Link]bool) bool {
				return steerable(n, p.TC, failed, steerBudget)
			})
			if !ok {
				return fmt.Sprintf("%s: no surviving path under some ≤%d-failure scenario", p, p.K-1)
			}
		case policy.PrimaryPath:
			out, path, ambiguous := simulate.Forward(n, p.TC, nil)
			if out != simulate.Delivered {
				return fmt.Sprintf("%s: %v with no failures", p, out)
			}
			if !ambiguous && !equalPath(path, p.Path) {
				return fmt.Sprintf("%s: forwarding took %v", p, path)
			}
		}
	}
	return ""
}

// steerBudget bounds how many extra links the guided search may fail to
// steer routing onto a surviving path.
const steerBudget = 4

// steerable reports whether tc can be delivered from the given failure
// set, possibly after failing up to budget additional links. The search
// is guided: when the walk drops, the candidate links to fail are the
// next-hop choices of the devices along the observed walk (failing one
// makes its device reroute). The failed map is restored before returning.
func steerable(n *topology.Network, tc topology.TrafficClass, failed map[*topology.Link]bool, budget int) bool {
	out, path, _ := simulate.Forward(n, tc, failed)
	if out == simulate.Delivered {
		return true
	}
	if budget == 0 {
		return false
	}
	// Collect each walked device's current next-hop link.
	sim := simulate.New(n, tc.Dst, failed)
	var candidates []*topology.Link
	for _, name := range path {
		d := n.Device(name)
		if d == nil {
			continue
		}
		if l, hasRoute, _ := sim.NextHop(d); hasRoute && l != nil && !failed[l] {
			candidates = append(candidates, l)
		}
	}
	for _, l := range candidates {
		failed[l] = true
		ok := steerable(n, tc, failed, budget-1)
		delete(failed, l)
		if ok {
			return true
		}
	}
	return false
}

func equalPath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkMinimality verifies that no single patch group (one construct
// edit) can be dropped while the full specification still holds on the
// HARC — a compliant strictly-smaller patch would contradict the
// solver's claimed optimum. Waypoint placements are spot-checked the
// same way.
func checkMinimality(brokenText map[string]string, ps []policy.Policy, plan *translate.Plan) string {
	compliantWithout := func(skipGroup int, skipWaypoint int) (bool, error) {
		cfgs, err := parseConfigs(brokenText)
		if err != nil {
			return false, err
		}
		for gi, group := range plan.Groups {
			if gi == skipGroup {
				continue
			}
			for _, lc := range group {
				if err := cfgs[lc.Device].Apply(lc); err != nil {
					return false, err
				}
			}
		}
		for wi, group := range plan.WaypointLines {
			if wi == skipWaypoint {
				continue
			}
			for _, lc := range group {
				if err := cfgs[lc.Device].Apply(lc); err != nil {
					return false, err
				}
			}
		}
		texts := make(map[string]string, len(cfgs))
		for host, c := range cfgs {
			texts[host] = c.Print()
		}
		n, remapped, err := loadPatched(texts, ps)
		if err != nil {
			return false, err
		}
		return len(policy.Violations(harc.Build(n), remapped)) == 0, nil
	}
	for gi, group := range plan.Groups {
		ok, err := compliantWithout(gi, -1)
		if err != nil {
			// A group that cannot be dropped independently (later edits
			// depend on it) is by definition not redundant.
			continue
		}
		if ok {
			return fmt.Sprintf("dropping patch group %d (%v) still satisfies every policy", gi, group)
		}
	}
	for wi := range plan.WaypointLines {
		if len(plan.WaypointLines[wi]) == 0 {
			continue
		}
		ok, err := compliantWithout(-1, wi)
		if err != nil {
			continue
		}
		if ok {
			return fmt.Sprintf("dropping waypoint change %d (%s) still satisfies every policy", wi, plan.Waypoints[wi].Link)
		}
	}
	return ""
}
