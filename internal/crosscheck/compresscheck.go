package crosscheck

import (
	"repro"
	"repro/internal/core"
	"repro/internal/generate"
	"repro/internal/harc"
	"repro/internal/policy"

	"math/rand"
)

// CheckCompress runs the symmetry-compression oracle for one seed:
//
//	generate fat-tree → break → repair compressed AND uncompressed →
//	compare dispositions and independently verify the compressed patch.
//
// The two runs must agree on solvability, the compressed patch must
// satisfy every policy on an independently rebuilt HARC of the patched
// network, and — on odd seeds, which force a lossless quotient by keeping
// every class member as a representative — the compressed repair must
// cost exactly as many construct changes as the uncompressed optimum.
// Even seeds use the derived redundancy, where the concretized patch may
// legitimately cost more than the optimum but never less.
func CheckCompress(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ftOpts := generate.FatTreeOptions{
		K:              4,
		SubnetsPerEdge: 1,
		PC1:            rng.Intn(3),
		PC2:            rng.Intn(2),
		PC3:            1 + rng.Intn(2), // ≥1 policy overall
		PC4:            rng.Intn(2),
		Seed:           seed,
	}
	inst, err := generate.FatTree(ftOpts)
	if err != nil {
		return divf("compress", seed, "fat-tree generation failed: %v", err)
	}
	breakCount := rng.Intn(3) // 0 = one per configured class
	if err := generate.BreakFatTree(inst, seed+1, breakCount); err != nil {
		return divf("compress", seed, "breaking the instance failed: %v", err)
	}
	brokenText := map[string]string{}
	for _, c := range inst.Configs {
		brokenText[c.Hostname] = c.Print()
	}

	fail := func(format string, args ...interface{}) *Divergence {
		d := divf("compress", seed, format, args...)
		d.Files = map[string]string{"policies.txt": policy.Format(inst.Policies)}
		for host, text := range brokenText {
			d.Files[host+".cfg"] = text
		}
		return d
	}

	sys, err := cpr.Load(brokenText)
	if err != nil {
		return fail("broken configs do not re-load: %v", err)
	}
	policies, err := generate.RemapPolicies(inst.Policies, sys.Network)
	if err != nil {
		return fail("policy remap failed: %v", err)
	}

	// A k=4 fat-tree (20 devices) sits under the auto threshold, so force
	// compression on; odd seeds additionally keep every class member,
	// making the quotient lossless and its optimum exact.
	lossless := seed%2 != 0
	optsOn := cpr.DefaultOptions()
	optsOn.Compress = core.CompressOn
	if lossless {
		optsOn.CompressRedundancy = 1 << 20
	}
	optsOff := cpr.DefaultOptions()
	optsOff.Compress = core.CompressOff

	outOn, err := sys.Repair(policies, optsOn)
	if err != nil {
		return fail("compressed repair error: %v", err)
	}
	outOff, err := sys.Repair(policies, optsOff)
	if err != nil {
		return fail("uncompressed repair error: %v", err)
	}

	if outOn.Solved() != outOff.Solved() {
		return fail("solvability diverges: compressed solved=%v, uncompressed solved=%v",
			outOn.Solved(), outOff.Solved())
	}
	if !outOff.Solved() {
		return fail("uncompressed repair did not solve a repairable instance")
	}

	// Differential oracle for the quotient-side verifier: compressed
	// repairs accept concretized patches via quotient verification plus a
	// concrete spot-check by default, while CompressConcreteVerify re-runs
	// the full concrete check on every policy. The verifier only decides
	// acceptance — never the patch itself — so the two modes must agree
	// byte-for-byte on verdict, plan, and patched configurations.
	optsCv := optsOn
	optsCv.CompressConcreteVerify = true
	outCv, err := sys.Repair(policies, optsCv)
	if err != nil {
		return fail("concrete-verify repair error: %v", err)
	}
	if outCv.Solved() != outOn.Solved() {
		return fail("verify modes diverge on verdict: concrete solved=%v, quotient solved=%v",
			outCv.Solved(), outOn.Solved())
	}
	if outCv.Result.Changes != outOn.Result.Changes {
		return fail("verify modes diverge on cost: concrete %d changes, quotient %d",
			outCv.Result.Changes, outOn.Result.Changes)
	}
	if outCv.Plan.String() != outOn.Plan.String() {
		return fail("verify modes diverge on plan:\nconcrete:\n%s\nquotient:\n%s",
			outCv.Plan, outOn.Plan)
	}
	if len(outCv.PatchedConfigs) != len(outOn.PatchedConfigs) {
		return fail("verify modes diverge on patched config count: concrete %d, quotient %d",
			len(outCv.PatchedConfigs), len(outOn.PatchedConfigs))
	}
	for host, text := range outOn.PatchedConfigs {
		if outCv.PatchedConfigs[host] != text {
			return fail("verify modes diverge on patched config for %s", host)
		}
	}

	// Independent soundness check: the compressed patch, re-parsed from
	// text and rebuilt from scratch, must satisfy every policy.
	n2, ps2, err := loadPatched(outOn.PatchedConfigs, inst.Policies)
	if err != nil {
		return fail("compressed patched configs do not load: %v", err)
	}
	if bad := policy.Violations(harc.Build(n2), ps2); len(bad) != 0 {
		return fail("compressed patch violates %d policies (first: %s)", len(bad), bad[0])
	}

	onChanges, offChanges := outOn.Result.Changes, outOff.Result.Changes
	if lossless {
		if onChanges != offChanges {
			return fail("lossless quotient diverges from exact optimum: compressed %d changes, uncompressed %d",
				onChanges, offChanges)
		}
	} else if onChanges < offChanges {
		// The uncompressed run is the per-problem optimum; a concretized
		// patch claiming to beat it means an unsound accounting somewhere.
		return fail("compressed repair claims %d changes, below the uncompressed optimum %d",
			onChanges, offChanges)
	}
	return nil
}
