package crosscheck

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"

	"repro"
	"repro/internal/config"
	"repro/internal/generate"
	"repro/internal/policy"
	"repro/internal/smt/maxsat"
)

// incrementalSteps is how many config mutations each incremental-oracle
// run chains through one session.
const incrementalSteps = 3

// CheckIncremental runs the delta-vs-fresh differential oracle for one
// seed: generate a fat-tree, break it, then apply a random sequence of
// single-device config mutations; after each mutation, repair both
// through the long-lived incremental session (cpr.Session.Delta, solve
// cache warm) and through a cold cpr.NewSession of the same texts, and
// require byte-identical plans, patched configs, and verification
// verdicts. A final replay on the incremental session must reuse every
// sub-problem and still match.
//
// A non-nil error is a *Divergence whose Files contain the config set
// and policy specification at the diverging step.
func CheckIncremental(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ftOpts := generate.FatTreeOptions{
		K:              4,
		SubnetsPerEdge: 1,
		PC1:            rng.Intn(2),
		PC2:            rng.Intn(2),
		PC3:            1 + rng.Intn(2),
		PC4:            rng.Intn(2),
		Seed:           seed,
	}
	inst, err := generate.FatTree(ftOpts)
	if err != nil {
		return divf("incremental", seed, "fat-tree generation failed: %v", err)
	}
	if err := generate.BreakFatTree(inst, seed+1, rng.Intn(3)); err != nil {
		return divf("incremental", seed, "breaking the instance failed: %v", err)
	}
	texts := map[string]string{}
	for _, c := range inst.Configs {
		texts[c.Hostname] = c.Print()
	}

	opts := cpr.DefaultOptions()
	if rng.Intn(2) == 1 {
		opts.Algorithm = maxsat.FuMalik
	}

	fail := func(step int, format string, args ...interface{}) *Divergence {
		d := divf("incremental", seed, fmt.Sprintf("step %d: %s", step, fmt.Sprintf(format, args...)))
		d.Files = map[string]string{"policies.txt": policy.Format(inst.Policies)}
		for host, text := range texts {
			d.Files[host+".cfg"] = text
		}
		return d
	}

	sess, err := cpr.NewSession(texts)
	if err != nil {
		return fail(0, "broken configs do not load: %v", err)
	}

	// Subnet prefixes of the instance, for ACL mutations.
	prefixes := subnetPrefixes(texts)

	for step := 1; step <= incrementalSteps; step++ {
		host, mutated, derr := mutateOneDevice(rng, texts, prefixes)
		if derr != nil {
			return fail(step, "mutation failed: %v", derr)
		}
		texts[host] = mutated

		next, err := sess.Delta(map[string]string{host: mutated})
		if err != nil {
			return fail(step, "incremental delta failed: %v", err)
		}
		cold, err := cpr.NewSession(texts)
		if err != nil {
			return fail(step, "cold load of mutated configs failed: %v", err)
		}
		sess = next

		// Verification verdicts must agree between the incrementally
		// derived system and the cold one.
		incPolicies, err := generate.RemapPolicies(inst.Policies, sess.System().Network)
		if err != nil {
			return fail(step, "policy remap (incremental) failed: %v", err)
		}
		coldPolicies, err := generate.RemapPolicies(inst.Policies, cold.System().Network)
		if err != nil {
			return fail(step, "policy remap (cold) failed: %v", err)
		}
		incViolated := policyStrings(sess.System().Verify(incPolicies))
		coldViolated := policyStrings(cold.System().Verify(coldPolicies))
		if !reflect.DeepEqual(incViolated, coldViolated) {
			return fail(step, "verification verdicts diverge:\nincremental: %v\ncold: %v", incViolated, coldViolated)
		}

		incOut, incErr := sess.Repair(incPolicies, opts)
		coldOut, coldErr := cold.Repair(coldPolicies, opts)
		if (incErr == nil) != (coldErr == nil) {
			return fail(step, "repair errors diverge: incremental=%v cold=%v", incErr, coldErr)
		}
		if incErr != nil {
			if incErr.Error() != coldErr.Error() {
				return fail(step, "repair error texts diverge: incremental=%v cold=%v", incErr, coldErr)
			}
			continue
		}
		if detail := diffRepairs(coldOut, incOut); detail != "" {
			return fail(step, "incremental repair diverges from fresh solve: %s", detail)
		}

		// Immediate replay: every sub-problem just solved (or reused) must
		// now come from the cache, byte-identically.
		again, err := sess.Repair(incPolicies, opts)
		if err != nil {
			return fail(step, "replay repair failed: %v", err)
		}
		if again.Result.Reused != len(again.Result.Stats) {
			return fail(step, "replay reused %d of %d sub-problems, want all",
				again.Result.Reused, len(again.Result.Stats))
		}
		if detail := diffRepairs(coldOut, again); detail != "" {
			return fail(step, "replayed repair diverges from fresh solve: %s", detail)
		}
	}
	return nil
}

// diffRepairs compares two repair outputs for byte-identity (modulo
// timing and replay markers), returning a description of the first
// difference or "".
func diffRepairs(fresh, inc *cpr.RepairOutput) string {
	if fresh.Solved() != inc.Solved() {
		return fmt.Sprintf("solved: fresh=%v incremental=%v", fresh.Solved(), inc.Solved())
	}
	if fresh.Result.Changes != inc.Result.Changes {
		return fmt.Sprintf("changes: fresh=%d incremental=%d", fresh.Result.Changes, inc.Result.Changes)
	}
	if fresh.Result.Degraded != inc.Result.Degraded || fresh.Result.Failed != inc.Result.Failed {
		return fmt.Sprintf("dispositions: fresh=%d/%d incremental=%d/%d (degraded/failed)",
			fresh.Result.Degraded, fresh.Result.Failed, inc.Result.Degraded, inc.Result.Failed)
	}
	fp, ip := planString(fresh), planString(inc)
	if fp != ip {
		return fmt.Sprintf("plans differ:\n--- fresh ---\n%s\n--- incremental ---\n%s", fp, ip)
	}
	if !reflect.DeepEqual(fresh.PatchedConfigs, inc.PatchedConfigs) {
		for host, want := range fresh.PatchedConfigs {
			if got := inc.PatchedConfigs[host]; got != want {
				return fmt.Sprintf("patched config %s differs:\n--- fresh ---\n%s--- incremental ---\n%s", host, want, got)
			}
		}
		return "patched config sets differ in keys"
	}
	return ""
}

func planString(out *cpr.RepairOutput) string {
	if out.Plan == nil {
		return ""
	}
	return out.Plan.String()
}

func policyStrings(ps []policy.Policy) []string {
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.String())
	}
	return out
}

// subnetPrefixes collects the host-facing subnet prefixes declared in the
// config set, in deterministic order.
func subnetPrefixes(texts map[string]string) []netip.Prefix {
	var out []netip.Prefix
	for _, host := range sortedTextKeys(texts) {
		c, err := config.Parse(host, texts[host])
		if err != nil {
			continue
		}
		for _, is := range c.Interfaces {
			if is.Address.IsValid() && len(is.Description) > len(config.SubnetDescriptionPrefix) &&
				is.Description[:len(config.SubnetDescriptionPrefix)] == config.SubnetDescriptionPrefix {
				out = append(out, is.Address.Masked())
			}
		}
	}
	return out
}

func sortedTextKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// mutateOneDevice applies one random, always-loadable mutation to one
// device's configuration text and returns (host, new text). Candidate
// mutations are interface-cost changes, ACL deny toggles between subnet
// prefixes, and waypoint toggles — the same construct families the
// repair engine itself edits.
func mutateOneDevice(rng *rand.Rand, texts map[string]string, prefixes []netip.Prefix) (string, string, error) {
	hosts := sortedTextKeys(texts)
	// A mutation can be a no-op (e.g. removing an absent deny); retry a
	// few times so each step usually changes something.
	for attempt := 0; attempt < 8; attempt++ {
		host := hosts[rng.Intn(len(hosts))]
		c, err := config.Parse(host, texts[host])
		if err != nil {
			return "", "", err
		}
		var ifaces []*config.InterfaceStanza
		for _, is := range c.Interfaces {
			if !is.Shutdown && is.Address.IsValid() {
				ifaces = append(ifaces, is)
			}
		}
		if len(ifaces) == 0 {
			continue
		}
		intf := ifaces[rng.Intn(len(ifaces))]
		switch rng.Intn(4) {
		case 0:
			_, err = c.SetInterfaceCost(intf.Name, 1+rng.Intn(9))
		case 1:
			if len(prefixes) < 2 {
				continue
			}
			src := prefixes[rng.Intn(len(prefixes))]
			dst := prefixes[rng.Intn(len(prefixes))]
			dir := "in"
			if rng.Intn(2) == 1 {
				dir = "out"
			}
			_, err = c.AddACLDeny(intf.Name, dir, src, dst)
		case 2:
			if len(prefixes) < 2 {
				continue
			}
			src := prefixes[rng.Intn(len(prefixes))]
			dst := prefixes[rng.Intn(len(prefixes))]
			dir := "in"
			if rng.Intn(2) == 1 {
				dir = "out"
			}
			_, err = c.RemoveACLDeny(intf.Name, dir, src, dst)
		case 3:
			_, err = c.SetWaypoint(intf.Name, rng.Intn(2) == 1)
		}
		if err != nil {
			// Mutators reject some targets (e.g. no attached ACL); pick
			// another candidate.
			continue
		}
		mutated := c.Print()
		if mutated == texts[host] {
			continue
		}
		// The mutated set must still load (a parse/extract failure would
		// hit both sides identically but exercises nothing).
		trial := map[string]string{}
		for k, v := range texts {
			trial[k] = v
		}
		trial[host] = mutated
		if _, err := cpr.Load(trial); err != nil {
			continue
		}
		return host, mutated, nil
	}
	// All candidates degenerated to no-ops; re-submitting an unchanged
	// text is itself a valid (if boring) delta.
	host := hosts[rng.Intn(len(hosts))]
	return host, texts[host], nil
}
