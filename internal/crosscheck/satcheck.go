package crosscheck

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/smt/dimacs"
	"repro/internal/smt/sat"
)

// cnfInstance is one SAT-oracle test case: a CNF formula plus an
// assumption set for the incremental-solving and UNSAT-core checks.
type cnfInstance struct {
	nVars       int
	clauses     [][]sat.Lit
	assumptions []sat.Lit
}

// genCNF draws a random 1..3-SAT instance near the satisfiability
// threshold (clause/variable ratios both below and above it) so that SAT
// and UNSAT outcomes are exercised.
func genCNF(rng *rand.Rand) *cnfInstance {
	nVars := 3 + rng.Intn(8) // 3..10
	nClauses := 1 + rng.Intn(5*nVars)
	inst := &cnfInstance{nVars: nVars}
	for i := 0; i < nClauses; i++ {
		width := 1 + rng.Intn(3)
		seen := map[sat.Var]bool{}
		var clause []sat.Lit
		for len(clause) < width {
			v := sat.Var(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			clause = append(clause, sat.MkLit(v, rng.Intn(2) == 1))
		}
		inst.clauses = append(inst.clauses, clause)
	}
	// Up to nVars/2 assumption literals over distinct variables.
	nAsm := rng.Intn(nVars/2 + 1)
	seen := map[sat.Var]bool{}
	for len(inst.assumptions) < nAsm {
		v := sat.Var(rng.Intn(nVars))
		if seen[v] {
			continue
		}
		seen[v] = true
		inst.assumptions = append(inst.assumptions, sat.MkLit(v, rng.Intn(2) == 1))
	}
	return inst
}

// satisfies reports whether the assignment (bit i of model = value of
// variable i) satisfies the clause.
func satisfies(clause []sat.Lit, model uint32) bool {
	for _, l := range clause {
		val := model>>uint(l.Var())&1 == 1
		if val != l.Neg() {
			return true
		}
	}
	return false
}

// bruteSAT exhaustively decides satisfiability of clauses over nVars
// variables, with forced assumption literals.
func bruteSAT(nVars int, clauses [][]sat.Lit, assumptions []sat.Lit) bool {
	for model := uint32(0); model < 1<<uint(nVars); model++ {
		ok := true
		for _, a := range assumptions {
			if (model>>uint(a.Var())&1 == 1) == a.Neg() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, c := range clauses {
			if !satisfies(c, model) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// loadCNF builds a fresh solver holding the instance's clauses.
func loadCNF(inst *cnfInstance) *sat.Solver {
	s := sat.New()
	for i := 0; i < inst.nVars; i++ {
		s.NewVar()
	}
	for _, c := range inst.clauses {
		s.AddClause(c...)
	}
	return s
}

// checkCNF runs every SAT cross-check on one instance and returns a
// description of the first divergence, or "".
func checkCNF(inst *cnfInstance) string {
	wantSat := bruteSAT(inst.nVars, inst.clauses, nil)

	s := loadCNF(inst)
	st := s.Solve()
	if st == sat.Unknown {
		return "solver returned Unknown with no budget set"
	}
	if (st == sat.Sat) != wantSat {
		return fmt.Sprintf("plain solve: solver says %v, brute force says sat=%v", st, wantSat)
	}
	if st == sat.Sat {
		// Independent model check: every clause must hold under the model.
		var model uint32
		for v := 0; v < inst.nVars; v++ {
			if s.Value(sat.Var(v)) {
				model |= 1 << uint(v)
			}
		}
		for i, c := range inst.clauses {
			if !satisfies(c, model) {
				return fmt.Sprintf("model violates clause %d (%v)", i, c)
			}
		}
	}

	// DIMACS round trip: print, re-parse, compare, re-solve.
	p := &dimacs.Problem{NumVars: inst.nVars, Hard: inst.clauses}
	var buf bytes.Buffer
	if err := p.Print(&buf); err != nil {
		return fmt.Sprintf("dimacs print: %v", err)
	}
	p2, err := dimacs.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Sprintf("dimacs re-parse: %v", err)
	}
	if p2.NumVars != inst.nVars || len(p2.Hard) != len(inst.clauses) || len(p2.Soft) != 0 {
		return fmt.Sprintf("dimacs round trip changed shape: %d vars %d hard %d soft, want %d vars %d hard 0 soft",
			p2.NumVars, len(p2.Hard), len(p2.Soft), inst.nVars, len(inst.clauses))
	}
	for i, c := range p2.Hard {
		if len(c) != len(inst.clauses[i]) {
			return fmt.Sprintf("dimacs round trip changed clause %d width", i)
		}
		for j, l := range c {
			if l != inst.clauses[i][j] {
				return fmt.Sprintf("dimacs round trip changed clause %d literal %d: %v != %v", i, j, l, inst.clauses[i][j])
			}
		}
	}
	s2, _ := p2.Load()
	if st2 := s2.Solve(); (st2 == sat.Sat) != wantSat {
		return fmt.Sprintf("round-tripped instance: solver says %v, brute force says sat=%v", st2, wantSat)
	}

	// Assumption solve + UNSAT-core sanity on the original solver (this
	// also exercises incremental reuse after the first solve).
	wantAsmSat := bruteSAT(inst.nVars, inst.clauses, inst.assumptions)
	stAsm := s.Solve(inst.assumptions...)
	if (stAsm == sat.Sat) != wantAsmSat {
		return fmt.Sprintf("assumption solve: solver says %v under %v, brute force says sat=%v", stAsm, inst.assumptions, wantAsmSat)
	}
	if stAsm == sat.Unsat && wantSat {
		// A core only means something when the hard clauses alone are SAT.
		core := s.UnsatCore()
		inAsm := map[sat.Lit]bool{}
		for _, a := range inst.assumptions {
			inAsm[a] = true
		}
		for _, l := range core {
			if !inAsm[l] {
				return fmt.Sprintf("unsat core literal %v is not an assumption (%v)", l, inst.assumptions)
			}
		}
		if bruteSAT(inst.nVars, inst.clauses, core) {
			return fmt.Sprintf("unsat core %v is satisfiable with the clauses by brute force", core)
		}
	}
	return ""
}

// minimizeCNF greedily drops clauses and assumptions while the instance
// keeps failing, yielding a smaller reproducer.
func minimizeCNF(inst *cnfInstance) *cnfInstance {
	cur := &cnfInstance{nVars: inst.nVars}
	cur.clauses = append(cur.clauses, inst.clauses...)
	cur.assumptions = append(cur.assumptions, inst.assumptions...)
	for again := true; again; {
		again = false
		for i := 0; i < len(cur.clauses); i++ {
			cand := &cnfInstance{nVars: cur.nVars, assumptions: cur.assumptions}
			cand.clauses = append(append([][]sat.Lit{}, cur.clauses[:i]...), cur.clauses[i+1:]...)
			if checkCNF(cand) != "" {
				cur = cand
				again = true
				i--
			}
		}
		for i := 0; i < len(cur.assumptions); i++ {
			cand := &cnfInstance{nVars: cur.nVars, clauses: cur.clauses}
			cand.assumptions = append(append([]sat.Lit{}, cur.assumptions[:i]...), cur.assumptions[i+1:]...)
			if checkCNF(cand) != "" {
				cur = cand
				again = true
				i--
			}
		}
	}
	return cur
}

// renderCNF prints the instance in DIMACS form with the assumption set in
// a comment line.
func renderCNF(inst *cnfInstance) string {
	p := &dimacs.Problem{NumVars: inst.nVars, Hard: inst.clauses}
	var buf bytes.Buffer
	_ = p.Print(&buf)
	if len(inst.assumptions) > 0 {
		var asm []string
		for _, l := range inst.assumptions {
			v := int(l.Var()) + 1
			if l.Neg() {
				v = -v
			}
			asm = append(asm, fmt.Sprint(v))
		}
		return "c assumptions: " + strings.Join(asm, " ") + "\n" + buf.String()
	}
	return buf.String()
}

// CheckSAT runs the SAT differential oracle for one seed. A non-nil error
// is a *Divergence carrying a minimized DIMACS reproducer.
func CheckSAT(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	inst := genCNF(rng)
	detail := checkCNF(inst)
	if detail == "" {
		return nil
	}
	min := minimizeCNF(inst)
	d := divf("sat", seed, "%s (minimized to %d clauses, %d assumptions)",
		detail, len(min.clauses), len(min.assumptions))
	d.Files = map[string]string{"instance.cnf": renderCNF(min)}
	return d
}
