package crosscheck

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/smt/dimacs"
	"repro/internal/smt/maxsat"
	"repro/internal/smt/sat"
)

// genWCNF draws a random weighted partial MaxSAT instance: a handful of
// hard clauses (occasionally unsatisfiable on purpose) plus weighted soft
// clauses of width 1..2.
func genWCNF(rng *rand.Rand) *dimacs.Problem {
	nVars := 3 + rng.Intn(6) // 3..8
	p := &dimacs.Problem{NumVars: nVars}
	nHard := rng.Intn(2 * nVars)
	for i := 0; i < nHard; i++ {
		p.Hard = append(p.Hard, randClause(rng, nVars, 1+rng.Intn(3)))
	}
	nSoft := 1 + rng.Intn(2*nVars)
	for i := 0; i < nSoft; i++ {
		p.Soft = append(p.Soft, randClause(rng, nVars, 1+rng.Intn(2)))
		p.Weights = append(p.Weights, 1+rng.Intn(4))
	}
	return p
}

func randClause(rng *rand.Rand, nVars, width int) []sat.Lit {
	seen := map[sat.Var]bool{}
	var clause []sat.Lit
	for len(clause) < width {
		v := sat.Var(rng.Intn(nVars))
		if seen[v] {
			continue
		}
		seen[v] = true
		clause = append(clause, sat.MkLit(v, rng.Intn(2) == 1))
	}
	return clause
}

// bruteMaxSAT exhaustively finds the minimum violated soft weight over
// models of the hard clauses. ok is false when the hard clauses are
// unsatisfiable.
func bruteMaxSAT(p *dimacs.Problem) (best int, ok bool) {
	for model := uint32(0); model < 1<<uint(p.NumVars); model++ {
		sat := true
		for _, c := range p.Hard {
			if !satisfies(c, model) {
				sat = false
				break
			}
		}
		if !sat {
			continue
		}
		cost := 0
		for i, c := range p.Soft {
			if !satisfies(c, model) {
				cost += p.Weights[i]
			}
		}
		if !ok || cost < best {
			best, ok = cost, true
		}
	}
	return best, ok
}

// checkWCNF cross-checks one instance against all three exact
// algorithms and through a WCNF round trip; it returns the first
// divergence, or "".
func checkWCNF(p *dimacs.Problem) string {
	wantCost, wantSat := bruteMaxSAT(p)
	for _, algo := range []maxsat.Algorithm{maxsat.LinearDescent, maxsat.FuMalik, maxsat.OLL} {
		s, selectors := p.Load()
		res := maxsat.SolveWeighted(s, selectors, p.Weights, algo)
		if !wantSat {
			if res.Status != sat.Unsat {
				return fmt.Sprintf("%v: status %v on hard-unsat instance", algo, res.Status)
			}
			continue
		}
		if res.Status != sat.Sat {
			return fmt.Sprintf("%v: status %v, want Sat", algo, res.Status)
		}
		if res.Cost != wantCost {
			return fmt.Sprintf("%v: cost %d, brute-force optimum %d", algo, res.Cost, wantCost)
		}
		// Independent model audit: the optimal model must satisfy every
		// hard clause and violate exactly Cost worth of soft clauses.
		var model uint32
		for v := 0; v < p.NumVars; v++ {
			if s.Value(sat.Var(v)) {
				model |= 1 << uint(v)
			}
		}
		for i, c := range p.Hard {
			if !satisfies(c, model) {
				return fmt.Sprintf("%v: optimal model violates hard clause %d", algo, i)
			}
		}
		got := 0
		for i, c := range p.Soft {
			if !satisfies(c, model) {
				got += p.Weights[i]
			}
		}
		if got != res.Cost {
			return fmt.Sprintf("%v: model violates weight %d, reported cost %d", algo, got, res.Cost)
		}
	}

	// WCNF round trip: print, re-parse, re-solve, same optimum.
	var buf bytes.Buffer
	if err := p.Print(&buf); err != nil {
		return fmt.Sprintf("wcnf print: %v", err)
	}
	p2, err := dimacs.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Sprintf("wcnf re-parse: %v", err)
	}
	if p2.NumVars != p.NumVars || len(p2.Hard) != len(p.Hard) || len(p2.Soft) != len(p.Soft) {
		return fmt.Sprintf("wcnf round trip changed shape: %d/%d/%d, want %d/%d/%d",
			p2.NumVars, len(p2.Hard), len(p2.Soft), p.NumVars, len(p.Hard), len(p.Soft))
	}
	s2, sel2 := p2.Load()
	res2 := maxsat.SolveWeighted(s2, sel2, p2.Weights, maxsat.LinearDescent)
	if !wantSat {
		if res2.Status != sat.Unsat {
			return fmt.Sprintf("round-tripped instance: status %v on hard-unsat instance", res2.Status)
		}
	} else if res2.Status != sat.Sat || res2.Cost != wantCost {
		return fmt.Sprintf("round-tripped instance: status %v cost %d, want Sat cost %d", res2.Status, res2.Cost, wantCost)
	}
	return ""
}

// minimizeWCNF greedily drops hard and soft clauses while the instance
// keeps failing.
func minimizeWCNF(p *dimacs.Problem) *dimacs.Problem {
	cur := &dimacs.Problem{NumVars: p.NumVars}
	cur.Hard = append(cur.Hard, p.Hard...)
	cur.Soft = append(cur.Soft, p.Soft...)
	cur.Weights = append(cur.Weights, p.Weights...)
	for again := true; again; {
		again = false
		for i := 0; i < len(cur.Hard); i++ {
			cand := &dimacs.Problem{NumVars: cur.NumVars, Soft: cur.Soft, Weights: cur.Weights}
			cand.Hard = append(append([][]sat.Lit{}, cur.Hard[:i]...), cur.Hard[i+1:]...)
			if checkWCNF(cand) != "" {
				cur = cand
				again = true
				i--
			}
		}
		for i := 0; i < len(cur.Soft); i++ {
			cand := &dimacs.Problem{NumVars: cur.NumVars, Hard: cur.Hard}
			cand.Soft = append(append([][]sat.Lit{}, cur.Soft[:i]...), cur.Soft[i+1:]...)
			cand.Weights = append(append([]int{}, cur.Weights[:i]...), cur.Weights[i+1:]...)
			if checkWCNF(cand) != "" {
				cur = cand
				again = true
				i--
			}
		}
	}
	return cur
}

// genLargeWCNF draws a weighted instance too big for brute-force model
// enumeration but where exact engines can still be cross-checked against
// each other: 16..27 variables, clause width up to 3.
func genLargeWCNF(rng *rand.Rand) *dimacs.Problem {
	nVars := 16 + rng.Intn(12)
	p := &dimacs.Problem{NumVars: nVars}
	nHard := rng.Intn(3 * nVars)
	for i := 0; i < nHard; i++ {
		p.Hard = append(p.Hard, randClause(rng, nVars, 1+rng.Intn(3)))
	}
	nSoft := 1 + rng.Intn(2*nVars)
	for i := 0; i < nSoft; i++ {
		p.Soft = append(p.Soft, randClause(rng, nVars, 1+rng.Intn(2)))
		p.Weights = append(p.Weights, 1+rng.Intn(4))
	}
	return p
}

// checkEqualCost solves one instance with linear descent and OLL and
// demands an identical status and optimum — the scalable half of the
// oracle, used where brute force cannot reach.
func checkEqualCost(p *dimacs.Problem) string {
	s1, sel1 := p.Load()
	ref := maxsat.SolveWeighted(s1, sel1, p.Weights, maxsat.LinearDescent)
	s2, sel2 := p.Load()
	got := maxsat.SolveWeighted(s2, sel2, p.Weights, maxsat.OLL)
	if ref.Status != got.Status {
		return fmt.Sprintf("oll status %v, linear %v", got.Status, ref.Status)
	}
	if ref.Status == sat.Sat && ref.Cost != got.Cost {
		return fmt.Sprintf("oll cost %d, linear %d", got.Cost, ref.Cost)
	}
	return ""
}

// CheckMaxSAT runs the MaxSAT optimality oracle for one seed: a small
// instance checked against the brute-force optimum with every engine,
// then a larger instance where OLL must match linear descent's optimum
// exactly. A non-nil error is a *Divergence carrying a minimized WCNF
// reproducer.
func CheckMaxSAT(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	p := genWCNF(rng)
	if detail := checkWCNF(p); detail != "" {
		min := minimizeWCNF(p)
		var buf bytes.Buffer
		_ = min.Print(&buf)
		d := divf("maxsat", seed, "%s (minimized to %d hard, %d soft)", detail, len(min.Hard), len(min.Soft))
		d.Files = map[string]string{"instance.wcnf": buf.String()}
		return d
	}
	big := genLargeWCNF(rng)
	if detail := checkEqualCost(big); detail != "" {
		var buf bytes.Buffer
		_ = big.Print(&buf)
		d := divf("maxsat", seed, "large instance: %s (%d vars, %d hard, %d soft)",
			detail, big.NumVars, len(big.Hard), len(big.Soft))
		d.Files = map[string]string{"instance.wcnf": buf.String()}
		return d
	}
	return nil
}
