package crosscheck

import (
	"math/rand"

	"repro/internal/smt/sat"
)

// CheckArenaGC is the differential oracle for the solver's clause arena
// under incremental use: one solver, configured so aggressively (tiny
// reduceDB trigger, near-zero GC waste threshold) that learned-clause
// deletion and arena compactions happen constantly, is driven through
// interleaved AddClause batches and assumption solves. After every
// solve — i.e. after any number of reduceDB passes, watcher rebuilds,
// and reference remaps — its verdict and model are checked against the
// brute-force oracle over the cumulative clause set. A non-nil error is
// a *Divergence.
func CheckArenaGC(seed int64) error {
	_, _, err := runArenaGC(seed)
	return err
}

// ArenaGCActivity runs the oracle over seeds 1..n and also reports the
// total compactions and DB reductions triggered, so the seeded test can
// assert the band actually exercises the GC path rather than vacuously
// passing on instances that never compact.
func ArenaGCActivity(n int64) (gcs, reductions int64, err error) {
	for seed := int64(1); seed <= n; seed++ {
		g, r, cerr := runArenaGC(seed)
		gcs += g
		reductions += r
		if cerr != nil {
			return gcs, reductions, cerr
		}
	}
	return gcs, reductions, nil
}

func runArenaGC(seed int64) (gcs, reductions int64, err error) {
	rng := rand.New(rand.NewSource(seed))
	// Width-4 clauses near their satisfiability threshold: short clauses on
	// small instances learn mostly binaries (which bypass the arena) at
	// LBD ≤ coreLBD (which the reducer keeps forever), so only wide
	// threshold instances — deep decision stacks, little propagation until
	// late — accumulate the high-LBD arena learnts whose deletion feeds the
	// GC. 12..15 vars keeps brute force affordable.
	nVars := 12 + rng.Intn(4)
	s := sat.New()
	s.SetMaxLearned(1 + rng.Intn(4))
	s.SetGCWasteFraction(0.01)
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}

	var clauses [][]sat.Lit
	addOK := true
	addBatch := func(n int) {
		for i := 0; i < n; i++ {
			width := 4
			seen := map[sat.Var]bool{}
			var c []sat.Lit
			for len(c) < width {
				v := sat.Var(rng.Intn(nVars))
				if seen[v] {
					continue
				}
				seen[v] = true
				c = append(c, sat.MkLit(v, rng.Intn(2) == 1))
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				addOK = false
			}
		}
	}

	fail := func(d *Divergence) (int64, int64, error) {
		return s.ArenaGCs, s.DBReductions, d
	}
	addBatch(nVars*9 + rng.Intn(nVars))
	rounds := 5 + rng.Intn(5)
	for round := 0; round < rounds; round++ {
		var asm []sat.Lit
		seen := map[sat.Var]bool{}
		for n := rng.Intn(nVars / 2); len(asm) < n; {
			v := sat.Var(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			asm = append(asm, sat.MkLit(v, rng.Intn(2) == 1))
		}
		st := s.Solve(asm...)
		if st == sat.Unknown {
			return fail(divf("arenagc", seed, "round %d: Unknown with no budget set", round))
		}
		want := addOK && bruteSAT(nVars, clauses, asm)
		if (st == sat.Sat) != want {
			return fail(divf("arenagc", seed,
				"round %d (after %d GCs, %d reductions): solver says %v under %v, brute force says sat=%v",
				round, s.ArenaGCs, s.DBReductions, st, asm, want))
		}
		if st == sat.Sat {
			var model uint32
			for v := 0; v < nVars; v++ {
				if s.Value(sat.Var(v)) {
					model |= 1 << uint(v)
				}
			}
			for i, c := range clauses {
				if !satisfies(c, model) {
					return fail(divf("arenagc", seed,
						"round %d (after %d GCs): model violates clause %d (%v)",
						round, s.ArenaGCs, i, c))
				}
			}
			for _, a := range asm {
				if !s.ValueLit(a) {
					return fail(divf("arenagc", seed,
						"round %d (after %d GCs): model violates assumption %v",
						round, s.ArenaGCs, a))
				}
			}
		}
		if addOK && rng.Intn(3) > 0 {
			addBatch(1 + rng.Intn(6))
		}
	}
	return s.ArenaGCs, s.DBReductions, nil
}
