package graph

import (
	"container/heap"
	"math"
)

// Reachable returns, for every vertex, whether it is reachable from src
// along live edges. fn, if non-nil, filters edges: only edges for which
// fn returns true are traversed.
func (g *Digraph) Reachable(src V, fn func(E) bool) []bool {
	seen := make([]bool, len(g.names))
	if int(src) >= len(seen) || src < 0 {
		return seen
	}
	seen[src] = true
	stack := []V{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[v] {
			if g.removed[e] || (fn != nil && !fn(e)) {
				continue
			}
			to := g.edges[e].To
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return seen
}

// PathExists reports whether dst is reachable from src along live edges.
func (g *Digraph) PathExists(src, dst V) bool {
	if src < 0 || dst < 0 {
		return false
	}
	return g.Reachable(src, nil)[dst]
}

// PathExistsAvoiding reports whether dst is reachable from src using only
// edges for which avoid returns false.
func (g *Digraph) PathExistsAvoiding(src, dst V, avoid func(E) bool) bool {
	if src < 0 || dst < 0 {
		return false
	}
	return g.Reachable(src, func(e E) bool { return !avoid(e) })[dst]
}

// PathAvoiding returns the vertices of some src→dst path using only
// edges for which avoid returns false, or nil if none exists (BFS).
func (g *Digraph) PathAvoiding(src, dst V, avoid func(E) bool) []V {
	if src < 0 || dst < 0 {
		return nil
	}
	n := len(g.names)
	pred := make([]E, n)
	for i := range pred {
		pred[i] = E(None)
	}
	seen := make([]bool, n)
	seen[src] = true
	queue := []V{src}
	for len(queue) > 0 && !seen[dst] {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.out[v] {
			if g.removed[e] || (avoid != nil && avoid(e)) {
				continue
			}
			to := g.edges[e].To
			if !seen[to] {
				seen[to] = true
				pred[to] = e
				queue = append(queue, to)
			}
		}
	}
	if !seen[dst] {
		return nil
	}
	var rev []V
	for v := dst; ; {
		rev = append(rev, v)
		if v == src {
			break
		}
		v = g.edges[pred[v]].From
	}
	path := make([]V, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// Inf is the distance reported by Dijkstra for unreachable vertices.
const Inf = math.MaxInt64

type dijkstraItem struct {
	v    V
	dist int64
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int            { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x interface{}) { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest paths over live edges using
// Edge.Weight as the length (weights must be non-negative). It returns the
// distance to every vertex (Inf if unreachable) and the predecessor edge on
// a shortest path (None for src and unreachable vertices). Ties are broken
// by lower edge id, making the returned tree deterministic.
func (g *Digraph) Dijkstra(src V) (dist []int64, pred []E) {
	n := len(g.names)
	dist = make([]int64, n)
	pred = make([]E, n)
	for i := range dist {
		dist[i] = Inf
		pred[i] = E(None)
	}
	if src < 0 || int(src) >= n {
		return dist, pred
	}
	dist[src] = 0
	h := &dijkstraHeap{{v: src, dist: 0}}
	done := make([]bool, n)
	for h.Len() > 0 {
		it := heap.Pop(h).(dijkstraItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for _, e := range g.out[it.v] {
			if g.removed[e] {
				continue
			}
			ed := g.edges[e]
			nd := it.dist + ed.Weight
			if nd < dist[ed.To] || (nd == dist[ed.To] && pred[ed.To] != E(None) && e < pred[ed.To]) {
				dist[ed.To] = nd
				pred[ed.To] = e
				heap.Push(h, dijkstraItem{v: ed.To, dist: nd})
			}
		}
	}
	return dist, pred
}

// ShortestPath returns the vertices of a shortest src→dst path (inclusive),
// or nil if dst is unreachable.
func (g *Digraph) ShortestPath(src, dst V) []V {
	dist, pred := g.Dijkstra(src)
	if dst < 0 || int(dst) >= len(dist) || dist[dst] == Inf {
		return nil
	}
	var rev []V
	for v := dst; ; {
		rev = append(rev, v)
		if v == src {
			break
		}
		v = g.edges[pred[v]].From
	}
	path := make([]V, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// ShortestPathUnique reports whether the shortest src→dst path is unique,
// along with the path itself. It is used by the PC4 verifier: traffic
// deterministically follows P only when P is the strictly-best path.
func (g *Digraph) ShortestPathUnique(src, dst V) (path []V, unique bool) {
	dist, _ := g.Dijkstra(src)
	if dst < 0 || int(dst) >= len(dist) || dist[dst] == Inf {
		return nil, false
	}
	// Count, for each vertex on some shortest path, the number of tight
	// incoming edges; >1 anywhere on a shortest path to dst means ambiguity.
	path = g.ShortestPath(src, dst)
	unique = true
	for _, v := range path {
		if v == src {
			continue
		}
		tight := 0
		g.In(v, func(_ E, ed Edge) {
			if dist[ed.From] != Inf && dist[ed.From]+ed.Weight == dist[v] {
				tight++
			}
		})
		if tight > 1 {
			unique = false
		}
	}
	return path, unique
}

// MaxFlow computes the maximum src→dst flow with per-edge capacities given
// by cap (nil means capacity 1 for every live edge) using Edmonds–Karp.
// It returns the flow value and the per-edge flow assignment.
func (g *Digraph) MaxFlow(src, dst V, capacity func(E) int64) (int64, []int64) {
	n := len(g.names)
	flow := make([]int64, len(g.edges))
	if src < 0 || dst < 0 || src == dst {
		return 0, flow
	}
	capOf := func(e E) int64 {
		if capacity == nil {
			return 1
		}
		return capacity(e)
	}
	var total int64
	for {
		// BFS on the residual graph.
		predEdge := make([]E, n)
		predDir := make([]int8, n) // +1 forward, -1 backward
		for i := range predEdge {
			predEdge[i] = E(None)
		}
		queue := []V{src}
		visited := make([]bool, n)
		visited[src] = true
		found := false
	bfs:
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.out[v] {
				if g.removed[e] || flow[e] >= capOf(e) {
					continue
				}
				to := g.edges[e].To
				if !visited[to] {
					visited[to] = true
					predEdge[to] = e
					predDir[to] = 1
					if to == dst {
						found = true
						break bfs
					}
					queue = append(queue, to)
				}
			}
			for _, e := range g.in[v] {
				if g.removed[e] || flow[e] <= 0 {
					continue
				}
				from := g.edges[e].From
				if !visited[from] {
					visited[from] = true
					predEdge[from] = e
					predDir[from] = -1
					if from == dst {
						found = true
						break bfs
					}
					queue = append(queue, from)
				}
			}
		}
		if !found {
			return total, flow
		}
		// Bottleneck along the augmenting path.
		bottleneck := int64(math.MaxInt64)
		for v := dst; v != src; {
			e := predEdge[v]
			if predDir[v] == 1 {
				if r := capOf(e) - flow[e]; r < bottleneck {
					bottleneck = r
				}
				v = g.edges[e].From
			} else {
				if flow[e] < bottleneck {
					bottleneck = flow[e]
				}
				v = g.edges[e].To
			}
		}
		for v := dst; v != src; {
			e := predEdge[v]
			if predDir[v] == 1 {
				flow[e] += bottleneck
				v = g.edges[e].From
			} else {
				flow[e] -= bottleneck
				v = g.edges[e].To
			}
		}
		total += bottleneck
	}
}

// MinCut returns the edges of a minimum src→dst cut under the given
// capacities (nil means unit capacities): the live edges that cross from
// the src-side of the residual graph to the dst-side after max-flow.
func (g *Digraph) MinCut(src, dst V, capacity func(E) int64) []E {
	_, flow := g.MaxFlow(src, dst, capacity)
	capOf := func(e E) int64 {
		if capacity == nil {
			return 1
		}
		return capacity(e)
	}
	// Vertices reachable from src in the residual graph.
	n := len(g.names)
	visited := make([]bool, n)
	if src >= 0 && int(src) < n {
		visited[src] = true
		stack := []V{src}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.out[v] {
				if g.removed[e] || flow[e] >= capOf(e) {
					continue
				}
				if to := g.edges[e].To; !visited[to] {
					visited[to] = true
					stack = append(stack, to)
				}
			}
			for _, e := range g.in[v] {
				if g.removed[e] || flow[e] <= 0 {
					continue
				}
				if from := g.edges[e].From; !visited[from] {
					visited[from] = true
					stack = append(stack, from)
				}
			}
		}
	}
	var cut []E
	g.Edges(func(e E, ed Edge) {
		if visited[ed.From] && !visited[ed.To] && capOf(e) > 0 {
			cut = append(cut, e)
		}
	})
	return cut
}

// DisjointPaths decomposes a max-flow into edge sequences: up to the flow
// value many src→dst paths, pairwise disjoint on edges that carry unit
// capacity. capacity semantics match MaxFlow.
func (g *Digraph) DisjointPaths(src, dst V, capacity func(E) int64) [][]V {
	total, flow := g.MaxFlow(src, dst, capacity)
	remaining := append([]int64(nil), flow...)
	var paths [][]V
	for i := int64(0); i < total; i++ {
		// Walk a unit of flow from src to dst.
		path := []V{src}
		v := src
		for v != dst {
			advanced := false
			for _, e := range g.out[v] {
				if g.removed[e] || remaining[e] <= 0 {
					continue
				}
				remaining[e]--
				v = g.edges[e].To
				path = append(path, v)
				advanced = true
				break
			}
			if !advanced {
				return paths // flow decomposition exhausted (shouldn't happen)
			}
		}
		paths = append(paths, path)
	}
	return paths
}

// TopoSort returns a topological order of the live subgraph, or ok=false if
// it contains a cycle.
func (g *Digraph) TopoSort() (order []V, ok bool) {
	n := len(g.names)
	indeg := make([]int, n)
	g.Edges(func(_ E, ed Edge) { indeg[ed.To]++ })
	var queue []V
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, V(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		g.Out(v, func(_ E, ed Edge) {
			indeg[ed.To]--
			if indeg[ed.To] == 0 {
				queue = append(queue, ed.To)
			}
		})
	}
	return order, len(order) == n
}
