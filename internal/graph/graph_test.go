package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildDiamond(t *testing.T) (*Digraph, V, V, V, V) {
	t.Helper()
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	d := g.AddVertex("d")
	g.AddEdge(a, b, 1)
	g.AddEdge(a, c, 4)
	g.AddEdge(b, d, 1)
	g.AddEdge(c, d, 1)
	return g, a, b, c, d
}

func TestAddVertexIdempotent(t *testing.T) {
	g := New()
	v1 := g.AddVertex("x")
	v2 := g.AddVertex("x")
	if v1 != v2 {
		t.Fatalf("AddVertex not idempotent: %d vs %d", v1, v2)
	}
	if g.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d, want 1", g.NumVertices())
	}
}

func TestVertexLookup(t *testing.T) {
	g := New()
	g.AddVertex("x")
	if g.Vertex("x") == V(None) {
		t.Error("Vertex(x) not found")
	}
	if g.Vertex("y") != V(None) {
		t.Error("Vertex(y) should be None")
	}
	if !g.HasVertex("x") || g.HasVertex("y") {
		t.Error("HasVertex wrong")
	}
}

func TestEdgeAddRemoveRestore(t *testing.T) {
	g, a, b, _, _ := buildDiamond(t)
	e := g.FindEdge(a, b)
	if e == E(None) {
		t.Fatal("edge a->b not found")
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	g.RemoveEdge(e)
	if g.NumEdges() != 3 || g.EdgeLive(e) {
		t.Fatal("RemoveEdge did not take effect")
	}
	g.RemoveEdge(e) // idempotent
	if g.NumEdges() != 3 {
		t.Fatal("double RemoveEdge changed count")
	}
	g.RestoreEdge(e)
	if g.NumEdges() != 4 || !g.EdgeLive(e) {
		t.Fatal("RestoreEdge did not take effect")
	}
}

func TestPathExists(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	if !g.PathExists(a, d) {
		t.Error("a should reach d")
	}
	if g.PathExists(d, a) {
		t.Error("d should not reach a")
	}
	g.RemoveEdge(g.FindEdge(b, d))
	if !g.PathExists(a, d) {
		t.Error("a should still reach d via c")
	}
	g.RemoveEdge(g.FindEdge(c, d))
	if g.PathExists(a, d) {
		t.Error("a should no longer reach d")
	}
}

func TestPathExistsAvoiding(t *testing.T) {
	g, a, b, _, d := buildDiamond(t)
	viaB := g.FindEdge(a, b)
	if !g.PathExistsAvoiding(a, d, func(e E) bool { return e == viaB }) {
		t.Error("should reach d avoiding a->b")
	}
	bd := g.FindEdge(b, d)
	cd := g.FindEdge(g.Vertex("c"), d)
	if g.PathExistsAvoiding(a, d, func(e E) bool { return e == bd || e == cd }) {
		t.Error("should not reach d avoiding both final hops")
	}
}

func TestPathAvoiding(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	path := g.PathAvoiding(a, d, nil)
	if path == nil || path[0] != a || path[len(path)-1] != d {
		t.Fatalf("PathAvoiding = %v", path)
	}
	viaB := g.FindEdge(a, b)
	path = g.PathAvoiding(a, d, func(e E) bool { return e == viaB })
	if path == nil {
		t.Fatal("should find path via c")
	}
	if len(path) != 3 || path[1] != c {
		t.Errorf("path = %v, want a,c,d", path)
	}
	bd, cd := g.FindEdge(b, d), g.FindEdge(c, d)
	if p := g.PathAvoiding(a, d, func(e E) bool { return e == bd || e == cd }); p != nil {
		t.Errorf("no path should exist, got %v", p)
	}
	if p := g.PathAvoiding(V(None), d, nil); p != nil {
		t.Errorf("invalid src should give nil, got %v", p)
	}
	if p := g.PathAvoiding(a, a, nil); len(p) != 1 || p[0] != a {
		t.Errorf("self path = %v, want [a]", p)
	}
}

func TestDijkstraShortestPath(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	dist, _ := g.Dijkstra(a)
	if dist[d] != 2 {
		t.Fatalf("dist[d] = %d, want 2", dist[d])
	}
	path := g.ShortestPath(a, d)
	want := []string{"a", "b", "d"}
	if len(path) != len(want) {
		t.Fatalf("path length %d, want %d", len(path), len(want))
	}
	for i, v := range path {
		if g.Name(v) != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, g.Name(v), want[i])
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	dist, pred := g.Dijkstra(a)
	if dist[b] != Inf {
		t.Errorf("dist[b] = %d, want Inf", dist[b])
	}
	if pred[b] != E(None) {
		t.Errorf("pred[b] = %d, want None", pred[b])
	}
	if g.ShortestPath(a, b) != nil {
		t.Error("ShortestPath to unreachable vertex should be nil")
	}
}

func TestShortestPathUnique(t *testing.T) {
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	d := g.AddVertex("d")
	g.AddEdge(a, b, 1)
	g.AddEdge(b, d, 1)
	g.AddEdge(a, c, 1)
	g.AddEdge(c, d, 1)
	if _, unique := g.ShortestPathUnique(a, d); unique {
		t.Error("two equal-cost paths should not be unique")
	}
	g.SetWeight(g.FindEdge(a, c), 2)
	path, unique := g.ShortestPathUnique(a, d)
	if !unique {
		t.Error("single best path should be unique")
	}
	if len(path) != 3 || g.Name(path[1]) != "b" {
		t.Errorf("unexpected path %v", path)
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	flow, _ := g.MaxFlow(a, d, nil)
	if flow != 2 {
		t.Fatalf("max-flow = %d, want 2", flow)
	}
}

func TestMaxFlowWithCapacities(t *testing.T) {
	g := New()
	s := g.AddVertex("s")
	m := g.AddVertex("m")
	tv := g.AddVertex("t")
	e1 := g.AddEdge(s, m, 0)
	e2 := g.AddEdge(m, tv, 0)
	caps := map[E]int64{e1: 3, e2: 5}
	flow, _ := g.MaxFlow(s, tv, func(e E) int64 { return caps[e] })
	if flow != 3 {
		t.Fatalf("max-flow = %d, want 3", flow)
	}
}

func TestMaxFlowNeedsResidual(t *testing.T) {
	// Classic example where a greedy path must be partially undone.
	g := New()
	s := g.AddVertex("s")
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	tv := g.AddVertex("t")
	g.AddEdge(s, a, 0)
	g.AddEdge(s, b, 0)
	g.AddEdge(a, b, 0)
	g.AddEdge(a, tv, 0)
	g.AddEdge(b, tv, 0)
	flow, _ := g.MaxFlow(s, tv, nil)
	if flow != 2 {
		t.Fatalf("max-flow = %d, want 2", flow)
	}
}

func TestMinCut(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	cut := g.MinCut(a, d, nil)
	if len(cut) != 2 {
		t.Fatalf("min-cut size %d, want 2", len(cut))
	}
	for _, e := range cut {
		g.RemoveEdge(e)
	}
	if g.PathExists(a, d) {
		t.Error("removing the min-cut should disconnect a from d")
	}
}

func TestDisjointPaths(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	paths := g.DisjointPaths(a, d, nil)
	if len(paths) != 2 {
		t.Fatalf("got %d disjoint paths, want 2", len(paths))
	}
	used := map[[2]V]bool{}
	for _, p := range paths {
		if p[0] != a || p[len(p)-1] != d {
			t.Errorf("path endpoints wrong: %v", p)
		}
		for i := 0; i+1 < len(p); i++ {
			key := [2]V{p[i], p[i+1]}
			if used[key] {
				t.Errorf("edge %v reused across paths", key)
			}
			used[key] = true
		}
	}
}

func TestTopoSort(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("diamond is acyclic; TopoSort should succeed")
	}
	pos := make(map[V]int)
	for i, v := range order {
		pos[v] = i
	}
	if !(pos[a] < pos[b] && pos[a] < pos[c] && pos[b] < pos[d] && pos[c] < pos[d]) {
		t.Errorf("bad topological order %v", order)
	}
	g.AddEdge(d, a, 1)
	if _, ok := g.TopoSort(); ok {
		t.Error("cycle should make TopoSort fail")
	}
}

func TestClone(t *testing.T) {
	g, a, b, _, d := buildDiamond(t)
	c := g.Clone()
	c.RemoveEdge(c.FindEdge(a, b))
	if g.NumEdges() != 4 {
		t.Error("mutating clone affected original")
	}
	if c.NumEdges() != 3 {
		t.Error("clone edge removal failed")
	}
	if !g.PathExists(a, d) {
		t.Error("original should be unaffected")
	}
}

// randomGraph builds a pseudo-random DAG-ish digraph for property tests.
func randomGraph(r *rand.Rand, n int) *Digraph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && r.Intn(3) == 0 {
				g.AddEdge(V(i), V(j), int64(1+r.Intn(9)))
			}
		}
	}
	return g
}

// Property: max-flow value equals min-cut size under unit capacities,
// and removing the cut disconnects src from dst.
func TestMaxFlowMinCutDuality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		g := randomGraph(r, n)
		src, dst := V(0), V(n-1)
		flow, _ := g.MaxFlow(src, dst, nil)
		cut := g.MinCut(src, dst, nil)
		if int64(len(cut)) != flow {
			return false
		}
		for _, e := range cut {
			g.RemoveEdge(e)
		}
		return !g.PathExists(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Dijkstra distances obey the triangle inequality over every live
// edge, and each pred edge is tight.
func TestDijkstraRelaxationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := randomGraph(r, n)
		dist, pred := g.Dijkstra(0)
		ok := true
		g.Edges(func(_ E, ed Edge) {
			if dist[ed.From] != Inf && dist[ed.From]+ed.Weight < dist[ed.To] {
				ok = false
			}
		})
		for v := 1; v < n; v++ {
			if dist[v] != Inf && pred[v] != E(None) {
				ed := g.Edge(pred[v])
				if dist[ed.From]+ed.Weight != dist[v] {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: number of disjoint paths equals the max-flow value, and the
// paths are pairwise edge-disjoint.
func TestDisjointPathsMatchFlow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(7)
		g := randomGraph(r, n)
		src, dst := V(0), V(n-1)
		flow, _ := g.MaxFlow(src, dst, nil)
		paths := g.DisjointPaths(src, dst, nil)
		if int64(len(paths)) != flow {
			return false
		}
		type edgeKey struct{ a, b V }
		seen := map[edgeKey]int{}
		for _, p := range paths {
			for i := 0; i+1 < len(p); i++ {
				seen[edgeKey{p[i], p[i+1]}]++
			}
		}
		// Each directed vertex-pair may be reused only as often as there are
		// parallel edges; with random simple graphs this means at most once.
		for _, count := range seen {
			if count > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
