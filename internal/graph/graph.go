// Package graph provides the directed-graph substrate used by ARC and HARC:
// a compact digraph with named vertices and weighted edges, plus the
// algorithms Table 1 of the CPR paper needs (reachability, shortest paths,
// max-flow/min-cut, and edge-disjoint path extraction).
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// V identifies a vertex within a single Digraph.
type V int

// E identifies an edge within a single Digraph.
type E int

// None is returned by lookups that find no vertex or edge.
const None = -1

// Edge is a directed, weighted edge. Weight semantics are caller-defined
// (ETGs use routing costs; max-flow uses capacities supplied separately).
type Edge struct {
	From   V
	To     V
	Weight int64
}

// Digraph is a mutable directed multigraph with string-named vertices.
// The zero value is an empty graph ready to use.
type Digraph struct {
	names   []string
	index   map[string]V
	edges   []Edge
	removed []bool // removed[e] marks edge e as deleted without reindexing
	out     [][]E
	in      [][]E
	nlive   int
}

// New returns an empty digraph.
func New() *Digraph {
	return &Digraph{index: make(map[string]V)}
}

// NewWithCap returns an empty digraph with storage preallocated for nv
// vertices and ne edges. Capacities are hints: exceeding them is legal
// and merely grows the backing storage. Callers that build many graphs
// with known sizes (ETG construction) use this to avoid map rehashing
// and slice regrowth on the hot path.
func NewWithCap(nv, ne int) *Digraph {
	return &Digraph{
		names:   make([]string, 0, nv),
		index:   make(map[string]V, nv),
		edges:   make([]Edge, 0, ne),
		removed: make([]bool, 0, ne),
		out:     make([][]E, 0, nv),
		in:      make([][]E, 0, nv),
	}
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		names:   append([]string(nil), g.names...),
		index:   make(map[string]V, len(g.index)),
		edges:   append([]Edge(nil), g.edges...),
		removed: append([]bool(nil), g.removed...),
		out:     make([][]E, len(g.out)),
		in:      make([][]E, len(g.in)),
		nlive:   g.nlive,
	}
	for k, v := range g.index {
		c.index[k] = v
	}
	for i := range g.out {
		c.out[i] = append([]E(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]E(nil), g.in[i]...)
	}
	return c
}

// CloneEdgesShared returns a copy that shares g's vertex and edge
// storage but owns its removal flags: RemoveEdge/RestoreEdge on the
// copy do not affect g, and all read operations work. The copy must
// not have vertices or edges added to it. Use this instead of Clone
// for transient what-if queries (e.g. reachability under failed links),
// which only toggle removal flags.
func (g *Digraph) CloneEdgesShared() *Digraph {
	c := *g
	c.removed = append([]bool(nil), g.removed...)
	return &c
}

// AddVertex adds a vertex named name, or returns the existing vertex with
// that name.
func (g *Digraph) AddVertex(name string) V {
	if g.index == nil {
		g.index = make(map[string]V)
	}
	if v, ok := g.index[name]; ok {
		return v
	}
	v := V(len(g.names))
	g.names = append(g.names, name)
	g.index[name] = v
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return v
}

// Vertex returns the vertex named name, or None if absent.
func (g *Digraph) Vertex(name string) V {
	if v, ok := g.index[name]; ok {
		return v
	}
	return V(None)
}

// HasVertex reports whether a vertex named name exists.
func (g *Digraph) HasVertex(name string) bool { return g.Vertex(name) != V(None) }

// Name returns the name of vertex v.
func (g *Digraph) Name(v V) string { return g.names[v] }

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return len(g.names) }

// NumEdges returns the number of live (non-removed) edges.
func (g *Digraph) NumEdges() int { return g.nlive }

// AddEdge adds a directed edge from→to with the given weight and returns
// its id. Parallel edges are permitted.
func (g *Digraph) AddEdge(from, to V, weight int64) E {
	e := E(len(g.edges))
	g.edges = append(g.edges, Edge{From: from, To: to, Weight: weight})
	g.removed = append(g.removed, false)
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.nlive++
	return e
}

// RemoveEdge marks edge e as removed. Removing an already-removed edge is
// a no-op.
func (g *Digraph) RemoveEdge(e E) {
	if !g.removed[e] {
		g.removed[e] = true
		g.nlive--
	}
}

// RestoreEdge undoes RemoveEdge.
func (g *Digraph) RestoreEdge(e E) {
	if g.removed[e] {
		g.removed[e] = false
		g.nlive++
	}
}

// EdgeLive reports whether edge e is present (not removed).
func (g *Digraph) EdgeLive(e E) bool { return !g.removed[e] }

// Edge returns the endpoints and weight of edge e (live or removed).
func (g *Digraph) Edge(e E) Edge { return g.edges[e] }

// SetWeight updates the weight of edge e.
func (g *Digraph) SetWeight(e E, w int64) { g.edges[e].Weight = w }

// FindEdge returns the id of a live edge from→to, or None.
func (g *Digraph) FindEdge(from, to V) E {
	for _, e := range g.out[from] {
		if !g.removed[e] && g.edges[e].To == to {
			return e
		}
	}
	return E(None)
}

// Out calls fn for each live out-edge of v.
func (g *Digraph) Out(v V, fn func(e E, edge Edge)) {
	for _, e := range g.out[v] {
		if !g.removed[e] {
			fn(e, g.edges[e])
		}
	}
}

// In calls fn for each live in-edge of v.
func (g *Digraph) In(v V, fn func(e E, edge Edge)) {
	for _, e := range g.in[v] {
		if !g.removed[e] {
			fn(e, g.edges[e])
		}
	}
}

// Edges calls fn for each live edge.
func (g *Digraph) Edges(fn func(e E, edge Edge)) {
	for i := range g.edges {
		if !g.removed[i] {
			fn(E(i), g.edges[i])
		}
	}
}

// String renders the graph as "name -> name (w)" lines, sorted, for tests
// and debugging.
func (g *Digraph) String() string {
	var lines []string
	g.Edges(func(_ E, ed Edge) {
		lines = append(lines, fmt.Sprintf("%s -> %s (%d)", g.names[ed.From], g.names[ed.To], ed.Weight))
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
