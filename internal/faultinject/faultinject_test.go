package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() = true with nothing armed")
	}
	if err := Eval(SATSolvePanic); err != nil {
		t.Fatalf("Eval on disarmed registry = %v", err)
	}
}

func TestErrorKindAndCount(t *testing.T) {
	defer Reset()
	if err := Set(CoreEncodeError, "2*error"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Enabled() = false after Set")
	}
	before := FiredCount(CoreEncodeError)
	for i := 0; i < 2; i++ {
		if err := Eval(CoreEncodeError); !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: err = %v, want ErrInjected", i, err)
		}
	}
	// Count exhausted: the site is disarmed but still registered.
	if err := Eval(CoreEncodeError); err != nil {
		t.Fatalf("exhausted failpoint fired: %v", err)
	}
	if got := FiredCount(CoreEncodeError) - before; got != 2 {
		t.Fatalf("FiredCount delta = %d, want 2", got)
	}
}

func TestPanicKind(t *testing.T) {
	defer Reset()
	if err := Set(SATSolvePanic, "1*panic"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			p, ok := r.(*Panic)
			if !ok {
				t.Fatalf("recovered %v (%T), want *Panic", r, r)
			}
			if p.Site != SATSolvePanic {
				t.Fatalf("panic site = %q", p.Site)
			}
		}()
		Eval(SATSolvePanic)
		t.Fatal("Eval did not panic")
	}()
	if err := Eval(SATSolvePanic); err != nil {
		t.Fatalf("second Eval after 1*panic: %v", err)
	}
}

func TestSleepKind(t *testing.T) {
	defer Reset()
	if err := Set(CoreEncodeSlow, "sleep(30ms)"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := Eval(CoreEncodeSlow); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("sleep failpoint returned after %v, want ≥ 30ms", d)
	}
}

func TestCallback(t *testing.T) {
	defer Reset()
	calls := 0
	SetCallback(CoreEncodeSlow, func() error {
		calls++
		if calls == 1 {
			return ErrInjected
		}
		return nil
	})
	if err := Eval(CoreEncodeSlow); !errors.Is(err, ErrInjected) {
		t.Fatalf("first callback = %v", err)
	}
	if err := Eval(CoreEncodeSlow); err != nil {
		t.Fatalf("second callback = %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestClearAndReset(t *testing.T) {
	defer Reset()
	if err := Set(SATBudgetStarve, "error"); err != nil {
		t.Fatal(err)
	}
	if err := Set(SATSpuriousInterrupt, "error"); err != nil {
		t.Fatal(err)
	}
	Clear(SATBudgetStarve)
	if err := Eval(SATBudgetStarve); err != nil {
		t.Fatalf("cleared site fired: %v", err)
	}
	if !Enabled() {
		t.Fatal("Enabled() = false with one site still armed")
	}
	Reset()
	if Enabled() {
		t.Fatal("Enabled() = true after Reset")
	}
}

func TestSpecErrors(t *testing.T) {
	defer Reset()
	for _, spec := range []string{"", "explode", "0*panic", "-1*error", "sleep(", "sleep(xyz)", "sleep(-1s)"} {
		if err := Set(SATSolvePanic, spec); err == nil {
			t.Errorf("Set(%q) accepted", spec)
		}
	}
}

func TestFromEnvSpec(t *testing.T) {
	defer Reset()
	if err := fromSpec("sat/budget-starve=1*error; core/encode-slow=sleep(1ms)"); err != nil {
		t.Fatal(err)
	}
	if err := Eval(SATBudgetStarve); !errors.Is(err, ErrInjected) {
		t.Fatalf("env-armed site = %v", err)
	}
	if err := fromSpec("no/such-site=error"); err == nil {
		t.Error("unknown site accepted")
	}
	if err := fromSpec("garbage"); err == nil {
		t.Error("malformed pair accepted")
	}
	if err := fromSpec(""); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
}

func TestConcurrentEval(t *testing.T) {
	defer Reset()
	if err := Set(CoreEncodeError, "100*error"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var hits atomic64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if Eval(CoreEncodeError) != nil {
					hits.add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := hits.load(); got != 100 {
		t.Fatalf("fired %d times across goroutines, want exactly 100", got)
	}
}

// atomic64 is a tiny test-local counter (avoids importing sync/atomic's
// verbose call sites in the loop above).
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

func BenchmarkEvalDisabled(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Eval(SATSolvePanic) != nil {
			b.Fatal("fired")
		}
	}
}
