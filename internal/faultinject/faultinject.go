// Package faultinject is a process-wide failpoint registry for chaos
// testing the repair pipeline. Production code calls Eval at a small
// number of named sites (the SAT solver's search entry, the MaxSMT
// encoder, the daemon's session-cache build path); with no failpoint
// armed, Eval is a single atomic load and a branch, so the registry can
// stay compiled into release binaries at effectively zero cost.
//
// A failpoint is armed programmatically (Set, SetCallback) or from the
// CPR_FAILPOINTS environment variable (FromEnv), using a small spec
// grammar:
//
//	[count*]kind[(arg)]
//
//	panic          panic with a *faultinject.Panic value
//	error          return ErrInjected
//	sleep(50ms)    sleep for the given duration, then return nil
//
// A leading "count*" limits the failpoint to its first count
// evaluations ("1*panic" fires exactly once, modelling a transient
// crash); without it the failpoint fires on every evaluation. Fired
// counts are recorded per site and survive Reset, so a seeded chaos
// campaign can assert that every registered site actually triggered.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error produced by error-kind failpoints. Injection
// sites and tests detect injected faults with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Panic is the value thrown by panic-kind failpoints, so recovery
// layers can tell an injected panic from a genuine one.
type Panic struct{ Site string }

func (p *Panic) Error() string { return "faultinject: injected panic at " + p.Site }

// Registered failpoint sites. Each constant names the exact place in
// production code where Eval is called.
const (
	// SATSolvePanic panics at the top of sat.Solver.Solve.
	SATSolvePanic = "sat/solve-panic"
	// SATSpuriousInterrupt sets the solver's sticky interrupt flag at
	// the top of Solve, as if an unrelated cancellation had fired.
	SATSpuriousInterrupt = "sat/spurious-interrupt"
	// SATBudgetStarve makes Solve return Unknown immediately, as if the
	// conflict budget had been exhausted before the first conflict.
	SATBudgetStarve = "sat/budget-starve"
	// CoreEncodeError fails the MaxSMT encoder before any constraint is
	// emitted.
	CoreEncodeError = "core/encode-error"
	// CoreEncodeSlow delays the MaxSMT encoder (sleep specs), or hands
	// control to a test callback for deterministic scheduling.
	CoreEncodeSlow = "core/encode-slow"
	// ServerCacheLoadError fails the session cache's build function in
	// the daemon's /v1/load path.
	ServerCacheLoadError = "server/cache-load-error"
	// ServerDeltaError fails the incremental session derivation in the
	// daemon's /v1/delta path.
	ServerDeltaError = "server/delta-error"
	// ServerRepairAbort aborts the HTTP connection at the top of the
	// daemon's /v1/repair handler (the response is never written and the
	// client sees a transport error), modelling a replica crashing
	// mid-request. The fleet front tier's failover path is exercised
	// against exactly this site.
	ServerRepairAbort = "server/repair-abort"
	// CoreQVerifyError fails the quotient-side verification of a
	// compressed repair, forcing the "qverify" fallback to the
	// uncompressed solve.
	CoreQVerifyError = "core/qverify-error"
	// CoreSpotCheckError fails the concrete spot-check of a
	// quotient-verified compressed repair, forcing the "spot-check"
	// fallback to the uncompressed solve.
	CoreSpotCheckError = "core/spot-check-error"
)

// Sites lists every registered injection site, sorted.
func Sites() []string {
	s := []string{
		SATSolvePanic,
		SATSpuriousInterrupt,
		SATBudgetStarve,
		CoreEncodeError,
		CoreEncodeSlow,
		CoreQVerifyError,
		CoreSpotCheckError,
		ServerCacheLoadError,
		ServerDeltaError,
		ServerRepairAbort,
	}
	sort.Strings(s)
	return s
}

type kind int

const (
	kindError kind = iota
	kindPanic
	kindSleep
	kindCallback
)

// point is one armed failpoint.
type point struct {
	kind  kind
	sleep time.Duration
	fn    func() error
	// remaining is the number of future firings (<0 = unlimited).
	remaining atomic.Int64
}

var (
	// enabled is Eval's fast path: false whenever no failpoint is armed.
	enabled atomic.Bool

	mu     sync.RWMutex
	points = map[string]*point{}

	// fired counts actual triggers per site; it survives Clear and Reset
	// so campaigns can assert coverage across rounds.
	fired sync.Map // string → *atomic.Int64
)

// Enabled reports whether any failpoint is armed. Injection sites may
// use it to skip several Eval calls with one load.
func Enabled() bool { return enabled.Load() }

// Set arms site with the given spec, replacing any previous arming.
func Set(site, spec string) error {
	p, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("faultinject: %s: %w", site, err)
	}
	mu.Lock()
	points[site] = p
	enabled.Store(true)
	mu.Unlock()
	return nil
}

// SetCallback arms site with a function. The callback fires on every
// evaluation; its error (if any) is returned to the injection site,
// which treats non-nil as "fault fired". Callbacks let tests coordinate
// deterministic schedules (count calls, block, cancel contexts).
func SetCallback(site string, fn func() error) {
	p := &point{kind: kindCallback, fn: fn}
	p.remaining.Store(-1)
	mu.Lock()
	points[site] = p
	enabled.Store(true)
	mu.Unlock()
}

// Clear disarms one site.
func Clear(site string) {
	mu.Lock()
	delete(points, site)
	enabled.Store(len(points) > 0)
	mu.Unlock()
}

// Reset disarms every site. Fired counts are preserved.
func Reset() {
	mu.Lock()
	points = map[string]*point{}
	enabled.Store(false)
	mu.Unlock()
}

// FiredCount returns how many times site has actually triggered over
// the life of the process (across Set/Clear/Reset cycles).
func FiredCount(site string) int64 {
	if c, ok := fired.Load(site); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

func bumpFired(site string) {
	c, ok := fired.Load(site)
	if !ok {
		c, _ = fired.LoadOrStore(site, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// Eval triggers site if it is armed: panic-kind points panic with a
// *Panic, error-kind points return ErrInjected, sleep-kind points block
// and return nil, callback points return the callback's result. With
// nothing armed anywhere, Eval is one atomic load.
func Eval(site string) error {
	if !enabled.Load() {
		return nil
	}
	mu.RLock()
	p := points[site]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	// Claim one firing (remaining < 0 means unlimited).
	for {
		r := p.remaining.Load()
		if r == 0 {
			return nil
		}
		if r < 0 || p.remaining.CompareAndSwap(r, r-1) {
			break
		}
	}
	bumpFired(site)
	switch p.kind {
	case kindPanic:
		panic(&Panic{Site: site})
	case kindSleep:
		time.Sleep(p.sleep)
		return nil
	case kindCallback:
		return p.fn()
	default:
		return fmt.Errorf("%w at %s", ErrInjected, site)
	}
}

// FromEnv arms failpoints from the CPR_FAILPOINTS environment variable:
// a semicolon-separated list of site=spec pairs, e.g.
//
//	CPR_FAILPOINTS="sat/solve-panic=1*panic;core/encode-slow=sleep(50ms)"
//
// An empty or unset variable is a no-op. Unknown sites are rejected so
// typos fail loudly at daemon start instead of silently never firing.
func FromEnv() error {
	return fromSpec(os.Getenv("CPR_FAILPOINTS"))
}

func fromSpec(env string) error {
	if env == "" {
		return nil
	}
	known := map[string]bool{}
	for _, s := range Sites() {
		known[s] = true
	}
	for _, pair := range strings.Split(env, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		site, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("faultinject: malformed CPR_FAILPOINTS entry %q (want site=spec)", pair)
		}
		site, spec = strings.TrimSpace(site), strings.TrimSpace(spec)
		if !known[site] {
			return fmt.Errorf("faultinject: unknown site %q (known: %s)", site, strings.Join(Sites(), ", "))
		}
		if err := Set(site, spec); err != nil {
			return err
		}
	}
	return nil
}

// parseSpec parses "[count*]kind[(arg)]".
func parseSpec(spec string) (*point, error) {
	count := int64(-1)
	rest := spec
	if i := strings.IndexByte(spec, '*'); i >= 0 {
		n, err := strconv.ParseInt(spec[:i], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count in spec %q", spec)
		}
		count = n
		rest = spec[i+1:]
	}
	p := &point{}
	p.remaining.Store(count)
	switch {
	case rest == "panic":
		p.kind = kindPanic
	case rest == "error":
		p.kind = kindError
	case strings.HasPrefix(rest, "sleep(") && strings.HasSuffix(rest, ")"):
		d, err := time.ParseDuration(rest[len("sleep(") : len(rest)-1])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad sleep duration in spec %q", spec)
		}
		p.kind = kindSleep
		p.sleep = d
	default:
		return nil, fmt.Errorf("unknown failpoint kind in spec %q (want panic, error, or sleep(dur))", spec)
	}
	return p, nil
}
