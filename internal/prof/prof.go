// Package prof wires Go's runtime profilers to CLI flags: a CPU profile
// recorded for the lifetime of the run and a heap profile written at
// exit. The profiles feed `go tool pprof`, which is how the encode→solve
// hot path numbers in EXPERIMENTS.md were gathered.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the given output paths; empty paths disable
// the corresponding profiler. The returned stop function finishes the
// CPU profile and writes the heap profile, and must run before the
// process exits (call it explicitly — os.Exit skips deferred calls).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			memFile, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer memFile.Close()
			runtime.GC() // materialize recent allocations in the heap profile
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
