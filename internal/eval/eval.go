// Package eval drives the paper's evaluation (§8): one experiment per
// figure, each producing a Report with the same rows/series the paper
// plots. Absolute numbers differ from the paper's Z3-on-Xeon testbed;
// the shapes — which granularity wins, how time scales with policies and
// network size, where CPR beats hand-written repairs — are the
// reproduction targets (see EXPERIMENTS.md).
package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/generate"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/translate"
)

// Report is one experiment's regenerated table/series.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintln(w, "note: "+n)
	}
	fmt.Fprintln(w)
}

// Config scales the experiments.
type Config struct {
	// Corpus parameters (Figures 6, 7, 9, 11).
	CorpusNetworks int
	SubnetScale    float64
	// Fat-tree parameters (Figure 8).
	Fig8aK        int   // 4 → 20 routers (paper)
	Fig8aPolicies int   // 12 (paper)
	Fig8bK        int   // 6 → 45 routers (paper)
	PolicySweep   []int // Figure 8b x-axis
	SizeSweepK    []int // Figure 8c x-axis (port counts)
	Fig8cPolicies int   // 30 (paper)
	// AllTCsBudget bounds each maxsmt-all-tcs SAT call in conflicts,
	// CPR's analogue of the paper's 8-hour limit (0 = unlimited).
	AllTCsBudget int64
	// AllTCsPolicyCap skips the monolithic all-tcs formulation on
	// networks with more policies than this, reporting DNF — the memory
	// analogue of the paper's 8-hour DNFs (30% of their networks never
	// finished all-tcs either).
	AllTCsPolicyCap int
	// Parallelism for maxsmt-per-dst; the paper reports 10 workers.
	Parallelism int
	Seed        int64
}

// Quick returns a configuration sized to finish the full suite in
// minutes on a laptop while preserving every trend.
func Quick() Config {
	return Config{
		CorpusNetworks:  12,
		SubnetScale:     0.35,
		Fig8aK:          4,
		Fig8aPolicies:   12,
		Fig8bK:          6,
		PolicySweep:     []int{8, 16, 32, 64},
		SizeSweepK:      []int{4, 6},
		Fig8cPolicies:   12,
		AllTCsBudget:    250000,
		AllTCsPolicyCap: 240,
		Parallelism:     10,
		Seed:            20170801,
	}
}

// Full mirrors the paper's dimensions (96 networks, ~1K-policy medians,
// 12/1500/30-policy fat-tree sweeps). Expect hours of runtime.
func Full() Config {
	return Config{
		CorpusNetworks:  96,
		SubnetScale:     1.0,
		Fig8aK:          4,
		Fig8aPolicies:   12,
		Fig8bK:          6,
		PolicySweep:     []int{100, 250, 500, 1000, 1500},
		SizeSweepK:      []int{4, 6, 8, 10},
		Fig8cPolicies:   30,
		AllTCsBudget:    4000000,
		AllTCsPolicyCap: 600,
		Parallelism:     10,
		Seed:            20170801,
	}
}

// Context caches the generated corpus across experiments.
type Context struct {
	Cfg    Config
	corpus []*generate.Instance
}

// NewContext wraps a configuration.
func NewContext(cfg Config) *Context { return &Context{Cfg: cfg} }

// Corpus returns (generating once) the synthetic data-center corpus.
func (c *Context) Corpus() ([]*generate.Instance, error) {
	if c.corpus == nil {
		corpus, err := generate.Corpus(generate.CorpusOptions{
			Networks:    c.Cfg.CorpusNetworks,
			SubnetScale: c.Cfg.SubnetScale,
			Seed:        c.Cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		c.corpus = corpus
	}
	return c.corpus, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// Fig6 reproduces Figure 6: the PC1/PC3 policy mix of every corpus
// network, ordered by total policy count.
func Fig6(ctx *Context) (*Report, error) {
	corpus, err := ctx.Corpus()
	if err != nil {
		return nil, err
	}
	type row struct {
		name             string
		pc1, pc3, total  int
		routers, subnets int
	}
	var rows []row
	for _, inst := range corpus {
		counts := policy.CountByKind(inst.Policies)
		rows = append(rows, row{
			name: inst.Name, pc1: counts[policy.AlwaysBlocked], pc3: counts[policy.KReachable],
			total:   len(inst.Policies),
			routers: inst.Network.NumDevices(), subnets: len(inst.Network.Subnets),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total < rows[j].total })
	rep := &Report{
		ID:      "fig6",
		Title:   "Policy mix in data center networks (sorted by total policies)",
		Columns: []string{"network", "routers", "subnets", "PC1", "PC3", "total"},
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, []string{
			r.name, fmt.Sprint(r.routers), fmt.Sprint(r.subnets),
			fmt.Sprint(r.pc1), fmt.Sprint(r.pc3), fmt.Sprint(r.total),
		})
	}
	rep.Notes = append(rep.Notes,
		"every traffic class carries exactly one policy; no class has both PC1 and PC3 (paper §8)")
	return rep, nil
}

// makespan computes the completion time of the per-problem durations on
// w parallel workers under longest-processing-time-first scheduling,
// reproducing the paper's "10 MaxSMT problems in parallel" numbers.
func makespan(durations []time.Duration, w int) time.Duration {
	if w < 1 {
		w = 1
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	loads := make([]time.Duration, w)
	for _, d := range sorted {
		mi := 0
		for i := 1; i < w; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += d
	}
	max := time.Duration(0)
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Fig7 reproduces Figure 7: time to repair each corpus network under
// maxsmt-all-tcs versus maxsmt-per-dst (sequential and with the paper's
// 10-way parallelism), ordered by policy count. Budget-exhausted all-tcs
// runs are reported as DNF, the analogue of the paper's 8-hour timeouts.
func Fig7(ctx *Context) (*Report, error) {
	corpus, err := ctx.Corpus()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig7",
		Title:   "Time to compute repairs (real DC corpus)",
		Columns: []string{"network", "policies", "all-tcs_ms", "per-dst_ms", "per-dst-10x_ms"},
	}
	type row struct {
		name     string
		policies int
		cells    []string
	}
	var rows []row
	dnf := 0
	slower := 0
	for _, inst := range corpus {
		h := inst.Harc()

		allCell := "DNF"
		allSolved := false
		var allDuration time.Duration
		if ctx.Cfg.AllTCsPolicyCap == 0 || len(inst.Policies) <= ctx.Cfg.AllTCsPolicyCap {
			optsAll := core.DefaultOptions()
			optsAll.Granularity = core.AllTCs
			optsAll.ConflictBudget = ctx.Cfg.AllTCsBudget
			resAll, err := core.Repair(h, inst.Policies, optsAll)
			if err != nil {
				return nil, fmt.Errorf("%s all-tcs: %w", inst.Name, err)
			}
			allSolved = resAll.Solved
			allDuration = resAll.Duration
			if resAll.Solved {
				allCell = ms(resAll.Duration)
			}
		}
		if !allSolved {
			dnf++
		}

		optsPer := core.DefaultOptions()
		resPer, err := core.Repair(h, inst.Policies, optsPer)
		if err != nil {
			return nil, fmt.Errorf("%s per-dst: %w", inst.Name, err)
		}
		var durations []time.Duration
		for _, st := range resPer.Stats {
			durations = append(durations, st.Duration)
		}
		par := makespan(durations, ctx.Cfg.Parallelism)
		if allSolved && allDuration < resPer.Sequential {
			slower++
		}
		rows = append(rows, row{inst.Name, len(inst.Policies), []string{
			inst.Name, fmt.Sprint(len(inst.Policies)), allCell, ms(resPer.Sequential), ms(par),
		}})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].policies < rows[j].policies })
	for _, r := range rows {
		rep.Rows = append(rep.Rows, r.cells)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("all-tcs DNF (conflict budget %d, the 8-hour-limit analogue): %d/%d networks", ctx.Cfg.AllTCsBudget, dnf, len(corpus)),
		fmt.Sprintf("networks where all-tcs beat per-dst sequential: %d/%d (paper: per-dst wins by 1-2 orders of magnitude)", slower, len(corpus)))
	return rep, nil
}

// fatTreeTimed generates a fat-tree with the given per-class policy
// counts, breaks a quarter of the policies, and times a repair.
func fatTreeTimed(k, pc1, pc2, pc3, pc4 int, subnetsPerEdge int, seed int64, opts core.Options) (time.Duration, *core.Result, error) {
	inst, err := generate.FatTree(generate.FatTreeOptions{
		K: k, SubnetsPerEdge: subnetsPerEdge,
		PC1: pc1, PC2: pc2, PC3: pc3, PC4: pc4, Seed: seed,
	})
	if err != nil {
		return 0, nil, err
	}
	total := pc1 + pc2 + pc3 + pc4
	breakCount := total / 4
	if breakCount < 1 {
		breakCount = 1
	}
	if err := generate.BreakFatTree(inst, seed+1, breakCount); err != nil {
		return 0, nil, err
	}
	h := inst.Harc()
	res, err := core.Repair(h, inst.Policies, opts)
	if err != nil {
		return 0, nil, err
	}
	if res.Solved {
		if bad := core.VerifyRepair(h, res.State, inst.Policies); len(bad) != 0 {
			return 0, nil, fmt.Errorf("fat-tree repair left %d violations", len(bad))
		}
	}
	return res.Duration, res, nil
}

// Fig8a reproduces Figure 8a: repair time per policy class on a fixed
// fat-tree (paper: 4-port, 20 routers, 12 policies), for both problem
// granularities; per-dst is omitted for PC4 exactly as in the paper.
func Fig8a(ctx *Context) (*Report, error) {
	k := ctx.Cfg.Fig8aK
	n := ctx.Cfg.Fig8aPolicies
	rep := &Report{
		ID:      "fig8a",
		Title:   fmt.Sprintf("Repair time by policy class (%d-port fat-tree, %d policies)", k, n),
		Columns: []string{"class", "all-tcs_ms", "per-dst_ms"},
	}
	classes := []struct {
		name               string
		pc1, pc2, pc3, pc4 int
		skipPerDst         bool
	}{
		{"PC1", n, 0, 0, 0, false},
		{"PC2", 0, n, 0, 0, false},
		{"PC3", 0, 0, n, 0, false},
		{"PC4", 0, 0, 0, n, true},
	}
	for _, cl := range classes {
		optsAll := core.DefaultOptions()
		optsAll.Granularity = core.AllTCs
		// PC4's cost arithmetic needs far more conflicts than the boolean
		// classes; the figure's entire point is measuring that gap, so
		// give this experiment extra headroom.
		optsAll.ConflictBudget = ctx.Cfg.AllTCsBudget * 10
		dAll, resAll, err := fatTreeTimed(k, cl.pc1, cl.pc2, cl.pc3, cl.pc4, 1, ctx.Cfg.Seed, optsAll)
		if err != nil {
			return nil, fmt.Errorf("fig8a %s all-tcs: %w", cl.name, err)
		}
		allCell := ms(dAll)
		if !resAll.Solved {
			allCell = "DNF"
		}
		perCell := "-"
		if !cl.skipPerDst {
			dPer, _, err := fatTreeTimed(k, cl.pc1, cl.pc2, cl.pc3, cl.pc4, 1, ctx.Cfg.Seed, core.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("fig8a %s per-dst: %w", cl.name, err)
			}
			perCell = ms(dPer)
		}
		rep.Rows = append(rep.Rows, []string{cl.name, allCell, perCell})
	}
	rep.Notes = append(rep.Notes,
		"per-dst omitted for PC4: link costs cannot be customized per destination (§5.3)",
		"expected shape: PC3 fastest to repair, PC4 slowest (cost variables blow up the search)")
	return rep, nil
}

// Fig8b reproduces Figure 8b: repair time versus policy count on a
// 6-port fat-tree (45 routers) for PC1, PC2 and PC3 with per-dst.
func Fig8b(ctx *Context) (*Report, error) {
	k := ctx.Cfg.Fig8bK
	rep := &Report{
		ID:      "fig8b",
		Title:   fmt.Sprintf("Repair time vs number of policies (%d-port fat-tree)", k),
		Columns: []string{"policies", "PC1_ms", "PC2_ms", "PC3_ms"},
	}
	// Enough subnets for the largest sweep point.
	maxN := 0
	for _, n := range ctx.Cfg.PolicySweep {
		if n > maxN {
			maxN = n
		}
	}
	edgeSwitches := k * k / 2 // k pods × k/2 edges
	spe := 1
	for {
		subnets := edgeSwitches * spe
		interPod := subnets * (subnets - subnets/k) // approximation
		if interPod >= maxN || spe > 8 {
			break
		}
		spe++
	}
	for _, n := range ctx.Cfg.PolicySweep {
		cells := []string{fmt.Sprint(n)}
		for _, class := range []string{"PC1", "PC2", "PC3"} {
			pc1, pc2, pc3 := 0, 0, 0
			switch class {
			case "PC1":
				pc1 = n
			case "PC2":
				pc2 = n
			case "PC3":
				pc3 = n
			}
			d, res, err := fatTreeTimed(k, pc1, pc2, pc3, 0, spe, ctx.Cfg.Seed, core.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("fig8b %s n=%d: %w", class, n, err)
			}
			cell := ms(d)
			if !res.Solved {
				cell = "DNF"
			}
			cells = append(cells, cell)
		}
		rep.Rows = append(rep.Rows, cells)
	}
	rep.Notes = append(rep.Notes, "expected shape: super-linear growth in policies (each adds variables)")
	return rep, nil
}

// Fig8c reproduces Figure 8c: repair time versus network size (fat-tree
// port sweep) at a fixed policy count, per class, with per-dst.
func Fig8c(ctx *Context) (*Report, error) {
	n := ctx.Cfg.Fig8cPolicies
	rep := &Report{
		ID:      "fig8c",
		Title:   fmt.Sprintf("Repair time vs network size (%d policies)", n),
		Columns: []string{"ports", "routers", "PC1_ms", "PC2_ms", "PC3_ms"},
	}
	for _, k := range ctx.Cfg.SizeSweepK {
		routers := k*k/4 + k*k // (k/2)^2 cores + k pods × k aggs+edges
		cells := []string{fmt.Sprint(k), fmt.Sprint(routers)}
		for _, class := range []string{"PC1", "PC2", "PC3"} {
			pc1, pc2, pc3 := 0, 0, 0
			switch class {
			case "PC1":
				pc1 = n
			case "PC2":
				pc2 = n
			case "PC3":
				pc3 = n
			}
			d, res, err := fatTreeTimed(k, pc1, pc2, pc3, 0, 1, ctx.Cfg.Seed, core.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("fig8c %s k=%d: %w", class, k, err)
			}
			cell := ms(d)
			if !res.Solved {
				cell = "DNF"
			}
			cells = append(cells, cell)
		}
		rep.Rows = append(rep.Rows, cells)
	}
	rep.Notes = append(rep.Notes, "expected shape: growth with size; steepest for PC3 (K extra edge variables per link)")
	return rep, nil
}

// Fig9 reproduces Figure 9: configuration lines changed by per-dst
// versus all-tcs repairs on the corpus — the paper reports them equal.
func Fig9(ctx *Context) (*Report, error) {
	corpus, err := ctx.Corpus()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig9",
		Title:   "Lines changed: maxsmt-per-dst vs maxsmt-all-tcs",
		Columns: []string{"network", "per-dst_lines", "all-tcs_lines"},
	}
	equal := 0
	total := 0
	for _, inst := range corpus {
		h := inst.Harc()
		orig := harc.StateOf(h)

		per, err := core.Repair(h, inst.Policies, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		if ctx.Cfg.AllTCsPolicyCap > 0 && len(inst.Policies) > ctx.Cfg.AllTCsPolicyCap {
			perCell := "DNF"
			if per.Solved {
				cfgsPer, err := translate.CloneConfigs(inst.Configs)
				if err != nil {
					return nil, err
				}
				planPer, err := translate.Translate(h, orig, per.State, cfgsPer)
				if err != nil {
					return nil, err
				}
				perCell = fmt.Sprint(planPer.NumLines())
			}
			rep.Rows = append(rep.Rows, []string{inst.Name, perCell, "DNF"})
			continue
		}
		optsAll := core.DefaultOptions()
		optsAll.Granularity = core.AllTCs
		optsAll.ConflictBudget = ctx.Cfg.AllTCsBudget
		all, err := core.Repair(h, inst.Policies, optsAll)
		if err != nil {
			return nil, err
		}
		if !per.Solved || !all.Solved {
			rep.Rows = append(rep.Rows, []string{inst.Name, dash(per.Solved, ""), dash(all.Solved, "")})
			continue
		}
		cfgsPer, err := translate.CloneConfigs(inst.Configs)
		if err != nil {
			return nil, err
		}
		planPer, err := translate.Translate(h, orig, per.State, cfgsPer)
		if err != nil {
			return nil, fmt.Errorf("%s per-dst translate: %w", inst.Name, err)
		}
		cfgsAll, err := translate.CloneConfigs(inst.Configs)
		if err != nil {
			return nil, err
		}
		planAll, err := translate.Translate(h, orig, all.State, cfgsAll)
		if err != nil {
			return nil, fmt.Errorf("%s all-tcs translate: %w", inst.Name, err)
		}
		total++
		if planPer.NumLines() == planAll.NumLines() {
			equal++
		}
		rep.Rows = append(rep.Rows, []string{
			inst.Name, fmt.Sprint(planPer.NumLines()), fmt.Sprint(planAll.NumLines()),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("equal line counts: %d/%d solved networks (paper: always equal)", equal, total))
	return rep, nil
}

func dash(ok bool, v string) string {
	if !ok {
		return "DNF"
	}
	return v
}

// Fig11 reproduces Figures 11a and 11b: CPR-produced versus hand-written
// repairs, by fraction of traffic classes impacted and lines changed.
func Fig11(ctx *Context) (*Report, error) {
	corpus, err := ctx.Corpus()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "fig11",
		Title:   "CPR-produced vs hand-written repairs",
		Columns: []string{"network", "tcs", "cpr_impact%", "oper_impact%", "cpr_lines", "oper_lines"},
	}
	cprFewerLines, cprFewerImpact, solved := 0, 0, 0
	for i, inst := range corpus {
		h := inst.Harc()
		orig := harc.StateOf(h)
		res, err := core.Repair(h, inst.Policies, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		if !res.Solved {
			continue
		}
		cfgs, err := translate.CloneConfigs(inst.Configs)
		if err != nil {
			return nil, err
		}
		plan, err := translate.Translate(h, orig, res.State, cfgs)
		if err != nil {
			return nil, fmt.Errorf("%s translate: %w", inst.Name, err)
		}
		cprImpacted := len(translate.ImpactedTCs(h, orig, res.State))

		op, err := generate.SimulateOperator(inst, ctx.Cfg.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("%s operator: %w", inst.Name, err)
		}
		totalTCs := len(h.TCs)
		solved++
		if plan.NumLines() <= op.Lines {
			cprFewerLines++
		}
		if cprImpacted <= op.ImpactedTCs {
			cprFewerImpact++
		}
		rep.Rows = append(rep.Rows, []string{
			inst.Name, fmt.Sprint(totalTCs),
			fmt.Sprintf("%.1f", 100*float64(cprImpacted)/float64(totalTCs)),
			fmt.Sprintf("%.1f", 100*float64(op.ImpactedTCs)/float64(totalTCs)),
			fmt.Sprint(plan.NumLines()), fmt.Sprint(op.Lines),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("CPR impacts the same or fewer traffic classes in %d/%d networks (paper: 100%%)", cprFewerImpact, solved),
		fmt.Sprintf("CPR changes the same or fewer lines in %d/%d networks (paper: 79%%)", cprFewerLines, solved))
	return rep, nil
}

// All runs every experiment.
func All(ctx *Context) ([]*Report, error) {
	type gen func(*Context) (*Report, error)
	var out []*Report
	for _, g := range []gen{Fig6, Fig7, Fig8a, Fig8b, Fig8c, Fig9, Fig11} {
		r, err := g(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
