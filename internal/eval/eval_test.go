package eval

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

func TestSmokeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment smoke test skipped in -short mode")
	}
	cfg := Quick()
	cfg.CorpusNetworks = 2
	cfg.SubnetScale = 0.3
	cfg.PolicySweep = []int{4}
	cfg.SizeSweepK = []int{4}
	cfg.Fig8aPolicies = 4
	cfg.Fig8cPolicies = 6
	cfg.AllTCsBudget = 100000
	ctx := NewContext(cfg)
	reports, err := All(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if len(r.Rows) == 0 {
			t.Errorf("%s produced no rows", r.ID)
		}
		r.Render(os.Stderr)
	}
}

func TestMakespan(t *testing.T) {
	durs := []time.Duration{4 * time.Second, 3 * time.Second, 2 * time.Second, 1 * time.Second}
	if got := makespan(durs, 1); got != 10*time.Second {
		t.Errorf("1 worker makespan = %v, want 10s", got)
	}
	if got := makespan(durs, 2); got != 5*time.Second {
		t.Errorf("2 worker makespan = %v, want 5s", got)
	}
	if got := makespan(durs, 10); got != 4*time.Second {
		t.Errorf("10 worker makespan = %v, want 4s", got)
	}
	if got := makespan(nil, 4); got != 0 {
		t.Errorf("empty makespan = %v, want 0", got)
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Columns: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestQuickAndFullConfigs(t *testing.T) {
	q, f := Quick(), Full()
	if q.CorpusNetworks >= f.CorpusNetworks {
		t.Error("Quick should be smaller than Full")
	}
	if f.CorpusNetworks != 96 {
		t.Errorf("Full corpus = %d networks, want 96 (paper)", f.CorpusNetworks)
	}
	if f.Fig8aPolicies != 12 || f.Fig8cPolicies != 30 {
		t.Error("Full fat-tree policy counts should match the paper (12 and 30)")
	}
}

func TestAblationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs several repairs")
	}
	ctx := NewContext(Quick())
	rep, err := Ablation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 6 {
		t.Fatalf("expected >= 6 variants, got %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[4] != "yes" && !strings.HasPrefix(row[4], "error") && row[4] != "no" {
			t.Errorf("unexpected spec_holds cell %q in %v", row[4], row)
		}
	}
	// The default configuration must always produce a valid repair.
	if rep.Rows[0][4] != "yes" {
		t.Errorf("default variant should satisfy the spec: %v", rep.Rows[0])
	}
}

func TestContextCachesCorpus(t *testing.T) {
	cfg := Quick()
	cfg.CorpusNetworks = 2
	cfg.SubnetScale = 0.2
	ctx := NewContext(cfg)
	a, err := ctx.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("corpus should be cached")
	}
}

// TestAblationGreedyNotBelowOptimal runs the design-choice ablation and
// checks the cross-variant invariant the report's narrative relies on:
// the greedy §5 baseline, when it happens to satisfy the specification,
// never reports fewer model changes than the all-tcs MaxSMT optimum.
func TestAblationGreedyNotBelowOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation experiment skipped in -short mode")
	}
	cfg := Quick()
	ctx := NewContext(cfg)
	rep, err := Ablation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	changes := func(variant string) (n int, holds bool) {
		for _, row := range rep.Rows {
			if row[0] != variant {
				continue
			}
			if row[2] == "DNF" || row[2] == "-" {
				t.Skipf("%s did not finish (%q)", variant, row[2])
			}
			fmt.Sscan(row[2], &n)
			return n, row[4] == "yes"
		}
		t.Fatalf("ablation report has no %q row", variant)
		return 0, false
	}
	opt, optHolds := changes("all-tcs/oll")
	if !optHolds {
		t.Fatalf("all-tcs/oll repair does not satisfy the specification")
	}
	greedyN, greedyHolds := changes("greedy baseline (§5)")
	if greedyHolds && greedyN < opt {
		t.Errorf("greedy satisfies the spec with %d changes, below the all-tcs optimum %d", greedyN, opt)
	}
	t.Logf("optimum=%d greedy=%d (holds=%v)", opt, greedyN, greedyHolds)
}
