package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/generate"
	"repro/internal/greedy"
	"repro/internal/harc"
	"repro/internal/smt/maxsat"
	"repro/internal/translate"
)

// Ablation compares CPR's design choices on one mid-size corpus network:
// problem granularity, MaxSAT algorithm, minimality objective, and the
// greedy graph-algorithm baseline of §5. Columns report wall time, the
// modeled change count, translated configuration lines, and whether the
// final state satisfies the whole specification.
func Ablation(ctx *Context) (*Report, error) {
	inst, err := generate.DataCenter(generate.DCOptions{
		Name: "ablation", Routers: 8, Subnets: 14, BlockedFrac: 0.3,
		FullyBlockedDsts: 1, Violations: 4, Seed: ctx.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	h := inst.Harc()
	orig := harc.StateOf(h)
	rep := &Report{
		ID:      "ablation",
		Title:   fmt.Sprintf("Design-choice ablation (%d routers, %d policies, %d violated)", inst.Network.NumDevices(), len(inst.Policies), len(inst.Violations())),
		Columns: []string{"variant", "time_ms", "model_changes", "lines", "spec_holds"},
	}

	addRow := func(name string, d time.Duration, changes int, st *harc.State, solved bool) error {
		lines := "-"
		holds := "no"
		if solved && st != nil {
			if bad := core.VerifyRepair(h, st, inst.Policies); len(bad) == 0 {
				holds = "yes"
			}
			cfgs, err := translate.CloneConfigs(inst.Configs)
			if err != nil {
				return err
			}
			plan, err := translate.Translate(h, orig, st, cfgs)
			if err != nil {
				return err
			}
			lines = fmt.Sprint(plan.NumLines())
		}
		changesCell := fmt.Sprint(changes)
		if !solved {
			changesCell = "DNF"
		}
		rep.Rows = append(rep.Rows, []string{name, ms(d), changesCell, lines, holds})
		return nil
	}

	variants := []struct {
		name string
		opts func() core.Options
	}{
		{"per-dst/oll (default)", core.DefaultOptions},
		{"all-tcs/oll", func() core.Options {
			o := core.DefaultOptions()
			o.Granularity = core.AllTCs
			return o
		}},
		{"per-dst/linear", func() core.Options {
			o := core.DefaultOptions()
			o.Algorithm = maxsat.LinearDescent
			return o
		}},
		{"per-dst/fu-malik", func() core.Options {
			o := core.DefaultOptions()
			o.Algorithm = maxsat.FuMalik
			return o
		}},
		{"per-dst/parallel-8", func() core.Options {
			o := core.DefaultOptions()
			o.Parallelism = 8
			return o
		}},
		{"per-dst/min-devices", func() core.Options {
			o := core.DefaultOptions()
			o.Objective = core.MinDevices
			return o
		}},
	}
	for _, v := range variants {
		res, err := core.Repair(h, inst.Policies, v.opts())
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		if err := addRow(v.name, res.Duration, res.Changes, res.State, res.Solved); err != nil {
			return nil, err
		}
	}

	// Greedy graph-algorithm baseline (§5): per-policy min-cut/max-flow.
	t0 := time.Now()
	g, err := greedy.Repair(h, inst.Policies)
	gd := time.Since(t0)
	if err != nil {
		rep.Rows = append(rep.Rows, []string{"greedy baseline (§5)", ms(gd), "-", "-", "error: " + err.Error()})
	} else {
		holds := "no"
		if g.Clean {
			holds = "yes"
		}
		rep.Rows = append(rep.Rows, []string{"greedy baseline (§5)", ms(gd), fmt.Sprint(g.Changes), "-", holds})
	}

	rep.Notes = append(rep.Notes,
		"model_changes is the MaxSMT objective (violated softs); under min-devices it counts devices touched",
		"the greedy baseline repairs policies in isolation: fast, but neither minimal nor cross-policy safe")
	return rep, nil
}
