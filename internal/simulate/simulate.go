// Package simulate is an independent ground truth for ARC: a
// per-destination route computation and hop-by-hop forwarding simulator
// operating directly on the topology model, with no shared code with the
// ETG abstraction.
//
// For each destination subnet it computes every device's forwarding
// choice the way the modeled control plane would: static routes compete
// with the IGP by administrative distance, the IGP computes least-cost
// routes over the adjacency graph honoring route filters, and data
// packets then walk next hops with interface ACLs applied per hop.
//
// Tests use it to check ARC's central claim (§4.1): a tcETG contains a
// SRC→DST path iff the simulated network can deliver the traffic under
// some failure combination (pathset equivalence), and — for restricted
// configurations — that ETG shortest paths match simulated forwarding
// (path equivalence).
package simulate

import (
	"sort"

	"repro/internal/topology"
)

// Outcome of a forwarding walk.
type Outcome int

// Forwarding outcomes.
const (
	// Delivered: the packet reached the destination subnet.
	Delivered Outcome = iota
	// Dropped: a device had no route, or an ACL denied the packet.
	Dropped
	// Looped: forwarding revisited a device (routing loop).
	Looped
)

func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Looped:
		return "looped"
	}
	return "?"
}

// route is a device's forwarding decision toward a destination.
type route struct {
	// nextLink carries traffic to the next device; nil when the
	// destination subnet is directly attached.
	nextLink *topology.Link
	// metric orders candidate routes: (adminDistance, igpCost).
	admin int
	cost  int64
	// ambiguous marks equal-best alternatives (ECMP); path-equivalence
	// checks treat these as non-deterministic.
	ambiguous bool
}

// Sim computes routes for one destination subnet under a failure set.
type Sim struct {
	n      *topology.Network
	dst    *topology.Subnet
	failed map[*topology.Link]bool
	routes map[*topology.Device]*route
}

// adminDistance of the modeled IGP (OSPF's Cisco default).
const igpAdmin = 110

// New computes the routing state for dst with the given failed links
// (nil = none).
func New(n *topology.Network, dst *topology.Subnet, failed map[*topology.Link]bool) *Sim {
	s := &Sim{n: n, dst: dst, failed: failed, routes: make(map[*topology.Device]*route)}
	s.compute()
	return s
}

// linkUp reports whether l is usable.
func (s *Sim) linkUp(l *topology.Link) bool { return l != nil && !s.failed[l] }

// attachedDevices returns devices directly attached to the destination
// subnet.
func (s *Sim) attachedDevices() []*topology.Device {
	var out []*topology.Device
	for _, d := range s.n.Devices() {
		for _, intf := range d.Interfaces() {
			if intf.Subnet == s.dst {
				out = append(out, d)
			}
		}
	}
	return out
}

// igpBlocks reports whether every process on d filters routes to dst
// (no process can supply an IGP route). A single non-filtering process
// suffices to install the route.
func (s *Sim) igpBlocks(d *topology.Device) bool {
	for _, p := range d.Processes {
		if !p.BlocksDestination(s.dst.Prefix) {
			return false
		}
	}
	return len(d.Processes) > 0
}

// adjacencyUp reports whether an IGP adjacency runs over link l.
func adjacencyUp(l *topology.Link) bool {
	for _, pa := range l.A.Device.Processes {
		for _, pb := range l.B.Device.Processes {
			if pa.Proto != pb.Proto {
				continue
			}
			if pa.UsesInterface(l.A) && pb.UsesInterface(l.B) &&
				!pa.IsPassive(l.A) && !pb.IsPassive(l.B) {
				return true
			}
		}
	}
	return false
}

// advertises reports whether device d would advertise its route toward
// dst to a neighbor (some process on d has the route and does not filter
// it).
func (s *Sim) advertises(d *topology.Device) bool { return !s.igpBlocks(d) }

// compute runs a Bellman-Ford-style per-destination route computation:
// attached devices originate at cost 0; a device adopts the least-cost
// route via an up adjacency to an advertising neighbor, unless its own
// processes filter the destination. Static routes then override by
// administrative distance.
func (s *Sim) compute() {
	const inf = int64(1) << 40
	costs := map[*topology.Device]int64{}
	for _, d := range s.n.Devices() {
		costs[d] = inf
	}
	for _, d := range s.attachedDevices() {
		if !s.igpBlocks(d) {
			costs[d] = 0
			s.routes[d] = &route{nextLink: nil, admin: igpAdmin, cost: 0}
		}
	}
	// Relax until fixpoint (graphs are small).
	for changed := true; changed; {
		changed = false
		for _, l := range s.n.Links {
			if !s.linkUp(l) || !adjacencyUp(l) {
				continue
			}
			for _, dir := range [2][2]*topology.Interface{{l.A, l.B}, {l.B, l.A}} {
				from, to := dir[0], dir[1] // route flows to → from? No: data flows from→to
				d := from.Device
				nbr := to.Device
				if s.igpBlocks(d) || costs[nbr] >= inf || !s.advertises(nbr) {
					continue
				}
				cand := costs[nbr] + int64(from.Cost)
				switch {
				case cand < costs[d]:
					costs[d] = cand
					s.routes[d] = &route{nextLink: l, admin: igpAdmin, cost: cand}
					changed = true
				case cand == costs[d] && s.routes[d] != nil && s.routes[d].nextLink != l && s.routes[d].admin == igpAdmin:
					s.routes[d].ambiguous = true
				}
			}
		}
	}
	// Static routes override when their administrative distance beats the
	// IGP's (or provide the only route).
	for _, d := range s.n.Devices() {
		for _, sr := range d.Statics {
			if sr.Prefix != s.dst.Prefix {
				continue
			}
			link, ok := s.staticLink(d, sr)
			if !ok {
				continue // next hop unreachable (failed link)
			}
			cur := s.routes[d]
			switch {
			case cur == nil || sr.Distance < cur.admin:
				s.routes[d] = &route{nextLink: link, admin: sr.Distance, cost: int64(sr.Distance)}
			case sr.Distance == cur.admin && cur.nextLink != link:
				cur.ambiguous = true
			}
		}
	}
}

// staticLink resolves a static route's next hop to the link carrying it.
func (s *Sim) staticLink(d *topology.Device, sr *topology.StaticRoute) (*topology.Link, bool) {
	for _, intf := range d.Interfaces() {
		l := intf.Link
		if !s.linkUp(l) {
			continue
		}
		peer := intf.Peer()
		if peer.Prefix.IsValid() && peer.Prefix.Addr() == sr.NextHop {
			return l, true
		}
	}
	return nil, false
}

// NextHop returns the device's forwarding choice toward the destination:
// the link to use (nil if directly attached), whether any route exists,
// and whether the choice is ambiguous (ECMP).
func (s *Sim) NextHop(d *topology.Device) (link *topology.Link, hasRoute, ambiguous bool) {
	r := s.routes[d]
	if r == nil {
		return nil, false, false
	}
	return r.nextLink, true, r.ambiguous
}

// aclAllows applies the interface ACL in the given direction to the
// traffic class.
func aclAllows(intf *topology.Interface, in bool, tc topology.TrafficClass) bool {
	name := intf.OutACL
	if in {
		name = intf.InACL
	}
	if name == "" {
		return true
	}
	return !intf.Device.ACLs[name].Blocks(tc.Src.Prefix, tc.Dst.Prefix)
}

// Trace is a detailed forwarding result.
type Trace struct {
	Outcome   Outcome
	Devices   []string
	Ambiguous bool
	// Waypoint reports whether the packet crossed an on-path middlebox
	// (a waypoint link or a waypoint device).
	Waypoint bool
}

// ForwardTrace is Forward with middlebox traversal tracking.
func ForwardTrace(n *topology.Network, tc topology.TrafficClass, failed map[*topology.Link]bool) Trace {
	s := New(n, tc.Dst, failed)
	var entry *topology.Device
	var entryIntf *topology.Interface
	for _, d := range n.Devices() {
		for _, intf := range d.Interfaces() {
			if intf.Subnet == tc.Src {
				entry, entryIntf = d, intf
			}
		}
	}
	if entry == nil || !aclAllows(entryIntf, true, tc) {
		return Trace{Outcome: Dropped}
	}
	tr := Trace{Devices: []string{entry.Name}}
	visited := map[*topology.Device]bool{}
	cur := entry
	for {
		if visited[cur] {
			tr.Outcome = Looped
			return tr
		}
		visited[cur] = true
		if cur.Waypoint {
			tr.Waypoint = true
		}
		link, hasRoute, amb := s.NextHop(cur)
		tr.Ambiguous = tr.Ambiguous || amb
		if !hasRoute {
			tr.Outcome = Dropped
			return tr
		}
		if link == nil {
			for _, intf := range cur.Interfaces() {
				if intf.Subnet == tc.Dst {
					if !aclAllows(intf, false, tc) {
						tr.Outcome = Dropped
						return tr
					}
					tr.Outcome = Delivered
					return tr
				}
			}
			tr.Outcome = Dropped
			return tr
		}
		if link.Waypoint {
			tr.Waypoint = true
		}
		var out, in *topology.Interface
		if link.A.Device == cur {
			out, in = link.A, link.B
		} else {
			out, in = link.B, link.A
		}
		if !aclAllows(out, false, tc) || !aclAllows(in, true, tc) {
			tr.Outcome = Dropped
			return tr
		}
		cur = in.Device
		tr.Devices = append(tr.Devices, cur.Name)
	}
}

// AlwaysTraversesWaypoint reports whether, under every failure subset of
// the network's links, delivered traffic of class tc crossed a waypoint
// (the ground truth for PC2).
func AlwaysTraversesWaypoint(n *topology.Network, tc topology.TrafficClass) bool {
	return WaypointUnderFailures(n, tc, len(n.Links))
}

// ForEachFailureSet enumerates every subset of the network's links with at
// most maxFail elements — including the empty set — and calls visit with
// each. The map passed to visit is reused across calls; visit must not
// retain it. Returning false from visit stops the enumeration early, and
// ForEachFailureSet reports whether every visit returned true.
func ForEachFailureSet(n *topology.Network, maxFail int, visit func(failed map[*topology.Link]bool) bool) bool {
	links := n.Links
	if maxFail > len(links) {
		maxFail = len(links)
	}
	var rec func(start int, failed map[*topology.Link]bool, budget int) bool
	rec = func(start int, failed map[*topology.Link]bool, budget int) bool {
		if !visit(failed) {
			return false
		}
		if budget == 0 {
			return true
		}
		for i := start; i < len(links); i++ {
			failed[links[i]] = true
			ok := rec(i+1, failed, budget-1)
			delete(failed, links[i])
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(0, map[*topology.Link]bool{}, maxFail)
}

// BlockedUnderFailures reports whether tc is never delivered under any
// failure set of at most maxFail links (the bounded ground truth for PC1).
func BlockedUnderFailures(n *topology.Network, tc topology.TrafficClass, maxFail int) bool {
	return ForEachFailureSet(n, maxFail, func(failed map[*topology.Link]bool) bool {
		out, _, _ := Forward(n, tc, failed)
		return out != Delivered
	})
}

// WaypointUnderFailures reports whether every delivery of tc under any
// failure set of at most maxFail links crossed a waypoint (the bounded
// ground truth for PC2).
func WaypointUnderFailures(n *topology.Network, tc topology.TrafficClass, maxFail int) bool {
	return ForEachFailureSet(n, maxFail, func(failed map[*topology.Link]bool) bool {
		tr := ForwardTrace(n, tc, failed)
		return tr.Outcome != Delivered || tr.Waypoint
	})
}

// DeliveredUnderFailures reports whether tc is delivered under every
// failure set of at most maxFail links, the empty set included (the
// bounded ground truth for PC3 with k = maxFail+1).
func DeliveredUnderFailures(n *topology.Network, tc topology.TrafficClass, maxFail int) bool {
	return ForEachFailureSet(n, maxFail, func(failed map[*topology.Link]bool) bool {
		out, _, _ := Forward(n, tc, failed)
		return out == Delivered
	})
}

// Forward walks a packet of traffic class tc from its source attachment
// into the network, returning the outcome and the device path taken.
// Ambiguous (ECMP) choices follow the recorded route deterministically
// but are reported via the final return.
func Forward(n *topology.Network, tc topology.TrafficClass, failed map[*topology.Link]bool) (Outcome, []string, bool) {
	s := New(n, tc.Dst, failed)
	// The packet enters at a device attached to the source subnet.
	var entry *topology.Device
	var entryIntf *topology.Interface
	for _, d := range n.Devices() {
		for _, intf := range d.Interfaces() {
			if intf.Subnet == tc.Src {
				entry, entryIntf = d, intf
			}
		}
	}
	if entry == nil {
		return Dropped, nil, false
	}
	// Host-facing ingress ACL.
	if !aclAllows(entryIntf, true, tc) {
		return Dropped, nil, false
	}
	visited := map[*topology.Device]bool{}
	cur := entry
	path := []string{cur.Name}
	ambiguous := false
	for {
		if visited[cur] {
			return Looped, path, ambiguous
		}
		visited[cur] = true
		link, hasRoute, amb := s.NextHop(cur)
		ambiguous = ambiguous || amb
		if !hasRoute {
			return Dropped, path, ambiguous
		}
		if link == nil {
			// Directly attached: egress host interface ACL.
			for _, intf := range cur.Interfaces() {
				if intf.Subnet == tc.Dst {
					if !aclAllows(intf, false, tc) {
						return Dropped, path, ambiguous
					}
					return Delivered, path, ambiguous
				}
			}
			return Dropped, path, ambiguous
		}
		// Egress ACL on our side, ingress ACL on the far side.
		var out, in *topology.Interface
		if link.A.Device == cur {
			out, in = link.A, link.B
		} else {
			out, in = link.B, link.A
		}
		if !aclAllows(out, false, tc) || !aclAllows(in, true, tc) {
			return Dropped, path, ambiguous
		}
		cur = in.Device
		path = append(path, cur.Name)
	}
}

// ReachableUnderSomeFailure reports whether tc can be delivered under any
// failure combination of at most maxFailures links (including none).
func ReachableUnderSomeFailure(n *topology.Network, tc topology.TrafficClass, maxFailures int) bool {
	return !ForEachFailureSet(n, maxFailures, func(failed map[*topology.Link]bool) bool {
		out, _, _ := Forward(n, tc, failed)
		return out != Delivered // stop (return false) once delivered
	})
}

// DeliveredUnderAllFailures reports whether tc is delivered under every
// failure combination of fewer than k links.
func DeliveredUnderAllFailures(n *topology.Network, tc topology.TrafficClass, k int) bool {
	links := n.Links
	m := k - 1
	if m > len(links) {
		m = len(links)
	}
	var rec func(start int, failed map[*topology.Link]bool, remaining int) bool
	rec = func(start int, failed map[*topology.Link]bool, remaining int) bool {
		if remaining == 0 {
			out, _, _ := Forward(n, tc, failed)
			return out == Delivered
		}
		for i := start; i <= len(links)-remaining; i++ {
			failed[links[i]] = true
			ok := rec(i+1, failed, remaining-1)
			delete(failed, links[i])
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(0, map[*topology.Link]bool{}, m)
}

// SortedDeviceNames is a debugging helper listing devices with routes.
func (s *Sim) SortedDeviceNames() []string {
	var out []string
	for d := range s.routes {
		out = append(out, d.Name)
	}
	sort.Strings(out)
	return out
}
