package simulate

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/arc"
	"repro/internal/topology"
)

func tcOf(n *topology.Network, src, dst string) topology.TrafficClass {
	return topology.TrafficClass{Src: n.Subnet(src), Dst: n.Subnet(dst)}
}

func TestForwardFigure2a(t *testing.T) {
	n := topology.Figure2a()
	// R -> T follows A, B, C.
	out, path, amb := Forward(n, tcOf(n, "R", "T"), nil)
	if out != Delivered {
		t.Fatalf("R->T outcome %v", out)
	}
	if amb {
		t.Error("R->T should be deterministic")
	}
	want := []string{"A", "B", "C"}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	// S -> U is dropped by the ACL on B.
	out, _, _ = Forward(n, tcOf(n, "S", "U"), nil)
	if out != Dropped {
		t.Errorf("S->U outcome %v, want dropped", out)
	}
}

func TestForwardUnderFailure(t *testing.T) {
	n := topology.Figure2a()
	failed := map[*topology.Link]bool{n.Link("A", "B"): true}
	// With A-B down, S->T has no path (C's interface to A is passive).
	out, _, _ := Forward(n, tcOf(n, "S", "T"), failed)
	if out != Dropped {
		t.Errorf("S->T under A-B failure: %v, want dropped", out)
	}
}

func TestStaticRouteForwarding(t *testing.T) {
	n := topology.Figure2a()
	// Figure 2d: static on A for T via C, distance 3 (worse than OSPF's
	// 110? No — administrative distance compares across protocols: 3
	// beats 110, so the static would win; the paper treats the distance
	// as an ETG cost instead. Use distance 120 to keep OSPF preferred.)
	n.Device("A").AddStatic(n.Subnet("T").Prefix, netip.MustParseAddr("10.0.2.3"), 120)
	out, path, _ := Forward(n, tcOf(n, "S", "T"), nil)
	if out != Delivered || path[1] != "B" {
		t.Errorf("OSPF (admin 110) should beat the 120 static: %v %v", out, path)
	}
	// Under A-B failure the static is the fallback.
	failed := map[*topology.Link]bool{n.Link("A", "B"): true}
	out, path, _ = Forward(n, tcOf(n, "S", "T"), failed)
	if out != Delivered || len(path) != 2 || path[1] != "C" {
		t.Errorf("static fallback failed: %v %v", out, path)
	}
}

func TestStaticRoutePreferred(t *testing.T) {
	n := topology.Figure2a()
	// Distance 3 beats OSPF's 110: traffic for T leaves A via C directly.
	n.Device("A").AddStatic(n.Subnet("T").Prefix, netip.MustParseAddr("10.0.2.3"), 3)
	out, path, _ := Forward(n, tcOf(n, "S", "T"), nil)
	if out != Delivered || len(path) != 2 || path[1] != "C" {
		t.Errorf("static should be preferred: %v %v", out, path)
	}
}

func TestRouteFilterDropsTraffic(t *testing.T) {
	n := topology.Figure2a()
	// B filters routes to T: traffic from S toward T dies at B... but A
	// only learns T via B, so A itself has no route either.
	n.Device("B").Process(topology.OSPF, 10).RouteFilters = append(
		n.Device("B").Process(topology.OSPF, 10).RouteFilters, n.Subnet("T").Prefix)
	out, _, _ := Forward(n, tcOf(n, "S", "T"), nil)
	if out != Dropped {
		t.Errorf("outcome %v, want dropped (route filter on B)", out)
	}
}

func TestECMPAmbiguity(t *testing.T) {
	n := topology.Figure2a()
	// Enable A-C with cost 2 so A has two equal-cost routes to T.
	delete(n.Device("C").Process(topology.OSPF, 10).Passive, "Ethernet0/1")
	n.Device("A").Interface("Ethernet0/2").Cost = 2
	_, _, amb := Forward(n, tcOf(n, "S", "T"), nil)
	if !amb {
		t.Error("equal-cost paths should be flagged ambiguous")
	}
}

func TestLoopDetection(t *testing.T) {
	// Statics pointing at each other: A says via B, B says via A.
	n := topology.NewNetwork()
	a := n.AddDevice("a")
	b := n.AddDevice("b")
	ia := a.AddInterface("e0")
	ia.Prefix = netip.MustParsePrefix("10.0.0.1/24")
	ib := b.AddInterface("e0")
	ib.Prefix = netip.MustParsePrefix("10.0.0.2/24")
	n.AddLink(ia, ib)
	src := n.AddSubnet("src", netip.MustParsePrefix("20.0.0.0/24"))
	isrc := a.AddInterface("h0")
	isrc.Prefix = netip.MustParsePrefix("20.0.0.1/24")
	isrc.Subnet = src
	dst := n.AddSubnet("dst", netip.MustParsePrefix("20.0.1.0/24"))
	// dst attaches NOWHERE; both devices have statics at each other.
	a.AddStatic(dst.Prefix, netip.MustParseAddr("10.0.0.2"), 1)
	b.AddStatic(dst.Prefix, netip.MustParseAddr("10.0.0.1"), 1)
	out, _, _ := Forward(n, topology.TrafficClass{Src: src, Dst: dst}, nil)
	if out != Looped {
		t.Errorf("outcome %v, want looped", out)
	}
}

// randomIGPNetwork builds a random OSPF-only network (filters and ACLs,
// no statics) for equivalence testing.
func randomIGPNetwork(r *rand.Rand) *topology.Network {
	n := topology.NewNetwork()
	nDev := 3 + r.Intn(3)
	devs := make([]*topology.Device, nDev)
	procs := make([]*topology.Process, nDev)
	for i := range devs {
		devs[i] = n.AddDevice(fmt.Sprintf("d%d", i))
		procs[i] = devs[i].AddProcess(topology.OSPF, 1)
		procs[i].Passive = map[string]bool{}
		procs[i].RedistributeConnected = true
	}
	linkIdx := 0
	for i := 0; i < nDev; i++ {
		for j := i + 1; j < nDev; j++ {
			if r.Intn(3) == 0 {
				continue
			}
			ia := devs[i].AddInterface(fmt.Sprintf("to%d", j))
			ib := devs[j].AddInterface(fmt.Sprintf("to%d", i))
			ia.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(linkIdx), 1}), 24)
			ib.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(linkIdx), 2}), 24)
			ia.Cost = 1 + r.Intn(4)
			ib.Cost = 1 + r.Intn(4)
			n.AddLink(ia, ib)
			procs[i].Interfaces = append(procs[i].Interfaces, ia)
			procs[j].Interfaces = append(procs[j].Interfaces, ib)
			linkIdx++
		}
	}
	for s := 0; s < 2; s++ {
		d := r.Intn(nDev)
		intf := devs[d].AddInterface(fmt.Sprintf("h%d", s))
		intf.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(s), 0, 1}), 24)
		sub := n.AddSubnet(fmt.Sprintf("net%d", s), netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(s), 0, 0}), 24))
		intf.Subnet = sub
		if r.Intn(4) == 0 {
			acl := devs[d].AddACL(fmt.Sprintf("A%d", s))
			acl.Entries = []topology.ACLEntry{{Permit: false, Dst: sub.Prefix}, {Permit: true}}
			intf.OutACL = acl.Name
		}
	}
	if r.Intn(3) == 0 {
		p := procs[r.Intn(nDev)]
		p.RouteFilters = append(p.RouteFilters, n.Subnets[r.Intn(2)].Prefix)
	}
	return n
}

// sameDevice reports whether both subnets attach to one router. ARC's
// ETGs cannot express direct same-device delivery (traffic would hairpin
// through a neighbor), so such classes are outside the equivalence
// theorem's scope.
func sameDevice(n *topology.Network, tc topology.TrafficClass) bool {
	var srcDev, dstDev *topology.Device
	for _, d := range n.Devices() {
		for _, intf := range d.Interfaces() {
			if intf.Subnet == tc.Src {
				srcDev = d
			}
			if intf.Subnet == tc.Dst {
				dstDev = d
			}
		}
	}
	return srcDev != nil && srcDev == dstDev
}

// TestPathsetEquivalence is ARC's §4.1 theorem checked against the
// independent simulator: the tcETG has a SRC→DST path iff the simulated
// network delivers the class under some combination of failures.
func TestPathsetEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomIGPNetwork(r)
		tc := topology.TrafficClass{Src: n.Subnets[0], Dst: n.Subnets[1]}
		if sameDevice(n, tc) {
			return true
		}
		etg := arc.BuildTCETG(arc.Slots(n), tc)
		etgHasPath := etg.G.PathExists(etg.Src, etg.Dst)
		simReaches := ReachableUnderSomeFailure(n, tc, len(n.Links))
		if etgHasPath != simReaches {
			t.Logf("seed %d: etg=%v sim=%v", seed, etgHasPath, simReaches)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPathEquivalence checks the stronger §4.1 property on restricted
// configurations: with unique shortest paths, the ETG's shortest path is
// exactly the simulator's forwarding path.
func TestPathEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomIGPNetwork(r)
		tc := topology.TrafficClass{Src: n.Subnets[0], Dst: n.Subnets[1]}
		if sameDevice(n, tc) {
			return true
		}
		etg := arc.BuildTCETG(arc.Slots(n), tc)
		path, unique := etg.G.ShortestPathUnique(etg.Src, etg.Dst)
		if path == nil || !unique {
			return true // unreachable or ambiguous: out of scope
		}
		out, simPath, amb := Forward(n, tc, nil)
		if amb {
			return true // simulator saw ECMP: ETG tie-breaks differ
		}
		if out != Delivered {
			t.Logf("seed %d: ETG has unique path but sim says %v", seed, out)
			return false
		}
		etgDevs := etg.DevicePath(path)
		if len(etgDevs) != len(simPath) {
			t.Logf("seed %d: etg %v vs sim %v", seed, etgDevs, simPath)
			return false
		}
		for i := range etgDevs {
			if etgDevs[i] != simPath[i] {
				t.Logf("seed %d: etg %v vs sim %v", seed, etgDevs, simPath)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestForwardTraceWaypoint(t *testing.T) {
	n := topology.Figure2a()
	tr := ForwardTrace(n, tcOf(n, "S", "T"), nil)
	if tr.Outcome != Delivered || !tr.Waypoint {
		t.Errorf("S->T should cross the B-C firewall: %+v", tr)
	}
	tr2 := ForwardTrace(n, tcOf(n, "R", "U"), nil)
	if tr2.Outcome != Dropped {
		t.Errorf("R->U should be dropped: %+v", tr2)
	}
}

func TestAlwaysTraversesWaypointFigure2a(t *testing.T) {
	n := topology.Figure2a()
	if !AlwaysTraversesWaypoint(n, tcOf(n, "S", "T")) {
		t.Error("every delivered S->T path crosses the firewall (EP2)")
	}
	// Enable A-C: a firewall-free path appears.
	delete(n.Device("C").Process(topology.OSPF, 10).Passive, "Ethernet0/1")
	if AlwaysTraversesWaypoint(n, tcOf(n, "S", "T")) {
		t.Error("A->C bypass should break EP2")
	}
}

// TestWaypointEquivalence: the PC2 verifier agrees with the simulator's
// exhaustive failure enumeration on IGP-only networks. The ETG check is
// one-directional by nature ("no waypoint-free path exists" implies the
// simulator never delivers without a waypoint), and on these restricted
// networks the converse holds too.
func TestWaypointEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomIGPNetwork(r)
		// Sprinkle waypoints.
		for _, l := range n.Links {
			if r.Intn(3) == 0 {
				l.Waypoint = true
			}
		}
		tc := topology.TrafficClass{Src: n.Subnets[0], Dst: n.Subnets[1]}
		if sameDevice(n, tc) {
			return true
		}
		etg := arc.BuildTCETG(arc.Slots(n), tc)
		etgOK := arc.VerifyAlwaysWaypoint(etg)
		simOK := AlwaysTraversesWaypoint(n, tc)
		if etgOK != simOK {
			t.Logf("seed %d: etg=%v sim=%v", seed, etgOK, simOK)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestKReachableEquivalence: the exact PC3 verifier agrees with the
// simulator's all-failures check on IGP-only networks.
func TestKReachableEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomIGPNetwork(r)
		tc := topology.TrafficClass{Src: n.Subnets[0], Dst: n.Subnets[1]}
		if sameDevice(n, tc) {
			return true
		}
		etg := arc.BuildTCETG(arc.Slots(n), tc)
		for k := 1; k <= 2; k++ {
			etgOK := arc.VerifyKReachable(etg, n, k)
			simOK := DeliveredUnderAllFailures(n, tc, k)
			if etgOK != simOK {
				t.Logf("seed %d k=%d: etg=%v sim=%v", seed, k, etgOK, simOK)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
