package topology

import (
	"net/netip"
	"testing"
)

func TestAddDeviceIdempotent(t *testing.T) {
	n := NewNetwork()
	d1 := n.AddDevice("r1")
	d2 := n.AddDevice("r1")
	if d1 != d2 {
		t.Fatal("AddDevice should return the existing device")
	}
	if n.NumDevices() != 1 {
		t.Fatalf("NumDevices = %d, want 1", n.NumDevices())
	}
}

func TestDeviceOrderDeterministic(t *testing.T) {
	n := NewNetwork()
	n.AddDevice("charlie")
	n.AddDevice("alpha")
	n.AddDevice("bravo")
	devs := n.Devices()
	want := []string{"charlie", "alpha", "bravo"}
	for i, d := range devs {
		if d.Name != want[i] {
			t.Errorf("Devices()[%d] = %s, want %s", i, d.Name, want[i])
		}
	}
	sorted := n.SortedDeviceNames()
	wantSorted := []string{"alpha", "bravo", "charlie"}
	for i, name := range sorted {
		if name != wantSorted[i] {
			t.Errorf("SortedDeviceNames()[%d] = %s, want %s", i, name, wantSorted[i])
		}
	}
}

func TestInterfacePeer(t *testing.T) {
	n := NewNetwork()
	a := n.AddDevice("a").AddInterface("e0")
	b := n.AddDevice("b").AddInterface("e0")
	l := n.AddLink(a, b)
	if a.Peer() != b || b.Peer() != a {
		t.Error("Peer lookup wrong")
	}
	if l.Name() != "a-b" {
		t.Errorf("link name %q, want a-b", l.Name())
	}
	solo := n.AddDevice("c").AddInterface("e0")
	if solo.Peer() != nil {
		t.Error("unlinked interface should have nil peer")
	}
}

func TestLinkLookup(t *testing.T) {
	n := Figure2a()
	if n.Link("A", "B") == nil || n.Link("B", "A") == nil {
		t.Error("A-B link should be found in both directions")
	}
	if n.Link("A", "Z") != nil {
		t.Error("nonexistent link should be nil")
	}
}

func TestTrafficClassEnumeration(t *testing.T) {
	n := Figure2a()
	tcs := n.TrafficClasses()
	// 4 subnets -> 12 ordered pairs.
	if len(tcs) != 12 {
		t.Fatalf("got %d traffic classes, want 12", len(tcs))
	}
	seen := map[string]bool{}
	for _, tc := range tcs {
		if tc.Src == tc.Dst {
			t.Errorf("self traffic class %s", tc)
		}
		if seen[tc.Key()] {
			t.Errorf("duplicate traffic class %s", tc)
		}
		seen[tc.Key()] = true
	}
}

func TestACLFirstMatchSemantics(t *testing.T) {
	u := netip.MustParsePrefix("10.40.0.0/16")
	s := netip.MustParsePrefix("10.30.0.0/16")
	acl := &ACL{Name: "t", Entries: []ACLEntry{
		{Permit: false, Dst: u},
		{Permit: true},
	}}
	if !acl.Blocks(s, u) {
		t.Error("ACL should block traffic destined for U")
	}
	if acl.Blocks(s, netip.MustParsePrefix("10.20.0.0/16")) {
		t.Error("ACL should permit other destinations")
	}
}

func TestACLImplicitDeny(t *testing.T) {
	s := netip.MustParsePrefix("10.30.0.0/16")
	tt := netip.MustParsePrefix("10.20.0.0/16")
	acl := &ACL{Name: "t", Entries: []ACLEntry{
		{Permit: true, Dst: tt},
	}}
	if acl.Blocks(s, tt) {
		t.Error("explicitly permitted traffic should pass")
	}
	if !acl.Blocks(s, netip.MustParsePrefix("10.40.0.0/16")) {
		t.Error("unmatched traffic should hit the implicit deny")
	}
}

func TestACLEmptyPermitsAll(t *testing.T) {
	var acl *ACL
	s := netip.MustParsePrefix("10.30.0.0/16")
	d := netip.MustParsePrefix("10.20.0.0/16")
	if acl.Blocks(s, d) {
		t.Error("nil ACL should not block")
	}
	empty := &ACL{Name: "e"}
	if empty.Blocks(s, d) {
		t.Error("empty ACL should not block")
	}
}

func TestACLSourceMatching(t *testing.T) {
	s := netip.MustParsePrefix("10.30.0.0/16")
	r := netip.MustParsePrefix("10.10.0.0/16")
	d := netip.MustParsePrefix("10.20.0.0/16")
	acl := &ACL{Name: "t", Entries: []ACLEntry{
		{Permit: false, Src: s, Dst: d},
		{Permit: true},
	}}
	if !acl.Blocks(s, d) {
		t.Error("S->D should be blocked")
	}
	if acl.Blocks(r, d) {
		t.Error("R->D should be permitted")
	}
}

func TestProcessBlocksDestination(t *testing.T) {
	n := NewNetwork()
	d := n.AddDevice("r")
	p := d.AddProcess(OSPF, 1)
	tt := netip.MustParsePrefix("10.20.0.0/16")
	p.RouteFilters = append(p.RouteFilters, tt)
	if !p.BlocksDestination(tt) {
		t.Error("exact-prefix filter should block")
	}
	if p.BlocksDestination(netip.MustParsePrefix("10.40.0.0/16")) {
		t.Error("other destinations should pass")
	}
	// A covering filter blocks more-specific destinations.
	p2 := d.AddProcess(OSPF, 2)
	p2.RouteFilters = append(p2.RouteFilters, netip.MustParsePrefix("10.0.0.0/8"))
	if !p2.BlocksDestination(tt) {
		t.Error("covering filter should block contained prefix")
	}
}

func TestProcessLookupAndNames(t *testing.T) {
	n := NewNetwork()
	d := n.AddDevice("r")
	p := d.AddProcess(OSPF, 10)
	if d.Process(OSPF, 10) != p {
		t.Error("Process lookup failed")
	}
	if d.Process(BGP, 10) != nil {
		t.Error("missing process should be nil")
	}
	if p.Name() != "r:ospf10" {
		t.Errorf("process name %q", p.Name())
	}
	if OSPF.String() != "ospf" || BGP.String() != "bgp" || RIP.String() != "rip" || Static.String() != "static" {
		t.Error("protocol names wrong")
	}
}

func TestFigure2aShape(t *testing.T) {
	n := Figure2a()
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n.NumDevices() != 3 {
		t.Fatalf("devices = %d, want 3", n.NumDevices())
	}
	if len(n.Subnets) != 4 {
		t.Fatalf("subnets = %d, want 4", len(n.Subnets))
	}
	if len(n.Links) != 3 {
		t.Fatalf("links = %d, want 3", len(n.Links))
	}
	if !n.Link("B", "C").Waypoint {
		t.Error("B-C link should carry the firewall waypoint")
	}
	if n.Link("A", "B").Waypoint || n.Link("A", "C").Waypoint {
		t.Error("only B-C should carry a waypoint")
	}
	// C's interface toward A must be passive (Figure 1 line 13).
	c := n.Device("C")
	pc := c.Process(OSPF, 10)
	if !pc.IsPassive(c.Interface("Ethernet0/1")) {
		t.Error("C Ethernet0/1 should be passive")
	}
	if pc.IsPassive(c.Interface("Ethernet0/2")) {
		t.Error("C Ethernet0/2 should not be passive")
	}
	// B blocks traffic destined for U on its interface from A.
	b := n.Device("B")
	acl := b.ACLs[b.Interface("Ethernet0/1").InACL]
	if acl == nil {
		t.Fatal("B should have an inbound ACL toward A")
	}
	u := n.Subnet("U")
	s := n.Subnet("S")
	if !acl.Blocks(s.Prefix, u.Prefix) {
		t.Error("ACL should block S->U")
	}
}

func TestValidateCatchesMissingACL(t *testing.T) {
	n := NewNetwork()
	d := n.AddDevice("r")
	i := d.AddInterface("e0")
	i.InACL = "NOPE"
	if err := n.Validate(); err == nil {
		t.Error("Validate should flag missing ACL reference")
	}
}

func TestValidateCatchesSelfLink(t *testing.T) {
	n := NewNetwork()
	d := n.AddDevice("r")
	i1 := d.AddInterface("e0")
	i2 := d.AddInterface("e1")
	n.AddLink(i1, i2)
	if err := n.Validate(); err == nil {
		t.Error("Validate should flag self-link")
	}
}

func TestSubnetLookups(t *testing.T) {
	n := Figure2a()
	if n.Subnet("T") == nil {
		t.Error("Subnet(T) missing")
	}
	if n.Subnet("Z") != nil {
		t.Error("Subnet(Z) should be nil")
	}
	p := netip.MustParsePrefix("10.20.0.0/16")
	if n.SubnetByPrefix(p) == nil || n.SubnetByPrefix(p).Name != "T" {
		t.Error("SubnetByPrefix(T) failed")
	}
}
