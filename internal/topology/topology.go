// Package topology models the semantic view of a network that the CPR
// pipeline operates on: devices, interfaces, physical links, subnets,
// routing processes, static routes, ACLs, route filters, and waypoints.
//
// A Network is typically produced by parsing router configurations
// (internal/config) but can also be constructed directly, e.g. by the
// workload generators.
package topology

import (
	"fmt"
	"net/netip"
	"sort"
)

// Protocol identifies a routing protocol. ARC models RIP, OSPF and eBGP
// (paper §9); Static is the pseudo-protocol for static routes.
type Protocol int

// Supported protocols.
const (
	OSPF Protocol = iota
	BGP
	RIP
	Static
)

// String returns the lowercase protocol name as used in configurations.
func (p Protocol) String() string {
	switch p {
	case OSPF:
		return "ospf"
	case BGP:
		return "bgp"
	case RIP:
		return "rip"
	case Static:
		return "static"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// Network is the semantic model of a network: the input to HARC
// construction.
type Network struct {
	devices map[string]*Device
	order   []string // deterministic device iteration order
	Subnets []*Subnet
	Links   []*Link
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{devices: make(map[string]*Device)}
}

// AddDevice creates (or returns the existing) device with the given name.
func (n *Network) AddDevice(name string) *Device {
	if d, ok := n.devices[name]; ok {
		return d
	}
	d := &Device{
		Name:       name,
		interfaces: make(map[string]*Interface),
		ACLs:       make(map[string]*ACL),
	}
	n.devices[name] = d
	n.order = append(n.order, name)
	return d
}

// Device returns the device with the given name, or nil.
func (n *Network) Device(name string) *Device { return n.devices[name] }

// Devices returns devices in insertion order.
func (n *Network) Devices() []*Device {
	out := make([]*Device, 0, len(n.order))
	for _, name := range n.order {
		out = append(out, n.devices[name])
	}
	return out
}

// NumDevices returns the number of devices.
func (n *Network) NumDevices() int { return len(n.order) }

// AddSubnet registers a destination/source subnet.
func (n *Network) AddSubnet(name string, prefix netip.Prefix) *Subnet {
	s := &Subnet{Name: name, Prefix: prefix}
	n.Subnets = append(n.Subnets, s)
	return s
}

// Subnet returns the subnet with the given name, or nil.
func (n *Network) Subnet(name string) *Subnet {
	for _, s := range n.Subnets {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// SubnetByPrefix returns the subnet with the given prefix, or nil.
func (n *Network) SubnetByPrefix(p netip.Prefix) *Subnet {
	for _, s := range n.Subnets {
		if s.Prefix == p {
			return s
		}
	}
	return nil
}

// AddLink connects two device interfaces with a physical link.
func (n *Network) AddLink(a, b *Interface) *Link {
	l := &Link{A: a, B: b}
	a.Link = l
	b.Link = l
	n.Links = append(n.Links, l)
	return l
}

// Link returns the physical link between devices a and b (any interfaces),
// or nil.
func (n *Network) Link(a, b string) *Link {
	for _, l := range n.Links {
		da, db := l.A.Device.Name, l.B.Device.Name
		if (da == a && db == b) || (da == b && db == a) {
			return l
		}
	}
	return nil
}

// TrafficClasses enumerates all ordered (src, dst) subnet pairs, the unit
// of policy in CPR.
func (n *Network) TrafficClasses() []TrafficClass {
	var tcs []TrafficClass
	for _, src := range n.Subnets {
		for _, dst := range n.Subnets {
			if src != dst {
				tcs = append(tcs, TrafficClass{Src: src, Dst: dst})
			}
		}
	}
	return tcs
}

// Validate checks structural invariants: every interface belongs to a
// device, every link has two ends on distinct devices, every process
// references interfaces on its own device, and referenced ACLs exist.
func (n *Network) Validate() error {
	for _, d := range n.Devices() {
		for _, intf := range d.Interfaces() {
			if intf.Device != d {
				return fmt.Errorf("topology: interface %s/%s has wrong device back-pointer", d.Name, intf.Name)
			}
			if intf.InACL != "" && d.ACLs[intf.InACL] == nil {
				return fmt.Errorf("topology: %s/%s references missing ACL %q", d.Name, intf.Name, intf.InACL)
			}
			if intf.OutACL != "" && d.ACLs[intf.OutACL] == nil {
				return fmt.Errorf("topology: %s/%s references missing ACL %q", d.Name, intf.Name, intf.OutACL)
			}
		}
		for _, p := range d.Processes {
			if p.Device != d {
				return fmt.Errorf("topology: process %s on %s has wrong device back-pointer", p.Name(), d.Name)
			}
			for _, intf := range p.Interfaces {
				if intf.Device != d {
					return fmt.Errorf("topology: process %s uses foreign interface %s/%s", p.Name(), intf.Device.Name, intf.Name)
				}
			}
		}
	}
	for _, l := range n.Links {
		if l.A == nil || l.B == nil {
			return fmt.Errorf("topology: link with missing endpoint")
		}
		if l.A.Device == l.B.Device {
			return fmt.Errorf("topology: self-link on device %s", l.A.Device.Name)
		}
	}
	return nil
}

// Device is a router.
type Device struct {
	Name       string
	interfaces map[string]*Interface
	intfOrder  []string
	Processes  []*Process
	Statics    []*StaticRoute
	ACLs       map[string]*ACL
	aclOrder   []string
	// Waypoint marks a middlebox (e.g. firewall) attached to the device
	// that shunts all transit traffic, making every intra-device edge a
	// waypoint edge.
	Waypoint bool
}

// AddInterface creates (or returns the existing) interface on d.
func (d *Device) AddInterface(name string) *Interface {
	if i, ok := d.interfaces[name]; ok {
		return i
	}
	i := &Interface{Name: name, Device: d, Cost: 1}
	d.interfaces[name] = i
	d.intfOrder = append(d.intfOrder, name)
	return i
}

// Interface returns the named interface, or nil.
func (d *Device) Interface(name string) *Interface { return d.interfaces[name] }

// Interfaces returns interfaces in insertion order.
func (d *Device) Interfaces() []*Interface {
	out := make([]*Interface, 0, len(d.intfOrder))
	for _, name := range d.intfOrder {
		out = append(out, d.interfaces[name])
	}
	return out
}

// AddProcess creates a routing process of the given protocol and id on d.
func (d *Device) AddProcess(proto Protocol, id int) *Process {
	p := &Process{Device: d, Proto: proto, ID: id}
	p.name = p.Name()
	d.Processes = append(d.Processes, p)
	return p
}

// Process returns the process with the given protocol and id, or nil.
func (d *Device) Process(proto Protocol, id int) *Process {
	for _, p := range d.Processes {
		if p.Proto == proto && p.ID == id {
			return p
		}
	}
	return nil
}

// AddACL creates (or returns the existing) ACL with the given name.
func (d *Device) AddACL(name string) *ACL {
	if a, ok := d.ACLs[name]; ok {
		return a
	}
	a := &ACL{Name: name}
	d.ACLs[name] = a
	d.aclOrder = append(d.aclOrder, name)
	return a
}

// ACLNames returns ACL names in insertion order.
func (d *Device) ACLNames() []string { return append([]string(nil), d.aclOrder...) }

// AddStatic appends a static route to the device.
func (d *Device) AddStatic(prefix netip.Prefix, nextHop netip.Addr, distance int) *StaticRoute {
	s := &StaticRoute{Prefix: prefix, NextHop: nextHop, Distance: distance}
	d.Statics = append(d.Statics, s)
	return s
}

// Interface is a physical interface on a device. An interface is attached
// either to a point-to-point Link (another device) or to a Subnet (hosts).
type Interface struct {
	Name   string
	Device *Device
	Prefix netip.Prefix // interface address/prefix
	Cost   int          // routing cost of the attached link (e.g. OSPF cost)
	InACL  string       // ACL applied to traffic entering via this interface
	OutACL string       // ACL applied to traffic exiting via this interface
	Link   *Link        // non-nil if device-to-device
	Subnet *Subnet      // non-nil if host-facing
}

// Peer returns the interface at the other end of the attached link, or nil.
func (i *Interface) Peer() *Interface {
	if i.Link == nil {
		return nil
	}
	if i.Link.A == i {
		return i.Link.B
	}
	return i.Link.A
}

// Link is a physical point-to-point link between two device interfaces.
type Link struct {
	A, B *Interface
	// Waypoint marks an on-path middlebox (e.g. firewall) on this link.
	Waypoint bool
}

// Name returns a canonical "devA-devB" name with endpoints sorted.
func (l *Link) Name() string {
	a, b := l.A.Device.Name, l.B.Device.Name
	if a > b {
		a, b = b, a
	}
	return a + "-" + b
}

// Subnet is a source/destination host subnet.
type Subnet struct {
	Name   string
	Prefix netip.Prefix
}

// TrafficClass is an ordered (source subnet, destination subnet) pair.
type TrafficClass struct {
	Src *Subnet
	Dst *Subnet
}

// String renders the class as "S->T".
func (tc TrafficClass) String() string { return tc.Src.Name + "->" + tc.Dst.Name }

// Key returns a stable map key for the class.
func (tc TrafficClass) Key() string { return tc.Src.Name + "\x00" + tc.Dst.Name }

// Process is a routing protocol instance configured on a device.
type Process struct {
	Device *Device
	Proto  Protocol
	ID     int
	// Interfaces the process runs over (forms adjacencies on, unless
	// passive).
	Interfaces []*Interface
	// Passive interfaces participate in the process (their prefixes are
	// advertised) but form no adjacency.
	Passive map[string]bool
	// RouteFilters lists destination prefixes whose routes this process
	// blocks (will not use or propagate).
	RouteFilters []netip.Prefix
	// RedistributesFrom lists sibling processes whose routes this process
	// redistributes.
	RedistributesFrom []*Process
	// RedistributeConnected makes the process originate routes for the
	// device's directly connected subnets.
	RedistributeConnected bool

	name string // cached Name(), filled by AddProcess
}

// Name returns "device:proto id". The value is cached: processes are
// identified by (Device, Proto, ID), all fixed at AddProcess time, and
// Name is called on hot verification paths.
func (p *Process) Name() string {
	if p.name == "" {
		p.name = fmt.Sprintf("%s:%s%d", p.Device.Name, p.Proto, p.ID)
	}
	return p.name
}

// UsesInterface reports whether the process runs over intf.
func (p *Process) UsesInterface(intf *Interface) bool {
	for _, i := range p.Interfaces {
		if i == intf {
			return true
		}
	}
	return false
}

// IsPassive reports whether intf is configured passive for this process.
func (p *Process) IsPassive(intf *Interface) bool { return p.Passive[intf.Name] }

// BlocksDestination reports whether a route filter on this process blocks
// routes to the given destination prefix.
func (p *Process) BlocksDestination(dst netip.Prefix) bool {
	for _, f := range p.RouteFilters {
		if f == dst || f.Contains(dst.Addr()) && f.Bits() <= dst.Bits() {
			return true
		}
	}
	return false
}

// StaticRoute directs traffic for Prefix to NextHop with the given
// administrative distance (lower wins against other protocols).
type StaticRoute struct {
	Prefix   netip.Prefix
	NextHop  netip.Addr
	Distance int
}

// ACL is an ordered list of permit/deny entries evaluated first-match.
// Traffic matching no entry is denied (standard IOS semantics), unless the
// ACL is empty, in which case it permits everything (an unreferenced or
// empty ACL is treated as absent).
type ACL struct {
	Name    string
	Entries []ACLEntry
}

// ACLEntry matches traffic by source and destination prefix.
type ACLEntry struct {
	Permit bool
	Src    netip.Prefix // zero value matches any
	Dst    netip.Prefix // zero value matches any
}

// matches reports whether the entry matches the (src, dst) pair.
func (e ACLEntry) matches(src, dst netip.Prefix) bool {
	srcOK := !e.Src.IsValid() || (e.Src.Contains(src.Addr()) && e.Src.Bits() <= src.Bits())
	dstOK := !e.Dst.IsValid() || (e.Dst.Contains(dst.Addr()) && e.Dst.Bits() <= dst.Bits())
	return srcOK && dstOK
}

// Blocks reports whether the ACL denies the traffic class (src, dst).
func (a *ACL) Blocks(src, dst netip.Prefix) bool {
	if a == nil || len(a.Entries) == 0 {
		return false
	}
	for _, e := range a.Entries {
		if e.matches(src, dst) {
			return !e.Permit
		}
	}
	return true // implicit deny
}

// SortedDeviceNames returns device names sorted lexicographically; useful
// for deterministic output.
func (n *Network) SortedDeviceNames() []string {
	names := append([]string(nil), n.order...)
	sort.Strings(names)
	return names
}
