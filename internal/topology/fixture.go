package topology

import "net/netip"

// Figure2a builds the example control plane of Figure 2a in the CPR paper:
// routers A, B, C; subnets R and S attached to A, U attached to B, T
// attached to C; physical links A-B, B-C (with a firewall waypoint), and
// A-C (present physically, but router C's interface toward A is passive so
// no OSPF adjacency exists); an ACL on B's interface toward A blocking
// traffic destined for U.
//
// The returned network satisfies EP1 (S→U always blocked), EP2 (S→T always
// traverses a waypoint) and EP4 (R→T uses A→B→C with no failures) but
// violates EP3 (S reaches T with < 2 link failures).
func Figure2a() *Network {
	n := NewNetwork()

	a := n.AddDevice("A")
	b := n.AddDevice("B")
	c := n.AddDevice("C")

	subR := n.AddSubnet("R", netip.MustParsePrefix("10.10.0.0/16"))
	subS := n.AddSubnet("S", netip.MustParsePrefix("10.30.0.0/16"))
	subT := n.AddSubnet("T", netip.MustParsePrefix("10.20.0.0/16"))
	subU := n.AddSubnet("U", netip.MustParsePrefix("10.40.0.0/16"))

	// Device A interfaces.
	aToB := a.AddInterface("Ethernet0/1")
	aToB.Prefix = netip.MustParsePrefix("10.0.1.1/24")
	aToC := a.AddInterface("Ethernet0/2")
	aToC.Prefix = netip.MustParsePrefix("10.0.2.1/24")
	aToR := a.AddInterface("Ethernet0/3")
	aToR.Prefix = netip.MustParsePrefix("10.10.0.1/16")
	aToR.Subnet = subR
	aToS := a.AddInterface("Ethernet0/4")
	aToS.Prefix = netip.MustParsePrefix("10.30.0.1/16")
	aToS.Subnet = subS

	// Device B interfaces.
	bToA := b.AddInterface("Ethernet0/1")
	bToA.Prefix = netip.MustParsePrefix("10.0.1.2/24")
	bToC := b.AddInterface("Ethernet0/2")
	bToC.Prefix = netip.MustParsePrefix("10.0.3.2/24")
	bToU := b.AddInterface("Ethernet0/3")
	bToU.Prefix = netip.MustParsePrefix("10.40.0.1/16")
	bToU.Subnet = subU

	// Device C interfaces (matching Figure 1).
	cToA := c.AddInterface("Ethernet0/1")
	cToA.Prefix = netip.MustParsePrefix("10.0.2.3/24")
	cToB := c.AddInterface("Ethernet0/2")
	cToB.Prefix = netip.MustParsePrefix("10.0.3.3/24")
	cToT := c.AddInterface("Ethernet0/3")
	cToT.Prefix = netip.MustParsePrefix("10.20.0.1/16")
	cToT.Subnet = subT

	// Physical links. The B-C link carries the firewall waypoint.
	n.AddLink(aToB, bToA)
	bc := n.AddLink(bToC, cToB)
	bc.Waypoint = true
	n.AddLink(aToC, cToA)

	// ACL on B's interface toward A blocking traffic destined for U.
	acl := b.AddACL("BLOCK-U")
	acl.Entries = []ACLEntry{
		{Permit: false, Dst: subU.Prefix},
		{Permit: true},
	}
	bToA.InACL = "BLOCK-U"

	// OSPF processes. Router C's interface toward A is passive (Figure 1
	// line 13), so no OSPF adjacency forms on the A-C link.
	pa := a.AddProcess(OSPF, 10)
	pa.Interfaces = []*Interface{aToB, aToC, aToR, aToS}
	pa.Passive = map[string]bool{aToR.Name: true, aToS.Name: true}
	pa.RedistributeConnected = true

	pb := b.AddProcess(OSPF, 10)
	pb.Interfaces = []*Interface{bToA, bToC, bToU}
	pb.Passive = map[string]bool{bToU.Name: true}
	pb.RedistributeConnected = true

	pc := c.AddProcess(OSPF, 10)
	pc.Interfaces = []*Interface{cToA, cToB, cToT}
	pc.Passive = map[string]bool{cToA.Name: true, cToT.Name: true}
	pc.RedistributeConnected = true

	return n
}
