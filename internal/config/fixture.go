package config

// Figure2aConfigs returns the configuration texts for the three routers of
// the paper's Figure 2a example (router C's config matches Figure 1). The
// extracted network is semantically identical to topology.Figure2a.
func Figure2aConfigs() map[string]string {
	return map[string]string{
		"A": `hostname A
!
interface Ethernet0/1
 description Link-to-B
 ip address 10.0.1.1 255.255.255.0
!
interface Ethernet0/2
 description Link-to-C
 ip address 10.0.2.1 255.255.255.0
!
interface Ethernet0/3
 description Subnet-R
 ip address 10.10.0.1 255.255.0.0
!
interface Ethernet0/4
 description Subnet-S
 ip address 10.30.0.1 255.255.0.0
!
router ospf 10
 redistribute connected
 passive-interface Ethernet0/3
 passive-interface Ethernet0/4
 network 10.0.0.0 0.255.255.255 area 0
`,
		"B": `hostname B
!
interface Ethernet0/1
 description Link-to-A
 ip address 10.0.1.2 255.255.255.0
 ip access-group BLOCK-U in
!
interface Ethernet0/2
 description Link-to-C
 ip address 10.0.3.2 255.255.255.0
 waypoint
!
interface Ethernet0/3
 description Subnet-U
 ip address 10.40.0.1 255.255.0.0
!
ip access-list extended BLOCK-U
 deny ip any 10.40.0.0 0.0.255.255
 permit ip any any
!
router ospf 10
 redistribute connected
 passive-interface Ethernet0/3
 network 10.0.0.0 0.255.255.255 area 0
`,
		"C": `hostname C
!
interface Ethernet0/1
 description Link-to-A
 ip address 10.0.2.3 255.255.255.0
!
interface Ethernet0/2
 description Link-to-B
 ip address 10.0.3.3 255.255.255.0
!
interface Ethernet0/3
 description Subnet-T
 ip address 10.20.0.1 255.255.0.0
!
router ospf 10
 redistribute connected
 passive-interface Ethernet0/1
 passive-interface Ethernet0/3
 network 10.0.0.0 0.255.255.255 area 0
`,
	}
}

// ParseFigure2a parses the Figure 2a fixture configurations.
func ParseFigure2a() ([]*Config, error) {
	texts := Figure2aConfigs()
	var configs []*Config
	for _, name := range []string{"A", "B", "C"} {
		cfg, err := Parse(name+".cfg", texts[name])
		if err != nil {
			return nil, err
		}
		configs = append(configs, cfg)
	}
	return configs, nil
}
