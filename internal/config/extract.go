package config

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/topology"
)

// SubnetDescriptionPrefix marks host-facing interfaces: an interface whose
// description is "Subnet-<NAME>" attaches the subnet NAME (Figure 1 uses
// exactly this convention).
const SubnetDescriptionPrefix = "Subnet-"

// Extract converts a set of device configurations into the semantic
// network model. It derives physical links by matching interface prefixes
// (two device interfaces in the same network form a link), attaches
// subnets from Subnet-<NAME> interface descriptions, and resolves
// redistribution references.
func Extract(configs []*Config) (*topology.Network, error) {
	n := topology.NewNetwork()

	type linkEnd struct {
		intf   *topology.Interface
		stanza *InterfaceStanza
	}
	byNet := make(map[netip.Prefix][]linkEnd)

	for _, cfg := range configs {
		if n.Device(cfg.Hostname) != nil {
			return nil, fmt.Errorf("config: duplicate hostname %q", cfg.Hostname)
		}
		dev := n.AddDevice(cfg.Hostname)
		dev.Waypoint = cfg.Waypoint
		for _, a := range cfg.ACLs {
			acl := dev.AddACL(a.Name)
			for _, e := range a.Entries {
				acl.Entries = append(acl.Entries, topology.ACLEntry{Permit: e.Permit, Src: e.Src, Dst: e.Dst})
			}
		}
		for _, is := range cfg.Interfaces {
			if is.Shutdown {
				continue
			}
			intf := dev.AddInterface(is.Name)
			intf.Prefix = is.Address
			if is.Cost > 0 {
				intf.Cost = is.Cost
			}
			intf.InACL = is.InACL
			intf.OutACL = is.OutACL
			if intf.InACL != "" && dev.ACLs[intf.InACL] == nil {
				return nil, fmt.Errorf("config: %s/%s references missing ACL %q", dev.Name, intf.Name, intf.InACL)
			}
			if intf.OutACL != "" && dev.ACLs[intf.OutACL] == nil {
				return nil, fmt.Errorf("config: %s/%s references missing ACL %q", dev.Name, intf.Name, intf.OutACL)
			}
			if !is.Address.IsValid() {
				continue
			}
			network := is.Address.Masked()
			if name, ok := strings.CutPrefix(is.Description, SubnetDescriptionPrefix); ok {
				sub := n.SubnetByPrefix(network)
				if sub == nil {
					sub = n.AddSubnet(name, network)
				} else if sub.Name != name {
					return nil, fmt.Errorf("config: subnet prefix %s named both %q and %q", network, sub.Name, name)
				}
				intf.Subnet = sub
				continue
			}
			byNet[network] = append(byNet[network], linkEnd{intf: intf, stanza: is})
		}
		for _, s := range cfg.Statics {
			dist := s.Distance
			if dist == 0 {
				dist = 1
			}
			dev.AddStatic(s.Prefix, s.NextHop, dist)
		}
	}

	// Derive physical links from shared networks, deterministically.
	nets := make([]netip.Prefix, 0, len(byNet))
	for p := range byNet {
		nets = append(nets, p)
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i].String() < nets[j].String() })
	for _, p := range nets {
		ends := byNet[p]
		if len(ends) == 1 {
			continue // dangling interface; tolerated
		}
		if len(ends) != 2 {
			return nil, fmt.Errorf("config: network %s has %d interfaces; point-to-point links need exactly 2", p, len(ends))
		}
		if ends[0].intf.Device == ends[1].intf.Device {
			return nil, fmt.Errorf("config: network %s connects device %s to itself", p, ends[0].intf.Device.Name)
		}
		l := n.AddLink(ends[0].intf, ends[1].intf)
		l.Waypoint = ends[0].stanza.Waypoint || ends[1].stanza.Waypoint
	}

	// Routing processes. First pass creates them; second pass resolves
	// redistribution references.
	for _, cfg := range configs {
		dev := n.Device(cfg.Hostname)
		for _, rs := range cfg.Routers {
			proc := dev.AddProcess(rs.Proto, rs.ID)
			proc.Passive = make(map[string]bool)
			for _, name := range rs.Passive {
				proc.Passive[name] = true
			}
			proc.RouteFilters = append(proc.RouteFilters, rs.DistributeListIn...)
			for _, intf := range dev.Interfaces() {
				if !intf.Prefix.IsValid() {
					continue
				}
				if processSelects(rs, intf) {
					proc.Interfaces = append(proc.Interfaces, intf)
				}
			}
		}
	}
	for _, cfg := range configs {
		dev := n.Device(cfg.Hostname)
		for _, rs := range cfg.Routers {
			proc := dev.Process(rs.Proto, rs.ID)
			for _, rd := range rs.Redistribute {
				switch rd.Source {
				case "connected":
					proc.RedistributeConnected = true
				case "static":
					// Static routes are modeled directly in dETGs; the
					// redistribute statement only matters for propagation,
					// which ARC's abstraction folds into the static edges.
				default:
					srcProto, _ := parseProtocol(rd.Source)
					src := dev.Process(srcProto, rd.ID)
					if src == nil {
						return nil, fmt.Errorf("config: %s redistributes missing process %s %d", dev.Name, rd.Source, rd.ID)
					}
					proc.RedistributesFrom = append(proc.RedistributesFrom, src)
				}
			}
		}
	}

	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// processSelects reports whether the router stanza's network/neighbor
// statements select the given interface.
func processSelects(rs *RouterStanza, intf *topology.Interface) bool {
	for _, nl := range rs.Networks {
		if wildcardMatch(nl.Addr, nl.Wildcard, intf.Prefix.Addr()) {
			return true
		}
	}
	for _, nb := range rs.Neighbors {
		// A BGP neighbor statement selects the interface whose network
		// contains the neighbor address.
		if intf.Prefix.Masked().Contains(nb.Addr) {
			return true
		}
	}
	return false
}

// wildcardMatch reports whether addr matches base under the wildcard mask
// (wildcard bits set to 1 are ignored).
func wildcardMatch(base, wildcard, addr netip.Addr) bool {
	b, w, a := base.As4(), wildcard.As4(), addr.As4()
	for i := 0; i < 4; i++ {
		if (b[i] &^ w[i]) != (a[i] &^ w[i]) {
			return false
		}
	}
	return true
}
