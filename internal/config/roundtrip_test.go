package config_test

// Printer/parser round-trip property: for any configuration the package
// can parse, Parse(Print(Parse(x))) must equal Parse(x) — printing is a
// lossless, canonical rendering of the AST. The property is checked on
// the Figure 2a fixture, on generated fat-tree instances, and on broken
// variants (the mutator exercises ACL, cost, filter, static, and
// shutdown stanzas that the fixture alone does not).

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/generate"
)

// roundTrip asserts the fixed-point property for one configuration text.
func roundTrip(t *testing.T, name, text string) {
	t.Helper()
	c1, err := config.Parse(name, text)
	if err != nil {
		t.Fatalf("%s does not parse: %v", name, err)
	}
	printed := c1.Print()
	c2, err := config.Parse(name, printed)
	if err != nil {
		t.Fatalf("printed form of %s does not re-parse: %v\n%s", name, err, printed)
	}
	if got := c2.Print(); got != printed {
		t.Fatalf("printing %s is not a fixed point:\n--- first ---\n%s--- second ---\n%s", name, printed, got)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("Parse(Print(Parse(x))) differs from Parse(x) for %s", name)
	}
}

func TestRoundTripFigure2a(t *testing.T) {
	for name, text := range config.Figure2aConfigs() {
		roundTrip(t, name+".cfg", text)
	}
}

func TestRoundTripFatTree(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst, err := generate.FatTree(generate.FatTreeOptions{
			K: 4, SubnetsPerEdge: 1,
			PC1: 1, PC2: 1, PC3: 1, PC4: 1,
			Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, c := range inst.Configs {
			roundTrip(t, c.Hostname+".cfg", c.Print())
		}
		// Broken instances exercise the mutated stanza shapes too.
		if err := generate.BreakFatTree(inst, seed+100, 2); err != nil {
			t.Fatalf("seed %d: break: %v", seed, err)
		}
		for _, c := range inst.Configs {
			roundTrip(t, c.Hostname+".cfg", c.Print())
		}
	}
}
