package config_test

// Apply-patch round trip: every LineChange a mutator records, replayed
// through Config.Apply onto a pristine parse of the same configuration,
// must reproduce the directly-mutated configuration byte for byte, and
// the result must re-parse and flip exactly the intended construct in
// the extracted network. This is the property the repair pipeline relies
// on when it ships patches as line edits instead of whole files. The
// table covers every Op kind (+, -, ~) and the order-sensitive Prepend
// flag.

import (
	"net/netip"
	"testing"

	"repro/internal/config"
	"repro/internal/topology"
)

var (
	pfxR   = netip.MustParsePrefix("10.10.0.0/16")
	pfxT   = netip.MustParsePrefix("10.20.0.0/16")
	pfxS   = netip.MustParsePrefix("10.30.0.0/16")
	pfxU   = netip.MustParsePrefix("10.40.0.0/16")
	pfxAny = netip.Prefix{}
	nhC    = netip.MustParseAddr("10.0.2.3")
)

type applyCase struct {
	name  string
	host  string
	setup func(*config.Config) // pre-mutation baseline edit, not replayed
	// mutate performs the construct edit and returns the recorded lines.
	mutate  func(*config.Config) ([]config.LineChange, error)
	wantOps []config.Op
	wantPre bool // at least one change carries Prepend
	// check asserts the semantic flip on the network extracted from the
	// mutated configuration (cfg is its re-parsed form).
	check func(t *testing.T, n *topology.Network, cfg *config.Config)
}

func applyCases() []applyCase {
	blocks := func(n *topology.Network, dev, intf string, src, dst netip.Prefix) bool {
		d := n.Device(dev)
		name := d.Interface(intf).InACL
		if name == "" {
			return false
		}
		return d.ACLs[name].Blocks(src, dst)
	}
	return []applyCase{
		{
			name: "acl-fresh-attach",
			host: "A",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.AddACLDeny("Ethernet0/1", "in", pfxR, pfxT)
			},
			wantOps: []config.Op{config.OpAdd, config.OpAdd, config.OpAdd},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if !blocks(n, "A", "Ethernet0/1", pfxR, pfxT) {
					t.Error("fresh ACL should block R->T on A Ethernet0/1 in")
				}
			},
		},
		{
			name: "acl-prepend-deny",
			host: "B",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.AddACLDeny("Ethernet0/1", "in", pfxR, pfxT)
			},
			wantOps: []config.Op{config.OpAdd},
			wantPre: true,
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if !blocks(n, "B", "Ethernet0/1", pfxR, pfxT) {
					t.Error("prepended deny should block R->T")
				}
				if !blocks(n, "B", "Ethernet0/1", pfxS, pfxU) {
					t.Error("existing deny any->U must keep blocking S->U")
				}
			},
		},
		{
			name: "acl-remove-entry",
			host: "B",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.RemoveACLDeny("Ethernet0/1", "in", pfxAny, pfxU)
			},
			wantOps: []config.Op{config.OpRemove},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if blocks(n, "B", "Ethernet0/1", pfxS, pfxU) {
					t.Error("removing the deny entry should unblock S->U")
				}
			},
		},
		{
			name: "acl-prepend-permit",
			host: "B",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				// No exact deny for (R,U); the broader any->U still blocks,
				// so the mutator must prepend a permit instead.
				return c.RemoveACLDeny("Ethernet0/1", "in", pfxR, pfxU)
			},
			wantOps: []config.Op{config.OpAdd},
			wantPre: true,
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if blocks(n, "B", "Ethernet0/1", pfxR, pfxU) {
					t.Error("prepended permit should unblock R->U")
				}
				if !blocks(n, "B", "Ethernet0/1", pfxS, pfxU) {
					t.Error("S->U must stay blocked by the broader deny")
				}
			},
		},
		{
			name: "adjacency-enable",
			host: "C",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.EnableAdjacency(topology.OSPF, 10, "Ethernet0/1")
			},
			wantOps: []config.Op{config.OpRemove},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				d := n.Device("C")
				if d.Process(topology.OSPF, 10).IsPassive(d.Interface("Ethernet0/1")) {
					t.Error("Ethernet0/1 should no longer be passive")
				}
			},
		},
		{
			name: "adjacency-disable",
			host: "A",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.DisableAdjacency(topology.OSPF, 10, "Ethernet0/1")
			},
			wantOps: []config.Op{config.OpAdd},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				d := n.Device("A")
				if !d.Process(topology.OSPF, 10).IsPassive(d.Interface("Ethernet0/1")) {
					t.Error("Ethernet0/1 should be passive")
				}
			},
		},
		{
			name: "static-add",
			host: "A",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.AddStaticRoute(pfxT, nhC, 3), nil
			},
			wantOps: []config.Op{config.OpAdd},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				for _, sr := range n.Device("A").Statics {
					if sr.Prefix == pfxT && sr.NextHop == nhC && sr.Distance == 3 {
						return
					}
				}
				t.Error("static route for T via C missing")
			},
		},
		{
			name:  "static-remove",
			host:  "A",
			setup: func(c *config.Config) { c.AddStaticRoute(pfxT, nhC, 3) },
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.RemoveStaticRoute(pfxT, nhC), nil
			},
			wantOps: []config.Op{config.OpRemove},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if len(n.Device("A").Statics) != 0 {
					t.Error("static route should be gone")
				}
			},
		},
		{
			name:  "static-distance",
			host:  "A",
			setup: func(c *config.Config) { c.AddStaticRoute(pfxT, nhC, 3) },
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.SetStaticDistance(pfxT, nhC, 5), nil
			},
			wantOps: []config.Op{config.OpModify},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				srs := n.Device("A").Statics
				if len(srs) != 1 || srs[0].Distance != 5 {
					t.Errorf("static distance not modified: %+v", srs)
				}
			},
		},
		{
			name: "route-filter-add",
			host: "A",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.AddRouteFilter(topology.OSPF, 10, pfxT)
			},
			wantOps: []config.Op{config.OpAdd},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if !n.Device("A").Process(topology.OSPF, 10).BlocksDestination(pfxT) {
					t.Error("process should filter routes to T")
				}
			},
		},
		{
			name: "route-filter-remove",
			host: "A",
			setup: func(c *config.Config) {
				if _, err := c.AddRouteFilter(topology.OSPF, 10, pfxT); err != nil {
					panic(err)
				}
			},
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.RemoveRouteFilter(topology.OSPF, 10, pfxT)
			},
			wantOps: []config.Op{config.OpRemove},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if n.Device("A").Process(topology.OSPF, 10).BlocksDestination(pfxT) {
					t.Error("route filter should be gone")
				}
			},
		},
		{
			name: "redistribute-add",
			host: "A",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.AddRedistribute(topology.OSPF, 10, topology.Static, 0)
			},
			wantOps: []config.Op{config.OpAdd},
			check: func(t *testing.T, _ *topology.Network, cfg *config.Config) {
				for _, rd := range cfg.Router(topology.OSPF, 10).Redistribute {
					if rd.Source == "static" {
						return
					}
				}
				t.Error("redistribute static line missing")
			},
		},
		{
			name: "redistribute-remove",
			host: "A",
			setup: func(c *config.Config) {
				if _, err := c.AddRedistribute(topology.OSPF, 10, topology.Static, 0); err != nil {
					panic(err)
				}
			},
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.RemoveRedistribute(topology.OSPF, 10, topology.Static, 0)
			},
			wantOps: []config.Op{config.OpRemove},
			check: func(t *testing.T, _ *topology.Network, cfg *config.Config) {
				for _, rd := range cfg.Router(topology.OSPF, 10).Redistribute {
					if rd.Source == "static" {
						t.Error("redistribute static line should be gone")
					}
				}
			},
		},
		{
			name: "waypoint-add",
			host: "A",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.SetWaypoint("Ethernet0/2", true)
			},
			wantOps: []config.Op{config.OpAdd},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if !n.Link("A", "C").Waypoint {
					t.Error("A-C link should carry a waypoint")
				}
			},
		},
		{
			name: "waypoint-remove",
			host: "B",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.SetWaypoint("Ethernet0/2", false)
			},
			wantOps: []config.Op{config.OpRemove},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if n.Link("B", "C").Waypoint {
					t.Error("B-C link waypoint should be gone")
				}
			},
		},
		{
			name: "cost-add",
			host: "A",
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.SetInterfaceCost("Ethernet0/1", 7)
			},
			wantOps: []config.Op{config.OpAdd},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if got := n.Device("A").Interface("Ethernet0/1").Cost; got != 7 {
					t.Errorf("cost = %d, want 7", got)
				}
			},
		},
		{
			name: "cost-modify",
			host: "A",
			setup: func(c *config.Config) {
				if _, err := c.SetInterfaceCost("Ethernet0/1", 7); err != nil {
					panic(err)
				}
			},
			mutate: func(c *config.Config) ([]config.LineChange, error) {
				return c.SetInterfaceCost("Ethernet0/1", 9)
			},
			wantOps: []config.Op{config.OpModify},
			check: func(t *testing.T, n *topology.Network, _ *config.Config) {
				if got := n.Device("A").Interface("Ethernet0/1").Cost; got != 9 {
					t.Errorf("cost = %d, want 9", got)
				}
			},
		},
	}
}

func TestApplyReplaysMutators(t *testing.T) {
	for _, tt := range applyCases() {
		t.Run(tt.name, func(t *testing.T) {
			// Baseline: Figure 2a texts with the case's setup edit folded in.
			base := map[string]string{}
			for host, text := range config.Figure2aConfigs() {
				c, err := config.Parse(host+".cfg", text)
				if err != nil {
					t.Fatal(err)
				}
				if host == tt.host && tt.setup != nil {
					tt.setup(c)
				}
				base[host] = c.Print()
			}

			// Direct mutation.
			direct, err := config.Parse(tt.host+".cfg", base[tt.host])
			if err != nil {
				t.Fatal(err)
			}
			changes, err := tt.mutate(direct)
			if err != nil {
				t.Fatalf("mutator: %v", err)
			}
			if len(changes) != len(tt.wantOps) {
				t.Fatalf("recorded %d changes, want %d: %v", len(changes), len(tt.wantOps), changes)
			}
			pre := false
			for i, lc := range changes {
				if lc.Op != tt.wantOps[i] {
					t.Errorf("change %d op %v, want %v (%v)", i, lc.Op, tt.wantOps[i], lc)
				}
				if lc.Device != tt.host {
					t.Errorf("change %d device %q, want %q", i, lc.Device, tt.host)
				}
				pre = pre || lc.Prepend
			}
			if pre != tt.wantPre {
				t.Errorf("prepend = %v, want %v: %v", pre, tt.wantPre, changes)
			}

			// Replay the recorded changes onto a pristine parse.
			replayed, err := config.Parse(tt.host+".cfg", base[tt.host])
			if err != nil {
				t.Fatal(err)
			}
			for _, lc := range changes {
				if err := replayed.Apply(lc); err != nil {
					t.Fatalf("Apply(%v): %v", lc, err)
				}
			}
			directText := direct.Print()
			if got := replayed.Print(); got != directText {
				t.Fatalf("replay diverges from direct mutation:\n--- direct ---\n%s--- replayed ---\n%s", directText, got)
			}

			// The mutated text re-parses and extracts; the intended
			// construct is flipped in the resulting network.
			var list []*config.Config
			var mutated *config.Config
			for _, host := range []string{"A", "B", "C"} {
				text := base[host]
				if host == tt.host {
					text = directText
				}
				c, err := config.Parse(host+".cfg", text)
				if err != nil {
					t.Fatalf("mutated %s does not re-parse: %v", host, err)
				}
				if host == tt.host {
					mutated = c
				}
				list = append(list, c)
			}
			n, err := config.Extract(list)
			if err != nil {
				t.Fatalf("extract: %v", err)
			}
			tt.check(t, n, mutated)
		})
	}
}
