package config

import (
	"fmt"
	"net/netip"
	"strings"
)

// Print renders the configuration in canonical form. Parse(Print(c)) is
// the identity on the AST, and the printed form is the unit in which
// repair sizes ("lines of configuration changed") are measured.
func (c *Config) Print() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\n", c.Hostname)
	if c.Waypoint {
		b.WriteString("waypoint\n")
	}
	for _, i := range c.Interfaces {
		b.WriteString("!\n")
		fmt.Fprintf(&b, "interface %s\n", i.Name)
		if i.Description != "" {
			fmt.Fprintf(&b, " description %s\n", i.Description)
		}
		if i.Address.IsValid() {
			fmt.Fprintf(&b, " ip address %s %s\n", i.Address.Addr(), maskFromBits(i.Address.Bits()))
		}
		if i.Cost > 0 {
			fmt.Fprintf(&b, " ip ospf cost %d\n", i.Cost)
		}
		if i.InACL != "" {
			fmt.Fprintf(&b, " ip access-group %s in\n", i.InACL)
		}
		if i.OutACL != "" {
			fmt.Fprintf(&b, " ip access-group %s out\n", i.OutACL)
		}
		if i.Waypoint {
			b.WriteString(" waypoint\n")
		}
		if i.Shutdown {
			b.WriteString(" shutdown\n")
		}
	}
	for _, a := range c.ACLs {
		b.WriteString("!\n")
		fmt.Fprintf(&b, "ip access-list extended %s\n", a.Name)
		for _, e := range a.Entries {
			b.WriteString(" " + e.text() + "\n")
		}
	}
	for _, s := range c.Statics {
		b.WriteString("!\n")
		b.WriteString(s.text() + "\n")
	}
	for _, r := range c.Routers {
		b.WriteString("!\n")
		fmt.Fprintf(&b, "router %s %d\n", r.Proto, r.ID)
		for _, rd := range r.Redistribute {
			b.WriteString(" " + rd.text() + "\n")
		}
		for _, pi := range r.Passive {
			fmt.Fprintf(&b, " passive-interface %s\n", pi)
		}
		for _, nl := range r.Networks {
			fmt.Fprintf(&b, " network %s %s area %d\n", nl.Addr, nl.Wildcard, nl.Area)
		}
		for _, dl := range r.DistributeListIn {
			fmt.Fprintf(&b, " distribute-list prefix %s in\n", dl)
		}
		for _, nb := range r.Neighbors {
			fmt.Fprintf(&b, " neighbor %s remote-as %d\n", nb.Addr, nb.RemoteAS)
		}
	}
	return b.String()
}

// text renders the ACL entry as a single configuration line.
func (e ACLEntryLine) text() string {
	verb := "deny"
	if e.Permit {
		verb = "permit"
	}
	return fmt.Sprintf("%s ip %s %s", verb, aclTarget(e.Src), aclTarget(e.Dst))
}

// text renders a static route as a single configuration line.
func (s *StaticRouteLine) text() string {
	line := fmt.Sprintf("ip route %s %s %s", s.Prefix.Addr(), maskFromBits(s.Prefix.Bits()), s.NextHop)
	if s.Distance > 0 {
		line += fmt.Sprintf(" %d", s.Distance)
	}
	return line
}

// text renders a redistribute statement.
func (r RedistributeLine) text() string {
	if r.Source == "connected" || r.Source == "static" {
		return "redistribute " + r.Source
	}
	return fmt.Sprintf("redistribute %s %d", r.Source, r.ID)
}

func aclTarget(p netip.Prefix) string {
	if !p.IsValid() {
		return "any"
	}
	return fmt.Sprintf("%s %s", p.Addr(), wildcardFromBits(p.Bits()))
}
