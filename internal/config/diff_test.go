package config

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestDiffIdentical(t *testing.T) {
	a, err := Parse("A", Figure2aConfigs()["A"])
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("A", Figure2aConfigs()["A"])
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(a, b); len(d) != 0 {
		t.Errorf("identical configs diff: %v", d)
	}
}

func TestDiffAddedStatic(t *testing.T) {
	a, _ := Parse("A", Figure2aConfigs()["A"])
	b, _ := Parse("A", Figure2aConfigs()["A"])
	b.AddStaticRoute(netip.MustParsePrefix("10.20.0.0/16"), netip.MustParseAddr("10.0.2.3"), 3)
	d := Diff(a, b)
	if len(d) != 1 || d[0].Op != OpAdd || !strings.Contains(d[0].Line, "ip route") {
		t.Fatalf("diff = %v", d)
	}
}

func TestDiffACLEntryChange(t *testing.T) {
	a, _ := Parse("B", Figure2aConfigs()["B"])
	b, _ := Parse("B", Figure2aConfigs()["B"])
	if _, err := b.RemoveACLDeny("Ethernet0/1", "in", netip.Prefix{}, netip.MustParsePrefix("10.40.0.0/16")); err != nil {
		t.Fatal(err)
	}
	d := Diff(a, b)
	if len(d) != 1 || d[0].Op != OpRemove {
		t.Fatalf("diff = %v", d)
	}
	if !strings.Contains(d[0].Section, "BLOCK-U") {
		t.Errorf("wrong section: %v", d[0])
	}
}

func TestDiffPassiveChange(t *testing.T) {
	a, _ := Parse("C", Figure2aConfigs()["C"])
	b, _ := Parse("C", Figure2aConfigs()["C"])
	if _, err := b.EnableAdjacency(topology.OSPF, 10, "Ethernet0/1"); err != nil {
		t.Fatal(err)
	}
	d := Diff(a, b)
	if len(d) != 1 || d[0].Op != OpRemove || !strings.Contains(d[0].Line, "passive-interface") {
		t.Fatalf("diff = %v", d)
	}
}

func TestDiffCountsMatchMutatorReports(t *testing.T) {
	// The line changes reported by the mutators must equal the textual
	// diff of before/after configurations.
	before, _ := Parse("B", Figure2aConfigs()["B"])
	after, _ := Parse("B", Figure2aConfigs()["B"])
	var reported int
	lcs, err := after.AddACLDeny("Ethernet0/2", "out", netip.MustParsePrefix("10.30.0.0/16"), netip.MustParsePrefix("10.20.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	reported += len(lcs)
	lcs2, err := after.DisableAdjacency(topology.OSPF, 10, "Ethernet0/1")
	if err != nil {
		t.Fatal(err)
	}
	reported += len(lcs2)
	d := Diff(before, after)
	if len(d) != reported {
		t.Errorf("textual diff %d lines, mutators reported %d:\n%s", len(d), reported, FormatDiff(d))
	}
}

func TestDiffConfigsDeviceAddRemove(t *testing.T) {
	a, _ := Parse("A", Figure2aConfigs()["A"])
	c, _ := Parse("C", Figure2aConfigs()["C"])
	old := map[string]*Config{"A": a}
	new := map[string]*Config{"A": a, "C": c}
	d := DiffConfigs(old, new)
	if len(d) == 0 {
		t.Fatal("added device should produce additions")
	}
	for _, lc := range d {
		if lc.Op != OpAdd || lc.Device != "C" {
			t.Errorf("unexpected change %v", lc)
		}
	}
	rev := DiffConfigs(new, old)
	if len(rev) != len(d) {
		t.Errorf("reverse diff %d lines, want %d", len(rev), len(d))
	}
	for _, lc := range rev {
		if lc.Op != OpRemove {
			t.Errorf("unexpected change %v", lc)
		}
	}
}

func TestFormatDiff(t *testing.T) {
	d := []LineChange{{Device: "A", Op: OpAdd, Line: "x"}}
	if !strings.Contains(FormatDiff(d), "+ A: x") {
		t.Errorf("FormatDiff = %q", FormatDiff(d))
	}
}
