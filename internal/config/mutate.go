package config

import (
	"fmt"
	"net/netip"

	"repro/internal/topology"
)

// Op is the kind of a single-line configuration edit.
type Op int

// Line edit operations.
const (
	OpAdd Op = iota
	OpRemove
	OpModify
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpRemove:
		return "-"
	case OpModify:
		return "~"
	}
	return "?"
}

// LineChange records one line of configuration added, removed, or modified
// on a device. The paper's minimality objective counts these.
type LineChange struct {
	Device  string
	Op      Op
	Section string // enclosing stanza header, or "" for top level
	Line    string
	// Prepend marks an added line that must precede the section's existing
	// lines (ACL entries are order-sensitive under first-match semantics).
	// It does not affect change counting; Apply honors it when replaying a
	// recorded change onto a configuration.
	Prepend bool
}

// String renders the change as a diff-style line.
func (lc LineChange) String() string {
	where := lc.Device
	if lc.Section != "" {
		where += " [" + lc.Section + "]"
	}
	return fmt.Sprintf("%s %s: %s", lc.Op, where, lc.Line)
}

// sectionRouter names a router stanza for LineChange.Section.
func sectionRouter(proto topology.Protocol, id int) string {
	return fmt.Sprintf("router %s %d", proto, id)
}

// sectionACL names an ACL stanza.
func sectionACL(name string) string { return "ip access-list extended " + name }

// sectionInterface names an interface stanza.
func sectionInterface(name string) string { return "interface " + name }

// AddACLDeny ensures traffic (src→dst) is denied when crossing intf in the
// given direction ("in" or "out"). If no ACL is attached it creates one
// (deny entry plus trailing permit-any) and attaches it; if one is attached
// it prepends a deny entry. Returns the line edits performed.
func (c *Config) AddACLDeny(intfName, dir string, src, dst netip.Prefix) ([]LineChange, error) {
	intf := c.Interface(intfName)
	if intf == nil {
		return nil, fmt.Errorf("config: %s has no interface %s", c.Hostname, intfName)
	}
	aclName := intf.InACL
	if dir == "out" {
		aclName = intf.OutACL
	}
	entry := ACLEntryLine{Permit: false, Src: src, Dst: dst}
	if aclName == "" {
		// Create a fresh ACL and attach it.
		aclName = fmt.Sprintf("CPR-%s-%s", intfName, dir)
		for i := 2; c.ACL(aclName) != nil; i++ {
			aclName = fmt.Sprintf("CPR-%s-%s-%d", intfName, dir, i)
		}
		acl := &ACLStanza{Name: aclName, Entries: []ACLEntryLine{entry, {Permit: true}}}
		c.ACLs = append(c.ACLs, acl)
		attach := fmt.Sprintf("ip access-group %s %s", aclName, dir)
		if dir == "out" {
			intf.OutACL = aclName
		} else {
			intf.InACL = aclName
		}
		return []LineChange{
			{Device: c.Hostname, Op: OpAdd, Section: sectionACL(aclName), Line: entry.text()},
			{Device: c.Hostname, Op: OpAdd, Section: sectionACL(aclName), Line: "permit ip any any"},
			{Device: c.Hostname, Op: OpAdd, Section: sectionInterface(intfName), Line: attach},
		}, nil
	}
	acl := c.ACL(aclName)
	if acl == nil {
		return nil, fmt.Errorf("config: %s references missing ACL %s", c.Hostname, aclName)
	}
	// Idempotence: if the ACL already denies the pair, nothing to do
	// (shared ACLs across interfaces hit this).
	if acl.Blocks(src, dst) {
		return nil, nil
	}
	// Prepending a deny is always correct and costs a single line.
	acl.Entries = append([]ACLEntryLine{entry}, acl.Entries...)
	return []LineChange{
		{Device: c.Hostname, Op: OpAdd, Section: sectionACL(aclName), Line: entry.text(), Prepend: true},
	}, nil
}

// RemoveACLDeny ensures traffic (src→dst) is permitted across intf in the
// given direction: if the attached ACL has a deny entry exactly matching
// the pair it is removed, otherwise a permit entry is prepended.
func (c *Config) RemoveACLDeny(intfName, dir string, src, dst netip.Prefix) ([]LineChange, error) {
	intf := c.Interface(intfName)
	if intf == nil {
		return nil, fmt.Errorf("config: %s has no interface %s", c.Hostname, intfName)
	}
	aclName := intf.InACL
	if dir == "out" {
		aclName = intf.OutACL
	}
	if aclName == "" {
		return nil, nil // nothing blocks; no change needed
	}
	acl := c.ACL(aclName)
	if acl == nil {
		return nil, fmt.Errorf("config: %s references missing ACL %s", c.Hostname, aclName)
	}
	if !acl.Blocks(src, dst) {
		return nil, nil // already permitted; idempotent
	}
	for i, e := range acl.Entries {
		if !e.Permit && e.Src == src && e.Dst == dst {
			acl.Entries = append(acl.Entries[:i], acl.Entries[i+1:]...)
			if !acl.Blocks(src, dst) {
				return []LineChange{
					{Device: c.Hostname, Op: OpRemove, Section: sectionACL(aclName), Line: e.text()},
				}, nil
			}
			// A broader entry still blocks the pair; restore and fall
			// through to prepend a permit instead.
			acl.Entries = append(acl.Entries[:i:i], append([]ACLEntryLine{e}, acl.Entries[i:]...)...)
			break
		}
	}
	entry := ACLEntryLine{Permit: true, Src: src, Dst: dst}
	acl.Entries = append([]ACLEntryLine{entry}, acl.Entries...)
	return []LineChange{
		{Device: c.Hostname, Op: OpAdd, Section: sectionACL(aclName), Line: entry.text(), Prepend: true},
	}, nil
}

// EnableAdjacency makes the process form an adjacency over intf: it
// removes a passive-interface line if present, otherwise adds a network
// statement covering the interface address.
func (c *Config) EnableAdjacency(proto topology.Protocol, id int, intfName string) ([]LineChange, error) {
	rs := c.Router(proto, id)
	if rs == nil {
		return nil, fmt.Errorf("config: %s has no router %s %d", c.Hostname, proto, id)
	}
	for i, p := range rs.Passive {
		if p == intfName {
			rs.Passive = append(rs.Passive[:i], rs.Passive[i+1:]...)
			return []LineChange{
				{Device: c.Hostname, Op: OpRemove, Section: sectionRouter(proto, id), Line: "passive-interface " + intfName},
			}, nil
		}
	}
	intf := c.Interface(intfName)
	if intf == nil || !intf.Address.IsValid() {
		return nil, fmt.Errorf("config: %s interface %s has no address", c.Hostname, intfName)
	}
	nl := NetworkLine{Addr: intf.Address.Addr(), Wildcard: netip.AddrFrom4([4]byte{})}
	rs.Networks = append(rs.Networks, nl)
	line := fmt.Sprintf("network %s %s area %d", nl.Addr, nl.Wildcard, nl.Area)
	return []LineChange{
		{Device: c.Hostname, Op: OpAdd, Section: sectionRouter(proto, id), Line: line},
	}, nil
}

// DisableAdjacency stops the process from forming an adjacency over intf
// by adding a passive-interface line.
func (c *Config) DisableAdjacency(proto topology.Protocol, id int, intfName string) ([]LineChange, error) {
	rs := c.Router(proto, id)
	if rs == nil {
		return nil, fmt.Errorf("config: %s has no router %s %d", c.Hostname, proto, id)
	}
	for _, p := range rs.Passive {
		if p == intfName {
			return nil, nil // already passive
		}
	}
	rs.Passive = append(rs.Passive, intfName)
	return []LineChange{
		{Device: c.Hostname, Op: OpAdd, Section: sectionRouter(proto, id), Line: "passive-interface " + intfName},
	}, nil
}

// AddBGPNeighbor adds a neighbor statement to the BGP process with the
// given ASN; idempotent.
func (c *Config) AddBGPNeighbor(id int, addr netip.Addr, remoteAS int) ([]LineChange, error) {
	rs := c.Router(topology.BGP, id)
	if rs == nil {
		return nil, fmt.Errorf("config: %s has no router bgp %d", c.Hostname, id)
	}
	for _, nb := range rs.Neighbors {
		if nb.Addr == addr {
			return nil, nil
		}
	}
	rs.Neighbors = append(rs.Neighbors, NeighborLine{Addr: addr, RemoteAS: remoteAS})
	return []LineChange{
		{Device: c.Hostname, Op: OpAdd, Section: sectionRouter(topology.BGP, id), Line: fmt.Sprintf("neighbor %s remote-as %d", addr, remoteAS)},
	}, nil
}

// RemoveBGPNeighbor deletes the neighbor statement for addr; idempotent.
func (c *Config) RemoveBGPNeighbor(id int, addr netip.Addr) ([]LineChange, error) {
	rs := c.Router(topology.BGP, id)
	if rs == nil {
		return nil, fmt.Errorf("config: %s has no router bgp %d", c.Hostname, id)
	}
	for i, nb := range rs.Neighbors {
		if nb.Addr == addr {
			rs.Neighbors = append(rs.Neighbors[:i], rs.Neighbors[i+1:]...)
			return []LineChange{
				{Device: c.Hostname, Op: OpRemove, Section: sectionRouter(topology.BGP, id), Line: fmt.Sprintf("neighbor %s remote-as %d", nb.Addr, nb.RemoteAS)},
			}, nil
		}
	}
	return nil, nil
}

// AddStaticRoute appends an "ip route" line.
func (c *Config) AddStaticRoute(prefix netip.Prefix, nextHop netip.Addr, distance int) []LineChange {
	sr := &StaticRouteLine{Prefix: prefix, NextHop: nextHop, Distance: distance}
	c.Statics = append(c.Statics, sr)
	return []LineChange{{Device: c.Hostname, Op: OpAdd, Line: sr.text()}}
}

// RemoveStaticRoute deletes the static route for (prefix, nextHop); it
// returns nil if no such route exists.
func (c *Config) RemoveStaticRoute(prefix netip.Prefix, nextHop netip.Addr) []LineChange {
	for i, sr := range c.Statics {
		if sr.Prefix == prefix && sr.NextHop == nextHop {
			c.Statics = append(c.Statics[:i], c.Statics[i+1:]...)
			return []LineChange{{Device: c.Hostname, Op: OpRemove, Line: sr.text()}}
		}
	}
	return nil
}

// AddRouteFilter blocks routes to dst on the process via a distribute-list
// line.
func (c *Config) AddRouteFilter(proto topology.Protocol, id int, dst netip.Prefix) ([]LineChange, error) {
	rs := c.Router(proto, id)
	if rs == nil {
		return nil, fmt.Errorf("config: %s has no router %s %d", c.Hostname, proto, id)
	}
	for _, p := range rs.DistributeListIn {
		if p == dst {
			return nil, nil // already filtered
		}
	}
	rs.DistributeListIn = append(rs.DistributeListIn, dst)
	return []LineChange{
		{Device: c.Hostname, Op: OpAdd, Section: sectionRouter(proto, id), Line: fmt.Sprintf("distribute-list prefix %s in", dst)},
	}, nil
}

// RemoveRouteFilter removes the distribute-list line for dst.
func (c *Config) RemoveRouteFilter(proto topology.Protocol, id int, dst netip.Prefix) ([]LineChange, error) {
	rs := c.Router(proto, id)
	if rs == nil {
		return nil, fmt.Errorf("config: %s has no router %s %d", c.Hostname, proto, id)
	}
	for i, p := range rs.DistributeListIn {
		if p == dst {
			rs.DistributeListIn = append(rs.DistributeListIn[:i], rs.DistributeListIn[i+1:]...)
			return []LineChange{
				{Device: c.Hostname, Op: OpRemove, Section: sectionRouter(proto, id), Line: fmt.Sprintf("distribute-list prefix %s in", dst)},
			}, nil
		}
	}
	return nil, nil
}

// AddRedistribute enables route redistribution from (srcProto, srcID) into
// the process.
func (c *Config) AddRedistribute(proto topology.Protocol, id int, srcProto topology.Protocol, srcID int) ([]LineChange, error) {
	rs := c.Router(proto, id)
	if rs == nil {
		return nil, fmt.Errorf("config: %s has no router %s %d", c.Hostname, proto, id)
	}
	rl := RedistributeLine{Source: srcProto.String(), ID: srcID}
	for _, r := range rs.Redistribute {
		if r == rl {
			return nil, nil
		}
	}
	rs.Redistribute = append(rs.Redistribute, rl)
	return []LineChange{
		{Device: c.Hostname, Op: OpAdd, Section: sectionRouter(proto, id), Line: rl.text()},
	}, nil
}

// RemoveRedistribute disables route redistribution from (srcProto, srcID).
func (c *Config) RemoveRedistribute(proto topology.Protocol, id int, srcProto topology.Protocol, srcID int) ([]LineChange, error) {
	rs := c.Router(proto, id)
	if rs == nil {
		return nil, fmt.Errorf("config: %s has no router %s %d", c.Hostname, proto, id)
	}
	rl := RedistributeLine{Source: srcProto.String(), ID: srcID}
	for i, r := range rs.Redistribute {
		if r == rl {
			rs.Redistribute = append(rs.Redistribute[:i], rs.Redistribute[i+1:]...)
			return []LineChange{
				{Device: c.Hostname, Op: OpRemove, Section: sectionRouter(proto, id), Line: rl.text()},
			}, nil
		}
	}
	return nil, nil
}

// SetStaticDistance changes the administrative distance of an existing
// static route; one modified line.
func (c *Config) SetStaticDistance(prefix netip.Prefix, nextHop netip.Addr, distance int) []LineChange {
	for _, sr := range c.Statics {
		if sr.Prefix == prefix && sr.NextHop == nextHop {
			if sr.Distance == distance {
				return nil
			}
			sr.Distance = distance
			return []LineChange{{Device: c.Hostname, Op: OpModify, Line: sr.text()}}
		}
	}
	return nil
}

// SetWaypoint adds or removes the waypoint marker on an interface
// (modeling middlebox attachment on the adjacent link).
func (c *Config) SetWaypoint(intfName string, present bool) ([]LineChange, error) {
	intf := c.Interface(intfName)
	if intf == nil {
		return nil, fmt.Errorf("config: %s has no interface %s", c.Hostname, intfName)
	}
	if intf.Waypoint == present {
		return nil, nil
	}
	intf.Waypoint = present
	op := OpAdd
	if !present {
		op = OpRemove
	}
	return []LineChange{
		{Device: c.Hostname, Op: op, Section: sectionInterface(intfName), Line: "waypoint"},
	}, nil
}

// SetInterfaceCost changes the routing cost of intf; it counts as a single
// modified line (or an added line when no explicit cost was configured).
func (c *Config) SetInterfaceCost(intfName string, cost int) ([]LineChange, error) {
	intf := c.Interface(intfName)
	if intf == nil {
		return nil, fmt.Errorf("config: %s has no interface %s", c.Hostname, intfName)
	}
	op := OpModify
	if intf.Cost == 0 {
		op = OpAdd
	}
	if intf.Cost == cost {
		return nil, nil
	}
	intf.Cost = cost
	return []LineChange{
		{Device: c.Hostname, Op: op, Section: sectionInterface(intfName), Line: fmt.Sprintf("ip ospf cost %d", cost)},
	}, nil
}
