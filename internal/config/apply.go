package config

import (
	"fmt"
	"net/netip"
	"strings"
)

// Apply replays a recorded LineChange onto the configuration, mutating it
// the way the original mutator did. It parses lc.Line with the regular
// config parser, so a change that Apply accepts is guaranteed to re-parse;
// unknown lines or inapplicable edits (removing a line that is not
// present, modifying one that does not exist) are errors. ACL additions
// honor lc.Prepend, preserving first-match semantics.
func (c *Config) Apply(lc LineChange) error {
	p := &parser{file: "apply(" + lc.Device + ")"}
	switch {
	case lc.Section == "":
		return c.applyTopLevel(p, lc)
	case strings.HasPrefix(lc.Section, "interface "):
		return c.applyInterface(p, lc, strings.TrimPrefix(lc.Section, "interface "))
	case strings.HasPrefix(lc.Section, "ip access-list extended "):
		return c.applyACL(p, lc, strings.TrimPrefix(lc.Section, "ip access-list extended "))
	case strings.HasPrefix(lc.Section, "router "):
		return c.applyRouter(p, lc)
	}
	return fmt.Errorf("config: apply: unknown section %q", lc.Section)
}

// ApplyAll replays changes in order, stopping at the first failure.
func (c *Config) ApplyAll(lcs []LineChange) error {
	for _, lc := range lcs {
		if err := c.Apply(lc); err != nil {
			return err
		}
	}
	return nil
}

func (c *Config) applyTopLevel(p *parser, lc LineChange) error {
	fields := strings.Fields(lc.Line)
	if len(fields) < 2 || fields[0] != "ip" || fields[1] != "route" {
		return fmt.Errorf("config: apply: unknown top-level line %q", lc.Line)
	}
	sr, err := p.parseStatic(fields[2:])
	if err != nil {
		return err
	}
	switch lc.Op {
	case OpAdd:
		c.Statics = append(c.Statics, sr)
		return nil
	case OpRemove:
		for i, have := range c.Statics {
			if have.Prefix == sr.Prefix && have.NextHop == sr.NextHop {
				c.Statics = append(c.Statics[:i], c.Statics[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("config: apply: no static route %s via %s to remove", sr.Prefix, sr.NextHop)
	case OpModify:
		for _, have := range c.Statics {
			if have.Prefix == sr.Prefix && have.NextHop == sr.NextHop {
				have.Distance = sr.Distance
				return nil
			}
		}
		return fmt.Errorf("config: apply: no static route %s via %s to modify", sr.Prefix, sr.NextHop)
	}
	return fmt.Errorf("config: apply: bad op %v", lc.Op)
}

func (c *Config) applyInterface(p *parser, lc LineChange, name string) error {
	intf := c.Interface(name)
	if intf == nil {
		return fmt.Errorf("config: apply: no interface %s", name)
	}
	// Parse the single sub-statement into a scratch stanza; whichever field
	// it populates identifies the construct.
	p.lines = []string{" " + lc.Line}
	p.pos = 0
	tmp, err := p.parseInterface(name)
	if err != nil {
		return err
	}
	fields := strings.Fields(lc.Line)
	switch {
	case tmp.Waypoint:
		intf.Waypoint = lc.Op != OpRemove
	case tmp.Shutdown:
		intf.Shutdown = lc.Op != OpRemove
	case tmp.Description != "":
		if lc.Op == OpRemove {
			intf.Description = ""
		} else {
			intf.Description = tmp.Description
		}
	case tmp.Cost != 0:
		if lc.Op == OpRemove {
			if intf.Cost != tmp.Cost {
				return fmt.Errorf("config: apply: interface %s cost is %d, not %d", name, intf.Cost, tmp.Cost)
			}
			intf.Cost = 0
		} else {
			intf.Cost = tmp.Cost
		}
	case tmp.InACL != "" || tmp.OutACL != "":
		set := func(slot *string, want string) error {
			if lc.Op == OpRemove {
				if *slot != want {
					return fmt.Errorf("config: apply: interface %s access-group is %q, not %q", name, *slot, want)
				}
				*slot = ""
				return nil
			}
			*slot = want
			return nil
		}
		if tmp.InACL != "" {
			return set(&intf.InACL, tmp.InACL)
		}
		return set(&intf.OutACL, tmp.OutACL)
	case tmp.Address.IsValid():
		if lc.Op == OpRemove {
			intf.Address = netip.Prefix{}
		} else {
			intf.Address = tmp.Address
		}
	default:
		return fmt.Errorf("config: apply: unsupported interface line %q", fields)
	}
	return nil
}

func (c *Config) applyACL(p *parser, lc LineChange, name string) error {
	entry, err := p.parseACLEntry(lc.Line)
	if err != nil {
		return err
	}
	acl := c.ACL(name)
	switch lc.Op {
	case OpAdd:
		if acl == nil {
			acl = &ACLStanza{Name: name}
			c.ACLs = append(c.ACLs, acl)
		}
		if lc.Prepend {
			acl.Entries = append([]ACLEntryLine{entry}, acl.Entries...)
		} else {
			acl.Entries = append(acl.Entries, entry)
		}
		return nil
	case OpRemove:
		if acl == nil {
			return fmt.Errorf("config: apply: no ACL %s", name)
		}
		for i, e := range acl.Entries {
			if e == entry {
				acl.Entries = append(acl.Entries[:i], acl.Entries[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("config: apply: ACL %s has no entry %q", name, lc.Line)
	}
	return fmt.Errorf("config: apply: bad ACL op %v", lc.Op)
}

func (c *Config) applyRouter(p *parser, lc LineChange) error {
	var protoName string
	var id int
	if _, err := fmt.Sscanf(lc.Section, "router %s %d", &protoName, &id); err != nil {
		return fmt.Errorf("config: apply: bad router section %q", lc.Section)
	}
	proto, ok := parseProtocol(protoName)
	if !ok {
		return fmt.Errorf("config: apply: unknown protocol %q", protoName)
	}
	rs := c.Router(proto, id)
	if rs == nil {
		return fmt.Errorf("config: apply: no router %s %d", proto, id)
	}
	p.lines = []string{" " + lc.Line}
	p.pos = 0
	tmp, err := p.parseRouter([]string{protoName, fmt.Sprint(id)})
	if err != nil {
		return err
	}
	switch {
	case len(tmp.Passive) == 1:
		return applyListEdit(lc, &rs.Passive, tmp.Passive[0], lc.Line)
	case len(tmp.Networks) == 1:
		return applyListEdit(lc, &rs.Networks, tmp.Networks[0], lc.Line)
	case len(tmp.Redistribute) == 1:
		return applyListEdit(lc, &rs.Redistribute, tmp.Redistribute[0], lc.Line)
	case len(tmp.DistributeListIn) == 1:
		return applyListEdit(lc, &rs.DistributeListIn, tmp.DistributeListIn[0], lc.Line)
	case len(tmp.Neighbors) == 1:
		nb := tmp.Neighbors[0]
		switch lc.Op {
		case OpAdd:
			rs.Neighbors = append(rs.Neighbors, nb)
			return nil
		case OpRemove:
			for i, have := range rs.Neighbors {
				if have.Addr == nb.Addr {
					rs.Neighbors = append(rs.Neighbors[:i], rs.Neighbors[i+1:]...)
					return nil
				}
			}
			return fmt.Errorf("config: apply: no neighbor %s to remove", nb.Addr)
		}
		return fmt.Errorf("config: apply: bad neighbor op %v", lc.Op)
	}
	return fmt.Errorf("config: apply: unsupported router line %q", lc.Line)
}

// applyListEdit adds or removes one element of a router stanza list.
func applyListEdit[T comparable](lc LineChange, list *[]T, elem T, line string) error {
	switch lc.Op {
	case OpAdd:
		*list = append(*list, elem)
		return nil
	case OpRemove:
		for i, have := range *list {
			if have == elem {
				*list = append((*list)[:i], (*list)[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("config: apply: no line %q to remove", line)
	}
	return fmt.Errorf("config: apply: bad op %v for %q", lc.Op, line)
}
