// Package config implements the router configuration language CPR
// operates on: an IOS-flavored dialect covering exactly the constructs ARC
// models (paper §9) — interfaces, OSPF/BGP/RIP processes, static routes,
// ACLs, route filters (distribute-lists), and route redistribution.
//
// The package provides parsing (Parse), printing (Print), semantic
// extraction to a topology.Network (Extract), and the mutation operations
// the repair translator needs (mutate.go). Mutators record the exact
// configuration lines they add or remove so that repair sizes are measured
// in real lines of configuration, as in the paper's evaluation.
package config

import (
	"fmt"
	"net/netip"

	"repro/internal/topology"
)

// Config is the parsed configuration of one device.
type Config struct {
	Hostname string
	// Waypoint marks a middlebox attached to the device itself (rare; link
	// waypoints are declared on interfaces).
	Waypoint   bool
	Interfaces []*InterfaceStanza
	Routers    []*RouterStanza
	Statics    []*StaticRouteLine
	ACLs       []*ACLStanza
}

// InterfaceStanza mirrors an "interface <name>" block.
type InterfaceStanza struct {
	Name        string
	Description string
	Address     netip.Prefix // from "ip address A.B.C.D M.M.M.M"
	Cost        int          // from "ip ospf cost N"; 0 means default (1)
	InACL       string       // from "ip access-group NAME in"
	OutACL      string       // from "ip access-group NAME out"
	Waypoint    bool         // from "waypoint": on-path middlebox on the attached link
	Shutdown    bool
}

// RouterStanza mirrors a "router <proto> <id>" block.
type RouterStanza struct {
	Proto    topology.Protocol
	ID       int
	Networks []NetworkLine // "network A.B.C.D W.W.W.W [area N]"
	Passive  []string      // "passive-interface <name>"
	// Redistribute lists redistribution sources: "connected", "static", or
	// "<proto> <id>".
	Redistribute []RedistributeLine
	// DistributeListIn lists destination prefixes whose routes the process
	// blocks: "distribute-list prefix A.B.C.D/L in".
	DistributeListIn []netip.Prefix
	Neighbors        []NeighborLine // BGP: "neighbor A.B.C.D remote-as N"
}

// NetworkLine is an OSPF/RIP network statement selecting interfaces.
type NetworkLine struct {
	Addr     netip.Addr
	Wildcard netip.Addr // wildcard mask (0 bits match)
	Area     int
}

// RedistributeLine names a redistribution source.
type RedistributeLine struct {
	Source string // "connected", "static", "ospf", "bgp", "rip"
	ID     int    // process id when Source is a protocol
}

// NeighborLine is a BGP neighbor statement.
type NeighborLine struct {
	Addr     netip.Addr
	RemoteAS int
}

// StaticRouteLine mirrors "ip route A.B.C.D M.M.M.M NH [distance]".
type StaticRouteLine struct {
	Prefix   netip.Prefix
	NextHop  netip.Addr
	Distance int // 0 means default (1)
}

// ACLStanza mirrors "ip access-list extended <name>".
type ACLStanza struct {
	Name    string
	Entries []ACLEntryLine
}

// ACLEntryLine mirrors "permit|deny ip <src> <dst>" where src/dst are
// "any" or "A.B.C.D W.W.W.W" (wildcard mask).
type ACLEntryLine struct {
	Permit bool
	Src    netip.Prefix // invalid prefix means "any"
	Dst    netip.Prefix // invalid prefix means "any"
}

// blocks reports whether the ACL denies the (src, dst) pair under
// first-match semantics with implicit deny (mirrors topology.ACL.Blocks)..
func (a *ACLStanza) Blocks(src, dst netip.Prefix) bool {
	if a == nil || len(a.Entries) == 0 {
		return false
	}
	match := func(p, q netip.Prefix) bool {
		return !p.IsValid() || (p.Contains(q.Addr()) && p.Bits() <= q.Bits())
	}
	for _, e := range a.Entries {
		if match(e.Src, src) && match(e.Dst, dst) {
			return !e.Permit
		}
	}
	return true
}

// Interface returns the interface stanza with the given name, or nil.
func (c *Config) Interface(name string) *InterfaceStanza {
	for _, i := range c.Interfaces {
		if i.Name == name {
			return i
		}
	}
	return nil
}

// Router returns the router stanza for (proto, id), or nil.
func (c *Config) Router(proto topology.Protocol, id int) *RouterStanza {
	for _, r := range c.Routers {
		if r.Proto == proto && r.ID == id {
			return r
		}
	}
	return nil
}

// ACL returns the ACL stanza with the given name, or nil.
func (c *Config) ACL(name string) *ACLStanza {
	for _, a := range c.ACLs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// prefixFromMask builds a prefix from an address and a subnet mask.
func prefixFromMask(addr, mask netip.Addr) (netip.Prefix, error) {
	bits, ok := maskBits(mask)
	if !ok {
		return netip.Prefix{}, fmt.Errorf("config: invalid netmask %s", mask)
	}
	return netip.PrefixFrom(addr, bits), nil
}

// maskBits converts a contiguous subnet mask to a bit count.
func maskBits(mask netip.Addr) (int, bool) {
	b := mask.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	bits := 0
	for v&0x80000000 != 0 {
		bits++
		v <<= 1
	}
	return bits, v == 0
}

// maskFromBits renders a bit count as a dotted subnet mask.
func maskFromBits(bits int) netip.Addr {
	var v uint32
	if bits > 0 {
		v = ^uint32(0) << (32 - bits)
	}
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// wildcardFromBits renders a bit count as a dotted wildcard mask.
func wildcardFromBits(bits int) netip.Addr {
	var v uint32 = ^uint32(0)
	if bits > 0 {
		v = ^(^uint32(0) << (32 - bits))
	}
	if bits == 0 {
		v = ^uint32(0)
	}
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// prefixFromWildcard builds a prefix from an address and a wildcard mask.
func prefixFromWildcard(addr, wild netip.Addr) (netip.Prefix, error) {
	b := wild.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	inv := ^v
	bits := 0
	for inv&0x80000000 != 0 {
		bits++
		inv <<= 1
	}
	if inv != 0 {
		return netip.Prefix{}, fmt.Errorf("config: non-contiguous wildcard %s", wild)
	}
	return netip.PrefixFrom(addr, bits), nil
}
