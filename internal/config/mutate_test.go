package config

import (
	"net/netip"
	"testing"

	"repro/internal/topology"
)

func parseB(t *testing.T) *Config {
	t.Helper()
	cfg, err := Parse("B.cfg", Figure2aConfigs()["B"])
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func parseC(t *testing.T) *Config {
	t.Helper()
	cfg, err := Parse("C.cfg", Figure2aConfigs()["C"])
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

var (
	sPfx = netip.MustParsePrefix("10.30.0.0/16")
	uPfx = netip.MustParsePrefix("10.40.0.0/16")
	tPfx = netip.MustParsePrefix("10.20.0.0/16")
)

func TestAddACLDenyExistingACL(t *testing.T) {
	cfg := parseB(t)
	changes, err := cfg.AddACLDeny("Ethernet0/1", "in", sPfx, tPfx)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Op != OpAdd {
		t.Fatalf("expected 1 added line, got %v", changes)
	}
	acl := cfg.ACL("BLOCK-U")
	if len(acl.Entries) != 3 || acl.Entries[0].Permit || acl.Entries[0].Dst != tPfx {
		t.Errorf("deny entry not prepended: %+v", acl.Entries)
	}
}

func TestAddACLDenyCreatesACL(t *testing.T) {
	cfg := parseB(t)
	changes, err := cfg.AddACLDeny("Ethernet0/2", "out", sPfx, uPfx)
	if err != nil {
		t.Fatal(err)
	}
	// New ACL: deny + permit-any + access-group attach = 3 lines.
	if len(changes) != 3 {
		t.Fatalf("expected 3 added lines, got %d: %v", len(changes), changes)
	}
	intf := cfg.Interface("Ethernet0/2")
	if intf.OutACL == "" {
		t.Fatal("out ACL not attached")
	}
	acl := cfg.ACL(intf.OutACL)
	if acl == nil || len(acl.Entries) != 2 {
		t.Fatalf("new ACL malformed: %+v", acl)
	}
	// The printed config must reparse.
	if _, err := Parse("B2", cfg.Print()); err != nil {
		t.Errorf("mutated config does not reparse: %v", err)
	}
}

func TestRemoveACLDenyExactMatch(t *testing.T) {
	cfg := parseB(t)
	// BLOCK-U has "deny ip any 10.40/16": removing the any->U deny is an
	// exact match (src invalid = any).
	changes, err := cfg.RemoveACLDeny("Ethernet0/1", "in", netip.Prefix{}, uPfx)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Op != OpRemove {
		t.Fatalf("expected 1 removed line, got %v", changes)
	}
	acl := cfg.ACL("BLOCK-U")
	if len(acl.Entries) != 1 || !acl.Entries[0].Permit {
		t.Errorf("deny not removed: %+v", acl.Entries)
	}
}

func TestRemoveACLDenyPrependsPermit(t *testing.T) {
	cfg := parseB(t)
	changes, err := cfg.RemoveACLDeny("Ethernet0/1", "in", sPfx, uPfx)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Op != OpAdd {
		t.Fatalf("expected 1 added permit line, got %v", changes)
	}
	acl := cfg.ACL("BLOCK-U")
	if !acl.Entries[0].Permit || acl.Entries[0].Src != sPfx {
		t.Errorf("permit not prepended: %+v", acl.Entries[0])
	}
}

func TestRemoveACLDenyNoACL(t *testing.T) {
	cfg := parseC(t)
	changes, err := cfg.RemoveACLDeny("Ethernet0/1", "in", sPfx, uPfx)
	if err != nil {
		t.Fatal(err)
	}
	if changes != nil {
		t.Errorf("no ACL attached: expected no changes, got %v", changes)
	}
}

func TestEnableAdjacencyRemovesPassive(t *testing.T) {
	cfg := parseC(t)
	changes, err := cfg.EnableAdjacency(topology.OSPF, 10, "Ethernet0/1")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Op != OpRemove {
		t.Fatalf("expected 1 removed passive line, got %v", changes)
	}
	r := cfg.Router(topology.OSPF, 10)
	for _, p := range r.Passive {
		if p == "Ethernet0/1" {
			t.Error("passive line not removed")
		}
	}
}

func TestEnableAdjacencyAddsNetwork(t *testing.T) {
	cfg, err := Parse("t", `hostname t
interface e0
 ip address 10.9.0.1 255.255.255.0
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
`)
	if err != nil {
		t.Fatal(err)
	}
	changes, err := cfg.EnableAdjacency(topology.OSPF, 1, "e0")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Op != OpAdd {
		t.Fatalf("expected 1 added network line, got %v", changes)
	}
	r := cfg.Router(topology.OSPF, 1)
	if len(r.Networks) != 2 {
		t.Errorf("network statement not added: %v", r.Networks)
	}
}

func TestDisableAdjacency(t *testing.T) {
	cfg := parseB(t)
	changes, err := cfg.DisableAdjacency(topology.OSPF, 10, "Ethernet0/2")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Op != OpAdd {
		t.Fatalf("expected 1 added passive line, got %v", changes)
	}
	// Idempotent.
	changes, err = cfg.DisableAdjacency(topology.OSPF, 10, "Ethernet0/2")
	if err != nil || changes != nil {
		t.Errorf("second disable should be a no-op, got %v, %v", changes, err)
	}
}

func TestStaticRouteAddRemove(t *testing.T) {
	cfg := parseC(t)
	nh := netip.MustParseAddr("10.0.3.2")
	add := cfg.AddStaticRoute(uPfx, nh, 5)
	if len(add) != 1 || add[0].Op != OpAdd {
		t.Fatalf("add: %v", add)
	}
	if len(cfg.Statics) != 1 {
		t.Fatal("static not recorded")
	}
	rm := cfg.RemoveStaticRoute(uPfx, nh)
	if len(rm) != 1 || rm[0].Op != OpRemove {
		t.Fatalf("remove: %v", rm)
	}
	if len(cfg.Statics) != 0 {
		t.Fatal("static not removed")
	}
	if cfg.RemoveStaticRoute(uPfx, nh) != nil {
		t.Error("removing absent static should be nil")
	}
}

func TestRouteFilterAddRemove(t *testing.T) {
	cfg := parseC(t)
	add, err := cfg.AddRouteFilter(topology.OSPF, 10, uPfx)
	if err != nil || len(add) != 1 {
		t.Fatalf("add: %v, %v", add, err)
	}
	again, err := cfg.AddRouteFilter(topology.OSPF, 10, uPfx)
	if err != nil || again != nil {
		t.Errorf("duplicate filter should be no-op: %v", again)
	}
	rm, err := cfg.RemoveRouteFilter(topology.OSPF, 10, uPfx)
	if err != nil || len(rm) != 1 {
		t.Fatalf("remove: %v, %v", rm, err)
	}
	none, err := cfg.RemoveRouteFilter(topology.OSPF, 10, uPfx)
	if err != nil || none != nil {
		t.Errorf("removing absent filter should be no-op: %v", none)
	}
}

func TestRedistributeAddRemove(t *testing.T) {
	cfg, err := Parse("t", "hostname t\nrouter ospf 1\nrouter bgp 2\n")
	if err != nil {
		t.Fatal(err)
	}
	add, err := cfg.AddRedistribute(topology.OSPF, 1, topology.BGP, 2)
	if err != nil || len(add) != 1 {
		t.Fatalf("add: %v, %v", add, err)
	}
	rm, err := cfg.RemoveRedistribute(topology.OSPF, 1, topology.BGP, 2)
	if err != nil || len(rm) != 1 {
		t.Fatalf("remove: %v, %v", rm, err)
	}
}

func TestSetInterfaceCost(t *testing.T) {
	cfg := parseB(t)
	ch, err := cfg.SetInterfaceCost("Ethernet0/2", 3)
	if err != nil || len(ch) != 1 || ch[0].Op != OpAdd {
		t.Fatalf("set cost: %v, %v", ch, err)
	}
	ch, err = cfg.SetInterfaceCost("Ethernet0/2", 7)
	if err != nil || len(ch) != 1 || ch[0].Op != OpModify {
		t.Fatalf("modify cost: %v, %v", ch, err)
	}
	ch, err = cfg.SetInterfaceCost("Ethernet0/2", 7)
	if err != nil || ch != nil {
		t.Errorf("same cost should be no-op: %v", ch)
	}
	if _, err := cfg.SetInterfaceCost("NOPE", 1); err == nil {
		t.Error("missing interface should error")
	}
}

func TestLineChangeString(t *testing.T) {
	lc := LineChange{Device: "B", Op: OpAdd, Section: "router ospf 10", Line: "passive-interface e0"}
	if got := lc.String(); got != "+ B [router ospf 10]: passive-interface e0" {
		t.Errorf("LineChange.String() = %q", got)
	}
	top := LineChange{Device: "B", Op: OpRemove, Line: "ip route ..."}
	if got := top.String(); got != "- B: ip route ..." {
		t.Errorf("LineChange.String() = %q", got)
	}
}

func TestMutatedConfigsReparseAndExtract(t *testing.T) {
	configs, err := ParseFigure2a()
	if err != nil {
		t.Fatal(err)
	}
	// Apply the paper's Figure 2d repair: static route on A toward C for T
	// with distance above OSPF's, and enable nothing else.
	var a *Config
	for _, c := range configs {
		if c.Hostname == "A" {
			a = c
		}
	}
	a.AddStaticRoute(tPfx, netip.MustParseAddr("10.0.2.3"), 120)
	var reparsed []*Config
	for _, c := range configs {
		rc, err := Parse(c.Hostname, c.Print())
		if err != nil {
			t.Fatalf("%s: %v", c.Hostname, err)
		}
		reparsed = append(reparsed, rc)
	}
	n, err := Extract(reparsed)
	if err != nil {
		t.Fatalf("Extract after mutation: %v", err)
	}
	devA := n.Device("A")
	if len(devA.Statics) != 1 || devA.Statics[0].Distance != 120 {
		t.Errorf("static route lost in round trip: %+v", devA.Statics)
	}
}
