package config

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// ParseError reports a syntax or semantic error with its source location.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// parser walks a configuration line by line, dispatching top-level
// statements and block sub-statements.
type parser struct {
	file  string
	lines []string
	pos   int
}

// Parse parses one device configuration. file is used in error messages.
func Parse(file, text string) (*Config, error) {
	p := &parser{file: file, lines: strings.Split(text, "\n")}
	cfg := &Config{}
	for p.pos < len(p.lines) {
		raw := p.lines[p.pos]
		line := strings.TrimSpace(raw)
		p.pos++
		if line == "" || strings.HasPrefix(line, "!") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "hostname":
			if len(fields) != 2 {
				return nil, p.errf("hostname wants 1 argument")
			}
			cfg.Hostname = fields[1]
		case "waypoint":
			cfg.Waypoint = true
		case "interface":
			if len(fields) != 2 {
				return nil, p.errf("interface wants 1 argument")
			}
			stanza, err := p.parseInterface(fields[1])
			if err != nil {
				return nil, err
			}
			cfg.Interfaces = append(cfg.Interfaces, stanza)
		case "router":
			stanza, err := p.parseRouter(fields[1:])
			if err != nil {
				return nil, err
			}
			cfg.Routers = append(cfg.Routers, stanza)
		case "ip":
			if len(fields) >= 2 && fields[1] == "route" {
				sr, err := p.parseStatic(fields[2:])
				if err != nil {
					return nil, err
				}
				cfg.Statics = append(cfg.Statics, sr)
			} else if len(fields) >= 4 && fields[1] == "access-list" && fields[2] == "extended" {
				acl, err := p.parseACL(fields[3])
				if err != nil {
					return nil, err
				}
				cfg.ACLs = append(cfg.ACLs, acl)
			} else {
				return nil, p.errf("unknown ip statement %q", line)
			}
		default:
			return nil, p.errf("unknown statement %q", fields[0])
		}
	}
	if cfg.Hostname == "" {
		return nil, &ParseError{File: file, Line: 1, Msg: "missing hostname"}
	}
	return cfg, nil
}

// errf reports an error at the line just consumed.
func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{File: p.file, Line: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// blockLines consumes indented sub-statement lines until the next
// top-level statement, returning them trimmed.
func (p *parser) blockLines() []string {
	var out []string
	for p.pos < len(p.lines) {
		raw := p.lines[p.pos]
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "!") {
			p.pos++
			if trimmed == "!" {
				return out // "!" terminates a block, IOS style
			}
			continue
		}
		if !strings.HasPrefix(raw, " ") && !strings.HasPrefix(raw, "\t") {
			return out
		}
		p.pos++
		out = append(out, trimmed)
	}
	return out
}

func (p *parser) parseInterface(name string) (*InterfaceStanza, error) {
	st := &InterfaceStanza{Name: name}
	for _, line := range p.blockLines() {
		fields := strings.Fields(line)
		switch {
		case fields[0] == "description":
			st.Description = strings.TrimSpace(strings.TrimPrefix(line, "description"))
		case fields[0] == "shutdown":
			st.Shutdown = true
		case fields[0] == "waypoint":
			st.Waypoint = true
		case fields[0] == "ip" && len(fields) >= 2 && fields[1] == "address":
			if len(fields) != 4 {
				return nil, p.errf("ip address wants ADDR MASK")
			}
			addr, err := netip.ParseAddr(fields[2])
			if err != nil {
				return nil, p.errf("bad address %q", fields[2])
			}
			mask, err := netip.ParseAddr(fields[3])
			if err != nil {
				return nil, p.errf("bad mask %q", fields[3])
			}
			st.Address, err = prefixFromMask(addr, mask)
			if err != nil {
				return nil, p.errf("%v", err)
			}
		case fields[0] == "ip" && len(fields) == 4 && fields[1] == "ospf" && fields[2] == "cost":
			cost, err := strconv.Atoi(fields[3])
			if err != nil || cost < 1 {
				return nil, p.errf("bad ospf cost %q", fields[3])
			}
			st.Cost = cost
		case fields[0] == "ip" && len(fields) == 4 && fields[1] == "access-group":
			switch fields[3] {
			case "in":
				st.InACL = fields[2]
			case "out":
				st.OutACL = fields[2]
			default:
				return nil, p.errf("access-group direction must be in or out")
			}
		default:
			return nil, p.errf("unknown interface statement %q", line)
		}
	}
	return st, nil
}

func parseProtocol(s string) (topology.Protocol, bool) {
	switch s {
	case "ospf":
		return topology.OSPF, true
	case "bgp":
		return topology.BGP, true
	case "rip":
		return topology.RIP, true
	}
	return 0, false
}

func (p *parser) parseRouter(args []string) (*RouterStanza, error) {
	if len(args) != 2 {
		return nil, p.errf("router wants PROTO ID")
	}
	proto, ok := parseProtocol(args[0])
	if !ok {
		return nil, p.errf("unknown protocol %q", args[0])
	}
	id, err := strconv.Atoi(args[1])
	if err != nil {
		return nil, p.errf("bad process id %q", args[1])
	}
	st := &RouterStanza{Proto: proto, ID: id}
	for _, line := range p.blockLines() {
		fields := strings.Fields(line)
		switch fields[0] {
		case "network":
			if len(fields) != 3 && !(len(fields) == 5 && fields[3] == "area") {
				return nil, p.errf("network wants ADDR WILDCARD [area N]")
			}
			addr, err := netip.ParseAddr(fields[1])
			if err != nil {
				return nil, p.errf("bad network address %q", fields[1])
			}
			wild, err := netip.ParseAddr(fields[2])
			if err != nil {
				return nil, p.errf("bad wildcard %q", fields[2])
			}
			nl := NetworkLine{Addr: addr, Wildcard: wild}
			if len(fields) == 5 {
				nl.Area, err = strconv.Atoi(fields[4])
				if err != nil {
					return nil, p.errf("bad area %q", fields[4])
				}
			}
			st.Networks = append(st.Networks, nl)
		case "passive-interface":
			if len(fields) != 2 {
				return nil, p.errf("passive-interface wants 1 argument")
			}
			st.Passive = append(st.Passive, fields[1])
		case "redistribute":
			rl := RedistributeLine{Source: fields[1]}
			switch fields[1] {
			case "connected", "static":
				if len(fields) != 2 {
					return nil, p.errf("redistribute %s wants no arguments", fields[1])
				}
			case "ospf", "bgp", "rip":
				if len(fields) != 3 {
					return nil, p.errf("redistribute %s wants a process id", fields[1])
				}
				rl.ID, err = strconv.Atoi(fields[2])
				if err != nil {
					return nil, p.errf("bad process id %q", fields[2])
				}
			default:
				return nil, p.errf("unknown redistribute source %q", fields[1])
			}
			st.Redistribute = append(st.Redistribute, rl)
		case "distribute-list":
			if len(fields) != 4 || fields[1] != "prefix" || fields[3] != "in" {
				return nil, p.errf("distribute-list wants: prefix A.B.C.D/L in")
			}
			pfx, err := netip.ParsePrefix(fields[2])
			if err != nil {
				return nil, p.errf("bad prefix %q", fields[2])
			}
			st.DistributeListIn = append(st.DistributeListIn, pfx)
		case "neighbor":
			if len(fields) != 4 || fields[2] != "remote-as" {
				return nil, p.errf("neighbor wants: ADDR remote-as N")
			}
			addr, err := netip.ParseAddr(fields[1])
			if err != nil {
				return nil, p.errf("bad neighbor address %q", fields[1])
			}
			as, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, p.errf("bad AS %q", fields[3])
			}
			st.Neighbors = append(st.Neighbors, NeighborLine{Addr: addr, RemoteAS: as})
		default:
			return nil, p.errf("unknown router statement %q", line)
		}
	}
	return st, nil
}

func (p *parser) parseStatic(args []string) (*StaticRouteLine, error) {
	if len(args) != 3 && len(args) != 4 {
		return nil, p.errf("ip route wants ADDR MASK NEXTHOP [DISTANCE]")
	}
	addr, err := netip.ParseAddr(args[0])
	if err != nil {
		return nil, p.errf("bad route address %q", args[0])
	}
	mask, err := netip.ParseAddr(args[1])
	if err != nil {
		return nil, p.errf("bad route mask %q", args[1])
	}
	pfx, err := prefixFromMask(addr, mask)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	nh, err := netip.ParseAddr(args[2])
	if err != nil {
		return nil, p.errf("bad next hop %q", args[2])
	}
	sr := &StaticRouteLine{Prefix: pfx, NextHop: nh}
	if len(args) == 4 {
		sr.Distance, err = strconv.Atoi(args[3])
		if err != nil || sr.Distance < 1 {
			return nil, p.errf("bad distance %q", args[3])
		}
	}
	return sr, nil
}

func (p *parser) parseACL(name string) (*ACLStanza, error) {
	st := &ACLStanza{Name: name}
	for _, line := range p.blockLines() {
		entry, err := p.parseACLEntry(line)
		if err != nil {
			return nil, err
		}
		st.Entries = append(st.Entries, entry)
	}
	return st, nil
}

// parseACLEntry parses a single "permit|deny ip SRC DST" entry line.
func (p *parser) parseACLEntry(line string) (ACLEntryLine, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[0] != "permit" && fields[0] != "deny") || fields[1] != "ip" {
		return ACLEntryLine{}, p.errf("ACL entry wants: permit|deny ip SRC DST")
	}
	entry := ACLEntryLine{Permit: fields[0] == "permit"}
	rest := fields[2:]
	src, rest, err := p.parseACLTarget(rest)
	if err != nil {
		return ACLEntryLine{}, err
	}
	dst, rest, err := p.parseACLTarget(rest)
	if err != nil {
		return ACLEntryLine{}, err
	}
	if len(rest) != 0 {
		return ACLEntryLine{}, p.errf("trailing tokens in ACL entry %q", line)
	}
	entry.Src, entry.Dst = src, dst
	return entry, nil
}

// parseACLTarget consumes "any" or "ADDR WILDCARD" from fields.
func (p *parser) parseACLTarget(fields []string) (netip.Prefix, []string, error) {
	if len(fields) == 0 {
		return netip.Prefix{}, nil, p.errf("ACL entry missing target")
	}
	if fields[0] == "any" {
		return netip.Prefix{}, fields[1:], nil
	}
	if len(fields) < 2 {
		return netip.Prefix{}, nil, p.errf("ACL target wants ADDR WILDCARD")
	}
	addr, err := netip.ParseAddr(fields[0])
	if err != nil {
		return netip.Prefix{}, nil, p.errf("bad ACL address %q", fields[0])
	}
	wild, err := netip.ParseAddr(fields[1])
	if err != nil {
		return netip.Prefix{}, nil, p.errf("bad ACL wildcard %q", fields[1])
	}
	pfx, err := prefixFromWildcard(addr, wild)
	if err != nil {
		return netip.Prefix{}, nil, p.errf("%v", err)
	}
	return pfx, fields[2:], nil
}
