package config

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestParseFigure1Style(t *testing.T) {
	cfg, err := Parse("C.cfg", Figure2aConfigs()["C"])
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Hostname != "C" {
		t.Errorf("hostname %q, want C", cfg.Hostname)
	}
	if len(cfg.Interfaces) != 3 {
		t.Fatalf("interfaces = %d, want 3", len(cfg.Interfaces))
	}
	e1 := cfg.Interface("Ethernet0/1")
	if e1 == nil || e1.Address.String() != "10.0.2.3/24" {
		t.Errorf("Ethernet0/1 address wrong: %+v", e1)
	}
	r := cfg.Router(topology.OSPF, 10)
	if r == nil {
		t.Fatal("router ospf 10 missing")
	}
	if len(r.Passive) != 2 || r.Passive[0] != "Ethernet0/1" {
		t.Errorf("passive interfaces wrong: %v", r.Passive)
	}
	if len(r.Redistribute) != 1 || r.Redistribute[0].Source != "connected" {
		t.Errorf("redistribute wrong: %v", r.Redistribute)
	}
}

func TestParseACL(t *testing.T) {
	cfg, err := Parse("B.cfg", Figure2aConfigs()["B"])
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	acl := cfg.ACL("BLOCK-U")
	if acl == nil {
		t.Fatal("ACL BLOCK-U missing")
	}
	if len(acl.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(acl.Entries))
	}
	if acl.Entries[0].Permit {
		t.Error("first entry should deny")
	}
	if acl.Entries[0].Dst.String() != "10.40.0.0/16" {
		t.Errorf("deny dst = %s, want 10.40.0.0/16", acl.Entries[0].Dst)
	}
	if acl.Entries[0].Src.IsValid() {
		t.Error("deny src should be any")
	}
	if !acl.Entries[1].Permit || acl.Entries[1].Src.IsValid() || acl.Entries[1].Dst.IsValid() {
		t.Error("second entry should be permit ip any any")
	}
}

func TestParseStaticRoute(t *testing.T) {
	cfg, err := Parse("t.cfg", `hostname t
ip route 10.20.0.0 255.255.0.0 10.0.2.3 5
ip route 10.40.0.0 255.255.0.0 10.0.1.2
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cfg.Statics) != 2 {
		t.Fatalf("statics = %d, want 2", len(cfg.Statics))
	}
	if cfg.Statics[0].Prefix.String() != "10.20.0.0/16" || cfg.Statics[0].Distance != 5 {
		t.Errorf("static[0] wrong: %+v", cfg.Statics[0])
	}
	if cfg.Statics[1].Distance != 0 {
		t.Errorf("default distance should parse as 0, got %d", cfg.Statics[1].Distance)
	}
}

func TestParseBGPNeighbor(t *testing.T) {
	cfg, err := Parse("t.cfg", `hostname t
interface e0
 ip address 10.0.1.1 255.255.255.0
router bgp 65001
 neighbor 10.0.1.2 remote-as 65002
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r := cfg.Router(topology.BGP, 65001)
	if r == nil || len(r.Neighbors) != 1 || r.Neighbors[0].RemoteAS != 65002 {
		t.Fatalf("BGP neighbor wrong: %+v", r)
	}
}

func TestParseDistributeList(t *testing.T) {
	cfg, err := Parse("t.cfg", `hostname t
router ospf 1
 distribute-list prefix 10.20.0.0/16 in
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r := cfg.Router(topology.OSPF, 1)
	if len(r.DistributeListIn) != 1 || r.DistributeListIn[0].String() != "10.20.0.0/16" {
		t.Fatalf("distribute-list wrong: %v", r.DistributeListIn)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"missing hostname", "interface e0\n"},
		{"bad statement", "hostname t\nbogus stuff\n"},
		{"bad address", "hostname t\ninterface e0\n ip address nope 255.0.0.0\n"},
		{"bad mask", "hostname t\ninterface e0\n ip address 10.0.0.1 255.0.255.0\n"},
		{"bad wildcard", "hostname t\nip access-list extended A\n deny ip any 10.0.0.0 0.255.0.255\n"},
		{"bad acl verb", "hostname t\nip access-list extended A\n frobnicate ip any any\n"},
		{"bad route", "hostname t\nip route 10.0.0.0\n"},
		{"bad router proto", "hostname t\nrouter eigrp 1\n"},
		{"bad router stmt", "hostname t\nrouter ospf 1\n frobnicate\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.name, tc.text); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestParseErrorHasLocation(t *testing.T) {
	_, err := Parse("x.cfg", "hostname t\nbogus\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.File != "x.cfg" || pe.Line != 2 {
		t.Errorf("location %s:%d, want x.cfg:2", pe.File, pe.Line)
	}
	if !strings.Contains(pe.Error(), "x.cfg:2") {
		t.Errorf("Error() should contain location: %s", pe.Error())
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	for name, text := range Figure2aConfigs() {
		cfg, err := Parse(name, text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		printed := cfg.Print()
		cfg2, err := Parse(name+"-reprint", printed)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", name, err, printed)
		}
		if cfg2.Print() != printed {
			t.Errorf("%s: print/parse/print not a fixpoint", name)
		}
	}
}

func TestExtractFigure2a(t *testing.T) {
	configs, err := ParseFigure2a()
	if err != nil {
		t.Fatalf("ParseFigure2a: %v", err)
	}
	n, err := Extract(configs)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if n.NumDevices() != 3 {
		t.Fatalf("devices = %d, want 3", n.NumDevices())
	}
	if len(n.Links) != 3 {
		t.Fatalf("links = %d, want 3", len(n.Links))
	}
	if len(n.Subnets) != 4 {
		t.Fatalf("subnets = %d, want 4", len(n.Subnets))
	}
	if !n.Link("B", "C").Waypoint {
		t.Error("B-C link should have waypoint (from B's interface)")
	}
	c := n.Device("C")
	pc := c.Process(topology.OSPF, 10)
	if pc == nil {
		t.Fatal("C ospf process missing")
	}
	if !pc.IsPassive(c.Interface("Ethernet0/1")) {
		t.Error("C Ethernet0/1 should be passive")
	}
	// The OSPF network statement must not select host-facing subnets
	// outside 10.0.0.0/8... it selects all 10/8; subnet interfaces are in
	// the process but passive.
	if len(pc.Interfaces) != 3 {
		t.Errorf("C process interfaces = %d, want 3", len(pc.Interfaces))
	}
	b := n.Device("B")
	acl := b.ACLs["BLOCK-U"]
	if acl == nil {
		t.Fatal("BLOCK-U missing after extraction")
	}
	u := n.Subnet("U")
	s := n.Subnet("S")
	if !acl.Blocks(s.Prefix, u.Prefix) {
		t.Error("extracted ACL should block S->U")
	}
	if !b.Process(topology.OSPF, 10).RedistributeConnected {
		t.Error("redistribute connected lost in extraction")
	}
}

func TestExtractMatchesHandBuiltFixture(t *testing.T) {
	configs, err := ParseFigure2a()
	if err != nil {
		t.Fatal(err)
	}
	fromCfg, err := Extract(configs)
	if err != nil {
		t.Fatal(err)
	}
	hand := topology.Figure2a()
	// Compare the observable structure: same devices, links, subnets, and
	// passive flags.
	if fromCfg.NumDevices() != hand.NumDevices() {
		t.Errorf("device count mismatch: %d vs %d", fromCfg.NumDevices(), hand.NumDevices())
	}
	if len(fromCfg.Links) != len(hand.Links) {
		t.Errorf("link count mismatch: %d vs %d", len(fromCfg.Links), len(hand.Links))
	}
	for _, pair := range [][2]string{{"A", "B"}, {"B", "C"}, {"A", "C"}} {
		lc := fromCfg.Link(pair[0], pair[1])
		lh := hand.Link(pair[0], pair[1])
		if (lc == nil) != (lh == nil) {
			t.Errorf("link %v presence mismatch", pair)
			continue
		}
		if lc.Waypoint != lh.Waypoint {
			t.Errorf("link %v waypoint mismatch", pair)
		}
	}
	for _, s := range hand.Subnets {
		if got := fromCfg.Subnet(s.Name); got == nil || got.Prefix != s.Prefix {
			t.Errorf("subnet %s mismatch", s.Name)
		}
	}
}

func TestExtractErrors(t *testing.T) {
	mk := func(texts ...string) []*Config {
		var cfgs []*Config
		for i, txt := range texts {
			cfg, err := Parse("t", txt)
			if err != nil {
				t.Fatalf("cfg %d: %v", i, err)
			}
			cfgs = append(cfgs, cfg)
		}
		return cfgs
	}
	// Duplicate hostname.
	if _, err := Extract(mk("hostname x\n", "hostname x\n")); err == nil {
		t.Error("duplicate hostname should fail")
	}
	// Three interfaces on one network.
	threeWay := []string{
		"hostname a\ninterface e0\n ip address 10.0.0.1 255.255.255.0\n",
		"hostname b\ninterface e0\n ip address 10.0.0.2 255.255.255.0\n",
		"hostname c\ninterface e0\n ip address 10.0.0.3 255.255.255.0\n",
	}
	if _, err := Extract(mk(threeWay...)); err == nil {
		t.Error("three-endpoint network should fail")
	}
	// Missing redistribution source.
	if _, err := Extract(mk("hostname a\nrouter ospf 1\n redistribute bgp 2\n")); err == nil {
		t.Error("missing redistribution source should fail")
	}
	// Missing ACL reference.
	if _, err := Extract(mk("hostname a\ninterface e0\n ip address 10.0.0.1 255.255.255.0\n ip access-group NOPE in\n")); err == nil {
		t.Error("missing ACL should fail")
	}
}

func TestExtractShutdownInterfaceIgnored(t *testing.T) {
	cfgs := []*Config{}
	for _, txt := range []string{
		"hostname a\ninterface e0\n ip address 10.0.0.1 255.255.255.0\n shutdown\n",
		"hostname b\ninterface e0\n ip address 10.0.0.2 255.255.255.0\n",
	} {
		cfg, err := Parse("t", txt)
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}
	n, err := Extract(cfgs)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(n.Links) != 0 {
		t.Error("shutdown interface should not form a link")
	}
}

func TestMaskHelpers(t *testing.T) {
	if maskFromBits(24).String() != "255.255.255.0" {
		t.Errorf("maskFromBits(24) = %s", maskFromBits(24))
	}
	if maskFromBits(0).String() != "0.0.0.0" {
		t.Errorf("maskFromBits(0) = %s", maskFromBits(0))
	}
	if wildcardFromBits(24).String() != "0.0.0.255" {
		t.Errorf("wildcardFromBits(24) = %s", wildcardFromBits(24))
	}
	if wildcardFromBits(0).String() != "255.255.255.255" {
		t.Errorf("wildcardFromBits(0) = %s", wildcardFromBits(0))
	}
	for _, bits := range []int{0, 1, 8, 16, 24, 31, 32} {
		got, ok := maskBits(maskFromBits(bits))
		if !ok || got != bits {
			t.Errorf("maskBits(maskFromBits(%d)) = %d, %v", bits, got, ok)
		}
	}
}

func TestWildcardMatch(t *testing.T) {
	base := netip.MustParseAddr("10.0.0.0")
	wild := netip.MustParseAddr("0.255.255.255")
	if !wildcardMatch(base, wild, netip.MustParseAddr("10.1.2.3")) {
		t.Error("10.1.2.3 should match 10.0.0.0/0.255.255.255")
	}
	if wildcardMatch(base, wild, netip.MustParseAddr("11.0.0.1")) {
		t.Error("11.0.0.1 should not match")
	}
}
