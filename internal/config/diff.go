package config

import (
	"fmt"
	"sort"
	"strings"
)

// Diff compares two configurations of the same device and returns the
// line-level changes from old to new, attributed to their enclosing
// stanzas. This is how the paper extracts hand-written repairs from
// successive configuration snapshots (§8.3: "diff'ing" them); the
// operator simulator's line counts are validated against it.
func Diff(old, new *Config) []LineChange {
	oldLines := sectionedLines(old)
	newLines := sectionedLines(new)
	var out []LineChange

	type key struct{ section, line string }
	oldCount := map[key]int{}
	for _, sl := range oldLines {
		oldCount[key{sl.section, sl.line}]++
	}
	newCount := map[key]int{}
	for _, sl := range newLines {
		newCount[key{sl.section, sl.line}]++
	}
	seen := map[key]bool{}
	for _, sl := range append(append([]sectionLine{}, oldLines...), newLines...) {
		k := key{sl.section, sl.line}
		if seen[k] {
			continue
		}
		seen[k] = true
		delta := newCount[k] - oldCount[k]
		for ; delta > 0; delta-- {
			out = append(out, LineChange{Device: new.Hostname, Op: OpAdd, Section: k.section, Line: k.line})
		}
		for ; delta < 0; delta++ {
			out = append(out, LineChange{Device: old.Hostname, Op: OpRemove, Section: k.section, Line: k.line})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Section != out[j].Section {
			return out[i].Section < out[j].Section
		}
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// DiffConfigs diffs two whole-network snapshots keyed by hostname,
// including devices present on only one side.
func DiffConfigs(old, new map[string]*Config) []LineChange {
	var names []string
	seen := map[string]bool{}
	for name := range old {
		names = append(names, name)
		seen[name] = true
	}
	for name := range new {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []LineChange
	for _, name := range names {
		o, n := old[name], new[name]
		switch {
		case o == nil:
			for _, sl := range sectionedLines(n) {
				out = append(out, LineChange{Device: name, Op: OpAdd, Section: sl.section, Line: sl.line})
			}
		case n == nil:
			for _, sl := range sectionedLines(o) {
				out = append(out, LineChange{Device: name, Op: OpRemove, Section: sl.section, Line: sl.line})
			}
		default:
			out = append(out, Diff(o, n)...)
		}
	}
	return out
}

type sectionLine struct {
	section string
	line    string
}

// sectionedLines flattens the canonical printed form into (stanza header,
// trimmed line) pairs, skipping headers themselves and separators.
func sectionedLines(c *Config) []sectionLine {
	if c == nil {
		return nil
	}
	var out []sectionLine
	section := ""
	for _, raw := range strings.Split(c.Print(), "\n") {
		if raw == "" || raw == "!" {
			continue
		}
		if !strings.HasPrefix(raw, " ") {
			if strings.HasPrefix(raw, "hostname ") {
				section = ""
				continue
			}
			if strings.HasPrefix(raw, "ip route ") || raw == "waypoint" {
				// Top-level single-line statements.
				out = append(out, sectionLine{"", raw})
				section = ""
				continue
			}
			section = raw // stanza header
			continue
		}
		out = append(out, sectionLine{section, strings.TrimSpace(raw)})
	}
	return out
}

// FormatDiff renders changes as a unified-style listing.
func FormatDiff(changes []LineChange) string {
	var b strings.Builder
	for _, c := range changes {
		fmt.Fprintln(&b, c.String())
	}
	return b.String()
}
