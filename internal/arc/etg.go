package arc

import (
	"repro/internal/graph"
	"repro/internal/topology"
)

// Level selects which control-plane constructs an ETG models.
type Level int

// Abstraction levels (paper §4.3).
const (
	// LevelAll models routing adjacencies and redistribution only (aETG).
	LevelAll Level = iota
	// LevelDst additionally models route filters and static routes (dETG).
	LevelDst
	// LevelTC additionally models ACLs (tcETG).
	LevelTC
)

// ETG is an extended topology graph: the per-level digraph derived from a
// network's slot table. Src/Dst are graph.None at levels where the vertex
// does not apply (aETG has neither; dETGs have no single SRC).
type ETG struct {
	Level     Level
	TC        topology.TrafficClass // set for LevelTC
	DstSubnet *topology.Subnet      // set for LevelDst and LevelTC

	G   *graph.Digraph
	Src graph.V
	Dst graph.V

	// SlotOf maps each edge to the slot it instantiates; EdgeOf is the
	// inverse keyed by Slot.Key().
	SlotOf map[graph.E]*Slot
	EdgeOf map[string]graph.E

	// Waypoints, when non-nil, overrides link waypoint presence (keyed by
	// Link.Name()). Used when verifying repaired states that add or
	// remove middleboxes.
	Waypoints map[string]bool
}

// builder assembles an ETG from the subset of slots present at a level.
type builder struct {
	etg *ETG
}

// presentSlot is a slot admitted by a presence rule, with its edge
// weight. Builds run in two passes — gather present slots, then size
// the graph exactly and add — so the vertex/edge maps never rehash.
type presentSlot struct {
	s *Slot
	w int64
}

func newBuilder(level Level, ne int) *builder {
	return &builder{etg: &ETG{
		Level:  level,
		G:      graph.NewWithCap(ne+2, ne),
		Src:    graph.V(graph.None),
		Dst:    graph.V(graph.None),
		SlotOf: make(map[graph.E]*Slot, ne),
		EdgeOf: make(map[string]graph.E, ne),
	}}
}

func (b *builder) add(s *Slot, weight int64) {
	from := b.etg.G.AddVertex(s.FromVertex())
	to := b.etg.G.AddVertex(s.ToVertex())
	e := b.etg.G.AddEdge(from, to, weight)
	b.etg.SlotOf[e] = s
	b.etg.EdgeOf[s.Key()] = e
	if s.Kind == SlotSource {
		b.etg.Src = from
	}
	if s.Kind == SlotDest {
		b.etg.Dst = to
	}
}

// BuildTCETG builds the traffic-class ETG for tc (Algorithm 1).
func BuildTCETG(slots []*Slot, tc topology.TrafficClass) *ETG {
	var present []presentSlot
	for _, s := range slots {
		if s.Kind == SlotSource && s.Subnet != tc.Src {
			continue
		}
		if s.Kind == SlotDest && s.Subnet != tc.Dst {
			continue
		}
		if s.PresentTC(tc) {
			present = append(present, presentSlot{s, s.Weight(tc.Dst)})
		}
	}
	b := newBuilder(LevelTC, len(present))
	b.etg.TC = tc
	b.etg.DstSubnet = tc.Dst
	// Always materialize SRC and DST so verification is well-defined even
	// when every attachment edge is blocked.
	b.etg.Src = b.etg.G.AddVertex("SRC")
	b.etg.Dst = b.etg.G.AddVertex("DST")
	for _, p := range present {
		b.add(p.s, p.w)
	}
	return b.etg
}

// BuildRoutingETG builds the graph route selection operates on for tc:
// the dETG for tc.Dst augmented with tc's SRC and DST attachment edges.
// ACLs are deliberately ignored — they drop packets but do not influence
// shortest-path computation — so this graph can strictly contain the
// tcETG. PC4 verification walks this graph, then checks tcETG usability
// of the resulting path.
func BuildRoutingETG(slots []*Slot, tc topology.TrafficClass) *ETG {
	var present []presentSlot
	for _, s := range slots {
		if s.Kind == SlotSource && s.Subnet != tc.Src {
			continue
		}
		if s.Kind == SlotDest && s.Subnet != tc.Dst {
			continue
		}
		if s.PresentRouting(tc) {
			present = append(present, presentSlot{s, s.Weight(tc.Dst)})
		}
	}
	b := newBuilder(LevelTC, len(present))
	b.etg.TC = tc
	b.etg.DstSubnet = tc.Dst
	b.etg.Src = b.etg.G.AddVertex("SRC")
	b.etg.Dst = b.etg.G.AddVertex("DST")
	for _, p := range present {
		b.add(p.s, p.w)
	}
	return b.etg
}

// BuildDstETG builds the destination ETG for dst: route filters and static
// routes apply, ACLs do not, and all sources are represented (source slots
// are omitted; the DST vertex is present).
func BuildDstETG(slots []*Slot, dst *topology.Subnet) *ETG {
	var present []presentSlot
	for _, s := range slots {
		if s.Kind == SlotSource {
			continue
		}
		if s.Kind == SlotDest && s.Subnet != dst {
			continue
		}
		if s.PresentDst(dst) {
			present = append(present, presentSlot{s, s.Weight(dst)})
		}
	}
	b := newBuilder(LevelDst, len(present))
	b.etg.DstSubnet = dst
	b.etg.Dst = b.etg.G.AddVertex("DST")
	for _, p := range present {
		b.add(p.s, p.w)
	}
	return b.etg
}

// BuildAllETG builds the aETG: adjacencies and redistribution only.
func BuildAllETG(slots []*Slot) *ETG {
	var present []presentSlot
	for _, s := range slots {
		if s.Kind == SlotSource || s.Kind == SlotDest {
			continue
		}
		if s.PresentAll() {
			present = append(present, presentSlot{s, s.Weight(nil)})
		}
	}
	b := newBuilder(LevelAll, len(present))
	for _, p := range present {
		b.add(p.s, p.w)
	}
	return b.etg
}

// HasSlot reports whether the slot's edge is present in the ETG.
func (e *ETG) HasSlot(s *Slot) bool {
	_, ok := e.EdgeOf[s.Key()]
	return ok
}

// WaypointEdge reports whether edge id carries a waypoint, honoring the
// Waypoints override for inter-device edges.
func (e *ETG) WaypointEdge(id graph.E) bool {
	s := e.SlotOf[id]
	if s == nil {
		return false
	}
	if e.Waypoints != nil && s.Kind == SlotInterDevice {
		if v, ok := e.Waypoints[s.Link.Name()]; ok {
			return v
		}
	}
	return s.Waypoint()
}

// WithoutLinks returns a copy of the ETG with every inter-device edge over
// one of the given (failed) physical links removed. The copy shares the
// original's vertex/edge storage (only removal flags are duplicated), so
// it supports reachability queries but must not be extended.
func (e *ETG) WithoutLinks(failed map[*topology.Link]bool) *ETG {
	c := &ETG{
		Level: e.Level, TC: e.TC, DstSubnet: e.DstSubnet,
		G: e.G.CloneEdgesShared(), Src: e.Src, Dst: e.Dst,
		SlotOf: e.SlotOf, EdgeOf: e.EdgeOf,
	}
	for id, s := range e.SlotOf {
		if s.Kind == SlotInterDevice && failed[s.Link] {
			c.G.RemoveEdge(id)
		}
	}
	return c
}

// DevicePath collapses an ETG vertex path into the sequence of device
// names it traverses (SRC/DST vertices are dropped).
func (e *ETG) DevicePath(path []graph.V) []string {
	var out []string
	for _, v := range path {
		name := e.G.Name(v)
		if name == "SRC" || name == "DST" {
			continue
		}
		// Vertex names are "<device>:<proto><id>:<I|O>".
		dev := name
		for i := 0; i < len(name); i++ {
			if name[i] == ':' {
				dev = name[:i]
				break
			}
		}
		if len(out) == 0 || out[len(out)-1] != dev {
			out = append(out, dev)
		}
	}
	return out
}
