package arc

import (
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/topology"
)

// PC3 ("reachable under < k physical-link failures") is decided exactly by
// a max-flow computation instead of enumerating every (k-1)-subset of
// links. By Menger's theorem lifted to whole-link failures, SRC reaches DST
// under every failure of fewer than k physical links iff the minimum number
// of physical links whose removal disconnects SRC from DST is at least k.
// That quantity is the max flow of an auxiliary network with one capacity-1
// bottleneck per physical link: every tcETG edge over a link is routed
// through its link's bottleneck, so two ETG edges sharing a link (the two
// directions, or parallel process pairs) can never count as disjoint.
// Intra-device and attachment edges never fail; their capacity is clamped
// to k, which preserves the "flow >= k" verdict while keeping the flow
// finite. The computation stops as soon as k augmenting paths exist, so a
// typical PC3 check costs O(k * |E|) instead of O(C(links, k-1) * |E|).
//
// VerifyKReachableExhaustive retains the ground-truth subset enumeration;
// TestKFlowMatchesExhaustive pins the equivalence on randomized networks.

// flowEdge is one direction of a residual pair. Arcs are created in pairs
// with adjacent ids, so the reverse of arc id is id^1.
type flowEdge struct {
	to  int32
	cap int32
}

// linkFlowNet is the auxiliary flow network in CSR form. Vertices
// 0..nv-1 mirror the ETG's vertices; two extra vertices per physical link
// carry its capacity-1 bottleneck edge. Construction order follows ETG
// edge ids, so the network — and every BFS over it — is deterministic.
//
// Verification runs one PC3 check per policy across the whole repair, so
// the arrays (and the BFS scratch) are pooled and reused across checks
// instead of reallocated: a steady-state check allocates nothing.
type linkFlowNet struct {
	edges    []flowEdge
	adjOff   []int32          // CSR row offsets per vertex, len = V+1
	adjList  []int32          // arc ids grouped by tail vertex, len = len(edges)
	linkSeq  []*topology.Link // first-seen order
	linkEdge []int32          // bottleneck arc id per linkSeq entry

	// Scratch reused across pooled checks.
	linkID  map[*topology.Link]int32
	eKind   []int32 // per ETG edge: link index, or -1 for non-failable
	eFrom   []int32
	eTo     []int32
	cur     []int32 // CSR fill cursors
	pred    []int32
	visited []int32
	queue   []int32
	stamp   int32
}

var lfPool = sync.Pool{
	New: func() any { return &linkFlowNet{linkID: make(map[*topology.Link]int32)} },
}

// grow returns s resized to n, reusing its backing array when possible.
func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// build assembles the auxiliary network for the ETG with non-failable
// capacities clamped to k. Two passes over the ETG's edges: the first
// classifies edges and counts per-vertex arc degrees, the second fills
// the CSR arrays in the same deterministic order.
func (f *linkFlowNet) build(e *ETG, k int) {
	nv := e.G.NumVertices()
	f.linkSeq = f.linkSeq[:0]
	clear(f.linkID)

	f.eKind = f.eKind[:0]
	f.eFrom = f.eFrom[:0]
	f.eTo = f.eTo[:0]
	e.G.Edges(func(id graph.E, ed graph.Edge) {
		li := int32(-1)
		if s := e.SlotOf[id]; s != nil && s.Kind == SlotInterDevice {
			var ok bool
			li, ok = f.linkID[s.Link]
			if !ok {
				li = int32(len(f.linkSeq))
				f.linkID[s.Link] = li
				f.linkSeq = append(f.linkSeq, s.Link)
			}
		}
		f.eKind = append(f.eKind, li)
		f.eFrom = append(f.eFrom, int32(ed.From))
		f.eTo = append(f.eTo, int32(ed.To))
	})

	L := len(f.linkSeq)
	nInter, nOther := 0, 0
	for _, li := range f.eKind {
		if li >= 0 {
			nInter++
		} else {
			nOther++
		}
	}
	V := nv + 2*L
	A := 2 * (L + 2*nInter + nOther)
	f.adjOff = grow(f.adjOff, V+1)
	for i := range f.adjOff {
		f.adjOff[i] = 0
	}
	f.adjList = grow(f.adjList, A)
	if cap(f.edges) < A {
		f.edges = make([]flowEdge, A)
	} else {
		f.edges = f.edges[:A]
	}
	f.linkEdge = grow(f.linkEdge, L)

	// Link i's bottleneck endpoints.
	linkIn := func(i int32) int32 { return int32(nv) + 2*i }
	linkOut := func(i int32) int32 { return int32(nv) + 2*i + 1 }

	// Degree counting: each arc (forward and residual) occupies one
	// adjacency slot at its tail. Offsets are shifted by one so the
	// fill pass can use adjOff[v+1] as a cursor.
	deg := func(v int32) { f.adjOff[v+1]++ }
	for i := int32(0); i < int32(L); i++ {
		deg(linkIn(i))
		deg(linkOut(i))
	}
	for j, li := range f.eKind {
		u, v := f.eFrom[j], f.eTo[j]
		if li >= 0 {
			deg(u)
			deg(linkIn(li))
			deg(linkOut(li))
			deg(v)
		} else {
			deg(u)
			deg(v)
		}
	}
	for v := 0; v < V; v++ {
		f.adjOff[v+1] += f.adjOff[v]
	}

	// Fill forward through a cursor per row, so within-row arc order
	// matches the order the previous implementation appended them: per
	// ETG edge, bottleneck pair first on a link's first sighting, then
	// the attachment pairs.
	f.cur = grow(f.cur, V)
	copy(f.cur, f.adjOff[:V])
	next := int32(0)
	addArc := func(u, v, capacity int32) int32 {
		id := next
		next += 2
		f.edges[id] = flowEdge{to: v, cap: capacity}
		f.edges[id+1] = flowEdge{to: u, cap: 0}
		f.adjList[f.cur[u]] = id
		f.cur[u]++
		f.adjList[f.cur[v]] = id + 1
		f.cur[v]++
		return id
	}
	kcap := int32(k)
	for li := range f.linkEdge {
		f.linkEdge[li] = -1
	}
	for j, li := range f.eKind {
		u, v := f.eFrom[j], f.eTo[j]
		if li >= 0 {
			if f.linkEdge[li] < 0 {
				f.linkEdge[li] = addArc(linkIn(li), linkOut(li), 1)
			}
			addArc(u, linkIn(li), kcap)
			addArc(linkOut(li), v, kcap)
		} else {
			addArc(u, v, kcap)
		}
	}
}

// out iterates vertex v's arcs.
func (f *linkFlowNet) out(v int32) []int32 {
	return f.adjList[f.adjOff[v]:f.adjOff[v+1]]
}

// maxFlow runs BFS augmenting paths from src to dst, stopping once the
// flow reaches want.
func (f *linkFlowNet) maxFlow(src, dst int32, want int) int {
	if src == dst {
		return want
	}
	total := 0
	n := len(f.adjOff) - 1
	f.pred = grow(f.pred, n)
	if cap(f.visited) < n {
		f.visited = make([]int32, n)
		f.stamp = 0
	}
	f.visited = f.visited[:n]
	if cap(f.queue) < n {
		f.queue = make([]int32, 0, n)
	}
	for total < want {
		f.stamp++
		queue := f.queue[:0]
		queue = append(queue, src)
		f.visited[src] = f.stamp
		found := false
	bfs:
		for i := 0; i < len(queue); i++ {
			v := queue[i]
			for _, id := range f.out(v) {
				ed := &f.edges[id]
				if ed.cap <= 0 || f.visited[ed.to] == f.stamp {
					continue
				}
				f.visited[ed.to] = f.stamp
				f.pred[ed.to] = id
				if ed.to == dst {
					found = true
					break bfs
				}
				queue = append(queue, ed.to)
			}
		}
		f.queue = queue[:0]
		if !found {
			return total
		}
		bottleneck := int32(want - total)
		for v := dst; v != src; {
			ed := &f.edges[f.pred[v]]
			if ed.cap < bottleneck {
				bottleneck = ed.cap
			}
			v = f.edges[f.pred[v]^1].to
		}
		for v := dst; v != src; {
			id := f.pred[v]
			f.edges[id].cap -= bottleneck
			f.edges[id^1].cap += bottleneck
			v = f.edges[id^1].to
		}
		total += int(bottleneck)
	}
	return total
}

// LinkDisjointFlow returns min(k, the maximum number of pairwise
// physical-link-disjoint SRC→DST paths in the ETG). A return of k means
// "at least k" — the computation stops early.
func LinkDisjointFlow(e *ETG, k int) int {
	if k < 1 {
		return 0
	}
	if e.Src == graph.V(graph.None) || e.Dst == graph.V(graph.None) {
		return 0
	}
	f := lfPool.Get().(*linkFlowNet)
	f.build(e, k)
	flow := f.maxFlow(int32(e.Src), int32(e.Dst), k)
	lfPool.Put(f)
	return flow
}

// MinLinkCut returns a minimum-cardinality set of physical links whose
// simultaneous failure disconnects SRC from DST, provided that set has
// fewer than k links; ok=false means every disconnecting set needs at
// least k links (the PC3 policy holds). The returned links are sorted by
// name. An empty set with ok=true means SRC cannot reach DST even with no
// failures.
func MinLinkCut(e *ETG, k int) (links []*topology.Link, ok bool) {
	if k < 1 {
		return nil, false
	}
	if e.Src == graph.V(graph.None) || e.Dst == graph.V(graph.None) {
		return nil, true
	}
	if !e.G.PathExists(e.Src, e.Dst) {
		return nil, true
	}
	f := lfPool.Get().(*linkFlowNet)
	defer lfPool.Put(f)
	f.build(e, k)
	if f.maxFlow(int32(e.Src), int32(e.Dst), k) >= k {
		return nil, false
	}
	// Residual-reachable side of the cut: the bottleneck edges crossing it
	// are exactly a minimum set of links to fail.
	n := len(f.adjOff) - 1
	seen := make([]bool, n)
	seen[e.Src] = true
	stack := []int32{int32(e.Src)}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range f.out(v) {
			ed := &f.edges[id]
			if ed.cap <= 0 || seen[ed.to] {
				continue
			}
			seen[ed.to] = true
			stack = append(stack, ed.to)
		}
	}
	for i, id := range f.linkEdge {
		ed := f.edges[id]
		from := f.edges[id^1].to
		if seen[from] && !seen[ed.to] {
			links = append(links, f.linkSeq[i])
		}
	}
	sort.Slice(links, func(i, j int) bool { return links[i].Name() < links[j].Name() })
	return links, true
}
