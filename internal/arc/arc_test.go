package arc

import (
	"net/netip"
	"testing"

	"repro/internal/topology"
)

// tcOf returns the traffic class src->dst from the Figure 2a network.
func tcOf(n *topology.Network, src, dst string) topology.TrafficClass {
	return topology.TrafficClass{Src: n.Subnet(src), Dst: n.Subnet(dst)}
}

func TestSlotsDeterministic(t *testing.T) {
	n := topology.Figure2a()
	s1 := Slots(n)
	s2 := Slots(topology.Figure2a())
	if len(s1) != len(s2) {
		t.Fatalf("slot counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Key() != s2[i].Key() {
			t.Fatalf("slot order differs at %d: %s vs %s", i, s1[i].Key(), s2[i].Key())
		}
	}
}

func TestSlotKeysUnique(t *testing.T) {
	n := topology.Figure2a()
	seen := map[string]bool{}
	for _, s := range Slots(n) {
		if seen[s.Key()] {
			t.Errorf("duplicate slot key %s", s.Key())
		}
		seen[s.Key()] = true
	}
}

// TestFigure3aETG reconstructs the ETG of Figure 3a (traffic class S->T).
func TestFigure3aETG(t *testing.T) {
	n := topology.Figure2a()
	slots := Slots(n)
	etg := BuildTCETG(slots, tcOf(n, "S", "T"))

	wantEdges := [][2]string{
		{"SRC", "A:ospf10:O"},
		{"A:ospf10:I", "A:ospf10:O"},
		{"B:ospf10:I", "B:ospf10:O"},
		{"C:ospf10:I", "C:ospf10:O"},
		{"A:ospf10:O", "B:ospf10:I"},
		{"B:ospf10:O", "A:ospf10:I"},
		{"B:ospf10:O", "C:ospf10:I"},
		{"C:ospf10:O", "B:ospf10:I"},
		{"C:ospf10:I", "DST"},
	}
	for _, we := range wantEdges {
		from, to := etg.G.Vertex(we[0]), etg.G.Vertex(we[1])
		if from < 0 || to < 0 || etg.G.FindEdge(from, to) < 0 {
			t.Errorf("missing edge %s -> %s", we[0], we[1])
		}
	}
	if etg.G.NumEdges() != len(wantEdges) {
		t.Errorf("edge count %d, want %d\n%s", etg.G.NumEdges(), len(wantEdges), etg.G.String())
	}
	// No A-C edges: C's interface toward A is passive.
	if from, to := etg.G.Vertex("A:ospf10:O"), etg.G.Vertex("C:ospf10:I"); from >= 0 && to >= 0 && etg.G.FindEdge(from, to) >= 0 {
		t.Error("A->C edge should be absent (passive interface)")
	}
}

// TestFigure3bETG reconstructs the ETG of Figure 3b (traffic class S->U):
// the ACL on B's interface toward A removes the A->B edge.
func TestFigure3bETG(t *testing.T) {
	n := topology.Figure2a()
	etg := BuildTCETG(Slots(n), tcOf(n, "S", "U"))
	from, to := etg.G.Vertex("A:ospf10:O"), etg.G.Vertex("B:ospf10:I")
	if from >= 0 && to >= 0 && etg.G.FindEdge(from, to) >= 0 {
		t.Error("A->B edge should be blocked by the ACL for destination U")
	}
	// B->C and C->B remain (the routing adjacency applies to all traffic
	// classes), as the paper notes in §4.2.
	if etg.G.FindEdge(etg.G.Vertex("B:ospf10:O"), etg.G.Vertex("C:ospf10:I")) < 0 {
		t.Error("B->C edge missing in S->U ETG")
	}
	if etg.G.FindEdge(etg.G.Vertex("C:ospf10:O"), etg.G.Vertex("B:ospf10:I")) < 0 {
		t.Error("C->B edge missing in S->U ETG")
	}
}

// TestTable1OriginalPolicies checks the four policies of §2.2 against the
// unrepaired network: EP1, EP2, EP4 hold; EP3 is violated.
func TestTable1OriginalPolicies(t *testing.T) {
	n := topology.Figure2a()
	slots := Slots(n)

	// EP1: S->U always blocked.
	if !VerifyAlwaysBlocked(BuildTCETG(slots, tcOf(n, "S", "U"))) {
		t.Error("EP1 should hold on the original network")
	}
	// EP2: S->T always traverses a waypoint.
	if !VerifyAlwaysWaypoint(BuildTCETG(slots, tcOf(n, "S", "T"))) {
		t.Error("EP2 should hold on the original network")
	}
	// EP3: S reaches T with at most one link failure (k=2) — violated.
	st := BuildTCETG(slots, tcOf(n, "S", "T"))
	if VerifyKReachable(st, n, 2) {
		t.Error("EP3 should be violated on the original network")
	}
	if MaxDisjointFlow(st) != 1 {
		t.Errorf("max-flow for S->T = %d, want 1 (dashed path of Fig. 3a)", MaxDisjointFlow(st))
	}
	// EP4: R->T uses A,B,C with no failures.
	if !VerifyPrimaryPath(BuildTCETG(slots, tcOf(n, "R", "T")), BuildRoutingETG(slots, tcOf(n, "R", "T")), []string{"A", "B", "C"}) {
		t.Error("EP4 should hold on the original network")
	}
	// Reachability under zero failures (k=1) does hold for S->T.
	if !VerifyKReachable(st, n, 1) {
		t.Error("S->T should be reachable with no failures")
	}
}

// figure2b applies the repair of Figure 2b: enable the OSPF adjacency
// between A and C by removing the passive flag on C's interface toward A.
func figure2b(n *topology.Network) {
	c := n.Device("C")
	delete(c.Process(topology.OSPF, 10).Passive, "Ethernet0/1")
}

// TestFigure2bSideEffects: the naive repair fixes EP3 but breaks EP1, EP2,
// and EP4 — the paper's challenges #1 and #2.
func TestFigure2bSideEffects(t *testing.T) {
	n := topology.Figure2a()
	figure2b(n)
	slots := Slots(n)

	st := BuildTCETG(slots, tcOf(n, "S", "T"))
	if !VerifyKReachable(st, n, 2) {
		t.Error("EP3 should now hold")
	}
	if MaxDisjointFlow(st) != 2 {
		t.Errorf("max-flow = %d, want 2", MaxDisjointFlow(st))
	}
	if VerifyAlwaysWaypoint(st) {
		t.Error("EP2 should now be violated (A->C path has no firewall)")
	}
	if VerifyAlwaysBlocked(BuildTCETG(slots, tcOf(n, "S", "U"))) {
		t.Error("EP1 should now be violated (A->C->B path exists)")
	}
	if VerifyPrimaryPath(BuildTCETG(slots, tcOf(n, "R", "T")), BuildRoutingETG(slots, tcOf(n, "R", "T")), []string{"A", "B", "C"}) {
		t.Error("EP4 should now be violated (A->C is shorter)")
	}
}

// figure2c applies the repair of Figure 2c: adjacency A-C, cost 3 on A's
// interface to C, firewall on A-C, and an ACL on B's interface toward C
// blocking traffic destined for U.
func figure2c(n *topology.Network) {
	figure2b(n)
	a := n.Device("A")
	a.Interface("Ethernet0/2").Cost = 3
	n.Link("A", "C").Waypoint = true
	b := n.Device("B")
	acl := b.AddACL("BLOCK-U-2")
	acl.Entries = []topology.ACLEntry{
		{Permit: false, Dst: n.Subnet("U").Prefix},
		{Permit: true},
	}
	b.Interface("Ethernet0/2").InACL = "BLOCK-U-2"
}

func TestFigure2cSatisfiesAll(t *testing.T) {
	n := topology.Figure2a()
	figure2c(n)
	slots := Slots(n)
	if !VerifyAlwaysBlocked(BuildTCETG(slots, tcOf(n, "S", "U"))) {
		t.Error("EP1 should hold after Figure 2c repair")
	}
	st := BuildTCETG(slots, tcOf(n, "S", "T"))
	if !VerifyAlwaysWaypoint(st) {
		t.Error("EP2 should hold after Figure 2c repair")
	}
	if !VerifyKReachable(st, n, 2) {
		t.Error("EP3 should hold after Figure 2c repair")
	}
	if !VerifyPrimaryPath(BuildTCETG(slots, tcOf(n, "R", "T")), BuildRoutingETG(slots, tcOf(n, "R", "T")), []string{"A", "B", "C"}) {
		t.Error("EP4 should hold after Figure 2c repair")
	}
}

// figure2d applies the repair of Figure 2d: a static route on A for T via
// C with administrative distance 3 (worse than the OSPF path cost 2), plus
// the firewall on the A-C link.
func figure2d(n *topology.Network) {
	a := n.Device("A")
	a.AddStatic(n.Subnet("T").Prefix, netip.MustParseAddr("10.0.2.3"), 3)
	n.Link("A", "C").Waypoint = true
}

func TestFigure2dSatisfiesAll(t *testing.T) {
	n := topology.Figure2a()
	figure2d(n)
	slots := Slots(n)
	if !VerifyAlwaysBlocked(BuildTCETG(slots, tcOf(n, "S", "U"))) {
		t.Error("EP1 should hold after Figure 2d repair")
	}
	st := BuildTCETG(slots, tcOf(n, "S", "T"))
	if !VerifyAlwaysWaypoint(st) {
		t.Error("EP2 should hold after Figure 2d repair")
	}
	if !VerifyKReachable(st, n, 2) {
		t.Error("EP3 should hold after Figure 2d repair")
	}
	if !VerifyPrimaryPath(BuildTCETG(slots, tcOf(n, "R", "T")), BuildRoutingETG(slots, tcOf(n, "R", "T")), []string{"A", "B", "C"}) {
		t.Error("EP4 should hold after Figure 2d repair")
	}
}

// TestFigure4CrossTrafficClass: the static route for T on A adds the
// A->C edge to the ETGs of both S->T and R->T (Figure 4).
func TestFigure4CrossTrafficClass(t *testing.T) {
	n := topology.Figure2a()
	figure2d(n)
	slots := Slots(n)
	for _, src := range []string{"S", "R"} {
		etg := BuildTCETG(slots, tcOf(n, src, "T"))
		from, to := etg.G.Vertex("A:ospf10:O"), etg.G.Vertex("C:ospf10:I")
		if from < 0 || to < 0 || etg.G.FindEdge(from, to) < 0 {
			t.Errorf("static-backed A->C edge missing in %s->T ETG", src)
		}
	}
	// The static route is destination-specific: no A->C edge for S->U.
	etg := BuildTCETG(slots, tcOf(n, "S", "U"))
	from, to := etg.G.Vertex("A:ospf10:O"), etg.G.Vertex("C:ospf10:I")
	if from >= 0 && to >= 0 && etg.G.FindEdge(from, to) >= 0 {
		t.Error("static route for T must not add an A->C edge for destination U")
	}
}

func TestHierarchyByConstruction(t *testing.T) {
	// tcETG edges must exist in the dETG; dETG inter-device edges must be
	// in the aETG or static-backed; dETG intra edges must be in the aETG.
	for _, variant := range []func(*topology.Network){nil, figure2b, figure2c, figure2d} {
		n := topology.Figure2a()
		if variant != nil {
			variant(n)
		}
		slots := Slots(n)
		for _, tc := range n.TrafficClasses() {
			for _, s := range slots {
				if s.PresentTC(tc) && !s.PresentDst(tc.Dst) {
					t.Fatalf("slot %s present in tcETG but not dETG", s.Key())
				}
			}
		}
		for _, dst := range n.Subnets {
			for _, s := range slots {
				if !s.PresentDst(dst) {
					continue
				}
				switch s.Kind {
				case SlotInterDevice:
					if !s.PresentAll() && s.StaticBacked(dst) == nil {
						t.Fatalf("slot %s present in dETG without aETG edge or static route", s.Key())
					}
				case SlotIntraSelf, SlotIntraRedist:
					if !s.PresentAll() {
						t.Fatalf("intra slot %s present in dETG but not aETG", s.Key())
					}
				}
			}
		}
	}
}

func TestDstETGIgnoresACLs(t *testing.T) {
	n := topology.Figure2a()
	slots := Slots(n)
	d := BuildDstETG(slots, n.Subnet("U"))
	// The A->B edge is in the dETG for U even though ACLs remove it from
	// the S->U tcETG.
	from, to := d.G.Vertex("A:ospf10:O"), d.G.Vertex("B:ospf10:I")
	if from < 0 || to < 0 || d.G.FindEdge(from, to) < 0 {
		t.Error("dETG should ignore ACLs")
	}
}

func TestAllETGIgnoresFiltersAndStatics(t *testing.T) {
	n := topology.Figure2a()
	figure2d(n) // adds static route A->C for T
	slots := Slots(n)
	a := BuildAllETG(slots)
	from, to := a.G.Vertex("A:ospf10:O"), a.G.Vertex("C:ospf10:I")
	if from >= 0 && to >= 0 && a.G.FindEdge(from, to) >= 0 {
		t.Error("aETG must not contain static-backed edges")
	}
}

func TestRouteFilterRemovesDstEdges(t *testing.T) {
	n := topology.Figure2a()
	c := n.Device("C")
	pc := c.Process(topology.OSPF, 10)
	// Filter routes to U on C's process: C can no longer forward to U.
	pc.RouteFilters = append(pc.RouteFilters, n.Subnet("U").Prefix)
	slots := Slots(n)
	d := BuildDstETG(slots, n.Subnet("U"))
	// C's self edge CI->CO is gone for destination U.
	from, to := d.G.Vertex("C:ospf10:I"), d.G.Vertex("C:ospf10:O")
	if from >= 0 && to >= 0 && d.G.FindEdge(from, to) >= 0 {
		t.Error("route filter should remove C's self edge for destination U")
	}
	// Inter-device edges toward C (B->C) are also gone: C does not
	// advertise routes to U.
	from, to = d.G.Vertex("B:ospf10:O"), d.G.Vertex("C:ospf10:I")
	if from >= 0 && to >= 0 && d.G.FindEdge(from, to) >= 0 {
		t.Error("route filter should remove edges toward the filtering process")
	}
	// Destination T is unaffected.
	dT := BuildDstETG(slots, n.Subnet("T"))
	from, to = dT.G.Vertex("C:ospf10:I"), dT.G.Vertex("C:ospf10:O")
	if from < 0 || to < 0 || dT.G.FindEdge(from, to) < 0 {
		t.Error("route filter for U must not affect destination T")
	}
}

func TestWithoutLinks(t *testing.T) {
	n := topology.Figure2a()
	slots := Slots(n)
	st := BuildTCETG(slots, tcOf(n, "S", "T"))
	ab := n.Link("A", "B")
	failed := st.WithoutLinks(map[*topology.Link]bool{ab: true})
	if failed.G.PathExists(failed.Src, failed.Dst) {
		t.Error("failing A-B should disconnect S from T")
	}
	// Original untouched.
	if !st.G.PathExists(st.Src, st.Dst) {
		t.Error("WithoutLinks must not mutate the original")
	}
}

func TestDevicePath(t *testing.T) {
	n := topology.Figure2a()
	slots := Slots(n)
	st := BuildTCETG(slots, tcOf(n, "S", "T"))
	path := st.G.ShortestPath(st.Src, st.Dst)
	got := st.DevicePath(path)
	want := []string{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("device path %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("device path %v, want %v", got, want)
		}
	}
}

func TestEdgeWeightsMatchCosts(t *testing.T) {
	n := topology.Figure2a()
	n.Device("A").Interface("Ethernet0/1").Cost = 7
	slots := Slots(n)
	st := BuildTCETG(slots, tcOf(n, "S", "T"))
	from, to := st.G.Vertex("A:ospf10:O"), st.G.Vertex("B:ospf10:I")
	e := st.G.FindEdge(from, to)
	if e < 0 {
		t.Fatal("A->B edge missing")
	}
	if w := st.G.Edge(e).Weight; w != 7 {
		t.Errorf("A->B weight = %d, want 7", w)
	}
	// Reverse direction uses B's interface cost (1).
	re := st.G.FindEdge(st.G.Vertex("B:ospf10:O"), st.G.Vertex("A:ospf10:I"))
	if w := st.G.Edge(re).Weight; w != 1 {
		t.Errorf("B->A weight = %d, want 1", w)
	}
}

func TestSlotDeviceAndWaypoint(t *testing.T) {
	n := topology.Figure2a()
	for _, s := range Slots(n) {
		if s.Device() == nil {
			t.Fatalf("slot %s has no device", s.Key())
		}
		if s.Kind == SlotInterDevice && s.Link == n.Link("B", "C") && !s.Waypoint() {
			t.Errorf("slot %s over B-C should be a waypoint edge", s.Key())
		}
		if s.Kind == SlotInterDevice && s.Link == n.Link("A", "B") && s.Waypoint() {
			t.Errorf("slot %s over A-B should not be a waypoint edge", s.Key())
		}
	}
}

func TestDeviceWaypointMarksIntraEdges(t *testing.T) {
	n := topology.Figure2a()
	n.Device("B").Waypoint = true
	for _, s := range Slots(n) {
		if s.Kind == SlotIntraSelf && s.FromProc.Device.Name == "B" && !s.Waypoint() {
			t.Error("intra edge on waypoint device should be a waypoint edge")
		}
	}
}

// TestPrimaryPathACLBlindness pins the PC4 soundness rule the repair
// oracle uncovered: route selection ignores ACLs, so an ACL cannot
// enforce a primary path. With the shorter A-C adjacency enabled and an
// ACL on C's interface toward A blocking R->T, the tcETG's surviving
// shortest path collapses to the required A,B,C — but routing still
// sends the traffic over A->C, where the ACL drops it. The verifier must
// judge PC4 violated.
func TestPrimaryPathACLBlindness(t *testing.T) {
	n := topology.Figure2a()
	figure2b(n) // enable the shorter A-C adjacency
	c := n.Device("C")
	acl := c.AddACL("BLOCK-RT")
	acl.Entries = []topology.ACLEntry{
		{Permit: false, Src: n.Subnet("R").Prefix, Dst: n.Subnet("T").Prefix},
		{Permit: true},
	}
	c.Interface("Ethernet0/1").InACL = "BLOCK-RT"

	slots := Slots(n)
	tc := tcOf(n, "R", "T")
	tcETG := BuildTCETG(slots, tc)

	// The tcETG alone is misleading: its shortest surviving path IS the
	// required primary path (this is what made the old semantics unsound).
	path, unique := tcETG.G.ShortestPathUnique(tcETG.Src, tcETG.Dst)
	if path == nil || !unique {
		t.Fatal("tcETG should have a unique surviving shortest path")
	}
	got := tcETG.DevicePath(path)
	want := []string{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("tcETG surviving path %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tcETG surviving path %v, want %v", got, want)
		}
	}

	if VerifyPrimaryPath(tcETG, BuildRoutingETG(slots, tc), want) {
		t.Error("PC4 must be violated: routing prefers the ACL-blocked A->C edge")
	}

	// Blocking the primary path itself is also a violation, even when it
	// is the routing-preferred path.
	n2 := topology.Figure2a()
	b := n2.Device("B")
	acl2 := b.AddACL("BLOCK-RT")
	acl2.Entries = []topology.ACLEntry{
		{Permit: false, Src: n2.Subnet("R").Prefix, Dst: n2.Subnet("T").Prefix},
		{Permit: true},
	}
	b.Interface("Ethernet0/1").InACL = "BLOCK-RT"
	slots2 := Slots(n2)
	tc2 := tcOf(n2, "R", "T")
	if VerifyPrimaryPath(BuildTCETG(slots2, tc2), BuildRoutingETG(slots2, tc2), want) {
		t.Error("PC4 must be violated: an ACL drops traffic on the primary path itself")
	}
}
