package arc

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func addrOf(a, b, c, d int) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a), byte(b), byte(c), byte(d)})
}

// randomNetwork builds a random small network directly in the topology
// model: 3-6 devices, random links with random costs and waypoints,
// random subnets, random ACLs and route filters.
func randomNetwork(r *rand.Rand) *topology.Network {
	n := topology.NewNetwork()
	nDev := 3 + r.Intn(4)
	devs := make([]*topology.Device, nDev)
	procs := make([]*topology.Process, nDev)
	for i := range devs {
		devs[i] = n.AddDevice(fmt.Sprintf("d%d", i))
		procs[i] = devs[i].AddProcess(topology.OSPF, 1)
		procs[i].Passive = map[string]bool{}
		procs[i].RedistributeConnected = true
	}
	linkIdx := 0
	for i := 0; i < nDev; i++ {
		for j := i + 1; j < nDev; j++ {
			if r.Intn(2) == 0 {
				continue
			}
			ia := devs[i].AddInterface(fmt.Sprintf("to%d", j))
			ib := devs[j].AddInterface(fmt.Sprintf("to%d", i))
			ia.Prefix = netip.PrefixFrom(addrOf(10, linkIdx/250, linkIdx%250, 1), 24)
			ib.Prefix = netip.PrefixFrom(addrOf(10, linkIdx/250, linkIdx%250, 2), 24)
			ia.Cost = 1 + r.Intn(5)
			ib.Cost = 1 + r.Intn(5)
			l := n.AddLink(ia, ib)
			l.Waypoint = r.Intn(4) == 0
			procs[i].Interfaces = append(procs[i].Interfaces, ia)
			procs[j].Interfaces = append(procs[j].Interfaces, ib)
			linkIdx++
		}
	}
	nSub := 2 + r.Intn(3)
	for s := 0; s < nSub; s++ {
		d := r.Intn(nDev)
		intf := devs[d].AddInterface(fmt.Sprintf("host%d", s))
		intf.Prefix = netip.PrefixFrom(addrOf(20, s, 0, 1), 24)
		sub := n.AddSubnet(fmt.Sprintf("net%d", s), netip.PrefixFrom(addrOf(20, s, 0, 0), 24))
		intf.Subnet = sub
		if r.Intn(3) == 0 {
			acl := devs[d].AddACL(fmt.Sprintf("A%d", s))
			acl.Entries = []topology.ACLEntry{
				{Permit: false, Dst: sub.Prefix},
				{Permit: true},
			}
			intf.OutACL = acl.Name
		}
	}
	for _, p := range procs {
		if r.Intn(4) == 0 && len(n.Subnets) > 0 {
			p.RouteFilters = append(p.RouteFilters, n.Subnets[r.Intn(len(n.Subnets))].Prefix)
		}
	}
	return n
}

// Property: failing more links never adds reachability (monotonicity of
// the failure model).
func TestPropertyFailureMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(r)
		if len(n.Subnets) < 2 || len(n.Links) == 0 {
			return true
		}
		slots := Slots(n)
		tc := topology.TrafficClass{Src: n.Subnets[0], Dst: n.Subnets[1]}
		etg := BuildTCETG(slots, tc)
		failed := map[*topology.Link]bool{}
		reachable := etg.G.PathExists(etg.Src, etg.Dst)
		for _, l := range n.Links {
			if r.Intn(2) == 0 {
				failed[l] = true
				nowReachable := etg.WithoutLinks(failed).G.PathExists(etg.Src, etg.Dst)
				if nowReachable && !reachable {
					return false // failure added reachability: impossible
				}
				reachable = nowReachable
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: verifier consistency — K-reachability is downward closed in
// K, and implied by a max-flow of at least K.
func TestPropertyVerifierConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(r)
		if len(n.Subnets) < 2 {
			return true
		}
		slots := Slots(n)
		tc := topology.TrafficClass{Src: n.Subnets[0], Dst: n.Subnets[1]}
		etg := BuildTCETG(slots, tc)
		prev := true
		for k := 1; k <= 3; k++ {
			ok := VerifyKReachable(etg, n, k)
			if ok && !prev {
				return false // K-reachable but not (K-1)-reachable
			}
			prev = ok
		}
		// Blocked and reachable are mutually exclusive.
		if VerifyAlwaysBlocked(etg) && VerifyKReachable(etg, n, 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: max-flow lower-bounds exact K-reachability — if the unit
// max-flow is at least k AND the flow decomposition is link-disjoint,
// the network tolerates k-1 failures.
func TestPropertyMaxFlowSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(r)
		if len(n.Subnets) < 2 {
			return true
		}
		slots := Slots(n)
		tc := topology.TrafficClass{Src: n.Subnets[0], Dst: n.Subnets[1]}
		etg := BuildTCETG(slots, tc)
		flow := MaxDisjointFlow(etg)
		// Exact verification for k = flow must hold whenever the flow
		// paths are truly link-disjoint; with at most one edge pair per
		// link per direction in these small networks, check directly.
		if flow >= 2 && !VerifyKReachable(etg, n, 2) {
			// Only a contradiction if the two flow paths share no
			// physical link; MaxDisjointFlow counts directed edges, so a
			// link used in both directions could overcount. Accept that
			// case.
			return sharesLinkBothDirections(etg)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// sharesLinkBothDirections reports whether the ETG has both directions of
// some physical link (the overcount caveat of MaxDisjointFlow).
func sharesLinkBothDirections(etg *ETG) bool {
	seen := map[string]int{}
	for _, s := range etg.SlotOf {
		if s.Kind == SlotInterDevice {
			seen[s.Link.Name()]++
		}
	}
	for _, c := range seen {
		if c > 1 {
			return true
		}
	}
	return false
}

// Property: hierarchy invariants hold by construction on random
// networks.
func TestPropertyHierarchyByConstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(r)
		slots := Slots(n)
		for _, tc := range n.TrafficClasses() {
			for _, s := range slots {
				if s.PresentTC(tc) && !s.PresentDst(tc.Dst) {
					return false
				}
			}
		}
		for _, dst := range n.Subnets {
			for _, s := range slots {
				if !s.PresentDst(dst) {
					continue
				}
				switch s.Kind {
				case SlotIntraSelf, SlotIntraRedist:
					if !s.PresentAll() {
						return false
					}
				case SlotInterDevice:
					if !s.PresentAll() && s.StaticBacked(dst) == nil {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the max-flow PC3 verifier agrees with the ground-truth subset
// enumeration on every random network and every K — the equivalence the
// Menger reduction in kflow.go claims.
func TestKFlowMatchesExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(r)
		if len(n.Subnets) < 2 {
			return true
		}
		slots := Slots(n)
		for _, tc := range n.TrafficClasses() {
			etg := BuildTCETG(slots, tc)
			for k := 1; k <= 4; k++ {
				if VerifyKReachable(etg, n, k) != VerifyKReachableExhaustive(etg, n, k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: when MinLinkCut reports a witness, failing exactly those links
// really disconnects the class, and the witness is smaller than K; when it
// reports none, the verifier agrees the policy holds.
func TestMinLinkCutWitness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(r)
		if len(n.Subnets) < 2 {
			return true
		}
		slots := Slots(n)
		tc := topology.TrafficClass{Src: n.Subnets[0], Dst: n.Subnets[1]}
		etg := BuildTCETG(slots, tc)
		for k := 1; k <= 4; k++ {
			links, found := MinLinkCut(etg, k)
			if !found {
				if !VerifyKReachable(etg, n, k) {
					return false // no witness but policy violated
				}
				continue
			}
			if VerifyKReachable(etg, n, k) {
				return false // witness against a holding policy
			}
			if len(links) >= k {
				return false // witness must use fewer than k failures
			}
			failed := map[*topology.Link]bool{}
			for _, l := range links {
				failed[l] = true
			}
			if etg.WithoutLinks(failed).G.PathExists(etg.Src, etg.Dst) {
				return false // witness does not disconnect
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
