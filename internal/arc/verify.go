package arc

import (
	"repro/internal/graph"
	"repro/internal/topology"
)

// VerifyAlwaysBlocked implements PC1 of Table 1: SRC and DST are in
// separate components of the tcETG, i.e. no path exists under any failure
// combination (ETGs are pathset-equivalent, so absence of a path in the
// full ETG implies absence under every failure).
func VerifyAlwaysBlocked(e *ETG) bool {
	return !e.G.PathExists(e.Src, e.Dst)
}

// VerifyAlwaysWaypoint implements PC2 of Table 1: after removing edges
// with waypoints, SRC and DST are in separate components, i.e. every
// possible path traverses a waypoint.
func VerifyAlwaysWaypoint(e *ETG) bool {
	return !e.G.PathExistsAvoiding(e.Src, e.Dst, func(id graph.E) bool {
		return e.WaypointEdge(id)
	})
}

// MaxDisjointFlow returns the max-flow from SRC to DST in the unit-weight
// ETG (Table 1's PC3 characteristic): inter-device edges have capacity 1,
// intra-device and attachment edges are uncapacitated.
func MaxDisjointFlow(e *ETG) int {
	const big = int64(1) << 40
	flow, _ := e.G.MaxFlow(e.Src, e.Dst, func(id graph.E) int64 {
		if s := e.SlotOf[id]; s != nil && s.Kind == SlotInterDevice {
			return 1
		}
		return big
	})
	return int(flow)
}

// VerifyKReachable implements PC3 of Table 1 exactly: SRC can reach DST
// whenever fewer than k physical links have failed. It enumerates every
// (k-1)-subset of the network's links and checks connectivity of the
// surviving tcETG, which is the ground-truth semantics of "reachable under
// < k failures".
func VerifyKReachable(e *ETG, n *topology.Network, k int) bool {
	if k < 1 {
		return true
	}
	links := n.Links
	// Connectivity under failing a set S implies connectivity under every
	// subset of S, so checking all subsets of size exactly m suffices —
	// where m is capped at the number of links actually available.
	m := k - 1
	if m > len(links) {
		m = len(links)
	}
	failed := make(map[*topology.Link]bool)
	var rec func(start, remaining int) bool
	rec = func(start, remaining int) bool {
		if remaining == 0 {
			return e.WithoutLinks(failed).G.PathExists(e.Src, e.Dst)
		}
		for i := start; i <= len(links)-remaining; i++ {
			failed[links[i]] = true
			ok := rec(i+1, remaining-1)
			delete(failed, links[i])
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(0, m)
}

// VerifyPrimaryPath implements PC4 of Table 1: in the absence of failures,
// traffic from SRC to DST uses exactly the given device path, i.e. the
// ETG's shortest SRC→DST path is unique and collapses to that device
// sequence.
func VerifyPrimaryPath(e *ETG, devices []string) bool {
	path, unique := e.G.ShortestPathUnique(e.Src, e.Dst)
	if path == nil || !unique {
		return false
	}
	got := e.DevicePath(path)
	if len(got) != len(devices) {
		return false
	}
	for i := range got {
		if got[i] != devices[i] {
			return false
		}
	}
	return true
}
