package arc

import (
	"repro/internal/graph"
	"repro/internal/topology"
)

// VerifyAlwaysBlocked implements PC1 of Table 1: SRC and DST are in
// separate components of the tcETG, i.e. no path exists under any failure
// combination (ETGs are pathset-equivalent, so absence of a path in the
// full ETG implies absence under every failure).
func VerifyAlwaysBlocked(e *ETG) bool {
	return !e.G.PathExists(e.Src, e.Dst)
}

// VerifyAlwaysWaypoint implements PC2 of Table 1: after removing edges
// with waypoints, SRC and DST are in separate components, i.e. every
// possible path traverses a waypoint.
func VerifyAlwaysWaypoint(e *ETG) bool {
	return !e.G.PathExistsAvoiding(e.Src, e.Dst, func(id graph.E) bool {
		return e.WaypointEdge(id)
	})
}

// MaxDisjointFlow returns the max-flow from SRC to DST in the unit-weight
// ETG (Table 1's PC3 characteristic): inter-device edges have capacity 1,
// intra-device and attachment edges are uncapacitated.
func MaxDisjointFlow(e *ETG) int {
	const big = int64(1) << 40
	flow, _ := e.G.MaxFlow(e.Src, e.Dst, func(id graph.E) int64 {
		if s := e.SlotOf[id]; s != nil && s.Kind == SlotInterDevice {
			return 1
		}
		return big
	})
	return int(flow)
}

// VerifyKReachable implements PC3 of Table 1 exactly: SRC can reach DST
// whenever fewer than k physical links have failed. By Menger's theorem
// over whole-link failures this holds iff at least k pairwise
// link-disjoint SRC→DST paths exist (see kflow.go); the equivalence with
// the ground-truth subset enumeration is pinned by property tests against
// VerifyKReachableExhaustive.
func VerifyKReachable(e *ETG, n *topology.Network, k int) bool {
	if k < 1 {
		return true
	}
	return LinkDisjointFlow(e, k) >= k
}

// VerifyKReachableExhaustive is the ground-truth PC3 semantics: it
// enumerates every (k-1)-subset of the network's links and checks
// connectivity of the surviving tcETG. It is exponential in k and kept as
// the differential oracle for VerifyKReachable.
func VerifyKReachableExhaustive(e *ETG, n *topology.Network, k int) bool {
	if k < 1 {
		return true
	}
	links := n.Links
	// Connectivity under failing a set S implies connectivity under every
	// subset of S, so checking all subsets of size exactly m suffices —
	// where m is capped at the number of links actually available.
	m := k - 1
	if m > len(links) {
		m = len(links)
	}
	failed := make(map[*topology.Link]bool)
	var rec func(start, remaining int) bool
	rec = func(start, remaining int) bool {
		if remaining == 0 {
			return e.WithoutLinks(failed).G.PathExists(e.Src, e.Dst)
		}
		for i := start; i <= len(links)-remaining; i++ {
			failed[links[i]] = true
			ok := rec(i+1, remaining-1)
			delete(failed, links[i])
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(0, m)
}

// VerifyPrimaryPath implements PC4 of Table 1: in the absence of
// failures, traffic from SRC to DST uses exactly the given device path.
// Forwarding follows the shortest path of the ROUTING graph (route
// selection is ACL-blind), so the required path must be the unique
// shortest path there — and every edge it crosses must additionally be
// usable in the tcETG: an ACL on the routed path drops traffic rather
// than steering it onto another path.
func VerifyPrimaryPath(tcETG, routing *ETG, devices []string) bool {
	path, unique := routing.G.ShortestPathUnique(routing.Src, routing.Dst)
	if path == nil || !unique {
		return false
	}
	got := routing.DevicePath(path)
	if len(got) != len(devices) {
		return false
	}
	for i := range got {
		if got[i] != devices[i] {
			return false
		}
	}
	// Traffic takes the minimum-weight live edge at each hop; that edge's
	// slot must still exist at the tc level or the packet is dropped.
	for i := 0; i+1 < len(path); i++ {
		s := minEdgeSlot(routing, path[i], path[i+1])
		if s == nil {
			return false
		}
		if _, usable := tcETG.EdgeOf[s.Key()]; !usable {
			return false
		}
	}
	return true
}

// minEdgeSlot returns the slot of the lowest-weight live edge from u to
// v in the ETG (the edge Dijkstra relaxes), or nil if none exists.
func minEdgeSlot(e *ETG, u, v graph.V) *Slot {
	var best *Slot
	var bestW int64
	e.G.Out(u, func(id graph.E, ed graph.Edge) {
		if ed.To != v {
			return
		}
		if best == nil || ed.Weight < bestW {
			best, bestW = e.SlotOf[id], ed.Weight
		}
	})
	return best
}
