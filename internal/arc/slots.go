// Package arc implements the Abstract Representation for Control planes:
// extended topology graphs (ETGs) built from a network model (Algorithm 1
// in the CPR paper) and the policy verifiers of Table 1.
//
// The central concept is the edge *slot*: a potential ETG edge backed by a
// physical link or an intra-device channel. Each slot has a presence rule
// per abstraction level (aETG / dETG / tcETG); ETGs at every level are
// derived from the same slot table, which makes the HARC hierarchy hold by
// construction and gives each edge an explicit provenance (which
// control-plane construct explains it).
package arc

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// SlotKind classifies candidate ETG edges.
type SlotKind int

// Slot kinds.
const (
	// SlotInterDevice is procO -> proc'I over a physical link.
	SlotInterDevice SlotKind = iota
	// SlotIntraSelf is procI -> procO within one process.
	SlotIntraSelf
	// SlotIntraRedist is proc'I -> procO between two processes on one
	// device (route redistribution).
	SlotIntraRedist
	// SlotSource is SRC -> procO on a device attached to a source subnet.
	SlotSource
	// SlotDest is procI -> DST on a device attached to a destination
	// subnet.
	SlotDest
)

func (k SlotKind) String() string {
	switch k {
	case SlotInterDevice:
		return "inter"
	case SlotIntraSelf:
		return "self"
	case SlotIntraRedist:
		return "redist"
	case SlotSource:
		return "src"
	case SlotDest:
		return "dst"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Slot is a candidate ETG edge together with the control-plane context
// needed to decide its presence at each level and to translate repairs.
type Slot struct {
	Kind SlotKind
	// FromProc/ToProc are the processes at the tail/head of the edge.
	// For SlotSource only ToProc is set; for SlotDest only FromProc.
	FromProc *topology.Process
	ToProc   *topology.Process
	// Link and the directed interfaces for SlotInterDevice.
	Link     *topology.Link
	FromIntf *topology.Interface // egress interface on the tail device
	ToIntf   *topology.Interface // ingress interface on the head device
	// Subnet and its attachment interface for SlotSource / SlotDest.
	Subnet *topology.Subnet
	Intf   *topology.Interface

	key string // cached Key(), filled by Slots

	// fromV/toV cache FromVertex()/ToVertex(), filled by Slots: the
	// builder concatenates vertex names once per ETG per slot, which
	// dominates large builds without the cache.
	fromV, toV string
	// adjUp caches adjacencyUp() (valid when adjCached): adjacency
	// depends only on the immutable interface/passive configuration, and
	// the uncached path scans every process interface per call.
	adjUp, adjCached bool
}

// Key returns a stable identifier unique within a network. Slots are
// immutable once enumerated, so Slots precomputes the key; the
// formatting path below only runs for hand-built slots.
func (s *Slot) Key() string {
	if s.key != "" {
		return s.key
	}
	return s.keyUncached()
}

func (s *Slot) keyUncached() string {
	switch s.Kind {
	case SlotInterDevice:
		return fmt.Sprintf("inter:%s>%s@%s/%s", s.FromProc.Name(), s.ToProc.Name(), s.FromIntf.Name, s.ToIntf.Name)
	case SlotIntraSelf:
		return "self:" + s.FromProc.Name()
	case SlotIntraRedist:
		return fmt.Sprintf("redist:%s>%s", s.ToProc.Name(), s.FromProc.Name())
	case SlotSource:
		return fmt.Sprintf("src:%s>%s", s.Subnet.Name, s.ToProc.Name())
	case SlotDest:
		return fmt.Sprintf("dst:%s>%s", s.FromProc.Name(), s.Subnet.Name)
	}
	return "?"
}

// FromVertex returns the tail ETG vertex name.
func (s *Slot) FromVertex() string {
	if s.fromV != "" {
		return s.fromV
	}
	return s.fromVertexUncached()
}

func (s *Slot) fromVertexUncached() string {
	switch s.Kind {
	case SlotSource:
		return "SRC"
	case SlotIntraRedist:
		return s.ToProc.Name() + ":I" // traffic enters via the redistributing process
	case SlotIntraSelf, SlotDest:
		return s.FromProc.Name() + ":I"
	default: // SlotInterDevice
		return s.FromProc.Name() + ":O"
	}
}

// ToVertex returns the head ETG vertex name.
func (s *Slot) ToVertex() string {
	if s.toV != "" {
		return s.toV
	}
	return s.toVertexUncached()
}

func (s *Slot) toVertexUncached() string {
	switch s.Kind {
	case SlotDest:
		return "DST"
	case SlotInterDevice:
		return s.ToProc.Name() + ":I"
	case SlotSource:
		return s.ToProc.Name() + ":O"
	default:
		// Intra-device edges end at the route owner's outgoing vertex.
		return s.FromProc.Name() + ":O"
	}
}

// Slots enumerates every candidate edge slot of the network in a
// deterministic order.
func Slots(n *topology.Network) []*Slot {
	var slots []*Slot

	// Intra-device slots.
	for _, dev := range n.Devices() {
		for _, p := range dev.Processes {
			slots = append(slots, &Slot{Kind: SlotIntraSelf, FromProc: p})
		}
		for _, owner := range dev.Processes {
			for _, entry := range dev.Processes {
				if owner == entry {
					continue
				}
				// Edge entryI -> ownerO: present when entry redistributes
				// routes from owner. FromProc is the route owner (edge head
				// is ownerO); ToProc is the entry process.
				slots = append(slots, &Slot{Kind: SlotIntraRedist, FromProc: owner, ToProc: entry})
			}
		}
	}

	// Inter-device slots: one per direction per same-protocol process
	// pair over each physical link.
	for _, l := range n.Links {
		ends := [2][2]*topology.Interface{{l.A, l.B}, {l.B, l.A}}
		for _, pair := range ends {
			from, to := pair[0], pair[1]
			for _, pf := range from.Device.Processes {
				for _, pt := range to.Device.Processes {
					if pf.Proto != pt.Proto {
						continue
					}
					slots = append(slots, &Slot{
						Kind:     SlotInterDevice,
						FromProc: pf,
						ToProc:   pt,
						Link:     l,
						FromIntf: from,
						ToIntf:   to,
					})
				}
			}
		}
	}

	// Source and destination attachment slots.
	for _, dev := range n.Devices() {
		for _, intf := range dev.Interfaces() {
			if intf.Subnet == nil {
				continue
			}
			for _, p := range dev.Processes {
				slots = append(slots,
					&Slot{Kind: SlotSource, ToProc: p, Subnet: intf.Subnet, Intf: intf},
					&Slot{Kind: SlotDest, FromProc: p, Subnet: intf.Subnet, Intf: intf})
			}
		}
	}

	for _, s := range slots {
		s.key = s.keyUncached()
		s.fromV = s.fromVertexUncached()
		s.toV = s.toVertexUncached()
		if s.Kind == SlotInterDevice {
			s.adjUp = s.adjacencyUpUncached()
			s.adjCached = true
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].Key() < slots[j].Key() })
	return slots
}

// PresentAll reports whether the slot's edge exists in the aETG, which
// models only routing adjacencies and redistribution (constructs that
// apply to all traffic classes).
func (s *Slot) PresentAll() bool {
	switch s.Kind {
	case SlotIntraSelf, SlotSource, SlotDest:
		return true
	case SlotIntraRedist:
		for _, src := range s.ToProc.RedistributesFrom {
			if src == s.FromProc {
				return true
			}
		}
		return false
	case SlotInterDevice:
		return s.adjacencyUp()
	}
	return false
}

// adjacencyUp reports whether a routing adjacency is configured over the
// slot's link: both processes run over their respective interfaces and
// neither side is passive.
func (s *Slot) adjacencyUp() bool {
	if s.adjCached {
		return s.adjUp
	}
	return s.adjacencyUpUncached()
}

func (s *Slot) adjacencyUpUncached() bool {
	if !s.FromProc.UsesInterface(s.FromIntf) || !s.ToProc.UsesInterface(s.ToIntf) {
		return false
	}
	if s.FromProc.IsPassive(s.FromIntf) || s.ToProc.IsPassive(s.ToIntf) {
		return false
	}
	return true
}

// StaticBacked reports whether a static route on the tail device for dst
// points across this slot's link (next hop = head interface address).
func (s *Slot) StaticBacked(dst *topology.Subnet) *topology.StaticRoute {
	if s.Kind != SlotInterDevice {
		return nil
	}
	for _, sr := range s.FromProc.Device.Statics {
		if sr.Prefix == dst.Prefix && s.ToIntf.Prefix.IsValid() && sr.NextHop == s.ToIntf.Prefix.Addr() {
			return sr
		}
	}
	return nil
}

// ProcStaticFor reports whether a static route for dst on the process's
// device exits through a link that the process's protocol peers over
// (so the corresponding inter-device slot exists and carries the edge).
// Such a FIB-level static lets traffic entering the device through any
// process leave via owner's outgoing vertex, backing the intra-device
// edges into it.
func ProcStaticFor(owner *topology.Process, dst *topology.Subnet) bool {
	for _, sr := range owner.Device.Statics {
		if sr.Prefix != dst.Prefix {
			continue
		}
		for _, intf := range owner.Device.Interfaces() {
			peer := intf.Peer()
			if peer == nil || !peer.Prefix.IsValid() || peer.Prefix.Addr() != sr.NextHop {
				continue
			}
			for _, q := range peer.Device.Processes {
				if q.Proto == owner.Proto {
					return true
				}
			}
		}
	}
	return false
}

// PresentDst reports whether the slot's edge exists in the dETG for dst,
// which additionally models route filters and static routes.
func (s *Slot) PresentDst(dst *topology.Subnet) bool {
	switch s.Kind {
	case SlotIntraSelf:
		// A route filter on the process removes its ability to forward
		// toward dst (Algorithm 1, lines 4-5) — unless a static route
		// through this process's links makes the FIB authoritative.
		return !s.FromProc.BlocksDestination(dst.Prefix) ||
			ProcStaticFor(s.FromProc, dst)
	case SlotIntraRedist:
		if ProcStaticFor(s.FromProc, dst) {
			return true
		}
		if !s.PresentAll() {
			return false
		}
		// The entry process must accept routes to dst and the owner must
		// have them (Algorithm 1, lines 6-8).
		return !s.ToProc.BlocksDestination(dst.Prefix) && !s.FromProc.BlocksDestination(dst.Prefix)
	case SlotInterDevice:
		if s.StaticBacked(dst) != nil {
			return true
		}
		// The receiving process must advertise routes to dst back to the
		// sender (Algorithm 1, lines 10-13).
		return s.adjacencyUp() && !s.ToProc.BlocksDestination(dst.Prefix)
	case SlotSource:
		return true
	case SlotDest:
		return s.Subnet == dst && !s.FromProc.BlocksDestination(dst.Prefix)
	}
	return false
}

// PresentRouting reports whether the slot's edge exists in the graph
// route selection operates on for tc. Routing is ACL-blind — an ACL
// drops packets but never steers them elsewhere — so presence is
// destination-level for every slot except the source attachment, which
// only exists for tc's own source and still requires the gateway
// process to hold a route to the destination.
func (s *Slot) PresentRouting(tc topology.TrafficClass) bool {
	if s.Kind == SlotSource {
		return s.Subnet == tc.Src && !s.ToProc.BlocksDestination(tc.Dst.Prefix)
	}
	return s.PresentDst(tc.Dst)
}

// PresentTC reports whether the slot's edge exists in the tcETG for tc,
// which additionally models ACLs (Algorithm 1, lines 14-15).
func (s *Slot) PresentTC(tc topology.TrafficClass) bool {
	if !s.PresentDst(tc.Dst) {
		return false
	}
	switch s.Kind {
	case SlotInterDevice:
		if s.aclBlocks(s.FromIntf.OutACL, s.FromIntf.Device, tc) {
			return false
		}
		if s.aclBlocks(s.ToIntf.InACL, s.ToIntf.Device, tc) {
			return false
		}
	case SlotSource:
		if s.Subnet != tc.Src {
			return false
		}
		// Traffic cannot enter the network through a process that has no
		// route to the destination (route filter on the gateway).
		if s.ToProc.BlocksDestination(tc.Dst.Prefix) {
			return false
		}
		if s.aclBlocks(s.Intf.InACL, s.Intf.Device, tc) {
			return false
		}
	case SlotDest:
		if s.aclBlocks(s.Intf.OutACL, s.Intf.Device, tc) {
			return false
		}
	}
	return true
}

// aclBlocks reports whether the named ACL on dev blocks tc.
func (s *Slot) aclBlocks(name string, dev *topology.Device, tc topology.TrafficClass) bool {
	if name == "" {
		return false
	}
	return dev.ACLs[name].Blocks(tc.Src.Prefix, tc.Dst.Prefix)
}

// Weight returns the slot's edge weight for destination dst: the egress
// interface cost for adjacency-backed inter-device edges, the configured
// administrative distance for static-backed edges, and 0 for intra-device
// and attachment edges (matching the ETG weighting of §4.1).
func (s *Slot) Weight(dst *topology.Subnet) int64 {
	if s.Kind != SlotInterDevice {
		return 0
	}
	if s.adjacencyUp() {
		return int64(s.FromIntf.Cost)
	}
	if dst != nil {
		if sr := s.StaticBacked(dst); sr != nil {
			return int64(sr.Distance)
		}
	}
	return int64(s.FromIntf.Cost)
}

// Waypoint reports whether the slot's edge carries an on-path middlebox:
// inter-device edges over waypoint links, and intra-device edges on
// waypoint devices.
func (s *Slot) Waypoint() bool {
	switch s.Kind {
	case SlotInterDevice:
		return s.Link.Waypoint
	case SlotIntraSelf, SlotIntraRedist:
		return s.FromProc.Device.Waypoint
	}
	return false
}

// Device returns the device this slot's configuration lives on for
// translation purposes: the tail device for inter-device and dest slots,
// the owning device for intra slots, the attachment device for source
// slots.
func (s *Slot) Device() *topology.Device {
	switch s.Kind {
	case SlotInterDevice, SlotIntraSelf, SlotDest:
		return s.FromProc.Device
	case SlotIntraRedist, SlotSource:
		return s.ToProc.Device
	}
	return nil
}
