package harc

import (
	"net/netip"
	"testing"

	"repro/internal/arc"
	"repro/internal/topology"
)

func TestBuildFigure2a(t *testing.T) {
	n := topology.Figure2a()
	h := Build(n)
	if len(h.TCs) != 12 {
		t.Fatalf("traffic classes = %d, want 12", len(h.TCs))
	}
	if len(h.Dsts) != 4 || len(h.D) != 4 {
		t.Fatalf("destinations = %d, want 4", len(h.Dsts))
	}
	if h.A == nil {
		t.Fatal("aETG missing")
	}
	if err := h.ValidateHierarchy(); err != nil {
		t.Fatalf("ValidateHierarchy: %v", err)
	}
}

func TestBuildForTCsSubset(t *testing.T) {
	n := topology.Figure2a()
	tcs := []topology.TrafficClass{
		{Src: n.Subnet("S"), Dst: n.Subnet("T")},
		{Src: n.Subnet("R"), Dst: n.Subnet("T")},
	}
	h := BuildForTCs(n, tcs)
	if len(h.TC) != 2 {
		t.Fatalf("tcETGs = %d, want 2", len(h.TC))
	}
	if len(h.D) != 1 || h.DETG(n.Subnet("T")) == nil {
		t.Fatal("expected a single dETG for T")
	}
}

func TestValidateHierarchyWithStatic(t *testing.T) {
	n := topology.Figure2a()
	n.Device("A").AddStatic(n.Subnet("T").Prefix, netip.MustParseAddr("10.0.2.3"), 3)
	h := Build(n)
	if err := h.ValidateHierarchy(); err != nil {
		t.Fatalf("static-backed edge should be hierarchy-valid: %v", err)
	}
	// The static edge is in the dETG for T but not in the aETG.
	var slot *arc.Slot
	for _, s := range h.Slots {
		if s.Kind == arc.SlotInterDevice && s.FromProc.Device.Name == "A" && s.ToProc.Device.Name == "C" {
			slot = s
		}
	}
	if slot == nil {
		t.Fatal("A->C slot not found")
	}
	if !h.DETG(n.Subnet("T")).HasSlot(slot) {
		t.Error("A->C should be in dETG(T)")
	}
	if h.A.HasSlot(slot) {
		t.Error("A->C should not be in aETG")
	}
}

func TestStateOfRoundTrip(t *testing.T) {
	n := topology.Figure2a()
	h := Build(n)
	st := StateOf(h)
	if err := h.ValidateState(st); err != nil {
		t.Fatalf("ValidateState on extracted state: %v", err)
	}
	// The state's tcETG must equal the directly-built tcETG for every tc.
	for _, tc := range h.TCs {
		direct := h.TCETG(tc)
		fromState := BuildTCETGFromState(h, st, tc)
		if direct.G.String() != fromState.G.String() {
			t.Errorf("tcETG(%s) mismatch:\ndirect:\n%s\nstate:\n%s", tc, direct.G.String(), fromState.G.String())
		}
	}
}

func TestStateOfCosts(t *testing.T) {
	n := topology.Figure2a()
	n.Device("A").Interface("Ethernet0/1").Cost = 9
	h := Build(n)
	st := StateOf(h)
	if st.Cost["A/Ethernet0/1"] != 9 {
		t.Errorf("cost A/Ethernet0/1 = %d, want 9", st.Cost["A/Ethernet0/1"])
	}
	if st.Cost["B/Ethernet0/1"] != 1 {
		t.Errorf("cost B/Ethernet0/1 = %d, want 1", st.Cost["B/Ethernet0/1"])
	}
}

func TestStateClone(t *testing.T) {
	n := topology.Figure2a()
	h := Build(n)
	st := StateOf(h)
	c := st.Clone()
	for k := range c.All {
		c.All[k] = !c.All[k]
		break
	}
	for k := range c.Cost {
		c.Cost[k] = 99
		break
	}
	same := true
	for k, v := range st.All {
		if c.All[k] != v {
			same = false
		}
	}
	if same {
		t.Error("clone mutation should diverge from original")
	}
	// Original costs untouched.
	for _, v := range st.Cost {
		if v == 99 {
			t.Error("clone cost mutation leaked into original")
		}
	}
}

func TestValidateStateCatchesHierarchyViolation(t *testing.T) {
	n := topology.Figure2a()
	h := Build(n)
	st := StateOf(h)
	// Force an edge into a tcETG without its dETG: pick an inter-device
	// slot absent from the dETG for U (e.g. A->C, passive).
	var key string
	for _, s := range h.Slots {
		if s.Kind == arc.SlotInterDevice && s.FromProc.Device.Name == "A" && s.ToProc.Device.Name == "C" {
			key = s.Key()
		}
	}
	tcKey := topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("U")}.Key()
	st.TC[tcKey][key] = true
	if err := h.ValidateState(st); err == nil {
		t.Error("ValidateState should reject tcETG edge missing from dETG")
	}
}

func TestValidateStateCatchesIntraViolation(t *testing.T) {
	n := topology.Figure2a()
	h := Build(n)
	st := StateOf(h)
	// An intra-redist edge present in a dETG but not the aETG is invalid.
	var key string
	for _, s := range h.Slots {
		if s.Kind == arc.SlotIntraRedist {
			key = s.Key()
			break
		}
	}
	if key == "" {
		// Figure2a has single-process devices; fabricate a second process.
		n2 := topology.Figure2a()
		d := n2.Device("A")
		d.AddProcess(topology.BGP, 65000)
		h = Build(n2)
		st = StateOf(h)
		for _, s := range h.Slots {
			if s.Kind == arc.SlotIntraRedist {
				key = s.Key()
				break
			}
		}
	}
	if key == "" {
		t.Fatal("no intra-redist slot found")
	}
	st.Dst[h.Dsts[0].Name][key] = true
	st.All[key] = false
	if err := h.ValidateState(st); err == nil {
		t.Error("ValidateState should reject intra dETG edge missing from aETG")
	}
}

func TestBuildTCETGFromStateRespectsEdits(t *testing.T) {
	n := topology.Figure2a()
	h := Build(n)
	st := StateOf(h)
	tc := topology.TrafficClass{Src: n.Subnet("S"), Dst: n.Subnet("T")}
	// Add the A->C edge at all levels (the Figure 2b repair in state form).
	var key string
	for _, s := range h.Slots {
		if s.Kind == arc.SlotInterDevice && s.FromProc.Device.Name == "A" && s.ToProc.Device.Name == "C" {
			key = s.Key()
		}
	}
	st.All[key] = true
	st.Dst["T"][key] = true
	st.TC[tc.Key()][key] = true
	etg := BuildTCETGFromState(h, st, tc)
	from, to := etg.G.Vertex("A:ospf10:O"), etg.G.Vertex("C:ospf10:I")
	if from < 0 || to < 0 || etg.G.FindEdge(from, to) < 0 {
		t.Fatal("state-added edge not materialized")
	}
	if !arc.VerifyKReachable(etg, n, 2) {
		t.Error("EP3 should hold on the repaired state")
	}
}

func TestStateOfConstructs(t *testing.T) {
	n := topology.Figure2a()
	n.Device("A").AddStatic(n.Subnet("T").Prefix, netip.MustParseAddr("10.0.2.3"), 3)
	pc := n.Device("C").Process(topology.OSPF, 10)
	pc.RouteFilters = append(pc.RouteFilters, n.Subnet("U").Prefix)
	h := Build(n)
	st := StateOf(h)
	if !st.RouteFilter[RFKey("U", "C:ospf10")] {
		t.Error("route filter on C for U not recorded")
	}
	if st.RouteFilter[RFKey("T", "C:ospf10")] {
		t.Error("no filter for T should be recorded")
	}
	foundStatic := false
	for key, v := range st.Static {
		if v && key[:2] == "T|" {
			foundStatic = true
		}
	}
	if !foundStatic {
		t.Error("static route for T not recorded")
	}
	// Clone copies constructs.
	c := st.Clone()
	c.RouteFilter[RFKey("U", "C:ospf10")] = false
	if !st.RouteFilter[RFKey("U", "C:ospf10")] {
		t.Error("clone construct mutation leaked")
	}
}

func TestValidateStateStaticBackedIntra(t *testing.T) {
	// An intra edge backed by a state-level static (no aETG edge) must be
	// hierarchy-valid.
	n := topology.Figure2a()
	h := Build(n)
	st := StateOf(h)
	// Pretend a static for T leaves A via C: find the A->C inter slot.
	var interKey string
	for _, s := range h.Slots {
		if s.Kind == arc.SlotInterDevice && s.FromProc.Device.Name == "A" && s.ToProc.Device.Name == "C" {
			interKey = s.Key()
		}
	}
	st.Static[StaticKey("T", interKey)] = true
	st.Dst["T"][interKey] = true
	if err := h.ValidateState(st); err != nil {
		t.Errorf("static-backed inter edge should validate: %v", err)
	}
}

func TestCostKey(t *testing.T) {
	n := topology.Figure2a()
	var interSlot, selfSlot *arc.Slot
	for _, s := range arc.Slots(n) {
		switch s.Kind {
		case arc.SlotInterDevice:
			interSlot = s
		case arc.SlotIntraSelf:
			selfSlot = s
		}
	}
	if CostKey(interSlot) == "" {
		t.Error("inter-device slot should have a cost key")
	}
	if CostKey(selfSlot) != "" {
		t.Error("intra slot should have no cost key")
	}
}
