// Package harc implements the Hierarchical Abstract Representation for
// Control planes (paper §4.3): a traffic-class ETG per (src,dst) pair, a
// destination ETG per destination subnet, and one all-traffic-classes
// ETG, all derived from a shared slot table so the hierarchy invariants
// hold by construction.
//
// The package also defines State — the assignment of per-level presence
// booleans and edge costs that the repair engine searches over — and can
// rebuild ETGs from a repaired State for re-verification.
package harc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arc"
	"repro/internal/graph"
	"repro/internal/topology"
)

// HARC bundles the three ETG layers of a network for a set of traffic
// classes.
type HARC struct {
	Network *topology.Network
	Slots   []*arc.Slot
	ByKey   map[string]*arc.Slot

	TCs  []topology.TrafficClass
	Dsts []*topology.Subnet

	A  *arc.ETG
	D  map[string]*arc.ETG // keyed by destination subnet name
	TC map[string]*arc.ETG // keyed by TrafficClass.Key()
}

// Build constructs the HARC over every traffic class of the network.
func Build(n *topology.Network) *HARC {
	return BuildForTCs(n, n.TrafficClasses())
}

// BuildForTCs constructs the HARC restricted to the given traffic classes
// (used by the per-destination decomposition of §5.3).
func BuildForTCs(n *topology.Network, tcs []topology.TrafficClass) *HARC {
	slots := arc.Slots(n)
	h := &HARC{
		Network: n,
		Slots:   slots,
		ByKey:   make(map[string]*arc.Slot, len(slots)),
		TCs:     tcs,
		D:       make(map[string]*arc.ETG),
		TC:      make(map[string]*arc.ETG),
	}
	for _, s := range slots {
		h.ByKey[s.Key()] = s
	}
	h.A = arc.BuildAllETG(slots)
	seen := map[string]bool{}
	for _, tc := range tcs {
		if !seen[tc.Dst.Name] {
			seen[tc.Dst.Name] = true
			h.Dsts = append(h.Dsts, tc.Dst)
		}
	}
	// Each per-class and per-destination ETG is a pure function of the
	// (immutable, key-precached) slot table, so they build concurrently
	// over the same pool shape StateOf uses; the index maps are assembled
	// serially in input order, keeping the HARC byte-identical to a
	// sequential build.
	tcOut := make([]*arc.ETG, len(tcs))
	dstOut := make([]*arc.ETG, len(h.Dsts))
	total := len(tcs) + len(h.Dsts)
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if i < len(h.Dsts) {
					dstOut[i] = arc.BuildDstETG(slots, h.Dsts[i])
				} else {
					tcOut[i-len(h.Dsts)] = arc.BuildTCETG(slots, tcs[i-len(h.Dsts)])
				}
			}
		}()
	}
	wg.Wait()
	for i, dst := range h.Dsts {
		h.D[dst.Name] = dstOut[i]
	}
	for i, tc := range tcs {
		h.TC[tc.Key()] = tcOut[i]
	}
	return h
}

// BuildLite constructs the slot table and class/destination indexes of
// a HARC without materializing any ETG — enough for StateOf and the
// *FromState builders, which read only Slots and the indexes. Verifiers
// that compare states (rather than graphs) use it to skip the dominant
// cost of BuildForTCs.
func BuildLite(n *topology.Network, tcs []topology.TrafficClass) *HARC {
	slots := arc.Slots(n)
	h := &HARC{
		Network: n,
		Slots:   slots,
		ByKey:   make(map[string]*arc.Slot, len(slots)),
		TCs:     tcs,
		D:       make(map[string]*arc.ETG),
		TC:      make(map[string]*arc.ETG),
	}
	for _, s := range slots {
		h.ByKey[s.Key()] = s
	}
	seen := map[string]bool{}
	for _, tc := range tcs {
		if !seen[tc.Dst.Name] {
			seen[tc.Dst.Name] = true
			h.Dsts = append(h.Dsts, tc.Dst)
		}
	}
	return h
}

// TCETG returns the tcETG for tc.
func (h *HARC) TCETG(tc topology.TrafficClass) *arc.ETG { return h.TC[tc.Key()] }

// DETG returns the dETG for dst.
func (h *HARC) DETG(dst *topology.Subnet) *arc.ETG { return h.D[dst.Name] }

// ValidateHierarchy checks the HARC well-formedness invariants of §4.3:
// every tcETG edge exists in the corresponding dETG, and every dETG edge
// exists in the aETG or (inter-device only) is backed by a static route.
func (h *HARC) ValidateHierarchy() error {
	for _, tc := range h.TCs {
		tcETG := h.TCETG(tc)
		dETG := h.DETG(tc.Dst)
		for _, s := range h.Slots {
			if s.Kind == arc.SlotSource {
				continue // source edges exist only at the tc level
			}
			if tcETG.HasSlot(s) && !dETG.HasSlot(s) {
				return fmt.Errorf("harc: edge %s in tcETG(%s) but not dETG(%s)", s.Key(), tc, tc.Dst.Name)
			}
		}
	}
	for _, dst := range h.Dsts {
		dETG := h.DETG(dst)
		for _, s := range h.Slots {
			if !dETG.HasSlot(s) {
				continue
			}
			switch s.Kind {
			case arc.SlotInterDevice:
				if !h.A.HasSlot(s) && s.StaticBacked(dst) == nil {
					return fmt.Errorf("harc: inter-device edge %s in dETG(%s) without aETG edge or static route", s.Key(), dst.Name)
				}
			case arc.SlotIntraSelf, arc.SlotIntraRedist:
				if !h.A.HasSlot(s) && !arc.ProcStaticFor(s.FromProc, dst) {
					return fmt.Errorf("harc: intra-device edge %s in dETG(%s) but not aETG", s.Key(), dst.Name)
				}
			}
		}
	}
	return nil
}

// CostKey identifies the shared cost variable of an inter-device slot: the
// directed egress interface. Routing protocols do not allow per-class or
// per-destination costs (paper §5.1, constraint 13 discussion), so every
// slot leaving the same interface shares one cost.
func CostKey(s *arc.Slot) string {
	if s.Kind != arc.SlotInterDevice {
		return ""
	}
	return s.FromIntf.Device.Name + "/" + s.FromIntf.Name
}

// State is an explicit assignment of edge presence per HARC level plus
// shared edge costs: the search space of the repair engine. Maps are
// keyed by Slot.Key(); absent keys mean "absent edge". Costs are keyed by
// CostKey.
type State struct {
	All  map[string]bool
	Dst  map[string]map[string]bool // dst subnet name → slot key → present
	TC   map[string]map[string]bool // tc key → slot key → present
	Cost map[string]int64
	// Waypoint records per-link middlebox presence (keyed by Link.Name());
	// repairs may add waypoints (paper §2.2, footnote 2).
	Waypoint map[string]bool
	// RouteFilter records per-(destination, process) filtering, keyed
	// "dst|procName"; Static records per-(destination, inter slot) static
	// routes, keyed "dst|slotKey". These are the constructs the presence
	// maps are derived from; the translator reads them directly.
	RouteFilter map[string]bool
	Static      map[string]bool
}

// RFKey builds a RouteFilter key.
func RFKey(dstName, procName string) string { return dstName + "|" + procName }

// StaticKey builds a Static key.
func StaticKey(dstName, slotKey string) string { return dstName + "|" + slotKey }

// NewState returns an empty state with allocated maps.
func NewState() *State {
	return &State{
		All:         make(map[string]bool),
		Dst:         make(map[string]map[string]bool),
		TC:          make(map[string]map[string]bool),
		Cost:        make(map[string]int64),
		Waypoint:    make(map[string]bool),
		RouteFilter: make(map[string]bool),
		Static:      make(map[string]bool),
	}
}

// Clone returns a deep copy.
func (st *State) Clone() *State {
	c := NewState()
	for k, v := range st.All {
		c.All[k] = v
	}
	for d, m := range st.Dst {
		cm := make(map[string]bool, len(m))
		for k, v := range m {
			cm[k] = v
		}
		c.Dst[d] = cm
	}
	for t, m := range st.TC {
		cm := make(map[string]bool, len(m))
		for k, v := range m {
			cm[k] = v
		}
		c.TC[t] = cm
	}
	for k, v := range st.Cost {
		c.Cost[k] = v
	}
	for k, v := range st.Waypoint {
		c.Waypoint[k] = v
	}
	for k, v := range st.RouteFilter {
		c.RouteFilter[k] = v
	}
	for k, v := range st.Static {
		c.Static[k] = v
	}
	return c
}

// StateOf extracts the current state of the HARC: presence of every slot
// at every level and the cost of every directed interface. The
// per-destination and per-traffic-class scans are independent and run
// on one worker per core (the concrete maps are staged per index and
// merged serially, so the result is deterministic).
func StateOf(h *HARC) *State {
	st := NewState()
	for _, s := range h.Slots {
		key := s.Key()
		if s.Kind != arc.SlotSource && s.Kind != arc.SlotDest {
			st.All[key] = s.PresentAll()
		}
		if ck := CostKey(s); ck != "" {
			st.Cost[ck] = int64(s.FromIntf.Cost)
		}
	}
	for _, l := range h.Network.Links {
		st.Waypoint[l.Name()] = l.Waypoint
	}

	type dstMaps struct {
		m, rf, static map[string]bool
	}
	dstOut := make([]dstMaps, len(h.Dsts))
	tcOut := make([]map[string]bool, len(h.TCs))
	total := len(h.Dsts) + len(h.TCs)
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if i < len(h.Dsts) {
					dstOut[i] = dstMaps{m: stateOfDst(h, h.Dsts[i])}
					dstOut[i].rf, dstOut[i].static = stateOfConstructs(h, h.Dsts[i])
				} else {
					tcOut[i-len(h.Dsts)] = stateOfTC(h, h.TCs[i-len(h.Dsts)])
				}
			}
		}()
	}
	wg.Wait()
	for i, dst := range h.Dsts {
		st.Dst[dst.Name] = dstOut[i].m
		for k, v := range dstOut[i].rf {
			st.RouteFilter[k] = v
		}
		for k, v := range dstOut[i].static {
			st.Static[k] = v
		}
	}
	for i, tc := range h.TCs {
		st.TC[tc.Key()] = tcOut[i]
	}
	return st
}

// slotTouches reports whether a slot's presence can depend on the
// configuration of any device in changed: its end processes' devices
// and (for attachment slots) the attachment interface's device.
func slotTouches(s *arc.Slot, changed map[string]bool) bool {
	if s.FromProc != nil && changed[s.FromProc.Device.Name] {
		return true
	}
	if s.ToProc != nil && changed[s.ToProc.Device.Name] {
		return true
	}
	if s.Intf != nil && changed[s.Intf.Device.Name] {
		return true
	}
	return false
}

// StateOfDelta computes StateOf(h) assuming base is the state of a HARC
// whose network differs from h's only in the configurations of the
// devices named in changed: slots touching a changed device are
// recomputed from the slot rules, everything else is copied from base.
// It returns nil — directing the caller to a full StateOf — whenever
// the assumption is not checkable: base lacks a destination, class,
// slot, link, cost, or construct key the new network has (the change
// was structural, not just behavioral).
//
// Soundness rests on slot presence being a function of its end devices'
// configurations and the subnet prefixes: every rule the slot evaluates
// (route filters, ACLs, static routes, redistribution) lives in the
// config of a device slotTouches covers. Prefix changes break that
// locality — an ACL on an unchanged device matches against remote
// prefixes — so callers must not use the delta path when any subnet's
// prefix differs between the two networks (session.Delta enforces
// this).
func StateOfDelta(h *HARC, base *State, changed map[string]bool) *State {
	if base == nil || len(changed) == 0 {
		return nil
	}
	for _, dst := range h.Dsts {
		if base.Dst[dst.Name] == nil {
			return nil
		}
	}
	for _, tc := range h.TCs {
		if base.TC[tc.Key()] == nil {
			return nil
		}
	}
	st := NewState()
	for _, s := range h.Slots {
		key := s.Key()
		t := slotTouches(s, changed)
		if s.Kind != arc.SlotSource && s.Kind != arc.SlotDest {
			if t {
				st.All[key] = s.PresentAll()
			} else if v, ok := base.All[key]; ok {
				st.All[key] = v
			} else {
				return nil
			}
		}
		if ck := CostKey(s); ck != "" {
			if t {
				st.Cost[ck] = int64(s.FromIntf.Cost)
			} else if v, ok := base.Cost[ck]; ok {
				st.Cost[ck] = v
			} else {
				return nil
			}
		}
	}
	for _, l := range h.Network.Links {
		if changed[l.A.Device.Name] || changed[l.B.Device.Name] {
			st.Waypoint[l.Name()] = l.Waypoint
		} else if v, ok := base.Waypoint[l.Name()]; ok {
			st.Waypoint[l.Name()] = v
		} else {
			return nil
		}
	}

	type dstMaps struct {
		m, rf, static map[string]bool
	}
	dstOut := make([]dstMaps, len(h.Dsts))
	tcOut := make([]map[string]bool, len(h.TCs))
	total := len(h.Dsts) + len(h.TCs)
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || failed.Load() {
					return
				}
				ok := true
				if i < len(h.Dsts) {
					dst := h.Dsts[i]
					dstOut[i].m, ok = stateOfDstDelta(h, base, dst, changed)
					if ok {
						dstOut[i].rf, dstOut[i].static, ok = stateOfConstructsDelta(h, base, dst, changed)
					}
				} else {
					tcOut[i-len(h.Dsts)], ok = stateOfTCDelta(h, base, h.TCs[i-len(h.Dsts)], changed)
				}
				if !ok {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return nil
	}
	for i, dst := range h.Dsts {
		st.Dst[dst.Name] = dstOut[i].m
		for k, v := range dstOut[i].rf {
			st.RouteFilter[k] = v
		}
		for k, v := range dstOut[i].static {
			st.Static[k] = v
		}
	}
	for i, tc := range h.TCs {
		st.TC[tc.Key()] = tcOut[i]
	}
	return st
}

// stateOfDstDelta is stateOfDst with unchanged slots copied from base.
func stateOfDstDelta(h *HARC, base *State, dst *topology.Subnet, changed map[string]bool) (map[string]bool, bool) {
	bm := base.Dst[dst.Name]
	m := make(map[string]bool, len(bm))
	for _, s := range h.Slots {
		if s.Kind == arc.SlotSource {
			continue
		}
		if s.Kind == arc.SlotDest && s.Subnet != dst {
			continue
		}
		key := s.Key()
		if slotTouches(s, changed) {
			m[key] = s.PresentDst(dst)
		} else if v, ok := bm[key]; ok {
			m[key] = v
		} else {
			return nil, false
		}
	}
	return m, true
}

// stateOfConstructsDelta is stateOfConstructs with unchanged slots
// copied from base.
func stateOfConstructsDelta(h *HARC, base *State, dst *topology.Subnet, changed map[string]bool) (rf, static map[string]bool, ok bool) {
	rf = make(map[string]bool)
	static = make(map[string]bool)
	for _, s := range h.Slots {
		switch s.Kind {
		case arc.SlotIntraSelf:
			key := RFKey(dst.Name, s.FromProc.Name())
			if slotTouches(s, changed) {
				rf[key] = s.FromProc.BlocksDestination(dst.Prefix)
			} else if v, ok := base.RouteFilter[key]; ok {
				rf[key] = v
			} else {
				return nil, nil, false
			}
		case arc.SlotInterDevice:
			key := StaticKey(dst.Name, s.Key())
			if slotTouches(s, changed) {
				static[key] = s.StaticBacked(dst) != nil
			} else if v, ok := base.Static[key]; ok {
				static[key] = v
			} else {
				return nil, nil, false
			}
		}
	}
	return rf, static, true
}

// stateOfTCDelta is stateOfTC with unchanged slots copied from base.
func stateOfTCDelta(h *HARC, base *State, tc topology.TrafficClass, changed map[string]bool) (map[string]bool, bool) {
	bm := base.TC[tc.Key()]
	m := make(map[string]bool, len(bm))
	for _, s := range h.Slots {
		if s.Kind == arc.SlotSource && s.Subnet != tc.Src {
			continue
		}
		if s.Kind == arc.SlotDest && s.Subnet != tc.Dst {
			continue
		}
		key := s.Key()
		if slotTouches(s, changed) {
			m[key] = s.PresentTC(tc)
		} else if v, ok := bm[key]; ok {
			m[key] = v
		} else {
			return nil, false
		}
	}
	return m, true
}

// stateOfDst computes one destination's dETG presence map.
func stateOfDst(h *HARC, dst *topology.Subnet) map[string]bool {
	m := make(map[string]bool)
	for _, s := range h.Slots {
		if s.Kind == arc.SlotSource {
			continue
		}
		if s.Kind == arc.SlotDest && s.Subnet != dst {
			continue
		}
		m[s.Key()] = s.PresentDst(dst)
	}
	return m
}

// stateOfConstructs computes one destination's route-filter and
// static-route construct maps.
func stateOfConstructs(h *HARC, dst *topology.Subnet) (rf, static map[string]bool) {
	rf = make(map[string]bool)
	static = make(map[string]bool)
	for _, s := range h.Slots {
		switch s.Kind {
		case arc.SlotIntraSelf:
			rf[RFKey(dst.Name, s.FromProc.Name())] =
				s.FromProc.BlocksDestination(dst.Prefix)
		case arc.SlotInterDevice:
			static[StaticKey(dst.Name, s.Key())] = s.StaticBacked(dst) != nil
		}
	}
	return rf, static
}

// stateOfTC computes one traffic class's tcETG presence map.
func stateOfTC(h *HARC, tc topology.TrafficClass) map[string]bool {
	m := make(map[string]bool)
	for _, s := range h.Slots {
		if s.Kind == arc.SlotSource && s.Subnet != tc.Src {
			continue
		}
		if s.Kind == arc.SlotDest && s.Subnet != tc.Dst {
			continue
		}
		m[s.Key()] = s.PresentTC(tc)
	}
	return m
}

// procStatic reports whether the state has a static route for dst
// leaving through the given process (an inter slot with that tail).
func (st *State) procStatic(h *HARC, dstName string, proc *topology.Process) bool {
	for _, s := range h.Slots {
		if s.Kind != arc.SlotInterDevice || s.FromProc != proc {
			continue
		}
		if st.Static[StaticKey(dstName, s.Key())] {
			return true
		}
	}
	return false
}

// SlotCost returns the state's cost for slot s, falling back to the
// slot's structural weight for non-inter-device slots.
func (st *State) SlotCost(s *arc.Slot, dst *topology.Subnet) int64 {
	if ck := CostKey(s); ck != "" {
		if c, ok := st.Cost[ck]; ok {
			return c
		}
	}
	return s.Weight(dst)
}

// BuildTCETGFromState materializes the tcETG encoded in the state for tc:
// the graph with exactly the slots marked present at the tc level, using
// the state's costs. Used to re-verify repaired HARCs before translation.
func BuildTCETGFromState(h *HARC, st *State, tc topology.TrafficClass) *arc.ETG {
	etg := &arc.ETG{
		Level:     arc.LevelTC,
		TC:        tc,
		DstSubnet: tc.Dst,
		G:         graph.New(),
		SlotOf:    make(map[graph.E]*arc.Slot),
		EdgeOf:    make(map[string]graph.E),
	}
	etg.Src = etg.G.AddVertex("SRC")
	etg.Dst = etg.G.AddVertex("DST")
	etg.Waypoints = st.Waypoint
	m := st.TC[tc.Key()]
	for _, s := range h.Slots {
		if !m[s.Key()] {
			continue
		}
		if s.Kind == arc.SlotSource && s.Subnet != tc.Src {
			continue
		}
		if s.Kind == arc.SlotDest && s.Subnet != tc.Dst {
			continue
		}
		from := etg.G.AddVertex(s.FromVertex())
		to := etg.G.AddVertex(s.ToVertex())
		e := etg.G.AddEdge(from, to, st.SlotCost(s, tc.Dst))
		etg.SlotOf[e] = s
		etg.EdgeOf[s.Key()] = e
	}
	return etg
}

// BuildRoutingETGFromState materializes the routing graph encoded in the
// state for tc: destination-level presence for every slot (route
// selection is ACL-blind) plus tc's own attachment edges. The source
// attachment uses tc-level presence — a blocked entry drops traffic
// outright, it cannot be routed around.
func BuildRoutingETGFromState(h *HARC, st *State, tc topology.TrafficClass) *arc.ETG {
	etg := &arc.ETG{
		Level:     arc.LevelTC,
		TC:        tc,
		DstSubnet: tc.Dst,
		G:         graph.New(),
		SlotOf:    make(map[graph.E]*arc.Slot),
		EdgeOf:    make(map[string]graph.E),
	}
	etg.Src = etg.G.AddVertex("SRC")
	etg.Dst = etg.G.AddVertex("DST")
	etg.Waypoints = st.Waypoint
	dstm := st.Dst[tc.Dst.Name]
	tcm := st.TC[tc.Key()]
	for _, s := range h.Slots {
		if s.Kind == arc.SlotSource {
			if s.Subnet != tc.Src || !tcm[s.Key()] {
				continue
			}
		} else {
			if s.Kind == arc.SlotDest && s.Subnet != tc.Dst {
				continue
			}
			if !dstm[s.Key()] {
				continue
			}
		}
		from := etg.G.AddVertex(s.FromVertex())
		to := etg.G.AddVertex(s.ToVertex())
		e := etg.G.AddEdge(from, to, st.SlotCost(s, tc.Dst))
		etg.SlotOf[e] = s
		etg.EdgeOf[s.Key()] = e
	}
	return etg
}

// ValidateState checks the hierarchy invariants on an explicit state
// (constraints 18-19 of Figure 5 plus the static-backing rule for
// intra-device edges).
func (h *HARC) ValidateState(st *State) error {
	for _, tc := range h.TCs {
		m := st.TC[tc.Key()]
		dm := st.Dst[tc.Dst.Name]
		for key, present := range m {
			s := h.ByKey[key]
			if s == nil {
				return fmt.Errorf("harc: state references unknown slot %s", key)
			}
			if s.Kind == arc.SlotSource {
				continue
			}
			if present && !dm[key] {
				return fmt.Errorf("harc: state has %s in tcETG(%s) but not dETG(%s)", key, tc, tc.Dst.Name)
			}
		}
	}
	for dstName, dm := range st.Dst {
		for key, present := range dm {
			if !present {
				continue
			}
			s := h.ByKey[key]
			if s == nil {
				return fmt.Errorf("harc: state references unknown slot %s", key)
			}
			switch s.Kind {
			case arc.SlotIntraSelf, arc.SlotIntraRedist:
				if !st.All[key] && !st.procStatic(h, dstName, s.FromProc) {
					return fmt.Errorf("harc: state has intra edge %s in dETG(%s) but not aETG", key, dstName)
				}
			}
		}
	}
	return nil
}
