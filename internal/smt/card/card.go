// Package card provides incremental cardinality encodings over SAT
// literals. Its one export, Totalizer, is the totalizer of Bailleux &
// Boufkhad built the way incremental MaxSAT engines need it (Martins et
// al., "Incremental Cardinality Constraints for MaxSAT", CP 2014): the
// counting tree is laid out once, but output variables and clauses are
// materialized lazily, bound by bound, against the live solver — so a
// core-guided descent that discovers it needs "count ≤ k+1" after
// having encoded "count ≤ k" pays only for the new layer instead of
// re-encoding the whole constraint.
//
// Only the input→output direction is encoded ("at least k inputs true
// implies output k"), which is exactly what upper-bounding uses: assume
// ¬AtLeast(k+1) to enforce "at most k". Outputs beyond the materialized
// bound collapse onto the bound's output, which keeps every extension
// sound (a collapsed clause forces a weaker "at least" output that is
// still implied) while Extend adds the sharper clauses the new bound
// needs.
package card

import "repro/internal/smt/sat"

// tnode is one node of the counting tree. Leaves carry the input
// literal itself as their single output; internal nodes materialize
// outs[k-1] ⇔ "at least k of this subtree's inputs are true" up to the
// totalizer's current bound.
type tnode struct {
	left, right int // child indices into Totalizer.nodes; -1 for leaves
	size        int // inputs under this subtree
	outs        []sat.Lit
}

// Totalizer is an incremental totalizer over a fixed input set on a
// live solver. New lays out the tree without touching the solver;
// Extend materializes counting outputs and clauses up to a bound,
// strictly monotonically — clauses added for earlier bounds are never
// re-emitted. All materialization is deterministic: fresh variables are
// created in post-order tree walks, so two runs over the same solver
// state produce identical clause databases.
type Totalizer struct {
	s     *sat.Solver
	nodes []tnode
	root  int
	n     int // number of inputs
	bound int // outputs materialized per node up to min(size, bound)
	vars  int // fresh output variables created so far
}

// New lays out a totalizer over inputs. It adds no variables or clauses
// until Extend is called. Panics on an empty input set.
func New(s *sat.Solver, inputs []sat.Lit) *Totalizer {
	if len(inputs) == 0 {
		panic("card: totalizer over zero inputs")
	}
	t := &Totalizer{s: s, n: len(inputs)}
	t.root = t.build(inputs)
	return t
}

// build recursively lays out the balanced counting tree, returning the
// subtree's node index. Leaves are materialized immediately (their only
// output is the input literal itself — no encoding needed).
func (t *Totalizer) build(inputs []sat.Lit) int {
	if len(inputs) == 1 {
		t.nodes = append(t.nodes, tnode{left: -1, right: -1, size: 1, outs: []sat.Lit{inputs[0]}})
		return len(t.nodes) - 1
	}
	mid := len(inputs) / 2
	l := t.build(inputs[:mid])
	r := t.build(inputs[mid:])
	t.nodes = append(t.nodes, tnode{left: l, right: r, size: len(inputs)})
	return len(t.nodes) - 1
}

// Len returns the number of inputs.
func (t *Totalizer) Len() int { return t.n }

// Bound returns the currently materialized count bound: AtLeast(k) is
// available for 1 ≤ k ≤ Bound().
func (t *Totalizer) Bound() int { return t.bound }

// Vars returns the number of fresh output variables materialized so
// far (totalizer-size telemetry).
func (t *Totalizer) Vars() int { return t.vars }

// AtLeast returns the output literal that is implied whenever at least
// k inputs are true (1 ≤ k ≤ Bound()). Assuming its negation enforces
// "at most k-1 inputs true".
func (t *Totalizer) AtLeast(k int) sat.Lit {
	if k < 1 || k > t.bound {
		panic("card: AtLeast outside materialized bound")
	}
	return t.nodes[t.root].outs[k-1]
}

// Extend materializes counting outputs up to min(bound, Len()),
// emitting only the clauses the new layers need. Bounds at or below
// the current one are no-ops. The solver's TotalizerVars stat counter
// tracks the variables created.
func (t *Totalizer) Extend(bound int) {
	if bound > t.n {
		bound = t.n
	}
	if bound <= t.bound {
		return
	}
	old := t.bound
	t.extendNode(t.root, old, bound)
	t.bound = bound
}

// extendNode grows one node (children first) from per-node target
// min(size, oldB) to min(size, newB). For children counts i and j the
// parent output min(i+j, target) is forced; pairs with i+j ≤ the old
// target already carry their exact clause from an earlier extension and
// are skipped, while pairs that previously collapsed onto the old
// target get the sharper clause their sum now reaches.
func (t *Totalizer) extendNode(ni, oldB, newB int) {
	nd := &t.nodes[ni]
	if nd.left < 0 {
		return // leaf: its single output is the input literal
	}
	oldT := min(nd.size, oldB)
	newT := min(nd.size, newB)
	if newT <= oldT {
		// Node (and thus its whole subtree) was already saturated.
		return
	}
	t.extendNode(nd.left, oldB, newB)
	t.extendNode(nd.right, oldB, newB)
	for k := len(nd.outs); k < newT; k++ {
		nd.outs = append(nd.outs, sat.MkLit(t.s.NewVar(), false))
		t.vars++
		t.s.TotalizerVars++
	}
	l := t.nodes[nd.left].outs
	r := t.nodes[nd.right].outs
	for i := 0; i <= len(l); i++ {
		for j := 0; j <= len(r); j++ {
			if i+j <= oldT {
				continue // exact clause already present (i+j ≥ 1 implied)
			}
			m := i + j
			if m > newT {
				m = newT
			}
			switch {
			case i == 0:
				t.s.AddClause(r[j-1].Not(), nd.outs[m-1])
			case j == 0:
				t.s.AddClause(l[i-1].Not(), nd.outs[m-1])
			default:
				t.s.AddClause(l[i-1].Not(), r[j-1].Not(), nd.outs[m-1])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
