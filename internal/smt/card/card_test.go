package card

import (
	"math/rand"
	"testing"

	"repro/internal/smt/sat"
)

// newInputs allocates n free variables on s and returns their positive
// literals.
func newInputs(s *sat.Solver, n int) []sat.Lit {
	lits := make([]sat.Lit, n)
	for i := range lits {
		lits[i] = sat.MkLit(s.NewVar(), false)
	}
	return lits
}

// polarize returns assumption literals fixing inputs to the bits of
// mask: bit i set means input i is true.
func polarize(inputs []sat.Lit, mask int) []sat.Lit {
	asm := make([]sat.Lit, len(inputs))
	for i, l := range inputs {
		if mask&(1<<i) != 0 {
			asm[i] = l
		} else {
			asm[i] = l.Not()
		}
	}
	return asm
}

// checkExact verifies the totalizer's one-sided counting semantics for
// every input assignment: with exactly c inputs true, AtLeast(k) is
// forced for every k ≤ c and remains free for every k > c.
func checkExact(t *testing.T, s *sat.Solver, tot *Totalizer, inputs []sat.Lit) {
	t.Helper()
	n := len(inputs)
	for mask := 0; mask < 1<<n; mask++ {
		c := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				c++
			}
		}
		asm := polarize(inputs, mask)
		for k := 1; k <= tot.Bound(); k++ {
			st := s.Solve(append(asm[:len(asm):len(asm)], tot.AtLeast(k).Not())...)
			if k <= c && st != sat.Unsat {
				t.Fatalf("mask %b (count %d): ¬AtLeast(%d) should be contradictory, got %v", mask, c, k, st)
			}
			if k > c && st != sat.Sat {
				t.Fatalf("mask %b (count %d): ¬AtLeast(%d) should be satisfiable, got %v", mask, c, k, st)
			}
		}
	}
}

// TestTotalizerExactCounting: full materialization counts exactly on
// every assignment, for every input size up to 6.
func TestTotalizerExactCounting(t *testing.T) {
	for n := 1; n <= 6; n++ {
		s := sat.New()
		inputs := newInputs(s, n)
		tot := New(s, inputs)
		tot.Extend(n)
		if tot.Bound() != n || tot.Len() != n {
			t.Fatalf("n=%d: Bound=%d Len=%d", n, tot.Bound(), tot.Len())
		}
		checkExact(t, s, tot, inputs)
	}
}

// TestTotalizerIncrementalEquivalence: extending one layer at a time
// (the core-guided usage pattern) yields the same counting semantics as
// materializing the full bound at once, including the collapsed clauses
// left behind by earlier bounds.
func TestTotalizerIncrementalEquivalence(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := sat.New()
		inputs := newInputs(s, n)
		tot := New(s, inputs)
		for b := 1; b <= n; b++ {
			tot.Extend(b)
			if tot.Bound() != b {
				t.Fatalf("n=%d: Bound=%d after Extend(%d)", n, tot.Bound(), b)
			}
			// The partial bound must already be exact for k ≤ b.
			for mask := 0; mask < 1<<n; mask++ {
				c := 0
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						c++
					}
				}
				asm := polarize(inputs, mask)
				st := s.Solve(append(asm[:len(asm):len(asm)], tot.AtLeast(b).Not())...)
				if b <= c && st != sat.Unsat {
					t.Fatalf("n=%d b=%d mask %b: should be Unsat, got %v", n, b, mask, st)
				}
				if b > c && st != sat.Sat {
					t.Fatalf("n=%d b=%d mask %b: should be Sat, got %v", n, b, mask, st)
				}
			}
		}
		checkExact(t, s, tot, inputs)
	}
}

// TestTotalizerJumpExtension: skipping bounds (Extend(1) then Extend(n))
// re-sharpens the pairs that collapsed onto the old bound.
func TestTotalizerJumpExtension(t *testing.T) {
	for n := 3; n <= 6; n++ {
		s := sat.New()
		inputs := newInputs(s, n)
		tot := New(s, inputs)
		tot.Extend(1)
		tot.Extend(n)
		checkExact(t, s, tot, inputs)
	}
}

// TestTotalizerAtMostAssumption: assuming ¬AtLeast(k+1) enforces "at
// most k true" against hard clauses that demand more.
func TestTotalizerAtMostAssumption(t *testing.T) {
	const n, k = 5, 2
	s := sat.New()
	inputs := newInputs(s, n)
	tot := New(s, inputs)
	tot.Extend(k + 1)
	atMostK := tot.AtLeast(k + 1).Not()
	// k+1 specific inputs forced true contradicts the bound...
	if st := s.Solve(atMostK, inputs[0], inputs[1], inputs[2]); st != sat.Unsat {
		t.Fatalf("forcing %d true under at-most-%d: got %v", k+1, k, st)
	}
	// ...while exactly k forced true is fine.
	if st := s.Solve(atMostK, inputs[0], inputs[1]); st != sat.Sat {
		t.Fatalf("forcing %d true under at-most-%d: got %v", k, k, st)
	}
	// And the bound composes with hard clauses: pairwise distinct ORs
	// that can be covered by 2 true inputs stay satisfiable.
	s.AddClause(inputs[0], inputs[1])
	s.AddClause(inputs[2], inputs[3])
	if st := s.Solve(atMostK); st != sat.Sat {
		t.Fatalf("two disjoint ORs under at-most-2: got %v", st)
	}
	// Three disjoint demands cannot be met by two true inputs.
	s.AddClause(inputs[4])
	if st := s.Solve(atMostK); st != sat.Unsat {
		t.Fatalf("three disjoint demands under at-most-2: got %v", st)
	}
}

// TestTotalizerDeterministicLayout: identical construction sequences
// allocate identical variable counts (the byte-identity prerequisite).
func TestTotalizerDeterministicLayout(t *testing.T) {
	build := func() (int, int) {
		s := sat.New()
		inputs := newInputs(s, 9)
		tot := New(s, inputs)
		tot.Extend(3)
		tot.Extend(7)
		return s.NumVars(), tot.Vars()
	}
	v1, tv1 := build()
	v2, tv2 := build()
	if v1 != v2 || tv1 != tv2 {
		t.Fatalf("layout not deterministic: (%d,%d) vs (%d,%d)", v1, tv1, v2, tv2)
	}
}

// TestTotalizerTelemetry: Vars() mirrors the solver's TotalizerVars
// counter, Extend past Len saturates, and re-extension is a no-op.
func TestTotalizerTelemetry(t *testing.T) {
	s := sat.New()
	inputs := newInputs(s, 4)
	tot := New(s, inputs)
	if tot.Vars() != 0 || s.TotalizerVars != 0 {
		t.Fatalf("layout alone created variables: %d/%d", tot.Vars(), s.TotalizerVars)
	}
	tot.Extend(2)
	if int64(tot.Vars()) != s.TotalizerVars {
		t.Fatalf("Vars()=%d but solver counter %d", tot.Vars(), s.TotalizerVars)
	}
	before := tot.Vars()
	tot.Extend(2) // no-op
	tot.Extend(1) // shrink is a no-op too
	if tot.Vars() != before {
		t.Fatalf("no-op Extend created variables")
	}
	tot.Extend(99) // saturates at Len()
	if tot.Bound() != 4 {
		t.Fatalf("Bound=%d after over-extension", tot.Bound())
	}
	if int64(tot.Vars()) != s.TotalizerVars {
		t.Fatalf("Vars()=%d but solver counter %d", tot.Vars(), s.TotalizerVars)
	}
}

// TestTotalizerPanics: the package fails loudly on misuse.
func TestTotalizerPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("empty inputs", func() { New(sat.New(), nil) })
	s := sat.New()
	tot := New(s, newInputs(s, 3))
	tot.Extend(2)
	mustPanic("AtLeast(0)", func() { tot.AtLeast(0) })
	mustPanic("AtLeast beyond bound", func() { tot.AtLeast(3) })
}

// TestTotalizerRandomized: random duplicate-free input sets over a
// random hard-clause background, extended in random increments, still
// count exactly (checked via the at-most assumption against a model's
// true count).
func TestTotalizerRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		s := sat.New()
		n := 3 + rng.Intn(6)
		inputs := newInputs(s, n)
		// Random background clauses over the inputs (keep satisfiable by
		// using only positive literals in at least one slot).
		for c := 0; c < n; c++ {
			a := inputs[rng.Intn(n)]
			b := inputs[rng.Intn(n)]
			if rng.Intn(2) == 0 {
				b = b.Not()
			}
			s.AddClause(a, b)
		}
		tot := New(s, inputs)
		for b := 1 + rng.Intn(n); ; b += 1 + rng.Intn(2) {
			if b > n {
				b = n
			}
			tot.Extend(b)
			if b == n {
				break
			}
		}
		// Find the minimum count of true inputs consistent with the
		// background by descending the bound, then verify tightness.
		lo := -1
		for k := tot.Bound(); k >= 1; k-- {
			if s.Solve(tot.AtLeast(k).Not()) == sat.Unsat {
				lo = k
				break
			}
		}
		if lo < 0 {
			// Even "at most 0" is satisfiable.
			if st := s.Solve(tot.AtLeast(1).Not()); st != sat.Sat {
				t.Fatalf("trial %d: inconsistent descent: %v", trial, st)
			}
			continue
		}
		// "at most lo-1" is Unsat, so "at most lo" must admit a model
		// with exactly lo true inputs.
		if lo+1 <= tot.Bound() {
			if st := s.Solve(tot.AtLeast(lo + 1).Not()); st != sat.Sat {
				t.Fatalf("trial %d: at-most-%d should be Sat, got %v", trial, lo, st)
			}
			c := 0
			for _, l := range inputs {
				if s.ValueLit(l) {
					c++
				}
			}
			if c > lo {
				t.Fatalf("trial %d: model has %d true inputs under at-most-%d", trial, c, lo)
			}
		}
	}
}
