// Package maxsat solves partial MaxSAT: given hard clauses (already in a
// sat.Solver) and a set of unit-weight soft literals, find a model of the
// hard clauses that violates as few softs as possible.
//
// Two exact algorithms are provided, mirroring the MaxSMT engines used by
// Z3 in the paper: linear SAT→UNSAT descent with a totalizer cardinality
// encoding, and Fu–Malik core-guided search. Both are exact; the choice
// is a performance ablation (see bench_test.go).
package maxsat

import (
	"context"

	"repro/internal/smt/sat"
)

// Algorithm selects the optimization strategy.
type Algorithm int

// Available algorithms.
const (
	// LinearDescent finds an initial model, then repeatedly tightens a
	// totalizer bound on the number of violated softs until UNSAT.
	LinearDescent Algorithm = iota
	// FuMalik relaxes one unsat core per iteration until SAT.
	FuMalik
)

func (a Algorithm) String() string {
	if a == FuMalik {
		return "fu-malik"
	}
	return "linear"
}

// Result reports the outcome of a MaxSAT solve.
type Result struct {
	Status sat.Status
	// Cost is the number of violated soft literals in the optimum (valid
	// when Status == Sat). The optimal model is left in the solver.
	Cost int
}

// Solve minimizes the number of violated softs. The solver must contain
// the hard clauses; on return with Status == Sat its model is an optimal
// assignment.
func Solve(s *sat.Solver, softs []sat.Lit, algo Algorithm) Result {
	if algo == FuMalik {
		return fuMalik(s, softs)
	}
	return linearDescent(s, softs)
}

// SolveWeighted minimizes the total weight of violated softs (weights
// must be non-negative; zero-weight softs are ignored). Weights are
// realized by duplication — exact and simple for the small integer
// weights CPR uses — so Cost is the violated weight sum.
func SolveWeighted(s *sat.Solver, softs []sat.Lit, weights []int, algo Algorithm) Result {
	if len(weights) != len(softs) {
		panic("maxsat: weights and softs length mismatch")
	}
	unit := true
	for _, w := range weights {
		if w < 0 {
			panic("maxsat: negative soft weight")
		}
		if w != 1 {
			unit = false
		}
	}
	if unit {
		// The common case — Table 2's softs are unit weight unless the
		// waypoint weight is raised — needs no duplication at all.
		return Solve(s, softs, algo)
	}
	expanded := make([]sat.Lit, 0, len(softs))
	for i, l := range softs {
		for w := 0; w < weights[i]; w++ {
			expanded = append(expanded, l)
		}
	}
	return Solve(s, expanded, algo)
}

// SolveCtx is Solve under a context: cancelling ctx interrupts the
// underlying SAT solver, and the optimization unwinds promptly with
// Status == Unknown. Callers distinguish cancellation from an exhausted
// conflict budget via ctx.Err().
func SolveCtx(ctx context.Context, s *sat.Solver, softs []sat.Lit, algo Algorithm) Result {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, s.Interrupt)
		defer stop()
	}
	return Solve(s, softs, algo)
}

// SolveWeightedCtx is SolveWeighted under a context; see SolveCtx.
func SolveWeightedCtx(ctx context.Context, s *sat.Solver, softs []sat.Lit, weights []int, algo Algorithm) Result {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, s.Interrupt)
		defer stop()
	}
	return SolveWeighted(s, softs, weights, algo)
}

// countViolated counts softs false under the solver's current model.
func countViolated(s *sat.Solver, softs []sat.Lit) int {
	n := 0
	for _, l := range softs {
		if !s.ValueLit(l) {
			n++
		}
	}
	return n
}

// Violated returns the indices of softs false under the current model.
func Violated(s *sat.Solver, softs []sat.Lit) []int {
	var out []int
	for i, l := range softs {
		if !s.ValueLit(l) {
			out = append(out, i)
		}
	}
	return out
}

func linearDescent(s *sat.Solver, softs []sat.Lit) Result {
	if st := warmStart(s, softs); st != sat.Sat {
		return Result{Status: st}
	}
	ub := countViolated(s, softs)
	if ub == 0 {
		return Result{Status: sat.Sat, Cost: 0}
	}
	// Violation indicators: v_i true when soft_i is violated.
	inputs := make([]sat.Lit, len(softs))
	for i, l := range softs {
		inputs[i] = l.Not()
	}
	// The totalizer is truncated at ub+1 outputs: the search only ever
	// bounds below the initial model's violation count, and truncation
	// keeps the encoding O(n·ub) instead of O(n²) clauses. A grossly bad
	// initial model (huge ub on huge soft sets) would still exhaust
	// memory, so give up with Unknown instead — callers report DNF.
	const maxTotalizerClauses = 40_000_000
	if int64(len(inputs))*int64(ub+1) > maxTotalizerClauses {
		return Result{Status: sat.Unknown}
	}
	outs := buildTotalizer(s, inputs, ub+1)
	// Warm start each bound-tightening iteration from the previous model:
	// the next optimum usually differs in a handful of assignments, so
	// seeding phases turns each re-solve into a short repair of the last
	// model instead of a cold search.
	s.SeedPhasesFromModel()
	// outs[k] ("at least k+1 violations") false ⇒ at most k violations.
	for ub > 0 {
		target := ub - 1
		st := s.Solve(outs[target].Not())
		if st == sat.Unsat {
			// Lock in the optimum bound for subsequent incremental use and
			// restore the optimal model by re-solving at the optimum. The
			// phases still hold the ub-violation model, steering the
			// re-solve straight back to it.
			if ub < len(outs) {
				s.AddClause(outs[ub].Not())
			}
			st2 := s.Solve()
			if st2 != sat.Sat {
				return Result{Status: st2}
			}
			return Result{Status: sat.Sat, Cost: ub}
		}
		if st != sat.Sat {
			return Result{Status: st}
		}
		ub = countViolated(s, softs)
		s.SeedPhasesFromModel()
	}
	return Result{Status: sat.Sat, Cost: 0}
}

// warmStart finds an initial model that satisfies as many softs as a
// quick core-guided pass can manage: it assumes every soft and drops the
// softs of each unsat core until the rest are satisfiable. The resulting
// model violates at most #cores softs, keeping the descent's truncated
// totalizer small.
func warmStart(s *sat.Solver, softs []sat.Lit) sat.Status {
	active := make(map[sat.Lit]bool, len(softs))
	for _, l := range softs {
		active[l] = true
	}
	for {
		asm := make([]sat.Lit, 0, len(active))
		for _, l := range softs {
			if active[l] {
				asm = append(asm, l)
			}
		}
		st := s.Solve(asm...)
		switch st {
		case sat.Sat:
			return sat.Sat
		case sat.Unsat:
			core := s.UnsatCore()
			dropped := false
			for _, l := range core {
				if active[l] {
					delete(active, l)
					dropped = true
				}
			}
			if !dropped {
				if len(asm) == 0 {
					return sat.Unsat // hard clauses alone are unsat
				}
				// Defensive: a core with no active soft should not
				// happen; fall back to an unguided solve.
				return s.Solve()
			}
		default:
			// Budget exhausted during warm start: try one unguided solve.
			return s.Solve()
		}
	}
}

// buildTotalizer adds a totalizer over inputs, truncated to cap outputs,
// and returns output literals outs[0..m-1] (m = min(len(inputs), cap)):
// outs[k] is implied whenever at least k+1 inputs are true, with counts
// beyond cap collapsing onto the last output. Only the input→output
// direction is encoded, which is sufficient for upper-bounding, and
// truncation keeps the clause count O(n·cap).
func buildTotalizer(s *sat.Solver, inputs []sat.Lit, cap int) []sat.Lit {
	if cap > len(inputs) {
		cap = len(inputs)
	}
	if cap < 1 {
		cap = 1
	}
	if len(inputs) == 1 {
		return inputs
	}
	mid := len(inputs) / 2
	left := buildTotalizer(s, inputs[:mid], cap)
	right := buildTotalizer(s, inputs[mid:], cap)
	n := len(left) + len(right)
	if n > cap {
		n = cap
	}
	outs := make([]sat.Lit, n)
	for i := range outs {
		outs[i] = sat.MkLit(s.NewVar(), false)
	}
	// left[i-1] alone implies outs[min(i,n)-1]; same for right.
	for i := 1; i <= len(left); i++ {
		m := i
		if m > n {
			m = n
		}
		s.AddClause(left[i-1].Not(), outs[m-1])
	}
	for j := 1; j <= len(right); j++ {
		m := j
		if m > n {
			m = n
		}
		s.AddClause(right[j-1].Not(), outs[m-1])
	}
	// left ≥ i and right ≥ j imply outs ≥ min(i+j, n).
	for i := 1; i <= len(left); i++ {
		for j := 1; j <= len(right); j++ {
			m := i + j
			if m > n {
				m = n
			}
			s.AddClause(left[i-1].Not(), right[j-1].Not(), outs[m-1])
		}
	}
	return outs
}

func fuMalik(s *sat.Solver, softs []sat.Lit) Result {
	// Working clause per soft: (soft_i ∨ relaxers_i ∨ ¬sel_i), assumed via
	// sel_i. Each discovered core retires the selectors of its softs and
	// re-issues their clauses with one extra relaxer.
	type work struct {
		soft     sat.Lit
		relaxers []sat.Lit
		sel      sat.Lit
	}
	works := make([]*work, len(softs))
	bySel := make(map[sat.Lit]int)
	addWork := func(i int) {
		w := works[i]
		w.sel = sat.MkLit(s.NewVar(), false)
		// Phase hints: selectors are assumed true every round, and most
		// relaxers stay off in the optimum — seed both so each round's
		// search resumes near the previous one.
		s.SetPhase(w.sel.Var(), true)
		clause := append([]sat.Lit{w.soft}, w.relaxers...)
		clause = append(clause, w.sel.Not())
		s.AddClause(clause...)
		bySel[w.sel] = i
	}
	for i, l := range softs {
		works[i] = &work{soft: l}
		addWork(i)
	}
	cost := 0
	for {
		asm := make([]sat.Lit, len(works))
		for i, w := range works {
			asm[i] = w.sel
		}
		st := s.Solve(asm...)
		if st == sat.Sat {
			return Result{Status: sat.Sat, Cost: cost}
		}
		if st != sat.Unsat {
			return Result{Status: st}
		}
		core := s.UnsatCore()
		coreIdx := make([]int, 0, len(core))
		for _, l := range core {
			if i, ok := bySel[l]; ok {
				coreIdx = append(coreIdx, i)
			}
		}
		if len(coreIdx) == 0 {
			// The hard clauses alone are unsatisfiable.
			return Result{Status: sat.Unsat}
		}
		cost++
		var blocks []sat.Lit
		for _, i := range coreIdx {
			w := works[i]
			delete(bySel, w.sel)
			s.AddClause(w.sel.Not()) // retire old working clause
			b := sat.MkLit(s.NewVar(), false)
			s.SetPhase(b.Var(), false)
			w.relaxers = append(w.relaxers, b)
			blocks = append(blocks, b)
			addWork(i)
		}
		// At most one relaxer of this round may fire.
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				s.AddClause(blocks[i].Not(), blocks[j].Not())
			}
		}
	}
}
