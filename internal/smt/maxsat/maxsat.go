// Package maxsat solves partial MaxSAT: given hard clauses (already in a
// sat.Solver) and a set of soft literals, find a model of the hard
// clauses that minimizes the violated softs' weight.
//
// Three exact algorithms are provided, mirroring the MaxSMT engines used
// by Z3 in the paper: linear SAT→UNSAT descent with a totalizer
// cardinality encoding, Fu–Malik core-guided search, and stratified OLL
// over incremental totalizers (the default — see oll.go). All are exact;
// the choice is a performance ablation (see bench_test.go).
package maxsat

import (
	"context"
	"fmt"

	"repro/internal/smt/card"
	"repro/internal/smt/sat"
)

// Algorithm selects the optimization strategy.
type Algorithm int

// Available algorithms.
const (
	// LinearDescent finds an initial model, then repeatedly tightens a
	// totalizer bound on the number of violated softs until UNSAT.
	LinearDescent Algorithm = iota
	// FuMalik relaxes one unsat core per iteration until SAT.
	FuMalik
	// OLL is the core-guided descent of Andres et al.: each unsat core
	// is relaxed through an incremental totalizer whose bound output
	// becomes a new assumption, with weight stratification and clause
	// hardening on the weighted path. Exact, like the others, but no
	// encoding is ever built over the full soft set.
	OLL
)

func (a Algorithm) String() string {
	switch a {
	case FuMalik:
		return "fu-malik"
	case OLL:
		return "oll"
	}
	return "linear"
}

// ParseAlgorithm resolves the string spelling shared by cpr's
// -algorithm flag and cprd's JSON "algorithm" field, rejecting unknown
// values with a labeled error instead of silently falling back. The
// empty string selects the default engine (OLL).
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "", "oll":
		return OLL, nil
	case "linear":
		return LinearDescent, nil
	case "fu-malik":
		return FuMalik, nil
	}
	return OLL, fmt.Errorf("unknown algorithm %q (want oll, linear, or fu-malik)", name)
}

// Result reports the outcome of a MaxSAT solve.
type Result struct {
	Status sat.Status
	// Cost is the number of violated soft literals in the optimum (valid
	// when Status == Sat). The optimal model is left in the solver.
	Cost int
}

// Solve minimizes the number of violated softs. The solver must contain
// the hard clauses; on return with Status == Sat its model is an optimal
// assignment. Unknown Algorithm values panic — string-level front ends
// reject them earlier with ParseAlgorithm's labeled error.
func Solve(s *sat.Solver, softs []sat.Lit, algo Algorithm) Result {
	switch algo {
	case LinearDescent:
		return linearDescent(s, softs)
	case FuMalik:
		return fuMalik(s, softs)
	case OLL:
		return oll(s, softs, nil)
	}
	panic(fmt.Sprintf("maxsat: unknown algorithm %d", int(algo)))
}

// SolveWeighted minimizes the total weight of violated softs (weights
// must be non-negative; zero-weight softs are ignored). The OLL engine
// handles weights natively through stratification and residual-weight
// accounting; the legacy engines realize them by duplication — exact
// and simple for the small integer weights CPR uses. Either way Cost is
// the violated weight sum.
func SolveWeighted(s *sat.Solver, softs []sat.Lit, weights []int, algo Algorithm) Result {
	if len(weights) != len(softs) {
		panic("maxsat: weights and softs length mismatch")
	}
	unit := true
	for _, w := range weights {
		if w < 0 {
			panic("maxsat: negative soft weight")
		}
		if w != 1 {
			unit = false
		}
	}
	if unit {
		// The common case — Table 2's softs are unit weight unless the
		// waypoint weight is raised — needs no duplication or
		// stratification at all; it rides the plain engine dispatch.
		return Solve(s, softs, algo)
	}
	if algo == OLL {
		return oll(s, softs, weights)
	}
	expanded := make([]sat.Lit, 0, len(softs))
	for i, l := range softs {
		for w := 0; w < weights[i]; w++ {
			expanded = append(expanded, l)
		}
	}
	return Solve(s, expanded, algo)
}

// SolveCtx is Solve under a context: cancelling ctx interrupts the
// underlying SAT solver, and the optimization unwinds promptly with
// Status == Unknown. Callers distinguish cancellation from an exhausted
// conflict budget via ctx.Err().
func SolveCtx(ctx context.Context, s *sat.Solver, softs []sat.Lit, algo Algorithm) Result {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, s.Interrupt)
		defer stop()
	}
	return Solve(s, softs, algo)
}

// SolveWeightedCtx is SolveWeighted under a context; see SolveCtx.
func SolveWeightedCtx(ctx context.Context, s *sat.Solver, softs []sat.Lit, weights []int, algo Algorithm) Result {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, s.Interrupt)
		defer stop()
	}
	return SolveWeighted(s, softs, weights, algo)
}

// countViolated counts softs false under the solver's current model.
func countViolated(s *sat.Solver, softs []sat.Lit) int {
	n := 0
	for _, l := range softs {
		if !s.ValueLit(l) {
			n++
		}
	}
	return n
}

// Violated returns the indices of softs false under the current model.
func Violated(s *sat.Solver, softs []sat.Lit) []int {
	var out []int
	for i, l := range softs {
		if !s.ValueLit(l) {
			out = append(out, i)
		}
	}
	return out
}

func linearDescent(s *sat.Solver, softs []sat.Lit) Result {
	if st := warmStart(s, softs); st != sat.Sat {
		return Result{Status: st}
	}
	ub := countViolated(s, softs)
	if ub == 0 {
		return Result{Status: sat.Sat, Cost: 0}
	}
	// Violation indicators: v_i true when soft_i is violated.
	inputs := make([]sat.Lit, len(softs))
	for i, l := range softs {
		inputs[i] = l.Not()
	}
	// The totalizer is materialized only up to ub+1 counts: the search
	// only ever bounds below the initial model's violation count, and
	// truncation keeps the encoding O(n·ub) instead of O(n²) clauses. A
	// grossly bad initial model (huge ub on huge soft sets) would still
	// exhaust memory, so give up with Unknown instead — callers report
	// DNF.
	const maxTotalizerClauses = 40_000_000
	if int64(len(inputs))*int64(ub+1) > maxTotalizerClauses {
		return Result{Status: sat.Unknown}
	}
	tot := card.New(s, inputs)
	tot.Extend(ub + 1)
	// Warm start each bound-tightening iteration from the previous model:
	// the next optimum usually differs in a handful of assignments, so
	// seeding phases turns each re-solve into a short repair of the last
	// model instead of a cold search.
	s.SeedPhasesFromModel()
	// AtLeast(k) ("at least k violations") false ⇒ at most k-1.
	for ub > 0 {
		st := s.Solve(tot.AtLeast(ub).Not())
		if st == sat.Unsat {
			// Lock in the optimum bound for subsequent incremental use and
			// restore the optimal model by re-solving at the optimum. The
			// phases still hold the ub-violation model, steering the
			// re-solve straight back to it.
			if ub+1 <= tot.Bound() {
				s.AddClause(tot.AtLeast(ub + 1).Not())
			}
			st2 := s.Solve()
			if st2 != sat.Sat {
				return Result{Status: st2}
			}
			return Result{Status: sat.Sat, Cost: ub}
		}
		if st != sat.Sat {
			return Result{Status: st}
		}
		ub = countViolated(s, softs)
		s.SeedPhasesFromModel()
	}
	return Result{Status: sat.Sat, Cost: 0}
}

// warmStart finds an initial model that satisfies as many softs as a
// quick core-guided pass can manage: it assumes every soft and drops the
// softs of each unsat core until the rest are satisfiable. The resulting
// model violates at most #cores softs, keeping the descent's truncated
// totalizer small.
func warmStart(s *sat.Solver, softs []sat.Lit) sat.Status {
	active := make(map[sat.Lit]bool, len(softs))
	for _, l := range softs {
		active[l] = true
	}
	for {
		asm := make([]sat.Lit, 0, len(active))
		for _, l := range softs {
			if active[l] {
				asm = append(asm, l)
			}
		}
		st := s.Solve(asm...)
		switch st {
		case sat.Sat:
			return sat.Sat
		case sat.Unsat:
			core := s.UnsatCore()
			dropped := false
			for _, l := range core {
				if active[l] {
					delete(active, l)
					dropped = true
				}
			}
			if !dropped {
				if len(asm) == 0 {
					return sat.Unsat // hard clauses alone are unsat
				}
				// Defensive: a core with no active soft should not
				// happen; fall back to an unguided solve.
				return s.Solve()
			}
		default:
			// Budget exhausted during warm start: try one unguided solve.
			return s.Solve()
		}
	}
}

func fuMalik(s *sat.Solver, softs []sat.Lit) Result {
	// Working clause per soft: (soft_i ∨ relaxers_i ∨ ¬sel_i), assumed via
	// sel_i. Each discovered core retires the selectors of its softs and
	// re-issues their clauses with one extra relaxer.
	type work struct {
		soft     sat.Lit
		relaxers []sat.Lit
		sel      sat.Lit
	}
	works := make([]*work, len(softs))
	bySel := make(map[sat.Lit]int)
	addWork := func(i int) {
		w := works[i]
		w.sel = sat.MkLit(s.NewVar(), false)
		// Phase hints: selectors are assumed true every round, and most
		// relaxers stay off in the optimum — seed both so each round's
		// search resumes near the previous one.
		s.SetPhase(w.sel.Var(), true)
		clause := append([]sat.Lit{w.soft}, w.relaxers...)
		clause = append(clause, w.sel.Not())
		s.AddClause(clause...)
		bySel[w.sel] = i
	}
	for i, l := range softs {
		works[i] = &work{soft: l}
		addWork(i)
	}
	cost := 0
	for {
		asm := make([]sat.Lit, len(works))
		for i, w := range works {
			asm[i] = w.sel
		}
		st := s.Solve(asm...)
		if st == sat.Sat {
			return Result{Status: sat.Sat, Cost: cost}
		}
		if st != sat.Unsat {
			return Result{Status: st}
		}
		core := s.UnsatCore()
		coreIdx := make([]int, 0, len(core))
		for _, l := range core {
			if i, ok := bySel[l]; ok {
				coreIdx = append(coreIdx, i)
			}
		}
		if len(coreIdx) == 0 {
			// The hard clauses alone are unsatisfiable.
			return Result{Status: sat.Unsat}
		}
		cost++
		var blocks []sat.Lit
		for _, i := range coreIdx {
			w := works[i]
			delete(bySel, w.sel)
			s.AddClause(w.sel.Not()) // retire old working clause
			b := sat.MkLit(s.NewVar(), false)
			s.SetPhase(b.Var(), false)
			w.relaxers = append(w.relaxers, b)
			blocks = append(blocks, b)
			addWork(i)
		}
		// At most one relaxer of this round may fire.
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				s.AddClause(blocks[i].Not(), blocks[j].Not())
			}
		}
	}
}
