package maxsat

import (
	"context"
	"testing"
	"time"

	"repro/internal/smt/sat"
)

// TestSolveCtxCancelled cancels a MaxSAT solve over a hard hard-clause
// set and checks the driver unwinds with Unknown instead of finishing.
func TestSolveCtxCancelled(t *testing.T) {
	s := sat.New()
	// PHP(9, 8) as hard clauses: unsatisfiable and slow, so the driver's
	// first SAT call is where cancellation lands.
	const holes = 8
	vars := make([][]sat.Var, holes+1)
	for p := range vars {
		vars[p] = make([]sat.Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= holes; p++ {
		lits := make([]sat.Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = sat.MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 <= holes; p1++ {
			for p2 := p1 + 1; p2 <= holes; p2++ {
				s.AddClause(sat.MkLit(vars[p1][h], true), sat.MkLit(vars[p2][h], true))
			}
		}
	}
	softs := []sat.Lit{sat.MkLit(vars[0][0], false)}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	res := SolveCtx(ctx, s, softs, LinearDescent)
	if res.Status != sat.Unknown {
		t.Fatalf("status = %v, want unknown", res.Status)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("cancelled solve took %v", d)
	}
	if !s.Interrupted() {
		t.Error("solver not marked interrupted")
	}
}

// TestSolveCtxBackground checks the context path leaves normal solves
// untouched.
func TestSolveCtxBackground(t *testing.T) {
	s := sat.New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(sat.MkLit(a, false), sat.MkLit(b, false))
	softs := []sat.Lit{sat.MkLit(a, true), sat.MkLit(b, true)}
	res := SolveWeightedCtx(context.Background(), s, softs, []int{1, 1}, LinearDescent)
	if res.Status != sat.Sat || res.Cost != 1 {
		t.Fatalf("res = %+v, want sat cost 1", res)
	}
}
