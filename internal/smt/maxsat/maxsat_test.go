package maxsat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/smt/sat"
)

func mk(n int) (*sat.Solver, []sat.Var) {
	s := sat.New()
	vars := make([]sat.Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	return s, vars
}

func TestAllSoftsSatisfiable(t *testing.T) {
	for _, algo := range []Algorithm{LinearDescent, FuMalik, OLL} {
		s, vars := mk(3)
		s.AddClause(sat.MkLit(vars[0], false), sat.MkLit(vars[1], false))
		softs := []sat.Lit{sat.MkLit(vars[0], false), sat.MkLit(vars[2], false)}
		res := Solve(s, softs, algo)
		if res.Status != sat.Sat || res.Cost != 0 {
			t.Errorf("%v: got %+v, want cost 0", algo, res)
		}
		if v := countViolated(s, softs); v != 0 {
			t.Errorf("%v: model violates %d softs", algo, v)
		}
	}
}

func TestConflictingSofts(t *testing.T) {
	for _, algo := range []Algorithm{LinearDescent, FuMalik, OLL} {
		s, vars := mk(1)
		softs := []sat.Lit{sat.MkLit(vars[0], false), sat.MkLit(vars[0], true)}
		res := Solve(s, softs, algo)
		if res.Status != sat.Sat || res.Cost != 1 {
			t.Errorf("%v: got %+v, want cost 1", algo, res)
		}
	}
}

func TestHardUnsat(t *testing.T) {
	for _, algo := range []Algorithm{LinearDescent, FuMalik, OLL} {
		s, vars := mk(1)
		s.AddClause(sat.MkLit(vars[0], false))
		s.AddClause(sat.MkLit(vars[0], true))
		res := Solve(s, []sat.Lit{sat.MkLit(vars[0], false)}, algo)
		if res.Status != sat.Unsat {
			t.Errorf("%v: got %+v, want unsat", algo, res)
		}
	}
}

func TestHardConstraintsForceViolations(t *testing.T) {
	for _, algo := range []Algorithm{LinearDescent, FuMalik, OLL} {
		s, vars := mk(4)
		// Hard: exactly-one of x0..x3 true (at least one + pairwise AMO).
		s.AddClause(sat.MkLit(vars[0], false), sat.MkLit(vars[1], false), sat.MkLit(vars[2], false), sat.MkLit(vars[3], false))
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				s.AddClause(sat.MkLit(vars[i], true), sat.MkLit(vars[j], true))
			}
		}
		// Softs: all four true → optimum violates 3.
		var softs []sat.Lit
		for i := 0; i < 4; i++ {
			softs = append(softs, sat.MkLit(vars[i], false))
		}
		res := Solve(s, softs, algo)
		if res.Status != sat.Sat || res.Cost != 3 {
			t.Errorf("%v: got %+v, want cost 3", algo, res)
		}
		if v := countViolated(s, softs); v != 3 {
			t.Errorf("%v: model violates %d, want 3", algo, v)
		}
	}
}

func TestViolatedIndices(t *testing.T) {
	s, vars := mk(2)
	s.AddClause(sat.MkLit(vars[0], false)) // x0 true
	s.AddClause(sat.MkLit(vars[1], true))  // x1 false
	softs := []sat.Lit{sat.MkLit(vars[0], false), sat.MkLit(vars[1], false)}
	res := Solve(s, softs, LinearDescent)
	if res.Cost != 1 {
		t.Fatalf("cost = %d, want 1", res.Cost)
	}
	idx := Violated(s, softs)
	if len(idx) != 1 || idx[0] != 1 {
		t.Errorf("Violated = %v, want [1]", idx)
	}
}

// bruteOptimum computes the true optimum by enumeration.
func bruteOptimum(nvars int, hard [][]sat.Lit, softs []sat.Lit) (int, bool) {
	best := -1
	for mask := 0; mask < 1<<nvars; mask++ {
		val := func(l sat.Lit) bool {
			bit := mask&(1<<uint(l.Var())) != 0
			if l.Neg() {
				return !bit
			}
			return bit
		}
		ok := true
		for _, c := range hard {
			cs := false
			for _, l := range c {
				if val(l) {
					cs = true
					break
				}
			}
			if !cs {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		violated := 0
		for _, l := range softs {
			if !val(l) {
				violated++
			}
		}
		if best == -1 || violated < best {
			best = violated
		}
	}
	return best, best != -1
}

// Property: both algorithms find the brute-force optimum on random
// instances, and they agree with each other.
func TestDifferentialOptimum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nvars := 3 + r.Intn(5)
		nhard := r.Intn(10)
		nsoft := 1 + r.Intn(6)
		var hard [][]sat.Lit
		for i := 0; i < nhard; i++ {
			var c []sat.Lit
			width := 1 + r.Intn(3)
			for j := 0; j < width; j++ {
				c = append(c, sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0))
			}
			hard = append(hard, c)
		}
		var softs []sat.Lit
		for i := 0; i < nsoft; i++ {
			softs = append(softs, sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0))
		}
		want, feasible := bruteOptimum(nvars, hard, softs)

		for _, algo := range []Algorithm{LinearDescent, FuMalik, OLL} {
			s, _ := mk(nvars)
			ok := true
			for _, c := range hard {
				if !s.AddClause(c...) {
					ok = false
				}
			}
			var res Result
			if !ok {
				res = Result{Status: sat.Unsat}
			} else {
				res = Solve(s, softs, algo)
			}
			if feasible {
				if res.Status != sat.Sat || res.Cost != want {
					t.Logf("seed %d algo %v: got %+v, want cost %d", seed, algo, res, want)
					return false
				}
				if ok && countViolated(s, softs) != want {
					t.Logf("seed %d algo %v: model cost mismatch", seed, algo)
					return false
				}
			} else if res.Status != sat.Unsat {
				t.Logf("seed %d algo %v: got %+v, want unsat", seed, algo, res)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLargerInstanceBothAlgorithms(t *testing.T) {
	// 20 softs forcing a chain: x_i soft-true, hard x_i → ¬x_{i+1} for
	// even i: optimum violates 10.
	for _, algo := range []Algorithm{LinearDescent, FuMalik, OLL} {
		s, vars := mk(20)
		for i := 0; i < 20; i += 2 {
			s.AddClause(sat.MkLit(vars[i], true), sat.MkLit(vars[i+1], true))
		}
		var softs []sat.Lit
		for i := 0; i < 20; i++ {
			softs = append(softs, sat.MkLit(vars[i], false))
		}
		res := Solve(s, softs, algo)
		if res.Status != sat.Sat || res.Cost != 10 {
			t.Errorf("%v: got %+v, want cost 10", algo, res)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if LinearDescent.String() != "linear" || FuMalik.String() != "fu-malik" {
		t.Error("Algorithm.String wrong")
	}
}
