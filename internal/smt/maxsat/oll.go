package maxsat

import (
	"sort"

	"repro/internal/smt/card"
	"repro/internal/smt/sat"
)

// oll is the core-guided OLL descent (Andres et al. 2012, as engineered
// in RC2/MSU3 solvers): assume every soft, extract an UNSAT core, pay
// the core's minimum weight into the lower bound, and relax the core
// through an incremental totalizer whose "count ≤ b" output becomes a
// new assumption — extended in place, one layer at a time, as later
// cores push the bound up. The loop ends at the first Sat verdict with
// nothing pending, whose model costs exactly the accumulated lower
// bound (see DESIGN.md for the invariant argument).
//
// Compared to linearDescent, no totalizer is ever built over the full
// soft set — only over cores, which CPR's repair instances keep small —
// and every SAT call reuses the one live solver, its learned clauses,
// and its phase state.
//
// The weighted path (weights != nil) adds stratification — softs enter
// the descent in decreasing-weight strata, so early cores are found
// among the expensive softs first — and weight-aware clause hardening:
// once a model gives an upper bound UB, any soft whose residual weight
// exceeds UB−LB cannot be violated in an optimum and is promoted to a
// hard unit clause. Core expansion is WCE-style delayed: cores found
// under one assumption set are stashed and their totalizers built only
// when the current assumptions are exhausted, so one solver pass can
// collect several disjoint cores before any encoding work happens.
//
// Everything is deterministic: items live in a slice in creation order,
// assumption lists are rebuilt in that order, cores come from the
// deterministic solver, and totalizer materialization is an in-order
// tree walk.
func oll(s *sat.Solver, softs []sat.Lit, weights []int) Result {
	// ollItem is one assumption of the descent: an original soft
	// literal, or a totalizer bound output ¬AtLeast(bound+1).
	type ollItem struct {
		lit    sat.Lit
		weight int             // residual weight still unpaid
		tot    *card.Totalizer // nil for original softs
		bound  int             // totalizer items: enforced "count ≤ bound"
		unit   int             // totalizer items: full per-term weight
		active bool
	}

	// Aggregate duplicate soft literals (weighted callers may repeat a
	// literal); summing their weights preserves the objective and keeps
	// the assumption set duplicate-free.
	var items []*ollItem
	byLit := make(map[sat.Lit]*ollItem, len(softs))
	for i, l := range softs {
		w := 1
		if weights != nil {
			w = weights[i]
		}
		if w == 0 {
			continue
		}
		if it := byLit[l]; it != nil {
			it.weight += w
			continue
		}
		it := &ollItem{lit: l, weight: w}
		items = append(items, it)
		byLit[l] = it
	}

	// Stratification thresholds: distinct weights, descending. The
	// common unit-weight case is a single stratum and skips the whole
	// mechanism.
	seen := map[int]bool{}
	var strata []int
	for _, it := range items {
		if !seen[it.weight] {
			seen[it.weight] = true
			strata = append(strata, it.weight)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(strata)))
	nextStratum := 0
	activate := func() {
		floor := strata[nextStratum]
		for _, it := range items {
			if it.tot == nil && !it.active && it.weight >= floor {
				it.active = true
			}
		}
		nextStratum++
	}
	if len(strata) == 0 {
		// Every soft had weight zero; any model of the hards is optimal.
		st := s.Solve()
		if st != sat.Sat {
			return Result{Status: st}
		}
		return Result{Status: sat.Sat, Cost: 0}
	}
	activate()

	lb := 0
	bestUB := -1
	// pending holds cores whose totalizer expansion is delayed
	// (WCE-style): the violation indicators and the weight paid.
	type pendingCore struct {
		inds []sat.Lit
		w    int
	}
	var pending []pendingCore
	var asm []sat.Lit

	// relax turns one stashed core into an incremental totalizer with
	// an initial "count ≤ 1" assumption.
	relax := func(pc pendingCore) {
		tot := card.New(s, pc.inds)
		tot.Extend(2)
		it := &ollItem{lit: tot.AtLeast(2).Not(), weight: pc.w, tot: tot, bound: 1, unit: pc.w, active: true}
		items = append(items, it)
		byLit[it.lit] = it
		// Bias the search toward "count stays at the bound": relaxed
		// cores rarely grow past it in the optimum.
		s.SetPhase(it.lit.Var(), !it.lit.Neg())
	}

	// cost evaluates the model's violated weight over the original
	// (pre-aggregation) soft multiset.
	cost := func() int {
		c := 0
		for i, l := range softs {
			if !s.ValueLit(l) {
				if weights != nil {
					c += weights[i]
				} else {
					c++
				}
			}
		}
		return c
	}

	for {
		asm = asm[:0]
		for _, it := range items {
			if it.active {
				asm = append(asm, it.lit)
			}
		}
		switch st := s.Solve(asm...); st {
		case sat.Sat:
			if ub := cost(); bestUB < 0 || ub < bestUB {
				bestUB = ub
			}
			// Keep the descent warm: the next model usually differs from
			// this one in a handful of assignments.
			s.SeedPhasesFromModel()
			if len(pending) > 0 {
				// Delayed expansion: encode every core this pass found,
				// then continue the descent under the new bounds.
				for _, pc := range pending {
					relax(pc)
				}
				pending = pending[:0]
				continue
			}
			if nextStratum < len(strata) {
				// Weight-aware hardening before widening the stratum: a
				// soft (or totalizer bound) whose residual weight exceeds
				// the optimality gap can never be violated in an optimum.
				gap := bestUB - lb
				for _, it := range items {
					if it.weight > gap && (it.active || it.tot == nil) {
						if it.active {
							it.active = false
						}
						// Future-stratum softs are hardened before they
						// ever become assumptions.
						it.weight = -1 // never activated again
						s.AddClause(it.lit)
						s.HardenedSofts++
					}
				}
				activate()
				continue
			}
			return Result{Status: sat.Sat, Cost: cost()}
		case sat.Unsat:
			core := s.UnsatCore()
			if len(core) == 0 {
				return Result{Status: sat.Unsat}
			}
			if len(core) <= maxMinimizeCore && s.NumVars() <= minimizeVarLimit {
				core = s.MinimizeCore(core, minimizeProbeBudget)
				if len(core) == 0 {
					return Result{Status: sat.Unsat}
				}
			}
			wmin := 0
			coreItems := make([]*ollItem, 0, len(core))
			for _, l := range core {
				it := byLit[l]
				if it == nil || !it.active {
					// A core literal that is not an active assumption can
					// only mean solver-state corruption; fail loudly
					// rather than mis-count the optimum.
					panic("maxsat: unsat core literal is not an active assumption")
				}
				coreItems = append(coreItems, it)
				if wmin == 0 || it.weight < wmin {
					wmin = it.weight
				}
			}
			lb += wmin
			inds := make([]sat.Lit, len(coreItems))
			for i, it := range coreItems {
				inds[i] = it.lit.Not()
				it.weight -= wmin
				if it.weight > 0 {
					continue // stays active at reduced weight
				}
				it.active = false
				if it.tot != nil && it.bound+1 < it.tot.Len() {
					// The bound's term is fully paid: re-arm the same
					// totalizer one layer up, at the full per-term weight.
					it.tot.Extend(it.bound + 2)
					next := &ollItem{lit: it.tot.AtLeast(it.bound + 2).Not(), weight: it.unit,
						tot: it.tot, bound: it.bound + 1, unit: it.unit, active: true}
					items = append(items, next)
					byLit[next.lit] = next
					s.SetPhase(next.lit.Var(), !next.lit.Neg())
				}
			}
			if len(inds) == 1 {
				// Singleton core: the indicator is entailed by the hard
				// clauses — record it as a unit instead of relaxing.
				s.AddClause(inds[0])
				continue
			}
			pending = append(pending, pendingCore{inds: inds, w: wmin})
		default:
			return Result{Status: st}
		}
	}
}

// maxMinimizeCore bounds the core size worth probe-minimizing: big
// cores are almost always already structural, and probing them costs
// one assumption solve per literal.
const maxMinimizeCore = 12

// minimizeVarLimit bounds the instance size worth probe-minimizing.
// Each probe restarts search from level zero, so its cost is dominated
// by re-propagating the whole clause database — on repair-scale
// instances (tens of thousands of variables) that overhead dwarfs what
// the smaller core saves, while on small instances probing is nearly
// free and regularly shrinks cores to singletons.
const minimizeVarLimit = 4096

// minimizeProbeBudget is the per-probe conflict budget during core
// minimization.
const minimizeProbeBudget = 500
