package maxsat

import (
	"math/rand"
	"testing"

	"repro/internal/smt/sat"
)

// exactlyOne adds hard clauses forcing exactly one of vars true.
func exactlyOne(s *sat.Solver, vars []sat.Var) {
	all := make([]sat.Lit, len(vars))
	for i, v := range vars {
		all[i] = sat.MkLit(v, false)
	}
	s.AddClause(all...)
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			s.AddClause(sat.MkLit(vars[i], true), sat.MkLit(vars[j], true))
		}
	}
}

// TestOLLTelemetry: a descent that must extract cores reports them
// through the solver's counters — the numbers `cpr -stats` and cprd's
// /statsz surface.
func TestOLLTelemetry(t *testing.T) {
	s, vars := mk(4)
	exactlyOne(s, vars)
	var softs []sat.Lit
	for _, v := range vars {
		softs = append(softs, sat.MkLit(v, false))
	}
	res := Solve(s, softs, OLL)
	if res.Status != sat.Sat || res.Cost != 3 {
		t.Fatalf("got %+v, want cost 3", res)
	}
	if s.AssumpSolves == 0 {
		t.Errorf("no assumption solves recorded")
	}
	if s.CoresExtracted == 0 {
		t.Errorf("no cores recorded")
	}
	if s.TotalizerVars == 0 {
		t.Errorf("no totalizer variables recorded (cores must have been relaxed)")
	}
}

// TestOLLWeightedStratificationHardens: with one soft far heavier than
// the optimality gap, the stratified descent promotes it to a hard
// clause instead of carrying it as an assumption.
func TestOLLWeightedStratificationHardens(t *testing.T) {
	s, vars := mk(3)
	// x0 conflicts with x1; x2 free. Weights: x0=100, x1=1, x2=1.
	s.AddClause(sat.MkLit(vars[0], true), sat.MkLit(vars[1], true))
	softs := []sat.Lit{sat.MkLit(vars[0], false), sat.MkLit(vars[1], false), sat.MkLit(vars[2], false)}
	res := SolveWeighted(s, softs, []int{100, 1, 1}, OLL)
	if res.Status != sat.Sat || res.Cost != 1 {
		t.Fatalf("got %+v, want cost 1 (violate x1)", res)
	}
	if !s.ValueLit(softs[0]) {
		t.Errorf("optimum must keep the weight-100 soft")
	}
	if s.HardenedSofts == 0 {
		t.Errorf("stratification boundary should have hardened the heavy soft")
	}
}

// TestOLLWeightedResidualSplit: a core whose members have unequal
// weights pays only the minimum and keeps the heavier member active at
// its residual weight — the optimum still distinguishes them.
func TestOLLWeightedResidualSplit(t *testing.T) {
	s, vars := mk(2)
	// x0 and x1 conflict; weights 3 vs 5 — optimum violates x0 (cost 3).
	s.AddClause(sat.MkLit(vars[0], true), sat.MkLit(vars[1], true))
	softs := []sat.Lit{sat.MkLit(vars[0], false), sat.MkLit(vars[1], false)}
	res := SolveWeighted(s, softs, []int{3, 5}, OLL)
	if res.Status != sat.Sat || res.Cost != 3 {
		t.Fatalf("got %+v, want cost 3", res)
	}
	if !s.ValueLit(softs[1]) {
		t.Errorf("optimum must satisfy the weight-5 soft")
	}
}

// TestOLLDuplicateSofts: repeated soft literals aggregate their weight
// instead of corrupting the assumption set.
func TestOLLDuplicateSofts(t *testing.T) {
	s, vars := mk(2)
	s.AddClause(sat.MkLit(vars[0], true), sat.MkLit(vars[1], true))
	// x0 listed twice at weight 2 each (total 4) vs x1 at 5: violate x0.
	softs := []sat.Lit{sat.MkLit(vars[0], false), sat.MkLit(vars[0], false), sat.MkLit(vars[1], false)}
	res := SolveWeighted(s, softs, []int{2, 2, 5}, OLL)
	if res.Status != sat.Sat || res.Cost != 4 {
		t.Fatalf("got %+v, want cost 4", res)
	}
	if !s.ValueLit(sat.MkLit(vars[1], false)) {
		t.Errorf("optimum must satisfy the weight-5 soft")
	}
}

// TestOLLZeroWeights: zero-weight softs are free to violate; an
// all-zero instance degenerates to a plain solve at cost 0.
func TestOLLZeroWeights(t *testing.T) {
	s, vars := mk(2)
	s.AddClause(sat.MkLit(vars[0], true)) // force x0 false
	softs := []sat.Lit{sat.MkLit(vars[0], false), sat.MkLit(vars[1], false)}
	res := SolveWeighted(s, softs, []int{0, 1}, OLL)
	if res.Status != sat.Sat || res.Cost != 0 {
		t.Fatalf("got %+v, want cost 0", res)
	}
	s2, vars2 := mk(1)
	s2.AddClause(sat.MkLit(vars2[0], true))
	res2 := SolveWeighted(s2, []sat.Lit{sat.MkLit(vars2[0], false)}, []int{0}, OLL)
	if res2.Status != sat.Sat || res2.Cost != 0 {
		t.Fatalf("all-zero weights: got %+v, want cost 0", res2)
	}
}

// TestOLLCascadedCores: chained exactly-one groups force the totalizer
// bounds themselves into later cores, exercising the re-arm path
// (Extend to bound+1, new assumption at the creation-time unit weight).
func TestOLLCascadedCores(t *testing.T) {
	s, vars := mk(9)
	// Three disjoint exactly-one triples; all nine softs true wants
	// 3 violations per group... optimum = 2 per group = 6.
	for g := 0; g < 3; g++ {
		exactlyOne(s, vars[g*3:g*3+3])
	}
	var softs []sat.Lit
	for _, v := range vars {
		softs = append(softs, sat.MkLit(v, false))
	}
	res := Solve(s, softs, OLL)
	if res.Status != sat.Sat || res.Cost != 6 {
		t.Fatalf("got %+v, want cost 6", res)
	}
}

// TestOLLMatchesLinearOnRandomInstances: OLL and linear descent agree
// on the optimum cost across random hard/soft mixes (the engine-level
// version of the crosscheck oracle).
func TestOLLMatchesLinearOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(8)
		clauses := make([][]int, 2+rng.Intn(2*n))
		for i := range clauses {
			w := 1 + rng.Intn(3)
			cl := make([]int, w)
			for j := range cl {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			clauses[i] = cl
		}
		nsofts := 1 + rng.Intn(n)
		costs := map[Algorithm]int{}
		stats := map[Algorithm]sat.Status{}
		for _, algo := range []Algorithm{LinearDescent, OLL} {
			s, vars := mk(n)
			for _, cl := range clauses {
				lits := make([]sat.Lit, len(cl))
				for j, v := range cl {
					if v > 0 {
						lits[j] = sat.MkLit(vars[v-1], false)
					} else {
						lits[j] = sat.MkLit(vars[-v-1], true)
					}
				}
				s.AddClause(lits...)
			}
			softs := make([]sat.Lit, nsofts)
			for j := range softs {
				softs[j] = sat.MkLit(vars[j], rng.Intn(2) == 0)
			}
			// Same soft polarity for both engines: re-seed per algorithm.
			rng2 := rand.New(rand.NewSource(int64(trial)))
			for j := range softs {
				softs[j] = sat.MkLit(vars[j], rng2.Intn(2) == 0)
			}
			res := Solve(s, softs, algo)
			costs[algo] = res.Cost
			stats[algo] = res.Status
		}
		if stats[LinearDescent] != stats[OLL] {
			t.Fatalf("trial %d: status mismatch %v vs %v", trial, stats[LinearDescent], stats[OLL])
		}
		if stats[LinearDescent] == sat.Sat && costs[LinearDescent] != costs[OLL] {
			t.Fatalf("trial %d: cost mismatch linear=%d oll=%d", trial, costs[LinearDescent], costs[OLL])
		}
	}
}

// TestSolverReuseAfterCoreExtraction: after an OLL descent (cores,
// totalizers, minimization probes), the same solver answers plain and
// assumption queries correctly — assumptions are fully cleared and the
// learned state is consistent. Runs under -race in the chaos campaign.
func TestSolverReuseAfterCoreExtraction(t *testing.T) {
	s, vars := mk(6)
	exactlyOne(s, vars[:4])
	var softs []sat.Lit
	for _, v := range vars[:4] {
		softs = append(softs, sat.MkLit(v, false))
	}
	res := Solve(s, softs, OLL)
	if res.Status != sat.Sat || res.Cost != 3 {
		t.Fatalf("descent: got %+v, want cost 3", res)
	}
	// Plain solve still works and leaves no stale assumptions behind:
	// x4/x5 are unconstrained, so both polarities must be reachable.
	if st := s.Solve(sat.MkLit(vars[4], false)); st != sat.Sat {
		t.Fatalf("reuse with assumption: %v", st)
	}
	if !s.ValueLit(sat.MkLit(vars[4], false)) {
		t.Fatalf("assumption not honored after descent")
	}
	if st := s.Solve(sat.MkLit(vars[4], true)); st != sat.Sat {
		t.Fatalf("reuse with flipped assumption: %v", st)
	}
	if s.ValueLit(sat.MkLit(vars[4], false)) {
		t.Fatalf("stale assumption leaked into later solve")
	}
	// The optimum is locked semantically, not by leftover assumptions:
	// a plain solve may violate more softs than the optimum, but the
	// hard exactly-one structure still holds.
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("plain reuse: %v", st)
	}
	trues := 0
	for _, v := range vars[:4] {
		if s.Value(v) {
			trues++
		}
	}
	if trues != 1 {
		t.Fatalf("hard exactly-one broken after descent: %d true", trues)
	}
	// And a second full descent on the same solver re-finds the optimum.
	res2 := Solve(s, softs, OLL)
	if res2.Status != sat.Sat || res2.Cost != 3 {
		t.Fatalf("second descent: got %+v, want cost 3", res2)
	}
}

// TestParseAlgorithm: the string surface accepts the three engines and
// rejects everything else with a labeled error.
func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in   string
		want Algorithm
		ok   bool
	}{
		{"", OLL, true},
		{"oll", OLL, true},
		{"linear", LinearDescent, true},
		{"fu-malik", FuMalik, true},
		{"fumalik", OLL, false},
		{"OLL", OLL, false},
		{"rc2", OLL, false},
	}
	for _, c := range cases {
		got, err := ParseAlgorithm(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAlgorithm(%q): expected error", c.in)
		}
	}
	for _, a := range []Algorithm{LinearDescent, FuMalik, OLL} {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("round-trip %v: got %v, %v", a, back, err)
		}
	}
}
