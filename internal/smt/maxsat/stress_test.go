package maxsat

import (
	"math/rand"
	"testing"

	"repro/internal/smt/sat"
)

// TestStressLargerDifferential compares both algorithms against brute
// force on larger random instances that exercise learning, restarts, and
// incremental reuse.
func TestStressLargerDifferential(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		nvars := 10 + r.Intn(8)
		nhard := 20 + r.Intn(60)
		nsoft := 5 + r.Intn(15)
		var hard [][]sat.Lit
		for i := 0; i < nhard; i++ {
			var c []sat.Lit
			width := 2 + r.Intn(2)
			for j := 0; j < width; j++ {
				c = append(c, sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0))
			}
			hard = append(hard, c)
		}
		var softs []sat.Lit
		for i := 0; i < nsoft; i++ {
			softs = append(softs, sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0))
		}
		want, feasible := bruteOptimum(nvars, hard, softs)
		for _, algo := range []Algorithm{LinearDescent, FuMalik, OLL} {
			s := sat.New()
			for i := 0; i < nvars; i++ {
				s.NewVar()
			}
			ok := true
			for _, c := range hard {
				if !s.AddClause(c...) {
					ok = false
				}
			}
			if !ok {
				if feasible {
					t.Fatalf("seed %d: AddClause claims unsat but brute says feasible", seed)
				}
				continue
			}
			res := Solve(s, softs, algo)
			if feasible {
				if res.Status != sat.Sat || res.Cost != want {
					t.Fatalf("seed %d algo %v: got %+v, want cost %d", seed, algo, res, want)
				}
			} else if res.Status != sat.Unsat {
				t.Fatalf("seed %d algo %v: got %+v, want unsat", seed, algo, res)
			}
		}
	}
}
