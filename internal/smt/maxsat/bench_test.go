package maxsat

import (
	"math/rand"
	"testing"

	"repro/internal/smt/sat"
)

// benchInstance builds a structured MaxSAT instance shaped like CPR's
// repair encodings: groups of exactly-one constraints (route choices)
// whose softs prefer the blocked member, so the optimum must extract
// one core per group. nGroups×groupSize softs, optimum = nGroups×(groupSize-1).
func benchInstance(s *sat.Solver, nGroups, groupSize int, seed int64) []sat.Lit {
	rng := rand.New(rand.NewSource(seed))
	var softs []sat.Lit
	for g := 0; g < nGroups; g++ {
		vars := make([]sat.Var, groupSize)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		all := make([]sat.Lit, groupSize)
		for i, v := range vars {
			all[i] = sat.MkLit(v, false)
		}
		s.AddClause(all...)
		for i := 0; i < groupSize; i++ {
			for j := i + 1; j < groupSize; j++ {
				s.AddClause(all[i].Not(), all[j].Not())
			}
		}
		for _, l := range all {
			softs = append(softs, l)
		}
		// A little cross-group noise so cores are not perfectly local.
		if g > 0 && rng.Intn(2) == 0 {
			prev := sat.MkLit(vars[0], false)
			s.AddClause(prev, sat.MkLit(sat.Var(int(vars[0])-groupSize), true))
		}
	}
	return softs
}

func benchSolve(b *testing.B, algo Algorithm, nGroups, groupSize int) {
	want := nGroups * (groupSize - 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sat.New()
		softs := benchInstance(s, nGroups, groupSize, 3)
		res := Solve(s, softs, algo)
		if res.Status != sat.Sat || res.Cost != want {
			b.Fatalf("%v: got %+v, want cost %d", algo, res, want)
		}
	}
}

func BenchmarkMaxSATOLL(b *testing.B)    { benchSolve(b, OLL, 24, 5) }
func BenchmarkMaxSATLinear(b *testing.B) { benchSolve(b, LinearDescent, 24, 5) }

// The weighted pair exercises stratification (OLL) vs duplication
// (linear): weights 1..4 assigned round-robin.
func benchSolveWeighted(b *testing.B, algo Algorithm) {
	b.ReportAllocs()
	b.ResetTimer()
	var ref int
	for i := 0; i < b.N; i++ {
		s := sat.New()
		softs := benchInstance(s, 16, 4, 9)
		weights := make([]int, len(softs))
		for j := range weights {
			weights[j] = 1 + j%4
		}
		res := SolveWeighted(s, softs, weights, algo)
		if res.Status != sat.Sat {
			b.Fatalf("%v: got %+v", algo, res)
		}
		if ref == 0 {
			ref = res.Cost
		} else if res.Cost != ref {
			b.Fatalf("%v: cost drifted %d -> %d", algo, ref, res.Cost)
		}
	}
}

func BenchmarkMaxSATWeightedOLL(b *testing.B)    { benchSolveWeighted(b, OLL) }
func BenchmarkMaxSATWeightedLinear(b *testing.B) { benchSolveWeighted(b, LinearDescent) }
