package maxsat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/smt/sat"
)

func TestWeightedBasic(t *testing.T) {
	for _, algo := range []Algorithm{LinearDescent, FuMalik, OLL} {
		// x vs !x, weighted 3 vs 1: keep x (violating the weight-1 soft).
		s, vars := mk(1)
		softs := []sat.Lit{sat.MkLit(vars[0], false), sat.MkLit(vars[0], true)}
		res := SolveWeighted(s, softs, []int{3, 1}, algo)
		if res.Status != sat.Sat || res.Cost != 1 {
			t.Errorf("%v: got %+v, want cost 1", algo, res)
		}
		if !s.Value(vars[0]) {
			t.Errorf("%v: the weight-3 preference should win", algo)
		}
	}
}

func TestWeightedZeroWeightIgnored(t *testing.T) {
	s, vars := mk(1)
	s.AddClause(sat.MkLit(vars[0], true)) // force !x
	softs := []sat.Lit{sat.MkLit(vars[0], false)}
	res := SolveWeighted(s, softs, []int{0}, LinearDescent)
	if res.Status != sat.Sat || res.Cost != 0 {
		t.Errorf("zero-weight soft should cost nothing: %+v", res)
	}
}

func TestWeightedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	s, vars := mk(1)
	SolveWeighted(s, []sat.Lit{sat.MkLit(vars[0], false)}, nil, LinearDescent)
}

// bruteWeightedOptimum enumerates assignments for the true weighted
// optimum.
func bruteWeightedOptimum(nvars int, hard [][]sat.Lit, softs []sat.Lit, weights []int) (int, bool) {
	best := -1
	for mask := 0; mask < 1<<nvars; mask++ {
		val := func(l sat.Lit) bool {
			bit := mask&(1<<uint(l.Var())) != 0
			if l.Neg() {
				return !bit
			}
			return bit
		}
		ok := true
		for _, c := range hard {
			cs := false
			for _, l := range c {
				if val(l) {
					cs = true
					break
				}
			}
			if !cs {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		violated := 0
		for i, l := range softs {
			if !val(l) {
				violated += weights[i]
			}
		}
		if best == -1 || violated < best {
			best = violated
		}
	}
	return best, best != -1
}

// Property: both algorithms find the brute-force weighted optimum.
func TestWeightedDifferential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nvars := 3 + r.Intn(5)
		nhard := r.Intn(8)
		nsoft := 1 + r.Intn(5)
		var hard [][]sat.Lit
		for i := 0; i < nhard; i++ {
			var c []sat.Lit
			for j := 0; j < 2+r.Intn(2); j++ {
				c = append(c, sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0))
			}
			hard = append(hard, c)
		}
		var softs []sat.Lit
		var weights []int
		for i := 0; i < nsoft; i++ {
			softs = append(softs, sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0))
			weights = append(weights, r.Intn(4))
		}
		want, feasible := bruteWeightedOptimum(nvars, hard, softs, weights)
		for _, algo := range []Algorithm{LinearDescent, FuMalik, OLL} {
			s, _ := mk(nvars)
			ok := true
			for _, c := range hard {
				if !s.AddClause(c...) {
					ok = false
				}
			}
			var res Result
			if !ok {
				res = Result{Status: sat.Unsat}
			} else {
				res = SolveWeighted(s, softs, weights, algo)
			}
			if feasible {
				if res.Status != sat.Sat || res.Cost != want {
					t.Logf("seed %d algo %v: got %+v, want %d", seed, algo, res, want)
					return false
				}
			} else if res.Status != sat.Unsat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
