package maxsat

import (
	"math/rand"
	"testing"

	"repro/internal/smt/card"
	"repro/internal/smt/sat"
)

// seed49 rebuilds the failing instance from TestStressLargerDifferential.
func seed49() (nvars int, hard [][]sat.Lit, softs []sat.Lit) {
	r := rand.New(rand.NewSource(49))
	nvars = 10 + r.Intn(8)
	nhard := 20 + r.Intn(60)
	nsoft := 5 + r.Intn(15)
	for i := 0; i < nhard; i++ {
		var c []sat.Lit
		width := 2 + r.Intn(2)
		for j := 0; j < width; j++ {
			c = append(c, sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0))
		}
		hard = append(hard, c)
	}
	for i := 0; i < nsoft; i++ {
		softs = append(softs, sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0))
	}
	return
}

// TestSeed49BoundViaFreshSolver: encode "violations <= 3" with the
// totalizer in a fresh solver using a unit clause instead of an
// assumption. If this is Sat while the incremental assumption path said
// Unsat, the assumption machinery is broken; if this is Unsat, the
// totalizer (or the brute-force reference) is broken.
func TestSeed49BoundViaFreshSolver(t *testing.T) {
	nvars, hard, softs := seed49()
	want, feasible := bruteOptimum(nvars, hard, softs)
	t.Logf("brute optimum: %d (feasible=%v)", want, feasible)

	for bound := want; bound <= want+2; bound++ {
		s := sat.New()
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		for _, c := range hard {
			s.AddClause(c...)
		}
		inputs := make([]sat.Lit, len(softs))
		for i, l := range softs {
			inputs[i] = l.Not()
		}
		tot := card.New(s, inputs)
		tot.Extend(len(inputs))
		s.AddClause(tot.AtLeast(bound + 1).Not()) // ≤ bound violations, as a hard unit
		st := s.Solve()
		t.Logf("bound %d via unit clause: %v", bound, st)
		if st != sat.Sat {
			t.Errorf("bound %d should be sat (brute optimum is %d)", bound, want)
		} else if v := countViolated(s, softs); v > bound {
			t.Errorf("bound %d: model violates %d softs", bound, v)
		}
	}

	// Same bound via assumption on a fresh solver.
	s := sat.New()
	for i := 0; i < nvars; i++ {
		s.NewVar()
	}
	for _, c := range hard {
		s.AddClause(c...)
	}
	inputs := make([]sat.Lit, len(softs))
	for i, l := range softs {
		inputs[i] = l.Not()
	}
	tot := card.New(s, inputs)
	tot.Extend(len(inputs))
	st := s.Solve(tot.AtLeast(want + 1).Not())
	t.Logf("bound %d via assumption (fresh): %v", want, st)
	if st != sat.Sat {
		t.Errorf("assumption-based bound %d should be sat", want)
	}

	// Now replay the exact incremental sequence linearDescent performs.
	s2 := sat.New()
	for i := 0; i < nvars; i++ {
		s2.NewVar()
	}
	for _, c := range hard {
		s2.AddClause(c...)
	}
	if st := s2.Solve(); st != sat.Sat {
		t.Fatalf("initial solve: %v", st)
	}
	ub := countViolated(s2, softs)
	t.Logf("initial model violates %d", ub)
	tot2 := card.New(s2, inputs)
	tot2.Extend(len(inputs))
	for ub > want {
		st := s2.Solve(tot2.AtLeast(ub).Not())
		t.Logf("incremental bound %d: %v", ub-1, st)
		if st != sat.Sat {
			t.Fatalf("incremental bound %d should be sat (optimum %d)", ub-1, want)
		}
		newUB := countViolated(s2, softs)
		if newUB > ub-1 {
			t.Fatalf("model after bound %d violates %d", ub-1, newUB)
		}
		ub = newUB
	}
}
