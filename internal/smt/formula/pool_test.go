package formula

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/smt/sat"
)

func TestPoolHashConsingIdentity(t *testing.T) {
	p := NewPool()
	a, b := p.Var("a"), p.Var("b")
	if p.Var("a") != a {
		t.Error("Pool.Var not interned: second lookup returned a new node")
	}
	if And(a, b) != And(a, b) {
		t.Error("structurally identical And nodes not hash-consed")
	}
	if Or(a, Not(b)) != Or(a, Not(b)) {
		t.Error("structurally identical Or/Not nodes not hash-consed")
	}
	if Implies(a, b) != Implies(a, b) {
		t.Error("structurally identical Implies nodes not hash-consed")
	}
	if And(a, b) == And(b, a) {
		t.Error("distinct kid orders must be distinct nodes (And does not sort)")
	}
	// Constants fold away before interning, so mixing them in keeps the
	// result pooled and identical.
	if And(a, True, b) != And(a, b) {
		t.Error("constant folding should reach the same pooled node")
	}
}

func TestPoolFreshDistinct(t *testing.T) {
	p := NewPool()
	f1, f2 := p.Fresh(), p.Fresh()
	if f1 == f2 {
		t.Fatal("Fresh returned the same node twice")
	}
	s := sat.New()
	b := NewPooledBuilder(s, p)
	b.Assert(f1)
	b.Assert(Not(f2))
	if s.Solve() != sat.Sat {
		t.Fatal("distinct fresh vars must be independently assignable")
	}
	if !b.Value(f1) || b.Value(f2) {
		t.Error("fresh var model values wrong")
	}
}

// Property: a pooled formula is pointer-identical when rebuilt from the
// same rand sequence, and logically equivalent to its legacy (unpooled)
// twin — Xor(legacy, pooled) is UNSAT in one builder, since named vars
// unify across pooled and unpooled nodes.
func TestPooledDifferentialTseitin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nvars := 2 + r.Intn(4)
		depth := 1 + r.Intn(3)
		legacy := randomFormulaWith(rand.New(rand.NewSource(seed+1)), depth, nvars, Var)

		p := NewPool()
		pooled := randomFormulaWith(rand.New(rand.NewSource(seed+1)), depth, nvars, p.Var)
		again := randomFormulaWith(rand.New(rand.NewSource(seed+1)), depth, nvars, p.Var)
		if pooled != again {
			t.Logf("seed %d: replaying the rand sequence produced a different pooled node", seed)
			return false
		}

		s := sat.New()
		b := NewPooledBuilder(s, p)
		b.Assert(Xor(legacy, pooled))
		if st := s.Solve(); st != sat.Unsat {
			t.Logf("seed %d: legacy %s != pooled %s (status %v)", seed, legacy, pooled, st)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: satisfiability through a pooled builder matches brute force,
// mirroring TestDifferentialTseitin for the dense-cache code path.
func TestPooledTseitinMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nvars := 2 + r.Intn(4)
		p := NewPool()
		form := randomFormulaWith(r, 3, nvars, p.Var)

		varSet := map[string]bool{}
		collectVars(form, varSet)
		var names []string
		for n := range varSet {
			names = append(names, n)
		}
		bruteSat := false
		for mask := 0; mask < 1<<len(names); mask++ {
			assign := map[string]bool{}
			for i, n := range names {
				assign[n] = mask&(1<<i) != 0
			}
			if evalBrute(form, assign) {
				bruteSat = true
				break
			}
		}

		s := sat.New()
		b := NewPooledBuilder(s, p)
		b.Assert(form)
		gotSat := s.Solve() == sat.Sat
		if gotSat != bruteSat {
			t.Logf("seed %d: formula %s: sat=%v brute=%v", seed, form, gotSat, bruteSat)
			return false
		}
		if gotSat && !b.Value(form) {
			t.Logf("seed %d: model does not satisfy %s", seed, form)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
