package formula

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/smt/sat"
)

func TestConstantFolding(t *testing.T) {
	a := Var("a")
	if And() != True {
		t.Error("empty And should be True")
	}
	if Or() != False {
		t.Error("empty Or should be False")
	}
	if And(a, False) != False {
		t.Error("And with False should fold")
	}
	if Or(a, True) != True {
		t.Error("Or with True should fold")
	}
	if And(True, a) != a {
		t.Error("And(True, a) should be a")
	}
	if Or(False, a) != a {
		t.Error("Or(False, a) should be a")
	}
	if Not(True) != False || Not(False) != True {
		t.Error("Not on constants should fold")
	}
	if Not(Not(a)) != a {
		t.Error("double negation should fold")
	}
}

func TestFlattening(t *testing.T) {
	a, b, c := Var("a"), Var("b"), Var("c")
	f := And(And(a, b), c)
	if len(f.kids) != 3 {
		t.Errorf("nested And not flattened: %s", f)
	}
	g := Or(Or(a, b), c)
	if len(g.kids) != 3 {
		t.Errorf("nested Or not flattened: %s", g)
	}
}

func TestString(t *testing.T) {
	f := And(Var("a"), Not(Var("b")))
	if f.String() != "(a & !b)" {
		t.Errorf("String = %q", f.String())
	}
}

func solveF(t *testing.T, f *F) (sat.Status, *Builder) {
	t.Helper()
	s := sat.New()
	b := NewBuilder(s)
	b.Assert(f)
	return s.Solve(), b
}

func TestAssertSat(t *testing.T) {
	a, b := Var("a"), Var("b")
	st, bd := solveF(t, And(a, Not(b)))
	if st != sat.Sat {
		t.Fatal("want sat")
	}
	if !bd.Value(a) || bd.Value(b) {
		t.Error("model wrong")
	}
}

func TestAssertUnsat(t *testing.T) {
	a := Var("a")
	st, _ := solveF(t, And(a, Not(a)))
	if st != sat.Unsat {
		t.Fatal("want unsat")
	}
}

func TestImpliesIffXorIte(t *testing.T) {
	a, b, c := Var("a"), Var("b"), Var("c")
	// a ∧ (a→b) forces b.
	st, bd := solveF(t, And(a, Implies(a, b)))
	if st != sat.Sat || !bd.Value(b) {
		t.Error("Implies chain failed")
	}
	// Iff: a↔b with ¬a forces ¬b.
	st, bd = solveF(t, And(Not(a), Iff(a, b)))
	if st != sat.Sat || bd.Value(b) {
		t.Error("Iff failed")
	}
	// Xor: a⊕b with a forces ¬b.
	st, bd = solveF(t, And(a, Xor(a, b)))
	if st != sat.Sat || bd.Value(b) {
		t.Error("Xor failed")
	}
	// Ite: cond ? b : c with cond and ¬b is unsat... cond=a.
	st, _ = solveF(t, And(a, Not(b), Ite(a, b, c)))
	if st != sat.Unsat {
		t.Error("Ite then-branch not enforced")
	}
}

func TestAtMostOne(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	vars := []*F{Var("x"), Var("y"), Var("z")}
	b.AtMostOne(vars...)
	b.Assert(Var("x"))
	b.Assert(Var("y"))
	if s.Solve() != sat.Unsat {
		t.Error("two of an at-most-one set should be unsat")
	}
	s2 := sat.New()
	b2 := NewBuilder(s2)
	b2.AtMostOne(vars...)
	b2.Assert(Var("x"))
	if s2.Solve() != sat.Sat {
		t.Error("one of an at-most-one set should be sat")
	}
}

func TestVarLitStable(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	l1 := b.VarLit("a")
	l2 := b.VarLit("a")
	if l1 != l2 {
		t.Error("VarLit not stable for same name")
	}
	if !b.HasVar("a") || b.HasVar("zz") {
		t.Error("HasVar wrong")
	}
	names := b.VarNames()
	if len(names) != 1 || names[0] != "a" {
		t.Errorf("VarNames = %v", names)
	}
}

func TestTseitinCacheReuse(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	f := And(Var("a"), Var("b"))
	l1 := b.Lit(f)
	l2 := b.Lit(f)
	if l1 != l2 {
		t.Error("Tseitin literal should be cached per node")
	}
}

// randomFormula builds a random formula over nvars variables.
func randomFormula(r *rand.Rand, depth, nvars int) *F {
	return randomFormulaWith(r, depth, nvars, Var)
}

// randomFormulaWith is randomFormula with the variable constructor
// abstracted, so the pooled differential tests can replay the identical
// rand sequence through Pool.Var.
func randomFormulaWith(r *rand.Rand, depth, nvars int, mkVar func(string) *F) *F {
	if depth == 0 || r.Intn(3) == 0 {
		v := mkVar(string(rune('a' + r.Intn(nvars))))
		if r.Intn(2) == 0 {
			return Not(v)
		}
		return v
	}
	n := 2 + r.Intn(2)
	kids := make([]*F, n)
	for i := range kids {
		kids[i] = randomFormulaWith(r, depth-1, nvars, mkVar)
	}
	switch r.Intn(4) {
	case 0:
		return And(kids...)
	case 1:
		return Or(kids...)
	case 2:
		return Not(And(kids...))
	default:
		return Implies(kids[0], kids[1%len(kids)])
	}
}

// evalBrute evaluates f under an assignment.
func evalBrute(f *F, assign map[string]bool) bool {
	switch f.op {
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpVar:
		return assign[f.name]
	case OpNot:
		return !evalBrute(f.kids[0], assign)
	case OpAnd:
		for _, k := range f.kids {
			if !evalBrute(k, assign) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range f.kids {
			if evalBrute(k, assign) {
				return true
			}
		}
		return false
	}
	return false
}

// collectVars gathers variable names.
func collectVars(f *F, out map[string]bool) {
	if f.op == OpVar {
		out[f.name] = true
	}
	for _, k := range f.kids {
		collectVars(k, out)
	}
}

// Property: Tseitin-encoded satisfiability equals brute-force
// satisfiability, and returned models evaluate to true.
func TestDifferentialTseitin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nvars := 2 + r.Intn(4)
		form := randomFormula(r, 3, nvars)

		// Brute force over all assignments.
		varSet := map[string]bool{}
		collectVars(form, varSet)
		var names []string
		for n := range varSet {
			names = append(names, n)
		}
		bruteSat := false
		for mask := 0; mask < 1<<len(names); mask++ {
			assign := map[string]bool{}
			for i, n := range names {
				assign[n] = mask&(1<<i) != 0
			}
			if evalBrute(form, assign) {
				bruteSat = true
				break
			}
		}

		s := sat.New()
		b := NewBuilder(s)
		b.Assert(form)
		gotSat := s.Solve() == sat.Sat
		if gotSat != bruteSat {
			t.Logf("seed %d: formula %s: sat=%v brute=%v", seed, form, gotSat, bruteSat)
			return false
		}
		if gotSat {
			// Model must satisfy the formula.
			if !b.Value(form) {
				t.Logf("seed %d: model does not satisfy %s", seed, form)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPreferSeedsModel(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	// a and b unconstrained; prefer a=true, b=false.
	b.Prefer("a", true)
	b.Prefer("b", false)
	b.Assert(Or(Var("a"), Var("b"), Var("c")))
	if s.Solve() != sat.Sat {
		t.Fatal("want sat")
	}
	if !b.Value(Var("a")) {
		t.Error("preferred-true variable should come out true")
	}
	if b.Value(Var("b")) {
		t.Error("preferred-false variable should come out false")
	}
}

func TestAssertFalseIsUnsat(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	b.Assert(False)
	if s.Solve() != sat.Unsat {
		t.Error("asserting False should be unsat")
	}
}

func TestConstantsAsSubformulas(t *testing.T) {
	s := sat.New()
	b := NewBuilder(s)
	// Lit on constants.
	tl := b.Lit(True)
	fl := b.Lit(False)
	if s.Solve() != sat.Sat {
		t.Fatal("want sat")
	}
	if !s.ValueLit(tl) || s.ValueLit(fl) {
		t.Error("constant literals wrong")
	}
}
