// Package formula provides a boolean formula AST with light
// simplification and a Tseitin transformation onto the CDCL SAT solver.
// It is the constraint-building layer used by CPR's MaxSMT encoding
// (Figure 5 of the paper) and by the bitvector arithmetic of package bv.
package formula

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/smt/sat"
)

// Op is a formula node kind.
type Op int

// Node kinds.
const (
	OpTrue Op = iota
	OpFalse
	OpVar
	OpNot
	OpAnd
	OpOr
)

// F is an immutable boolean formula node. Construct via the package
// functions; the zero value is not meaningful. Nodes created through a
// Pool additionally carry an integer ID for dense Builder lookups.
type F struct {
	op   Op
	name string
	kids []*F
	pool *Pool
	id   int32
}

// True and False are the boolean constants.
var (
	True  = &F{op: OpTrue}
	False = &F{op: OpFalse}
)

// Var returns a named variable node. Two Var calls with the same name
// denote the same SAT variable within one Builder.
func Var(name string) *F { return &F{op: OpVar, name: name} }

// Pool hash-conses formula nodes into integer-ID, slice-backed storage.
// Structurally identical composites built from pooled operands return
// the same *F, so node identity is pointer identity and a Builder can
// cache Tseitin literals in a dense slice instead of a map. A Pool is
// not safe for concurrent use; encoders own one pool each.
type Pool struct {
	nodes   []*F
	byName  map[string]*F
	buckets map[uint64][]*F
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{byName: make(map[string]*F), buckets: make(map[uint64][]*F)}
}

// Size returns the number of interned nodes.
func (p *Pool) Size() int { return len(p.nodes) }

// ApproxBytes estimates the heap retained by the pool: every interned
// node plus the hash-cons index structures. Used for /statsz memory
// accounting of encodings persisted across incremental-repair calls.
func (p *Pool) ApproxBytes() int64 {
	const nodeSize = 64 // *F header + op/name/kids/pool/id fields
	n := int64(cap(p.nodes)) * 8
	for _, f := range p.nodes {
		n += nodeSize + int64(len(f.name)) + int64(cap(f.kids))*8
	}
	// map overhead: roughly one bucket slot (key + pointer) per entry.
	n += int64(len(p.byName)) * 40
	for _, bucket := range p.buckets {
		n += 16 + int64(cap(bucket))*8
	}
	return n
}

// Var returns the pool's variable node for name, interning on first use.
func (p *Pool) Var(name string) *F {
	if f, ok := p.byName[name]; ok {
		return f
	}
	f := p.newNode(OpVar, name, nil)
	p.byName[name] = f
	return f
}

// Fresh returns a new anonymous variable node, distinct from every other
// node in the pool. Fresh variables skip string naming entirely — the
// encoder's precomputed ID tables make names unnecessary on the hot path.
func (p *Pool) Fresh() *F { return p.newNode(OpVar, "", nil) }

func (p *Pool) newNode(op Op, name string, kids []*F) *F {
	f := &F{op: op, name: name, kids: kids, pool: p, id: int32(len(p.nodes))}
	p.nodes = append(p.nodes, f)
	return f
}

// intern returns the pooled node for (op, kids), hash-consing on the
// kids' IDs. All kids must already belong to this pool.
func (p *Pool) intern(op Op, kids []*F) *F {
	h := uint64(14695981039346656037)
	h = (h ^ uint64(op)) * 1099511628211
	for _, k := range kids {
		h = (h ^ uint64(uint32(k.id))) * 1099511628211
	}
	for _, f := range p.buckets[h] {
		if f.op == op && len(f.kids) == len(kids) {
			same := true
			for i, k := range f.kids {
				if k != kids[i] {
					same = false
					break
				}
			}
			if same {
				return f
			}
		}
	}
	f := p.newNode(op, "", kids)
	p.buckets[h] = append(p.buckets[h], f)
	return f
}

// poolOf returns the common pool of kids, or nil if any kid is unpooled
// or the kids span distinct pools.
func poolOf(kids []*F) *Pool {
	var p *Pool
	for _, k := range kids {
		if k.pool == nil {
			return nil
		}
		if p == nil {
			p = k.pool
		} else if p != k.pool {
			return nil
		}
	}
	return p
}

// Not negates f, folding constants and double negation.
func Not(f *F) *F {
	switch f.op {
	case OpTrue:
		return False
	case OpFalse:
		return True
	case OpNot:
		return f.kids[0]
	}
	if f.pool != nil {
		return f.pool.intern(OpNot, []*F{f})
	}
	return &F{op: OpNot, kids: []*F{f}}
}

// And conjoins fs, flattening nested conjunctions and folding constants.
func And(fs ...*F) *F {
	var kids []*F
	for _, f := range fs {
		switch f.op {
		case OpTrue:
			continue
		case OpFalse:
			return False
		case OpAnd:
			kids = append(kids, f.kids...)
		default:
			kids = append(kids, f)
		}
	}
	switch len(kids) {
	case 0:
		return True
	case 1:
		return kids[0]
	}
	if p := poolOf(kids); p != nil {
		return p.intern(OpAnd, kids)
	}
	return &F{op: OpAnd, kids: kids}
}

// Or disjoins fs, flattening nested disjunctions and folding constants.
func Or(fs ...*F) *F {
	var kids []*F
	for _, f := range fs {
		switch f.op {
		case OpFalse:
			continue
		case OpTrue:
			return True
		case OpOr:
			kids = append(kids, f.kids...)
		default:
			kids = append(kids, f)
		}
	}
	switch len(kids) {
	case 0:
		return False
	case 1:
		return kids[0]
	}
	if p := poolOf(kids); p != nil {
		return p.intern(OpOr, kids)
	}
	return &F{op: OpOr, kids: kids}
}

// Implies returns a → b.
func Implies(a, b *F) *F { return Or(Not(a), b) }

// Iff returns a ↔ b.
func Iff(a, b *F) *F { return And(Implies(a, b), Implies(b, a)) }

// Xor returns a ⊕ b.
func Xor(a, b *F) *F { return Or(And(a, Not(b)), And(Not(a), b)) }

// Ite returns the multiplexer: cond ? a : b.
func Ite(cond, a, b *F) *F { return And(Implies(cond, a), Implies(Not(cond), b)) }

// String renders the formula for debugging.
func (f *F) String() string {
	switch f.op {
	case OpTrue:
		return "true"
	case OpFalse:
		return "false"
	case OpVar:
		if f.name == "" && f.pool != nil {
			return fmt.Sprintf("v%d", f.id)
		}
		return f.name
	case OpNot:
		return "!" + f.kids[0].String()
	case OpAnd, OpOr:
		opStr := " & "
		if f.op == OpOr {
			opStr = " | "
		}
		parts := make([]string, len(f.kids))
		for i, k := range f.kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, opStr) + ")"
	}
	return "?"
}

// Builder maps formulas onto a SAT solver: named variables to solver
// variables and composite nodes to Tseitin-defined literals. A builder
// attached to a Pool (NewPooledBuilder) caches pooled nodes in a dense
// ID-indexed slice; name-keyed and pointer-keyed maps remain only as the
// fallback for unpooled nodes.
type Builder struct {
	S     *sat.Solver
	pool  *Pool
	vars  map[string]sat.Var
	cache map[*F]sat.Lit
	// nodeLits caches literals for pooled nodes, indexed by node ID.
	// Entries store lit+1 so the zero value means "unset".
	nodeLits []sat.Lit
	// constTrue is a literal asserted true, used for constant nodes.
	constTrue sat.Lit
	hasConst  bool
}

// NewBuilder wraps a solver.
func NewBuilder(s *sat.Solver) *Builder {
	return &Builder{S: s, vars: make(map[string]sat.Var), cache: make(map[*F]sat.Lit)}
}

// NewPooledBuilder wraps a solver with dense literal caching for nodes
// of pool p.
func NewPooledBuilder(s *sat.Solver, p *Pool) *Builder {
	b := NewBuilder(s)
	b.pool = p
	return b
}

// pooledLit returns the cached literal of a pooled node, or ok=false.
func (b *Builder) pooledLit(f *F) (sat.Lit, bool) {
	if int(f.id) >= len(b.nodeLits) {
		return 0, false
	}
	l := b.nodeLits[f.id]
	if l == 0 {
		return 0, false
	}
	return l - 1, true
}

// setPooledLit caches the literal of a pooled node. The cache grows
// geometrically: the pool keeps interning nodes while constraints are
// emitted, so sizing to the pool's current size would reallocate on
// nearly every new node.
func (b *Builder) setPooledLit(f *F, l sat.Lit) {
	if int(f.id) >= len(b.nodeLits) {
		n := 2 * len(b.nodeLits)
		if n < int(f.id)+1 {
			n = int(f.id) + 1
		}
		if n < 64 {
			n = 64
		}
		grown := make([]sat.Lit, n)
		copy(grown, b.nodeLits)
		b.nodeLits = grown
	}
	b.nodeLits[f.id] = l + 1
}

// VarLit returns (allocating on first use) the solver variable for name.
func (b *Builder) VarLit(name string) sat.Lit {
	v, ok := b.vars[name]
	if !ok {
		v = b.S.NewVar()
		b.vars[name] = v
	}
	return sat.MkLit(v, false)
}

// Prefer seeds the solver's branching polarity for a named variable;
// unknown names allocate the variable.
func (b *Builder) Prefer(name string, val bool) {
	l := b.VarLit(name)
	b.S.SetPhase(l.Var(), val)
}

// PreferF seeds the solver's branching polarity for a variable node,
// allocating its solver variable on first use. The ID-indexed analogue
// of Prefer for pooled anonymous variables.
func (b *Builder) PreferF(f *F, val bool) {
	b.S.SetPhase(b.Lit(f).Var(), val)
}

// AllocatedVar reports whether the variable node f already has a solver
// variable, without allocating one. The node-based analogue of HasVar
// for pooled anonymous variables.
func (b *Builder) AllocatedVar(f *F) bool {
	if f.op != OpVar {
		return false
	}
	if f.name != "" {
		_, ok := b.vars[f.name]
		return ok
	}
	if b.pool != nil && f.pool == b.pool {
		_, ok := b.pooledLit(f)
		return ok
	}
	_, ok := b.cache[f]
	return ok
}

// HasVar reports whether a named variable has been allocated.
func (b *Builder) HasVar(name string) bool {
	_, ok := b.vars[name]
	return ok
}

// VarNames returns all allocated variable names, sorted.
func (b *Builder) VarNames() []string {
	names := make([]string, 0, len(b.vars))
	for n := range b.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// trueLit returns a literal constrained to be true.
func (b *Builder) trueLit() sat.Lit {
	if !b.hasConst {
		v := b.S.NewVar()
		b.constTrue = sat.MkLit(v, false)
		b.S.AddClause(b.constTrue)
		b.hasConst = true
	}
	return b.constTrue
}

// Lit returns a solver literal equivalent to f, introducing Tseitin
// definitions for composite nodes (cached per node). Pooled nodes hit a
// dense ID-indexed cache; hash-consing makes structurally identical
// pooled composites share one Tseitin definition.
func (b *Builder) Lit(f *F) sat.Lit {
	dense := b.pool != nil && f.pool == b.pool
	switch f.op {
	case OpTrue:
		return b.trueLit()
	case OpFalse:
		return b.trueLit().Not()
	case OpVar:
		if f.name != "" {
			// Named variables unify by name across pooled and legacy
			// construction, preserving Var's contract.
			return b.VarLit(f.name)
		}
		if dense {
			if l, ok := b.pooledLit(f); ok {
				return l
			}
			l := sat.MkLit(b.S.NewVar(), false)
			b.setPooledLit(f, l)
			return l
		}
		if l, ok := b.cache[f]; ok {
			return l
		}
		l := sat.MkLit(b.S.NewVar(), false)
		b.cache[f] = l
		return l
	case OpNot:
		return b.Lit(f.kids[0]).Not()
	}
	if dense {
		if l, ok := b.pooledLit(f); ok {
			return l
		}
	} else if l, ok := b.cache[f]; ok {
		return l
	}
	kidLits := make([]sat.Lit, len(f.kids))
	for i, k := range f.kids {
		kidLits[i] = b.Lit(k)
	}
	v := b.S.NewVar()
	l := sat.MkLit(v, false)
	switch f.op {
	case OpAnd:
		// l ↔ AND(kids): (¬l ∨ k_i) for each i; (l ∨ ¬k_1 ∨ ... ∨ ¬k_n).
		long := make([]sat.Lit, 0, len(kidLits)+1)
		long = append(long, l)
		for _, k := range kidLits {
			b.S.AddClause(l.Not(), k)
			long = append(long, k.Not())
		}
		b.S.AddClause(long...)
	case OpOr:
		// l ↔ OR(kids): (¬k_i ∨ l) for each i; (¬l ∨ k_1 ∨ ... ∨ k_n).
		long := make([]sat.Lit, 0, len(kidLits)+1)
		long = append(long, l.Not())
		for _, k := range kidLits {
			b.S.AddClause(k.Not(), l)
			long = append(long, k)
		}
		b.S.AddClause(long...)
	default:
		panic(fmt.Sprintf("formula: unexpected op %d", f.op))
	}
	if dense {
		b.setPooledLit(f, l)
	} else {
		b.cache[f] = l
	}
	return l
}

// Assert adds f as a hard constraint. Top-level conjunctions become
// separate assertions and top-level disjunctions become a single clause,
// avoiding auxiliary variables where possible.
func (b *Builder) Assert(f *F) {
	switch f.op {
	case OpTrue:
		return
	case OpFalse:
		b.S.AddClause() // empty clause: unsatisfiable
		return
	case OpAnd:
		for _, k := range f.kids {
			b.Assert(k)
		}
		return
	case OpOr:
		clause := make([]sat.Lit, len(f.kids))
		for i, k := range f.kids {
			clause[i] = b.Lit(k)
		}
		b.S.AddClause(clause...)
		return
	}
	b.S.AddClause(b.Lit(f))
}

// AtMostOne asserts that at most one of fs holds (pairwise encoding; the
// repair constraints use it for small sets only).
func (b *Builder) AtMostOne(fs ...*F) {
	lits := make([]sat.Lit, len(fs))
	for i, f := range fs {
		lits[i] = b.Lit(f)
	}
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			b.S.AddClause(lits[i].Not(), lits[j].Not())
		}
	}
}

// Value evaluates f under the solver's current model (valid after Sat).
func (b *Builder) Value(f *F) bool {
	switch f.op {
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpVar:
		if f.name == "" && f.pool != nil {
			// Anonymous pooled variable: read the cached literal without
			// allocating (unallocated variables default to false).
			if b.pool == f.pool {
				if l, ok := b.pooledLit(f); ok {
					return b.S.Value(l.Var())
				}
				return false
			}
			if l, ok := b.cache[f]; ok {
				return b.S.Value(l.Var())
			}
			return false
		}
		v, ok := b.vars[f.name]
		if !ok {
			return false // unconstrained variable defaults to false
		}
		return b.S.Value(v)
	case OpNot:
		return !b.Value(f.kids[0])
	case OpAnd:
		for _, k := range f.kids {
			if !b.Value(k) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range f.kids {
			if b.Value(k) {
				return true
			}
		}
		return false
	}
	return false
}
