// Package formula provides a boolean formula AST with light
// simplification and a Tseitin transformation onto the CDCL SAT solver.
// It is the constraint-building layer used by CPR's MaxSMT encoding
// (Figure 5 of the paper) and by the bitvector arithmetic of package bv.
package formula

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/smt/sat"
)

// Op is a formula node kind.
type Op int

// Node kinds.
const (
	OpTrue Op = iota
	OpFalse
	OpVar
	OpNot
	OpAnd
	OpOr
)

// F is an immutable boolean formula node. Construct via the package
// functions; the zero value is not meaningful.
type F struct {
	op   Op
	name string
	kids []*F
}

// True and False are the boolean constants.
var (
	True  = &F{op: OpTrue}
	False = &F{op: OpFalse}
)

// Var returns a named variable node. Two Var calls with the same name
// denote the same SAT variable within one Builder.
func Var(name string) *F { return &F{op: OpVar, name: name} }

// Not negates f, folding constants and double negation.
func Not(f *F) *F {
	switch f.op {
	case OpTrue:
		return False
	case OpFalse:
		return True
	case OpNot:
		return f.kids[0]
	}
	return &F{op: OpNot, kids: []*F{f}}
}

// And conjoins fs, flattening nested conjunctions and folding constants.
func And(fs ...*F) *F {
	var kids []*F
	for _, f := range fs {
		switch f.op {
		case OpTrue:
			continue
		case OpFalse:
			return False
		case OpAnd:
			kids = append(kids, f.kids...)
		default:
			kids = append(kids, f)
		}
	}
	switch len(kids) {
	case 0:
		return True
	case 1:
		return kids[0]
	}
	return &F{op: OpAnd, kids: kids}
}

// Or disjoins fs, flattening nested disjunctions and folding constants.
func Or(fs ...*F) *F {
	var kids []*F
	for _, f := range fs {
		switch f.op {
		case OpFalse:
			continue
		case OpTrue:
			return True
		case OpOr:
			kids = append(kids, f.kids...)
		default:
			kids = append(kids, f)
		}
	}
	switch len(kids) {
	case 0:
		return False
	case 1:
		return kids[0]
	}
	return &F{op: OpOr, kids: kids}
}

// Implies returns a → b.
func Implies(a, b *F) *F { return Or(Not(a), b) }

// Iff returns a ↔ b.
func Iff(a, b *F) *F { return And(Implies(a, b), Implies(b, a)) }

// Xor returns a ⊕ b.
func Xor(a, b *F) *F { return Or(And(a, Not(b)), And(Not(a), b)) }

// Ite returns the multiplexer: cond ? a : b.
func Ite(cond, a, b *F) *F { return And(Implies(cond, a), Implies(Not(cond), b)) }

// String renders the formula for debugging.
func (f *F) String() string {
	switch f.op {
	case OpTrue:
		return "true"
	case OpFalse:
		return "false"
	case OpVar:
		return f.name
	case OpNot:
		return "!" + f.kids[0].String()
	case OpAnd, OpOr:
		opStr := " & "
		if f.op == OpOr {
			opStr = " | "
		}
		parts := make([]string, len(f.kids))
		for i, k := range f.kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, opStr) + ")"
	}
	return "?"
}

// Builder maps formulas onto a SAT solver: named variables to solver
// variables and composite nodes to Tseitin-defined literals.
type Builder struct {
	S     *sat.Solver
	vars  map[string]sat.Var
	cache map[*F]sat.Lit
	// constTrue is a literal asserted true, used for constant nodes.
	constTrue sat.Lit
	hasConst  bool
}

// NewBuilder wraps a solver.
func NewBuilder(s *sat.Solver) *Builder {
	return &Builder{S: s, vars: make(map[string]sat.Var), cache: make(map[*F]sat.Lit)}
}

// VarLit returns (allocating on first use) the solver variable for name.
func (b *Builder) VarLit(name string) sat.Lit {
	v, ok := b.vars[name]
	if !ok {
		v = b.S.NewVar()
		b.vars[name] = v
	}
	return sat.MkLit(v, false)
}

// Prefer seeds the solver's branching polarity for a named variable;
// unknown names allocate the variable.
func (b *Builder) Prefer(name string, val bool) {
	l := b.VarLit(name)
	b.S.SetPhase(l.Var(), val)
}

// HasVar reports whether a named variable has been allocated.
func (b *Builder) HasVar(name string) bool {
	_, ok := b.vars[name]
	return ok
}

// VarNames returns all allocated variable names, sorted.
func (b *Builder) VarNames() []string {
	names := make([]string, 0, len(b.vars))
	for n := range b.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// trueLit returns a literal constrained to be true.
func (b *Builder) trueLit() sat.Lit {
	if !b.hasConst {
		v := b.S.NewVar()
		b.constTrue = sat.MkLit(v, false)
		b.S.AddClause(b.constTrue)
		b.hasConst = true
	}
	return b.constTrue
}

// Lit returns a solver literal equivalent to f, introducing Tseitin
// definitions for composite nodes (cached per node).
func (b *Builder) Lit(f *F) sat.Lit {
	switch f.op {
	case OpTrue:
		return b.trueLit()
	case OpFalse:
		return b.trueLit().Not()
	case OpVar:
		return b.VarLit(f.name)
	case OpNot:
		return b.Lit(f.kids[0]).Not()
	}
	if l, ok := b.cache[f]; ok {
		return l
	}
	kidLits := make([]sat.Lit, len(f.kids))
	for i, k := range f.kids {
		kidLits[i] = b.Lit(k)
	}
	v := b.S.NewVar()
	l := sat.MkLit(v, false)
	switch f.op {
	case OpAnd:
		// l ↔ AND(kids): (¬l ∨ k_i) for each i; (l ∨ ¬k_1 ∨ ... ∨ ¬k_n).
		long := make([]sat.Lit, 0, len(kidLits)+1)
		long = append(long, l)
		for _, k := range kidLits {
			b.S.AddClause(l.Not(), k)
			long = append(long, k.Not())
		}
		b.S.AddClause(long...)
	case OpOr:
		// l ↔ OR(kids): (¬k_i ∨ l) for each i; (¬l ∨ k_1 ∨ ... ∨ k_n).
		long := make([]sat.Lit, 0, len(kidLits)+1)
		long = append(long, l.Not())
		for _, k := range kidLits {
			b.S.AddClause(k.Not(), l)
			long = append(long, k)
		}
		b.S.AddClause(long...)
	default:
		panic(fmt.Sprintf("formula: unexpected op %d", f.op))
	}
	b.cache[f] = l
	return l
}

// Assert adds f as a hard constraint. Top-level conjunctions become
// separate assertions and top-level disjunctions become a single clause,
// avoiding auxiliary variables where possible.
func (b *Builder) Assert(f *F) {
	switch f.op {
	case OpTrue:
		return
	case OpFalse:
		b.S.AddClause() // empty clause: unsatisfiable
		return
	case OpAnd:
		for _, k := range f.kids {
			b.Assert(k)
		}
		return
	case OpOr:
		clause := make([]sat.Lit, len(f.kids))
		for i, k := range f.kids {
			clause[i] = b.Lit(k)
		}
		b.S.AddClause(clause...)
		return
	}
	b.S.AddClause(b.Lit(f))
}

// AtMostOne asserts that at most one of fs holds (pairwise encoding; the
// repair constraints use it for small sets only).
func (b *Builder) AtMostOne(fs ...*F) {
	lits := make([]sat.Lit, len(fs))
	for i, f := range fs {
		lits[i] = b.Lit(f)
	}
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			b.S.AddClause(lits[i].Not(), lits[j].Not())
		}
	}
}

// Value evaluates f under the solver's current model (valid after Sat).
func (b *Builder) Value(f *F) bool {
	switch f.op {
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpVar:
		v, ok := b.vars[f.name]
		if !ok {
			return false // unconstrained variable defaults to false
		}
		return b.S.Value(v)
	case OpNot:
		return !b.Value(f.kids[0])
	case OpAnd:
		for _, k := range f.kids {
			if !b.Value(k) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range f.kids {
			if b.Value(k) {
				return true
			}
		}
		return false
	}
	return false
}
