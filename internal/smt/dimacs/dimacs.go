// Package dimacs parses and prints the standard CNF and WCNF exchange
// formats, exposing the solver substrate to standard SAT/MaxSAT
// instances (useful for validating the engine against external
// benchmarks, and for debugging CPR encodings dumped to disk).
package dimacs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/smt/sat"
)

// Problem is a parsed (W)CNF instance: hard clauses plus optional
// weighted soft clauses (weight 0 means the clause is hard).
type Problem struct {
	NumVars int
	Hard    [][]sat.Lit
	Soft    [][]sat.Lit
	Weights []int
}

// Parse reads a DIMACS "p cnf" or "p wcnf" instance. For wcnf, clauses
// with the top weight are hard; others soft.
func Parse(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	p := &Problem{}
	wcnf := false
	top := -1
	seenHeader := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				return nil, fmt.Errorf("dimacs: line %d: malformed problem line", lineNo)
			}
			switch fields[1] {
			case "cnf":
			case "wcnf":
				wcnf = true
				if len(fields) >= 5 {
					t, err := strconv.Atoi(fields[4])
					if err != nil {
						return nil, fmt.Errorf("dimacs: line %d: bad top weight", lineNo)
					}
					top = t
				}
			default:
				return nil, fmt.Errorf("dimacs: line %d: unknown format %q", lineNo, fields[1])
			}
			var err error
			p.NumVars, err = strconv.Atoi(fields[2])
			if err != nil || p.NumVars < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad variable count", lineNo)
			}
			seenHeader = true
			continue
		}
		if !seenHeader {
			return nil, fmt.Errorf("dimacs: line %d: clause before problem line", lineNo)
		}
		fields := strings.Fields(line)
		weight := 0
		start := 0
		if wcnf {
			w, err := strconv.Atoi(fields[0])
			if err != nil || w < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad clause weight", lineNo)
			}
			weight = w
			start = 1
		}
		var clause []sat.Lit
		terminated := false
		for _, f := range fields[start:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad literal %q", lineNo, f)
			}
			if v == 0 {
				terminated = true
				break
			}
			abs := v
			if abs < 0 {
				abs = -abs
			}
			if abs > p.NumVars {
				return nil, fmt.Errorf("dimacs: line %d: literal %d exceeds declared %d variables", lineNo, v, p.NumVars)
			}
			clause = append(clause, sat.MkLit(sat.Var(abs-1), v < 0))
		}
		if !terminated {
			return nil, fmt.Errorf("dimacs: line %d: clause not 0-terminated", lineNo)
		}
		if wcnf && (top < 0 || weight < top) && weight > 0 {
			p.Soft = append(p.Soft, clause)
			p.Weights = append(p.Weights, weight)
		} else {
			p.Hard = append(p.Hard, clause)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenHeader {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	return p, nil
}

// Load allocates variables and adds the hard clauses to a fresh solver,
// returning it with soft-clause selector literals: each soft clause C_i
// becomes (C_i ∨ ¬s_i) and the returned lits are the s_i (true ⇔ the
// clause must hold), ready for maxsat.SolveWeighted.
func (p *Problem) Load() (*sat.Solver, []sat.Lit) {
	s := sat.New()
	for i := 0; i < p.NumVars; i++ {
		s.NewVar()
	}
	for _, c := range p.Hard {
		s.AddClause(c...)
	}
	selectors := make([]sat.Lit, len(p.Soft))
	for i, c := range p.Soft {
		sel := sat.MkLit(s.NewVar(), false)
		clause := append(append([]sat.Lit{}, c...), sel.Not())
		s.AddClause(clause...)
		selectors[i] = sel
	}
	// The reverse binding (clause ⇒ sel) is unnecessary: minimizing
	// violated selectors sets sel true exactly when the clause holds.
	return s, selectors
}

// Print renders the problem back in DIMACS form (wcnf when softs exist).
func (p *Problem) Print(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeClause := func(prefix string, c []sat.Lit) {
		if prefix != "" {
			fmt.Fprint(bw, prefix, " ")
		}
		for _, l := range c {
			v := int(l.Var()) + 1
			if l.Neg() {
				v = -v
			}
			fmt.Fprint(bw, v, " ")
		}
		fmt.Fprintln(bw, 0)
	}
	if len(p.Soft) == 0 {
		fmt.Fprintf(bw, "p cnf %d %d\n", p.NumVars, len(p.Hard))
		for _, c := range p.Hard {
			writeClause("", c)
		}
		return bw.Flush()
	}
	top := 1
	for _, wgt := range p.Weights {
		top += wgt
	}
	fmt.Fprintf(bw, "p wcnf %d %d %d\n", p.NumVars, len(p.Hard)+len(p.Soft), top)
	for _, c := range p.Hard {
		writeClause(strconv.Itoa(top), c)
	}
	for i, c := range p.Soft {
		writeClause(strconv.Itoa(p.Weights[i]), c)
	}
	return bw.Flush()
}
