package dimacs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/smt/maxsat"
	"repro/internal/smt/sat"
)

func TestParseCNF(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	p, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVars != 3 || len(p.Hard) != 2 || len(p.Soft) != 0 {
		t.Fatalf("parsed %+v", p)
	}
	if p.Hard[0][1] != sat.MkLit(1, true) {
		t.Errorf("literal -2 parsed as %v", p.Hard[0][1])
	}
	s, _ := p.Load()
	if s.Solve() != sat.Sat {
		t.Error("instance is satisfiable")
	}
}

func TestParseWCNF(t *testing.T) {
	in := `p wcnf 2 3 10
10 1 2 0
3 -1 0
1 -2 0
`
	p, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hard) != 1 || len(p.Soft) != 2 {
		t.Fatalf("hard=%d soft=%d", len(p.Hard), len(p.Soft))
	}
	if p.Weights[0] != 3 || p.Weights[1] != 1 {
		t.Errorf("weights = %v", p.Weights)
	}
	// Optimum: hard (x1 ∨ x2); soft ¬x1 (w3), ¬x2 (w1): set x2 only →
	// violate the weight-1 soft.
	s, sels := p.Load()
	res := maxsat.SolveWeighted(s, sels, p.Weights, maxsat.LinearDescent)
	if res.Status != sat.Sat || res.Cost != 1 {
		t.Errorf("optimum = %+v, want cost 1", res)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"1 2 0\n",                // clause before header
		"p cnf x 2\n",            // bad var count
		"p foo 2 2\n",            // unknown format
		"p cnf 2 1\n1 2\n",       // missing terminator
		"p cnf 2 1\n1 5 0\n",     // literal out of range
		"p wcnf 2 1 10\nw 1 0\n", // bad weight
		"p cnf\n",                // short header
		"",                       // no header
		"p cnf 2 1\n1 zz 0\n",    // bad literal
		"p wcnf 2 1\n-3 1 0\n",   // negative weight
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := &Problem{NumVars: 3 + r.Intn(5)}
		for i := 0; i < 2+r.Intn(6); i++ {
			var c []sat.Lit
			for j := 0; j < 1+r.Intn(3); j++ {
				c = append(c, sat.MkLit(sat.Var(r.Intn(p.NumVars)), r.Intn(2) == 0))
			}
			if r.Intn(2) == 0 {
				p.Soft = append(p.Soft, c)
				p.Weights = append(p.Weights, 1+r.Intn(5))
			} else {
				p.Hard = append(p.Hard, c)
			}
		}
		var sb strings.Builder
		if err := p.Print(&sb); err != nil {
			return false
		}
		q, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Logf("seed %d: reparse: %v\n%s", seed, err, sb.String())
			return false
		}
		if q.NumVars != p.NumVars || len(q.Hard) != len(p.Hard) || len(q.Soft) != len(p.Soft) {
			t.Logf("seed %d: shape mismatch", seed)
			return false
		}
		for i := range p.Weights {
			if q.Weights[i] != p.Weights[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestWCNFOptimumMatchesBrute checks the whole Load+SolveWeighted path
// against brute force on random weighted instances.
func TestWCNFOptimumMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nvars := 3 + r.Intn(4)
		p := &Problem{NumVars: nvars}
		for i := 0; i < 3+r.Intn(6); i++ {
			var c []sat.Lit
			for j := 0; j < 1+r.Intn(3); j++ {
				c = append(c, sat.MkLit(sat.Var(r.Intn(nvars)), r.Intn(2) == 0))
			}
			if r.Intn(3) > 0 {
				p.Soft = append(p.Soft, c)
				p.Weights = append(p.Weights, 1+r.Intn(3))
			} else {
				p.Hard = append(p.Hard, c)
			}
		}
		want, feasible := bruteOptimum(p)
		s, sels := p.Load()
		res := maxsat.SolveWeighted(s, sels, p.Weights, maxsat.FuMalik)
		if !feasible {
			return res.Status == sat.Unsat
		}
		if res.Status != sat.Sat || res.Cost != want {
			t.Logf("seed %d: got %+v, want %d", seed, res, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func bruteOptimum(p *Problem) (int, bool) {
	best := -1
	for mask := 0; mask < 1<<p.NumVars; mask++ {
		val := func(l sat.Lit) bool {
			bit := mask&(1<<uint(l.Var())) != 0
			if l.Neg() {
				return !bit
			}
			return bit
		}
		satisfied := func(c []sat.Lit) bool {
			for _, l := range c {
				if val(l) {
					return true
				}
			}
			return false
		}
		ok := true
		for _, c := range p.Hard {
			if !satisfied(c) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		cost := 0
		for i, c := range p.Soft {
			if !satisfied(c) {
				cost += p.Weights[i]
			}
		}
		if best == -1 || cost < best {
			best = cost
		}
	}
	return best, best != -1
}
