package bv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/smt/formula"
	"repro/internal/smt/sat"
)

func TestConstRoundTrip(t *testing.T) {
	s := sat.New()
	b := formula.NewBuilder(s)
	v := Const(13, 5)
	// Force allocation of the const-literal machinery and solve.
	b.Assert(formula.True)
	if s.Solve() != sat.Sat {
		t.Fatal("want sat")
	}
	if got := Value(b, v); got != 13 {
		t.Errorf("Value = %d, want 13", got)
	}
}

func TestConstOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for oversized constant")
		}
	}()
	Const(16, 4)
}

func TestAddConstants(t *testing.T) {
	for _, tc := range []struct{ a, b uint64 }{{0, 0}, {1, 1}, {7, 9}, {15, 15}, {5, 0}} {
		s := sat.New()
		bd := formula.NewBuilder(s)
		sum := Add(Const(tc.a, 4), Const(tc.b, 4))
		bd.Assert(formula.True)
		if s.Solve() != sat.Sat {
			t.Fatal("want sat")
		}
		if got := Value(bd, sum); got != tc.a+tc.b {
			t.Errorf("%d+%d = %d, want %d", tc.a, tc.b, got, tc.a+tc.b)
		}
	}
}

func TestAddVariables(t *testing.T) {
	s := sat.New()
	bd := formula.NewBuilder(s)
	x := New("x", 4)
	y := New("y", 4)
	sum := Add(x, y)
	AssertEqualConst(bd, x, 9)
	AssertEqualConst(bd, y, 8)
	if s.Solve() != sat.Sat {
		t.Fatal("want sat")
	}
	if got := Value(bd, sum); got != 17 {
		t.Errorf("sum = %d, want 17 (no overflow: width grows)", got)
	}
}

func TestLessAndLessEq(t *testing.T) {
	cases := []struct {
		a, b uint64
		lt   bool
	}{{3, 5, true}, {5, 3, false}, {4, 4, false}, {0, 1, true}, {15, 0, false}}
	for _, tc := range cases {
		s := sat.New()
		bd := formula.NewBuilder(s)
		f := Less(Const(tc.a, 4), Const(tc.b, 4))
		bd.Assert(formula.True)
		if s.Solve() != sat.Sat {
			t.Fatal("want sat")
		}
		if got := bd.Value(f); got != tc.lt {
			t.Errorf("%d < %d = %v, want %v", tc.a, tc.b, got, tc.lt)
		}
		le := bd.Value(LessEq(Const(tc.a, 4), Const(tc.b, 4)))
		if le != (tc.a <= tc.b) {
			t.Errorf("%d <= %d = %v", tc.a, tc.b, le)
		}
	}
}

func TestEqualMixedWidths(t *testing.T) {
	s := sat.New()
	bd := formula.NewBuilder(s)
	f := Equal(Const(5, 3), Const(5, 6))
	g := Equal(Const(5, 3), Const(13, 6))
	bd.Assert(formula.True)
	if s.Solve() != sat.Sat {
		t.Fatal("want sat")
	}
	if !bd.Value(f) {
		t.Error("5 == 5 across widths should hold")
	}
	if bd.Value(g) {
		t.Error("5 == 13 should not hold")
	}
}

func TestNonZero(t *testing.T) {
	s := sat.New()
	bd := formula.NewBuilder(s)
	x := New("x", 3)
	bd.Assert(NonZero(x))
	bd.Assert(formula.Not(x[1]))
	bd.Assert(formula.Not(x[2]))
	if s.Solve() != sat.Sat {
		t.Fatal("want sat")
	}
	if Value(bd, x) != 1 {
		t.Errorf("x = %d, want 1", Value(bd, x))
	}
}

func TestSolverFindsAddends(t *testing.T) {
	// x + y == 10, x < y, x > 0: solver must find a concrete split.
	s := sat.New()
	bd := formula.NewBuilder(s)
	x := New("x", 4)
	y := New("y", 4)
	sum := Add(x, y)
	bd.Assert(Equal(sum, Const(10, 5)))
	bd.Assert(Less(x, y))
	bd.Assert(NonZero(x))
	if s.Solve() != sat.Sat {
		t.Fatal("want sat")
	}
	xv, yv := Value(bd, x), Value(bd, y)
	if xv+yv != 10 || xv >= yv || xv == 0 {
		t.Errorf("x=%d y=%d violates constraints", xv, yv)
	}
}

func TestTruncate(t *testing.T) {
	v := Const(5, 6)
	if v.Truncate(3).Width() != 3 {
		t.Error("Truncate width wrong")
	}
	if v.Truncate(10).Width() != 6 {
		t.Error("Truncate should not extend")
	}
}

// Property: addition and comparison agree with machine arithmetic.
func TestDifferentialArithmetic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := uint64(r.Intn(256))
		b := uint64(r.Intn(256))
		s := sat.New()
		bd := formula.NewBuilder(s)
		va := New("a", 8)
		vb := New("b", 8)
		AssertEqualConst(bd, va, a)
		AssertEqualConst(bd, vb, b)
		sum := Add(va, vb)
		if s.Solve() != sat.Sat {
			return false
		}
		if Value(bd, sum) != a+b {
			return false
		}
		if bd.Value(Less(va, vb)) != (a < b) {
			return false
		}
		if bd.Value(LessEq(va, vb)) != (a <= b) {
			return false
		}
		if bd.Value(Equal(va, vb)) != (a == b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAssertEqualConstTooBig(t *testing.T) {
	s := sat.New()
	bd := formula.NewBuilder(s)
	x := New("x", 3)
	AssertEqualConst(bd, x, 9) // does not fit in 3 bits
	if s.Solve() != sat.Unsat {
		t.Error("oversized AssertEqualConst should be unsat")
	}
}
