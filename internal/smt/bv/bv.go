// Package bv implements fixed-width unsigned integers over boolean
// formulas (bit-blasting): constants, fresh vectors, ripple-carry
// addition, and comparisons. It provides the integer theory CPR's PC4
// constraints need (edge costs and shortest-path distances, Figure 5
// constraints 13-17) on top of the SAT substrate.
package bv

import (
	"fmt"

	"repro/internal/smt/formula"
)

// Vec is an unsigned integer as bits, least-significant first.
type Vec []*formula.F

// Const returns the width-bit constant v. Panics if v does not fit.
func Const(v uint64, width int) Vec {
	if width < 64 && v >= 1<<uint(width) {
		panic(fmt.Sprintf("bv: constant %d does not fit in %d bits", v, width))
	}
	out := make(Vec, width)
	for i := 0; i < width; i++ {
		if v&(1<<uint(i)) != 0 {
			out[i] = formula.True
		} else {
			out[i] = formula.False
		}
	}
	return out
}

// New returns a width-bit vector of fresh named variables name.0 ...
// name.<width-1>.
func New(name string, width int) Vec {
	out := make(Vec, width)
	for i := range out {
		out[i] = formula.Var(fmt.Sprintf("%s.%d", name, i))
	}
	return out
}

// Fresh returns a width-bit vector of fresh anonymous pool variables.
// The pooled analogue of New for encoders that track vectors by ID
// tables instead of names.
func Fresh(p *formula.Pool, width int) Vec {
	out := make(Vec, width)
	for i := range out {
		out[i] = p.Fresh()
	}
	return out
}

// Width returns the bit width.
func (v Vec) Width() int { return len(v) }

// bit returns bit i, or False beyond the width.
func (v Vec) bit(i int) *formula.F {
	if i < len(v) {
		return v[i]
	}
	return formula.False
}

// Add returns a+b with width max(len(a),len(b))+1 (no overflow).
func Add(a, b Vec) Vec {
	width := len(a)
	if len(b) > width {
		width = len(b)
	}
	out := make(Vec, width+1)
	carry := formula.False
	for i := 0; i < width; i++ {
		ai, bi := a.bit(i), b.bit(i)
		out[i] = formula.Xor(formula.Xor(ai, bi), carry)
		carry = formula.Or(
			formula.And(ai, bi),
			formula.And(carry, formula.Or(ai, bi)),
		)
	}
	out[width] = carry
	return out
}

// Truncate returns v limited to width bits (high bits dropped). The
// caller must ensure the dropped bits are zero-constrained if semantics
// require it.
func (v Vec) Truncate(width int) Vec {
	if len(v) <= width {
		return v
	}
	return v[:width]
}

// Equal returns the formula a == b (widths may differ; missing high bits
// are zero).
func Equal(a, b Vec) *formula.F {
	width := len(a)
	if len(b) > width {
		width = len(b)
	}
	parts := make([]*formula.F, width)
	for i := 0; i < width; i++ {
		parts[i] = formula.Iff(a.bit(i), b.bit(i))
	}
	return formula.And(parts...)
}

// Less returns the formula a < b (unsigned).
func Less(a, b Vec) *formula.F {
	width := len(a)
	if len(b) > width {
		width = len(b)
	}
	// From MSB down: lt = (¬a_i ∧ b_i) ∨ ((a_i ↔ b_i) ∧ lt_rest).
	lt := formula.False
	for i := 0; i < width; i++ {
		ai, bi := a.bit(i), b.bit(i)
		lt = formula.Or(
			formula.And(formula.Not(ai), bi),
			formula.And(formula.Iff(ai, bi), lt),
		)
	}
	return lt
}

// LessEq returns the formula a <= b (unsigned).
func LessEq(a, b Vec) *formula.F { return formula.Not(Less(b, a)) }

// NonZero returns the formula v != 0.
func NonZero(v Vec) *formula.F {
	parts := make([]*formula.F, len(v))
	copy(parts, v)
	return formula.Or(parts...)
}

// Value reads the vector's integer value from the builder's model.
func Value(b *formula.Builder, v Vec) uint64 {
	var out uint64
	for i, bit := range v {
		if b.Value(bit) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// AssertEqualConst asserts v == c using unit constraints (cheaper than
// Assert(Equal(v, Const(c, w)))).
func AssertEqualConst(b *formula.Builder, v Vec, c uint64) {
	for i, bit := range v {
		if c&(1<<uint(i)) != 0 {
			b.Assert(bit)
		} else {
			b.Assert(formula.Not(bit))
		}
	}
	if len(v) < 64 && c>>uint(len(v)) != 0 {
		b.Assert(formula.False) // constant does not fit: unsatisfiable
	}
}
