package sat

import "fmt"

// debugVerifyModel panics if any live clause is unsatisfied by the
// current full assignment. Used only in tests.
func (s *Solver) debugVerifyModel() {
	check := func(ref uint32, learned bool) {
		good := false
		undef := false
		for _, w := range s.lits(ref) {
			switch s.value(Lit(w)) {
			case lTrue:
				good = true
			case lUndef:
				undef = true
			}
		}
		if !good {
			lits := make([]Lit, 0, 8)
			for _, w := range s.lits(ref) {
				lits = append(lits, Lit(w))
			}
			panic(fmt.Sprintf("clause %d unsatisfied (undef=%v, learned=%v): %v", ref, undef, learned, lits))
		}
	}
	for _, ref := range s.clauses {
		check(ref, false)
	}
	for _, ref := range s.learnts {
		check(ref, true)
	}
	// Each binary clause {p.Not(), q} appears as q in bins[p] (twice in
	// total, once per orientation); checking both is harmless.
	for p := range s.bins {
		for _, q := range s.bins[p] {
			if s.value(Lit(p).Not()) != lTrue && s.value(q) != lTrue {
				panic(fmt.Sprintf("binary clause {%v, %v} unsatisfied", Lit(p).Not(), q))
			}
		}
	}
}
