package sat

import "fmt"

// debugVerifyModel panics if any live clause is unsatisfied by the
// current full assignment. Used only in tests.
func (s *Solver) debugVerifyModel() {
	for i, c := range s.clauses {
		if c == nil {
			continue
		}
		good := false
		undef := false
		for _, l := range c.lits {
			switch s.value(l) {
			case lTrue:
				good = true
			case lUndef:
				undef = true
			}
		}
		if !good {
			panic(fmt.Sprintf("clause %d unsatisfied (undef=%v, learned=%v): %v", i, undef, c.learned, c.lits))
		}
	}
}
