package sat

import "math"

// Clause storage: all non-binary clauses live in one contiguous []uint32
// arena and are identified by the index of their header word (a "cref").
// The layout per clause is
//
//	[header] [activity]? [lit0] [lit1] ... [litN-1]
//
// where the activity word (a float32 bit pattern) is present only for
// learned clauses. The header packs the clause size, the learned and
// deleted flags, and the LBD (literal block distance) quality score:
//
//	bits  0..17  size (number of literals, ≤ 262143)
//	bit   18     learned
//	bit   19     deleted (storage reclaimed by the next arena GC)
//	bits 20..31  LBD, saturated at 4095 (0 for problem clauses)
//
// Binary clauses never enter the arena: they are specialized into the
// per-literal implication lists (Solver.bins) and referenced through
// tagged reasons, so neither storing nor propagating them touches the
// arena. Unit clauses become level-0 trail entries.
//
// Reason/conflict references share the cref space via tagging:
//
//	refUndef            no reason (decision or level-0 fact)
//	refBinConfl         conflict in a binary clause; lits in Solver.binConfl
//	refBinFlag | lit    binary reason: the clause {implied, Lit(lit)}
//	anything else       arena cref (< 2^31)
const (
	hdrSizeMask uint32 = 1<<18 - 1
	hdrLearned  uint32 = 1 << 18
	hdrDeleted  uint32 = 1 << 19
	hdrLBDShift        = 20
	hdrLBDMax   uint32 = 1<<12 - 1

	refUndef    uint32 = math.MaxUint32
	refBinConfl uint32 = math.MaxUint32 - 1
	refBinFlag  uint32 = 1 << 31

	// maxArenaWords bounds crefs below the refBinFlag tag space.
	maxArenaWords = 1 << 31
)

// isBinRef reports whether a reason reference is a tagged binary reason.
func isBinRef(ref uint32) bool { return ref&refBinFlag != 0 && ref != refUndef && ref != refBinConfl }

// binRefOther extracts the other literal of a tagged binary reason.
func binRefOther(ref uint32) Lit { return Lit(ref &^ refBinFlag) }

// mkBinRef tags a binary reason: the reason clause of an implied literal
// q is {q, other}.
func mkBinRef(other Lit) uint32 { return refBinFlag | uint32(other) }

// litBase returns the arena index of the clause's first literal.
func litBase(ref uint32, hdr uint32) uint32 {
	base := ref + 1
	if hdr&hdrLearned != 0 {
		base++
	}
	return base
}

// clauseWords returns the total arena footprint of the clause.
func clauseWords(hdr uint32) uint32 {
	n := 1 + hdr&hdrSizeMask
	if hdr&hdrLearned != 0 {
		n++
	}
	return n
}

// lits returns the clause's literal words (callers convert with Lit()).
// The slice aliases the arena; it is invalidated by AddClause, clause
// learning, and arena GC.
func (s *Solver) lits(ref uint32) []uint32 {
	hdr := s.arena[ref]
	base := litBase(ref, hdr)
	return s.arena[base : base+hdr&hdrSizeMask]
}

// clauseLBD reads the header LBD field.
func (s *Solver) clauseLBD(ref uint32) uint32 { return s.arena[ref] >> hdrLBDShift }

// setClauseLBD overwrites the header LBD field (saturating).
func (s *Solver) setClauseLBD(ref uint32, lbd uint32) {
	if lbd > hdrLBDMax {
		lbd = hdrLBDMax
	}
	s.arena[ref] = s.arena[ref]&(hdrSizeMask|hdrLearned|hdrDeleted) | lbd<<hdrLBDShift
}

// clauseAct reads a learned clause's activity.
func (s *Solver) clauseAct(ref uint32) float32 {
	return math.Float32frombits(s.arena[ref+1])
}

// setClauseAct writes a learned clause's activity.
func (s *Solver) setClauseAct(ref uint32, act float32) {
	s.arena[ref+1] = math.Float32bits(act)
}

// deleted reports whether the clause's storage is awaiting GC.
func (s *Solver) deleted(ref uint32) bool { return s.arena[ref]&hdrDeleted != 0 }

// newClause appends a clause (≥ 3 literals) to the arena and registers
// its watchers. Learned clauses carry an activity slot and LBD.
func (s *Solver) newClause(lits []Lit, learned bool, lbd uint32) uint32 {
	if len(lits) > int(hdrSizeMask) {
		panic("sat: clause exceeds maximum width")
	}
	need := 1 + len(lits)
	if learned {
		need++
	}
	if len(s.arena)+need > maxArenaWords {
		panic("sat: clause arena exhausted")
	}
	ref := uint32(len(s.arena))
	hdr := uint32(len(lits))
	if learned {
		if lbd > hdrLBDMax {
			lbd = hdrLBDMax
		}
		hdr |= hdrLearned | lbd<<hdrLBDShift
	}
	s.arena = append(s.arena, hdr)
	if learned {
		s.arena = append(s.arena, math.Float32bits(float32(s.clauseInc)))
	}
	for _, l := range lits {
		s.arena = append(s.arena, uint32(l))
	}
	if learned {
		s.learnts = append(s.learnts, ref)
		s.numLearned++
	} else {
		s.clauses = append(s.clauses, ref)
	}
	s.watchClause(ref)
	return ref
}

// watchClause registers the clause's first two literals in the watch
// lists, each blocking on the other.
func (s *Solver) watchClause(ref uint32) {
	w := s.lits(ref)
	l0, l1 := Lit(w[0]), Lit(w[1])
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{ref, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{ref, l0})
}

// markDeleted flags a learned clause for the next GC and accounts its
// storage as wasted. Watchers are purged in batch by cleanWatches.
func (s *Solver) markDeleted(ref uint32) {
	hdr := s.arena[ref]
	if hdr&hdrDeleted != 0 {
		return
	}
	s.arena[ref] = hdr | hdrDeleted
	s.wasted += int(clauseWords(hdr))
	if hdr&hdrLearned != 0 {
		s.numLearned--
	}
}

// cleanWatches removes every watcher whose clause was deleted. Called
// once per reduceDB batch so propagate never has to re-keep (or even
// see) stale entries, and the watcher invariant — each live clause
// watched exactly once under each watched literal, nothing else in any
// list — holds between reductions.
func (s *Solver) cleanWatches() {
	for i, ws := range s.watches {
		kept := ws[:0]
		for _, w := range ws {
			if !s.deleted(w.cref) {
				kept = append(kept, w)
			}
		}
		s.watches[i] = kept
	}
}

// maybeGC compacts the arena when the deleted fraction crosses the
// threshold.
func (s *Solver) maybeGC() {
	if s.wasted > 0 && float64(s.wasted) >= s.gcFrac*float64(len(s.arena)) {
		s.gcArena()
	}
}

// gcArena compacts live clauses into a fresh arena and remaps every
// clause reference: the problem and learnt lists, the watch lists
// (rebuilt from the compacted clauses, preserving the watched-literal
// pairs), and the trail reasons. Tagged binary reasons are untouched —
// binary clauses never lived in the arena. The protocol writes each
// moved clause's new cref into its old header word, which is safe
// because live references are only ever consulted after the owning
// clause has been moved.
func (s *Solver) gcArena() {
	s.ArenaGCs++
	old := s.arena
	s.arena = make([]uint32, 0, len(old)-s.wasted)

	move := func(ref uint32) uint32 {
		hdr := old[ref]
		n := clauseWords(hdr)
		newRef := uint32(len(s.arena))
		s.arena = append(s.arena, old[ref:ref+n]...)
		old[ref] = newRef // forwarding pointer for reason remapping
		return newRef
	}
	for i, ref := range s.clauses {
		s.clauses[i] = move(ref)
	}
	kept := s.learnts[:0]
	for _, ref := range s.learnts {
		if old[ref]&hdrDeleted != 0 {
			continue
		}
		kept = append(kept, move(ref))
	}
	s.learnts = kept
	// Remap reasons through the forwarding pointers. Only assigned
	// variables (the trail) can hold live reasons.
	for _, l := range s.trail {
		v := l.Var()
		if r := s.reason[v]; r != refUndef && !isBinRef(r) {
			s.reason[v] = old[r]
		}
	}
	// Rebuild the watch lists in clause order, keeping their capacity.
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for _, ref := range s.clauses {
		s.watchClause(ref)
	}
	for _, ref := range s.learnts {
		s.watchClause(ref)
	}
	s.wasted = 0
}
