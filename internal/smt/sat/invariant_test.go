package sat

import (
	"math/rand"
	"testing"
)

// checkWatches verifies the full watcher-list invariant:
//   - every live arena clause is watched exactly once under each of its
//     first two literals' negations, and nowhere else;
//   - no watch list contains an entry for a deleted clause (propagate
//     drops them, and reduceDB/gcArena purge them in batch);
//   - every binary clause appears symmetrically in the implication
//     lists: q in bins[p] iff p.Not()'s partner p appears in bins[q.Not()].
func checkWatches(t *testing.T, s *Solver) {
	t.Helper()
	type key struct {
		ref uint32
		lit Lit
	}
	want := map[key]int{}
	live := map[uint32]bool{}
	for _, list := range [][]uint32{s.clauses, s.learnts} {
		for _, ref := range list {
			if s.deleted(ref) {
				t.Fatalf("clause list contains deleted clause %d", ref)
			}
			live[ref] = true
			w := s.lits(ref)
			want[key{ref, Lit(w[0]).Not()}]++
			want[key{ref, Lit(w[1]).Not()}]++
		}
	}
	got := map[key]int{}
	for i, ws := range s.watches {
		for _, w := range ws {
			if s.deleted(w.cref) {
				t.Fatalf("watch list %d holds deleted clause %d", i, w.cref)
			}
			if !live[w.cref] {
				t.Fatalf("watch list %d holds unknown clause ref %d", i, w.cref)
			}
			got[key{w.cref, Lit(i)}]++
		}
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("clause %d watched %d times under %v, want %d", k.ref, got[k], k.lit, n)
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Fatalf("clause %d has %d stray watchers under %v", k.ref, n, k.lit)
		}
	}
	// Binary implication-list symmetry: clause {p.Not(), q} recorded as
	// q in bins[p] must also be recorded as p.Not() in bins[q.Not()].
	count := func(list []Lit, l Lit) int {
		n := 0
		for _, x := range list {
			if x == l {
				n++
			}
		}
		return n
	}
	for p := range s.bins {
		for _, q := range s.bins[p] {
			fwd := count(s.bins[p], q)
			rev := count(s.bins[q.Not()], Lit(p).Not())
			if fwd != rev {
				t.Fatalf("binary clause {%v, %v} asymmetric: %d forward vs %d reverse entries",
					Lit(p).Not(), q, fwd, rev)
			}
		}
	}
}

// TestWatcherInvariantAcrossReductionAndGC drives a solver hard enough
// (tiny reduceDB trigger, aggressive GC threshold) that learned clauses
// are deleted and the arena is compacted repeatedly, then asserts the
// watcher invariant after every Solve: no watcher may reference a
// deleted clause, none may be duplicated, and none may be lost. This
// pins the two propagate/reduceDB bug classes directly: re-keeping a
// watcher whose clause was deleted, and double-appending the conflict
// watcher when breaking out of the watch loop.
func TestWatcherInvariantAcrossReductionAndGC(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		nvars := 20 + r.Intn(15)
		s := New()
		s.SetMaxLearned(5)
		s.SetGCWasteFraction(0.01)
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		nclauses := nvars*4 + r.Intn(nvars*2)
		for i := 0; i < nclauses; i++ {
			w := 3 + r.Intn(3)
			var c []Lit
			for j := 0; j < w; j++ {
				c = append(c, MkLit(Var(r.Intn(nvars)), r.Intn(2) == 0))
			}
			if !s.AddClause(c...) {
				break
			}
		}
		for round := 0; round < 6 && s.Okay(); round++ {
			var asm []Lit
			for i := r.Intn(4); i > 0; i-- {
				asm = append(asm, MkLit(Var(r.Intn(nvars)), r.Intn(2) == 0))
			}
			s.Solve(asm...)
			checkWatches(t, s)
		}
		if s.DBReductions == 0 && seed == 0 {
			t.Log("warning: seed 0 triggered no reductions; invariant untested under deletion")
		}
	}
}

// TestIncrementalAssumptionStress hammers one solver with many
// assumption solves, interleaved clause additions, and checks model
// validity and watch invariants against a fresh-solver oracle.
func TestIncrementalAssumptionStress(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		nvars := 8 + r.Intn(8)
		s := New()
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		addRandomClauses := func(n int) bool {
			ok := true
			for i := 0; i < n; i++ {
				var c []Lit
				w := 2 + r.Intn(2)
				for j := 0; j < w; j++ {
					c = append(c, MkLit(Var(r.Intn(nvars)), r.Intn(2) == 0))
				}
				clauses = append(clauses, c)
				if !s.AddClause(c...) {
					ok = false
				}
			}
			return ok
		}
		if !addRandomClauses(15 + r.Intn(30)) {
			continue
		}
		for round := 0; round < 8; round++ {
			nasm := r.Intn(10)
			var asm []Lit
			for i := 0; i < nasm; i++ {
				asm = append(asm, MkLit(Var(r.Intn(nvars)), r.Intn(2) == 0))
			}
			st := s.Solve(asm...)
			checkWatches(t, s)
			// Oracle: fresh solver with clauses + assumptions as units.
			o := New()
			for i := 0; i < nvars; i++ {
				o.NewVar()
			}
			ok := true
			for _, c := range clauses {
				if !o.AddClause(c...) {
					ok = false
				}
			}
			for _, a := range asm {
				if !o.AddClause(a) {
					ok = false
				}
			}
			want := Unsat
			if ok {
				want = o.Solve()
			}
			if st != want {
				if st == Sat {
					for ci, c := range clauses {
						good := false
						for _, l := range c {
							if s.ValueLit(l) {
								good = true
							}
						}
						if !good {
							t.Logf("model violates clause %d %v", ci, c)
						}
					}
					for _, a := range asm {
						if !s.ValueLit(a) {
							t.Logf("model violates assumption %v", a)
						}
					}
				}
				t.Fatalf("seed %d round %d: incremental=%v oracle=%v (asm=%v)", seed, round, st, want, asm)
			}
			if st == Sat {
				// Model must satisfy all clauses and assumptions.
				for ci, c := range clauses {
					good := false
					for _, l := range c {
						if s.ValueLit(l) {
							good = true
						}
					}
					if !good {
						t.Fatalf("seed %d round %d: model violates clause %d %v", seed, round, ci, c)
					}
				}
				for _, a := range asm {
					if !s.ValueLit(a) {
						t.Fatalf("seed %d round %d: model violates assumption %v", seed, round, a)
					}
				}
			}
			if r.Intn(2) == 0 {
				if !addRandomClauses(1 + r.Intn(4)) {
					break
				}
			}
		}
	}
}
