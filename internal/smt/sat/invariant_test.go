package sat

import (
	"math/rand"
	"testing"
)

// checkWatches verifies every live clause with >= 2 literals is watched
// exactly once under each of its first two literals' negations.
func checkWatches(t *testing.T, s *Solver) {
	t.Helper()
	for ref, c := range s.clauses {
		if c == nil || len(c.lits) < 2 {
			continue
		}
		for slot := 0; slot < 2; slot++ {
			lit := c.lits[slot]
			count := 0
			for _, w := range s.watches[lit.Not()] {
				if w.cref == ref {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("clause %d (%v) watched %d times under %v", ref, c.lits, count, lit.Not())
			}
		}
	}
}

// TestIncrementalAssumptionStress hammers one solver with many
// assumption solves, interleaved clause additions, and checks model
// validity and watch invariants against a fresh-solver oracle.
func TestIncrementalAssumptionStress(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		nvars := 8 + r.Intn(8)
		s := New()
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		addRandomClauses := func(n int) bool {
			ok := true
			for i := 0; i < n; i++ {
				var c []Lit
				w := 2 + r.Intn(2)
				for j := 0; j < w; j++ {
					c = append(c, MkLit(Var(r.Intn(nvars)), r.Intn(2) == 0))
				}
				clauses = append(clauses, c)
				if !s.AddClause(c...) {
					ok = false
				}
			}
			return ok
		}
		if !addRandomClauses(15 + r.Intn(30)) {
			continue
		}
		for round := 0; round < 8; round++ {
			nasm := r.Intn(10)
			var asm []Lit
			for i := 0; i < nasm; i++ {
				asm = append(asm, MkLit(Var(r.Intn(nvars)), r.Intn(2) == 0))
			}
			st := s.Solve(asm...)
			checkWatches(t, s)
			// Oracle: fresh solver with clauses + assumptions as units.
			o := New()
			for i := 0; i < nvars; i++ {
				o.NewVar()
			}
			ok := true
			for _, c := range clauses {
				if !o.AddClause(c...) {
					ok = false
				}
			}
			for _, a := range asm {
				if !o.AddClause(a) {
					ok = false
				}
			}
			want := Unsat
			if ok {
				want = o.Solve()
			}
			if st != want {
				if st == Sat {
					for ci, c := range clauses {
						good := false
						for _, l := range c {
							if s.ValueLit(l) {
								good = true
							}
						}
						if !good {
							t.Logf("model violates clause %d %v", ci, c)
						}
					}
					for _, a := range asm {
						if !s.ValueLit(a) {
							t.Logf("model violates assumption %v", a)
						}
					}
				}
				t.Fatalf("seed %d round %d: incremental=%v oracle=%v (asm=%v)", seed, round, st, want, asm)
			}
			if st == Sat {
				// Model must satisfy all clauses and assumptions.
				for ci, c := range clauses {
					good := false
					for _, l := range c {
						if s.ValueLit(l) {
							good = true
						}
					}
					if !good {
						t.Fatalf("seed %d round %d: model violates clause %d %v", seed, round, ci, c)
					}
				}
				for _, a := range asm {
					if !s.ValueLit(a) {
						t.Fatalf("seed %d round %d: model violates assumption %v", seed, round, a)
					}
				}
			}
			if r.Intn(2) == 0 {
				if !addRandomClauses(1 + r.Intn(4)) {
					break
				}
			}
		}
	}
}
