package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lits(xs ...int) []Lit {
	out := make([]Lit, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = MkLit(Var(x-1), false)
		} else {
			out[i] = MkLit(Var(-x-1), true)
		}
	}
	return out
}

// newSolverWithVars allocates n variables.
func newSolverWithVars(n int) *Solver {
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return s
}

func TestLitEncoding(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.Neg() {
		t.Error("positive literal wrong")
	}
	nl := l.Not()
	if nl.Var() != 3 || !nl.Neg() {
		t.Error("negation wrong")
	}
	if nl.Not() != l {
		t.Error("double negation wrong")
	}
	if l.String() != "4" || nl.String() != "-4" {
		t.Errorf("String: %s %s", l, nl)
	}
}

func TestTrivialSat(t *testing.T) {
	s := newSolverWithVars(2)
	s.AddClause(lits(1, 2)...)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if !s.ValueLit(lits(1)[0]) && !s.ValueLit(lits(2)[0]) {
		t.Error("model does not satisfy clause")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := newSolverWithVars(1)
	s.AddClause(lits(1)...)
	if ok := s.AddClause(lits(-1)...); ok {
		t.Fatal("contradictory unit should report failure")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	s := newSolverWithVars(5)
	s.AddClause(lits(1)...)
	s.AddClause(lits(-1, 2)...)
	s.AddClause(lits(-2, 3)...)
	s.AddClause(lits(-3, 4)...)
	s.AddClause(lits(-4, 5)...)
	if s.Solve() != Sat {
		t.Fatal("chain should be sat")
	}
	for v := Var(0); v < 5; v++ {
		if !s.Value(v) {
			t.Errorf("var %d should be true", v+1)
		}
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := newSolverWithVars(1)
	if s.AddClause() {
		t.Fatal("empty clause should fail")
	}
	if s.Solve() != Unsat {
		t.Fatal("want unsat")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := newSolverWithVars(2)
	if !s.AddClause(lits(1, -1)...) {
		t.Fatal("tautology should succeed")
	}
	s.AddClause(lits(-2)...)
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
}

// pigeonhole encodes n+1 pigeons into n holes (classically unsat and
// requires real conflict analysis to finish quickly).
func pigeonhole(n int) *Solver {
	s := New()
	// vars[p][h]: pigeon p in hole h.
	vars := make([][]Var, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]Var, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		clause := make([]Lit, n)
		for h := 0; h < n; h++ {
			clause[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(clause...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := pigeonhole(n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d) = %v, want unsat", n, got)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// 3-color a 5-cycle (possible).
	s := New()
	const n, k = 5, 3
	vars := make([][]Var, n)
	for i := range vars {
		vars[i] = make([]Var, k)
		for j := range vars[i] {
			vars[i][j] = s.NewVar()
		}
	}
	for i := 0; i < n; i++ {
		cl := make([]Lit, k)
		for j := 0; j < k; j++ {
			cl[j] = MkLit(vars[i][j], false)
		}
		s.AddClause(cl...)
		for j := 0; j < k; j++ {
			next := (i + 1) % n
			s.AddClause(MkLit(vars[i][j], true), MkLit(vars[next][j], true))
		}
	}
	if s.Solve() != Sat {
		t.Fatal("5-cycle should be 3-colorable")
	}
	// Model check: adjacent vertices differ.
	color := make([]int, n)
	for i := 0; i < n; i++ {
		color[i] = -1
		for j := 0; j < k; j++ {
			if s.Value(vars[i][j]) {
				color[i] = j
				break
			}
		}
		if color[i] == -1 {
			t.Fatalf("vertex %d uncolored", i)
		}
	}
	for i := 0; i < n; i++ {
		if color[i] == color[(i+1)%n] {
			t.Fatalf("adjacent vertices share color %d", color[i])
		}
	}
}

func TestAssumptionsSatAndUnsat(t *testing.T) {
	s := newSolverWithVars(3)
	s.AddClause(lits(-1, 2)...)
	s.AddClause(lits(-2, 3)...)
	if s.Solve(lits(1)...) != Sat {
		t.Fatal("assuming x1 should be sat")
	}
	if !s.Value(2) {
		t.Error("x3 should be true under x1")
	}
	if s.Solve(lits(1, -3)...) != Unsat {
		t.Fatal("assuming x1 and !x3 should be unsat")
	}
	// Solver remains usable.
	if s.Solve(lits(-1)...) != Sat {
		t.Fatal("assuming !x1 should be sat")
	}
	if s.Solve() != Sat {
		t.Fatal("no assumptions should be sat")
	}
}

func TestUnsatCoreSubset(t *testing.T) {
	s := newSolverWithVars(4)
	s.AddClause(lits(-1, -2)...) // a1 ∧ a2 conflict
	// a3, a4 unrelated.
	asm := lits(1, 2, 3, 4)
	if s.Solve(asm...) != Unsat {
		t.Fatal("want unsat")
	}
	core := s.UnsatCore()
	if len(core) == 0 || len(core) > 2 {
		t.Fatalf("core size %d, want 1-2: %v", len(core), core)
	}
	inCore := map[Lit]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	if inCore[lits(3)[0]] || inCore[lits(4)[0]] {
		t.Errorf("irrelevant assumptions in core: %v", core)
	}
	// The core must itself be unsat.
	if s.Solve(core...) != Unsat {
		t.Error("core is not unsat")
	}
}

func TestUnsatCoreFromPropagatedConflict(t *testing.T) {
	s := newSolverWithVars(5)
	s.AddClause(lits(-1, 2)...)
	s.AddClause(lits(-2, 3)...)
	s.AddClause(lits(-4, -3)...) // x4 → !x3
	if s.Solve(lits(1, 4, 5)...) != Unsat {
		t.Fatal("want unsat")
	}
	core := s.UnsatCore()
	inCore := map[Lit]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	if inCore[lits(5)[0]] {
		t.Errorf("x5 should not be in core: %v", core)
	}
	if s.Solve(core...) != Unsat {
		t.Error("core is not unsat")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := newSolverWithVars(2)
	s.AddClause(lits(1, 2)...)
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
	s.AddClause(lits(-1)...)
	s.AddClause(lits(-2)...)
	if s.Solve() != Unsat {
		t.Fatal("want unsat after added clauses")
	}
}

// dpll is a tiny reference solver for differential testing.
func dpll(clauses [][]Lit, nvars int) bool {
	assign := make([]lbool, nvars)
	var rec func() bool
	rec = func() bool {
		// Find unit or unassigned.
		for {
			unitFound := false
			for _, c := range clauses {
				sat := false
				unassigned := -1
				count := 0
				for _, l := range c {
					switch assign[l.Var()] {
					case lUndef:
						count++
						unassigned = int(l.Var())
					case lTrue:
						if !l.Neg() {
							sat = true
						}
					case lFalse:
						if l.Neg() {
							sat = true
						}
					}
					if sat {
						break
					}
				}
				if sat {
					continue
				}
				if count == 0 {
					return false
				}
				if count == 1 {
					// Set the unit literal.
					for _, l := range c {
						if int(l.Var()) == unassigned {
							if l.Neg() {
								assign[l.Var()] = lFalse
							} else {
								assign[l.Var()] = lTrue
							}
						}
					}
					unitFound = true
				}
			}
			if !unitFound {
				break
			}
		}
		// Pick a variable.
		pick := -1
		for v := 0; v < nvars; v++ {
			if assign[v] == lUndef {
				pick = v
				break
			}
		}
		if pick == -1 {
			// Verify all clauses.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if (assign[l.Var()] == lTrue) != l.Neg() {
						sat = true
						break
					}
				}
				if !sat {
					return false
				}
			}
			return true
		}
		saved := append([]lbool(nil), assign...)
		assign[pick] = lTrue
		if rec() {
			return true
		}
		copy(assign, saved)
		assign[pick] = lFalse
		if rec() {
			return true
		}
		copy(assign, saved)
		return false
	}
	return rec()
}

// Property: CDCL agrees with reference DPLL on random 3-SAT instances.
func TestDifferentialRandom3SAT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nvars := 5 + r.Intn(8)
		nclauses := 10 + r.Intn(40)
		var clauses [][]Lit
		s := newSolverWithVars(nvars)
		ok := true
		for i := 0; i < nclauses; i++ {
			var c []Lit
			for j := 0; j < 3; j++ {
				v := Var(r.Intn(nvars))
				c = append(c, MkLit(v, r.Intn(2) == 0))
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				ok = false
			}
		}
		want := dpll(clauses, nvars)
		var got bool
		if !ok {
			got = false
		} else {
			got = s.Solve() == Sat
		}
		if got != want {
			t.Logf("seed %d: cdcl=%v dpll=%v", seed, got, want)
			return false
		}
		if got {
			// Model must satisfy all clauses.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.ValueLit(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Logf("seed %d: model violates clause", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: solving under assumptions equals solving with the assumptions
// added as unit clauses.
func TestDifferentialAssumptions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nvars := 4 + r.Intn(6)
		nclauses := 8 + r.Intn(25)
		var clauses [][]Lit
		for i := 0; i < nclauses; i++ {
			var c []Lit
			for j := 0; j < 3; j++ {
				c = append(c, MkLit(Var(r.Intn(nvars)), r.Intn(2) == 0))
			}
			clauses = append(clauses, c)
		}
		nasm := 1 + r.Intn(3)
		var asm []Lit
		for i := 0; i < nasm; i++ {
			asm = append(asm, MkLit(Var(r.Intn(nvars)), r.Intn(2) == 0))
		}

		s1 := newSolverWithVars(nvars)
		ok1 := true
		for _, c := range clauses {
			if !s1.AddClause(c...) {
				ok1 = false
			}
		}
		var got1 Status
		if !ok1 {
			got1 = Unsat
		} else {
			got1 = s1.Solve(asm...)
		}

		s2 := newSolverWithVars(nvars)
		ok2 := true
		for _, c := range clauses {
			if !s2.AddClause(c...) {
				ok2 = false
			}
		}
		for _, a := range asm {
			if !s2.AddClause(a) {
				ok2 = false
			}
		}
		var got2 Status
		if !ok2 {
			got2 = Unsat
		} else {
			got2 = s2.Solve()
		}
		return got1 == got2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolverReusableAfterManySolves(t *testing.T) {
	s := newSolverWithVars(10)
	for i := 0; i < 9; i++ {
		s.AddClause(MkLit(Var(i), true), MkLit(Var(i+1), false))
	}
	for iter := 0; iter < 50; iter++ {
		asm := MkLit(Var(iter%10), iter%2 == 0)
		if s.Solve(asm) != Sat {
			t.Fatalf("iter %d: want sat", iter)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestBinaryClausesBypassArena(t *testing.T) {
	s := newSolverWithVars(4)
	s.AddClause(lits(1, 2)...)
	s.AddClause(lits(-2, 3)...)
	s.AddClause(lits(-3, 4)...)
	if len(s.arena) != 0 || len(s.clauses) != 0 {
		t.Fatalf("binary clauses must not enter the arena (arena=%d words, %d clauses)",
			len(s.arena), len(s.clauses))
	}
	if s.Solve(lits(-1)...) != Sat {
		t.Fatal("want sat")
	}
	if s.BinaryProps == 0 {
		t.Error("binary propagation counter should advance")
	}
	for _, l := range lits(2, 3, 4) {
		if !s.ValueLit(l) {
			t.Errorf("%v should be forced by the binary chain", l)
		}
	}
}

func TestClauseHeaderRoundTrip(t *testing.T) {
	s := newSolverWithVars(6)
	ref := s.newClause(lits(1, 2, 3, 4), true, 7)
	if got := len(s.lits(ref)); got != 4 {
		t.Errorf("size = %d, want 4", got)
	}
	if got := s.clauseLBD(ref); got != 7 {
		t.Errorf("lbd = %d, want 7", got)
	}
	s.setClauseLBD(ref, hdrLBDMax+100)
	if got := s.clauseLBD(ref); got != hdrLBDMax {
		t.Errorf("lbd should saturate at %d, got %d", hdrLBDMax, got)
	}
	if got := len(s.lits(ref)); got != 4 {
		t.Errorf("size clobbered by setClauseLBD: %d", got)
	}
	s.setClauseAct(ref, 3.5)
	if got := s.clauseAct(ref); got != 3.5 {
		t.Errorf("activity = %v, want 3.5", got)
	}
	s.markDeleted(ref)
	if !s.deleted(ref) {
		t.Error("clause should be flagged deleted")
	}
	if s.wasted != 6 { // header + activity + 4 literals
		t.Errorf("wasted = %d words, want 6", s.wasted)
	}
}

func TestArenaGCCompactsAndPreservesAnswers(t *testing.T) {
	s := pigeonhole(6)
	s.SetMaxLearned(10)
	s.SetGCWasteFraction(0.05)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(6) = %v, want unsat", got)
	}
	if s.DBReductions == 0 {
		t.Error("tiny maxLearned should force reductions")
	}
	if s.ArenaGCs == 0 {
		t.Error("aggressive waste fraction should force arena GCs")
	}
	if s.wasted != 0 {
		// GC may legitimately leave waste below threshold, but the final
		// reduceDB triggers maybeGC at 5%; anything left must be small.
		if float64(s.wasted) >= 0.05*float64(len(s.arena)) {
			t.Errorf("wasted %d of %d words after GC", s.wasted, len(s.arena))
		}
	}
}

func TestSeedPhasesFromModel(t *testing.T) {
	s := newSolverWithVars(6)
	s.AddClause(lits(1, 2, 3)...)
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
	want := make([]bool, 6)
	for v := Var(0); v < 6; v++ {
		want[v] = s.Value(v)
	}
	s.SeedPhasesFromModel()
	for v := Var(0); v < 6; v++ {
		if s.phase[v] != want[v] {
			t.Errorf("phase[%d] = %v, want model value %v", v, s.phase[v], want[v])
		}
	}
}

func TestSetPhaseSteersFirstModel(t *testing.T) {
	s := newSolverWithVars(6)
	// Unconstrained variables default to false; seed them true.
	for v := Var(0); v < 6; v++ {
		s.SetPhase(v, true)
	}
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
	for v := Var(0); v < 6; v++ {
		if !s.Value(v) {
			t.Errorf("var %d should follow the seeded phase", v+1)
		}
	}
}

func TestOkayFlag(t *testing.T) {
	s := newSolverWithVars(1)
	if !s.Okay() {
		t.Error("fresh solver should be okay")
	}
	s.AddClause(lits(1)...)
	s.AddClause(lits(-1)...)
	if s.Okay() {
		t.Error("contradiction should clear okay")
	}
	if s.Solve() != Unsat {
		t.Error("not-okay solver must report unsat")
	}
}

func TestLevelZeroConflictPoisonsPermanently(t *testing.T) {
	// Regression for the incremental-reuse bug: a conflict at decision
	// level 0 must make every subsequent Solve return Unsat.
	s := newSolverWithVars(3)
	s.AddClause(lits(1, 2)...)
	s.AddClause(lits(1, -2)...)
	s.AddClause(lits(-1, 2)...)
	s.AddClause(lits(-1, -2)...)
	if s.Solve() != Unsat {
		t.Fatal("formula is unsat")
	}
	for i := 0; i < 3; i++ {
		if s.Solve(lits(3)...) != Unsat {
			t.Fatal("unsat formula must stay unsat under assumptions")
		}
		if s.Solve() != Unsat {
			t.Fatal("unsat formula must stay unsat")
		}
	}
}

func TestDuplicateAssumptionsExceedVarCount(t *testing.T) {
	// Regression: every assumption opens a decision level — even a
	// duplicate of one already on the trail (an empty level, kept for the
	// level↔assumption correspondence) — so the level count can exceed
	// the variable count. The per-level LBD stamp array is sized per
	// variable and used to index by level directly, which panicked here.
	// Weighted MaxSAT hits this for real: SolveWeighted expands weights
	// by duplicating soft literals, and warmStart assumes them all.
	s := pigeonhole(3)
	free := s.NewVar()
	asm := make([]Lit, 0, 40)
	for i := 0; i < 40; i++ {
		asm = append(asm, MkLit(free, false))
	}
	if got := s.Solve(asm...); got != Unsat {
		t.Fatalf("PHP(3) under duplicated free assumptions = %v, want unsat", got)
	}
}

func TestStatsAdvance(t *testing.T) {
	s := pigeonhole(4)
	s.Solve()
	if s.Conflicts == 0 || s.Decisions == 0 || s.Propagations == 0 {
		t.Errorf("stats should advance: conflicts=%d decisions=%d props=%d",
			s.Conflicts, s.Decisions, s.Propagations)
	}
}

func TestBudgetReturnsUnknown(t *testing.T) {
	s := pigeonhole(9)
	s.Budget = 5
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted solve = %v, want unknown", got)
	}
}
