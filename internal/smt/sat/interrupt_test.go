package sat

import (
	"testing"
	"time"
)

func TestInterruptStopsSolve(t *testing.T) {
	// PHP(12, 11) is exponentially hard for resolution: the solve
	// reliably outlives any test timeout, making it the canonical
	// interruption target (pigeonhole is the solver_test.go helper).
	s := pigeonhole(11)

	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(50 * time.Millisecond)
	s.Interrupt()

	select {
	case st := <-done:
		if st != Unknown {
			t.Fatalf("interrupted solve = %v, want unknown", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solver did not stop within 5s of Interrupt")
	}
	if !s.Interrupted() {
		t.Error("Interrupted() = false after Interrupt")
	}

	// The flag is sticky: further solves return immediately…
	t0 := time.Now()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("solve after interrupt = %v, want unknown", st)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("sticky interrupted solve took %v", d)
	}

	// …until cleared, after which the solver works again.
	s.ClearInterrupt()
	if s.Interrupted() {
		t.Error("Interrupted() = true after ClearInterrupt")
	}
	s2 := New()
	a := s2.NewVar()
	s2.AddClause(MkLit(a, false))
	if st := s2.Solve(); st != Sat {
		t.Fatalf("fresh solver = %v, want sat", st)
	}
}

func TestInterruptBeforeSolve(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.Interrupt()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("solve with pending interrupt = %v, want unknown", st)
	}
	s.ClearInterrupt()
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve after clear = %v, want sat", st)
	}
}
