package sat

// debugParanoid enables full-model verification before Sat returns.
var debugParanoid = false

// DebugParanoid toggles model verification (test helper).
func DebugParanoid(v bool) { debugParanoid = v }
