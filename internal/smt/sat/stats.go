package sat

// Stats are the solver's cumulative search counters. They are embedded
// in Solver (so s.Conflicts etc. read directly) and exported as a value
// through Snapshot for plumbing into ProblemStat, `cpr -stats`, and
// cprd's /statsz without holding a reference to the solver.
type Stats struct {
	// Conflicts, Decisions, and Propagations count the classic CDCL
	// search events.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	// BinaryProps counts propagations served from the specialized binary
	// implication lists (a subset of Propagations' enqueue work that
	// never touches the clause arena).
	BinaryProps int64
	// Restarts counts Luby restarts.
	Restarts int64
	// LearnedLits is the total number of literals across all learned
	// clauses (a proxy for learned-clause volume before deletion).
	LearnedLits int64
	// DBReductions counts reduceDB passes over the local learned tier.
	DBReductions int64
	// ArenaGCs counts arena compactions (garbage collections of deleted
	// clause storage with watcher/reason remapping).
	ArenaGCs int64
	// AssumpSolves counts Solve calls made under at least one assumption
	// — the unit of work of core-guided MaxSAT descents.
	AssumpSolves int64
	// CoresExtracted counts UNSAT cores computed from failed
	// assumptions (including probes made by MinimizeCore).
	CoresExtracted int64
	// TotalizerVars counts fresh variables materialized by incremental
	// totalizer encodings (bumped by the card package).
	TotalizerVars int64
	// HardenedSofts counts soft constraints promoted to hard unit
	// clauses by a MaxSAT driver's bound reasoning (stratified OLL).
	HardenedSofts int64
}

// Snapshot returns the current counters by value.
func (s *Solver) Snapshot() Stats { return s.Stats }

// Accumulate adds b's counters into a (used when one sub-problem makes
// several solver attempts).
func (a *Stats) Accumulate(b Stats) {
	a.Conflicts += b.Conflicts
	a.Decisions += b.Decisions
	a.Propagations += b.Propagations
	a.BinaryProps += b.BinaryProps
	a.Restarts += b.Restarts
	a.LearnedLits += b.LearnedLits
	a.DBReductions += b.DBReductions
	a.ArenaGCs += b.ArenaGCs
	a.AssumpSolves += b.AssumpSolves
	a.CoresExtracted += b.CoresExtracted
	a.TotalizerVars += b.TotalizerVars
	a.HardenedSofts += b.HardenedSofts
}
