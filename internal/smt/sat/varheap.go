package sat

// varHeap is an indexed binary max-heap of variables ordered by VSIDS
// activity. It supports insert, activity update, and pop-max; variables
// absent from the heap have position -1.
type varHeap struct {
	heap []Var
	pos  []int32 // var → index in heap, -1 if absent
}

func newVarHeap() *varHeap { return &varHeap{} }

// approxBytes estimates the heap's retained memory for ApproxBytes.
func (h *varHeap) approxBytes() int64 {
	return int64(cap(h.heap))*4 + int64(cap(h.pos))*4
}

func (h *varHeap) ensure(v Var) {
	if int(v) < len(h.pos) {
		return
	}
	if int(v) >= cap(h.pos) {
		c := 2*int(v) + 64
		h.pos = grow(h.pos, c)
		h.heap = grow(h.heap, c)
	}
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
}

// insert adds v if absent.
func (h *varHeap) insert(v Var, act []float64) {
	h.ensure(v)
	if h.pos[v] != -1 {
		return
	}
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.siftUp(int(h.pos[v]), act)
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v Var, act []float64) {
	h.ensure(v)
	if h.pos[v] == -1 {
		return
	}
	h.siftUp(int(h.pos[v]), act)
}

// popMax removes and returns the highest-activity variable.
func (h *varHeap) popMax(act []float64) (Var, bool) {
	if len(h.heap) == 0 {
		return -1, false
	}
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.siftDown(0, act)
	}
	return top, true
}

func (h *varHeap) siftUp(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if act[h.heap[parent]] >= act[v] {
			break
		}
		h.heap[i] = h.heap[parent]
		h.pos[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}

func (h *varHeap) siftDown(i int, act []float64) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && act[h.heap[right]] > act[h.heap[left]] {
			best = right
		}
		if act[v] >= act[h.heap[best]] {
			break
		}
		h.heap[i] = h.heap[best]
		h.pos[h.heap[i]] = int32(i)
		i = best
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}
