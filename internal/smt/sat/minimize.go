package sat

// MinimizeCore shrinks an assumption core by destructive probing: each
// literal is dropped in turn and the remainder re-solved under a small
// conflict budget; if the remainder is still unsatisfiable the literal
// was redundant and the (often smaller) probe core replaces the working
// set. Smaller cores matter to core-guided MaxSAT drivers — every
// literal removed here is one fewer totalizer input for the rest of the
// descent.
//
// Probes run on the live solver, so learned clauses persist and later
// probes get cheaper; the walk order, probe budget, and therefore the
// returned core are fully deterministic given the solver state. The
// caller's Budget field is saved and restored. A probe that exhausts
// its budget (or is interrupted) keeps the literal, so MinimizeCore
// never costs more than probes × budget conflicts and is always sound:
// the result is a subset of core whose conjunction with the clause
// database is still contradictory.
func (s *Solver) MinimizeCore(core []Lit, probeBudget int64) []Lit {
	if len(core) <= 1 {
		return core
	}
	saved := s.Budget
	s.Budget = probeBudget
	defer func() { s.Budget = saved }()

	work := append([]Lit(nil), core...)
	for i := 0; i < len(work) && len(work) > 1; {
		probe := make([]Lit, 0, len(work)-1)
		probe = append(probe, work[:i]...)
		probe = append(probe, work[i+1:]...)
		if s.Solve(probe...) != Unsat {
			i++
			continue
		}
		// Still contradictory without work[i]; adopt the probe's own
		// core, which may have shed more than one literal. Preserve the
		// original ordering for determinism of downstream encodings.
		in := make(map[Lit]bool, len(s.core))
		for _, l := range s.core {
			in[l] = true
		}
		next := work[:0]
		for _, l := range probe {
			if in[l] {
				next = append(next, l)
			}
		}
		if len(next) == 0 {
			// The probe proved the hard clauses alone contradictory;
			// report the empty core.
			return nil
		}
		// Single pass: i is not reset, so the probe count is bounded by
		// the core size plus the literals dropped.
		work = next
	}
	return work
}
