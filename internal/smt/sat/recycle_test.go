package sat

import (
	"testing"
	"time"
)

// These tests pin the solver-recycle contract the fault-isolated repair
// driver relies on: a solver whose search was stopped mid-flight — by a
// sticky Interrupt or an exhausted conflict Budget — must come back
// clean, so the next solve on the same instance cannot be poisoned by
// leftover trail, decision levels, or a stale stop flag.

func TestSolverReuseAfterMidSolveInterrupt(t *testing.T) {
	// PHP(12, 11) keeps the search running long enough to interrupt it
	// genuinely mid-flight (vars: pigeon p in hole h is Var(p*11+h)).
	const holes = 11
	s := pigeonhole(holes)

	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(30 * time.Millisecond)
	s.Interrupt()
	select {
	case st := <-done:
		if st != Unknown {
			t.Fatalf("interrupted solve = %v, want unknown", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solver did not honor Interrupt within 5s")
	}

	s.ClearInterrupt()
	if s.Interrupted() {
		t.Fatal("Interrupted() = true after ClearInterrupt")
	}
	if lvl := s.decisionLevel(); lvl != 0 {
		t.Fatalf("decision level = %d after interrupted solve, want 0 (clean backtrack)", lvl)
	}
	if !s.Okay() {
		t.Fatal("interrupted solve marked the solver unsat")
	}

	// Pigeon 0 must sit in some hole: assuming it sits in none
	// contradicts its at-least-one clause. A cleanly recycled solver
	// proves that by propagation; a poisoned one would wedge or lie.
	neg := make([]Lit, holes)
	for h := 0; h < holes; h++ {
		neg[h] = MkLit(Var(h), true)
	}
	if st := s.Solve(neg...); st != Unsat {
		t.Fatalf("conflicting assumptions on recycled solver = %v, want unsat", st)
	}
	// Assumption-scoped unsat must not stick to the solver either.
	if !s.Okay() {
		t.Fatal("assumption unsat marked the solver permanently unsat")
	}
	if lvl := s.decisionLevel(); lvl != 0 {
		t.Fatalf("decision level = %d after assumption solve, want 0", lvl)
	}
}

func TestSolverReuseProducesVerifiedModel(t *testing.T) {
	s := New()
	vars := make([]Var, 6)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	clauses := [][]Lit{
		{MkLit(vars[0], false), MkLit(vars[1], false)},
		{MkLit(vars[0], true), MkLit(vars[2], false)},
		{MkLit(vars[1], true), MkLit(vars[3], false)},
		{MkLit(vars[2], true), MkLit(vars[4], true), MkLit(vars[5], false)},
		{MkLit(vars[3], true), MkLit(vars[4], false)},
		{MkLit(vars[5], true), MkLit(vars[0], false), MkLit(vars[4], false)},
	}
	for _, c := range clauses {
		if !s.AddClause(c...) {
			t.Fatal("clause set unexpectedly trivially unsat")
		}
	}

	// A pending interrupt aborts the first solve (the spurious-interrupt
	// failure the chaos suite injects)…
	s.Interrupt()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("solve with pending interrupt = %v, want unknown", st)
	}
	// …and after clearing, the same solver must return a model that
	// satisfies every clause.
	s.ClearInterrupt()
	if st := s.Solve(); st != Sat {
		t.Fatalf("recycled solve = %v, want sat", st)
	}
	for i, c := range clauses {
		ok := false
		for _, l := range c {
			if s.ValueLit(l) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("model falsifies clause %d", i)
		}
	}
}

func TestSolverReuseAfterBudgetExhaustion(t *testing.T) {
	s := pigeonhole(6)
	s.Budget = 5
	if st := s.Solve(); st != Unknown {
		t.Fatalf("budgeted PHP(7) solve = %v, want unknown (budget exhausted)", st)
	}
	// Budget exhaustion is not an interrupt: the caller distinguishes the
	// two to decide between retrying with a bigger budget and giving up.
	if s.Interrupted() {
		t.Fatal("budget exhaustion set the interrupt flag")
	}
	if lvl := s.decisionLevel(); lvl != 0 {
		t.Fatalf("decision level = %d after budget exhaustion, want 0", lvl)
	}
	// Lifting the budget on the same solver (learned clauses retained)
	// must reach the true verdict.
	s.Budget = 0
	if st := s.Solve(); st != Unsat {
		t.Fatalf("unbudgeted re-solve = %v, want unsat", st)
	}
	// A root-level unsat IS sticky — further solves answer immediately.
	if st := s.Solve(); st != Unsat {
		t.Fatalf("solve after unsat = %v, want unsat", st)
	}
}
