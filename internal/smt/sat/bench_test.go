package sat

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the solver core, tracked by CI's bench-smoke job
// alongside the end-to-end repair benchmarks. Each covers one hot path
// of the arena redesign: conflict-heavy search (pigeonhole), incremental
// assumption solving (the MaxSMT access pattern), and learned-clause
// management with aggressive reduceDB/GC settings.

// randomCNF adds a width-3 instance near the satisfiability threshold.
func randomCNF(s *Solver, rng *rand.Rand, nVars, nClauses int) {
	vars := make([]Var, nVars)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i < nClauses; i++ {
		var c [3]Lit
		for j := 0; j < 3; {
			v := vars[rng.Intn(nVars)]
			dup := false
			for k := 0; k < j; k++ {
				if c[k].Var() == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			c[j] = MkLit(v, rng.Intn(2) == 1)
			j++
		}
		s.AddClause(c[0], c[1], c[2])
	}
}

// BenchmarkSATPigeonhole is conflict-heavy UNSAT search: clause learning,
// analysis, and watcher traversal dominate.
func BenchmarkSATPigeonhole(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := pigeonhole(7)
		if s.Solve() != Unsat {
			b.Fatal("PHP(7) must be unsat")
		}
	}
}

// BenchmarkSATIncrementalAssumptions mirrors how maxsat drives the
// solver: one clause database, many solves under shifting assumptions.
func BenchmarkSATIncrementalAssumptions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(42))
		s := New()
		randomCNF(s, rng, 120, 500)
		for round := 0; round < 30; round++ {
			asm := make([]Lit, 8)
			for j := range asm {
				asm[j] = MkLit(Var(rng.Intn(120)), rng.Intn(2) == 1)
			}
			if s.Solve(asm...) == Unknown {
				b.Fatal("unexpected Unknown")
			}
		}
	}
}

// BenchmarkSATReduceAndGC forces constant learned-clause deletion and
// arena compaction, measuring reduceDB, watcher cleaning, and gcArena.
func BenchmarkSATReduceAndGC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := pigeonhole(6)
		s.SetMaxLearned(20)
		s.SetGCWasteFraction(0.05)
		if s.Solve() != Unsat {
			b.Fatal("PHP(6) must be unsat")
		}
		if s.ArenaGCs == 0 {
			b.Fatal("benchmark no longer exercises the GC path")
		}
	}
}
