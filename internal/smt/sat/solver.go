// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver: arena-backed clause storage with specialized binary implication
// lists, two-watched-literal propagation with blocking literals, 1UIP
// conflict analysis with recursive clause minimization, VSIDS branching
// with phase saving, Luby restarts, two-tier LBD-based learned-clause
// management, incremental solving under assumptions, and unsat-core
// extraction.
//
// It is the satisfiability substrate beneath CPR's MaxSMT formulation
// (the paper uses Z3; see DESIGN.md for the substitution argument).
package sat

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Var is a boolean variable index (0-based).
type Var int32

// Lit is a literal: variable 2*v for the positive literal, 2*v+1 for the
// negation.
type Lit int32

// MkLit builds a literal from a variable and a sign (true = negated).
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as ±(var+1), DIMACS style.
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Status is a solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// coreLBD is the Glucose "core tier" threshold: learned clauses whose
// LBD is at most this are kept forever, never offered to reduceDB.
const coreLBD = 3

// watcher pairs a clause reference with a blocker literal for fast
// propagation: if the blocker is already true the clause is satisfied
// and the arena is never touched.
type watcher struct {
	cref    uint32
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	Stats // cumulative search counters, promoted (s.Conflicts etc.)

	// Clause storage (see arena.go for the layout).
	arena   []uint32
	clauses []uint32 // problem clause refs (≥3 literals)
	learnts []uint32 // live learned clause refs (≥3 literals)
	wasted  int      // arena words held by deleted clauses
	gcFrac  float64  // wasted/len(arena) fraction that triggers gcArena

	// bins[p] lists, for every binary clause {p.Not(), q}, the literal q
	// that becomes forced when p is assigned true. Binary propagation
	// walks these flat lists and never touches the arena.
	bins    [][]Lit
	watches [][]watcher

	assigns  []lbool
	phase    []bool // saved phases
	level    []int32
	reason   []uint32 // arena cref, tagged binary ref, or refUndef
	trail    []Lit
	trailLim []int32 // decision-level boundaries in trail
	qhead    int

	// binConfl holds the two (false) literals of a conflicting binary
	// clause when propagate returns refBinConfl.
	binConfl [2]Lit

	activity []float64
	varInc   float64
	order    *varHeap

	seen []bool

	// lbdStamp[level] == lbdGen marks levels already counted by the
	// current LBD computation (one array pass, no clearing).
	lbdStamp []uint64
	lbdGen   uint64

	// litStamp[lit] == addGen marks literals already seen by the current
	// AddClause call (replaces a per-call map).
	litStamp []uint64
	addGen   uint64

	// Reused scratch buffers (valid only within one call).
	addBuf     []Lit
	learnedBuf []Lit
	clearBuf   []Lit
	reduceBuf  []uint32

	ok          bool
	model       []lbool // snapshot of the last satisfying assignment
	numLearned  int     // live arena learnts (binaries are permanent)
	maxLearned  int
	clauseInc   float64
	assumptions []Lit
	core        []Lit

	// Budget limits Solve to roughly this many conflicts (0 = unlimited);
	// exceeded budgets return Unknown.
	Budget int64

	// stop is the asynchronous interruption flag (see Interrupt). It is
	// the only solver field safe to touch from another goroutine.
	stop atomic.Bool
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		ok:         true,
		varInc:     1.0,
		clauseInc:  1.0,
		maxLearned: 4000,
		gcFrac:     0.25,
		lbdStamp:   make([]uint64, 1), // level 0
		order:      newVarHeap(),
	}
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// SetPhase sets the variable's initial branching polarity (overwritten
// later by phase saving). Seeding phases with a known near-solution
// steers the first model toward it — CPR seeds the original network
// state so the initial MaxSAT upper bound is small.
func (s *Solver) SetPhase(v Var, val bool) { s.phase[v] = val }

// SeedPhasesFromModel copies the last satisfying assignment into the
// saved phases, so the next Solve call starts its search from that
// model. MaxSAT bound-tightening loops use this to warm-start each
// iteration from the previous optimum instead of restarting cold.
func (s *Solver) SeedPhasesFromModel() {
	n := len(s.model)
	if n > len(s.phase) {
		n = len(s.phase)
	}
	for v := 0; v < n; v++ {
		s.phase[v] = s.model[v] == lTrue
	}
}

// ModelPhases returns the last satisfying assignment as a polarity
// vector indexed by variable, for cross-solver warm starts: a retained
// session solver's model can seed a freshly built solver for the same
// sub-problem via SeedPhases. Returns nil when no model is available.
func (s *Solver) ModelPhases() []bool {
	if len(s.model) == 0 {
		return nil
	}
	out := make([]bool, len(s.model))
	for v := range s.model {
		out[v] = s.model[v] == lTrue
	}
	return out
}

// SeedPhases overlays an externally captured polarity vector (see
// ModelPhases) onto the saved phases, index-aligned and truncated to
// the shorter of the two. The counterpart of SeedPhasesFromModel for
// models that came from a different solver instance.
func (s *Solver) SeedPhases(vals []bool) {
	n := len(vals)
	if n > len(s.phase) {
		n = len(s.phase)
	}
	copy(s.phase[:n], vals[:n])
}

// ApproxBytes estimates the heap retained by the solver: the clause
// arena, watch and binary-implication lists, and every per-variable
// array. Session caches report this per retained solver in /statsz so
// long-lived incremental sessions have observable memory accounting.
func (s *Solver) ApproxBytes() int64 {
	n := int64(cap(s.arena)+cap(s.clauses)+cap(s.learnts)+cap(s.reduceBuf)) * 4
	for _, b := range s.bins {
		n += int64(cap(b)) * 4
	}
	n += int64(cap(s.bins)) * 24
	for _, w := range s.watches {
		n += int64(cap(w)) * 8
	}
	n += int64(cap(s.watches)) * 24
	n += int64(cap(s.assigns) + cap(s.phase) + cap(s.seen))         // byte-sized
	n += int64(cap(s.level)+cap(s.reason)) * 4                      // 32-bit
	n += int64(cap(s.trail)+cap(s.trailLim)+cap(s.model)) * 4       // 32-bit
	n += int64(cap(s.activity)+cap(s.lbdStamp)+cap(s.litStamp)) * 8 // 64-bit
	n += int64(cap(s.addBuf)+cap(s.learnedBuf)+cap(s.clearBuf)+cap(s.assumptions)+cap(s.core)) * 4
	if s.order != nil {
		n += s.order.approxBytes()
	}
	return n
}

// SetMaxLearned overrides the live learned-clause count that triggers
// the next reduceDB pass (default 4000). Exposed so stress tests can
// force reductions and arena GCs on small instances.
func (s *Solver) SetMaxLearned(n int) { s.maxLearned = n }

// SetGCWasteFraction overrides the deleted-storage fraction of the
// arena that triggers compaction (default 0.25).
func (s *Solver) SetGCWasteFraction(f float64) { s.gcFrac = f }

// grow reallocates xs with capacity c (used by NewVar to resize every
// per-variable array in one step instead of letting each append grow
// incrementally — encoders allocate tens of thousands of variables one
// at a time).
func grow[T any](xs []T, c int) []T {
	out := make([]T, len(xs), c)
	copy(out, xs)
	return out
}

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	if len(s.assigns) == cap(s.assigns) {
		c := 2*len(s.assigns) + 64
		s.assigns = grow(s.assigns, c)
		s.phase = grow(s.phase, c)
		s.level = grow(s.level, c)
		s.reason = grow(s.reason, c)
		s.activity = grow(s.activity, c)
		s.seen = grow(s.seen, c)
		s.watches = grow(s.watches, 2*c)
		s.bins = grow(s.bins, 2*c)
		s.litStamp = grow(s.litStamp, 2*c)
		s.lbdStamp = grow(s.lbdStamp, c+1)
	}
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, refUndef)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.bins = append(s.bins, nil, nil)
	s.litStamp = append(s.litStamp, 0, 0)
	s.lbdStamp = append(s.lbdStamp, 0) // one more possible decision level
	s.order.insert(v, s.activity)
	return v
}

// value returns the literal's current assignment.
func (s *Solver) value(l Lit) lbool {
	a := s.assigns[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// Value returns the variable's value in the model after a Sat result.
func (s *Solver) Value(v Var) bool { return s.model[v] == lTrue }

// ValueLit returns the literal's truth value in the model.
func (s *Solver) ValueLit(l Lit) bool {
	if l.Neg() {
		return s.model[l.Var()] == lFalse
	}
	return s.model[l.Var()] == lTrue
}

// AddClause adds a clause. Returns false if the formula became trivially
// unsatisfiable. Clauses may only be added at decision level 0 (i.e.
// between Solve calls).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Normalize: drop duplicate and false literals; detect tautologies and
	// satisfied clauses. The literal stamp array replaces a per-call map.
	s.addGen++
	g := s.addGen
	out := s.addBuf[:0]
	for _, l := range lits {
		if int(l.Var()) >= len(s.assigns) {
			panic("sat: literal references unallocated variable")
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		if s.litStamp[l] == g {
			continue
		}
		if s.litStamp[l.Not()] == g {
			return true // tautology
		}
		s.litStamp[l] = g
		out = append(out, l)
	}
	s.addBuf = out[:0]
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], refUndef) {
			s.ok = false
			return false
		}
		if s.propagate() != refUndef {
			s.ok = false
			return false
		}
		return true
	case 2:
		s.addBinary(out[0], out[1])
		return true
	}
	s.newClause(out, false, 0)
	return true
}

// addBinary records the binary clause {a, b} in the implication lists:
// when either literal's negation becomes true, the other is forced.
func (s *Solver) addBinary(a, b Lit) {
	s.bins[a.Not()] = append(s.bins[a.Not()], b)
	s.bins[b.Not()] = append(s.bins[b.Not()], a)
}

// enqueue assigns literal l with the given reason reference.
func (s *Solver) enqueue(l Lit, from uint32) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; returns a conflicting clause
// reference (refBinConfl for a binary conflict, with the literals in
// binConfl) or refUndef.
func (s *Solver) propagate() uint32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++

		// Binary implications first: each q in bins[p] is forced by the
		// clause {p.Not(), q}. This is a flat list walk — no watcher
		// bookkeeping and no arena access.
		for _, q := range s.bins[p] {
			switch s.value(q) {
			case lFalse:
				s.binConfl[0] = p.Not()
				s.binConfl[1] = q
				s.qhead = len(s.trail)
				return refBinConfl
			case lUndef:
				s.BinaryProps++
				s.enqueue(q, mkBinRef(p.Not()))
			}
		}

		ws := s.watches[p]
		kept := ws[:0]
		conflict := refUndef
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			hdr := s.arena[w.cref]
			if hdr&hdrDeleted != 0 {
				continue // drop watcher of a deleted clause
			}
			base := litBase(w.cref, hdr)
			// Ensure the clause's first literal is the other watched one.
			if Lit(s.arena[base]) == p.Not() {
				s.arena[base], s.arena[base+1] = s.arena[base+1], s.arena[base]
			}
			first := Lit(s.arena[base])
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Look for a new literal to watch.
			n := hdr & hdrSizeMask
			found := false
			for k := uint32(2); k < n; k++ {
				if s.value(Lit(s.arena[base+k])) != lFalse {
					s.arena[base+1], s.arena[base+k] = s.arena[base+k], s.arena[base+1]
					nl := Lit(s.arena[base+1])
					s.watches[nl.Not()] = append(s.watches[nl.Not()], watcher{w.cref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting: keep the watcher (once).
			kept = append(kept, watcher{w.cref, first})
			if s.value(first) == lFalse {
				conflict = w.cref
				s.qhead = len(s.trail)
				kept = append(kept, ws[i+1:]...)
				break
			}
			s.enqueue(first, w.cref)
		}
		s.watches[p] = kept
		if conflict != refUndef {
			return conflict
		}
	}
	return refUndef
}

// decisionLevel is the current number of decisions on the trail.
func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// newDecisionLevel marks a decision boundary.
func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := int(s.trailLim[lvl])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = refUndef
		s.order.insert(v, s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// bumpVar increases a variable's VSIDS activity.
func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, s.activity)
}

// ensureLBDStamp grows the per-level stamp array to cover lvl. NewVar
// reserves one slot per variable, but duplicate assumption literals each
// open their own (empty) decision level, so the level count can exceed
// the variable count.
func (s *Solver) ensureLBDStamp(lvl int32) {
	for int32(len(s.lbdStamp)) <= lvl {
		s.lbdStamp = append(s.lbdStamp, 0)
	}
}

// computeLBDLits returns the literals-block-distance of a clause given
// as a literal slice: the number of distinct non-zero decision levels
// among its (assigned) literals. Lower is better (Audemard & Simon).
func (s *Solver) computeLBDLits(lits []Lit) uint32 {
	s.lbdGen++
	g := s.lbdGen
	var lbd uint32
	for _, l := range lits {
		lvl := s.level[l.Var()]
		if lvl == 0 {
			continue
		}
		s.ensureLBDStamp(lvl)
		if s.lbdStamp[lvl] != g {
			s.lbdStamp[lvl] = g
			lbd++
		}
	}
	return lbd
}

// computeLBDRef is computeLBDLits over an arena clause.
func (s *Solver) computeLBDRef(ref uint32) uint32 {
	s.lbdGen++
	g := s.lbdGen
	var lbd uint32
	for _, w := range s.lits(ref) {
		lvl := s.level[Lit(w).Var()]
		if lvl == 0 {
			continue
		}
		s.ensureLBDStamp(lvl)
		if s.lbdStamp[lvl] != g {
			s.lbdStamp[lvl] = g
			lbd++
		}
	}
	return lbd
}

// analyze performs 1UIP conflict analysis, returning the learned clause
// (first literal is the asserting one) and the backtrack level. The
// returned slice aliases an internal buffer valid until the next call.
func (s *Solver) analyze(conflictRef uint32) ([]Lit, int) {
	learned := append(s.learnedBuf[:0], 0) // placeholder for asserting literal
	counter := 0
	p := Lit(-1)
	idx := len(s.trail) - 1
	cref := conflictRef

	visit := func(q Lit) {
		v := q.Var()
		if s.seen[v] || s.level[v] == 0 {
			return
		}
		s.seen[v] = true
		s.bumpVar(v)
		if int(s.level[v]) >= s.decisionLevel() {
			counter++
		} else {
			learned = append(learned, q)
		}
	}
	for {
		switch {
		case cref == refBinConfl:
			visit(s.binConfl[0])
			visit(s.binConfl[1])
		case isBinRef(cref):
			// Binary reason of p: the clause {p, other}.
			visit(binRefOther(cref))
		default:
			hdr := s.arena[cref]
			if hdr&hdrLearned != 0 {
				s.bumpClause(cref)
				// Glucose: refresh the LBD of reused learned clauses.
				if lbd := s.computeLBDRef(cref); lbd < s.clauseLBD(cref) {
					s.setClauseLBD(cref, lbd)
				}
			}
			base := litBase(cref, hdr)
			start := uint32(0)
			if p != Lit(-1) {
				start = 1 // lits[0] is the implied literal p
			}
			for k := start; k < hdr&hdrSizeMask; k++ {
				visit(Lit(s.arena[base+k]))
			}
		}
		// Find next literal to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		cref = s.reason[p.Var()]
		s.seen[p.Var()] = false
		idx--
		counter--
		if counter <= 0 {
			break
		}
		// Re-orient: when expanding an arena reason clause, move the
		// implied literal (equal to p) first so start=1 skips it.
		if !isBinRef(cref) {
			w := s.lits(cref)
			if Lit(w[0]) != p {
				for k := 1; k < len(w); k++ {
					if Lit(w[k]) == p {
						w[0], w[k] = w[k], w[0]
						break
					}
				}
			}
		}
	}
	learned[0] = p.Not()

	// Clause minimization: drop literals implied by the rest. Keep the
	// pre-minimization set for seen-flag cleanup: literals removed here
	// must not leave stale marks for future analyses.
	toClear := append(s.clearBuf[:0], learned...)
	s.clearBuf = toClear
	for _, l := range learned {
		s.seen[l.Var()] = true
	}
	out := learned[:1]
	for _, l := range learned[1:] {
		if !s.redundant(l) {
			out = append(out, l)
		}
	}
	learned = out

	// Compute backtrack level: second-highest level in clause.
	btLevel := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].Var()] > s.level[learned[maxI].Var()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		btLevel = int(s.level[learned[1].Var()])
	}
	for _, l := range toClear {
		s.seen[l.Var()] = false
	}
	s.learnedBuf = learned
	return learned, btLevel
}

// redundant reports whether literal l in a learned clause is implied by
// the remaining marked literals (simple non-recursive minimization: l is
// redundant if every literal of its reason clause is already marked or at
// level 0).
func (s *Solver) redundant(l Lit) bool {
	ref := s.reason[l.Var()]
	if ref == refUndef {
		return false
	}
	if isBinRef(ref) {
		q := binRefOther(ref)
		return s.seen[q.Var()] || s.level[q.Var()] == 0
	}
	for _, w := range s.lits(ref) {
		q := Lit(w)
		if q.Var() == l.Var() {
			continue
		}
		if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
			return false
		}
	}
	return true
}

// bumpClause increases a learned clause's activity.
func (s *Solver) bumpClause(ref uint32) {
	act := s.clauseAct(ref) + float32(s.clauseInc)
	s.setClauseAct(ref, act)
	if act > 1e20 {
		for _, r := range s.learnts {
			s.setClauseAct(r, s.clauseAct(r)*1e-20)
		}
		s.clauseInc *= 1e-20
	}
}

// reduceDB deletes roughly half of the local learned tier. The core
// tier (LBD ≤ coreLBD) and reason clauses are kept forever; the rest
// are ranked worst-first by LBD (descending), then activity
// (ascending), with the clause ref as a final deterministic tiebreak.
// Deleted clauses are purged from the watch lists in one batch and
// their storage reclaimed by the next arena GC.
func (s *Solver) reduceDB() {
	s.DBReductions++
	cand := s.reduceBuf[:0]
	for _, ref := range s.learnts {
		if s.clauseLBD(ref) > coreLBD && !s.isReason(ref) {
			cand = append(cand, ref)
		}
	}
	s.reduceBuf = cand[:0]
	if len(cand) == 0 {
		s.maybeGC()
		return
	}
	sort.Slice(cand, func(i, j int) bool {
		a, b := cand[i], cand[j]
		la, lb := s.clauseLBD(a), s.clauseLBD(b)
		if la != lb {
			return la > lb
		}
		aa, ab := s.clauseAct(a), s.clauseAct(b)
		if aa != ab {
			return aa < ab
		}
		return a < b
	})
	for _, ref := range cand[:len(cand)/2] {
		s.markDeleted(ref)
	}
	kept := s.learnts[:0]
	for _, ref := range s.learnts {
		if !s.deleted(ref) {
			kept = append(kept, ref)
		}
	}
	s.learnts = kept
	s.cleanWatches()
	s.maybeGC()
}

// isReason reports whether the clause is the reason of a trail literal.
func (s *Solver) isReason(ref uint32) bool {
	w := s.lits(ref)
	if len(w) == 0 {
		return false
	}
	v := Lit(w[0]).Var()
	return s.assigns[v] != lUndef && s.reason[v] == ref
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// After Unsat, UnsatCore returns the subset of assumptions used; after
// Sat, Value/ValueLit expose the model.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if faultinject.Enabled() {
		// Chaos injection sites: a crash inside the search, a spurious
		// asynchronous interruption, and an instantly exhausted conflict
		// budget. All are no-ops unless armed (see internal/faultinject).
		faultinject.Eval(faultinject.SATSolvePanic)
		if faultinject.Eval(faultinject.SATSpuriousInterrupt) != nil {
			s.stop.Store(true)
		}
		if faultinject.Eval(faultinject.SATBudgetStarve) != nil {
			return Unknown
		}
	}
	if len(assumptions) > 0 {
		s.AssumpSolves++
	}
	if !s.ok {
		s.core = nil
		return Unsat
	}
	s.assumptions = assumptions
	s.core = nil
	defer s.cancelUntil(0)

	var restarts int64
	conflictBudget := luby(1) * 100
	conflictsHere := int64(0)
	startConflicts := s.Conflicts

	for {
		if s.stop.Load() {
			return Unknown
		}
		if s.Budget > 0 && s.Conflicts-startConflicts > s.Budget {
			return Unknown
		}
		conflictRef := s.propagate()
		if conflictRef != refUndef {
			s.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				// Conflict with no decisions at all: the formula is
				// permanently unsatisfiable. Marking ok=false matters for
				// incremental reuse — the conflict aborted propagation
				// mid-queue, so the level-0 trail may be missing
				// implications forever after.
				s.ok = false
				s.core = nil
				return Unsat
			}
			if s.decisionLevel() <= len(s.assumptionsOnTrail()) {
				// Conflict under assumptions only: extract core.
				s.analyzeFinal(conflictRef)
				return Unsat
			}
			learned, btLevel := s.analyze(conflictRef)
			lbd := s.computeLBDLits(learned)
			s.cancelUntil(btLevel)
			s.LearnedLits += int64(len(learned))
			switch len(learned) {
			case 1:
				if !s.enqueue(learned[0], refUndef) {
					s.ok = false
					return Unsat
				}
			case 2:
				s.addBinary(learned[0], learned[1])
				s.enqueue(learned[0], mkBinRef(learned[1]))
			default:
				ref := s.newClause(learned, true, lbd)
				s.enqueue(learned[0], ref)
			}
			s.varInc /= 0.95
			s.clauseInc /= 0.999
			if s.numLearned > s.maxLearned {
				s.reduceDB()
				s.maxLearned += s.maxLearned / 10
			}
			continue
		}
		if conflictsHere >= conflictBudget {
			// Restart.
			restarts++
			s.Restarts++
			conflictBudget = luby(restarts+1) * 100
			conflictsHere = 0
			s.cancelUntil(0)
			continue
		}
		// Extend with the next assumption, or decide.
		lvl := s.decisionLevel()
		if lvl < len(s.assumptions) {
			a := s.assumptions[lvl]
			switch s.value(a) {
			case lTrue:
				// Already satisfied; open an empty level to keep the
				// level↔assumption correspondence.
				s.newDecisionLevel()
				continue
			case lFalse:
				// Assumption conflicts with current state.
				s.coreFromFailedAssumption(a)
				return Unsat
			}
			s.newDecisionLevel()
			s.enqueue(a, refUndef)
			continue
		}
		v := s.pickBranchVar()
		if v == -1 {
			if debugParanoid {
				s.debugVerifyModel()
			}
			s.model = append(s.model[:0], s.assigns...)
			return Sat
		}
		s.Decisions++
		s.newDecisionLevel()
		s.enqueue(MkLit(v, !s.phase[v]), refUndef)
	}
}

// assumptionsOnTrail returns the assumption literals currently enforced
// (one per decision level up to len(assumptions)).
func (s *Solver) assumptionsOnTrail() []Lit {
	n := s.decisionLevel()
	if n > len(s.assumptions) {
		n = len(s.assumptions)
	}
	return s.assumptions[:n]
}

// pickBranchVar selects the highest-activity unassigned variable.
func (s *Solver) pickBranchVar() Var {
	for {
		v, ok := s.order.popMax(s.activity)
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// analyzeFinal computes the unsat core from a conflict that depends only
// on assumptions: all assumption literals reachable backward from the
// conflict.
func (s *Solver) analyzeFinal(conflictRef uint32) {
	var core []Lit
	seen := make(map[Var]bool)
	var queue []Var
	push := func(l Lit) {
		if !seen[l.Var()] {
			seen[l.Var()] = true
			queue = append(queue, l.Var())
		}
	}
	if conflictRef == refBinConfl {
		push(s.binConfl[0])
		push(s.binConfl[1])
	} else {
		for _, w := range s.lits(conflictRef) {
			push(Lit(w))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if s.level[v] == 0 {
			continue
		}
		ref := s.reason[v]
		switch {
		case ref == refUndef:
			// Decision: must be an assumption (conflict is at assumption
			// levels).
			for _, a := range s.assumptions {
				if a.Var() == v {
					core = append(core, a)
					break
				}
			}
		case isBinRef(ref):
			push(binRefOther(ref))
		default:
			for _, w := range s.lits(ref) {
				push(Lit(w))
			}
		}
	}
	s.core = core
	s.CoresExtracted++
}

// coreFromFailedAssumption computes the core when assumption a is already
// false on the trail.
func (s *Solver) coreFromFailedAssumption(a Lit) {
	core := []Lit{a}
	seen := map[Var]bool{a.Var(): true}
	queue := []Var{a.Var()}
	push := func(l Lit) {
		if !seen[l.Var()] {
			seen[l.Var()] = true
			queue = append(queue, l.Var())
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if s.level[v] == 0 {
			continue
		}
		ref := s.reason[v]
		switch {
		case ref == refUndef:
			for _, asm := range s.assumptions {
				if asm.Var() == v && asm != a {
					core = append(core, asm)
					break
				}
			}
		case isBinRef(ref):
			push(binRefOther(ref))
		default:
			for _, w := range s.lits(ref) {
				push(Lit(w))
			}
		}
	}
	s.core = core
	s.CoresExtracted++
}

// UnsatCore returns the subset of the last Solve call's assumptions that
// were involved in proving unsatisfiability. Valid only after Unsat.
func (s *Solver) UnsatCore() []Lit { return s.core }

// Okay reports whether the formula is still possibly satisfiable (false
// after a clause contradiction at level 0).
func (s *Solver) Okay() bool { return s.ok }

// Interrupt asynchronously stops the in-flight Solve call at its next
// search-loop iteration (a conflict or decision boundary, so within
// microseconds on typical instances); the call returns Unknown. The flag
// is sticky — subsequent Solve calls also return Unknown immediately —
// which lets a cancelled MaxSAT driver unwind through its remaining SAT
// calls without restarting work. Interrupt is the only solver method safe
// to call from another goroutine.
func (s *Solver) Interrupt() { s.stop.Store(true) }

// ClearInterrupt re-arms the solver after an Interrupt.
func (s *Solver) ClearInterrupt() { s.stop.Store(false) }

// Interrupted reports whether Interrupt has been called without a
// subsequent ClearInterrupt. It distinguishes an Unknown verdict caused
// by cancellation from one caused by an exhausted conflict Budget.
func (s *Solver) Interrupted() bool { return s.stop.Load() }
