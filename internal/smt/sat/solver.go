// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver: two-watched-literal propagation, 1UIP conflict analysis with
// recursive clause minimization, VSIDS branching with phase saving, Luby
// restarts, activity-based learned-clause deletion, incremental solving
// under assumptions, and unsat-core extraction.
//
// It is the satisfiability substrate beneath CPR's MaxSMT formulation
// (the paper uses Z3; see DESIGN.md for the substitution argument).
package sat

import (
	"fmt"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Var is a boolean variable index (0-based).
type Var int32

// Lit is a literal: variable 2*v for the positive literal, 2*v+1 for the
// negation.
type Lit int32

// MkLit builds a literal from a variable and a sign (true = negated).
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as ±(var+1), DIMACS style.
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Status is a solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// clause is a disjunction of literals. Learned clauses carry an activity
// for deletion heuristics.
type clause struct {
	lits     []Lit
	learned  bool
	activity float64
}

// watcher pairs a clause reference with a blocker literal for fast
// propagation.
type watcher struct {
	cref    int
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses  []*clause // nil entries are deleted clauses
	watches  [][]watcher
	assigns  []lbool
	phase    []bool // saved phases
	level    []int32
	reason   []int // clause ref or -1
	trail    []Lit
	trailLim []int32 // decision-level boundaries in trail
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap

	seen []bool

	ok          bool
	model       []lbool // snapshot of the last satisfying assignment
	numLearned  int
	maxLearned  int
	clauseInc   float64
	assumptions []Lit
	core        []Lit

	// Stats
	Conflicts    int64
	Decisions    int64
	Propagations int64

	// Budget limits Solve to roughly this many conflicts (0 = unlimited);
	// exceeded budgets return Unknown.
	Budget int64

	// stop is the asynchronous interruption flag (see Interrupt). It is
	// the only solver field safe to touch from another goroutine.
	stop atomic.Bool
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		ok:         true,
		varInc:     1.0,
		clauseInc:  1.0,
		maxLearned: 4000,
		order:      newVarHeap(),
	}
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// SetPhase sets the variable's initial branching polarity (overwritten
// later by phase saving). Seeding phases with a known near-solution
// steers the first model toward it — CPR seeds the original network
// state so the initial MaxSAT upper bound is small.
func (s *Solver) SetPhase(v Var, val bool) { s.phase[v] = val }

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v, s.activity)
	return v
}

// value returns the literal's current assignment.
func (s *Solver) value(l Lit) lbool {
	a := s.assigns[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// Value returns the variable's value in the model after a Sat result.
func (s *Solver) Value(v Var) bool { return s.model[v] == lTrue }

// ValueLit returns the literal's truth value in the model.
func (s *Solver) ValueLit(l Lit) bool {
	if l.Neg() {
		return s.model[l.Var()] == lFalse
	}
	return s.model[l.Var()] == lTrue
}

// AddClause adds a clause. Returns false if the formula became trivially
// unsatisfiable. Clauses may only be added at decision level 0 (i.e.
// between Solve calls).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Normalize: drop duplicate and false literals; detect tautologies and
	// satisfied clauses.
	out := lits[:0:0]
	seen := map[Lit]bool{}
	for _, l := range lits {
		if int(l.Var()) >= len(s.assigns) {
			panic("sat: literal references unallocated variable")
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		if seen[l] {
			continue
		}
		if seen[l.Not()] {
			return true // tautology
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], -1) {
			s.ok = false
			return false
		}
		if s.propagate() != -1 {
			s.ok = false
			return false
		}
		return true
	}
	s.attach(&clause{lits: out})
	return true
}

// attach registers the clause in the watch lists.
func (s *Solver) attach(c *clause) int {
	cref := len(s.clauses)
	s.clauses = append(s.clauses, c)
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
	if c.learned {
		s.numLearned++
	}
	return cref
}

// enqueue assigns literal l with the given reason clause ref.
func (s *Solver) enqueue(l Lit, from int) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; returns a conflicting clause ref or
// -1.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		conflict := -1
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != -1 {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := s.clauses[w.cref]
			if c == nil {
				continue // deleted clause
			}
			// Ensure c.lits[0] is the other watched literal.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{w.cref, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.cref, first})
			if s.value(first) == lFalse {
				conflict = w.cref
				s.qhead = len(s.trail)
			} else {
				s.enqueue(first, w.cref)
			}
		}
		s.watches[p] = kept
		if conflict != -1 {
			return conflict
		}
	}
	return -1
}

// decisionLevel is the current number of decisions on the trail.
func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// newDecisionLevel marks a decision boundary.
func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := int(s.trailLim[lvl])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = -1
		s.order.insert(v, s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// bumpVar increases a variable's VSIDS activity.
func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, s.activity)
}

// analyze performs 1UIP conflict analysis, returning the learned clause
// (first literal is the asserting one) and the backtrack level.
func (s *Solver) analyze(conflictRef int) ([]Lit, int) {
	learned := []Lit{0} // placeholder for asserting literal
	counter := 0
	p := Lit(-1)
	idx := len(s.trail) - 1
	cref := conflictRef
	for {
		c := s.clauses[cref]
		if c.learned {
			s.bumpClause(c)
		}
		start := 0
		if p != Lit(-1) {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Find next literal to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		cref = s.reason[p.Var()]
		s.seen[p.Var()] = false
		idx--
		counter--
		if counter <= 0 {
			break
		}
		// Re-orient: when expanding a reason clause, its first literal is
		// the implied one (equal to p); skip it via start=1 above.
		c2 := s.clauses[cref]
		if c2.lits[0] != p {
			for k := 1; k < len(c2.lits); k++ {
				if c2.lits[k] == p {
					c2.lits[0], c2.lits[k] = c2.lits[k], c2.lits[0]
					break
				}
			}
		}
	}
	learned[0] = p.Not()

	// Clause minimization: drop literals implied by the rest. Keep the
	// pre-minimization set for seen-flag cleanup: literals removed here
	// must not leave stale marks for future analyses.
	toClear := append([]Lit(nil), learned...)
	for _, l := range learned {
		s.seen[l.Var()] = true
	}
	out := learned[:1]
	for _, l := range learned[1:] {
		if !s.redundant(l) {
			out = append(out, l)
		}
	}
	learned = out

	// Compute backtrack level: second-highest level in clause.
	btLevel := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].Var()] > s.level[learned[maxI].Var()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		btLevel = int(s.level[learned[1].Var()])
	}
	for _, l := range toClear {
		s.seen[l.Var()] = false
	}
	return learned, btLevel
}

// redundant reports whether literal l in a learned clause is implied by
// the remaining marked literals (simple non-recursive minimization: l is
// redundant if every literal of its reason clause is already marked or at
// level 0).
func (s *Solver) redundant(l Lit) bool {
	ref := s.reason[l.Var()]
	if ref == -1 {
		return false
	}
	for _, q := range s.clauses[ref].lits {
		if q.Var() == l.Var() {
			continue
		}
		if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
			return false
		}
	}
	return true
}

// bumpClause increases a learned clause's activity.
func (s *Solver) bumpClause(c *clause) {
	c.activity += s.clauseInc
	if c.activity > 1e20 {
		for _, cl := range s.clauses {
			if cl != nil && cl.learned {
				cl.activity *= 1e-20
			}
		}
		s.clauseInc *= 1e-20
	}
}

// reduceDB deletes roughly half of the learned clauses, preferring
// low-activity ones. Reason clauses and binary clauses are kept.
func (s *Solver) reduceDB() {
	var learned []int
	for i, c := range s.clauses {
		if c != nil && c.learned && len(c.lits) > 2 && !s.isReason(i) {
			learned = append(learned, i)
		}
	}
	// Partial sort: simple threshold on median activity.
	if len(learned) == 0 {
		return
	}
	acts := make([]float64, len(learned))
	for i, ref := range learned {
		acts[i] = s.clauses[ref].activity
	}
	med := quickSelect(acts, len(acts)/2)
	removed := 0
	for _, ref := range learned {
		if s.clauses[ref].activity <= med && removed < len(learned)/2 {
			s.detach(ref)
			removed++
		}
	}
}

// isReason reports whether clause ref is the reason of a trail literal.
func (s *Solver) isReason(ref int) bool {
	c := s.clauses[ref]
	if len(c.lits) == 0 {
		return false
	}
	v := c.lits[0].Var()
	return s.assigns[v] != lUndef && s.reason[v] == ref
}

// detach deletes a clause lazily (watch lists skip nil clauses).
func (s *Solver) detach(ref int) {
	if s.clauses[ref].learned {
		s.numLearned--
	}
	s.clauses[ref] = nil
}

// quickSelect returns the k-th smallest element of a (a is scrambled).
func quickSelect(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		pivot := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// After Unsat, UnsatCore returns the subset of assumptions used; after
// Sat, Value/ValueLit expose the model.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if faultinject.Enabled() {
		// Chaos injection sites: a crash inside the search, a spurious
		// asynchronous interruption, and an instantly exhausted conflict
		// budget. All are no-ops unless armed (see internal/faultinject).
		faultinject.Eval(faultinject.SATSolvePanic)
		if faultinject.Eval(faultinject.SATSpuriousInterrupt) != nil {
			s.stop.Store(true)
		}
		if faultinject.Eval(faultinject.SATBudgetStarve) != nil {
			return Unknown
		}
	}
	if !s.ok {
		s.core = nil
		return Unsat
	}
	s.assumptions = assumptions
	s.core = nil
	defer s.cancelUntil(0)

	var restarts int64
	conflictBudget := luby(1) * 100
	conflictsHere := int64(0)
	startConflicts := s.Conflicts

	for {
		if s.stop.Load() {
			return Unknown
		}
		if s.Budget > 0 && s.Conflicts-startConflicts > s.Budget {
			return Unknown
		}
		conflictRef := s.propagate()
		if conflictRef != -1 {
			s.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				// Conflict with no decisions at all: the formula is
				// permanently unsatisfiable. Marking ok=false matters for
				// incremental reuse — the conflict aborted propagation
				// mid-queue, so the level-0 trail may be missing
				// implications forever after.
				s.ok = false
				s.core = nil
				return Unsat
			}
			if s.decisionLevel() <= len(s.assumptionsOnTrail()) {
				// Conflict under assumptions only: extract core.
				s.analyzeFinal(conflictRef)
				return Unsat
			}
			learned, btLevel := s.analyze(conflictRef)
			s.cancelUntil(btLevel)
			if len(learned) == 1 {
				if !s.enqueue(learned[0], -1) {
					s.ok = false
					return Unsat
				}
			} else {
				c := &clause{lits: learned, learned: true, activity: s.clauseInc}
				ref := s.attach(c)
				s.enqueue(learned[0], ref)
			}
			s.varInc /= 0.95
			s.clauseInc /= 0.999
			if s.numLearned > s.maxLearned {
				s.reduceDB()
				s.maxLearned += s.maxLearned / 10
			}
			continue
		}
		if conflictsHere >= conflictBudget {
			// Restart.
			restarts++
			conflictBudget = luby(restarts+1) * 100
			conflictsHere = 0
			s.cancelUntil(0)
			continue
		}
		// Extend with the next assumption, or decide.
		lvl := s.decisionLevel()
		if lvl < len(s.assumptions) {
			a := s.assumptions[lvl]
			switch s.value(a) {
			case lTrue:
				// Already satisfied; open an empty level to keep the
				// level↔assumption correspondence.
				s.newDecisionLevel()
				continue
			case lFalse:
				// Assumption conflicts with current state.
				s.coreFromFailedAssumption(a)
				return Unsat
			}
			s.newDecisionLevel()
			s.enqueue(a, -1)
			continue
		}
		v := s.pickBranchVar()
		if v == -1 {
			if debugParanoid {
				s.debugVerifyModel()
			}
			s.model = append(s.model[:0], s.assigns...)
			return Sat
		}
		s.Decisions++
		s.newDecisionLevel()
		s.enqueue(MkLit(v, !s.phase[v]), -1)
	}
}

// assumptionsOnTrail returns the assumption literals currently enforced
// (one per decision level up to len(assumptions)).
func (s *Solver) assumptionsOnTrail() []Lit {
	n := s.decisionLevel()
	if n > len(s.assumptions) {
		n = len(s.assumptions)
	}
	return s.assumptions[:n]
}

// pickBranchVar selects the highest-activity unassigned variable.
func (s *Solver) pickBranchVar() Var {
	for {
		v, ok := s.order.popMax(s.activity)
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// analyzeFinal computes the unsat core from a conflict that depends only
// on assumptions: all assumption literals reachable backward from the
// conflict.
func (s *Solver) analyzeFinal(conflictRef int) {
	isAssumption := make(map[Lit]bool, len(s.assumptions))
	for _, a := range s.assumptions {
		isAssumption[a] = true
	}
	var core []Lit
	seen := make(map[Var]bool)
	var queue []Var
	for _, l := range s.clauses[conflictRef].lits {
		if !seen[l.Var()] {
			seen[l.Var()] = true
			queue = append(queue, l.Var())
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if s.level[v] == 0 {
			continue
		}
		ref := s.reason[v]
		if ref == -1 {
			// Decision: must be an assumption (conflict is at assumption
			// levels).
			for _, a := range s.assumptions {
				if a.Var() == v {
					core = append(core, a)
					break
				}
			}
			continue
		}
		for _, l := range s.clauses[ref].lits {
			if !seen[l.Var()] {
				seen[l.Var()] = true
				queue = append(queue, l.Var())
			}
		}
	}
	s.core = core
}

// coreFromFailedAssumption computes the core when assumption a is already
// false on the trail.
func (s *Solver) coreFromFailedAssumption(a Lit) {
	core := []Lit{a}
	seen := map[Var]bool{a.Var(): true}
	queue := []Var{a.Var()}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if s.level[v] == 0 {
			continue
		}
		ref := s.reason[v]
		if ref == -1 {
			for _, asm := range s.assumptions {
				if asm.Var() == v && asm != a {
					core = append(core, asm)
					break
				}
			}
			continue
		}
		for _, l := range s.clauses[ref].lits {
			if !seen[l.Var()] {
				seen[l.Var()] = true
				queue = append(queue, l.Var())
			}
		}
	}
	s.core = core
}

// UnsatCore returns the subset of the last Solve call's assumptions that
// were involved in proving unsatisfiability. Valid only after Unsat.
func (s *Solver) UnsatCore() []Lit { return s.core }

// Okay reports whether the formula is still possibly satisfiable (false
// after a clause contradiction at level 0).
func (s *Solver) Okay() bool { return s.ok }

// Interrupt asynchronously stops the in-flight Solve call at its next
// search-loop iteration (a conflict or decision boundary, so within
// microseconds on typical instances); the call returns Unknown. The flag
// is sticky — subsequent Solve calls also return Unknown immediately —
// which lets a cancelled MaxSAT driver unwind through its remaining SAT
// calls without restarting work. Interrupt is the only solver method safe
// to call from another goroutine.
func (s *Solver) Interrupt() { s.stop.Store(true) }

// ClearInterrupt re-arms the solver after an Interrupt.
func (s *Solver) ClearInterrupt() { s.stop.Store(false) }

// Interrupted reports whether Interrupt has been called without a
// subsequent ClearInterrupt. It distinguishes an Unknown verdict caused
// by cancellation from one caused by an exhausted conflict Budget.
func (s *Solver) Interrupted() bool { return s.stop.Load() }
