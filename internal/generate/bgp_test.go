package generate

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harc"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/translate"
)

// bgpTriangle builds a three-router eBGP network: leaf1 (AS 65001) and
// leaf2 (AS 65002) each peer with spine (AS 65000); leaf1 and leaf2 also
// share a direct link whose session is NOT configured (the candidate the
// repair may enable).
func bgpTriangle(t *testing.T) map[string]string {
	t.Helper()
	return map[string]string{
		"leaf1": `hostname leaf1
!
interface eth0
 description Link-to-spine
 ip address 10.0.1.1 255.255.255.0
!
interface eth1
 description Link-to-leaf2
 ip address 10.0.3.1 255.255.255.0
!
interface eth2
 description Subnet-NET1
 ip address 20.0.1.1 255.255.255.0
!
router bgp 65001
 redistribute connected
 neighbor 10.0.1.2 remote-as 65000
`,
		"leaf2": `hostname leaf2
!
interface eth0
 description Link-to-spine
 ip address 10.0.2.1 255.255.255.0
!
interface eth1
 description Link-to-leaf1
 ip address 10.0.3.2 255.255.255.0
!
interface eth2
 description Subnet-NET2
 ip address 20.0.2.1 255.255.255.0
!
router bgp 65002
 redistribute connected
 neighbor 10.0.2.2 remote-as 65000
`,
		"spine": `hostname spine
!
interface eth0
 description Link-to-leaf1
 ip address 10.0.1.2 255.255.255.0
!
interface eth1
 description Link-to-leaf2
 ip address 10.0.2.2 255.255.255.0
!
router bgp 65000
 redistribute connected
 neighbor 10.0.1.1 remote-as 65001
 neighbor 10.0.2.1 remote-as 65002
`,
	}
}

func loadBGP(t *testing.T) (map[string]*config.Config, *topology.Network) {
	t.Helper()
	texts := bgpTriangle(t)
	cfgs := map[string]*config.Config{}
	var parsed []*config.Config
	for name, text := range texts {
		c, err := config.Parse(name, text)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfgs[name] = c
		parsed = append(parsed, c)
	}
	n, err := config.Extract(parsed)
	if err != nil {
		t.Fatal(err)
	}
	return cfgs, n
}

func TestBGPExtraction(t *testing.T) {
	_, n := loadBGP(t)
	if n.NumDevices() != 3 || len(n.Links) != 3 {
		t.Fatalf("devices=%d links=%d", n.NumDevices(), len(n.Links))
	}
	// Sessions leaf1-spine and leaf2-spine are up; leaf1-leaf2 is not.
	leaf1 := n.Device("leaf1")
	p1 := leaf1.Processes[0]
	if p1.Proto != topology.BGP || p1.ID != 65001 {
		t.Fatalf("leaf1 process %+v", p1)
	}
	if !p1.UsesInterface(leaf1.Interface("eth0")) {
		t.Error("leaf1 should peer via eth0")
	}
	if p1.UsesInterface(leaf1.Interface("eth1")) {
		t.Error("leaf1-leaf2 session not configured; eth1 unused")
	}
}

func TestBGPReachability(t *testing.T) {
	_, n := loadBGP(t)
	h := harc.Build(n)
	tc := topology.TrafficClass{Src: n.Subnet("NET1"), Dst: n.Subnet("NET2")}
	p1 := policy.Policy{Kind: policy.KReachable, K: 1, TC: tc}
	if !policy.Check(h, p1) {
		t.Fatal("NET1 should reach NET2 via the spine")
	}
	// Surviving one failure needs the leaf1-leaf2 session: violated now.
	p2 := policy.Policy{Kind: policy.KReachable, K: 2, TC: tc}
	if policy.Check(h, p2) {
		t.Fatal("K=2 should be violated (only one path)")
	}
}

// TestBGPRepairEndToEnd asks for 1-failure tolerance between the leaf
// subnets. In per-dst mode the aETG is frozen, so the repair must use a
// static route; in all-tcs mode it may instead enable the leaf1-leaf2
// BGP session with neighbor statements. Both must verify after patching.
func TestBGPRepairEndToEnd(t *testing.T) {
	for _, gran := range []core.Granularity{core.PerDst, core.AllTCs} {
		cfgs, n := loadBGP(t)
		h := harc.Build(n)
		tc := topology.TrafficClass{Src: n.Subnet("NET1"), Dst: n.Subnet("NET2")}
		rev := topology.TrafficClass{Src: n.Subnet("NET2"), Dst: n.Subnet("NET1")}
		ps := []policy.Policy{
			{Kind: policy.KReachable, K: 2, TC: tc},
			{Kind: policy.KReachable, K: 2, TC: rev},
		}
		opts := core.DefaultOptions()
		opts.Granularity = gran
		res, err := core.Repair(h, ps, opts)
		if err != nil {
			t.Fatalf("%v: %v", gran, err)
		}
		if !res.Solved {
			t.Fatalf("%v: unsolved", gran)
		}
		orig := harc.StateOf(h)
		plan, err := translate.Translate(h, orig, res.State, cfgs)
		if err != nil {
			t.Fatalf("%v: translate: %v", gran, err)
		}
		if plan.NumLines() == 0 {
			t.Fatalf("%v: expected changes", gran)
		}
		inst := &Instance{Name: "bgp", Configs: cfgs, Policies: ps}
		if err := inst.Rebuild(); err != nil {
			t.Fatalf("%v: rebuild: %v", gran, err)
		}
		if bad := inst.Violations(); len(bad) != 0 {
			t.Errorf("%v: rebuilt network violates %v; plan:\n%s", gran, bad, plan)
		}
		t.Logf("%v: %d lines:\n%s", gran, plan.NumLines(), plan)
	}
}
